# Development targets for the LFSC reproduction. Everything uses only the
# Go toolchain — no external dependencies.

GO ?= go

# Packages that carry the concurrency contract (bit-identical results
# under parallel.For and under concurrent shared-trace replay) and
# therefore must stay clean under the race detector, including the
# Workers=1 vs Workers=N determinism test and the RunAll replay test in
# internal/sim. internal/obs is included because its probe/registry/ring
# types are shared across RunAll goroutines, and internal/metrics because
# RunAll aggregates its Series concurrently. internal/serve is the
# serving daemon: HTTP handlers, the batcher goroutine, and shedding
# gates are all concurrent by construction.
RACE_PKGS = ./internal/core ./internal/parallel ./internal/assign ./internal/sim ./internal/trace ./internal/obs ./internal/metrics ./internal/serve

.PHONY: all build vet test test-race bench-short bench-short-parallel bench json bench-serve bench-serve-shards bench-diff fuzz-short serve-smoke serve-smoke-shards obs-smoke scenario-smoke ci clean

all: vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race $(RACE_PKGS)

# Quick perf snapshot of the hot path: the allocation-free micro kernels
# (Decide/Update/Greedy/DepRound/hypercube indexing). All benchmarks
# report allocs/op; the steady-state kernels must show 0.
bench-short:
	$(GO) test -run '^$$' -bench 'BenchmarkDecide|BenchmarkUpdate' -benchtime 10x ./internal/core
	$(GO) test -run '^$$' -bench 'BenchmarkGreedyAssign|BenchmarkDepRound' -benchtime 100x ./internal/assign
	$(GO) test -run '^$$' -bench 'BenchmarkHypercubeIndex' -benchtime 100x ./internal/hypercube

# The same kernels at Workers=NumCPU, under the race detector: the
# parallel per-SCN Decide/Observe fan-out must stay race-clean on every
# push, and its allocation budget is pinned separately by
# TestDecideObserveParallelAllocBounded (fan-out scaffolding only — the
# per-SCN arenas never allocate in steady state at any worker count).
bench-short-parallel:
	$(GO) test -race -run '^$$' -bench 'BenchmarkDecideParallel|BenchmarkUpdateParallel' -benchtime 10x ./internal/core

# Full benchmark suite (figure-level harness included; slow).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Regenerate the perf-trajectory artifact (ns/slot, allocs/slot,
# LFSC/Oracle ratio at the paper horizon).
json:
	$(GO) run ./cmd/lfscbench -benchjson BENCH_core.json

# Measure the serving data plane and merge its figures into the same
# artifact: serve_ns_per_slot (in-process batched /v1/step lockstep,
# generation pre-materialized so the clock sees only the serving path),
# serve_allocs_per_slot / serve_allocs_per_req (0 in steady state),
# serve_ns_per_slot_probe (the shipped lfscd default — slot-phase probe
# on, everything else off), serve_ns_per_slot_obs (the full
# observability stack; benchdiff pins it at ≤5% over the probe
# baseline), and serve_http_rps (real loopback HTTP round trips).
bench-serve:
	$(GO) run ./cmd/lfscbench -benchserve BENCH_core.json

# Short-mode shard-scaling smoke: run the Shards=1/2/4 curve end-to-end
# (staged ingest, tournament merge, pipelined close, real loopback HTTP)
# on a few hundred slots and print the rps triple. The result goes to a
# scratch file, not the committed artifact — the point in CI is that the
# sharded serving plane boots, serves, and scales sanely on every push;
# the gated numbers come from the full `make bench-diff` run.
bench-serve-shards:
	rm -f /tmp/BENCH_shards.json
	$(GO) run ./cmd/lfscbench -benchshards /tmp/BENCH_shards.json -serve-http-slots 300

# Measure the working tree against the committed perf artifact: runs the
# paper-horizon benchmark AND the serve-layer harness into a scratch file
# and diffs it against BENCH_core.json. Fails (exit 1) on a >25%
# timing/allocation regression (core or serve), a serve-throughput drop
# below 75%, a shard-plane tax (serve_shard_rps_1 below 85% of the same
# run's serve_http_rps) or a non-monotone shard curve where the machine
# has the cores, a dropped serve key, or ANY reward-ratio drift — the
# simulation is deterministic, so a ratio change means the computation
# itself changed.
bench-diff:
	rm -f /tmp/BENCH_head.json
	$(GO) run ./cmd/lfscbench -benchjson /tmp/BENCH_head.json
	$(GO) run ./cmd/lfscbench -benchserve /tmp/BENCH_head.json
	$(GO) run ./cmd/benchdiff BENCH_core.json /tmp/BENCH_head.json

# Short fuzz passes over the three decoders that parse untrusted bytes:
# the checkpoint loader, the wire-format request decoder, and the
# scenario config parser. Go allows one -fuzz pattern per invocation,
# hence three runs.
fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzCheckpointLoad -fuzztime 5s ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzWireDecode -fuzztime 5s ./internal/serve
	$(GO) test -run '^$$' -fuzz FuzzScenarioParse -fuzztime 5s ./internal/scenario

# The serving-layer smoke: boot lfscd on an ephemeral port, drive 200
# slots of a shared trace over real HTTP with periodic checkpointing,
# kill the daemon hard mid-run, resume a fresh one from the checkpoint,
# and verify the resumed run's cumulative reward is bit-identical to an
# uninterrupted run (plus the graceful-stop variant), under the race
# detector.
serve-smoke:
	$(GO) test -race -count=1 -run 'TestServeSmoke$$|TestRestoreAfterGracefulStopResumesExactly' ./internal/serve

# The sharded variant: the same 200-slot kill-and-resume at Shards=4
# (per-shard checkpoint files + manifest, two empty shards at this
# scale), plus the Shards=1-vs-4-vs-offline three-way identity and the
# cross-layout checkpoint compat matrix — all under the race detector
# (the shard fan-out runs Decide/Observe on parallel goroutines).
serve-smoke-shards:
	$(GO) test -race -count=1 -run 'TestServeSmokeShards|TestShardedLockstepThreeWayIdentity|TestShardedCheckpointCompatAndMismatch' ./internal/serve

# The observability smoke: boot a fully instrumented Shards=4 daemon,
# serve real traffic, scrape /metrics twice with traffic in between
# (validating the exposition with the in-test Prometheus text parser and
# diffing the monotone counters), exercise /lfsc/slots and the extended
# /lfsc/status, and hammer every scrape surface concurrently with live
# serving — all under the race detector, plus the instrumented
# bit-identity and 0 allocs/request pins.
obs-smoke:
	$(GO) test -race -count=1 -run 'TestObsSmokeScrape|TestSlotsEndpointAndStatus|TestConcurrentScrapeUnderLoad|TestObsInstrumentedThreeWayIdentity|TestServeWireZeroAllocObs' ./internal/serve

# The scenario smoke: churn a timeline through the serving daemon —
# kill-and-resume mid-churn with the checkpoint's scenario digest
# round-tripped (a restore under a missing or different scenario is
# refused), the resumed run bit-identical to an uninterrupted one, and
# the client==daemon==offline-sim three-way identity under the same
# timeline at Shards=1 and 4 — under the race detector.
scenario-smoke:
	$(GO) test -race -count=1 -run 'TestScenarioServeSmokeResume|TestScenarioLockstepThreeWayIdentity|TestScenarioObservability' ./internal/serve

# Everything a commit must pass, in the order a CI runner would execute:
# static checks, the full test suite, the race-detector suite over the
# concurrency-contract packages, the serving-layer kill-and-resume
# smokes (unsharded and Shards=4), the observability scrape smoke, the
# scenario churn smoke, the quick perf kernels (which also assert 0
# allocs/op on the steady-state paths) at Workers=1 and again at
# Workers=NumCPU under the race detector, the short-mode shard-scaling
# curve, and a short fuzz pass over the untrusted-input decoders.
ci: vet test test-race serve-smoke serve-smoke-shards obs-smoke scenario-smoke bench-short bench-short-parallel bench-serve-shards fuzz-short

clean:
	$(GO) clean ./...
