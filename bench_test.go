// Benchmark harness: one testing.B benchmark per paper table/figure (and
// per ablation from DESIGN.md §5). Each benchmark executes the experiment
// end to end at a scaled-down horizon — go test -bench time budgets do not
// allow T=10000 per iteration; use cmd/lfscbench for full-scale figures —
// and reports the reproduction's key shape numbers as custom benchmark
// metrics (e.g. LFSC reward as a fraction of Oracle's).
package lfsc

import (
	"testing"

	"lfsc/internal/experiments"
)

// benchT is the per-iteration horizon for figure benchmarks.
const benchT = 600

// benchSweepT is the horizon for multi-scenario sweeps (25+ runs each).
const benchSweepT = 250

func benchOpts(T int) experiments.Options {
	return experiments.Options{T: T, Seed: 42, ChartWidth: 40, ChartHeight: 8}
}

func countPass(notes []string) (pass, total int) {
	for _, n := range notes {
		total++
		if len(n) >= 4 && n[:4] == "PASS" {
			pass++
		}
	}
	return pass, total
}

// BenchmarkFig2aCumulativeReward regenerates Fig. 2(a).
func BenchmarkFig2aCumulativeReward(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base, err := experiments.RunBase(benchOpts(benchT))
		if err != nil {
			b.Fatal(err)
		}
		r := experiments.Fig2a(base)
		lfsc := base.ByName["LFSC"].TotalReward()
		oracle := base.ByName["Oracle"].TotalReward()
		b.ReportMetric(lfsc/oracle, "LFSC/Oracle")
		pass, total := countPass(r.Notes)
		b.ReportMetric(float64(pass)/float64(total), "shape-checks")
	}
}

// BenchmarkFig2bPerSlotReward regenerates Fig. 2(b).
func BenchmarkFig2bPerSlotReward(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base, err := experiments.RunBase(benchOpts(benchT))
		if err != nil {
			b.Fatal(err)
		}
		r := experiments.Fig2b(base)
		pass, total := countPass(r.Notes)
		b.ReportMetric(float64(pass)/float64(total), "shape-checks")
	}
}

// BenchmarkFig2cViolations regenerates the violation figures.
func BenchmarkFig2cViolations(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base, err := experiments.RunBase(benchOpts(benchT))
		if err != nil {
			b.Fatal(err)
		}
		r := experiments.Fig2c(base)
		lf := base.ByName["LFSC"].TotalViolations()
		ucb := base.ByName["vUCB"].TotalViolations()
		b.ReportMetric(lf/ucb, "LFSCviol/vUCBviol")
		pass, total := countPass(r.Notes)
		b.ReportMetric(float64(pass)/float64(total), "shape-checks")
	}
}

// BenchmarkFig3AlphaSweep regenerates Fig. 3 (α ∈ {13..17}).
func BenchmarkFig3AlphaSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(benchOpts(benchSweepT))
		if err != nil {
			b.Fatal(err)
		}
		pass, total := countPass(r.Notes)
		b.ReportMetric(float64(pass)/float64(total), "shape-checks")
	}
}

// BenchmarkFig4LikelihoodSweep regenerates Fig. 4 (V support sweep).
func BenchmarkFig4LikelihoodSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(benchOpts(benchSweepT))
		if err != nil {
			b.Fatal(err)
		}
		pass, total := countPass(r.Notes)
		b.ReportMetric(float64(pass)/float64(total), "shape-checks")
	}
}

// BenchmarkPerformanceRatio regenerates the Sec. 5 ratio comparison.
func BenchmarkPerformanceRatio(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base, err := experiments.RunBase(benchOpts(benchT))
		if err != nil {
			b.Fatal(err)
		}
		r := experiments.Ratio(base)
		b.ReportMetric(base.ByName["LFSC"].PerformanceRatio(), "LFSC-ratio")
		pass, total := countPass(r.Notes)
		b.ReportMetric(float64(pass)/float64(total), "shape-checks")
	}
}

// BenchmarkAblationGreedyVsExact measures the Lemma-2 greedy against the
// exact min-cost-flow matching.
func BenchmarkAblationGreedyVsExact(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationGreedyVsExact(benchOpts(benchT))
		if err != nil {
			b.Fatal(err)
		}
		// Mean observed ratio at the paper's capacity c=20.
		ratios := r.CSVSeries[1]
		b.ReportMetric(ratios[len(ratios)-1], "greedy/optimal@c20")
	}
}

// BenchmarkAblationGranularity sweeps the partition granularity h.
func BenchmarkAblationGranularity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationGranularity(benchOpts(benchSweepT)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLagrangian toggles the Lagrangian multipliers.
func BenchmarkAblationLagrangian(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationLagrangian(benchOpts(benchT))
		if err != nil {
			b.Fatal(err)
		}
		pass, total := countPass(r.Notes)
		b.ReportMetric(float64(pass)/float64(total), "shape-checks")
	}
}

// BenchmarkAblationCapping toggles Exp3.M weight capping.
func BenchmarkAblationCapping(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationCapping(benchOpts(benchT)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSelection compares the three selection modes.
func BenchmarkAblationSelection(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSelection(benchOpts(benchT)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNonstationary stresses drifting/piecewise rewards.
func BenchmarkAblationNonstationary(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationNonstationary(benchOpts(benchT)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimSlotPaperScale measures the per-slot cost of the full
// pipeline (workload → LFSC decide → execution → observe) at paper scale.
func BenchmarkSimSlotPaperScale(b *testing.B) {
	b.ReportAllocs()
	sc := PaperScenario()
	sc.Cfg.T = b.N
	if sc.Cfg.T < 1 {
		sc.Cfg.T = 1
	}
	b.ResetTimer()
	if _, err := Run(sc, LFSCFactory(nil), 42); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTheorem1Sublinearity probes the sub-linear regret/violation
// claim across a horizon ladder.
func BenchmarkTheorem1Sublinearity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Theorem1(benchOpts(benchT))
		if err != nil {
			b.Fatal(err)
		}
		pass, total := countPass(r.Notes)
		b.ReportMetric(float64(pass)/float64(total), "shape-checks")
	}
}

// BenchmarkAblationStress runs the adversarial-workload robustness sweep.
func BenchmarkAblationStress(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.StressSweep(benchOpts(benchSweepT)); err != nil {
			b.Fatal(err)
		}
	}
}
