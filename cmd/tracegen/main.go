// Command tracegen generates workload traces in the package trace CSV
// format (or inspects an existing one). Generated traces can be replayed
// through the simulator (see examples/tracedriven), which is also the
// integration point for genuinely real-world traces.
//
// Usage:
//
//	tracegen -out trace.csv [-slots 100] [-mode synthetic|geo|heavy]
//	         [-scns 30] [-min 35] [-max 100] [-overlap 0.3] [-seed 1]
//	         [-scenario churn.scn] [-c 20]
//	tracegen -inspect trace.csv -scns 30
//
// With -scenario the timeline's availability mask is baked into the
// trace: a down SCN's coverage row is emptied for that slot, so any
// consumer of the CSV sees the same churn the live stack would apply at
// its view boundary. Capacity and budget dynamics have no trace
// representation — they only exist on live views — so only masking is
// recorded (-c sizes the timeline's capacity model for validation).
package main

import (
	"flag"
	"fmt"
	"os"

	"lfsc/internal/geo"
	"lfsc/internal/report"
	"lfsc/internal/rng"
	"lfsc/internal/scenario"
	"lfsc/internal/stats"
	"lfsc/internal/trace"
)

func main() {
	var (
		out      = flag.String("out", "", "output CSV path")
		inspect  = flag.String("inspect", "", "inspect an existing trace CSV")
		slots    = flag.Int("slots", 100, "number of slots to generate")
		mode     = flag.String("mode", "synthetic", "synthetic|heavy|geo")
		scns     = flag.Int("scns", 30, "number of SCNs")
		minTasks = flag.Int("min", 35, "min tasks per SCN (synthetic)")
		maxTasks = flag.Int("max", 100, "max tasks per SCN (synthetic)")
		overlap  = flag.Float64("overlap", 0.3, "coverage overlap probability (synthetic)")
		wds      = flag.Int("wds", 2000, "wireless devices (geo)")
		radius   = flag.Float64("radius", 400, "coverage radius meters (geo)")
		seed     = flag.Uint64("seed", 1, "random seed")
		scenFile = flag.String("scenario", "", "scenario config: bake SCN availability masking into the trace")
		capacity = flag.Int("c", 20, "per-SCN capacity for the scenario's capacity model (with -scenario)")
	)
	flag.Parse()

	if *inspect != "" {
		inspectTrace(*inspect, *scns)
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "need -out or -inspect")
		os.Exit(2)
	}

	var gen trace.Generator
	var err error
	switch *mode {
	case "synthetic", "heavy":
		gen, err = trace.NewSynthetic(trace.SyntheticConfig{
			SCNs: *scns, MinTasks: *minTasks, MaxTasks: *maxTasks,
			Overlap: *overlap, Heavy: *mode == "heavy", LatencySensitiveFrac: 0.5,
		}, rng.New(*seed))
	case "geo":
		area := geo.Area{W: 2000, H: 2000}
		gen, err = trace.NewGeo(trace.GeoConfig{
			Area: area, SCNPositions: geo.PlaceGrid(area, *scns),
			RadiusM: *radius, WDs: *wds, TaskProb: 0.5,
			MinSpeed: 1, MaxSpeed: 15, MaxPause: 5, LatencySensitiveFrac: 0.5,
		}, rng.New(*seed))
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	recorded := make([]*trace.Slot, *slots)
	for t := 0; t < *slots; t++ {
		recorded[t] = gen.Next(t)
	}
	masked := 0
	if *scenFile != "" {
		scfg, err := scenario.ParseFile(*scenFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
			os.Exit(2)
		}
		tl, err := scenario.Build(scfg, gen.SCNs(), *slots, *capacity, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
			os.Exit(2)
		}
		var v scenario.View
		for t, s := range recorded {
			tl.ViewInto(t, &v)
			for m := range s.Coverage {
				if !v.Up[m] && len(s.Coverage[m]) > 0 {
					masked += len(s.Coverage[m])
					s.Coverage[m] = nil
				}
			}
		}
		fmt.Fprintf(os.Stderr, "%s\n", tl)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := trace.WriteCSV(f, recorded); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	total := 0
	for _, s := range recorded {
		total += s.NumTasks()
	}
	fmt.Printf("wrote %s: %d slots, %d tasks, %d SCNs (%s)", *out, *slots, total, gen.SCNs(), *mode)
	if *scenFile != "" {
		fmt.Printf(", %d coverage entries masked by scenario", masked)
	}
	fmt.Println()
}

func inspectTrace(path string, numSCNs int) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	slots, err := trace.ReadCSV(f, numSCNs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var perSCN stats.Summary
	var inSize, outSize stats.Summary
	multi := 0
	totalTasks := 0
	for _, s := range slots {
		totalTasks += s.NumTasks()
		deg := make([]int, s.NumTasks())
		for _, cov := range s.Coverage {
			perSCN.Add(float64(len(cov)))
			for _, i := range cov {
				deg[i]++
			}
		}
		for _, d := range deg {
			if d > 1 {
				multi++
			}
		}
		for _, tk := range s.Tasks {
			inSize.Add(tk.InputMbit)
			outSize.Add(tk.OutputMbit)
		}
	}
	tbl := report.NewTable(fmt.Sprintf("Trace %s", path), "metric", "value")
	tbl.AddRowf("slots", len(slots))
	tbl.AddRowf("tasks", totalTasks)
	tbl.AddRowf("tasks/SCN/slot", fmt.Sprintf("%.1f (min %.0f, max %.0f)",
		perSCN.Mean(), perSCN.Min(), perSCN.Max()))
	tbl.AddRowf("multi-covered tasks", multi)
	tbl.AddRowf("input Mbit", fmt.Sprintf("%.1f ± %.1f", inSize.Mean(), inSize.Std()))
	tbl.AddRowf("output Mbit", fmt.Sprintf("%.1f ± %.1f", outSize.Mean(), outSize.Std()))
	fmt.Println(tbl.String())
}
