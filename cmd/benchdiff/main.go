// Command benchdiff compares two BENCH_core.json perf-trajectory artifacts
// (see cmd/lfscbench -benchjson / -benchserve) and reports the deltas in
// the figures the repo tracks across commits: ns/slot, allocs/slot, the
// LFSC/Oracle reward ratio, and — when present — the serve-layer block
// (serve_ns_per_slot, serve_allocs_per_slot, serve_allocs_per_req,
// serve_http_rps).
//
// Usage:
//
//	benchdiff [flags] OLD.json NEW.json
//	benchdiff -slo-history BENCH_serve.json
//
// -slo-history switches benchdiff from artifact diffing to history
// validation: the named file is the JSON-Lines SLO history appended by
// lfscload -slo-json, and every line must be a complete, well-formed
// entry. A malformed line, a partial trailing line (an interrupted
// append), or an entry with nonsense figures fails with the offending
// line number instead of being silently skipped — the history is a
// measurement record, and a reader that tolerates corruption will one
// day average over it. Exit status 0 for a clean history, 1 for a
// corrupt one, 2 on IO/usage errors.
//
// The exit status encodes the verdict so the comparison can gate CI or a
// local pre-commit check (make bench-diff): 0 when NEW is within the
// regression thresholds, 1 on a perf regression or a reward-ratio drift,
// 2 on usage/IO errors. Timing is compared with a relative threshold
// (default 25%, generous because single-run wall clock on a shared box is
// noisy); the reward ratio is compared with an absolute epsilon (default
// 1e-9) because the simulation is deterministic — any drift there means
// the computation itself changed, not the machine.
//
// Optional keys are guarded, not merely informational: a key present in
// OLD that disappears from NEW fails the diff (a harness silently
// dropping a figure is itself a regression). core_workers_speedup is
// compared against an absolute floor (-min-workers-speedup; nominally
// 1.0 with noise grace for single-core machines). Serve timing shares
// the ns/slot threshold, serve allocs/req gets a +0.5 absolute grace on
// top of the relative one (its baseline is 0), and serve HTTP throughput
// fails when it drops below 75% of OLD.
//
// serve_ns_per_slot_obs (the same loop with the observability stack
// enabled) is gated against NEW's own serve_ns_per_slot_probe — the
// shipped metrics-off baseline (lfscd always runs its slot-phase
// probe) — not against OLD: it must stay within 105% of that figure,
// pinning the design rule that metric series are scrape-time reads and
// the slot tracer/SLO share the probe's clock reads rather than adding
// hot-path work of their own.
//
// The shard scaling curve (serve_shard_rps_1/2/4) is gated num_cpu-aware.
// rps_1 carries the same 75%-of-OLD floor as the headline throughput, and
// additionally — because it runs the SAME scenario as serve_http_rps,
// just through the sharded plane at Shards=1 — must stay within 85% of
// NEW's own serve_http_rps: the staged-ingest/sequencer plane is supposed
// to have amortised the sharding tax, and this gate fails if the tax
// comes back. rps_2/rps_4 are checked against NEW's own rps_1 — at least
// 97% of it when NEW's machine has at least that many CPUs (the curve
// must be monotone non-decreasing where it has room to run; 3% is
// measurement grace, not a scaling allowance), and at least 35% of it
// otherwise (on a starved box the parallel phase can only add overhead,
// but it must not crater the data plane).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// benchResult mirrors the fields of cmd/lfscbench's artifact schema that
// the diff consumes; unknown fields are ignored so the schemas can evolve
// independently. The serve-layer block is optional (pointer fields — nil
// means the artifact predates the serve harness or didn't run it); extra
// keys beyond both blocks are reported informationally, never fatally.
type benchResult struct {
	Name          string  `json:"name"`
	Timestamp     string  `json:"timestamp"`
	TSlots        int     `json:"t_slots"`
	Seed          uint64  `json:"seed"`
	NsPerSlot     float64 `json:"ns_per_slot"`
	AllocsPerSlot float64 `json:"allocs_per_slot"`
	Ratio         float64 `json:"lfsc_oracle_ratio"`

	// CoreWorkersSpeedup (Workers=1 ns/slot over Workers=NumCPU ns/slot)
	// is optional: artifacts predating the worker-sweep bench lack it.
	CoreWorkersSpeedup *float64 `json:"core_workers_speedup"`

	ServeNsPerSlot *float64 `json:"serve_ns_per_slot"`
	// ServeNsPerSlotProbe is the shipped probe-on baseline; the obs gate's
	// reference point.
	ServeNsPerSlotProbe *float64 `json:"serve_ns_per_slot_probe"`
	// ServeNsPerSlotObs is the same loop with observability enabled; it is
	// gated against NEW's own ServeNsPerSlotProbe (≤5% overhead), not
	// against OLD, so the check prices instrumentation rather than machine
	// drift.
	ServeNsPerSlotObs  *float64 `json:"serve_ns_per_slot_obs"`
	ServeAllocsPerSlot *float64 `json:"serve_allocs_per_slot"`
	ServeAllocsPerReq  *float64 `json:"serve_allocs_per_req"`
	ServeHTTPRps       *float64 `json:"serve_http_rps"`

	// NumCPU qualifies the shard scaling curve: the rps_2/rps_4
	// monotonicity gates only bind where the machine had the cores to
	// show a speedup.
	NumCPU         *float64 `json:"num_cpu"`
	ServeShardRps1 *float64 `json:"serve_shard_rps_1"`
	ServeShardRps2 *float64 `json:"serve_shard_rps_2"`
	ServeShardRps4 *float64 `json:"serve_shard_rps_4"`

	extra []string // unknown top-level keys, sorted
}

// knownKeys are the artifact fields benchdiff either diffs or understands
// as lfscbench provenance; anything else is an "extra" key.
var knownKeys = map[string]bool{
	"name": true, "timestamp": true, "go_version": true,
	"goos": true, "goarch": true, "num_cpu": true,
	"t_slots": true, "seed": true, "workers": true,
	"ns_per_slot": true, "allocs_per_slot": true,
	"lfsc_total_reward": true, "oracle_total_reward": true,
	"lfsc_oracle_ratio": true, "core_workers_speedup": true,
	"serve_ns_per_slot": true, "serve_ns_per_slot_probe": true, "serve_ns_per_slot_obs": true,
	"serve_allocs_per_slot": true,
	"serve_allocs_per_req":  true, "serve_http_rps": true,
	"serve_shard_rps_1": true, "serve_shard_rps_2": true,
	"serve_shard_rps_4": true,
}

func load(path string) (*benchResult, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchResult
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.TSlots <= 0 || r.NsPerSlot <= 0 {
		return nil, fmt.Errorf("%s: not a lfscbench artifact (t_slots=%d, ns_per_slot=%v)",
			path, r.TSlots, r.NsPerSlot)
	}
	var all map[string]json.RawMessage
	if err := json.Unmarshal(buf, &all); err == nil {
		for k := range all {
			if !knownKeys[k] {
				r.extra = append(r.extra, k)
			}
		}
		sort.Strings(r.extra)
	}
	return &r, nil
}

// sloHistoryEntry mirrors the lfscload -slo-json line fields the
// validator checks; unknown fields are ignored so the schemas can evolve
// independently (same contract as benchResult).
type sloHistoryEntry struct {
	Name        string  `json:"name"`
	Timestamp   string  `json:"timestamp"`
	TSlots      int     `json:"t_slots"`
	Slots       int     `json:"slots"`
	Shards      int     `json:"shards"`
	ShedRate    float64 `json:"shed_rate"`
	SlotsPerSec float64 `json:"slots_per_sec"`
	CumReward   float64 `json:"cum_reward"`
	Scenario    string  `json:"scenario"`
}

func isHexDigest(s string) bool {
	if len(s) != 16 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

// validateSLOHistory checks a BENCH_serve.json history (JSON Lines, one
// lfscload run per line, append-only). It returns one summary line per
// entry and the first corruption found, identified by 1-based line
// number. An empty file is a valid zero-run history; a file whose last
// line lacks the terminating newline is not — that is the signature of
// an interrupted append, and accepting the fragment would mean accepting
// a line that the next append will fuse into garbage.
func validateSLOHistory(data []byte) (summary []string, err error) {
	if len(data) == 0 {
		return nil, nil
	}
	if data[len(data)-1] != '\n' {
		n := 1 + strings.Count(string(data), "\n")
		return nil, fmt.Errorf("line %d: partial trailing line (interrupted append?) — truncate to the last newline-terminated line", n)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	for i, line := range lines {
		ln := i + 1
		if line == "" {
			return nil, fmt.Errorf("line %d: blank line in history", ln)
		}
		var e sloHistoryEntry
		if uerr := json.Unmarshal([]byte(line), &e); uerr != nil {
			return nil, fmt.Errorf("line %d: %v", ln, uerr)
		}
		switch {
		case e.Name == "":
			return nil, fmt.Errorf("line %d: missing name", ln)
		case e.TSlots <= 0:
			return nil, fmt.Errorf("line %d: t_slots must be positive (got %d)", ln, e.TSlots)
		case e.Slots < 0 || e.Slots > e.TSlots:
			return nil, fmt.Errorf("line %d: slots %d outside [0, t_slots=%d]", ln, e.Slots, e.TSlots)
		case e.ShedRate < 0 || e.ShedRate > 1:
			return nil, fmt.Errorf("line %d: shed_rate %g outside [0, 1]", ln, e.ShedRate)
		case e.Scenario != "" && !isHexDigest(e.Scenario):
			return nil, fmt.Errorf("line %d: scenario digest %q is not a 16-hex-digit timeline digest", ln, e.Scenario)
		}
		scen := e.Scenario
		if scen == "" {
			scen = "static"
		}
		summary = append(summary, fmt.Sprintf("  %-20s %6d/%d slots  shards %d  shed %5.2f%%  %10.1f slots/s  reward %14.4f  %s",
			e.Timestamp, e.Slots, e.TSlots, e.Shards, 100*e.ShedRate, e.SlotsPerSec, e.CumReward, scen))
	}
	return summary, nil
}

func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

// thresholds bundles the regression gates (see the flag docs in main).
type thresholds struct {
	maxNsRegress      float64
	maxAllocRegress   float64
	maxRatioDrift     float64
	minWorkersSpeedup float64
}

// diff renders the comparison and applies the gates, returning the report
// lines and whether any gate failed. Split from main so the gating logic
// is testable without exec'ing the binary.
func diff(old, new_ *benchResult, th thresholds) (lines []string, failed bool) {
	addf := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	addf("  %-20s %14.1f -> %14.1f  (%+.1f%%)", "ns/slot", old.NsPerSlot, new_.NsPerSlot, pct(old.NsPerSlot, new_.NsPerSlot))
	addf("  %-20s %14.2f -> %14.2f  (%+.1f%%)", "allocs/slot", old.AllocsPerSlot, new_.AllocsPerSlot, pct(old.AllocsPerSlot, new_.AllocsPerSlot))
	addf("  %-20s %14.10f -> %14.10f  (Δ %.3e)", "reward ratio", old.Ratio, new_.Ratio, new_.Ratio-old.Ratio)

	if new_.NsPerSlot > old.NsPerSlot*(1+th.maxNsRegress) {
		addf("  FAIL ns/slot regressed beyond %.0f%%", th.maxNsRegress*100)
		failed = true
	}
	if new_.AllocsPerSlot > old.AllocsPerSlot*(1+th.maxAllocRegress)+2 {
		addf("  FAIL allocs/slot regressed beyond %.0f%%", th.maxAllocRegress*100)
		failed = true
	}
	if math.Abs(new_.Ratio-old.Ratio) > th.maxRatioDrift {
		addf("  FAIL reward ratio drifted beyond %g — the deterministic computation changed", th.maxRatioDrift)
		failed = true
	}

	// Optional guarded keys: every key is compared when both sides carry
	// it; a key OLD pins that NEW lost fails the diff outright (a harness
	// silently dropping a figure is itself a regression).
	guardKey := func(name string, oldV, newV *float64, check func(o, n float64) (string, bool)) {
		switch {
		case oldV == nil && newV == nil:
			return
		case oldV == nil:
			addf("  %-20s %14s -> %14.2f  (new key, not compared)", name, "-", *newV)
		case newV == nil:
			addf("  FAIL %s present in OLD but missing from NEW — a guarded figure was dropped", name)
			failed = true
		default:
			addf("  %-20s %14.2f -> %14.2f  (%+.1f%%)", name, *oldV, *newV, pct(*oldV, *newV))
			if msg, bad := check(*oldV, *newV); bad {
				addf("  FAIL %s", msg)
				failed = true
			}
		}
	}
	guardKey("workers speedup", old.CoreWorkersSpeedup, new_.CoreWorkersSpeedup, func(o, n float64) (string, bool) {
		return fmt.Sprintf("core_workers_speedup fell below the %.2f floor — the parallel Decide path lost its edge", th.minWorkersSpeedup),
			n < th.minWorkersSpeedup
	})
	guardKey("serve ns/slot", old.ServeNsPerSlot, new_.ServeNsPerSlot, func(o, n float64) (string, bool) {
		return fmt.Sprintf("serve ns/slot regressed beyond %.0f%%", th.maxNsRegress*100),
			n > o*(1+th.maxNsRegress)
	})
	guardKey("serve ns/slot probe", old.ServeNsPerSlotProbe, new_.ServeNsPerSlotProbe, func(o, n float64) (string, bool) {
		// Guarded like the bare figure — and a dropped key fails, so the
		// obs gate below can never lose its baseline silently.
		return fmt.Sprintf("serve ns/slot (probe baseline) regressed beyond %.0f%%", th.maxNsRegress*100),
			n > o*(1+th.maxNsRegress)
	})
	guardKey("serve ns/slot obs", old.ServeNsPerSlotObs, new_.ServeNsPerSlotObs, func(o, n float64) (string, bool) {
		if new_.ServeNsPerSlotProbe == nil || *new_.ServeNsPerSlotProbe <= 0 {
			return "", false // no baseline figure on NEW to price against (its absence fails separately if OLD pinned it)
		}
		base := *new_.ServeNsPerSlotProbe
		return fmt.Sprintf("serve_ns_per_slot_obs exceeds 105%% of NEW's serve_ns_per_slot_probe (%.1f vs %.1f) — observability leaked into the hot path",
			n, base), n > base*1.05
	})
	guardKey("serve allocs/slot", old.ServeAllocsPerSlot, new_.ServeAllocsPerSlot, func(o, n float64) (string, bool) {
		return fmt.Sprintf("serve allocs/slot regressed beyond %.0f%%", th.maxAllocRegress*100),
			n > o*(1+th.maxAllocRegress)+2
	})
	guardKey("serve allocs/req", old.ServeAllocsPerReq, new_.ServeAllocsPerReq, func(o, n float64) (string, bool) {
		return fmt.Sprintf("serve allocs/req regressed beyond %.0f%% (+0.5 grace)", th.maxAllocRegress*100),
			n > o*(1+th.maxAllocRegress)+0.5
	})
	guardKey("serve http rps", old.ServeHTTPRps, new_.ServeHTTPRps, func(o, n float64) (string, bool) {
		return "serve http rps dropped below 75% of OLD", n < o*0.75
	})

	// Shard scaling curve: rps_1 carries the throughput floor; rps_2/rps_4
	// are compared to NEW's own rps_1, with the grace chosen by whether
	// NEW's machine had the cores to scale (see the package doc).
	guardKey("shard rps x1", old.ServeShardRps1, new_.ServeShardRps1, func(o, n float64) (string, bool) {
		return "serve_shard_rps_1 dropped below 75% of OLD", n < o*0.75
	})
	// The plane-tax gate compares two NEW figures (rps_1 runs the same
	// scenario as the headline bench, just through the sharded plane), so
	// it fires whenever NEW carries both keys — regardless of what OLD
	// pinned.
	if new_.ServeShardRps1 != nil && new_.ServeHTTPRps != nil && *new_.ServeHTTPRps > 0 {
		if *new_.ServeShardRps1 < *new_.ServeHTTPRps*0.85 {
			addf("  FAIL serve_shard_rps_1 fell below 85%% of NEW's serve_http_rps (%.1f vs %.1f) — the sharding-plane tax is back",
				*new_.ServeShardRps1, *new_.ServeHTTPRps)
			failed = true
		}
	}
	shardGate := func(name string, shards int, oldV, newV *float64) {
		guardKey(name, oldV, newV, func(o, n float64) (string, bool) {
			if new_.ServeShardRps1 == nil || *new_.ServeShardRps1 <= 0 {
				return "", false // no rps_1 on NEW to scale against (its absence fails separately if OLD pinned it)
			}
			base := *new_.ServeShardRps1
			grace, why := 0.35, "single-core sanity floor"
			if new_.NumCPU != nil && *new_.NumCPU >= float64(shards) {
				grace, why = 0.97, fmt.Sprintf("num_cpu %.0f ≥ %d shards: the curve must be monotone", *new_.NumCPU, shards)
			}
			return fmt.Sprintf("serve_shard_rps_%d fell below %.0f%% of NEW's serve_shard_rps_1 (%s)",
				shards, grace*100, why), n < base*grace
		})
	}
	shardGate("shard rps x2", 2, old.ServeShardRps2, new_.ServeShardRps2)
	shardGate("shard rps x4", 4, old.ServeShardRps4, new_.ServeShardRps4)
	return lines, failed
}

func main() {
	maxNsRegress := flag.Float64("max-ns-regress", 0.25,
		"fail when ns/slot (core or serve) grows by more than this fraction")
	maxAllocRegress := flag.Float64("max-alloc-regress", 0.25,
		"fail when allocs/slot grows by more than this fraction (plus a +2 absolute grace for tiny baselines; +0.5 for serve allocs/req)")
	maxRatioDrift := flag.Float64("max-ratio-drift", 1e-9,
		"fail when |Δ lfsc_oracle_ratio| exceeds this absolute epsilon")
	minWorkersSpeedup := flag.Float64("min-workers-speedup", 0.9,
		"fail when core_workers_speedup falls below this floor (nominally 1.0; the default leaves noise grace for single-core boxes where the parallel path can only tie)")
	sloHistory := flag.String("slo-history", "",
		"validate an lfscload -slo-json history file (JSON Lines) instead of diffing artifacts")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] OLD.json NEW.json\n")
		fmt.Fprintf(os.Stderr, "       benchdiff -slo-history BENCH_serve.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *sloHistory != "" {
		if flag.NArg() != 0 {
			flag.Usage()
			os.Exit(2)
		}
		buf, err := os.ReadFile(*sloHistory)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		summary, err := validateSLOHistory(buf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *sloHistory, err)
			os.Exit(1)
		}
		fmt.Printf("benchdiff: %s: %d run(s), history OK\n", *sloHistory, len(summary))
		for _, l := range summary {
			fmt.Println(l)
		}
		return
	}
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	old, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	new_, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	fmt.Printf("benchdiff: %s (T=%d seed=%d) -> %s (T=%d seed=%d)\n",
		flag.Arg(0), old.TSlots, old.Seed, flag.Arg(1), new_.TSlots, new_.Seed)
	if old.TSlots != new_.TSlots || old.Seed != new_.Seed {
		fmt.Println("  warning: horizons/seeds differ; figures are not directly comparable")
	}
	lines, failed := diff(old, new_, thresholds{
		maxNsRegress:      *maxNsRegress,
		maxAllocRegress:   *maxAllocRegress,
		maxRatioDrift:     *maxRatioDrift,
		minWorkersSpeedup: *minWorkersSpeedup,
	})
	for _, l := range lines {
		fmt.Println(l)
	}
	for i, r := range []*benchResult{old, new_} {
		if len(r.extra) > 0 {
			fmt.Printf("  note: %s carries %d non-core key(s), not compared: %s\n",
				flag.Arg(i), len(r.extra), strings.Join(r.extra, ", "))
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("  OK within thresholds")
}
