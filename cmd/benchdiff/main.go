// Command benchdiff compares two BENCH_core.json perf-trajectory artifacts
// (see cmd/lfscbench -benchjson) and reports the deltas in the figures the
// repo tracks across commits: ns/slot, allocs/slot, and the LFSC/Oracle
// reward ratio.
//
// Usage:
//
//	benchdiff [flags] OLD.json NEW.json
//
// The exit status encodes the verdict so the comparison can gate CI or a
// local pre-commit check (make bench-diff): 0 when NEW is within the
// regression thresholds, 1 on a perf regression or a reward-ratio drift,
// 2 on usage/IO errors. Timing is compared with a relative threshold
// (default 25%, generous because single-run wall clock on a shared box is
// noisy); the reward ratio is compared with an absolute epsilon (default
// 1e-9) because the simulation is deterministic — any drift there means
// the computation itself changed, not the machine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// benchResult mirrors the fields of cmd/lfscbench's -benchjson schema that
// the diff consumes; unknown fields are ignored so the schemas can evolve
// independently — in particular, serve-layer entries (serve_ns_per_slot
// and friends) may ride in the same artifact without breaking the core
// comparison. Extra keys are reported informationally, never fatally.
type benchResult struct {
	Name          string  `json:"name"`
	Timestamp     string  `json:"timestamp"`
	TSlots        int     `json:"t_slots"`
	Seed          uint64  `json:"seed"`
	NsPerSlot     float64 `json:"ns_per_slot"`
	AllocsPerSlot float64 `json:"allocs_per_slot"`
	Ratio         float64 `json:"lfsc_oracle_ratio"`

	extra []string // unknown top-level keys, sorted
}

// knownKeys are the artifact fields benchdiff either diffs or understands
// as lfscbench provenance; anything else is an "extra" key.
var knownKeys = map[string]bool{
	"name": true, "timestamp": true, "go_version": true,
	"goos": true, "goarch": true, "num_cpu": true,
	"t_slots": true, "seed": true, "workers": true,
	"ns_per_slot": true, "allocs_per_slot": true,
	"lfsc_total_reward": true, "oracle_total_reward": true,
	"lfsc_oracle_ratio": true,
}

func load(path string) (*benchResult, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchResult
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.TSlots <= 0 || r.NsPerSlot <= 0 {
		return nil, fmt.Errorf("%s: not a lfscbench artifact (t_slots=%d, ns_per_slot=%v)",
			path, r.TSlots, r.NsPerSlot)
	}
	var all map[string]json.RawMessage
	if err := json.Unmarshal(buf, &all); err == nil {
		for k := range all {
			if !knownKeys[k] {
				r.extra = append(r.extra, k)
			}
		}
		sort.Strings(r.extra)
	}
	return &r, nil
}

func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

func main() {
	maxNsRegress := flag.Float64("max-ns-regress", 0.25,
		"fail when ns/slot grows by more than this fraction")
	maxAllocRegress := flag.Float64("max-alloc-regress", 0.25,
		"fail when allocs/slot grows by more than this fraction (plus a +2 absolute grace for tiny baselines)")
	maxRatioDrift := flag.Float64("max-ratio-drift", 1e-9,
		"fail when |Δ lfsc_oracle_ratio| exceeds this absolute epsilon")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	old, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	new_, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	fmt.Printf("benchdiff: %s (T=%d seed=%d) -> %s (T=%d seed=%d)\n",
		flag.Arg(0), old.TSlots, old.Seed, flag.Arg(1), new_.TSlots, new_.Seed)
	if old.TSlots != new_.TSlots || old.Seed != new_.Seed {
		fmt.Println("  warning: horizons/seeds differ; figures are not directly comparable")
	}
	fmt.Printf("  %-16s %14.1f -> %14.1f  (%+.1f%%)\n", "ns/slot", old.NsPerSlot, new_.NsPerSlot, pct(old.NsPerSlot, new_.NsPerSlot))
	fmt.Printf("  %-16s %14.2f -> %14.2f  (%+.1f%%)\n", "allocs/slot", old.AllocsPerSlot, new_.AllocsPerSlot, pct(old.AllocsPerSlot, new_.AllocsPerSlot))
	fmt.Printf("  %-16s %14.10f -> %14.10f  (Δ %.3e)\n", "reward ratio", old.Ratio, new_.Ratio, new_.Ratio-old.Ratio)
	for i, r := range []*benchResult{old, new_} {
		if len(r.extra) > 0 {
			fmt.Printf("  note: %s carries %d non-core key(s), not compared: %s\n",
				flag.Arg(i), len(r.extra), strings.Join(r.extra, ", "))
		}
	}

	failed := false
	if new_.NsPerSlot > old.NsPerSlot*(1+*maxNsRegress) {
		fmt.Printf("  FAIL ns/slot regressed beyond %.0f%%\n", *maxNsRegress*100)
		failed = true
	}
	if new_.AllocsPerSlot > old.AllocsPerSlot*(1+*maxAllocRegress)+2 {
		fmt.Printf("  FAIL allocs/slot regressed beyond %.0f%%\n", *maxAllocRegress*100)
		failed = true
	}
	if math.Abs(new_.Ratio-old.Ratio) > *maxRatioDrift {
		fmt.Printf("  FAIL reward ratio drifted beyond %g — the deterministic computation changed\n", *maxRatioDrift)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("  OK within thresholds")
}
