package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeArtifact(t *testing.T, name, data string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const coreArtifact = `{
  "name": "lfsc-core", "t_slots": 1000, "seed": 42,
  "ns_per_slot": 400000, "allocs_per_slot": 2.2,
  "lfsc_oracle_ratio": 0.84
}`

func TestLoadCoreArtifact(t *testing.T) {
	r, err := load(writeArtifact(t, "core.json", coreArtifact))
	if err != nil {
		t.Fatal(err)
	}
	if r.TSlots != 1000 || r.NsPerSlot != 400000 || r.Ratio != 0.84 {
		t.Fatalf("bad decode: %+v", r)
	}
	if len(r.extra) != 0 {
		t.Fatalf("core artifact flagged extras: %v", r.extra)
	}
}

// TestLoadToleratesServeLayerKeys pins the schema-evolution contract:
// serve-layer benchmark entries ride in BENCH_core.json without breaking
// the core diff — they are surfaced as extras, not errors.
func TestLoadToleratesServeLayerKeys(t *testing.T) {
	withServe := `{
  "name": "lfsc-core", "t_slots": 1000, "seed": 42,
  "ns_per_slot": 400000, "allocs_per_slot": 2.2,
  "lfsc_oracle_ratio": 0.84,
  "serve_ns_per_slot": 9600,
  "serve_allocs_per_slot": 14,
  "serve_future_metric": {"nested": [1, 2, 3]}
}`
	r, err := load(writeArtifact(t, "serve.json", withServe))
	if err != nil {
		t.Fatalf("serve-layer keys broke the load: %v", err)
	}
	if r.NsPerSlot != 400000 || r.Ratio != 0.84 {
		t.Fatalf("core fields perturbed by extras: %+v", r)
	}
	got := strings.Join(r.extra, ",")
	want := "serve_allocs_per_slot,serve_future_metric,serve_ns_per_slot"
	if got != want {
		t.Fatalf("extras = %q, want %q", got, want)
	}
}

func TestLoadRejectsNonArtifacts(t *testing.T) {
	cases := map[string]string{
		"empty-object": `{}`,
		"garbage":      `not json`,
		"zero-slots":   `{"t_slots": 0, "ns_per_slot": 1}`,
		"zero-ns":      `{"t_slots": 10, "ns_per_slot": 0}`,
	}
	for name, data := range cases {
		if _, err := load(writeArtifact(t, name, data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
