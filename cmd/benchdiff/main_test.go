package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeArtifact(t *testing.T, name, data string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const coreArtifact = `{
  "name": "lfsc-core", "t_slots": 1000, "seed": 42,
  "ns_per_slot": 400000, "allocs_per_slot": 2.2,
  "lfsc_oracle_ratio": 0.84
}`

func TestLoadCoreArtifact(t *testing.T) {
	r, err := load(writeArtifact(t, "core.json", coreArtifact))
	if err != nil {
		t.Fatal(err)
	}
	if r.TSlots != 1000 || r.NsPerSlot != 400000 || r.Ratio != 0.84 {
		t.Fatalf("bad decode: %+v", r)
	}
	if len(r.extra) != 0 {
		t.Fatalf("core artifact flagged extras: %v", r.extra)
	}
}

// TestLoadToleratesServeLayerKeys pins the schema-evolution contract:
// serve-layer benchmark entries ride in BENCH_core.json as first-class
// guarded fields, and genuinely unknown keys are surfaced as extras, not
// errors.
func TestLoadToleratesServeLayerKeys(t *testing.T) {
	withServe := `{
  "name": "lfsc-core", "t_slots": 1000, "seed": 42,
  "ns_per_slot": 400000, "allocs_per_slot": 2.2,
  "lfsc_oracle_ratio": 0.84,
  "serve_ns_per_slot": 9600,
  "serve_allocs_per_slot": 14,
  "serve_future_metric": {"nested": [1, 2, 3]}
}`
	r, err := load(writeArtifact(t, "serve.json", withServe))
	if err != nil {
		t.Fatalf("serve-layer keys broke the load: %v", err)
	}
	if r.NsPerSlot != 400000 || r.Ratio != 0.84 {
		t.Fatalf("core fields perturbed by extras: %+v", r)
	}
	if r.ServeNsPerSlot == nil || *r.ServeNsPerSlot != 9600 {
		t.Fatalf("serve_ns_per_slot not decoded: %+v", r.ServeNsPerSlot)
	}
	if r.ServeAllocsPerSlot == nil || *r.ServeAllocsPerSlot != 14 {
		t.Fatalf("serve_allocs_per_slot not decoded: %+v", r.ServeAllocsPerSlot)
	}
	if r.ServeAllocsPerReq != nil || r.ServeHTTPRps != nil {
		t.Fatalf("absent serve keys decoded non-nil: %+v", r)
	}
	got := strings.Join(r.extra, ",")
	want := "serve_future_metric"
	if got != want {
		t.Fatalf("extras = %q, want %q", got, want)
	}
}

func f64(v float64) *float64 { return &v }

func baseResult() *benchResult {
	return &benchResult{
		TSlots: 1000, Seed: 42,
		NsPerSlot: 400000, AllocsPerSlot: 2.2, Ratio: 0.84,
		ServeNsPerSlot:     f64(4500),
		ServeAllocsPerSlot: f64(0),
		ServeAllocsPerReq:  f64(0),
		ServeHTTPRps:       f64(15000),
	}
}

var defaultTh = thresholds{maxNsRegress: 0.25, maxAllocRegress: 0.25, maxRatioDrift: 1e-9, minWorkersSpeedup: 0.9}

func runDiff(t *testing.T, old, new_ *benchResult) (string, bool) {
	t.Helper()
	lines, failed := diff(old, new_, defaultTh)
	return strings.Join(lines, "\n"), failed
}

// TestDiffServeGuards pins the serve-layer gates: timing shares the core
// ns threshold, allocs/req gets the +0.5 absolute grace over a zero
// baseline, throughput fails below 75% of OLD, and a guarded key that
// vanishes from NEW fails the diff.
func TestDiffServeGuards(t *testing.T) {
	t.Run("identical passes", func(t *testing.T) {
		if out, failed := runDiff(t, baseResult(), baseResult()); failed {
			t.Fatalf("identical artifacts failed:\n%s", out)
		}
	})
	t.Run("serve ns within threshold passes", func(t *testing.T) {
		n := baseResult()
		n.ServeNsPerSlot = f64(4500 * 1.2)
		if out, failed := runDiff(t, baseResult(), n); failed {
			t.Fatalf("20%% serve ns growth failed at 25%% threshold:\n%s", out)
		}
	})
	t.Run("serve ns regression fails", func(t *testing.T) {
		n := baseResult()
		n.ServeNsPerSlot = f64(4500 * 1.3)
		out, failed := runDiff(t, baseResult(), n)
		if !failed || !strings.Contains(out, "serve ns/slot regressed") {
			t.Fatalf("30%% serve ns growth passed:\n%s", out)
		}
	})
	t.Run("allocs/req grace over zero baseline", func(t *testing.T) {
		n := baseResult()
		n.ServeAllocsPerReq = f64(0.4)
		if out, failed := runDiff(t, baseResult(), n); failed {
			t.Fatalf("0.4 allocs/req failed the +0.5 grace over a 0 baseline:\n%s", out)
		}
		n.ServeAllocsPerReq = f64(0.6)
		out, failed := runDiff(t, baseResult(), n)
		if !failed || !strings.Contains(out, "serve allocs/req regressed") {
			t.Fatalf("0.6 allocs/req passed over a 0 baseline:\n%s", out)
		}
	})
	t.Run("http rps floor", func(t *testing.T) {
		n := baseResult()
		n.ServeHTTPRps = f64(15000 * 0.8)
		if out, failed := runDiff(t, baseResult(), n); failed {
			t.Fatalf("-20%% rps failed at the 75%% floor:\n%s", out)
		}
		n.ServeHTTPRps = f64(15000 * 0.7)
		out, failed := runDiff(t, baseResult(), n)
		if !failed || !strings.Contains(out, "serve http rps dropped") {
			t.Fatalf("-30%% rps passed the 75%% floor:\n%s", out)
		}
	})
	t.Run("dropped guarded key fails", func(t *testing.T) {
		n := baseResult()
		n.ServeHTTPRps = nil
		out, failed := runDiff(t, baseResult(), n)
		if !failed || !strings.Contains(out, "missing from NEW") {
			t.Fatalf("dropped serve_http_rps passed:\n%s", out)
		}
	})
	t.Run("serve block absent on both sides passes", func(t *testing.T) {
		o, n := baseResult(), baseResult()
		o.ServeNsPerSlot, o.ServeAllocsPerSlot, o.ServeAllocsPerReq, o.ServeHTTPRps = nil, nil, nil, nil
		n.ServeNsPerSlot, n.ServeAllocsPerSlot, n.ServeAllocsPerReq, n.ServeHTTPRps = nil, nil, nil, nil
		if out, failed := runDiff(t, o, n); failed {
			t.Fatalf("pre-serve artifacts failed:\n%s", out)
		}
	})
	t.Run("new key on NEW side only passes", func(t *testing.T) {
		o := baseResult()
		o.ServeAllocsPerReq = nil
		if out, failed := runDiff(t, o, baseResult()); failed {
			t.Fatalf("serve key newly added in NEW failed:\n%s", out)
		}
	})
}

// TestDiffObsOverheadGuard pins the serve_ns_per_slot_obs gate: the
// instrumented loop is compared to NEW's own serve_ns_per_slot_probe
// (the shipped probe-on baseline, ≤5% overhead), never to OLD, and the
// usual dropped-key/new-key rules apply.
func TestDiffObsOverheadGuard(t *testing.T) {
	with := func(probe, obs *float64) *benchResult {
		r := baseResult()
		r.ServeNsPerSlot = f64(4400)
		r.ServeNsPerSlotProbe = probe
		r.ServeNsPerSlotObs = obs
		return r
	}
	old := with(f64(4500), f64(4550))

	t.Run("within 5% of NEW baseline passes", func(t *testing.T) {
		if out, failed := runDiff(t, old, with(f64(4500), f64(4700))); failed {
			t.Fatalf("4.4%% obs overhead failed the 5%% gate:\n%s", out)
		}
	})
	t.Run("beyond 5% of NEW baseline fails", func(t *testing.T) {
		out, failed := runDiff(t, old, with(f64(4500), f64(4800)))
		if !failed || !strings.Contains(out, "serve_ns_per_slot_obs exceeds 105%") {
			t.Fatalf("6.7%% obs overhead passed the 5%% gate:\n%s", out)
		}
	})
	t.Run("gate scales with NEW baseline, not OLD", func(t *testing.T) {
		// NEW's obs figure is double OLD's, but it sits within 5% of NEW's
		// own probe baseline — the gate prices instrumentation, not drift.
		if out, failed := runDiff(t, with(f64(8800), f64(4550)), with(f64(9000), f64(9300))); failed {
			t.Fatalf("obs within 5%% of NEW's own baseline failed:\n%s", out)
		}
	})
	t.Run("dropped obs key fails", func(t *testing.T) {
		out, failed := runDiff(t, old, with(f64(4500), nil))
		if !failed || !strings.Contains(out, "missing from NEW") {
			t.Fatalf("dropped serve_ns_per_slot_obs passed:\n%s", out)
		}
	})
	t.Run("dropped probe baseline fails", func(t *testing.T) {
		// The probe key is guarded in its own right, so the obs gate can
		// never lose its reference point silently.
		out, failed := runDiff(t, old, with(nil, f64(4700)))
		if !failed || !strings.Contains(out, "missing from NEW") {
			t.Fatalf("dropped serve_ns_per_slot_probe passed:\n%s", out)
		}
	})
	t.Run("probe baseline regression fails", func(t *testing.T) {
		out, failed := runDiff(t, old, with(f64(4500*1.3), f64(4600)))
		if !failed || !strings.Contains(out, "probe baseline") {
			t.Fatalf("30%% probe-baseline regression passed:\n%s", out)
		}
	})
	t.Run("new obs key on NEW side only passes", func(t *testing.T) {
		out, failed := runDiff(t, with(f64(4500), nil), with(f64(4500), f64(4600)))
		if failed {
			t.Fatalf("newly added obs key was gated:\n%s", out)
		}
		if !strings.Contains(out, "new key, not compared") {
			t.Fatalf("new obs key not reported informationally:\n%s", out)
		}
	})
	t.Run("absent on both sides passes", func(t *testing.T) {
		if out, failed := runDiff(t, with(f64(4500), nil), with(f64(4500), nil)); failed {
			t.Fatalf("pre-obs artifacts failed:\n%s", out)
		}
	})
}

// TestDiffWorkersSpeedupGuard pins the core_workers_speedup gate: an
// absolute floor (default 0.9 — nominal 1.0 with noise grace for
// single-core boxes), the same dropped-key-fails rule as the serve block,
// and the informational new-key path.
func TestDiffWorkersSpeedupGuard(t *testing.T) {
	with := func(v *float64) *benchResult {
		r := baseResult()
		r.CoreWorkersSpeedup = v
		return r
	}
	t.Run("above floor passes", func(t *testing.T) {
		if out, failed := runDiff(t, with(f64(1.05)), with(f64(0.95))); failed {
			t.Fatalf("speedup 0.95 failed the 0.9 floor:\n%s", out)
		}
	})
	t.Run("below floor fails", func(t *testing.T) {
		out, failed := runDiff(t, with(f64(1.05)), with(f64(0.85)))
		if !failed || !strings.Contains(out, "core_workers_speedup fell below") {
			t.Fatalf("speedup 0.85 passed the 0.9 floor:\n%s", out)
		}
	})
	t.Run("floor is absolute, not relative to OLD", func(t *testing.T) {
		// A big drop from OLD still passes as long as NEW clears the floor:
		// the figure is pure noise on single-core machines, so only the
		// absolute floor is load-bearing.
		if out, failed := runDiff(t, with(f64(1.6)), with(f64(0.95))); failed {
			t.Fatalf("relative drop failed despite clearing the absolute floor:\n%s", out)
		}
	})
	t.Run("dropped key fails", func(t *testing.T) {
		out, failed := runDiff(t, with(f64(1.0)), with(nil))
		if !failed || !strings.Contains(out, "missing from NEW") {
			t.Fatalf("dropped core_workers_speedup passed:\n%s", out)
		}
	})
	t.Run("new key on NEW side only passes", func(t *testing.T) {
		out, failed := runDiff(t, with(nil), with(f64(0.5)))
		if failed {
			t.Fatalf("newly added speedup key was gated:\n%s", out)
		}
		if !strings.Contains(out, "new key, not compared") {
			t.Fatalf("new speedup key not reported informationally:\n%s", out)
		}
	})
	t.Run("absent on both sides passes", func(t *testing.T) {
		if out, failed := runDiff(t, with(nil), with(nil)); failed {
			t.Fatalf("pre-speedup artifacts failed:\n%s", out)
		}
	})
}

// TestDiffShardRpsGuards pins the shard-scaling-curve gates as a table:
// rps_1 carries the 75%-of-OLD floor plus the plane-tax gate against
// NEW's own serve_http_rps (≥85% — same scenario, sharded plane);
// rps_2/rps_4 are compared to NEW's own rps_1 with a num_cpu-aware grace
// (97% — monotone with measurement slack — where the machine has ≥ that
// many cores, 35% sanity floor otherwise); and dropped keys fail like
// every guarded figure.
func TestDiffShardRpsGuards(t *testing.T) {
	// The helper pins serve_http_rps at 9000 so a 10000 rps_1 clears the
	// 85% plane-tax gate with room; individual cases override it to
	// exercise that gate directly.
	shardResult := func(numCPU float64, r1, r2, r4 *float64) *benchResult {
		r := baseResult()
		r.ServeHTTPRps = f64(9000)
		r.NumCPU = f64(numCPU)
		r.ServeShardRps1, r.ServeShardRps2, r.ServeShardRps4 = r1, r2, r4
		return r
	}
	withHTTP := func(r *benchResult, rps float64) *benchResult {
		r.ServeHTTPRps = f64(rps)
		return r
	}
	oldCurve := shardResult(1, f64(10000), f64(9800), f64(9500))

	cases := []struct {
		name     string
		new_     *benchResult
		wantFail bool
		wantMsg  string
	}{
		{
			name: "flat single-core curve passes",
			new_: shardResult(1, f64(10000), f64(9700), f64(9400)),
		},
		{
			name:     "rps_1 below 75% of OLD fails",
			new_:     shardResult(1, f64(7400), f64(7300), f64(7200)),
			wantFail: true, wantMsg: "serve_shard_rps_1 dropped below 75% of OLD",
		},
		{
			name: "rps_1 at 80% of OLD passes",
			new_: shardResult(1, f64(8000), f64(7900), f64(7800)),
		},
		{
			// num_cpu 1 < 4 shards: the 35% sanity floor applies, and 50%
			// of rps_1 clears it.
			name: "single-core overhead within sanity floor passes",
			new_: shardResult(1, f64(10000), f64(6000), f64(5000)),
		},
		{
			name:     "single-core crater below 35% of rps_1 fails",
			new_:     shardResult(1, f64(10000), f64(9000), f64(3000)),
			wantFail: true, wantMsg: "serve_shard_rps_4 fell below 35% of NEW's serve_shard_rps_1",
		},
		{
			// num_cpu 8 ≥ 4: monotonicity binds at 97%; 60% of rps_1 at
			// Shards=4 means sharding lost to the single-shard plane on a
			// machine where it had room to run.
			name:     "multi-core rps_4 below 97% of rps_1 fails",
			new_:     shardResult(8, f64(10000), f64(11000), f64(6000)),
			wantFail: true, wantMsg: "serve_shard_rps_4 fell below 97% of NEW's serve_shard_rps_1",
		},
		{
			name: "multi-core scaling curve passes",
			new_: shardResult(8, f64(10000), f64(17000), f64(30000)),
		},
		{
			// A multi-core curve that merely ties rps_1 is fine — 97% is
			// measurement grace on a monotone requirement, not a scaling
			// allowance.
			name: "multi-core tie within 3% grace passes",
			new_: shardResult(8, f64(10000), f64(9750), f64(10100)),
		},
		{
			name:     "multi-core rps_2 just under the 3% grace fails",
			new_:     shardResult(8, f64(10000), f64(9600), f64(10100)),
			wantFail: true, wantMsg: "serve_shard_rps_2 fell below 97% of NEW's serve_shard_rps_1",
		},
		{
			// num_cpu 2: rps_2 binds at 97%, rps_4 only at the sanity floor.
			name: "grace chosen per shard count",
			new_: shardResult(2, f64(10000), f64(9800), f64(4000)),
		},
		{
			name:     "num_cpu 2 with rps_2 below 97% fails",
			new_:     shardResult(2, f64(10000), f64(8000), f64(9800)),
			wantFail: true, wantMsg: "serve_shard_rps_2 fell below 97% of NEW's serve_shard_rps_1",
		},
		{
			// The plane-tax gate: rps_1 runs the same scenario as the
			// headline bench, so falling below 85% of NEW's own
			// serve_http_rps means the sharded plane's overhead came back.
			name:     "rps_1 below 85% of NEW http rps fails",
			new_:     withHTTP(shardResult(1, f64(9000), f64(8800), f64(8700)), 12000),
			wantFail: true, wantMsg: "serve_shard_rps_1 fell below 85% of NEW's serve_http_rps",
		},
		{
			name: "rps_1 at 90% of NEW http rps passes",
			new_: withHTTP(shardResult(1, f64(10800), f64(10500), f64(10400)), 12000),
		},
		{
			name:     "dropped rps_4 fails",
			new_:     shardResult(1, f64(10000), f64(9800), nil),
			wantFail: true, wantMsg: "missing from NEW",
		},
		{
			name:     "dropped rps_1 fails",
			new_:     shardResult(1, nil, f64(9800), f64(9500)),
			wantFail: true, wantMsg: "missing from NEW",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, failed := runDiff(t, oldCurve, tc.new_)
			if failed != tc.wantFail {
				t.Fatalf("failed = %v, want %v:\n%s", failed, tc.wantFail, out)
			}
			if tc.wantMsg != "" && !strings.Contains(out, tc.wantMsg) {
				t.Fatalf("output missing %q:\n%s", tc.wantMsg, out)
			}
		})
	}

	t.Run("curve absent on both sides passes", func(t *testing.T) {
		if out, failed := runDiff(t, baseResult(), baseResult()); failed {
			t.Fatalf("pre-curve artifacts failed:\n%s", out)
		}
	})
	t.Run("curve newly added in NEW passes", func(t *testing.T) {
		o := baseResult()
		o.ServeHTTPRps = f64(9000)
		out, failed := runDiff(t, o, shardResult(1, f64(10000), f64(9800), f64(9500)))
		if failed {
			t.Fatalf("newly added curve was gated:\n%s", out)
		}
		if !strings.Contains(out, "new key, not compared") {
			t.Fatalf("new curve keys not reported informationally:\n%s", out)
		}
	})
	t.Run("plane-tax gate binds even when OLD lacks the curve", func(t *testing.T) {
		// The gate compares two NEW-side figures; a baseline that predates
		// the curve doesn't exempt a taxed NEW.
		o := baseResult()
		o.ServeHTTPRps = f64(9000)
		out, failed := runDiff(t, o, withHTTP(shardResult(1, f64(9000), f64(8800), f64(8700)), 12000))
		if !failed || !strings.Contains(out, "serve_shard_rps_1 fell below 85% of NEW's serve_http_rps") {
			t.Fatalf("taxed rps_1 passed against a pre-curve OLD:\n%s", out)
		}
	})
}

// TestDiffCoreGuards keeps the pre-serve gates intact.
func TestDiffCoreGuards(t *testing.T) {
	t.Run("ns regression fails", func(t *testing.T) {
		n := baseResult()
		n.NsPerSlot = 400000 * 1.3
		out, failed := runDiff(t, baseResult(), n)
		if !failed || !strings.Contains(out, "ns/slot regressed") {
			t.Fatalf("30%% core ns growth passed:\n%s", out)
		}
	})
	t.Run("ratio drift fails", func(t *testing.T) {
		n := baseResult()
		n.Ratio = 0.84 + 1e-6
		out, failed := runDiff(t, baseResult(), n)
		if !failed || !strings.Contains(out, "reward ratio drifted") {
			t.Fatalf("ratio drift passed:\n%s", out)
		}
	})
}

// TestValidateSLOHistory pins the -slo-history contract as a table: a
// well-formed JSON-Lines history passes with one summary line per run,
// and every corruption mode — partial trailing line, malformed JSON,
// blank line, nonsense figures, bad scenario digest — is rejected with
// its line number instead of being silently skipped.
func TestValidateSLOHistory(t *testing.T) {
	const run1 = `{"name":"lfscload","timestamp":"2026-08-08T10:00:00Z","t_slots":500,"slots":500,"shards":1,"seed":42,"shed_rate":0,"slots_per_sec":980.5,"cum_reward":61234.5}`
	const run2 = `{"name":"lfscload","timestamp":"2026-08-08T10:05:00Z","t_slots":500,"slots":480,"shards":4,"seed":42,"shed_rate":0.04,"slots_per_sec":1103.2,"cum_reward":58999.1,"scenario":"696b0a7aa985e812"}`

	cases := []struct {
		name    string
		data    string
		entries int
		wantErr string // substring of the error, "" = must pass
	}{
		{name: "empty history", data: "", entries: 0},
		{name: "single run", data: run1 + "\n", entries: 1},
		{name: "two runs with scenario digest", data: run1 + "\n" + run2 + "\n", entries: 2},
		{
			name:    "unknown fields tolerated",
			data:    `{"name":"lfscload","t_slots":10,"slots":10,"future_key":{"nested":[1]}}` + "\n",
			entries: 1,
		},
		{
			name:    "partial trailing line",
			data:    run1 + "\n" + `{"name":"lfscload","t_slots":500,"slo`,
			wantErr: "line 2: partial trailing line",
		},
		{
			name:    "malformed JSON mid-file",
			data:    run1 + "\n" + "not json\n" + run2 + "\n",
			wantErr: "line 2:",
		},
		{
			name:    "blank interior line",
			data:    run1 + "\n\n" + run2 + "\n",
			wantErr: "line 2: blank line",
		},
		{
			name:    "missing name",
			data:    `{"t_slots":500,"slots":500}` + "\n",
			wantErr: "line 1: missing name",
		},
		{
			name:    "zero t_slots",
			data:    `{"name":"lfscload","t_slots":0,"slots":0}` + "\n",
			wantErr: "line 1: t_slots must be positive",
		},
		{
			name:    "slots beyond horizon",
			data:    `{"name":"lfscload","t_slots":100,"slots":101}` + "\n",
			wantErr: "line 1: slots 101 outside",
		},
		{
			name:    "shed rate out of range",
			data:    `{"name":"lfscload","t_slots":100,"slots":100,"shed_rate":1.5}` + "\n",
			wantErr: "line 1: shed_rate 1.5 outside",
		},
		{
			name:    "bad scenario digest",
			data:    `{"name":"lfscload","t_slots":100,"slots":100,"scenario":"XYZ"}` + "\n",
			wantErr: `line 1: scenario digest "XYZ"`,
		},
		{
			name:    "error names the right line in a long history",
			data:    run1 + "\n" + run2 + "\n" + `{"name":"","t_slots":1,"slots":1}` + "\n",
			wantErr: "line 3: missing name",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			summary, err := validateSLOHistory([]byte(tc.data))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid history rejected: %v", err)
				}
				if len(summary) != tc.entries {
					t.Fatalf("summary lines = %d, want %d:\n%s", len(summary), tc.entries, strings.Join(summary, "\n"))
				}
				return
			}
			if err == nil {
				t.Fatalf("corrupt history accepted:\n%s", strings.Join(summary, "\n"))
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %q, want substring %q", err, tc.wantErr)
			}
		})
	}

	t.Run("summary carries the scenario digest", func(t *testing.T) {
		summary, err := validateSLOHistory([]byte(run1 + "\n" + run2 + "\n"))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(summary[0], "static") {
			t.Fatalf("static run not labelled: %q", summary[0])
		}
		if !strings.Contains(summary[1], "696b0a7aa985e812") {
			t.Fatalf("scenario run missing its digest: %q", summary[1])
		}
	})
}

func TestLoadRejectsNonArtifacts(t *testing.T) {
	cases := map[string]string{
		"empty-object": `{}`,
		"garbage":      `not json`,
		"zero-slots":   `{"t_slots": 0, "ns_per_slot": 1}`,
		"zero-ns":      `{"t_slots": 10, "ns_per_slot": 0}`,
	}
	for name, data := range cases {
		if _, err := load(writeArtifact(t, name, data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
