// Command lfscd is the online decision-serving daemon: the MBS side of
// the paper's framework, run as a service. Clients POST task arrivals
// (context vector + visible SCNs) to /v1/submit; a slot-clocked batcher
// aggregates them into a slot, runs the LFSC decision, and returns each
// task's SCN assignment. Realised outcomes come back through /v1/report
// and drive the bandit update; /v1/step batches both into one round
// trip (previous slot's outcomes + next slot's arrivals). The hot
// endpoints run a zero-allocation wire path — pooled request objects,
// in-place decoding, append-based encoding. Queues are bounded — under
// overload the daemon sheds submissions with 429 instead of building
// unbounded backlog.
//
// Usage:
//
//	lfscd [-addr :9090] [-scns 30] [-c 20] [-alpha 15] [-beta 27]
//	      [-h 3] [-kmax 200] [-T 10000] [-seed 42] [-latency-ctx]
//	      [-shards 1] [-scenario churn.scn]
//	      [-slot-every 100ms] [-max-batch 0] [-queue-cap 0]
//	      [-report-wait 2s]
//	      [-checkpoint lfscd.ckpt] [-checkpoint-every 100]
//	      [-snapshots f.jsonl] [-snap-every 100]
//	      [-metrics] [-slot-trace 256] [-slot-trace-jsonl f.jsonl]
//	      [-slo-window 60] [-slo-shed-budget 0.01]
//	      [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -shards splits the learner into consistent-hash SCN groups that decide
// and observe in parallel; decisions stay bit-identical at any shard
// count (DESIGN.md §11).
//
// -scenario imposes a timeline of SCN dynamics (sleep schedules, random
// churn, capacity and budget cycles — see DESIGN.md §13) on serving:
// each decided slot masks down SCNs out of the view and applies the
// per-SCN capacity/budget vectors. The timeline derives from -seed, so
// daemon, load generator, and offline simulator replaying the same
// scenario file and seed see identical dynamics. Checkpoints record the
// scenario digest and a restore under a different (or missing) scenario
// is refused.
//
// Lifecycle: on boot the daemon restores -checkpoint when the file
// exists and resumes the learner bit-exactly (weights, multipliers,
// slot counter, RNG streams, reward accumulator). It checkpoints
// atomically every -checkpoint-every slots and again on SIGINT/SIGTERM
// before exiting, so a kill at any point loses at most the slots since
// the last periodic write — never the file. A sharded daemon writes one
// file per shard plus a manifest at the -checkpoint path; a pre-sharding
// single-file checkpoint restores into a sharded daemon (each shard takes
// its rows), but a sharded checkpoint requires the same -shards count.
//
// Observability: /lfsc/status (plain text), /v1/stats (JSON),
// /metrics (Prometheus text exposition, on by default — disable with
// -metrics=false), /lfsc/slots (the slot-lifecycle trace ring as JSON;
// -slot-trace sets the ring size, -slot-trace-jsonl additionally streams
// every record to a file), /debug/vars (expvar, including "lfsc_serve"),
// /debug/pprof. -slo-window/-slo-shed-budget configure the rolling
// latency/shed SLO tracker surfaced on all three status surfaces. None
// of it perturbs serving: instrumented runs are bit-identical to bare
// runs and the wire path stays at 0 allocs/request (DESIGN.md §12).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"lfsc/internal/obs"
	"lfsc/internal/scenario"
	"lfsc/internal/serve"
	"lfsc/internal/task"
)

func main() {
	var (
		addr     = flag.String("addr", ":9090", "HTTP listen address")
		scns     = flag.Int("scns", 30, "number of SCNs")
		capacity = flag.Int("c", 20, "per-SCN beam budget")
		alpha    = flag.Float64("alpha", 15, "QoS floor (min completed tasks)")
		beta     = flag.Float64("beta", 27, "resource ceiling")
		hGrain   = flag.Int("h", 3, "hypercube granularity per context dim")
		kmax     = flag.Int("kmax", 200, "bound on per-SCN visible tasks per slot")
		horizon  = flag.Int("T", 10000, "schedule horizon (slots)")
		seed     = flag.Uint64("seed", 42, "master seed (policy stream = Derive(3))")
		latCtx   = flag.Bool("latency-ctx", false, "use the 4-D context with the latency class")
		shards   = flag.Int("shards", 1, "learner shards (consistent-hash SCN groups; decisions are bit-identical at any count)")
		scenFile = flag.String("scenario", "", "scenario config file: SCN sleep/churn/capacity/budget dynamics over slots")

		slotEvery  = flag.Duration("slot-every", 100*time.Millisecond, "slot clock (0 = close only at KMax/MaxBatch/explicit close)")
		maxBatch   = flag.Int("max-batch", 0, "close the slot at this many tasks (0 = SCNs*KMax)")
		queueCap   = flag.Int("queue-cap", 0, "pending-task budget before shedding (0 = 4*MaxBatch)")
		subQueue   = flag.Int("sub-queue", 0, "submission channel depth (0 = 64)")
		reportWait = flag.Duration("report-wait", 2*time.Second, "how long a decided slot waits for outcome reports")

		ckptPath  = flag.String("checkpoint", "", "checkpoint file (restore on boot, write periodically and on shutdown)")
		ckptEvery = flag.Int("checkpoint-every", 100, "periodic checkpoint interval in slots (0 = only on shutdown)")

		snapPath = flag.String("snapshots", "", "write policy-state snapshots as JSONL to this file")
		snapK    = flag.Int("snap-every", 100, "snapshot sampling period in slots")

		metricsOn = flag.Bool("metrics", true, "serve Prometheus metrics at /metrics")
		traceN    = flag.Int("slot-trace", 256, "slot-lifecycle trace ring size, served at /lfsc/slots (0 = off)")
		traceOut  = flag.String("slot-trace-jsonl", "", "additionally stream every slot-trace record to this JSONL file")
		sloWindow = flag.Int("slo-window", 60, "rolling SLO window in seconds (0 = off)")
		sloBudget = flag.Float64("slo-shed-budget", 0.01, "shed-rate budget for the SLO window (fraction of requests)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the serving run to this file (stopped at shutdown)")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at shutdown")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lfscd: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "lfscd: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		// Deferred, so it runs after eng.Stop(): the heap picture is the
		// quiesced daemon — pooled buffers and learner state, not
		// in-flight requests.
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lfscd: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "lfscd: memprofile: %v\n", err)
			}
		}()
	}

	dims := task.ContextDims
	if *latCtx {
		dims++
	}
	cfg := serve.Config{
		SCNs: *scns, Capacity: *capacity, Alpha: *alpha, Beta: *beta,
		Dims: dims, H: *hGrain, KMax: *kmax, Horizon: *horizon, Seed: *seed,
		Shards:    *shards,
		SlotEvery: *slotEvery, MaxBatch: *maxBatch, QueueCap: *queueCap,
		SubQueue: *subQueue, ReportWait: *reportWait,
		CheckpointPath: *ckptPath, CheckpointEvery: *ckptEvery,
		Probe:    obs.NewProbe(),
		Registry: obs.NewRegistry(),
	}
	if *scenFile != "" {
		scfg, err := scenario.ParseFile(*scenFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lfscd: scenario: %v\n", err)
			os.Exit(1)
		}
		tl, err := scenario.Build(scfg, *scns, *horizon, *capacity, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lfscd: scenario: %v\n", err)
			os.Exit(1)
		}
		cfg.Scenario = tl
		fmt.Fprintf(os.Stderr, "lfscd: %s\n", tl)
	}
	if *snapPath != "" {
		f, err := os.Create(*snapPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lfscd: snapshots: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.SnapshotEvery = *snapK
		cfg.SnapshotSink = obs.NewJSONLWriter(f)
	}
	if *metricsOn {
		cfg.Metrics = obs.NewMetrics()
	}
	if *sloWindow > 0 {
		cfg.SLO = obs.NewSLO(*sloWindow, *sloBudget)
	}
	if *traceN > 0 {
		cfg.SlotRing = obs.NewSlotRing(*traceN, *shards)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lfscd: slot-trace-jsonl: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			cfg.SlotRing.SetSink(obs.NewJSONLWriter(f))
		}
	}

	eng, err := serve.NewEngine(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfscd: %v\n", err)
		os.Exit(1)
	}
	if *ckptPath != "" {
		restored, err := eng.RestoreIfPresent(*ckptPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lfscd: restore: %v\n", err)
			os.Exit(1)
		}
		if restored {
			fmt.Fprintf(os.Stderr, "lfscd: restored %s: resuming at slot %d, cum reward %.4f\n",
				*ckptPath, eng.Slot(), eng.CumReward())
		}
	}

	srv, err := serve.StartServer(*addr, eng)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfscd: %v\n", err)
		os.Exit(1)
	}
	eng.Start()
	fmt.Fprintf(os.Stderr, "lfscd: serving http://%s/lfsc/status (M=%d c=%d α=%g β=%g h=%d kmax=%d T=%d seed=%d shards=%d)\n",
		srv.Addr(), *scns, *capacity, *alpha, *beta, *hGrain, *kmax, *horizon, *seed, *shards)

	// Graceful shutdown: finish the slot in flight, write the final
	// checkpoint, then exit.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "lfscd: %v: checkpointing and shutting down\n", s)
	srv.Close()
	eng.Stop()
	fmt.Fprintf(os.Stderr, "lfscd: stopped at slot %d, cum reward %.4f\n", eng.Slot(), eng.CumReward())
}
