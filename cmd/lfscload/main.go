// Command lfscload replays a seeded synthetic trace against a running
// lfscd daemon over HTTP: it regenerates the workload slot by slot,
// submits each slot's arrivals, realises outcomes for the returned
// assignment with the simulator's common-random-number scheme, and
// reports them back. At the end it prints throughput, shed rate,
// connection reuse, client-observed latency percentiles, and the
// cumulative reward — which, when the daemon was started with the
// matching scenario and seed, is bit-identical to an offline
// `lfscsim -policies lfsc` run.
//
// By default the generator rides the batched /v1/step endpoint (one
// round trip per slot: previous slot's outcomes + next slot's arrivals)
// over a transport tuned for connection reuse; -no-step selects the
// classic /v1/submit + /v1/report pair.
//
// Usage:
//
//	lfscload [-addr localhost:9090] [-T 1000] [-from 0] [-resume]
//	         [-scns 30] [-min 35] [-max 100] [-overlap 0.3]
//	         [-c 20] [-alpha 15] [-beta 27] [-h 3] [-seed 42]
//	         [-latency-ctx] [-progress 0] [-no-step] [-shards 1]
//	         [-scenario churn.scn] [-scenario-T 10000]
//	         [-slo-json BENCH_serve.json]
//
// The end-of-run report includes the client-observed SLO summary
// (p50/p90/p99/p999 latency + shed rate) and, when the daemon runs an
// SLO tracker, the daemon-side rolling-window view. -slo-json appends
// the whole summary as one JSON line to a history file (one entry per
// run — BENCH_serve.json by convention), so load-test SLOs accumulate
// a comparable trajectory the way BENCH_core.json does for perf.
//
// -resume asks the daemon for its current slot and replays from there —
// the companion to lfscd's checkpointed restart.
//
// -scenario declares the scenario timeline the daemon is expected to be
// serving under (same file and -scns/-c/-seed as the daemon, with
// -scenario-T equal to the daemon's schedule horizon -T — the drive
// range -T may be shorter): before replaying, the generator compares
// its timeline digest against the daemon's /v1/stats and refuses to run
// on a mismatch — replaying against the wrong dynamics would produce
// silently divergent rewards. The digest is also recorded in the
// -slo-json history line.
//
// -shards > 1 fans requests over a per-shard connection pool using the
// daemon's consistent-hash routing (match the daemon's -shards), so each
// shard's traffic keeps connection affinity. The protocol and rewards
// are identical either way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"lfsc/internal/env"
	"lfsc/internal/obs"
	"lfsc/internal/scenario"
	"lfsc/internal/serve"
	"lfsc/internal/trace"
)

// loadConn is what the generator needs from its transport — the replay
// protocol plus the stats/reuse introspection the summary prints.
// Satisfied by *serve.Client and *serve.ShardPool.
type loadConn interface {
	serve.Conn
	Stats() (*serve.Stats, error)
	ConnStats() (created, reused uint64)
}

func main() {
	var (
		addr     = flag.String("addr", "localhost:9090", "daemon address (host:port)")
		horizon  = flag.Int("T", 1000, "replay through slot T")
		from     = flag.Int("from", 0, "first slot to replay")
		resume   = flag.Bool("resume", false, "start from the daemon's current slot (overrides -from)")
		scns     = flag.Int("scns", 30, "number of SCNs")
		minTasks = flag.Int("min", 35, "min tasks per SCN per slot")
		maxTasks = flag.Int("max", 100, "max tasks per SCN per slot")
		overlap  = flag.Float64("overlap", 0.3, "coverage overlap probability")
		capacity = flag.Int("c", 20, "per-SCN beam budget (scenario echo)")
		alpha    = flag.Float64("alpha", 15, "QoS floor (scenario echo)")
		beta     = flag.Float64("beta", 27, "resource ceiling (scenario echo)")
		hGrain   = flag.Int("h", 3, "hypercube granularity per context dim")
		seed     = flag.Uint64("seed", 42, "master seed (must match the daemon's)")
		latCtx   = flag.Bool("latency-ctx", false, "use the 4-D context with the latency class")
		progress = flag.Int("progress", 0, "print a progress line every N slots (0 = off)")
		noStep   = flag.Bool("no-step", false, "use the classic submit+report pair instead of batched /v1/step")
		shards   = flag.Int("shards", 1, "route over a per-shard connection pool (match the daemon's -shards)")
		scenFile = flag.String("scenario", "", "scenario config the daemon serves under (digest-checked against /v1/stats)")
		scenT    = flag.Int("scenario-T", 10000, "scenario timeline horizon — must match the daemon's -T (the drive range -T can be shorter)")
		sloJSON  = flag.String("slo-json", "", "append the end-of-run SLO report as one JSON line to this history file (e.g. BENCH_serve.json)")
	)
	flag.Parse()

	sc := serve.ReplayScenario{
		Synthetic: trace.SyntheticConfig{
			SCNs: *scns, MinTasks: *minTasks, MaxTasks: *maxTasks,
			Overlap: *overlap, LatencySensitiveFrac: 0.5,
		},
		EnvCfg:   env.DefaultConfig(*scns, 27),
		Capacity: *capacity, Alpha: *alpha, Beta: *beta,
		H: *hGrain, T: *horizon,
		UseLatencyContext: *latCtx,
		Seed:              *seed,
	}
	var scenDigest string
	if *scenFile != "" {
		scfg, err := scenario.ParseFile(*scenFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lfscload: scenario: %v\n", err)
			os.Exit(1)
		}
		tl, err := scenario.Build(scfg, *scns, *scenT, *capacity, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lfscload: scenario: %v\n", err)
			os.Exit(1)
		}
		sc.Scenario = tl
		scenDigest = tl.Digest()
	}
	rep, err := serve.NewReplayer(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfscload: %v\n", err)
		os.Exit(1)
	}
	rep.SetUseStep(!*noStep)
	var client loadConn = serve.NewClient(*addr)
	if *shards > 1 {
		client = serve.NewShardPool(*addr, *shards)
	}

	// Verify the scenario contract up front: replaying against a daemon
	// with different (or no) dynamics would diverge silently, so check
	// the digest before submitting a single task.
	if *scenFile != "" {
		dst, err := client.Stats()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lfscload: -scenario: %v\n", err)
			os.Exit(1)
		}
		switch {
		case dst.Scenario == nil:
			fmt.Fprintf(os.Stderr, "lfscload: -scenario: daemon serves the static topology (start lfscd with the same -scenario file)\n")
			os.Exit(1)
		case dst.Scenario.Digest != scenDigest:
			fmt.Fprintf(os.Stderr, "lfscload: -scenario: digest mismatch: client %s, daemon %s (check -scenario/-scns/-c/-scenario-T/-seed; -scenario-T must equal the daemon's -T)\n",
				scenDigest, dst.Scenario.Digest)
			os.Exit(1)
		}
	}

	start := *from
	if *resume {
		st, err := client.Stats()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lfscload: -resume: %v\n", err)
			os.Exit(1)
		}
		start = st.Slot
		fmt.Fprintf(os.Stderr, "lfscload: daemon at slot %d, resuming there\n", start)
	}
	if start >= *horizon {
		fmt.Fprintf(os.Stderr, "lfscload: nothing to do (from=%d, T=%d)\n", start, *horizon)
		return
	}

	var onSlot func(serve.SlotResult)
	if *progress > 0 {
		onSlot = func(r serve.SlotResult) {
			if (r.Slot+1)%*progress == 0 {
				fmt.Fprintf(os.Stderr, "lfscload: slot %d/%d  cum reward %.4f\n",
					r.Slot+1, *horizon, rep.CumReward())
			}
		}
	}

	t0 := time.Now()
	st, err := rep.Run(client, start, *horizon, onSlot)
	wall := time.Since(t0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfscload: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("slots:      %d (%.1f/s over %v)\n",
		st.Slots, float64(st.Slots)/wall.Seconds(), wall.Round(time.Millisecond))
	fmt.Printf("tasks:      %d submitted, %d assigned\n", st.Tasks, st.Assigned)
	fmt.Printf("shed slots: %d (%.2f%%)\n",
		st.ShedSlots, 100*float64(st.ShedSlots)/float64(max(st.Slots, 1)))
	fmt.Printf("cum reward: %.6f\n", st.CumReward)
	if created, reused := client.ConnStats(); created+reused > 0 {
		fmt.Printf("conn reuse: %.2f%% (%d new, %d reused)\n",
			100*float64(reused)/float64(created+reused), created, reused)
	}
	ls := rep.Latency.Stat("request")
	if ls.Count > 0 {
		fmt.Printf("latency:    n=%d mean=%v p50=%v p90=%v p99=%v p999=%v\n",
			ls.Count,
			time.Duration(ls.MeanNS).Round(time.Microsecond),
			time.Duration(ls.P50NS).Round(time.Microsecond),
			time.Duration(ls.P90NS).Round(time.Microsecond),
			time.Duration(ls.P99NS).Round(time.Microsecond),
			time.Duration(ls.P999NS).Round(time.Microsecond))
	}
	shedRate := float64(st.ShedSlots) / float64(max(st.Slots, 1))
	entry := sloEntry{
		Name: "lfscload", Timestamp: time.Now().UTC().Format(time.RFC3339),
		From: start, TSlots: *horizon, Slots: st.Slots, Shards: *shards,
		Seed: *seed, WallMS: float64(wall.Milliseconds()),
		SlotsPerSec: float64(st.Slots) / wall.Seconds(),
		Tasks:       st.Tasks, Assigned: st.Assigned,
		ShedSlots: st.ShedSlots, ShedRate: shedRate,
		CumReward: st.CumReward, Scenario: scenDigest,
		LatMeanNS: ls.MeanNS, LatP50NS: ls.P50NS, LatP90NS: ls.P90NS,
		LatP99NS: ls.P99NS, LatP999NS: ls.P999NS,
	}
	if dst, err := client.Stats(); err == nil {
		fmt.Printf("daemon:     slot %d  cum reward %.6f  shed requests %d  late slots %d\n",
			dst.Slot, dst.CumReward, dst.ShedRequests, dst.LateSlots)
		if dst.SLO != nil {
			s := dst.SLO
			fmt.Printf("daemon slo: window %ds  n=%d  p50=%v p99=%v p999=%v  shed %.2f%% (budget %.2f%%)\n",
				s.WindowSec, s.Requests,
				time.Duration(s.P50NS).Round(time.Microsecond),
				time.Duration(s.P99NS).Round(time.Microsecond),
				time.Duration(s.P999NS).Round(time.Microsecond),
				100*s.ShedRate, 100*s.ShedBudget)
			entry.DaemonSLO = s
		}
	}
	if *sloJSON != "" {
		if err := appendSLOEntry(*sloJSON, &entry); err != nil {
			fmt.Fprintf(os.Stderr, "lfscload: -slo-json: %v\n", err)
			os.Exit(1)
		}
	}
}

// sloEntry is one BENCH_serve.json history line: the end-of-run SLO
// report in machine-readable form.
type sloEntry struct {
	Name      string `json:"name"`
	Timestamp string `json:"timestamp"`
	From      int    `json:"from"`
	TSlots    int    `json:"t_slots"`
	Slots     int    `json:"slots"`
	Shards    int    `json:"shards"`
	Seed      uint64 `json:"seed"`

	WallMS      float64 `json:"wall_ms"`
	SlotsPerSec float64 `json:"slots_per_sec"`
	Tasks       int     `json:"tasks"`
	Assigned    int     `json:"assigned"`
	ShedSlots   int     `json:"shed_slots"`
	ShedRate    float64 `json:"shed_rate"`
	CumReward   float64 `json:"cum_reward"`
	// Scenario is the timeline digest the run replayed under (empty for
	// the static topology).
	Scenario string `json:"scenario,omitempty"`

	LatMeanNS float64 `json:"lat_mean_ns"`
	LatP50NS  float64 `json:"lat_p50_ns"`
	LatP90NS  float64 `json:"lat_p90_ns"`
	LatP99NS  float64 `json:"lat_p99_ns"`
	LatP999NS float64 `json:"lat_p999_ns"`

	// DaemonSLO is the daemon's rolling-window view at run end (when the
	// daemon was started with an SLO tracker).
	DaemonSLO *obs.SLOReport `json:"daemon_slo,omitempty"`
}

// appendSLOEntry appends the entry as one JSON line (the history file is
// JSON Lines: one run per line, append-only).
func appendSLOEntry(path string, e *sloEntry) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	return json.NewEncoder(f).Encode(e)
}
