// Command lfscload replays a seeded synthetic trace against a running
// lfscd daemon over HTTP: it regenerates the workload slot by slot,
// submits each slot's arrivals, realises outcomes for the returned
// assignment with the simulator's common-random-number scheme, and
// reports them back. At the end it prints throughput, shed rate,
// connection reuse, client-observed latency percentiles, and the
// cumulative reward — which, when the daemon was started with the
// matching scenario and seed, is bit-identical to an offline
// `lfscsim -policies lfsc` run.
//
// By default the generator rides the batched /v1/step endpoint (one
// round trip per slot: previous slot's outcomes + next slot's arrivals)
// over a transport tuned for connection reuse; -no-step selects the
// classic /v1/submit + /v1/report pair.
//
// Usage:
//
//	lfscload [-addr localhost:9090] [-T 1000] [-from 0] [-resume]
//	         [-scns 30] [-min 35] [-max 100] [-overlap 0.3]
//	         [-c 20] [-alpha 15] [-beta 27] [-h 3] [-seed 42]
//	         [-latency-ctx] [-progress 0] [-no-step] [-shards 1]
//
// -resume asks the daemon for its current slot and replays from there —
// the companion to lfscd's checkpointed restart.
//
// -shards > 1 fans requests over a per-shard connection pool using the
// daemon's consistent-hash routing (match the daemon's -shards), so each
// shard's traffic keeps connection affinity. The protocol and rewards
// are identical either way.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lfsc/internal/env"
	"lfsc/internal/serve"
	"lfsc/internal/trace"
)

// loadConn is what the generator needs from its transport — the replay
// protocol plus the stats/reuse introspection the summary prints.
// Satisfied by *serve.Client and *serve.ShardPool.
type loadConn interface {
	serve.Conn
	Stats() (*serve.Stats, error)
	ConnStats() (created, reused uint64)
}

func main() {
	var (
		addr     = flag.String("addr", "localhost:9090", "daemon address (host:port)")
		horizon  = flag.Int("T", 1000, "replay through slot T")
		from     = flag.Int("from", 0, "first slot to replay")
		resume   = flag.Bool("resume", false, "start from the daemon's current slot (overrides -from)")
		scns     = flag.Int("scns", 30, "number of SCNs")
		minTasks = flag.Int("min", 35, "min tasks per SCN per slot")
		maxTasks = flag.Int("max", 100, "max tasks per SCN per slot")
		overlap  = flag.Float64("overlap", 0.3, "coverage overlap probability")
		capacity = flag.Int("c", 20, "per-SCN beam budget (scenario echo)")
		alpha    = flag.Float64("alpha", 15, "QoS floor (scenario echo)")
		beta     = flag.Float64("beta", 27, "resource ceiling (scenario echo)")
		hGrain   = flag.Int("h", 3, "hypercube granularity per context dim")
		seed     = flag.Uint64("seed", 42, "master seed (must match the daemon's)")
		latCtx   = flag.Bool("latency-ctx", false, "use the 4-D context with the latency class")
		progress = flag.Int("progress", 0, "print a progress line every N slots (0 = off)")
		noStep   = flag.Bool("no-step", false, "use the classic submit+report pair instead of batched /v1/step")
		shards   = flag.Int("shards", 1, "route over a per-shard connection pool (match the daemon's -shards)")
	)
	flag.Parse()

	sc := serve.ReplayScenario{
		Synthetic: trace.SyntheticConfig{
			SCNs: *scns, MinTasks: *minTasks, MaxTasks: *maxTasks,
			Overlap: *overlap, LatencySensitiveFrac: 0.5,
		},
		EnvCfg:   env.DefaultConfig(*scns, 27),
		Capacity: *capacity, Alpha: *alpha, Beta: *beta,
		H: *hGrain, T: *horizon,
		UseLatencyContext: *latCtx,
		Seed:              *seed,
	}
	rep, err := serve.NewReplayer(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfscload: %v\n", err)
		os.Exit(1)
	}
	rep.SetUseStep(!*noStep)
	var client loadConn = serve.NewClient(*addr)
	if *shards > 1 {
		client = serve.NewShardPool(*addr, *shards)
	}

	start := *from
	if *resume {
		st, err := client.Stats()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lfscload: -resume: %v\n", err)
			os.Exit(1)
		}
		start = st.Slot
		fmt.Fprintf(os.Stderr, "lfscload: daemon at slot %d, resuming there\n", start)
	}
	if start >= *horizon {
		fmt.Fprintf(os.Stderr, "lfscload: nothing to do (from=%d, T=%d)\n", start, *horizon)
		return
	}

	var onSlot func(serve.SlotResult)
	if *progress > 0 {
		onSlot = func(r serve.SlotResult) {
			if (r.Slot+1)%*progress == 0 {
				fmt.Fprintf(os.Stderr, "lfscload: slot %d/%d  cum reward %.4f\n",
					r.Slot+1, *horizon, rep.CumReward())
			}
		}
	}

	t0 := time.Now()
	st, err := rep.Run(client, start, *horizon, onSlot)
	wall := time.Since(t0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfscload: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("slots:      %d (%.1f/s over %v)\n",
		st.Slots, float64(st.Slots)/wall.Seconds(), wall.Round(time.Millisecond))
	fmt.Printf("tasks:      %d submitted, %d assigned\n", st.Tasks, st.Assigned)
	fmt.Printf("shed slots: %d (%.2f%%)\n",
		st.ShedSlots, 100*float64(st.ShedSlots)/float64(max(st.Slots, 1)))
	fmt.Printf("cum reward: %.6f\n", st.CumReward)
	if created, reused := client.ConnStats(); created+reused > 0 {
		fmt.Printf("conn reuse: %.2f%% (%d new, %d reused)\n",
			100*float64(reused)/float64(created+reused), created, reused)
	}
	if ls := rep.Latency.Stat("request"); ls.Count > 0 {
		fmt.Printf("latency:    n=%d mean=%v p50=%v p90=%v p99=%v\n",
			ls.Count,
			time.Duration(ls.MeanNS).Round(time.Microsecond),
			time.Duration(ls.P50NS).Round(time.Microsecond),
			time.Duration(ls.P90NS).Round(time.Microsecond),
			time.Duration(ls.P99NS).Round(time.Microsecond))
	}
	if dst, err := client.Stats(); err == nil {
		fmt.Printf("daemon:     slot %d  cum reward %.6f  shed requests %d  late slots %d\n",
			dst.Slot, dst.CumReward, dst.ShedRequests, dst.LateSlots)
	}
}
