package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"lfsc/internal/core"
	"lfsc/internal/obs"
	"lfsc/internal/serve"
	"lfsc/internal/sim"
)

// benchResult is the schema of the -benchjson artifact (BENCH_core.json):
// one steady-state figure per commit so the perf trajectory of the hot
// path can be tracked across the repo's history.
type benchResult struct {
	Name      string `json:"name"`
	Timestamp string `json:"timestamp"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	TSlots  int    `json:"t_slots"`
	Seed    uint64 `json:"seed"`
	Workers int    `json:"workers"`

	// NsPerSlot is wall time of the full LFSC simulation loop (workload
	// generation + Decide + environment + Observe) divided by T.
	NsPerSlot float64 `json:"ns_per_slot"`
	// AllocsPerSlot is the heap-allocation count of the same loop divided
	// by T. The policy hot path itself is allocation-free in steady state
	// (see internal/core/alloc_test.go); what remains is the workload
	// generator and the metrics series.
	AllocsPerSlot float64 `json:"allocs_per_slot"`

	LFSCTotalReward   float64 `json:"lfsc_total_reward"`
	OracleTotalReward float64 `json:"oracle_total_reward"`
	// LFSCOracleRatio is achieved reward relative to the ground-truth
	// oracle on the identical task sequence (the paper's headline
	// competitiveness signal; measured 0.8427 at T=10000, seed 42).
	LFSCOracleRatio float64 `json:"lfsc_oracle_ratio"`
}

// runBenchJSON runs the paper scenario once with LFSC under measurement
// and once with the oracle for the reward ratio, then writes the result
// as JSON to path. obsOpts (from -observe) is plumbed into both runs so a
// paper-horizon benchmark can be watched live; it is nil in the default
// measurement configuration — the numbers BENCH_core.json pins are taken
// with the probe's nil fast path, like every production run.
func runBenchJSON(path string, horizon int, seed uint64, workers int, obsOpts *obs.Options) error {
	sc := sim.PaperScenario()
	sc.Cfg.T = horizon
	sc.Cfg.Obs = obsOpts

	fmt.Printf("bench: LFSC on paper scenario (T=%d, seed=%d, workers=%d)...\n",
		horizon, seed, workers)
	factory := sim.LFSCFactory(func(c *core.Config) { c.Workers = workers })

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	lfscSeries, err := sim.Run(sc, factory, seed)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return fmt.Errorf("lfsc run: %w", err)
	}

	fmt.Printf("bench: oracle reference run...\n")
	oracleSeries, err := sim.Run(sc, sim.OracleFactory(false), seed)
	if err != nil {
		return fmt.Errorf("oracle run: %w", err)
	}

	res := benchResult{
		Name:              "lfsc-core",
		Timestamp:         time.Now().UTC().Format(time.RFC3339),
		GoVersion:         runtime.Version(),
		GOOS:              runtime.GOOS,
		GOARCH:            runtime.GOARCH,
		NumCPU:            runtime.NumCPU(),
		TSlots:            horizon,
		Seed:              seed,
		Workers:           workers,
		NsPerSlot:         float64(elapsed.Nanoseconds()) / float64(horizon),
		AllocsPerSlot:     float64(after.Mallocs-before.Mallocs) / float64(horizon),
		LFSCTotalReward:   lfscSeries.TotalReward(),
		OracleTotalReward: oracleSeries.TotalReward(),
	}
	if res.OracleTotalReward != 0 {
		res.LFSCOracleRatio = res.LFSCTotalReward / res.OracleTotalReward
	}

	if err := mergeBenchJSON(path, &res); err != nil {
		return err
	}
	fmt.Printf("bench: %.0f ns/slot, %.1f allocs/slot, LFSC/Oracle reward ratio %.4f\n",
		res.NsPerSlot, res.AllocsPerSlot, res.LFSCOracleRatio)
	fmt.Printf("wrote %s\n", path)
	return nil
}

// serveBenchResult is the serve-layer block of the artifact (-benchserve):
// the daemon data plane measured at the serve tests' scenario scale. It
// shares BENCH_core.json with the core block via mergeBenchJSON.
type serveBenchResult struct {
	// ServeNsPerSlot is wall time per full slot on the in-process batched
	// /v1/step handler loop (decode → Decide → encode plus the client-side
	// generation and outcome realisation around it).
	ServeNsPerSlot float64 `json:"serve_ns_per_slot"`
	// ServeAllocsPerSlot is the heap-allocation count of that loop per slot.
	ServeAllocsPerSlot float64 `json:"serve_allocs_per_slot"`
	// ServeAllocsPerReq is the allocation count attributed to the handler
	// invocation alone — 0 in steady state (TestServeWireZeroAlloc).
	ServeAllocsPerReq float64 `json:"serve_allocs_per_req"`
	// ServeHTTPRps is end-to-end /v1/step round trips per second over real
	// loopback HTTP.
	ServeHTTPRps float64 `json:"serve_http_rps"`
}

// runBenchServe runs the serve-layer harness (internal/serve RunBench)
// and merges its figures into the artifact at path, preserving the core
// block already there.
func runBenchServe(path string, slots, httpSlots int, seed uint64) error {
	fmt.Printf("bench: serve data plane (slots=%d, httpSlots=%d, seed=%d)...\n",
		slots, httpSlots, seed)
	r, err := serve.RunBench(slots, httpSlots, seed)
	if err != nil {
		return fmt.Errorf("serve bench: %w", err)
	}
	res := serveBenchResult{
		ServeNsPerSlot:     r.NsPerSlot,
		ServeAllocsPerSlot: r.AllocsPerSlot,
		ServeAllocsPerReq:  r.AllocsPerReq,
		ServeHTTPRps:       r.HTTPRps,
	}
	if err := mergeBenchJSON(path, &res); err != nil {
		return err
	}
	fmt.Printf("bench: serve %.0f ns/slot, %.2f allocs/slot, %.2f allocs/req, %.0f http rps\n",
		res.ServeNsPerSlot, res.ServeAllocsPerSlot, res.ServeAllocsPerReq, res.ServeHTTPRps)
	fmt.Printf("wrote %s\n", path)
	return nil
}

// mergeBenchJSON overlays block's fields onto the JSON object already at
// path (if any) and writes the result back. The core harness and the
// serve harness each own a disjoint set of keys in the shared
// BENCH_core.json; merging keeps one from clobbering the other's block.
func mergeBenchJSON(path string, block any) error {
	merged := map[string]json.RawMessage{}
	if buf, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(buf, &merged); err != nil {
			return fmt.Errorf("bench: existing %s is not a JSON object: %w", path, err)
		}
	}
	blockBuf, err := json.Marshal(block)
	if err != nil {
		return err
	}
	updates := map[string]json.RawMessage{}
	if err := json.Unmarshal(blockBuf, &updates); err != nil {
		return err
	}
	for k, v := range updates {
		merged[k] = v
	}
	buf, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}
