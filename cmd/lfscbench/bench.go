package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"lfsc/internal/core"
	"lfsc/internal/obs"
	"lfsc/internal/serve"
	"lfsc/internal/sim"
)

// benchResult is the schema of the -benchjson artifact (BENCH_core.json):
// one steady-state figure per commit so the perf trajectory of the hot
// path can be tracked across the repo's history.
type benchResult struct {
	Name      string `json:"name"`
	Timestamp string `json:"timestamp"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	TSlots int    `json:"t_slots"`
	Seed   uint64 `json:"seed"`
	// Workers is the worker count of the headline run — always 1: the
	// serial kernel is the deterministic baseline every other figure is
	// measured against (see CoreWorkersSpeedup for the parallel path).
	Workers int `json:"workers"`

	// NsPerSlot is wall time of the LFSC replay loop (Decide + environment
	// + Observe) divided by T. Workload generation and context indexing
	// happen once, up front, in an eagerly materialized shared trace
	// (sim.NewSharedTraceEager) and are excluded from the timed region —
	// the figure is the decision kernel, not the workload source.
	NsPerSlot float64 `json:"ns_per_slot"`
	// AllocsPerSlot is the heap-allocation count of the same loop divided
	// by T. The policy hot path itself is allocation-free in steady state
	// (see internal/core/alloc_test.go); what remains is trace replay
	// bookkeeping and the metrics series.
	AllocsPerSlot float64 `json:"allocs_per_slot"`
	// CoreWorkersSpeedup is headline (Workers=1) ns/slot divided by the
	// same replay at Workers=NumCPU: >1 means the parallel per-SCN path
	// pays off on this machine. On a single-core box it hovers around 1.
	CoreWorkersSpeedup float64 `json:"core_workers_speedup"`

	LFSCTotalReward   float64 `json:"lfsc_total_reward"`
	OracleTotalReward float64 `json:"oracle_total_reward"`
	// LFSCOracleRatio is achieved reward relative to the ground-truth
	// oracle on the identical task sequence (the paper's headline
	// competitiveness signal; measured 0.8427 at T=10000, seed 42).
	LFSCOracleRatio float64 `json:"lfsc_oracle_ratio"`
}

// runBenchJSON measures the paper scenario against an eagerly materialized
// shared trace: the workload (and its hypercube context indexing) is
// generated once before any clock starts, then replayed three times — the
// headline LFSC run at Workers=1, the same run at Workers=NumCPU for the
// speedup figure, and the oracle for the reward ratio. The two LFSC runs
// must earn bit-identical reward (the Workers=1-vs-N determinism contract);
// a mismatch fails the bench. obsOpts (from -observe) is plumbed into every
// run so a paper-horizon benchmark can be watched live; it is nil in the
// default measurement configuration — the numbers BENCH_core.json pins are
// taken with the probe's nil fast path, like every production run. The
// -workers flag does not apply here: the worker counts are fixed by the
// measurement design.
func runBenchJSON(path string, horizon int, seed uint64, obsOpts *obs.Options) error {
	sc := sim.PaperScenario()
	sc.Cfg.T = horizon
	sc.Cfg.Obs = obsOpts

	// Each LFSC configuration is replayed benchReps times and scored by its
	// fastest pass (the standard guard against scheduler interference); the
	// oracle needs one more replay pass.
	const benchReps = 5
	fmt.Printf("bench: materializing workload trace (T=%d, seed=%d)...\n", horizon, seed)
	shared, err := sim.NewSharedTraceEager(sc, seed, 2*benchReps+1)
	if err != nil {
		return fmt.Errorf("shared trace: %w", err)
	}
	sc.Shared = shared

	// timedRun replays the shared trace under LFSC at the given worker
	// count and reports (total reward, ns/slot, allocs/slot). The collector
	// is paused for the timed region: the resident trace is a large
	// pointer-dense heap the GC would otherwise rescan mid-measurement,
	// charging the workload source's memory to the kernel's clock. The
	// replay loop itself allocates almost nothing (allocs/slot ≪ 1), so
	// the heap barely moves while the GC is off.
	timedRun := func(w int) (float64, float64, float64, error) {
		factory := sim.LFSCFactory(func(c *core.Config) { c.Workers = w })
		runtime.GC()
		gcPct := debug.SetGCPercent(-1)
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		series, err := sim.Run(sc, factory, seed)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		debug.SetGCPercent(gcPct)
		if err != nil {
			return 0, 0, 0, err
		}
		return series.TotalReward(),
			float64(elapsed.Nanoseconds()) / float64(horizon),
			float64(after.Mallocs-before.Mallocs) / float64(horizon), nil
	}
	// bestOf replays reps times and keeps the fastest pass; every pass of
	// every configuration must earn the identical reward (replays are
	// deterministic in the seed, and Workers must not change decisions).
	bestOf := func(w, reps int) (float64, float64, float64, error) {
		var reward, bestNs, allocs float64
		for i := 0; i < reps; i++ {
			r, ns, al, err := timedRun(w)
			if err != nil {
				return 0, 0, 0, err
			}
			if i == 0 {
				reward, bestNs, allocs = r, ns, al
				continue
			}
			if r != reward {
				return 0, 0, 0, fmt.Errorf("replay %d at workers=%d earned %v, first pass %v (determinism broken)",
					i, w, r, reward)
			}
			if ns < bestNs {
				bestNs, allocs = ns, al
			}
		}
		return reward, bestNs, allocs, nil
	}

	fmt.Printf("bench: LFSC replay x%d (workers=1)...\n", benchReps)
	reward1, ns1, allocs1, err := bestOf(1, benchReps)
	if err != nil {
		return fmt.Errorf("lfsc run (workers=1): %w", err)
	}

	numCPU := runtime.NumCPU()
	fmt.Printf("bench: LFSC replay x%d (workers=%d)...\n", benchReps, numCPU)
	rewardN, nsN, _, err := bestOf(numCPU, benchReps)
	if err != nil {
		return fmt.Errorf("lfsc run (workers=%d): %w", numCPU, err)
	}
	if rewardN != reward1 {
		return fmt.Errorf("bench: workers=%d reward %v != workers=1 reward %v (determinism broken)",
			numCPU, rewardN, reward1)
	}

	fmt.Printf("bench: oracle reference run...\n")
	oracleSeries, err := sim.Run(sc, sim.OracleFactory(false), seed)
	if err != nil {
		return fmt.Errorf("oracle run: %w", err)
	}

	res := benchResult{
		Name:               "lfsc-core",
		Timestamp:          time.Now().UTC().Format(time.RFC3339),
		GoVersion:          runtime.Version(),
		GOOS:               runtime.GOOS,
		GOARCH:             runtime.GOARCH,
		NumCPU:             numCPU,
		TSlots:             horizon,
		Seed:               seed,
		Workers:            1,
		NsPerSlot:          ns1,
		AllocsPerSlot:      allocs1,
		CoreWorkersSpeedup: ns1 / nsN,
		LFSCTotalReward:    reward1,
		OracleTotalReward:  oracleSeries.TotalReward(),
	}
	if res.OracleTotalReward != 0 {
		res.LFSCOracleRatio = res.LFSCTotalReward / res.OracleTotalReward
	}

	if err := mergeBenchJSON(path, &res); err != nil {
		return err
	}
	fmt.Printf("bench: %.0f ns/slot, %.2f allocs/slot, %.2fx workers speedup, LFSC/Oracle reward ratio %.4f\n",
		res.NsPerSlot, res.AllocsPerSlot, res.CoreWorkersSpeedup, res.LFSCOracleRatio)
	fmt.Printf("wrote %s\n", path)
	return nil
}

// serveBenchResult is the serve-layer block of the artifact (-benchserve):
// the daemon data plane measured at the serve tests' scenario scale. It
// shares BENCH_core.json with the core block via mergeBenchJSON.
type serveBenchResult struct {
	// Workers overlays the artifact's workers key with the shard/worker
	// count the headline ServeHTTPRps run actually used (previously the
	// key was hardcoded from the core run and silently claimed to describe
	// the serve figures too).
	Workers int `json:"workers"`
	// NumCPU is re-stamped at serve measurement time so the shard scaling
	// curve below is interpretable on the machine that produced it.
	NumCPU int `json:"num_cpu"`
	// ServeNsPerSlot is wall time per full slot on the in-process batched
	// /v1/step handler loop (decode → Decide → encode plus the client-side
	// generation and outcome realisation around it).
	ServeNsPerSlot float64 `json:"serve_ns_per_slot"`
	// ServeNsPerSlotProbe is the same loop at the shipped lfscd default:
	// the slot-phase probe on (the daemon constructs it unconditionally),
	// everything the fleet-observability flags control off. The
	// metrics-off baseline for the obs gate.
	ServeNsPerSlotProbe float64 `json:"serve_ns_per_slot_probe"`
	// ServeNsPerSlotObs is the same loop with the full observability stack
	// enabled (metrics, slot-trace ring, SLO tracker, probe); benchdiff
	// pins it at ≤5% over ServeNsPerSlotProbe.
	ServeNsPerSlotObs float64 `json:"serve_ns_per_slot_obs"`
	// ServeAllocsPerSlot is the heap-allocation count of that loop per slot.
	ServeAllocsPerSlot float64 `json:"serve_allocs_per_slot"`
	// ServeAllocsPerReq is the allocation count attributed to the handler
	// invocation alone — 0 in steady state (TestServeWireZeroAlloc).
	ServeAllocsPerReq float64 `json:"serve_allocs_per_req"`
	// ServeHTTPRps is end-to-end /v1/step round trips per second over real
	// loopback HTTP.
	ServeHTTPRps float64 `json:"serve_http_rps"`
	// ServeShardRps1/2/4 are the shard scaling curve: loopback /v1/step
	// throughput on the SAME scenario as ServeHTTPRps, run through the
	// sharded serving plane at Shards = 1, 2, 4 (the one-shard point
	// forces serve.Config.ShardPlane, so rps_1/ServeHTTPRps is a pure
	// plane-tax ratio). Expected roughly flat when NumCPU = 1 and
	// monotone non-decreasing with shard count on multi-core machines;
	// benchdiff gates both properties num_cpu-aware.
	ServeShardRps1 float64 `json:"serve_shard_rps_1"`
	ServeShardRps2 float64 `json:"serve_shard_rps_2"`
	ServeShardRps4 float64 `json:"serve_shard_rps_4"`
}

// runBenchServe runs the serve-layer harness (internal/serve RunBench
// plus the RunShardBench scaling curve) and merges its figures into the
// artifact at path, preserving the core block already there.
func runBenchServe(path string, slots, httpSlots int, seed uint64) error {
	fmt.Printf("bench: serve data plane (slots=%d, httpSlots=%d, seed=%d)...\n",
		slots, httpSlots, seed)
	r, err := serve.RunBench(slots, httpSlots, seed)
	if err != nil {
		return fmt.Errorf("serve bench: %w", err)
	}
	fmt.Printf("bench: shard scaling curve (httpSlots=%d x shards 1/2/4)...\n", httpSlots)
	sh, err := serve.RunShardBench(httpSlots, seed)
	if err != nil {
		return fmt.Errorf("serve bench: %w", err)
	}
	res := serveBenchResult{
		Workers:             r.Shards,
		NumCPU:              runtime.NumCPU(),
		ServeNsPerSlot:      r.NsPerSlot,
		ServeNsPerSlotProbe: r.NsPerSlotProbe,
		ServeNsPerSlotObs:   r.NsPerSlotObs,
		ServeAllocsPerSlot:  r.AllocsPerSlot,
		ServeAllocsPerReq:   r.AllocsPerReq,
		ServeHTTPRps:        r.HTTPRps,
		ServeShardRps1:      sh.Rps1,
		ServeShardRps2:      sh.Rps2,
		ServeShardRps4:      sh.Rps4,
	}
	if err := mergeBenchJSON(path, &res); err != nil {
		return err
	}
	fmt.Printf("bench: serve %.0f ns/slot (%.0f probe-only, %.0f full obs), %.2f allocs/slot, %.2f allocs/req, %.0f http rps\n",
		res.ServeNsPerSlot, res.ServeNsPerSlotProbe, res.ServeNsPerSlotObs, res.ServeAllocsPerSlot, res.ServeAllocsPerReq, res.ServeHTTPRps)
	fmt.Printf("bench: shard rps %.0f / %.0f / %.0f (shards 1/2/4, num_cpu %d)\n",
		res.ServeShardRps1, res.ServeShardRps2, res.ServeShardRps4, res.NumCPU)
	fmt.Printf("wrote %s\n", path)
	return nil
}

// shardCurveResult is the standalone -benchshards block: just the shard
// scaling keys plus the CPU count they were measured on, merged into an
// artifact (or a throwaway smoke file) without touching the rest.
type shardCurveResult struct {
	NumCPU         int     `json:"num_cpu"`
	ServeShardRps1 float64 `json:"serve_shard_rps_1"`
	ServeShardRps2 float64 `json:"serve_shard_rps_2"`
	ServeShardRps4 float64 `json:"serve_shard_rps_4"`
}

// runBenchShards runs only the shard scaling curve (serve.RunShardBench)
// and merges its keys into the JSON at path. The fast path for iterating
// on the sharded serving plane, and what `make bench-serve-shards` runs
// as a CI smoke: a few hundred slots keep it seconds-cheap while still
// covering the 1/2/4-shard engines end-to-end over real HTTP.
func runBenchShards(path string, httpSlots int, seed uint64) error {
	fmt.Printf("bench: shard scaling curve (httpSlots=%d x shards 1/2/4, seed=%d)...\n", httpSlots, seed)
	sh, err := serve.RunShardBench(httpSlots, seed)
	if err != nil {
		return fmt.Errorf("serve bench: %w", err)
	}
	res := shardCurveResult{
		NumCPU:         runtime.NumCPU(),
		ServeShardRps1: sh.Rps1,
		ServeShardRps2: sh.Rps2,
		ServeShardRps4: sh.Rps4,
	}
	if err := mergeBenchJSON(path, &res); err != nil {
		return err
	}
	fmt.Printf("bench: shard rps %.0f / %.0f / %.0f (shards 1/2/4, num_cpu %d)\n",
		res.ServeShardRps1, res.ServeShardRps2, res.ServeShardRps4, res.NumCPU)
	fmt.Printf("wrote %s\n", path)
	return nil
}

// mergeBenchJSON overlays block's fields onto the JSON object already at
// path (if any) and writes the result back. The core harness and the
// serve harness each own a disjoint set of keys in the shared
// BENCH_core.json; merging keeps one from clobbering the other's block.
func mergeBenchJSON(path string, block any) error {
	merged := map[string]json.RawMessage{}
	if buf, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(buf, &merged); err != nil {
			return fmt.Errorf("bench: existing %s is not a JSON object: %w", path, err)
		}
	}
	blockBuf, err := json.Marshal(block)
	if err != nil {
		return err
	}
	updates := map[string]json.RawMessage{}
	if err := json.Unmarshal(blockBuf, &updates); err != nil {
		return err
	}
	for k, v := range updates {
		merged[k] = v
	}
	buf, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}
