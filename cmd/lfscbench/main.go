// Command lfscbench regenerates the paper's evaluation artifacts (figures,
// tables, ablations) at any horizon and writes their raw series as CSV.
//
// Usage:
//
//	lfscbench [-exp all|fig2a|fig2b|fig2c|fig3|fig4|ratio|abl-...] \
//	          [-T 10000] [-seed 42] [-outdir results/] [-workers 0] \
//	          [-cpuprofile cpu.pprof] [-memprofile mem.pprof] \
//	          [-benchjson BENCH_core.json] [-benchserve BENCH_core.json] \
//	          [-benchshards BENCH_shards.json]
//
// Experiment ids and what they reproduce are listed by -list. The full
// five-policy paper run (T=10000) takes a few minutes on a laptop; the
// base run is shared across fig2a/fig2b/fig2c/ratio.
//
// -benchjson runs the single-policy perf harness instead of the
// experiment suite: one LFSC pass over the paper scenario measured for
// ns/slot and allocs/slot, one oracle pass for the reward ratio, written
// as JSON (see benchResult in bench.go). -benchserve runs the serve-layer
// harness (internal/serve RunBench: in-process handler loop + real-HTTP
// round trips) and merges its serve_* keys into the same artifact — both
// modes merge rather than overwrite, so they share one BENCH_core.json.
// -benchshards runs only the shard-scaling curve (serve.RunShardBench at
// Shards=1/2/4) and merges its serve_shard_rps_* keys; it's the cheap CI
// smoke behind `make bench-serve-shards`.
// -cpuprofile/-memprofile wrap whichever mode runs in pprof capture.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"lfsc/internal/experiments"
	"lfsc/internal/obs"
	"lfsc/internal/report"
)

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment id or 'all'")
		horizon     = flag.Int("T", 10000, "time horizon (paper: 10000)")
		seed        = flag.Uint64("seed", 42, "master random seed")
		outdir      = flag.String("outdir", "", "directory for CSV exports (optional)")
		workers     = flag.Int("workers", 0, "parallel workers (0 = all cores)")
		list        = flag.Bool("list", false, "list experiment ids and exit")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		benchjson   = flag.String("benchjson", "", "run the perf harness and write its JSON result to this file")
		benchserve  = flag.String("benchserve", "", "run the serve-layer perf harness and merge its keys into this JSON file")
		benchshards = flag.String("benchshards", "", "run only the serve shard-scaling curve and merge its serve_shard_rps_* keys into this JSON file")
		serveSlots  = flag.Int("serve-slots", 5000, "in-process slots for -benchserve")
		serveHTTP   = flag.Int("serve-http-slots", 2000, "real-HTTP slots for -benchserve and -benchshards")
		observe     = flag.String("observe", "", "serve live telemetry on this address (/lfsc/status, /debug/vars, /debug/pprof)")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, id := range experiments.Order() {
			fmt.Printf("  %s\n", id)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	// -observe watches any long run live: the per-phase probe and run
	// registry are threaded through every simulation the experiment suite
	// (or the perf harness) starts. The probe is only created alongside
	// the server — without -observe the hot loop keeps its nil fast path.
	var obsOpts *obs.Options
	if *observe != "" {
		obsOpts = &obs.Options{Probe: obs.NewProbe(), Registry: obs.NewRegistry()}
		srv, err := obs.StartServer(*observe, obsOpts.Probe, obsOpts.Registry, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "observe: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observe: serving http://%s/lfsc/status\n", srv.Addr())
	}

	if *benchjson != "" || *benchserve != "" || *benchshards != "" {
		if *benchjson != "" {
			if err := runBenchJSON(*benchjson, *horizon, *seed, obsOpts); err != nil {
				fmt.Fprintf(os.Stderr, "bench: %v\n", err)
				os.Exit(1)
			}
		}
		if *benchserve != "" {
			if err := runBenchServe(*benchserve, *serveSlots, *serveHTTP, *seed); err != nil {
				fmt.Fprintf(os.Stderr, "bench: %v\n", err)
				os.Exit(1)
			}
		}
		if *benchshards != "" {
			if err := runBenchShards(*benchshards, *serveHTTP, *seed); err != nil {
				fmt.Fprintf(os.Stderr, "bench: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	opts := experiments.DefaultOptions()
	opts.T = *horizon
	opts.Seed = *seed
	opts.Workers = *workers
	opts.Obs = obsOpts

	ids := experiments.Order()
	if *exp != "all" {
		if experiments.Registry()[*exp] == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		ids = []string{*exp}
	}

	// The four base-run figures share one simulation.
	needsBase := map[string]bool{"fig2a": true, "fig2b": true, "fig2c": true, "ratio": true}
	var base *experiments.Base
	getBase := func() (*experiments.Base, error) {
		if base != nil {
			return base, nil
		}
		fmt.Printf("running base scenario (5 policies, T=%d, seed=%d)...\n", opts.T, opts.Seed)
		start := time.Now()
		b, err := experiments.RunBase(opts)
		if err != nil {
			return nil, err
		}
		fmt.Printf("base run finished in %v\n\n", time.Since(start).Round(time.Millisecond))
		base = b
		return base, nil
	}

	for _, id := range ids {
		var res *experiments.Result
		var err error
		start := time.Now()
		if needsBase[id] {
			var b *experiments.Base
			if b, err = getBase(); err == nil {
				switch id {
				case "fig2a":
					res = experiments.Fig2a(b)
				case "fig2b":
					res = experiments.Fig2b(b)
				case "fig2c":
					res = experiments.Fig2c(b)
				case "ratio":
					res = experiments.Ratio(b)
				}
			}
		} else {
			fmt.Printf("running %s (T=%d)...\n", id, opts.T)
			res, err = experiments.Registry()[id](opts)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s — %s (%v)\n\n", res.ID, res.Title, time.Since(start).Round(time.Millisecond))
		if res.Table != nil {
			fmt.Println(res.Table.String())
		}
		for _, ch := range res.Charts {
			fmt.Println(ch.String())
		}
		for _, n := range res.Notes {
			fmt.Printf("  %s\n", n)
		}
		fmt.Println()
		if *outdir != "" && len(res.CSVSeries) > 0 {
			if err := os.MkdirAll(*outdir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "outdir: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*outdir, res.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "create %s: %v\n", path, err)
				os.Exit(1)
			}
			if err := report.WriteSeriesCSV(f, res.CSVHeaders, res.CSVSeries); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
				f.Close()
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}
