// Command lfscsim runs a single task-offloading simulation and prints the
// paper's metrics for the selected policies.
//
// Usage:
//
//	lfscsim [-T 10000] [-scns 30] [-c 20] [-alpha 15] [-beta 27] [-h 3]
//	        [-policies oracle,lfsc,vucb,fml,random] [-seed 42]
//	        [-replicas 1] [-min 35] [-max 100] [-overlap 0.3]
//	        [-vlo 0] [-vhi 1] [-mode stationary|drifting|piecewise]
//	        [-scenario churn.scn]
//	        [-observe addr] [-progress] [-trace] [-snapshots f.jsonl]
//
// With -replicas > 1 the run repeats across independent seeds (in
// parallel) and reports means with 95% confidence intervals.
//
// Results (tables, charts) go to stdout; progress and diagnostic chatter
// go to stderr, so stdout stays machine-parseable. The observability
// flags surface the run's internals: -observe serves /lfsc/status,
// /debug/vars and /debug/pprof on the given address for watching long
// runs live; -progress prints slot-rate updates to stderr; -trace prints
// the per-phase timing breakdown after the run; -snapshots samples the
// policy's bandit state (multipliers, weight entropy, exploration mass)
// every -snap-every slots as JSONL.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lfsc/internal/env"
	"lfsc/internal/metrics"
	"lfsc/internal/obs"
	"lfsc/internal/report"
	"lfsc/internal/rng"
	"lfsc/internal/scenario"
	"lfsc/internal/sim"
	"lfsc/internal/trace"
)

func main() {
	var (
		horizon  = flag.Int("T", 10000, "time horizon")
		scns     = flag.Int("scns", 30, "number of SCNs")
		capacity = flag.Int("c", 20, "per-SCN beam budget")
		alpha    = flag.Float64("alpha", 15, "QoS floor (min completed tasks)")
		beta     = flag.Float64("beta", 27, "resource ceiling")
		hGrain   = flag.Int("h", 3, "hypercube granularity per context dim")
		policies = flag.String("policies", "oracle,lfsc,vucb,fml,random", "comma-separated policies")
		seed     = flag.Uint64("seed", 42, "master seed")
		replicas = flag.Int("replicas", 1, "independent replicas (mean ± CI)")
		minTasks = flag.Int("min", 35, "min tasks per SCN per slot")
		maxTasks = flag.Int("max", 100, "max tasks per SCN per slot")
		overlap  = flag.Float64("overlap", 0.3, "coverage overlap probability")
		vlo      = flag.Float64("vlo", 0, "likelihood range lower bound")
		vhi      = flag.Float64("vhi", 1, "likelihood range upper bound")
		mode     = flag.String("mode", "stationary", "reward process: stationary|drifting|piecewise")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all cores)")
		chart    = flag.Bool("chart", true, "print the cumulative reward chart")
		mbs      = flag.Bool("mbs", false, "enable the macrocell fallback extension")
		mbsCap   = flag.Int("mbscap", 0, "MBS fallback capacity per slot (0 = unlimited)")
		stress   = flag.String("stress", "", "stress workload: diurnal|hotspot|flashcrowd (default: paper i.i.d.)")
		scenFile = flag.String("scenario", "", "scenario config file: SCN sleep/churn/capacity/budget dynamics (see internal/scenario)")
		observe  = flag.String("observe", "", "serve live telemetry on this address (/lfsc/status, /debug/vars, /debug/pprof)")
		progress = flag.Bool("progress", false, "print slot-rate progress updates to stderr")
		tracePh  = flag.Bool("trace", false, "record per-phase timings and print the breakdown table")
		snapPath = flag.String("snapshots", "", "write policy-state snapshots as JSONL to this file")
		snapK    = flag.Int("snap-every", 100, "snapshot sampling period in slots")
	)
	flag.Parse()

	base := trace.SyntheticConfig{
		SCNs: *scns, MinTasks: *minTasks, MaxTasks: *maxTasks,
		Overlap: *overlap, LatencySensitiveFrac: 0.5,
	}
	newGen := func(r *rng.Stream) (trace.Generator, error) {
		return trace.NewSynthetic(base, r)
	}
	if *stress != "" {
		var kind trace.StressKind
		switch *stress {
		case "diurnal":
			kind = trace.Diurnal
		case "hotspot":
			kind = trace.Hotspot
		case "flashcrowd":
			kind = trace.FlashCrowd
		default:
			fmt.Fprintf(os.Stderr, "unknown stress pattern %q\n", *stress)
			os.Exit(2)
		}
		newGen = func(r *rng.Stream) (trace.Generator, error) {
			return trace.NewStress(trace.StressConfig{Base: base, Kind: kind}, r)
		}
	}
	sc := &sim.Scenario{
		Cfg:          sim.Config{T: *horizon, Capacity: *capacity, Alpha: *alpha, Beta: *beta, H: *hGrain},
		NewGenerator: newGen,
		EnvCfg:       env.DefaultConfig(*scns, 27),
	}
	sc.EnvCfg.VRange = [2]float64{*vlo, *vhi}
	if *scenFile != "" {
		// The timeline derives from the master seed (its own pure child
		// stream), so -scenario on top of a fixed seed stays a pure
		// function of the flags. With -replicas every replica shares the
		// same dynamics: the comparison varies the workload, not the
		// topology.
		scfg, err := scenario.ParseFile(*scenFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
			os.Exit(2)
		}
		tl, err := scenario.Build(scfg, *scns, *horizon, *capacity, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
			os.Exit(2)
		}
		sc.Dyn = tl
		fmt.Fprintf(os.Stderr, "%s\n", tl)
	}
	if *mbs {
		sc.Cfg.MBS = &sim.MBSConfig{Capacity: *mbsCap}
	}
	switch *mode {
	case "stationary":
		sc.EnvCfg.Mode = env.Stationary
	case "drifting":
		sc.EnvCfg.Mode = env.Drifting
	case "piecewise":
		sc.EnvCfg.Mode = env.Piecewise
		sc.EnvCfg.SwitchEvery = *horizon / 4
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	var factories []sim.Factory
	var names []string
	for _, p := range strings.Split(*policies, ",") {
		switch strings.TrimSpace(strings.ToLower(p)) {
		case "oracle":
			factories = append(factories, sim.OracleFactory(false))
			names = append(names, "Oracle")
		case "lfsc":
			factories = append(factories, sim.LFSCFactory(nil))
			names = append(names, "LFSC")
		case "vucb":
			factories = append(factories, sim.VUCBFactory())
			names = append(names, "vUCB")
		case "fml":
			factories = append(factories, sim.FMLFactory(0))
			names = append(names, "FML")
		case "random":
			factories = append(factories, sim.RandomFactory())
			names = append(names, "Random")
		case "thompson":
			factories = append(factories, sim.ThompsonFactory())
			names = append(names, "Thompson")
		case "linucb":
			factories = append(factories, sim.LinUCBFactory(0))
			names = append(names, "LinUCB")
		case "":
		default:
			fmt.Fprintf(os.Stderr, "unknown policy %q\n", p)
			os.Exit(2)
		}
	}
	if len(factories) == 0 {
		fmt.Fprintln(os.Stderr, "no policies selected")
		os.Exit(2)
	}

	// Observability wiring: any of the four flags enables the obs layer
	// for every run below. The registry feeds -progress and -observe, the
	// probe feeds -trace and the status page, and -snapshots streams the
	// policy's bandit state as JSONL.
	var (
		obsOpts *obs.Options
		probe   *obs.Probe
		jsonlW  *obs.JSONLWriter
	)
	if *observe != "" || *progress || *tracePh || *snapPath != "" {
		obsOpts = &obs.Options{Registry: obs.NewRegistry()}
		if *tracePh || *observe != "" {
			probe = obs.NewProbe()
			obsOpts.Probe = probe
		}
		if *snapPath != "" {
			f, err := os.Create(*snapPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "snapshots: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			jsonlW = obs.NewJSONLWriter(f)
			obsOpts.SnapshotEvery = *snapK
			obsOpts.SnapshotSink = jsonlW
			obsOpts.SampleRuntime = true
		}
		sc.Cfg.Obs = obsOpts
	}
	if *observe != "" {
		srv, err := obs.StartServer(*observe, probe, obsOpts.Registry, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "observe: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observe: serving http://%s/lfsc/status\n", srv.Addr())
	}
	if *progress {
		stop := obs.StartProgressLogger(os.Stderr, obsOpts.Registry, time.Second)
		defer stop()
	}

	// Diagnostic chatter goes to stderr; stdout carries only the result
	// tables and charts so it stays machine-parseable.
	fmt.Fprintf(os.Stderr, "scenario: M=%d c=%d α=%g β=%g h=%d T=%d V∈[%g,%g] %s, seed=%d, replicas=%d\n\n",
		*scns, *capacity, *alpha, *beta, *hGrain, *horizon, *vlo, *vhi, *mode, *seed, *replicas)

	start := time.Now()
	headers := []string{"policy", "reward", "V1 (QoS)", "V2 (resource)", "ratio"}
	if *mbs {
		headers = append(headers, "MBS reward")
	}
	tbl := report.NewTable("Results", headers...)
	lineChart := report.NewLineChart("Cumulative compound reward", 72, 14)
	for i, factory := range factories {
		if *replicas <= 1 {
			s, err := sim.Run(sc, factory, *seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", names[i], err)
				os.Exit(1)
			}
			cells := []interface{}{s.Policy, s.TotalReward(), s.TotalV1(), s.TotalV2(), s.PerformanceRatio()}
			if *mbs {
				cells = append(cells, s.TotalMBSReward())
			}
			tbl.AddRowf(cells...)
			lineChart.Add(s.Policy, s.CumReward())
			continue
		}
		reps, err := sim.RunReplicas(sc, factory, sim.Seeds(*seed, *replicas), *workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", names[i], err)
			os.Exit(1)
		}
		sum := metrics.Summarize(reps)
		tbl.AddRow(sum.Policy,
			fmt.Sprintf("%.4g ± %.2g", sum.Reward, sum.RewardCI),
			fmt.Sprintf("%.4g ± %.2g", sum.V1, sum.V1CI),
			fmt.Sprintf("%.4g ± %.2g", sum.V2, sum.V2CI),
			fmt.Sprintf("%.4g", sum.Ratio))
		lineChart.Add(sum.Policy, metrics.Mean(reps).CumReward())
	}
	fmt.Println(tbl.String())
	if *chart {
		fmt.Println(lineChart.String())
	}
	wall := time.Since(start)
	if *tracePh && probe != nil {
		fmt.Println(report.PhaseTable(probe.Stats(), wall).String())
	}
	if jsonlW != nil {
		if probe != nil {
			jsonlW.WritePhases(probe.Stats(), wall)
		}
		jsonlW.WriteRuns(obsOpts.Registry)
		if err := jsonlW.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "snapshots: %v\n", err)
		}
	}
	fmt.Fprintf(os.Stderr, "elapsed: %v\n", wall.Round(time.Millisecond))
}
