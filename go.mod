module lfsc

go 1.22
