// MBS fallback: the paper's Sec. 6 future-work extension. Tasks that no
// small cell selects are offloaded to the macrocell base station over
// fibre: no mmWave blockage, but latency-sensitive tasks lose most of
// their value on the longer path. The example quantifies how much total
// system reward the fallback recovers and how the backhaul budget and the
// latency penalty shape it.
//
//	go run ./examples/mbsfallback
package main

import (
	"fmt"
	"log"

	"lfsc"
)

func run(mbs *lfsc.MBSConfig) *lfsc.Series {
	sc := lfsc.PaperScenario()
	sc.Cfg.T = 800
	sc.Cfg.MBS = mbs
	s, err := lfsc.Run(sc, lfsc.LFSCFactory(nil), 42)
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func main() {
	fmt.Printf("%-34s %12s %12s %9s\n", "configuration", "SCN reward", "MBS reward", "uplift")
	base := run(nil)
	fmt.Printf("%-34s %12.1f %12s %9s\n", "no fallback (paper baseline)",
		base.TotalReward(), "—", "—")
	for _, cfg := range []struct {
		name string
		mbs  lfsc.MBSConfig
	}{
		{"unlimited backhaul, penalty 0.3", lfsc.MBSConfig{}},
		{"backhaul 200 tasks/slot", lfsc.MBSConfig{Capacity: 200}},
		{"backhaul 50 tasks/slot", lfsc.MBSConfig{Capacity: 50}},
		{"no latency penalty", lfsc.MBSConfig{LatencyPenalty: 1}},
		{"harsh penalty 0.1", lfsc.MBSConfig{LatencyPenalty: 0.1}},
	} {
		mbs := cfg.mbs
		s := run(&mbs)
		uplift := 100 * s.TotalMBSReward() / s.TotalReward()
		fmt.Printf("%-34s %12.1f %12.1f %8.1f%%\n",
			cfg.name, s.TotalReward(), s.TotalMBSReward(), uplift)
	}
	fmt.Println("\nSCN-side rewards and violations are untouched by the fallback;")
	fmt.Println("the MBS only absorbs tasks the small cells leave behind.")
}
