// Trace-driven: record a workload trace to CSV, load it back, and replay
// it through the simulator — the integration path for real-world traces.
// Pass a path to your own trace (package trace CSV format, see
// cmd/tracegen) as the first argument to replay it instead.
//
//	go run ./examples/tracedriven [trace.csv]
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"lfsc"

	"lfsc/internal/env"
	"lfsc/internal/rng"
	"lfsc/internal/sim"
	"lfsc/internal/trace"
)

const numSCNs = 8

func main() {
	path := ""
	if len(os.Args) > 1 {
		path = os.Args[1]
	} else {
		// No trace supplied: record a reproducible synthetic one first.
		path = filepath.Join(os.TempDir(), "lfsc-example-trace.csv")
		if err := recordTrace(path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recorded synthetic trace to %s\n", path)
	}

	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	slots, err := trace.ReadCSV(f, numSCNs)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d slots\n", len(slots))

	// Replay the recorded workload; the horizon may exceed the trace
	// length — the replay cycles, so learners see several passes.
	sc := &lfsc.Scenario{
		Cfg: lfsc.Config{T: 4 * len(slots), Capacity: 5, Alpha: 2.5, Beta: 8, H: 3},
		NewGenerator: func(r *rng.Stream) (trace.Generator, error) {
			return trace.NewReplay(slots, numSCNs)
		},
		EnvCfg: env.DefaultConfig(numSCNs, 27),
	}
	series, err := sim.RunAll(sc, []sim.Factory{
		sim.OracleFactory(false),
		sim.LFSCFactory(nil),
		sim.VUCBFactory(),
		sim.RandomFactory(),
	}, 11, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-8s %12s %12s %8s\n", "policy", "reward", "violations", "ratio")
	for _, s := range series {
		fmt.Printf("%-8s %12.1f %12.1f %8.3f\n",
			s.Policy, s.TotalReward(), s.TotalViolations(), s.PerformanceRatio())
	}
}

func recordTrace(path string) error {
	gen, err := trace.NewSynthetic(trace.SyntheticConfig{
		SCNs: numSCNs, MinTasks: 10, MaxTasks: 25, Overlap: 0.4,
		LatencySensitiveFrac: 0.5,
	}, rng.New(99))
	if err != nil {
		return err
	}
	recorded := make([]*trace.Slot, 400)
	for t := range recorded {
		recorded[t] = gen.Next(t)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteCSV(f, recorded)
}
