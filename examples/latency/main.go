// Latency: feed LFSC's offloading decisions into a per-SCN queueing model
// of the edge server (internal/queueing) to study the latency the paper
// abstracts away ("we assume all tasks can be processed in one time slot").
// The example compares FIFO vs processor-sharing service at the same load
// and checks the single-slot abstraction: how often does a task's sojourn
// actually exceed one slot at the paper's operating point?
//
//	go run ./examples/latency
package main

import (
	"fmt"
	"log"

	"lfsc"

	"lfsc/internal/env"
	"lfsc/internal/policy"
	"lfsc/internal/queueing"
	"lfsc/internal/rng"
	"lfsc/internal/sim"
	"lfsc/internal/stats"
	"lfsc/internal/trace"
)

const (
	numSCNs  = 8
	capacity = 5
	horizon  = 600
	// serviceRate is the per-slot work each SCN server drains. Accepted
	// tasks bring work proportional to their input size; the rate is set
	// so the server runs at ~80% utilisation at full beam usage.
	serviceRate = 75.0
)

func main() {
	for _, disc := range []queueing.Discipline{queueing.FIFO, queueing.PS} {
		vals, over := run(disc)
		fmt.Printf("%-5s service: mean sojourn %.2f slots, p95 %.2f, >1 slot: %.1f%%\n",
			disc, vals.summary.Mean(), p95(vals), 100*over)
	}
	lam, mu := 0.8*serviceRate, serviceRate
	fmt.Printf("\nM/M/1 reference at ρ=0.8 (work units): E[T] = %.2f slots\n",
		queueing.MM1MeanSojourn(lam/12.5, mu/12.5)) // per-task units: mean work 12.5
	fmt.Println("\nThe paper's one-slot-per-task abstraction holds for the bulk of")
	fmt.Println("tasks at this operating point; the tail above one slot is what the")
	fmt.Println("multi-slot extension (Config.MultiSlot) models explicitly.")
}

type probeValues struct {
	summary *stats.Summary
	raw     []float64
	over    int
	total   int
}

func run(disc queueing.Discipline) (*probeValues, float64) {
	sc := &lfsc.Scenario{
		Cfg: lfsc.Config{T: horizon, Capacity: capacity, Alpha: 2, Beta: 8, H: 3},
		NewGenerator: func(r *rng.Stream) (trace.Generator, error) {
			return trace.NewSynthetic(trace.SyntheticConfig{
				SCNs: numSCNs, MinTasks: 8, MaxTasks: 20, Overlap: 0.3,
			}, r)
		},
		EnvCfg: env.DefaultConfig(numSCNs, 27),
	}
	servers := make([]*queueing.Server, numSCNs)
	for m := range servers {
		servers[m] = queueing.MustNewServer(serviceRate, disc)
	}
	vals := &probeValues{summary: &stats.Summary{}}
	factory := func(rc *sim.RunContext) (policy.Policy, error) {
		inner, err := sim.LFSCFactory(nil)(rc)
		if err != nil {
			return nil, err
		}
		return &probePolicy{inner: inner, servers: servers, vals: vals}, nil
	}
	if _, err := sim.Run(sc, factory, 42); err != nil {
		log.Fatal(err)
	}
	return vals, float64(vals.over) / float64(vals.total)
}

// probePolicy forwards decisions and mirrors accepted tasks into queues.
type probePolicy struct {
	inner   policy.Policy
	servers []*queueing.Server
	vals    *probeValues
	now     int
}

func (p *probePolicy) Name() string { return p.inner.Name() }

func (p *probePolicy) Decide(view *policy.SlotView) []int {
	assigned := p.inner.Decide(view)
	// Mirror: each accepted task submits work ∝ its context's input-size
	// coordinate (5..20 Mbit mapped back from [0,1]).
	ctxs := view.Ctxs()
	for m := range view.SCNs {
		for _, idx := range view.SCNs[m].Cover {
			if assigned[idx] != m {
				continue
			}
			work := 5 + 15*ctxs[idx][0]
			_ = p.servers[m].Submit(int64(p.now)<<20|int64(idx), work, p.now)
		}
	}
	for m := range p.servers {
		for _, c := range p.servers[m].Step(p.now) {
			s := float64(c.Sojourn())
			p.vals.summary.Add(s)
			p.vals.total++
			if c.Sojourn() > 1 {
				p.vals.over++
			}
			p.vals.raw = append(p.vals.raw, s)
		}
	}
	p.now++
	return assigned
}

func (p *probePolicy) Observe(view *policy.SlotView, assigned []int, fb *policy.Feedback) {
	p.inner.Observe(view, assigned, fb)
}

func p95(v *probeValues) float64 { return stats.Quantile(v.raw, 0.95) }
