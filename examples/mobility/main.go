// Mobility: a physically grounded small-cell scenario. Wireless devices
// move through a 2 km × 2 km service area under random-waypoint mobility;
// coverage sets D_{m,t} emerge from geometry, and the completion
// likelihood of each offload is computed from the mmWave channel model
// (LoS/blockage + Shannon rate) at the actual SCN-WD distance instead of
// the paper's abstract Uniform[0,1] draw.
//
// Because the likelihood is per-link rather than per-hypercube, this
// example drives the substrate packages directly with its own slot loop —
// a template for users who need a custom execution model.
//
//	go run ./examples/mobility
package main

import (
	"fmt"
	"log"

	"lfsc/internal/core"
	"lfsc/internal/env"
	"lfsc/internal/geo"
	"lfsc/internal/hypercube"
	"lfsc/internal/policy"
	"lfsc/internal/radio"
	"lfsc/internal/rng"
	"lfsc/internal/task"
	"lfsc/internal/trace"
)

const (
	numSCNs  = 16
	capacity = 8
	alpha    = 4.0
	beta     = 11.0
	horizon  = 1500
	slotSecs = 1.0
)

func main() {
	master := rng.New(7)
	// Dense urban deployment: 16 cells on 1.2 km², ~300 m inter-site
	// distance, 260 m coverage → heavy overlap, WDs usually within a
	// couple hundred meters of some SCN.
	area := geo.Area{W: 1200, H: 1200}
	scnPos := geo.PlaceGrid(area, numSCNs)

	gen, err := trace.NewGeo(trace.GeoConfig{
		Area: area, SCNPositions: scnPos, RadiusM: 260,
		WDs: 900, TaskProb: 0.35, MinSpeed: 1, MaxSpeed: 12, MaxPause: 4,
		LatencySensitiveFrac: 0.5,
	}, master.Derive(1))
	if err != nil {
		log.Fatal(err)
	}
	radioCfg := radio.DefaultConfig()
	radioCfg.LoSScaleM = 150 // suburban obstacle density
	radioCfg.RangeM = 260
	channel, err := radio.NewChannel(radioCfg)
	if err != nil {
		log.Fatal(err)
	}
	part := hypercube.MustNew(task.ContextDims, 3)
	ground := env.MustNew(env.DefaultConfig(numSCNs, part.Cells()), master.Derive(2))

	pol := core.MustNew(core.Config{
		SCNs: numSCNs, Capacity: capacity, Alpha: alpha, Beta: beta,
		Cells: part.Cells(), KMax: gen.MaxPerSCN(), Horizon: horizon,
	}, master.Derive(3))

	real := master.Derive(4)
	var totalReward, totalV1, totalV2 float64
	var losLinks, nlosLinks int
	for t := 0; t < horizon; t++ {
		slot := gen.Next(t)
		// Build the policy view and remember each task's position.
		cells := make([]int, len(slot.Tasks))
		for i, tk := range slot.Tasks {
			cells[i] = part.Index(tk.Context())
		}
		view := &policy.SlotView{T: t, NumTasks: len(slot.Tasks),
			Cells: cells, SCNs: make([]policy.SCNView, numSCNs)}
		for m, cov := range slot.Coverage {
			view.SCNs[m].Cover = cov
		}
		assigned := pol.Decide(view)
		fb := &policy.Feedback{}
		completed := make([]float64, numSCNs)
		consumed := make([]float64, numSCNs)
		slotRng := real.Derive(uint64(t))
		for taskIdx, m := range assigned {
			if m < 0 {
				continue
			}
			// Physical completion likelihood from the channel at the true
			// SCN-WD distance, replacing the cell-mean draw.
			pos := gen.LastPositions[taskIdx]
			d := scnPos[m].Distance(pos)
			data := slot.Tasks[taskIdx].InputMbit + slot.Tasks[taskIdx].OutputMbit
			v := channel.CompletionLikelihood(d, data, slotSecs)
			link := channel.Sample(d, slotRng)
			if link.LoS {
				losLinks++
			} else {
				nlosLinks++
			}
			out := ground.DrawWithLikelihood(m, cells[taskIdx], v,
				slotRng.Derive(uint64(m)<<32|uint64(taskIdx)))
			fb.Execs = append(fb.Execs, policy.Exec{
				SCN: m, Task: taskIdx, Cell: cells[taskIdx],
				U: out.U, V: out.V(), Q: out.Q,
			})
			totalReward += out.Compound()
			completed[m] += out.V()
			consumed[m] += out.Q
		}
		for m := 0; m < numSCNs; m++ {
			if d := alpha - completed[m]; d > 0 {
				totalV1 += d
			}
			if d := consumed[m] - beta; d > 0 {
				totalV2 += d
			}
		}
		pol.Observe(view, assigned, fb)
	}

	fmt.Printf("mobility scenario: %d SCNs on a %gx%g m grid, %d slots\n",
		numSCNs, area.W, area.H, horizon)
	fmt.Printf("links sampled: %d LoS, %d NLoS (%.0f%% blocked)\n",
		losLinks, nlosLinks, 100*float64(nlosLinks)/float64(losLinks+nlosLinks))
	fmt.Printf("total compound reward: %.1f\n", totalReward)
	fmt.Printf("violations: QoS %.1f, resource %.1f\n", totalV1, totalV2)
	l1, l2 := pol.Multipliers(0)
	fmt.Printf("SCN 0 multipliers after learning: λ1=%.3f λ2=%.3f\n", l1, l2)
}
