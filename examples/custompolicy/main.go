// Custompolicy: plug your own offloading algorithm into the simulator by
// implementing the lfsc.Policy interface. The example implements an
// ε-greedy learner over context hypercubes and benchmarks it against LFSC
// on the paper scenario.
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"
	"log"

	"lfsc"

	"lfsc/internal/assign"
)

// epsilonGreedy keeps the empirical mean compound reward per
// (SCN, hypercube) and, per slot, explores random edge weights with
// probability ε, otherwise exploits the means through the same greedy
// assignment LFSC uses.
type epsilonGreedy struct {
	epsilon  float64
	capacity int
	numSCNs  int
	sum      [][]float64
	count    [][]int
	r        *lfsc.Stream
	edges    []assign.Edge
}

func newEpsilonGreedy(numSCNs, capacity, cells int, epsilon float64, r *lfsc.Stream) *epsilonGreedy {
	p := &epsilonGreedy{epsilon: epsilon, capacity: capacity, numSCNs: numSCNs, r: r}
	p.sum = make([][]float64, numSCNs)
	p.count = make([][]int, numSCNs)
	for m := range p.sum {
		p.sum[m] = make([]float64, cells)
		p.count[m] = make([]int, cells)
	}
	return p
}

func (p *epsilonGreedy) Name() string { return "eps-greedy" }

func (p *epsilonGreedy) Decide(view *lfsc.SlotView) []int {
	p.edges = p.edges[:0]
	for m := range view.SCNs {
		for _, idx := range view.SCNs[m].Cover {
			f := view.Cells[idx]
			var w float64
			if p.r.Bernoulli(p.epsilon) || p.count[m][f] == 0 {
				w = 1 + p.r.Float64() // explore: random priority above means
			} else {
				w = p.sum[m][f] / float64(p.count[m][f])
			}
			p.edges = append(p.edges, assign.Edge{SCN: m, Task: idx, W: w})
		}
	}
	return assign.Greedy(p.edges, p.numSCNs, view.NumTasks, p.capacity)
}

func (p *epsilonGreedy) Observe(view *lfsc.SlotView, assigned []int, fb *lfsc.Feedback) {
	for _, e := range fb.Execs {
		p.sum[e.SCN][e.Cell] += e.Compound()
		p.count[e.SCN][e.Cell]++
	}
}

func main() {
	sc := lfsc.PaperScenario()
	sc.Cfg.T = 1500

	custom := func(rc *lfsc.RunContext) (lfsc.Policy, error) {
		return newEpsilonGreedy(rc.Gen.SCNs(), rc.Cfg.Capacity,
			rc.Partition.Cells(), 0.1, rc.Rng), nil
	}

	series, err := lfsc.RunAll(sc, []lfsc.Factory{
		lfsc.OracleFactory(false),
		lfsc.LFSCFactory(nil),
		custom,
		lfsc.RandomFactory(),
	}, 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %12s %12s %8s\n", "policy", "reward", "violations", "ratio")
	for _, s := range series {
		fmt.Printf("%-12s %12.1f %12.1f %8.3f\n",
			s.Policy, s.TotalReward(), s.TotalViolations(), s.PerformanceRatio())
	}
	fmt.Println("\nε-greedy chases raw reward; LFSC trades a little reward for")
	fmt.Println("far fewer constraint violations — compare the ratio column.")
}
