// Quickstart: run the paper's evaluation scenario at a reduced horizon and
// compare LFSC against the Oracle and the Random baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lfsc"
)

func main() {
	// The paper's Sec. 5 setup: 30 SCNs, 35-100 tasks each per slot,
	// c=20 beams, QoS floor α=15, resource ceiling β=27.
	sc := lfsc.PaperScenario()
	sc.Cfg.T = 1500 // the paper uses 10000; keep the quickstart snappy

	series, err := lfsc.RunAll(sc, []lfsc.Factory{
		lfsc.OracleFactory(false),
		lfsc.LFSCFactory(nil),
		lfsc.RandomFactory(),
	}, 42, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %12s %12s %12s %8s\n", "policy", "reward", "QoS-viol", "res-viol", "ratio")
	for _, s := range series {
		fmt.Printf("%-8s %12.1f %12.1f %12.1f %8.3f\n",
			s.Policy, s.TotalReward(), s.TotalV1(), s.TotalV2(), s.PerformanceRatio())
	}

	oracle, mine := series[0], series[1]
	fmt.Printf("\nLFSC reaches %.1f%% of the Oracle's reward after %d slots\n",
		100*mine.TotalReward()/oracle.TotalReward(), sc.Cfg.T)
	fmt.Printf("regret growth exponent: %.2f (sub-linear < 1)\n",
		mine.RegretExponent(oracle))
}
