// Package lfsc is a from-scratch Go reproduction of "An Online
// Learning-Based Task Offloading Framework for 5G Small Cell Networks"
// (Zhang, Zhou, Zhou, Lui, Li — ICPP 2020).
//
// It provides the LFSC algorithm (a constrained contextual multiple-play
// bandit with greedy multi-SCN coordination), a full small-cell simulation
// substrate (workload, mmWave channel, stochastic environment), the paper's
// benchmark policies (Oracle, vUCB, FML, Random), and an experiment harness
// that regenerates every figure of the paper's evaluation.
//
// This root package is the stable facade: it re-exports the types most
// users need so that downstream code imports a single package.
//
//	sc := lfsc.PaperScenario()
//	sc.Cfg.T = 1000
//	series, err := lfsc.RunAll(sc, lfsc.StandardFactories(), 42, 0)
//
// For custom policies implement lfsc.Policy and wrap it in a Factory; see
// examples/custompolicy.
package lfsc

import (
	"lfsc/internal/baselines"
	"lfsc/internal/core"
	"lfsc/internal/env"
	"lfsc/internal/experiments"
	"lfsc/internal/metrics"
	"lfsc/internal/policy"
	"lfsc/internal/rng"
	"lfsc/internal/sim"
	"lfsc/internal/trace"
)

// Core algorithm (paper Alg. 1-4).
type (
	// LFSC is the paper's online learning policy.
	LFSC = core.LFSC
	// LFSCConfig parameterises LFSC (schedule, constraints, ablations).
	LFSCConfig = core.Config
	// SelectionMode picks how selection probabilities drive assignment.
	SelectionMode = core.SelectionMode
)

// Selection modes.
const (
	DepRoundMode  = core.DepRoundMode
	Race          = core.Race
	Deterministic = core.Deterministic
)

// NewLFSC constructs the LFSC policy.
func NewLFSC(cfg LFSCConfig, r *Stream) (*LFSC, error) { return core.New(cfg, r) }

// Simulation engine.
type (
	// Config is the scenario system configuration (T, c, α, β, h).
	Config = sim.Config
	// Scenario bundles configuration with workload/environment recipes.
	Scenario = sim.Scenario
	// Factory constructs a fresh policy for one simulation run.
	Factory = sim.Factory
	// RunContext is handed to factories.
	RunContext = sim.RunContext
	// MBSConfig enables the macrocell-fallback extension (paper Sec. 6
	// future work) via Config.MBS.
	MBSConfig = sim.MBSConfig
	// MultiSlotConfig enables the multi-slot execution extension (paper
	// Sec. 3.3/6 future work) via Config.MultiSlot.
	MultiSlotConfig = sim.MultiSlotConfig
	// SharedTrace is a materialized workload trace replayed read-only
	// across runs (common random numbers, one generation pass).
	SharedTrace = sim.SharedTrace
)

// NewSharedTrace materializes a scenario's workload at a seed for the given
// number of replay passes; install it via Scenario.Shared (RunAll does this
// automatically).
func NewSharedTrace(sc *Scenario, seed uint64, readers int) (*SharedTrace, error) {
	return sim.NewSharedTrace(sc, seed, readers)
}

// Policy contract (implement this to plug in your own algorithm).
type (
	// Policy is a task offloading decision algorithm.
	Policy = policy.Policy
	// SlotView is what a policy observes at the start of a slot.
	SlotView = policy.SlotView
	// SCNView is the per-SCN coverage view.
	SCNView = policy.SCNView
	// Feedback delivers realised outcomes of executed tasks.
	Feedback = policy.Feedback
	// Exec is the realised feedback for one executed (SCN, task) pair.
	Exec = policy.Exec
)

// Metrics.
type (
	// Series is the per-slot metric record of one run.
	Series = metrics.Series
	// FinalSummary condenses replicas into scalar means with CIs.
	FinalSummary = metrics.FinalSummary
)

// Environment and workload.
type (
	// Env is the hidden stochastic ground truth (U, V, Q processes).
	Env = env.Env
	// EnvConfig parameterises the environment.
	EnvConfig = env.Config
	// Generator yields the per-slot workload.
	Generator = trace.Generator
	// Slot is one slot of workload (tasks + coverage).
	Slot = trace.Slot
	// Stream is the deterministic random stream used everywhere.
	Stream = rng.Stream
)

// Experiments.
type (
	// ExperimentOptions configures a harness run.
	ExperimentOptions = experiments.Options
	// ExperimentResult is a reproduced figure/table with shape checks.
	ExperimentResult = experiments.Result
)

// OracleConfig parameterises the ground-truth oracle baseline.
type OracleConfig = baselines.OracleConfig

// NewStream returns a deterministic random stream for the given seed.
func NewStream(seed uint64) *Stream { return rng.New(seed) }

// PaperScenario returns the paper's Sec. 5 evaluation setup (30 SCNs,
// |D_{m,t}| ∈ [35,100], c=20, α=15, β=27, U,V ~ U[0,1], Q ~ U[1,2], h=3).
func PaperScenario() *Scenario { return sim.PaperScenario() }

// DefaultConfig returns the paper's system configuration.
func DefaultConfig() Config { return sim.DefaultConfig() }

// Run simulates one policy over a scenario with the given seed.
func Run(sc *Scenario, factory Factory, seed uint64) (*Series, error) {
	return sim.Run(sc, factory, seed)
}

// RunAll simulates several policies on identical workload/environment.
func RunAll(sc *Scenario, factories []Factory, seed uint64, workers int) ([]*Series, error) {
	return sim.RunAll(sc, factories, seed, workers)
}

// RunReplicas simulates one policy across independent seeds in parallel.
func RunReplicas(sc *Scenario, factory Factory, seeds []uint64, workers int) ([]*Series, error) {
	return sim.RunReplicas(sc, factory, seeds, workers)
}

// Seeds derives n well-separated seeds from a base seed.
func Seeds(base uint64, n int) []uint64 { return sim.Seeds(base, n) }

// Policy factories for the paper's five policies.
var (
	// LFSCFactory builds the paper's algorithm (mutate may adjust config).
	LFSCFactory = sim.LFSCFactory
	// OracleFactory builds the ground-truth oracle.
	OracleFactory = sim.OracleFactory
	// VUCBFactory builds the vUCB benchmark.
	VUCBFactory = sim.VUCBFactory
	// FMLFactory builds the FML benchmark.
	FMLFactory = sim.FMLFactory
	// RandomFactory builds the random benchmark.
	RandomFactory = sim.RandomFactory
	// ThompsonFactory builds the Thompson-sampling comparator.
	ThompsonFactory = sim.ThompsonFactory
	// LinUCBFactory builds the contextual linear bandit comparator.
	LinUCBFactory = sim.LinUCBFactory
)

// StandardFactories returns the five policies in evaluation order.
func StandardFactories() []Factory { return sim.StandardFactories() }

// MeanSeries aggregates replicas point-wise.
func MeanSeries(replicas []*Series) *Series { return metrics.Mean(replicas) }

// SummarizeSeries condenses replicas into scalar means with CIs.
func SummarizeSeries(replicas []*Series) FinalSummary { return metrics.Summarize(replicas) }

// Experiments returns the registry of reproducible paper artifacts.
func Experiments() map[string]experiments.Runner { return experiments.Registry() }

// ExperimentOrder lists experiment ids in presentation order.
func ExperimentOrder() []string { return experiments.Order() }
