package lfsc_test

import (
	"testing"

	"lfsc"

	"lfsc/internal/env"
	"lfsc/internal/rng"
	"lfsc/internal/trace"
)

// smallScenario is a quick scenario exercised purely through the facade.
func smallScenario(T int) *lfsc.Scenario {
	return &lfsc.Scenario{
		Cfg: lfsc.Config{T: T, Capacity: 3, Alpha: 1.5, Beta: 5, H: 3, Strict: true},
		NewGenerator: func(r *rng.Stream) (lfsc.Generator, error) {
			return trace.NewSynthetic(trace.SyntheticConfig{
				SCNs: 4, MinTasks: 6, MaxTasks: 12, Overlap: 0.3,
			}, r)
		},
		EnvCfg: env.DefaultConfig(4, 27),
	}
}

func TestFacadeRunAll(t *testing.T) {
	series, err := lfsc.RunAll(smallScenario(50), lfsc.StandardFactories(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("got %d series", len(series))
	}
	for _, s := range series {
		if s.TotalReward() <= 0 {
			t.Fatalf("%s earned nothing", s.Policy)
		}
	}
}

func TestFacadePaperScenario(t *testing.T) {
	sc := lfsc.PaperScenario()
	if sc.Cfg.Capacity != 20 || sc.Cfg.Alpha != 15 || sc.Cfg.Beta != 27 || sc.Cfg.T != 10000 {
		t.Fatalf("paper constants wrong: %+v", sc.Cfg)
	}
	if lfsc.DefaultConfig().H != 3 {
		t.Fatal("default partition granularity wrong")
	}
}

// constantPolicy assigns nothing — a minimal custom Policy through the
// facade types.
type constantPolicy struct{}

func (constantPolicy) Name() string { return "noop" }
func (constantPolicy) Decide(view *lfsc.SlotView) []int {
	out := make([]int, view.NumTasks)
	for i := range out {
		out[i] = -1
	}
	return out
}
func (constantPolicy) Observe(*lfsc.SlotView, []int, *lfsc.Feedback) {}

func TestFacadeCustomPolicy(t *testing.T) {
	s, err := lfsc.Run(smallScenario(20), func(rc *lfsc.RunContext) (lfsc.Policy, error) {
		return constantPolicy{}, nil
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalReward() != 0 {
		t.Fatal("noop policy earned reward")
	}
	if s.TotalV1() == 0 {
		t.Fatal("noop policy should violate the QoS floor")
	}
}

func TestFacadeLFSCConstruction(t *testing.T) {
	cfg := lfsc.LFSCConfig{
		SCNs: 2, Capacity: 2, Alpha: 1, Beta: 4,
		Cells: 27, KMax: 10, Horizon: 100, Mode: lfsc.DepRoundMode,
	}
	pol, err := lfsc.NewLFSC(cfg, lfsc.NewStream(3))
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() != "LFSC" {
		t.Fatal("name")
	}
}

func TestFacadeReplicasAndAggregation(t *testing.T) {
	reps, err := lfsc.RunReplicas(smallScenario(25), lfsc.RandomFactory(), lfsc.Seeds(9, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	mean := lfsc.MeanSeries(reps)
	sum := lfsc.SummarizeSeries(reps)
	if mean.TotalReward() <= 0 || sum.Reward <= 0 {
		t.Fatal("aggregation broken")
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	reg := lfsc.Experiments()
	for _, id := range lfsc.ExperimentOrder() {
		if reg[id] == nil {
			t.Fatalf("experiment %q missing", id)
		}
	}
}
