// Package radio models the 5G mmWave access link between SCNs and wireless
// devices. The paper motivates two of its modelling choices with mmWave
// physics: (i) "5G mmWave signals are prone to blockage due to weak
// diffraction capabilities — once blockage happens, the execution of a task
// is interrupted", which is why the completion likelihood V exists at all,
// and (ii) "due to physical limitations such as RF chains, the number of
// beams emitted by each SCN is limited", which is the per-slot connection
// cap c.
//
// This package supplies a physically grounded instantiation of both: a
// distance-dependent line-of-sight/blockage model (3GPP UMi-style
// exponential LoS probability), log-distance path loss with shadowing, a
// Shannon-capacity rate map, and a beam budget. The headline experiments use
// the paper's abstract Uniform[0,1] likelihood; the radio model powers the
// `mobility` example and the likelihood-range sweeps, and lets downstream
// users swap in a physical channel without touching the learner.
package radio

import (
	"fmt"
	"math"

	"lfsc/internal/rng"
)

// Config collects the channel model parameters. Zero values are invalid;
// use DefaultConfig as a starting point.
type Config struct {
	// CarrierGHz is the carrier frequency (mmWave: 24–100 GHz).
	CarrierGHz float64
	// BandwidthMHz is the per-beam bandwidth.
	BandwidthMHz float64
	// TxPowerDBm is the SCN transmit power.
	TxPowerDBm float64
	// NoiseFigureDB is the receiver noise figure.
	NoiseFigureDB float64
	// LoSScaleM is the decay distance (meters) of the exponential LoS
	// probability P_LoS(d) = exp(-d/LoSScaleM): denser obstacles → smaller.
	LoSScaleM float64
	// NLoSPenaltyDB is the extra path loss under blockage.
	NLoSPenaltyDB float64
	// ShadowingStdDB is the lognormal shadowing standard deviation.
	ShadowingStdDB float64
	// Beams is the RF-chain/beam budget per SCN per slot (the paper's c).
	Beams int
	// RangeM is the nominal coverage radius.
	RangeM float64
}

// DefaultConfig returns parameters typical of a 28 GHz urban-micro small
// cell: 100 MHz beams, ~200 m coverage, 20-beam budget (the paper's c = 20).
func DefaultConfig() Config {
	return Config{
		CarrierGHz:     28,
		BandwidthMHz:   100,
		TxPowerDBm:     30,
		NoiseFigureDB:  7,
		LoSScaleM:      80,
		NLoSPenaltyDB:  25,
		ShadowingStdDB: 4,
		Beams:          20,
		RangeM:         200,
	}
}

// Validate checks the configuration for physical plausibility.
func (c Config) Validate() error {
	switch {
	case c.CarrierGHz <= 0:
		return fmt.Errorf("radio: carrier %v GHz must be positive", c.CarrierGHz)
	case c.BandwidthMHz <= 0:
		return fmt.Errorf("radio: bandwidth %v MHz must be positive", c.BandwidthMHz)
	case c.LoSScaleM <= 0:
		return fmt.Errorf("radio: LoS scale %v m must be positive", c.LoSScaleM)
	case c.Beams <= 0:
		return fmt.Errorf("radio: beam budget %d must be positive", c.Beams)
	case c.RangeM <= 0:
		return fmt.Errorf("radio: range %v m must be positive", c.RangeM)
	case c.ShadowingStdDB < 0:
		return fmt.Errorf("radio: shadowing std %v dB must be non-negative", c.ShadowingStdDB)
	}
	return nil
}

// Channel evaluates the model for one SCN-WD link.
type Channel struct {
	cfg Config
}

// NewChannel builds a channel model, validating the configuration.
func NewChannel(cfg Config) (*Channel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Channel{cfg: cfg}, nil
}

// Config returns the model parameters.
func (ch *Channel) Config() Config { return ch.cfg }

// LoSProbability returns the probability the link at distance d meters is
// line-of-sight (3GPP UMi-style exponential model).
func (ch *Channel) LoSProbability(d float64) float64 {
	if d <= 0 {
		return 1
	}
	return math.Exp(-d / ch.cfg.LoSScaleM)
}

// PathLossDB returns the log-distance path loss in dB at distance d meters.
// Free-space reference at 1 m plus exponent 2.0 (LoS) or 3.3 (NLoS) — the
// UMi street-canyon fit — plus the NLoS penalty.
func (ch *Channel) PathLossDB(d float64, los bool) float64 {
	if d < 1 {
		d = 1
	}
	fspl1m := 20*math.Log10(ch.cfg.CarrierGHz) + 32.4 // FSPL at 1 m, f in GHz
	exp := 2.0
	penalty := 0.0
	if !los {
		exp = 3.3
		penalty = ch.cfg.NLoSPenaltyDB
	}
	return fspl1m + 10*exp*math.Log10(d) + penalty
}

// SNRdB returns the post-beamforming SNR in dB for the given path loss and
// shadowing realisation (dB).
func (ch *Channel) SNRdB(pathLossDB, shadowDB float64) float64 {
	noiseDBm := -174 + 10*math.Log10(ch.cfg.BandwidthMHz*1e6) + ch.cfg.NoiseFigureDB
	return ch.cfg.TxPowerDBm - pathLossDB - shadowDB - noiseDBm
}

// RateMbps returns the Shannon-capacity rate of a beam at the given SNR.
func (ch *Channel) RateMbps(snrDB float64) float64 {
	snr := math.Pow(10, snrDB/10)
	return ch.cfg.BandwidthMHz * math.Log2(1+snr)
}

// Link is one sampled SCN-WD link realisation.
type Link struct {
	DistanceM float64
	LoS       bool
	SNRdB     float64
	RateMbps  float64
}

// Sample draws a link realisation at distance d: LoS state, shadowing, SNR
// and achievable rate.
func (ch *Channel) Sample(d float64, r *rng.Stream) Link {
	los := r.Bernoulli(ch.LoSProbability(d))
	shadow := r.Normal(0, ch.cfg.ShadowingStdDB)
	snr := ch.SNRdB(ch.PathLossDB(d, los), shadow)
	return Link{DistanceM: d, LoS: los, SNRdB: snr, RateMbps: ch.RateMbps(snr)}
}

// CompletionLikelihood maps a link distance to the probability that a task
// offloaded over it completes within a slot — the physical counterpart of
// the paper's V process. A task completes when the link stays unblocked for
// both transfers and the rate supports the data volume; we fold these into
//
//	V(d) = P_LoS-ish availability(d) × rate margin(d)
//
// where availability blends LoS probability with a floor for NLoS service
// and the margin saturates once the beam rate is well above what the slot
// needs. The function is monotone non-increasing in d and maps into [0,1].
func (ch *Channel) CompletionLikelihood(d, dataMbit, slotSeconds float64) float64 {
	if slotSeconds <= 0 {
		return 0
	}
	pl := ch.LoSProbability(d)
	avail := 0.25 + 0.75*pl // NLoS links still succeed sometimes
	// Median-shadowing rate at this distance under LoS and NLoS.
	rateLoS := ch.RateMbps(ch.SNRdB(ch.PathLossDB(d, true), 0))
	rateNLoS := ch.RateMbps(ch.SNRdB(ch.PathLossDB(d, false), 0))
	rate := pl*rateLoS + (1-pl)*rateNLoS
	need := dataMbit / slotSeconds
	if need <= 0 {
		return avail
	}
	margin := rate / (4 * need) // want 4x headroom for retransmissions
	if margin > 1 {
		margin = 1
	}
	return avail * margin
}

// LikelihoodTable is a precomputed CompletionLikelihood curve for one
// (data volume, slot length) pair, sampled uniformly over [0, maxD] and
// evaluated by linear interpolation. CompletionLikelihood costs an exp, two
// log10s and a pow per call; per-slot link sampling over every covered WD
// turns that into the dominant cost of the mobility scenario, while the
// curve itself is static. The table is read-only after construction and
// safe for concurrent use.
type LikelihoodTable struct {
	maxD    float64
	invStep float64
	vals    []float64
}

// LikelihoodTable precomputes V(d) on [0, maxD] with the given sample count
// (minimum 2; 256 is plenty for the curve's curvature — interpolation error
// is far below the model's own fidelity). Distances beyond maxD clamp to the
// last sample, matching the curve's monotone tail.
func (ch *Channel) LikelihoodTable(maxD, dataMbit, slotSeconds float64, samples int) *LikelihoodTable {
	if samples < 2 {
		samples = 2
	}
	if maxD <= 0 {
		maxD = ch.cfg.RangeM
	}
	t := &LikelihoodTable{
		maxD:    maxD,
		invStep: float64(samples-1) / maxD,
		vals:    make([]float64, samples),
	}
	for i := range t.vals {
		d := maxD * float64(i) / float64(samples-1)
		t.vals[i] = ch.CompletionLikelihood(d, dataMbit, slotSeconds)
	}
	return t
}

// At returns the interpolated likelihood at distance d meters.
func (t *LikelihoodTable) At(d float64) float64 {
	if d <= 0 {
		return t.vals[0]
	}
	if d >= t.maxD {
		return t.vals[len(t.vals)-1]
	}
	x := d * t.invStep
	i := int(x)
	frac := x - float64(i)
	return t.vals[i] + frac*(t.vals[i+1]-t.vals[i])
}
