package radio

import (
	"math"
	"testing"

	"lfsc/internal/rng"
)

func mustChannel(t *testing.T) *Channel {
	t.Helper()
	ch, err := NewChannel(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.CarrierGHz = 0 },
		func(c *Config) { c.BandwidthMHz = -1 },
		func(c *Config) { c.LoSScaleM = 0 },
		func(c *Config) { c.Beams = 0 },
		func(c *Config) { c.RangeM = 0 },
		func(c *Config) { c.ShadowingStdDB = -2 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
		if _, err := NewChannel(c); err == nil {
			t.Fatalf("NewChannel accepted bad config %d", i)
		}
	}
}

func TestLoSProbabilityMonotone(t *testing.T) {
	ch := mustChannel(t)
	if p := ch.LoSProbability(0); p != 1 {
		t.Fatalf("LoS at 0 m = %v", p)
	}
	prev := 1.0
	for d := 10.0; d <= 500; d += 10 {
		p := ch.LoSProbability(d)
		if p < 0 || p > 1 {
			t.Fatalf("LoS probability %v out of [0,1]", p)
		}
		if p > prev {
			t.Fatalf("LoS probability increased with distance at %v m", d)
		}
		prev = p
	}
}

func TestPathLossMonotone(t *testing.T) {
	ch := mustChannel(t)
	prev := -math.Inf(1)
	for d := 1.0; d <= 500; d *= 1.5 {
		pl := ch.PathLossDB(d, true)
		if pl <= prev {
			t.Fatalf("LoS path loss not increasing at %v m", d)
		}
		prev = pl
	}
	// NLoS always lossier than LoS at the same distance.
	for _, d := range []float64{5, 50, 200} {
		if ch.PathLossDB(d, false) <= ch.PathLossDB(d, true) {
			t.Fatalf("NLoS path loss not above LoS at %v m", d)
		}
	}
	// Sub-1m distances clamp rather than produce negative loss.
	if ch.PathLossDB(0.1, true) != ch.PathLossDB(1, true) {
		t.Fatal("sub-1m distance not clamped")
	}
}

func TestSNRAndRate(t *testing.T) {
	ch := mustChannel(t)
	// Rate decreases with distance, is positive at short range.
	r10 := ch.RateMbps(ch.SNRdB(ch.PathLossDB(10, true), 0))
	r200 := ch.RateMbps(ch.SNRdB(ch.PathLossDB(200, true), 0))
	if r10 <= r200 {
		t.Fatalf("rate should fall with distance: %v vs %v", r10, r200)
	}
	if r10 < 100 {
		t.Fatalf("10 m LoS mmWave rate suspiciously low: %v Mbps", r10)
	}
	if ch.RateMbps(-100) < 0 {
		t.Fatal("rate must be non-negative")
	}
}

func TestSampleRealisations(t *testing.T) {
	ch := mustChannel(t)
	r := rng.New(1)
	losCount := 0
	const n = 5000
	d := ch.Config().LoSScaleM // at the scale distance, P_LoS = 1/e
	for i := 0; i < n; i++ {
		l := ch.Sample(d, r)
		if l.DistanceM != d {
			t.Fatal("sample distance mismatch")
		}
		if l.RateMbps < 0 {
			t.Fatal("negative rate")
		}
		if l.LoS {
			losCount++
		}
	}
	p := float64(losCount) / n
	want := math.Exp(-1)
	if math.Abs(p-want) > 0.02 {
		t.Fatalf("empirical LoS fraction %v, want ~%v", p, want)
	}
}

func TestCompletionLikelihoodProperties(t *testing.T) {
	ch := mustChannel(t)
	prev := 1.1
	for d := 1.0; d <= 400; d += 5 {
		v := ch.CompletionLikelihood(d, 12, 1.0)
		if v < 0 || v > 1 {
			t.Fatalf("likelihood %v out of [0,1] at %v m", v, d)
		}
		if v > prev+1e-12 {
			t.Fatalf("likelihood increased with distance at %v m", d)
		}
		prev = v
	}
	// Bigger payloads are harder to complete.
	small := ch.CompletionLikelihood(150, 5, 1.0)
	big := ch.CompletionLikelihood(150, 2000, 1.0)
	if big > small {
		t.Fatalf("larger payload should not raise likelihood: %v vs %v", small, big)
	}
	if ch.CompletionLikelihood(10, 12, 0) != 0 {
		t.Fatal("zero slot length should give 0")
	}
	// Zero payload reduces to availability.
	if v := ch.CompletionLikelihood(10, 0, 1); v <= 0 || v > 1 {
		t.Fatalf("zero payload likelihood %v", v)
	}
}

func TestCompletionLikelihoodNearIsHigh(t *testing.T) {
	ch := mustChannel(t)
	v := ch.CompletionLikelihood(5, 12, 1.0)
	if v < 0.9 {
		t.Fatalf("5 m likelihood %v, want near 1", v)
	}
}

func BenchmarkSample(b *testing.B) {
	ch, _ := NewChannel(DefaultConfig())
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = ch.Sample(120, r)
	}
}

func BenchmarkCompletionLikelihood(b *testing.B) {
	ch, _ := NewChannel(DefaultConfig())
	for i := 0; i < b.N; i++ {
		_ = ch.CompletionLikelihood(120, 12, 1)
	}
}
