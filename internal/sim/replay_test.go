package sim

import (
	"fmt"
	"testing"

	"lfsc/internal/metrics"
)

// seriesFields enumerates the per-slot series of a run for bit-exact
// comparison. MBSReward is included; it is nil on both sides unless the
// scenario enables the macrocell fallback.
func seriesFields(s *metrics.Series) map[string][]float64 {
	return map[string][]float64{
		"Reward":    s.Reward,
		"V1":        s.V1,
		"V2":        s.V2,
		"Assigned":  s.Assigned,
		"Completed": s.Completed,
		"MBSReward": s.MBSReward,
	}
}

func assertSeriesEqual(t *testing.T, label string, a, b *metrics.Series) {
	t.Helper()
	fa, fb := seriesFields(a), seriesFields(b)
	for name, va := range fa {
		vb := fb[name]
		if len(va) != len(vb) {
			t.Fatalf("%s: %s length %d vs %d", label, name, len(va), len(vb))
		}
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("%s: %s diverges at slot %d: %x vs %x",
					label, name, i, va[i], vb[i])
			}
		}
	}
}

// TestSharedTraceReplayBitIdentical is the correctness contract of the
// shared-trace substrate: replaying a materialized trace must be
// indistinguishable from generating the workload live inside the run. For
// every standard policy the full per-slot series (reward, violations,
// assignment and completion counts) must match bit for bit, because the
// trace is a pure function of (scenario, seed) and the replay hands the
// policies the exact same slots in the exact same order.
func TestSharedTraceReplayBitIdentical(t *testing.T) {
	const seed = 42
	factories := StandardFactories()

	live := PaperScenario()
	live.Cfg.T = 80

	replay := PaperScenario()
	replay.Cfg.T = 80
	shared, err := NewSharedTrace(replay, seed, len(factories))
	if err != nil {
		t.Fatal(err)
	}
	replay.Shared = shared

	for fi, f := range factories {
		a, err := Run(live, f, seed)
		if err != nil {
			t.Fatalf("live run %d: %v", fi, err)
		}
		b, err := Run(replay, f, seed)
		if err != nil {
			t.Fatalf("replay run %d: %v", fi, err)
		}
		if a.Policy != b.Policy {
			t.Fatalf("policy name mismatch: %q vs %q", a.Policy, b.Policy)
		}
		assertSeriesEqual(t, fmt.Sprintf("policy %s", a.Policy), a, b)
	}
}

// TestSharedTraceSeedMismatchFallsBack pins the fallback contract: a
// Shared trace whose seed differs from the run's seed is ignored and the
// run regenerates the workload live — results must equal a run with no
// shared trace at all.
func TestSharedTraceSeedMismatchFallsBack(t *testing.T) {
	plain := PaperScenario()
	plain.Cfg.T = 40

	mismatched := PaperScenario()
	mismatched.Cfg.T = 40
	shared, err := NewSharedTrace(mismatched, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	mismatched.Shared = shared

	a, err := Run(plain, LFSCFactory(nil), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mismatched, LFSCFactory(nil), 42)
	if err != nil {
		t.Fatal(err)
	}
	assertSeriesEqual(t, "seed-mismatch fallback", a, b)
}

// TestRunAllSharedReplayConcurrent drives the concurrent replay path:
// RunAll materializes one SharedTrace and several worker goroutines read
// it simultaneously, each at its own position. Results must be
// bit-identical to fully serial runs with live generation — and running
// this test under -race (make test-race / make ci) proves the chunked
// replay window is properly synchronized.
func TestRunAllSharedReplayConcurrent(t *testing.T) {
	const seed = 42
	factories := StandardFactories()
	sc := PaperScenario()
	sc.Cfg.T = 60

	parallelSeries, err := RunAll(sc, factories, seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallelSeries) != len(factories) {
		t.Fatalf("got %d series, want %d", len(parallelSeries), len(factories))
	}
	for fi, f := range factories {
		ref, err := Run(PaperScenarioWithT(60), f, seed)
		if err != nil {
			t.Fatalf("serial run %d: %v", fi, err)
		}
		assertSeriesEqual(t, fmt.Sprintf("RunAll[%s]", ref.Policy), ref, parallelSeries[fi])
	}
}

// PaperScenarioWithT is a test helper: the paper scenario truncated to T
// slots with no shared trace installed.
func PaperScenarioWithT(T int) *Scenario {
	sc := PaperScenario()
	sc.Cfg.T = T
	return sc
}
