package sim

import (
	"sort"

	"lfsc/internal/env"
	"lfsc/internal/task"
	"lfsc/internal/trace"
)

// MultiSlotConfig enables the paper's second future-work extension
// (Sec. 3.3/6): tasks whose DurationSlots exceeds 1 must be executed in
// consecutive slots to finish. Following the paper's own proposal, a task
// in progress "keeps submitting offloading requests in the subsequent time
// slots" — the simulator re-injects it into the next slot, visible to the
// SCN that holds its state — and receives "an extra reward for processed
// tasks, such that they have the priority in future offloading decisions".
//
// Semantics per stage:
//   - every executed stage consumes resources (counts toward β/V2);
//   - a blockage (completion draw fails) at any stage aborts the task,
//     losing all progress;
//   - intermediate completed stages credit a partial compound reward
//     u·(1+StageBonus)·v/q is NOT given — instead the stage credits
//     StageBonus·u·v/q and feeds the boosted reward to the policy;
//   - the final stage credits the full compound reward and counts as a
//     completed task for the QoS floor α;
//   - a task whose continuation is not re-selected is aborted.
type MultiSlotConfig struct {
	// StageBonus is the fraction of the task's reward credited per
	// completed intermediate stage, and the priority boost fed back to the
	// learner (default 0.3 when zero).
	StageBonus float64
}

func (c *MultiSlotConfig) bonus() float64 {
	if c.StageBonus == 0 {
		return 0.3
	}
	return c.StageBonus
}

// msState tracks one in-flight multi-slot task.
type msState struct {
	tk      *task.Task
	scn     int
	stage   int
	touched bool
}

// msTracker carries the in-flight set across slots.
type msTracker struct {
	cfg      *MultiSlotConfig
	inflight map[int64]*msState
}

func newMSTracker(cfg *MultiSlotConfig) *msTracker {
	return &msTracker{cfg: cfg, inflight: make(map[int64]*msState)}
}

// inject returns the slot augmented with continuation requests for every
// in-flight task, each visible to the SCN holding its state. The original
// slot is never mutated (replayed traces share slot objects).
func (ms *msTracker) inject(s *trace.Slot) *trace.Slot {
	if len(ms.inflight) == 0 {
		return s
	}
	out := &trace.Slot{
		Tasks:    append([]*task.Task(nil), s.Tasks...),
		Coverage: make([][]int, len(s.Coverage)),
	}
	for m := range s.Coverage {
		out.Coverage[m] = append([]int(nil), s.Coverage[m]...)
	}
	ids := make([]int64, 0, len(ms.inflight))
	for id := range ms.inflight {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		st := ms.inflight[id]
		if st.scn >= len(out.Coverage) {
			continue // defensive: SCN disappeared (cannot happen in practice)
		}
		idx := len(out.Tasks)
		out.Tasks = append(out.Tasks, st.tk)
		out.Coverage[st.scn] = append(out.Coverage[st.scn], idx)
	}
	return out
}

// msResult is the outcome of processing one executed stage.
type msResult struct {
	// reward is the compound reward credited to the metrics this slot.
	reward float64
	// fbU is the (possibly boosted) reward exposed to the policy.
	fbU float64
	// completedFinal reports whether the whole task finished (counts
	// toward the QoS floor).
	completedFinal bool
}

// process advances an executed multi-slot task by one stage.
func (ms *msTracker) process(tk *task.Task, m int, out env.Outcome) msResult {
	st := ms.inflight[tk.ID]
	if st != nil {
		st.touched = true
	}
	if !out.Completed {
		// Blockage aborts the task; progress is lost (paper Sec. 1:
		// "once blockage happens, the execution of a task is interrupted").
		delete(ms.inflight, tk.ID)
		return msResult{fbU: out.U}
	}
	stage := 1
	if st != nil {
		stage = st.stage + 1
	}
	if stage >= tk.Duration() {
		delete(ms.inflight, tk.ID)
		return msResult{reward: out.Compound(), fbU: out.U, completedFinal: true}
	}
	if st == nil {
		// Copy the task into tracker-owned memory: with pooled generation
		// the slot's task structs live in the generator's arena and are
		// overwritten next slot, but this state must survive across slots.
		cp := *tk
		st = &msState{tk: &cp, touched: true}
		ms.inflight[tk.ID] = st
	}
	st.stage = stage
	st.scn = m
	// Intermediate stage: partial credit plus the paper's priority boost
	// in the feedback the learner sees.
	b := ms.cfg.bonus()
	partial := b * out.Compound()
	boosted := out.U * (1 + b)
	if boosted > 1 {
		boosted = 1
	}
	return msResult{reward: partial, fbU: boosted}
}

// sweep aborts in-flight tasks whose continuation was not executed this
// slot (the device gave up or no SCN re-selected it) and re-arms the
// touched flags.
func (ms *msTracker) sweep() {
	for id, st := range ms.inflight {
		if !st.touched {
			delete(ms.inflight, id)
			continue
		}
		st.touched = false
	}
}

// Inflight reports the number of in-progress multi-slot tasks (for tests).
func (ms *msTracker) Inflight() int { return len(ms.inflight) }
