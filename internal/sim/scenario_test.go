package sim

import (
	"fmt"
	"testing"

	"lfsc/internal/scenario"
)

// buildTimeline parses and builds a scenario timeline for the paper
// workload (30 SCNs) over the given horizon.
func buildTimeline(t *testing.T, text string, slots, capacity int, seed uint64) *scenario.Timeline {
	t.Helper()
	cfg, err := scenario.Parse([]byte(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tl, err := scenario.Build(cfg, 30, slots, capacity, seed)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return tl
}

const churnScenarioText = `
scns = 30

[sleep]
scns = 0-4
period = 20
duration = 6

[churn]
scns = 10-19
mean-up = 25
mean-down = 8

[diurnal]
scns = *
period = 40
min-cap = 0.5

[budget]
scns = 5-9
period = 30
alpha-min = 0.6
beta-min = 0.7
`

// TestScenarioAllUpBitIdentical pins the backward-compatibility contract:
// an attached timeline with no events (every SCN up, full capacity, unit
// budget multipliers) must leave every policy's series bit-identical to a
// run with no timeline at all.
func TestScenarioAllUpBitIdentical(t *testing.T) {
	const seed = 42
	tl := buildTimeline(t, "scns = 30\n", 80, DefaultConfig().Capacity, seed)
	if !tl.AllUp() {
		t.Fatal("event-free timeline should report AllUp")
	}
	for _, f := range StandardFactories() {
		plain := PaperScenarioWithT(80)
		a, err := Run(plain, f, seed)
		if err != nil {
			t.Fatal(err)
		}
		dyn := PaperScenarioWithT(80)
		dyn.Dyn = tl
		b, err := Run(dyn, f, seed)
		if err != nil {
			t.Fatal(err)
		}
		assertSeriesEqual(t, fmt.Sprintf("all-up[%s]", a.Policy), a, b)
	}
}

// TestScenarioChurnDeterministic pins timeline-driven runs as pure
// functions of (scenario, seed): two independent runs under an active
// churn scenario must produce bit-identical series, and a different
// timeline seed must actually change the dynamics.
func TestScenarioChurnDeterministic(t *testing.T) {
	const seed = 42
	mk := func(tlSeed uint64) *Scenario {
		sc := PaperScenarioWithT(80)
		sc.Cfg.Strict = true
		sc.Dyn = buildTimeline(t, churnScenarioText, 80, sc.Cfg.Capacity, tlSeed)
		return sc
	}
	a, err := Run(mk(7), LFSCFactory(nil), seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk(7), LFSCFactory(nil), seed)
	if err != nil {
		t.Fatal(err)
	}
	assertSeriesEqual(t, "churn determinism", a, b)

	c, err := Run(mk(8), LFSCFactory(nil), seed)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Reward {
		if a.Reward[i] != c.Reward[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different timeline seeds produced identical reward series")
	}
}

// TestScenarioReplayBitIdentical extends the shared-trace contract to
// scenario runs: replaying a materialized trace under an active timeline
// must match live generation bit for bit, for every standard policy. This
// is what guarantees RunAll comparisons under churn use common dynamics.
func TestScenarioReplayBitIdentical(t *testing.T) {
	const seed = 42
	factories := StandardFactories()
	tl := buildTimeline(t, churnScenarioText, 80, DefaultConfig().Capacity, 7)

	live := PaperScenarioWithT(80)
	live.Dyn = tl

	replay := PaperScenarioWithT(80)
	replay.Dyn = tl
	shared, err := NewSharedTrace(replay, seed, len(factories))
	if err != nil {
		t.Fatal(err)
	}
	replay.Shared = shared

	for fi, f := range factories {
		a, err := Run(live, f, seed)
		if err != nil {
			t.Fatalf("live run %d: %v", fi, err)
		}
		b, err := Run(replay, f, seed)
		if err != nil {
			t.Fatalf("replay run %d: %v", fi, err)
		}
		assertSeriesEqual(t, fmt.Sprintf("scenario replay[%s]", a.Policy), a, b)
	}
}

// TestScenarioRunAllWorkersBitIdentical drives the concurrent path under
// churn: RunAll with several workers must equal serial runs, so the
// timeline is read-race-free and position-independent (this test runs
// under -race in make ci).
func TestScenarioRunAllWorkersBitIdentical(t *testing.T) {
	const seed = 42
	factories := StandardFactories()
	tl := buildTimeline(t, churnScenarioText, 60, DefaultConfig().Capacity, 7)

	sc := PaperScenarioWithT(60)
	sc.Dyn = tl
	par, err := RunAll(sc, factories, seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	for fi, f := range factories {
		ref := PaperScenarioWithT(60)
		ref.Dyn = tl
		serial, err := Run(ref, f, seed)
		if err != nil {
			t.Fatalf("serial run %d: %v", fi, err)
		}
		assertSeriesEqual(t, fmt.Sprintf("RunAll churn[%s]", serial.Policy), serial, par[fi])
	}
}

// TestScenarioMaskedSCNsIdle verifies masking end to end under Strict
// validation: with a scenario that takes SCNs down, every policy still
// returns structurally legal assignments (no task lands on a down SCN —
// its coverage row is empty, so Strict would reject it), and the runs
// complete over a horizon long enough to cross sleep and churn
// transitions in both directions.
func TestScenarioMaskedSCNsIdle(t *testing.T) {
	const seed = 42
	tl := buildTimeline(t, churnScenarioText, 120, DefaultConfig().Capacity, 7)
	for _, f := range StandardFactories() {
		sc := PaperScenarioWithT(120)
		sc.Cfg.Strict = true
		sc.Dyn = tl
		if _, err := Run(sc, f, seed); err != nil {
			t.Fatalf("strict churn run: %v", err)
		}
	}
}

// TestScenarioSCNMismatchRejected pins the wiring guard: a timeline built
// for a different SCN count must be rejected up front, not read out of
// bounds mid-run.
func TestScenarioSCNMismatchRejected(t *testing.T) {
	cfg, err := scenario.Parse([]byte("scns = 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	tl, err := scenario.Build(cfg, 7, 40, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := PaperScenarioWithT(40)
	sc.Dyn = tl
	if _, err := Run(sc, LFSCFactory(nil), 42); err == nil {
		t.Fatal("expected SCN-count mismatch error")
	}
}
