package sim

import (
	"testing"

	"lfsc/internal/core"
	"lfsc/internal/metrics"
	"lfsc/internal/parallel"
)

// TestLFSCWorkersBitIdentical is the determinism regression guard for the
// scratch-arena runtime: the same paper-scale scenario run with Workers=1
// (strictly serial) and Workers=DefaultWorkers() (full fan-out) must
// produce bit-identical reward and violation series. This pins the
// "parallelism never changes what is computed" contract of
// internal/parallel — each SCN owns its weights, multipliers, RNG stream,
// and scratch arena, so scheduling cannot leak into results. Run under
// -race (make test-race) it also proves the arenas are properly
// partitioned between worker goroutines.
func TestLFSCWorkersBitIdentical(t *testing.T) {
	sc := PaperScenario()
	sc.Cfg.T = 120 // paper-scale slots (≈2000 tasks), short horizon
	run := func(workers int) *metrics.Series {
		s, err := Run(sc, LFSCFactory(func(c *core.Config) { c.Workers = workers }), 42)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return s
	}
	serial := run(1)
	fanout := run(parallel.DefaultWorkers())
	// DefaultWorkers() is 1 on a single-core machine, which would reduce
	// this guard to serial-vs-serial there; a forced 4-way fan-out keeps
	// the goroutine path exercised (and race-checked) everywhere.
	forced := run(4)
	series := func(s *metrics.Series, name string) []float64 {
		switch name {
		case "Reward":
			return s.Reward
		case "V1":
			return s.V1
		case "V2":
			return s.V2
		case "Assigned":
			return s.Assigned
		case "Completed":
			return s.Completed
		}
		panic("unknown series " + name)
	}
	for _, par := range []*metrics.Series{fanout, forced} {
		for _, name := range []string{"Reward", "V1", "V2", "Assigned", "Completed"} {
			a, b := series(serial, name), series(par, name)
			if len(a) != len(b) {
				t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s diverges at slot %d: serial %x vs parallel %x",
						name, i, a[i], b[i])
				}
			}
		}
	}
}
