// Package sim is the time-slotted simulation engine of the reproduction:
// it advances the environment, draws the workload, presents each policy
// with a SlotView, executes the returned assignment against the hidden
// ground truth, measures the paper's metrics, and feeds realised outcomes
// back to the policy (bandit feedback).
//
// Comparability across policies uses common random numbers: the outcome of
// "SCN m executes task i in slot t" is drawn from a stream derived from
// (seed, t, m, i), so two policies making the same decision observe the
// same realisation — the variance-reduction the paper's Fig. 2(b)
// comparison implicitly relies on.
package sim

import (
	"fmt"

	"lfsc/internal/baselines"
	"lfsc/internal/core"
	"lfsc/internal/env"
	"lfsc/internal/hypercube"
	"lfsc/internal/metrics"
	"lfsc/internal/obs"
	"lfsc/internal/parallel"
	"lfsc/internal/policy"
	"lfsc/internal/rng"
	"lfsc/internal/scenario"
	"lfsc/internal/task"
	"lfsc/internal/trace"
)

// Config is the system configuration of a simulation scenario.
type Config struct {
	// T is the horizon (number of time slots).
	T int
	// Capacity is c, the per-SCN beam budget per slot (paper: 20).
	Capacity int
	// Alpha is the per-SCN QoS floor (paper: 15).
	Alpha float64
	// Beta is the per-SCN resource ceiling (paper: 27).
	Beta float64
	// H is the hypercube partition granularity h_T (paper: 3).
	H int
	// UseLatencyContext switches to the 4-D context including the latency
	// class (default: the paper's 3-D context).
	UseLatencyContext bool
	// Strict re-validates every assignment a policy returns (useful in
	// tests and when developing custom policies; modest overhead).
	Strict bool
	// MBS enables the paper's future-work extension (Sec. 6): tasks that
	// no SCN selects are offloaded to the macrocell base station instead
	// of being dropped. Nil disables the extension.
	MBS *MBSConfig
	// MultiSlot enables the multi-slot execution extension for tasks with
	// DurationSlots > 1 (see MultiSlotConfig). Nil treats every task as
	// single-slot, the paper's base model.
	MultiSlot *MultiSlotConfig
	// Obs wires the observability layer into the run: per-phase timing,
	// policy-state snapshots, and live run telemetry (see obs.Options).
	// Nil disables everything; the per-slot cost of the disabled path is
	// a handful of nil checks, and an enabled probe never perturbs
	// results — probed runs are bit-identical to unprobed ones.
	Obs *obs.Options
}

// MBSConfig parameterises the macrocell fallback extension. The MBS sits
// behind fibre (no mmWave blockage) but farther from the devices, so
// latency-sensitive tasks lose part of their reward there — the paper's
// motivation for preferring SCNs and sending "tasks that do not restrict
// the latency but consume large amounts of computing resources" to the MBS.
type MBSConfig struct {
	// Capacity bounds fallback executions per slot (backhaul/compute
	// budget); <= 0 means unlimited.
	Capacity int
	// Likelihood is the wired-path completion probability (default 0.98
	// when zero).
	Likelihood float64
	// LatencyPenalty multiplies the reward of latency-sensitive tasks
	// executed at the MBS (default 0.3 when zero; 1 disables the penalty).
	LatencyPenalty float64
}

func (m *MBSConfig) likelihood() float64 {
	if m.Likelihood == 0 {
		return 0.98
	}
	return m.Likelihood
}

func (m *MBSConfig) penalty() float64 {
	if m.LatencyPenalty == 0 {
		return 0.3
	}
	return m.LatencyPenalty
}

// DefaultConfig returns the paper's evaluation configuration.
func DefaultConfig() Config {
	return Config{T: 10000, Capacity: 20, Alpha: 15, Beta: 27, H: 3}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.T <= 0:
		return fmt.Errorf("sim: T must be positive, got %d", c.T)
	case c.Capacity <= 0:
		return fmt.Errorf("sim: capacity must be positive, got %d", c.Capacity)
	case c.Alpha < 0 || c.Beta < 0:
		return fmt.Errorf("sim: alpha/beta must be non-negative")
	case c.H <= 0:
		return fmt.Errorf("sim: H must be positive, got %d", c.H)
	}
	return nil
}

// contextDims returns the context dimensionality implied by the config.
func (c Config) contextDims() int {
	if c.UseLatencyContext {
		return task.ContextDims + 1
	}
	return task.ContextDims
}

// Partition builds the hypercube partition implied by the config.
func (c Config) Partition() (*hypercube.Partition, error) {
	return hypercube.New(c.contextDims(), c.H)
}

// Scenario bundles the configuration with the workload and environment
// recipes. Recipes (not instances) so each run can rebuild identical
// workload/environment from the seed — policies are compared on exactly
// the same draws.
type Scenario struct {
	Cfg Config
	// NewGenerator builds the workload source from a derived stream.
	NewGenerator func(r *rng.Stream) (trace.Generator, error)
	// EnvCfg is the environment configuration; Cells is overwritten with
	// the partition size and SCNs with the generator's SCN count.
	EnvCfg env.Config
	// Shared optionally replays a pre-materialized workload trace instead
	// of regenerating it per run. Run uses it only when its seed matches
	// the run's seed (the trace is a pure function of (scenario, seed), so
	// a mismatched seed silently falls back to live generation, which is
	// bit-identical anyway). RunAll installs one automatically.
	Shared *SharedTrace
	// Dyn optionally imposes a scenario timeline (SCN availability,
	// capacity c_n(t), and α/β budget dynamics — see internal/scenario)
	// on the run. The timeline is consulted at the view-build layer, so
	// every policy sees identical dynamics: a down SCN's coverage row is
	// masked to empty (no edges, frozen learner state) and the per-SCN
	// capacity/budget vectors ride on the SlotView. The timeline is
	// read-only and safe to share across RunAll/RunReplicas goroutines.
	// Nil keeps the static topology, bit-identical to previous releases.
	Dyn *scenario.Timeline
}

// preTouchSink receives the cache-warming checksum of Run's pre-realised
// outcome pass; a package-level store keeps the compiler from eliding the
// loads.
var preTouchSink float64

// SharedTrace binds a materialized workload trace (trace.SharedTrace) to
// the seed it was generated from, so runs can tell whether replaying it
// reproduces their own generation pass.
type SharedTrace struct {
	// Seed is the master seed the trace was derived from.
	Seed uint64
	tr   *trace.SharedTrace
	// Optional per-slot hypercube indices precomputed by NewSharedTraceEager
	// (cells[t][i] = cell of slot t's task i). Runs whose partition matches
	// (cellsDims, cellsH) skip the per-task context indexing entirely.
	cells     [][]int
	cellsDims int
	cellsH    int
	// Optional pre-realised environment outcomes, also from
	// NewSharedTraceEager. Outcomes are common random numbers: each is a
	// pure function of (slot, SCN, task) drawn from its own derived stream,
	// so the realisation for every covered (SCN, task) pair can be drawn up
	// front regardless of which policy later selects it. outs[t] holds slot
	// t's outcomes SCN-major in coverage order; outOffs[t][m] is SCN m's
	// segment start (len SCNs+1, the last entry the slot total). Runs whose
	// environment configuration differs from outEnvCfg (or that enable the
	// MBS extension, which consumes extra draws) fall back to live draws —
	// which are bit-identical anyway.
	outs      [][]env.Outcome
	outOffs   [][]int32
	outEnvCfg env.Config
}

// NewSharedTrace materializes the scenario's workload at the given seed for
// `readers` replay passes (one per policy run that will consume it). The
// generator is built from the same derived stream Run would use, so replayed
// slots are bit-identical to live generation.
func NewSharedTrace(sc *Scenario, seed uint64, readers int) (*SharedTrace, error) {
	if err := sc.Cfg.Validate(); err != nil {
		return nil, err
	}
	gen, err := sc.NewGenerator(rng.New(seed).Derive(1))
	if err != nil {
		return nil, fmt.Errorf("sim: generator: %w", err)
	}
	tr, err := trace.NewSharedTrace(gen, sc.Cfg.T, trace.SharedTraceConfig{Readers: readers})
	if err != nil {
		return nil, err
	}
	return &SharedTrace{Seed: seed, tr: tr}, nil
}

// NewSharedTraceEager is NewSharedTrace with the whole horizon materialized
// up front and held in memory (no chunk eviction), plus per-slot hypercube
// indices and common-random-number environment outcomes precomputed for
// every covered (SCN, task) pair. Replay passes then pay neither generation
// nor context indexing nor realisation draws — the configuration benchmarks
// use this so the measured figure is the decision kernel, not the workload
// or environment source. Memory is O(T · tasks/slot · coverage); prefer
// NewSharedTrace when the horizon is large and runs advance together.
func NewSharedTraceEager(sc *Scenario, seed uint64, readers int) (*SharedTrace, error) {
	if err := sc.Cfg.Validate(); err != nil {
		return nil, err
	}
	part, err := sc.Cfg.Partition()
	if err != nil {
		return nil, err
	}
	gen, err := sc.NewGenerator(rng.New(seed).Derive(1))
	if err != nil {
		return nil, fmt.Errorf("sim: generator: %w", err)
	}
	// The environment is reconstructed exactly as Run would build it (same
	// config overrides, same derived stream), so the pre-drawn outcomes are
	// the ones a live run realises. Each outcome draws from its own
	// (slot, SCN, task)-derived stream, so drawing outcomes for covered
	// pairs a policy never selects does not perturb any other draw.
	envCfg := sc.EnvCfg
	envCfg.Cells = part.Cells()
	envCfg.SCNs = gen.SCNs()
	e, err := env.New(envCfg, rng.New(seed).Derive(2))
	if err != nil {
		return nil, fmt.Errorf("sim: environment: %w", err)
	}
	realRoot := rng.New(seed).Derive(4)
	// One extra reader performs the materialization walk; the unbounded
	// cache keeps every chunk resident for the declared replay passes.
	tr, err := trace.NewSharedTrace(gen, sc.Cfg.T, trace.SharedTraceConfig{Readers: readers + 1, MaxCachedChunks: -1})
	if err != nil {
		return nil, err
	}
	walker, err := tr.NewReader()
	if err != nil {
		return nil, err
	}
	cells := make([][]int, sc.Cfg.T)
	outs := make([][]env.Outcome, sc.Cfg.T)
	outOffs := make([][]int32, sc.Cfg.T)
	lat := sc.Cfg.UseLatencyContext
	numSCNs := gen.SCNs()
	var slotReal, taskReal rng.Stream
	for t := 0; t < sc.Cfg.T; t++ {
		s := walker.Next(t) // closes itself on the final slot
		row := make([]int, len(s.Tasks))
		for i, tk := range s.Tasks {
			row[i] = part.IndexTask(tk, lat)
		}
		cells[t] = row
		e.Advance(t)
		realRoot.DeriveInto(uint64(t), &slotReal)
		total := 0
		for m := 0; m < numSCNs; m++ {
			total += len(s.Coverage[m])
		}
		offs := make([]int32, numSCNs+1)
		outRow := make([]env.Outcome, total)
		pos := int32(0)
		for m := 0; m < numSCNs; m++ {
			offs[m] = pos
			for _, taskIdx := range s.Coverage[m] {
				slotReal.DeriveInto(uint64(m)<<32|uint64(taskIdx), &taskReal)
				outRow[pos] = e.Draw(m, row[taskIdx], &taskReal)
				pos++
			}
		}
		offs[numSCNs] = pos
		outs[t] = outRow
		outOffs[t] = offs
	}
	return &SharedTrace{
		Seed: seed, tr: tr,
		cells: cells, cellsDims: part.Dims(), cellsH: part.H(),
		outs: outs, outOffs: outOffs, outEnvCfg: envCfg,
	}, nil
}

// PaperScenario returns the full evaluation setup of Sec. 5: 30 SCNs,
// |D_{m,t}| ∈ [35,100], U,V ~ U[0,1], Q ~ U[1,2], c=20, α=15, β=27, h=3.
func PaperScenario() *Scenario {
	return &Scenario{
		Cfg: DefaultConfig(),
		NewGenerator: func(r *rng.Stream) (trace.Generator, error) {
			return trace.NewSynthetic(trace.DefaultSyntheticConfig(), r)
		},
		EnvCfg: env.DefaultConfig(30, 27),
	}
}

// RunContext is handed to policy factories: everything a policy
// constructor may need.
type RunContext struct {
	Cfg       Config
	Partition *hypercube.Partition
	Gen       trace.Generator
	Env       *env.Env
	Rng       *rng.Stream
}

// Factory constructs a fresh policy for one run.
type Factory func(rc *RunContext) (policy.Policy, error)

// LFSCFactory builds the paper's algorithm with the Theorem-1 schedule;
// mutate is optional and may adjust the config (ablations, overrides).
func LFSCFactory(mutate func(*core.Config)) Factory {
	return func(rc *RunContext) (policy.Policy, error) {
		cfg := core.Config{
			SCNs:     rc.Gen.SCNs(),
			Capacity: rc.Cfg.Capacity,
			Alpha:    rc.Cfg.Alpha,
			Beta:     rc.Cfg.Beta,
			Cells:    rc.Partition.Cells(),
			KMax:     rc.Gen.MaxPerSCN(),
			Horizon:  rc.Cfg.T,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		return core.New(cfg, rc.Rng)
	}
}

// OracleFactory builds the ground-truth oracle.
func OracleFactory(exact bool) Factory {
	return func(rc *RunContext) (policy.Policy, error) {
		return baselines.NewOracle(baselines.OracleConfig{
			Capacity:    rc.Cfg.Capacity,
			Alpha:       rc.Cfg.Alpha,
			Beta:        rc.Cfg.Beta,
			ExactAssign: exact,
		}, rc.Env)
	}
}

// VUCBFactory builds the vUCB benchmark.
func VUCBFactory() Factory {
	return func(rc *RunContext) (policy.Policy, error) {
		return baselines.NewVUCB(rc.Gen.SCNs(), rc.Cfg.Capacity, rc.Partition.Cells()), nil
	}
}

// FMLFactory builds the FML benchmark (z <= 0 uses the default exponent).
func FMLFactory(z float64) Factory {
	return func(rc *RunContext) (policy.Policy, error) {
		return baselines.NewFML(rc.Gen.SCNs(), rc.Cfg.Capacity, rc.Partition.Cells(), z), nil
	}
}

// RandomFactory builds the random benchmark.
func RandomFactory() Factory {
	return func(rc *RunContext) (policy.Policy, error) {
		return baselines.NewRandom(rc.Gen.SCNs(), rc.Cfg.Capacity, rc.Rng), nil
	}
}

// ThompsonFactory builds the Gaussian Thompson-sampling comparator.
func ThompsonFactory() Factory {
	return func(rc *RunContext) (policy.Policy, error) {
		return baselines.NewThompson(rc.Gen.SCNs(), rc.Cfg.Capacity, rc.Partition.Cells(), rc.Rng), nil
	}
}

// LinUCBFactory builds the contextual linear bandit comparator
// (alpha <= 0 uses the canonical exploration weight).
func LinUCBFactory(alpha float64) Factory {
	return func(rc *RunContext) (policy.Policy, error) {
		return baselines.NewLinUCB(rc.Gen.SCNs(), rc.Cfg.Capacity, rc.Partition.Dims(), alpha), nil
	}
}

// StandardFactories returns the paper's five policies in evaluation order.
func StandardFactories() []Factory {
	return []Factory{
		OracleFactory(false),
		LFSCFactory(nil),
		VUCBFactory(),
		FMLFactory(0),
		RandomFactory(),
	}
}

// Run simulates one policy over the scenario with the given master seed
// and returns its metric series.
func Run(sc *Scenario, factory Factory, seed uint64) (*metrics.Series, error) {
	if err := sc.Cfg.Validate(); err != nil {
		return nil, err
	}
	part, err := sc.Cfg.Partition()
	if err != nil {
		return nil, err
	}
	master := rng.New(seed)
	// Workload source: replay the shared trace when one is installed for
	// this seed (skipping master.Derive(1) is safe — Derive does not advance
	// the parent, so the other streams are unaffected), otherwise generate
	// live. Both paths produce bit-identical slots.
	var gen trace.Generator
	var reader *trace.TraceReader
	if sc.Shared != nil && sc.Shared.Seed == seed && sc.Shared.tr.Horizon() >= sc.Cfg.T {
		if r, rerr := sc.Shared.tr.NewReader(); rerr == nil {
			reader = r
			gen = r
			defer reader.Close()
		}
	}
	if gen == nil {
		var err error
		gen, err = sc.NewGenerator(master.Derive(1))
		if err != nil {
			return nil, fmt.Errorf("sim: generator: %w", err)
		}
	}
	envCfg := sc.EnvCfg
	envCfg.Cells = part.Cells()
	envCfg.SCNs = gen.SCNs()
	e, err := env.New(envCfg, master.Derive(2))
	if err != nil {
		return nil, fmt.Errorf("sim: environment: %w", err)
	}
	rc := &RunContext{Cfg: sc.Cfg, Partition: part, Gen: gen, Env: e, Rng: master.Derive(3)}
	pol, err := factory(rc)
	if err != nil {
		return nil, fmt.Errorf("sim: policy: %w", err)
	}
	realRoot := master.Derive(4)

	series := metrics.NewSeries(pol.Name(), sc.Cfg.T)
	numSCNs := gen.SCNs()
	if sc.Dyn != nil && sc.Dyn.SCNs() != numSCNs {
		return nil, fmt.Errorf("sim: scenario timeline covers %d SCNs, workload has %d", sc.Dyn.SCNs(), numSCNs)
	}
	var ms *msTracker
	if sc.Cfg.MultiSlot != nil {
		ms = newMSTracker(sc.Cfg.MultiSlot)
	}
	// Per-slot buffers are reused across the horizon: the slot protocol
	// (Decide → execute → Observe) guarantees policies do not retain the
	// view or feedback beyond the slot, so Run recycles them instead of
	// allocating T times.
	var scratch slotScratch
	fb := &policy.Feedback{}
	completed := make([]float64, numSCNs)
	consumed := make([]float64, numSCNs)
	if sc.Cfg.MBS != nil {
		series.EnableMBS()
	}
	// Observability wiring: every hook below is nil-safe, so the disabled
	// path (cfg.Obs == nil, the default) costs one nil check per probe
	// point and nothing else. Probes never touch an RNG stream, so a
	// probed run stays bit-identical to an unprobed one (see obs_test.go).
	var (
		probe     *obs.Probe
		rs        *obs.RunStatus
		snapper   obs.Snapshotter
		snapSink  obs.SnapshotSink
		snapEvery int
		sampleRT  bool
		snap      obs.PolicySnapshot
		cumReward float64
	)
	if o := sc.Cfg.Obs; o != nil {
		probe = o.Probe
		if o.Registry != nil {
			rs = o.Registry.NewRun(pol.Name(), sc.Cfg.T)
			defer rs.Finish()
		}
		if o.SnapshotEvery > 0 && o.SnapshotSink != nil {
			if sn, ok := pol.(obs.Snapshotter); ok {
				snapper, snapSink = sn, o.SnapshotSink
				snapEvery, sampleRT = o.SnapshotEvery, o.SampleRuntime
			}
		}
	}
	// Pooled generation and stack-derived RNG streams: the slot buffer is
	// refilled in place when the generator supports it, and the per-slot /
	// per-task streams are derived into stack values instead of allocating
	// a child stream per draw. Draw consumption is identical either way.
	into, pooled := gen.(trace.IntoGenerator)
	// Precomputed hypercube rows from an eager shared trace are usable only
	// when this run replays that trace verbatim (same reader, matching
	// partition, and no multi-slot injection mutating the slot contents).
	var preCells [][]int
	if reader != nil && ms == nil && sc.Shared.cells != nil &&
		sc.Shared.cellsDims == part.Dims() && sc.Shared.cellsH == part.H() {
		preCells = sc.Shared.cells
	}
	// Pre-realised outcomes are usable under the same conditions plus a
	// matching environment configuration; the MBS extension draws extra
	// realisations from the slot stream, so it forces the live path.
	var preOuts [][]env.Outcome
	var preOffs [][]int32
	var preCur []int32
	if preCells != nil && sc.Cfg.MBS == nil && sc.Shared.outs != nil && sc.Shared.outEnvCfg == envCfg {
		preOuts, preOffs = sc.Shared.outs, sc.Shared.outOffs
		preCur = make([]int32, numSCNs)
	}
	var slotBuf trace.Slot
	var slotReal rng.Stream
	var taskReal rng.Stream
	var scen scenario.View
	var scenp *scenario.View
	for t := 0; t < sc.Cfg.T; t++ {
		span := probe.Start()
		e.Advance(t)
		var slot *trace.Slot
		if pooled {
			into.NextInto(t, &slotBuf)
			slot = &slotBuf
		} else {
			slot = gen.Next(t)
		}
		if ms != nil {
			slot = ms.inject(slot)
		}
		span = probe.Lap(obs.PhaseGen, span)
		var pc []int
		if preCells != nil {
			pc = preCells[t]
		}
		if sc.Dyn != nil {
			sc.Dyn.ViewInto(t, &scen)
			scenp = &scen
		}
		view, cells := scratch.buildView(t, slot, part, sc.Cfg.UseLatencyContext, pc, scenp)
		span = probe.Lap(obs.PhaseView, span)
		assigned := pol.Decide(view)
		if sc.Cfg.Strict {
			if err := policy.ValidateAssignment(view, assigned, sc.Cfg.Capacity); err != nil {
				return nil, fmt.Errorf("sim: slot %d: policy %q: %w", t, pol.Name(), err)
			}
		} else if len(assigned) != view.NumTasks {
			return nil, fmt.Errorf("sim: slot %d: policy %q returned %d assignments for %d tasks",
				t, pol.Name(), len(assigned), view.NumTasks)
		}
		span = probe.Lap(obs.PhaseDecide, span)
		// Execute against ground truth with common random numbers.
		realRoot.DeriveInto(uint64(t), &slotReal)
		fb.Execs = fb.Execs[:0]
		reward := 0.0
		for m := 0; m < numSCNs; m++ {
			completed[m], consumed[m] = 0, 0
		}
		totalAssigned, totalCompleted := 0, 0
		if preOuts != nil {
			for m := range preCur {
				preCur[m] = 0
			}
			// Walk the slot's outcome row once, sequentially, before the
			// lookups below: the realisation table is far larger than cache,
			// and the per-task accesses hop between 30 SCN segments — cold,
			// they each stall on memory. A streaming pass pulls the whole
			// row (tens of KB) into cache at bandwidth instead. The checksum
			// is stored to a package sink so the loads cannot be elided.
			row := preOuts[t]
			touch := 0.0
			for i := 0; i < len(row); i += 2 {
				touch += row[i].Q
			}
			preTouchSink = touch
		}
		for taskIdx, m := range assigned {
			if m < 0 {
				continue
			}
			cell := cells[taskIdx]
			var out env.Outcome
			if preOuts == nil {
				slotReal.DeriveInto(uint64(m)<<32|uint64(taskIdx), &taskReal)
				out = e.Draw(m, cell, &taskReal)
			} else {
				// Look the outcome up in the pre-realised table: assigned
				// tasks arrive in ascending index order and coverage lists
				// are ascending, so a per-SCN cursor finds each task's
				// coverage position in amortised O(1).
				cov := slot.Coverage[m]
				j := preCur[m]
				for int(j) < len(cov) && cov[j] != taskIdx {
					j++
				}
				if int(j) == len(cov) {
					return nil, fmt.Errorf("sim: slot %d: task %d assigned to SCN %d outside its coverage", t, taskIdx, m)
				}
				preCur[m] = j + 1
				out = preOuts[t][preOffs[t][m]+j]
			}
			fbU := out.U
			totalAssigned++
			consumed[m] += out.Q
			// The task pointer is only needed on the multislot path; the
			// common path skips the dereference (a cache miss per task on
			// replayed traces).
			if ms != nil && slot.Tasks[taskIdx].Duration() > 1 {
				res := ms.process(slot.Tasks[taskIdx], m, out)
				reward += res.reward
				fbU = res.fbU
				if res.completedFinal {
					completed[m]++
					totalCompleted++
				}
			} else {
				reward += out.Compound()
				completed[m] += out.V()
				if out.Completed {
					totalCompleted++
				}
			}
			fb.Execs = append(fb.Execs, policy.Exec{
				SCN: m, Task: taskIdx, Cell: cell,
				U: fbU, V: out.V(), Q: out.Q,
			})
		}
		if ms != nil {
			ms.sweep()
		}
		v1, v2 := 0.0, 0.0
		if scenp == nil {
			for m := 0; m < numSCNs; m++ {
				if d := sc.Cfg.Alpha - completed[m]; d > 0 {
					v1 += d
				}
				if d := consumed[m] - sc.Cfg.Beta; d > 0 {
					v2 += d
				}
			}
		} else {
			// Down SCNs owe no QoS floor and consume nothing; up SCNs are
			// measured against their scenario-scaled budgets, matching the
			// multiplier updates inside the policies.
			for m := 0; m < numSCNs; m++ {
				if !scenp.Up[m] {
					continue
				}
				alpha, beta := sc.Cfg.Alpha, sc.Cfg.Beta
				if scenp.AlphaMul != nil {
					alpha *= scenp.AlphaMul[m]
				}
				if scenp.BetaMul != nil {
					beta *= scenp.BetaMul[m]
				}
				if d := alpha - completed[m]; d > 0 {
					v1 += d
				}
				if d := consumed[m] - beta; d > 0 {
					v2 += d
				}
			}
		}
		series.Record(t, reward, v1, v2, totalAssigned, totalCompleted)
		if sc.Cfg.MBS != nil {
			series.RecordMBS(t, runMBSFallback(sc.Cfg.MBS, slot, assigned, cells, e, &slotReal, ms != nil))
		}
		span = probe.Lap(obs.PhaseRealize, span)
		pol.Observe(view, assigned, fb)
		probe.Lap(obs.PhaseObserve, span)
		probe.EndSlot()
		if rs != nil || snapEvery > 0 {
			cumReward += reward
			rs.RecordSlot(reward)
		}
		if snapEvery > 0 && (t+1)%snapEvery == 0 {
			span = probe.Start()
			snap.Slot = t
			snap.CumReward = cumReward
			snapper.Snapshot(&snap)
			if sampleRT {
				obs.SampleRuntime(&snap.Runtime)
			}
			snapSink.OnSnapshot(&snap)
			probe.Lap(obs.PhaseSnapshot, span)
		}
	}
	return series, nil
}

// runMBSFallback executes unselected tasks at the macrocell base station
// and returns the slot's fallback compound reward. Tasks are taken in slot
// order up to the backhaul capacity; latency-sensitive tasks have their
// reward discounted by the configured penalty.
// skipMulti excludes multi-slot tasks from the fallback when the multi-slot
// extension is active — their lifecycle is owned by the SCN re-selection
// protocol, not the MBS.
func runMBSFallback(cfg *MBSConfig, slot *trace.Slot, assigned, cells []int,
	e *env.Env, slotReal *rng.Stream, skipMulti bool) float64 {
	// Labels for MBS draws live in a disjoint space from the SCN draws
	// (which use m<<32|task), keeping common random numbers intact.
	const mbsLabel = uint64(1) << 62
	reward := 0.0
	used := 0
	var taskReal rng.Stream
	for taskIdx, m := range assigned {
		if m != -1 {
			continue
		}
		if cfg.Capacity > 0 && used >= cfg.Capacity {
			break
		}
		if skipMulti && slot.Tasks[taskIdx].Duration() > 1 {
			continue
		}
		used++
		penalty := 1.0
		if slot.Tasks[taskIdx].LatencySensitive {
			penalty = cfg.penalty()
		}
		slotReal.DeriveInto(mbsLabel|uint64(taskIdx), &taskReal)
		out := e.DrawMBS(cells[taskIdx], cfg.likelihood(), penalty, &taskReal)
		reward += out.Compound()
	}
	return reward
}

// slotScratch holds the reusable per-slot buffers of one Run loop: hypercube
// indices, the policy-facing view, and (materialized only on demand) the
// context vectors. Buffers grow to the workload's high-water mark and are
// then recycled every slot; everything handed to the policy is only valid
// for the current slot.
//
// slotScratch is the view's policy.CtxSource: the context vectors are built
// lazily, the first time a policy calls SlotView.Ctxs. Cell-driven policies
// (LFSC and the tabular baselines) never ask, so the common path skips the
// context packing entirely — cells come either from the shared trace's
// precomputed rows or from Partition.IndexTask, which indexes off a stack
// buffer without materializing the vector.
type slotScratch struct {
	cells   []int
	ctxBuf  []float64
	ctxs    []task.Context
	view    policy.SlotView
	curSlot *trace.Slot
	latency bool
}

// MaterializeCtxs implements policy.CtxSource: it packs every task's context
// into one backing array and returns the per-task sub-slices. Called at most
// once per slot, and only by context-driven policies (e.g. LinUCB).
func (s *slotScratch) MaterializeCtxs() []task.Context {
	slot := s.curSlot
	n := len(slot.Tasks)
	dims := task.ContextDims
	if s.latency {
		dims++
	}
	if cap(s.ctxs) < n {
		s.ctxs = make([]task.Context, n)
	}
	s.ctxs = s.ctxs[:n]
	// Pack all contexts into one backing array first (appends may grow the
	// buffer, so sub-slices are taken only after the loop).
	s.ctxBuf = s.ctxBuf[:0]
	for i := range slot.Tasks {
		s.ctxBuf = slot.Tasks[i].AppendContext(s.ctxBuf, s.latency)
	}
	for i := 0; i < n; i++ {
		s.ctxs[i] = task.Context(s.ctxBuf[i*dims : (i+1)*dims : (i+1)*dims])
	}
	return s.ctxs
}

// buildView converts a workload slot into the policy-facing view, indexing
// every task's context exactly once (or not at all when preCells carries the
// shared trace's precomputed row). The returned view and cell slice alias
// the scratch and are valid until the next buildView call; the coverage rows
// are aliased directly from the slot.
func (s *slotScratch) buildView(t int, slot *trace.Slot, part *hypercube.Partition, latencyCtx bool, preCells []int, dyn *scenario.View) (*policy.SlotView, []int) {
	n := len(slot.Tasks)
	cells := preCells
	if cells == nil {
		if cap(s.cells) < n {
			s.cells = make([]int, n)
		}
		s.cells = s.cells[:n]
		for i, tk := range slot.Tasks {
			s.cells[i] = part.IndexTask(tk, latencyCtx)
		}
		cells = s.cells
	}
	numSCNs := len(slot.Coverage)
	if cap(s.view.SCNs) < numSCNs {
		s.view.SCNs = make([]policy.SCNView, numSCNs)
	}
	s.view.SCNs = s.view.SCNs[:numSCNs]
	// Scenario masking happens here, at the view boundary, so every policy
	// sees the identical dynamics: a down SCN's coverage row is emptied
	// (no edges this slot — learner state freezes, see core.LFSC), and the
	// per-SCN capacity/budget vectors ride along on the view. With no
	// timeline the fields stay nil and the static path is untouched.
	if dyn == nil {
		for m, cov := range slot.Coverage {
			s.view.SCNs[m].Cover = cov
		}
		s.view.Caps, s.view.AlphaMul, s.view.BetaMul = nil, nil, nil
	} else {
		for m, cov := range slot.Coverage {
			if dyn.Up[m] {
				s.view.SCNs[m].Cover = cov
			} else {
				s.view.SCNs[m].Cover = nil
			}
		}
		s.view.Caps, s.view.AlphaMul, s.view.BetaMul = dyn.Caps, dyn.AlphaMul, dyn.BetaMul
	}
	s.view.T = t
	s.view.NumTasks = n
	s.view.Cells = cells
	s.curSlot = slot
	s.latency = latencyCtx
	s.view.SetCtxSource(s)
	return &s.view, cells
}

// RunAll simulates several policies on the identical scenario and seed.
// Policies run in parallel — each run rebuilds its own environment and RNG
// streams from the shared seed, so results are independent of scheduling.
// The workload itself is materialized once into a SharedTrace (unless the
// scenario already carries one) and replayed read-only by every run: common
// random numbers with a single generation pass instead of one per policy.
func RunAll(sc *Scenario, factories []Factory, seed uint64, workers int) ([]*metrics.Series, error) {
	if sc.Shared == nil && len(factories) > 1 {
		if shared, err := NewSharedTrace(sc, seed, len(factories)); err == nil {
			cp := *sc
			cp.Shared = shared
			sc = &cp
		}
		// On error fall through to per-run generation: Run reports any
		// real scenario problem with full context.
	}
	out := make([]*metrics.Series, len(factories))
	errs := make([]error, len(factories))
	parallel.For(len(factories), workers, func(i int) {
		out[i], errs[i] = Run(sc, factories[i], seed)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunReplicas simulates one policy across independent seeds in parallel
// and returns the per-seed series. A Scenario.Shared trace is honoured only
// by the replica whose seed matches it — common random numbers deduplicate
// generation across policies, not across seeds, so the other replicas
// generate their workload live.
func RunReplicas(sc *Scenario, factory Factory, seeds []uint64, workers int) ([]*metrics.Series, error) {
	out := make([]*metrics.Series, len(seeds))
	errs := make([]error, len(seeds))
	parallel.ForDynamic(len(seeds), workers, func(i int) {
		out[i], errs[i] = Run(sc, factory, seeds[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Seeds derives n well-separated seeds from a base seed.
func Seeds(base uint64, n int) []uint64 {
	r := rng.New(base)
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}
