package sim

import (
	"math"
	"testing"

	"lfsc/internal/env"
	"lfsc/internal/metrics"
	"lfsc/internal/policy"
	"lfsc/internal/rng"
	"lfsc/internal/trace"
)

// smallScenario is a scaled-down paper scenario that runs fast in tests.
func smallScenario(T int) *Scenario {
	return &Scenario{
		Cfg: Config{T: T, Capacity: 4, Alpha: 2, Beta: 7, H: 3, Strict: true},
		NewGenerator: func(r *rng.Stream) (trace.Generator, error) {
			return trace.NewSynthetic(trace.SyntheticConfig{
				SCNs: 5, MinTasks: 8, MaxTasks: 20, Overlap: 0.3,
			}, r)
		},
		EnvCfg: env.DefaultConfig(5, 27),
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{T: 0, Capacity: 1, H: 1},
		{T: 1, Capacity: 0, H: 1},
		{T: 1, Capacity: 1, H: 0},
		{T: 1, Capacity: 1, H: 1, Alpha: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestPartitionDims(t *testing.T) {
	c := DefaultConfig()
	p, err := c.Partition()
	if err != nil || p.Cells() != 27 {
		t.Fatalf("default partition %v %v", p, err)
	}
	c.UseLatencyContext = true
	p, err = c.Partition()
	if err != nil || p.Cells() != 81 {
		t.Fatalf("latency partition %v %v", p, err)
	}
}

func TestRunAllPolicies(t *testing.T) {
	sc := smallScenario(60)
	series, err := RunAll(sc, StandardFactories(), 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("got %d series", len(series))
	}
	names := map[string]bool{}
	for _, s := range series {
		names[s.Policy] = true
		if s.T() != 60 {
			t.Fatalf("%s horizon %d", s.Policy, s.T())
		}
		if s.TotalReward() <= 0 {
			t.Fatalf("%s earned no reward", s.Policy)
		}
	}
	for _, want := range []string{"Oracle", "LFSC", "vUCB", "FML", "Random"} {
		if !names[want] {
			t.Fatalf("missing policy %s in %v", want, names)
		}
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	sc := smallScenario(30)
	a, err := Run(sc, LFSCFactory(nil), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, LFSCFactory(nil), 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Reward {
		if a.Reward[i] != b.Reward[i] || a.V1[i] != b.V1[i] || a.V2[i] != b.V2[i] {
			t.Fatalf("same seed diverged at slot %d", i)
		}
	}
	c, err := Run(sc, LFSCFactory(nil), 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Reward {
		if a.Reward[i] != c.Reward[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical series")
	}
}

func TestCommonRandomNumbers(t *testing.T) {
	// Two runs of the *same* seed with different policies must share the
	// environment: the oracle's mean reward trajectory is identical.
	sc := smallScenario(20)
	a, _ := Run(sc, OracleFactory(false), 3)
	b, _ := Run(sc, OracleFactory(false), 3)
	for i := range a.Reward {
		if a.Reward[i] != b.Reward[i] {
			t.Fatal("oracle runs with equal seed differ")
		}
	}
}

func TestOracleBeatsRandom(t *testing.T) {
	sc := smallScenario(150)
	series, err := RunAll(sc, []Factory{OracleFactory(false), RandomFactory()}, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	oracle, random := series[0], series[1]
	if oracle.TotalReward() <= random.TotalReward() {
		t.Fatalf("oracle %v not above random %v", oracle.TotalReward(), random.TotalReward())
	}
	if oracle.TotalViolations() >= random.TotalViolations() {
		t.Fatalf("oracle violations %v not below random %v",
			oracle.TotalViolations(), random.TotalViolations())
	}
}

func TestLFSCLearns(t *testing.T) {
	// Late-window per-slot reward should beat the early window once LFSC
	// has explored (constraint pressure is mild in this scenario).
	sc := smallScenario(1200)
	sc.Cfg.Alpha = 0
	s, err := Run(sc, LFSCFactory(nil), 5)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := Run(sc, RandomFactory(), 5)
	if err != nil {
		t.Fatal(err)
	}
	// LFSC must clearly beat Random over the horizon.
	if s.TotalReward() <= rnd.TotalReward() {
		t.Fatalf("LFSC %v did not beat Random %v", s.TotalReward(), rnd.TotalReward())
	}
}

// overAssigner is a deliberately broken policy: it assigns every visible
// task to SCN 0 regardless of capacity.
type overAssigner struct{}

func (overAssigner) Name() string { return "broken" }
func (overAssigner) Decide(view *policy.SlotView) []int {
	out := make([]int, view.NumTasks)
	for i := range out {
		out[i] = -1
	}
	for _, idx := range view.SCNs[0].Cover {
		out[idx] = 0
	}
	return out
}
func (overAssigner) Observe(*policy.SlotView, []int, *policy.Feedback) {}

func TestStrictModeCatchesBadPolicy(t *testing.T) {
	sc := smallScenario(5)
	_, err := Run(sc, func(rc *RunContext) (policy.Policy, error) {
		return overAssigner{}, nil
	}, 1)
	if err == nil {
		t.Fatal("strict mode accepted an over-assigning policy")
	}
}

func TestRunReplicasAndSeeds(t *testing.T) {
	sc := smallScenario(25)
	seeds := Seeds(99, 4)
	if len(seeds) != 4 {
		t.Fatal("seed count")
	}
	uniq := map[uint64]bool{}
	for _, s := range seeds {
		uniq[s] = true
	}
	if len(uniq) != 4 {
		t.Fatal("seeds not distinct")
	}
	reps, err := RunReplicas(sc, RandomFactory(), seeds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 4 {
		t.Fatal("replica count")
	}
	mean := metrics.Mean(reps)
	if mean.TotalReward() <= 0 {
		t.Fatal("mean replica reward non-positive")
	}
}

func TestViolationsNonNegative(t *testing.T) {
	sc := smallScenario(50)
	s, err := Run(sc, VUCBFactory(), 13)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.V1 {
		if s.V1[i] < 0 || s.V2[i] < 0 {
			t.Fatal("negative violation recorded")
		}
	}
	if math.IsNaN(s.TotalReward()) {
		t.Fatal("NaN reward")
	}
}

func TestGeneratorErrorPropagates(t *testing.T) {
	sc := smallScenario(10)
	sc.NewGenerator = func(r *rng.Stream) (trace.Generator, error) {
		return trace.NewSynthetic(trace.SyntheticConfig{}, r) // invalid
	}
	if _, err := Run(sc, RandomFactory(), 1); err == nil {
		t.Fatal("invalid generator config accepted")
	}
}

func TestPaperScenarioShape(t *testing.T) {
	sc := PaperScenario()
	if sc.Cfg.Capacity != 20 || sc.Cfg.Alpha != 15 || sc.Cfg.Beta != 27 {
		t.Fatal("paper constants wrong")
	}
	gen, err := sc.NewGenerator(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if gen.SCNs() != 30 {
		t.Fatalf("paper SCNs = %d", gen.SCNs())
	}
	// One-slot smoke run at paper scale.
	sc.Cfg.T = 2
	if _, err := Run(sc, LFSCFactory(nil), 1); err != nil {
		t.Fatal(err)
	}
}

func TestMBSFallback(t *testing.T) {
	sc := smallScenario(40)
	sc.Cfg.MBS = &MBSConfig{Capacity: 10}
	s, err := Run(sc, RandomFactory(), 21)
	if err != nil {
		t.Fatal(err)
	}
	if s.MBSReward == nil {
		t.Fatal("MBS reward series missing")
	}
	if s.TotalMBSReward() <= 0 {
		t.Fatal("MBS fallback earned nothing despite unselected tasks")
	}
	// SCN-level metrics must be identical with and without the extension.
	sc2 := smallScenario(40)
	s2, err := Run(sc2, RandomFactory(), 21)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Reward {
		if s.Reward[i] != s2.Reward[i] || s.V1[i] != s2.V1[i] {
			t.Fatal("MBS extension changed SCN-level metrics")
		}
	}
	if s2.TotalMBSReward() != 0 {
		t.Fatal("disabled MBS recorded reward")
	}
}

func TestMBSCapacityBindsAndPenaltyHurts(t *testing.T) {
	// Unlimited capacity earns at least as much as a tight one.
	mk := func(capacity int, penalty float64) float64 {
		sc := smallScenario(40)
		sc.Cfg.MBS = &MBSConfig{Capacity: capacity, LatencyPenalty: penalty}
		s, err := Run(sc, RandomFactory(), 5)
		if err != nil {
			t.Fatal(err)
		}
		return s.TotalMBSReward()
	}
	tight := mk(2, 0.3)
	loose := mk(0, 0.3) // 0 = unlimited
	if loose < tight {
		t.Fatalf("unlimited MBS capacity earned less (%v) than capacity 2 (%v)", loose, tight)
	}
	soft := mk(0, 1.0) // no latency penalty
	if soft < loose {
		t.Fatalf("penalty-free MBS earned less (%v) than penalised (%v)", soft, loose)
	}
}

func TestExtraLearnerFactories(t *testing.T) {
	sc := smallScenario(60)
	series, err := RunAll(sc, []Factory{ThompsonFactory(), LinUCBFactory(0)}, 17, 0)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range series {
		names[s.Policy] = true
		if s.TotalReward() <= 0 {
			t.Fatalf("%s earned nothing", s.Policy)
		}
	}
	if !names["Thompson"] || !names["LinUCB"] {
		t.Fatalf("missing learners: %v", names)
	}
}
