package sim

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"lfsc/internal/core"
	"lfsc/internal/obs"
)

// TestObsBitIdentical pins the observability layer's core contract: a run
// with the probe, registry, and snapshot sampling all enabled produces a
// reward/violation series bit-identical to the bare run of the same seed.
// Probes read clocks and copy state; they must never touch an RNG stream.
func TestObsBitIdentical(t *testing.T) {
	sc := PaperScenario()
	sc.Cfg.T = 200
	factory := LFSCFactory(func(c *core.Config) { c.Workers = 1 })

	bare, err := Run(sc, factory, 42)
	if err != nil {
		t.Fatal(err)
	}

	obsSC := PaperScenario()
	obsSC.Cfg.T = 200
	ring := obs.NewSnapshotRing(16)
	obsSC.Cfg.Obs = &obs.Options{
		Probe:         obs.NewProbe(),
		Registry:      obs.NewRegistry(),
		SnapshotEvery: 25,
		SnapshotSink:  ring,
		SampleRuntime: true,
	}
	probed, err := Run(obsSC, factory, 42)
	if err != nil {
		t.Fatal(err)
	}

	for tt := 0; tt < sc.Cfg.T; tt++ {
		if bare.Reward[tt] != probed.Reward[tt] {
			t.Fatalf("slot %d: probed reward %x != bare %x", tt, probed.Reward[tt], bare.Reward[tt])
		}
		if bare.V1[tt] != probed.V1[tt] || bare.V2[tt] != probed.V2[tt] {
			t.Fatalf("slot %d: probed violations differ from bare run", tt)
		}
	}
	if len(ring.Snapshots()) != 200/25 {
		t.Fatalf("got %d snapshots, want %d", len(ring.Snapshots()), 200/25)
	}
}

// TestObsPhaseSumsCoverWallClock checks the probe's accounting: the sum of
// all phase durations must essentially be the loop's wall time (between
// half and ~105% — the loop also pays setup, clock reads, and scheduler
// noise, but nothing per-slot is outside a phase span).
func TestObsPhaseSumsCoverWallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	sc := PaperScenario()
	sc.Cfg.T = 300
	probe := obs.NewProbe()
	sc.Cfg.Obs = &obs.Options{Probe: probe}
	start := time.Now()
	if _, err := Run(sc, LFSCFactory(func(c *core.Config) { c.Workers = 1 }), 42); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	sum := time.Duration(probe.TotalNS())
	if sum > wall+wall/20 {
		t.Fatalf("phase sum %v exceeds wall clock %v", sum, wall)
	}
	if sum < wall/2 {
		t.Fatalf("phase sum %v covers under half the wall clock %v — a probe point is missing", sum, wall)
	}
	if got := probe.Slots(); got != 300 {
		t.Fatalf("probe counted %d slots, want 300", got)
	}
	stats := probe.Stats()
	if len(stats) < 5 {
		t.Fatalf("expected all five loop phases recorded, got %+v", stats)
	}
}

// TestObsSnapshotContent runs LFSC with snapshot sampling and checks the
// sampled introspection state is shaped and bounded as documented.
func TestObsSnapshotContent(t *testing.T) {
	sc := PaperScenario()
	sc.Cfg.T = 120
	ring := obs.NewSnapshotRing(8)
	reg := obs.NewRegistry()
	sc.Cfg.Obs = &obs.Options{Registry: reg, SnapshotEvery: 40, SnapshotSink: ring}
	series, err := Run(sc, LFSCFactory(func(c *core.Config) { c.Workers = 1 }), 7)
	if err != nil {
		t.Fatal(err)
	}
	snaps := ring.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots, want 3", len(snaps))
	}
	part, _ := sc.Cfg.Partition()
	for _, s := range snaps {
		if s.Policy != "LFSC" {
			t.Fatalf("snapshot policy %q", s.Policy)
		}
		if len(s.Lambda1) != 30 || len(s.Lambda2) != 30 || len(s.Entropy) != 30 ||
			len(s.ExplorationMass) != 30 || len(s.CappedCells) != 30 {
			t.Fatalf("per-SCN buffers wrong length: %+v", s)
		}
		if s.Gamma <= 0 || s.Eta <= 0 || s.Delta <= 0 {
			t.Fatalf("schedule values missing: γ=%v η=%v δ=%v", s.Gamma, s.Eta, s.Delta)
		}
		for m := 0; m < 30; m++ {
			if s.Lambda1[m] < 0 || s.Lambda2[m] < 0 {
				t.Fatalf("negative multiplier at SCN %d", m)
			}
			if s.Entropy[m] < 0 || s.Entropy[m] > 1+1e-9 {
				t.Fatalf("entropy out of [0,1]: %v", s.Entropy[m])
			}
			if s.ExplorationMass[m] < 0 || s.ExplorationMass[m] > 1+1e-9 {
				t.Fatalf("exploration mass out of [0,1]: %v", s.ExplorationMass[m])
			}
			if s.CappedCells[m] < 0 || s.CappedCells[m] > part.Cells() {
				t.Fatalf("capped-cell count %d outside [0,%d]", s.CappedCells[m], part.Cells())
			}
		}
	}
	// Cumulative reward at the last snapshot (slot 119) must match the
	// series' own accumulation exactly — same additions in the same order.
	want := 0.0
	for tt := 0; tt <= snaps[2].Slot; tt++ {
		want += series.Reward[tt]
	}
	if snaps[2].CumReward != want {
		t.Fatalf("snapshot cum reward %v != series cum %v", snaps[2].CumReward, want)
	}
	// The registry saw the full run.
	runs := reg.Runs()
	if len(runs) != 1 || runs[0].Slots() != 120 || !runs[0].Done() {
		t.Fatalf("registry state: %+v", runs)
	}
	if runs[0].CumReward() != series.TotalReward() {
		t.Fatalf("registry reward %v != series total %v", runs[0].CumReward(), series.TotalReward())
	}
}

// TestObsJSONLFromRun wires a JSONL sink through a real run and re-parses
// every line.
func TestObsJSONLFromRun(t *testing.T) {
	sc := PaperScenario()
	sc.Cfg.T = 90
	var buf bytes.Buffer
	w := obs.NewJSONLWriter(&buf)
	sc.Cfg.Obs = &obs.Options{SnapshotEvery: 30, SnapshotSink: w}
	if _, err := Run(sc, LFSCFactory(func(c *core.Config) { c.Workers = 1 }), 3); err != nil {
		t.Fatal(err)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	n := 0
	for dec.More() {
		var ev struct {
			Type string              `json:"type"`
			Data *obs.PolicySnapshot `json:"data"`
		}
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if ev.Type != "snapshot" || ev.Data == nil || len(ev.Data.Lambda1) != 30 {
			t.Fatalf("line %d malformed: %+v", n, ev)
		}
		n++
	}
	if n != 3 {
		t.Fatalf("got %d snapshot lines, want 3", n)
	}
}

// TestObsNonSnapshotterPolicy: policies without introspection (the
// baselines) run fine with sampling requested — snapshots are skipped.
func TestObsNonSnapshotterPolicy(t *testing.T) {
	sc := PaperScenario()
	sc.Cfg.T = 50
	ring := obs.NewSnapshotRing(4)
	sc.Cfg.Obs = &obs.Options{SnapshotEvery: 10, SnapshotSink: ring}
	if _, err := Run(sc, RandomFactory(), 5); err != nil {
		t.Fatal(err)
	}
	if got := len(ring.Snapshots()); got != 0 {
		t.Fatalf("non-snapshotter produced %d snapshots, want 0", got)
	}
}
