package sim

import (
	"testing"
)

// BenchmarkRunLFSC measures the full simulation loop (generation + view
// building + Decide + execution + Observe) at paper scale; b.N counts slots.
func BenchmarkRunLFSC(b *testing.B) {
	sc := PaperScenario()
	sc.Cfg.T = b.N
	if sc.Cfg.T < 10 {
		sc.Cfg.T = 10
	}
	b.ResetTimer()
	if _, err := Run(sc, LFSCFactory(nil), 42); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRunAllStandard measures the five-policy comparison with the
// shared-trace replay path RunAll installs automatically.
func BenchmarkRunAllStandard(b *testing.B) {
	sc := PaperScenario()
	sc.Cfg.T = b.N
	if sc.Cfg.T < 10 {
		sc.Cfg.T = 10
	}
	b.ResetTimer()
	if _, err := RunAll(sc, StandardFactories(), 42, 1); err != nil {
		b.Fatal(err)
	}
}
