package sim

import (
	"testing"

	"lfsc/internal/obs"
)

// BenchmarkRunLFSC measures the full simulation loop (generation + view
// building + Decide + execution + Observe) at paper scale; b.N counts slots.
func BenchmarkRunLFSC(b *testing.B) {
	sc := PaperScenario()
	sc.Cfg.T = b.N
	if sc.Cfg.T < 10 {
		sc.Cfg.T = 10
	}
	b.ResetTimer()
	if _, err := Run(sc, LFSCFactory(nil), 42); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRunLFSCProbeOff is BenchmarkRunLFSC with an explicit (but
// empty) obs.Options — the configuration every probe hook nil-checks
// against. Compare against BenchmarkRunLFSCProbeOn to price the
// observability layer; the off/on delta is the true probe cost and the
// off/BenchmarkRunLFSC delta must be noise.
func BenchmarkRunLFSCProbeOff(b *testing.B) {
	sc := PaperScenario()
	sc.Cfg.T = b.N
	if sc.Cfg.T < 10 {
		sc.Cfg.T = 10
	}
	sc.Cfg.Obs = &obs.Options{}
	b.ResetTimer()
	if _, err := Run(sc, LFSCFactory(nil), 42); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRunLFSCProbeOn measures the full loop with phase timing and
// run telemetry enabled: five clock reads plus a dozen atomic adds per
// slot, against a ~hundreds-of-µs slot.
func BenchmarkRunLFSCProbeOn(b *testing.B) {
	sc := PaperScenario()
	sc.Cfg.T = b.N
	if sc.Cfg.T < 10 {
		sc.Cfg.T = 10
	}
	sc.Cfg.Obs = &obs.Options{Probe: obs.NewProbe(), Registry: obs.NewRegistry()}
	b.ResetTimer()
	if _, err := Run(sc, LFSCFactory(nil), 42); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRunAllStandard measures the five-policy comparison with the
// shared-trace replay path RunAll installs automatically.
func BenchmarkRunAllStandard(b *testing.B) {
	sc := PaperScenario()
	sc.Cfg.T = b.N
	if sc.Cfg.T < 10 {
		sc.Cfg.T = 10
	}
	b.ResetTimer()
	if _, err := RunAll(sc, StandardFactories(), 42, 1); err != nil {
		b.Fatal(err)
	}
}
