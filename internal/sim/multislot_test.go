package sim

import (
	"testing"

	"lfsc/internal/env"
	"lfsc/internal/rng"
	"lfsc/internal/task"
	"lfsc/internal/trace"
)

func multiScenario(T int, frac float64) *Scenario {
	return &Scenario{
		Cfg: Config{T: T, Capacity: 4, Alpha: 2, Beta: 7, H: 3, Strict: true,
			MultiSlot: &MultiSlotConfig{}},
		NewGenerator: func(r *rng.Stream) (trace.Generator, error) {
			return trace.NewSynthetic(trace.SyntheticConfig{
				SCNs: 4, MinTasks: 8, MaxTasks: 16, Overlap: 0.2,
				MultiSlotFrac: frac, MaxDuration: 3,
			}, r)
		},
		EnvCfg: env.DefaultConfig(4, 27),
	}
}

func TestMultiSlotRunsAndEarns(t *testing.T) {
	s, err := Run(multiScenario(200, 0.4), LFSCFactory(nil), 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalReward() <= 0 {
		t.Fatal("multi-slot run earned nothing")
	}
	// Deterministic given the seed.
	s2, err := Run(multiScenario(200, 0.4), LFSCFactory(nil), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Reward {
		if s.Reward[i] != s2.Reward[i] {
			t.Fatal("multi-slot run not deterministic")
		}
	}
}

func TestMultiSlotZeroFracMatchesBase(t *testing.T) {
	// With no multi-slot tasks the extension must be a strict no-op.
	a, err := Run(multiScenario(60, 0), RandomFactory(), 9)
	if err != nil {
		t.Fatal(err)
	}
	base := multiScenario(60, 0)
	base.Cfg.MultiSlot = nil
	b, err := Run(base, RandomFactory(), 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Reward {
		if a.Reward[i] != b.Reward[i] || a.V1[i] != b.V1[i] || a.V2[i] != b.V2[i] {
			t.Fatalf("slot %d differs with inactive extension", i)
		}
	}
}

func TestMSTrackerLifecycle(t *testing.T) {
	ms := newMSTracker(&MultiSlotConfig{StageBonus: 0.5})
	tk := &task.Task{ID: 7, DurationSlots: 3, InputMbit: 10, OutputMbit: 2}
	good := env.Outcome{U: 0.8, Completed: true, Q: 1.6}

	// Stage 1: intermediate.
	res := ms.process(tk, 2, good)
	if res.completedFinal {
		t.Fatal("finished after one of three stages")
	}
	if res.reward <= 0 || res.reward >= good.Compound() {
		t.Fatalf("intermediate reward %v out of (0, full)", res.reward)
	}
	if res.fbU <= good.U {
		t.Fatal("intermediate feedback not boosted")
	}
	if ms.Inflight() != 1 {
		t.Fatal("task not tracked")
	}
	ms.sweep()

	// Stage 2: intermediate again.
	if res = ms.process(tk, 2, good); res.completedFinal {
		t.Fatal("finished after two of three stages")
	}
	ms.sweep()

	// Stage 3: final.
	res = ms.process(tk, 2, good)
	if !res.completedFinal {
		t.Fatal("did not finish after three stages")
	}
	if res.reward != good.Compound() {
		t.Fatalf("final reward %v != full compound %v", res.reward, good.Compound())
	}
	if ms.Inflight() != 0 {
		t.Fatal("finished task still tracked")
	}
}

func TestMSTrackerAbortOnBlockage(t *testing.T) {
	ms := newMSTracker(&MultiSlotConfig{})
	tk := &task.Task{ID: 1, DurationSlots: 2}
	ms.process(tk, 0, env.Outcome{U: 0.5, Completed: true, Q: 1.5})
	if ms.Inflight() != 1 {
		t.Fatal("not tracked")
	}
	res := ms.process(tk, 0, env.Outcome{U: 0.5, Completed: false, Q: 1.5})
	if res.reward != 0 || res.completedFinal {
		t.Fatal("blocked stage must yield nothing")
	}
	if ms.Inflight() != 0 {
		t.Fatal("blocked task still tracked (progress should be lost)")
	}
}

func TestMSTrackerSweepAborts(t *testing.T) {
	ms := newMSTracker(&MultiSlotConfig{})
	tk := &task.Task{ID: 1, DurationSlots: 3}
	ms.process(tk, 0, env.Outcome{U: 0.5, Completed: true, Q: 1.5})
	ms.sweep() // touched this slot: survives
	if ms.Inflight() != 1 {
		t.Fatal("task dropped despite being executed")
	}
	ms.sweep() // not re-selected: aborted
	if ms.Inflight() != 0 {
		t.Fatal("unselected continuation not aborted")
	}
}

func TestMSInjection(t *testing.T) {
	ms := newMSTracker(&MultiSlotConfig{})
	tk := &task.Task{ID: 42, DurationSlots: 2}
	ms.process(tk, 1, env.Outcome{U: 0.5, Completed: true, Q: 1.5})
	orig := &trace.Slot{
		Tasks:    []*task.Task{{ID: 100}},
		Coverage: [][]int{{0}, {}},
	}
	aug := ms.inject(orig)
	if aug == orig {
		t.Fatal("injection must copy")
	}
	if len(aug.Tasks) != 2 || aug.Tasks[1].ID != 42 {
		t.Fatalf("continuation not injected: %d tasks", len(aug.Tasks))
	}
	if len(aug.Coverage[1]) != 1 || aug.Coverage[1][0] != 1 {
		t.Fatalf("continuation not visible to its SCN: %v", aug.Coverage)
	}
	if len(orig.Tasks) != 1 || len(orig.Coverage[1]) != 0 {
		t.Fatal("original slot mutated")
	}
	// Empty tracker passes the slot through untouched.
	ms2 := newMSTracker(&MultiSlotConfig{})
	if ms2.inject(orig) != orig {
		t.Fatal("empty tracker should not copy")
	}
}
