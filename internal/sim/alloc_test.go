package sim

import (
	"testing"

	"lfsc/internal/core"
)

// TestRunSteadyStateAllocs pins the full-loop allocation budget: the
// per-slot cost of Run (generation + view building + Decide + environment
// + Observe + metrics) beyond one-time setup. The seed of this repo spent
// ~2878 allocs/slot; the pooled workload arena and the scratch-buffer
// runtime bring the steady state down to single digits (metrics growth and
// occasional arena high-water bumps). The bound is deliberately loose —
// it exists to catch a reintroduced per-task allocation (which would cost
// thousands per slot), not to freeze the exact figure.
func TestRunSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale horizons")
	}
	run := func(T int) float64 {
		sc := PaperScenario()
		sc.Cfg.T = T
		return testing.AllocsPerRun(1, func() {
			if _, err := Run(sc, LFSCFactory(func(c *core.Config) { c.Workers = 1 }), 42); err != nil {
				t.Fatal(err)
			}
		})
	}
	const tShort, tLong = 100, 500
	short := run(tShort)
	long := run(tLong)
	// Differencing the two horizons cancels the one-time setup allocations
	// (policy construction, arenas, series backing arrays).
	perSlot := (long - short) / float64(tLong-tShort)
	if perSlot > 64 {
		t.Fatalf("steady-state allocations: %.1f/slot (T=%d: %.0f, T=%d: %.0f), want ≤ 64",
			perSlot, tShort, short, tLong, long)
	}
}

// TestRunSteadyStateAllocsMBS extends the budget to the macrocell
// fallback extension: Run pre-allocates the MBS series (EnableMBS) before
// the loop, so RecordMBS never allocates mid-run and the steady state
// stays within the same bound as the base scenario.
func TestRunSteadyStateAllocsMBS(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale horizons")
	}
	run := func(T int) float64 {
		sc := PaperScenario()
		sc.Cfg.T = T
		sc.Cfg.MBS = &MBSConfig{Capacity: 50}
		return testing.AllocsPerRun(1, func() {
			if _, err := Run(sc, LFSCFactory(func(c *core.Config) { c.Workers = 1 }), 42); err != nil {
				t.Fatal(err)
			}
		})
	}
	const tShort, tLong = 100, 500
	short := run(tShort)
	long := run(tLong)
	perSlot := (long - short) / float64(tLong-tShort)
	if perSlot > 64 {
		t.Fatalf("MBS steady-state allocations: %.1f/slot (T=%d: %.0f, T=%d: %.0f), want ≤ 64",
			perSlot, tShort, short, tLong, long)
	}
}
