package report

import (
	"fmt"
	"time"

	"lfsc/internal/obs"
)

// PhaseTable renders a probe's per-phase timing breakdown as a report
// table: span counts, total/mean time, log-bucket percentiles, and each
// phase's share of the measured wall clock (wall <= 0 falls back to the
// probe's own phase sum, making the shares sum to ~100%).
func PhaseTable(stats []obs.PhaseStat, wall time.Duration) *Table {
	tbl := NewTable("Per-phase timing breakdown",
		"phase", "count", "total", "mean", "p50", "p90", "p99", "share")
	var sum uint64
	for _, st := range stats {
		sum += st.TotalNS
	}
	wallNS := float64(wall.Nanoseconds())
	if wallNS <= 0 {
		wallNS = float64(sum)
	}
	for _, st := range stats {
		share := ""
		if wallNS > 0 {
			share = fmt.Sprintf("%.1f%%", 100*float64(st.TotalNS)/wallNS)
		}
		tbl.AddRow(st.Phase,
			fmt.Sprintf("%d", st.Count),
			time.Duration(st.TotalNS).Round(time.Millisecond).String(),
			fmtDur(st.MeanNS),
			fmtDur(st.P50NS),
			fmtDur(st.P90NS),
			fmtDur(st.P99NS),
			share)
	}
	if wallNS > 0 {
		tbl.AddRow("(all)", "",
			time.Duration(sum).Round(time.Millisecond).String(),
			"", "", "", "",
			fmt.Sprintf("%.1f%%", 100*float64(sum)/wallNS))
	}
	return tbl
}

// fmtDur renders a fractional nanosecond count at microsecond rounding.
func fmtDur(ns float64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
