package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Results", "policy", "reward", "violations")
	tb.AddRow("LFSC", "123.4", "5.6")
	tb.AddRowf("Oracle", 130.123456, 2)
	out := tb.String()
	if !strings.Contains(out, "Results") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "LFSC") || !strings.Contains(out, "Oracle") {
		t.Fatal("missing rows")
	}
	if !strings.Contains(out, "130.1") {
		t.Fatalf("float formatting wrong: %s", out)
	}
	// All rendered lines of the grid have equal width.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	width := len(lines[1])
	for _, l := range lines[1:] {
		if len(l) != width {
			t.Fatalf("ragged table:\n%s", out)
		}
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "dropped-extra")
	out := tb.String()
	if strings.Contains(out, "dropped-extra") {
		t.Fatal("extra cell not dropped")
	}
	if !strings.Contains(out, "only-one") {
		t.Fatal("short row lost")
	}
}

func TestLineChart(t *testing.T) {
	ch := NewLineChart("Fig 2a", 40, 8)
	up := make([]float64, 100)
	down := make([]float64, 100)
	for i := range up {
		up[i] = float64(i)
		down[i] = float64(100 - i)
	}
	ch.Add("up", up)
	ch.Add("down", down)
	out := ch.String()
	if !strings.Contains(out, "Fig 2a") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "o = up") || !strings.Contains(out, "* = down") {
		t.Fatalf("missing legend: %s", out)
	}
	// The rising series should put an 'o' in the top row region and the
	// bottom row region.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "o") && !strings.Contains(lines[1], "*") {
		t.Fatalf("top row empty:\n%s", out)
	}
}

func TestLineChartEmptyAndFlat(t *testing.T) {
	ch := NewLineChart("empty", 20, 5)
	if !strings.Contains(ch.String(), "no data") {
		t.Fatal("empty chart should say so")
	}
	flat := NewLineChart("flat", 20, 5)
	flat.Add("const", []float64{2, 2, 2, 2})
	out := flat.String()
	if out == "" || !strings.Contains(out, "o = const") {
		t.Fatal("flat series failed to render")
	}
}

func TestLineChartMinimumDims(t *testing.T) {
	ch := NewLineChart("tiny", 1, 1)
	ch.Add("s", []float64{1, 2, 3})
	if ch.String() == "" {
		t.Fatal("tiny chart failed")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesCSV(&buf, []string{"a", "b"}, [][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	want := "slot,a,b\n0,1,3\n1,2,4\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestWriteSeriesCSVErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, []string{"a"}, nil); err == nil {
		t.Fatal("mismatched names accepted")
	}
	if err := WriteSeriesCSV(&buf, nil, nil); err == nil {
		t.Fatal("empty series accepted")
	}
	if err := WriteSeriesCSV(&buf, []string{"a", "b"}, [][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("ragged series accepted")
	}
}
