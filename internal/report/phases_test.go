package report

import (
	"strings"
	"testing"
	"time"

	"lfsc/internal/obs"
)

func TestPhaseTable(t *testing.T) {
	p := obs.NewProbe()
	for i := 0; i < 4; i++ {
		span := p.Start()
		span = p.Lap(obs.PhaseDecide, span)
		p.Lap(obs.PhaseObserve, span)
	}
	out := PhaseTable(p.Stats(), 10*time.Millisecond).String()
	for _, want := range []string{"decide", "observe", "p99", "share", "%", "(all)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("phase table missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "| 4") {
		t.Fatalf("span counts missing:\n%s", out)
	}
}

// TestPhaseTableNoWall: without a wall-clock reference the shares are
// computed against the phase sum itself and total ~100%.
func TestPhaseTableNoWall(t *testing.T) {
	p := obs.NewProbe()
	span := p.Start()
	p.Lap(obs.PhaseGen, span)
	out := PhaseTable(p.Stats(), 0).String()
	if !strings.Contains(out, "100.0%") {
		t.Fatalf("self-normalized share missing:\n%s", out)
	}
}

func TestPhaseTableEmpty(t *testing.T) {
	if out := PhaseTable(nil, time.Second).String(); !strings.Contains(out, "phase") {
		t.Fatalf("empty table should still render headers:\n%s", out)
	}
}
