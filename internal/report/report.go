// Package report renders experiment results for terminals and files: ASCII
// tables with aligned columns, multi-series ASCII line charts (the textual
// stand-ins for the paper's figures), and CSV export so the series can be
// re-plotted with external tooling.
package report

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"

	"lfsc/internal/stats"
)

// Table is a simple column-aligned text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := 0; i < len(t.headers) && i < len(cells); i++ {
		row[i] = cells[i]
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each value is rendered with
// %v for strings/ints and %.4g for floats.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.4g", v))
		case float32:
			row = append(row, fmt.Sprintf("%.4g", v))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	bw := bufio.NewWriter(w)
	if t.title != "" {
		fmt.Fprintf(bw, "%s\n", t.title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(bw, "| %-*s ", widths[i], c)
		}
		fmt.Fprintln(bw, "|")
	}
	sep := func() {
		for _, wd := range widths {
			fmt.Fprintf(bw, "+%s", strings.Repeat("-", wd+2))
		}
		fmt.Fprintln(bw, "+")
	}
	sep()
	line(t.headers)
	sep()
	for _, row := range t.rows {
		line(row)
	}
	sep()
	return bw.Flush()
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Render(&sb)
	return sb.String()
}

// LineChart renders several y-series sharing an implicit x-axis 0..N-1 as
// an ASCII chart — the terminal stand-in for the paper's figures.
type LineChart struct {
	title  string
	width  int
	height int
	names  []string
	series [][]float64
}

// chartGlyphs mark the successive series on the canvas.
const chartGlyphs = "o*x+#@%&"

// NewLineChart creates a chart with the given canvas size (sensible
// minimums are enforced).
func NewLineChart(title string, width, height int) *LineChart {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	return &LineChart{title: title, width: width, height: height}
}

// Add appends a named series.
func (c *LineChart) Add(name string, ys []float64) {
	c.names = append(c.names, name)
	c.series = append(c.series, append([]float64(nil), ys...))
}

// Render writes the chart to w.
func (c *LineChart) Render(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if c.title != "" {
		fmt.Fprintf(bw, "%s\n", c.title)
	}
	if len(c.series) == 0 {
		fmt.Fprintln(bw, "(no data)")
		return bw.Flush()
	}
	// Downsample every series to the canvas width and find global bounds.
	ds := make([][]float64, len(c.series))
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for i, s := range c.series {
		_, v := stats.Downsample(s, c.width)
		ds[i] = v
		for _, y := range v {
			if y < lo {
				lo = y
			}
			if y > hi {
				hi = y
			}
		}
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	if !(hi > lo) {
		hi = lo + 1
	}
	canvas := make([][]byte, c.height)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", c.width))
	}
	for i, v := range ds {
		glyph := chartGlyphs[i%len(chartGlyphs)]
		for x, y := range v {
			r := int((hi - y) / (hi - lo) * float64(c.height-1))
			if r < 0 {
				r = 0
			}
			if r >= c.height {
				r = c.height - 1
			}
			canvas[r][x] = glyph
		}
	}
	for r, row := range canvas {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%.4g", hi)
		case c.height - 1:
			label = fmt.Sprintf("%.4g", lo)
		}
		fmt.Fprintf(bw, "%10s |%s|\n", label, row)
	}
	fmt.Fprintf(bw, "%10s +%s+\n", "", strings.Repeat("-", c.width))
	fmt.Fprintf(bw, "%10s t=0%*s\n", "", c.width-3, fmt.Sprintf("t=%d", maxLen-1))
	for i, name := range c.names {
		fmt.Fprintf(bw, "%10s %c = %s\n", "", chartGlyphs[i%len(chartGlyphs)], name)
	}
	return bw.Flush()
}

// String renders the chart to a string.
func (c *LineChart) String() string {
	var sb strings.Builder
	_ = c.Render(&sb)
	return sb.String()
}

// WriteSeriesCSV writes named y-series as CSV with a slot column. All
// series must share a length.
func WriteSeriesCSV(w io.Writer, names []string, series [][]float64) error {
	if len(names) != len(series) {
		return fmt.Errorf("report: %d names for %d series", len(names), len(series))
	}
	if len(series) == 0 {
		return fmt.Errorf("report: no series")
	}
	n := len(series[0])
	for i, s := range series {
		if len(s) != n {
			return fmt.Errorf("report: series %d has length %d, want %d", i, len(s), n)
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "slot,%s\n", strings.Join(names, ","))
	for t := 0; t < n; t++ {
		fmt.Fprintf(bw, "%d", t)
		for _, s := range series {
			fmt.Fprintf(bw, ",%.8g", s[t])
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
