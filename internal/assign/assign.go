// Package assign implements the task→SCN assignment stage of LFSC.
//
// The centrepiece is the paper's greedy collaborative assignment (Alg. 4,
// "GreedySelect"): a weighted bipartite graph is built between SCNs and the
// slot's tasks, and edges are consumed in decreasing weight order; an edge
// (m,i) is accepted when SCN m still has beam capacity (< c) and task i is
// unassigned, which enforces constraints (1a) and (1b) by construction.
// Lemma 2 proves this is a (c+1)-approximation of the maximum-weight
// assignment; tests compare it against the exact min-cost-flow optimum.
//
// The package also provides DepRound — the dependent-rounding sampler from
// the Exp3.M literature that draws exactly k arms with prescribed marginals
// — used by the single-agent ablation, and the Random baseline assignment
// from the paper's evaluation.
package assign

import (
	"fmt"
	"math"
	"slices"

	"lfsc/internal/rng"
)

// Edge is a weighted SCN-task edge of the bipartite offloading graph;
// it exists when task Task is inside SCN SCN's coverage.
type Edge struct {
	SCN  int
	Task int
	W    float64
}

// GreedyScratch holds the reusable working memory of GreedyInto and
// GreedyMergeInto: the sorted edge copy, the per-SCN beam counters, and the
// k-way merge cursors/heap. A zero value is ready to use; the buffers grow to
// the high-water mark of the calls that share them and are never shrunk. A
// scratch value must not be shared between concurrent calls.
type GreedyScratch struct {
	sorted []Edge
	counts []int
	heads  []int32
	heap   []int32
	cur    []Edge
}

// cmpEdge orders edges by descending weight, breaking ties deterministically
// by (SCN, task) so runs are reproducible.
func cmpEdge(a, b Edge) int {
	switch {
	case a.W > b.W:
		return -1
	case a.W < b.W:
		return 1
	case a.SCN != b.SCN:
		return a.SCN - b.SCN
	default:
		return a.Task - b.Task
	}
}

// Greedy runs the paper's Alg. 4. numTasks bounds task indices; capacity is
// the per-SCN limit c. It returns assigned[task] = SCN index or -1.
//
// Processing edges in descending weight order is exactly equivalent to the
// paper's iterative arg-max with edge removal: when the heaviest remaining
// edge's SCN is full the edge is discarded (Line 8); when its task is taken
// all of the task's edges are discarded (Line 6); otherwise it is accepted.
// Ties break deterministically by (SCN, task) so runs are reproducible.
//
// Greedy allocates its result and working memory per call; steady-state
// callers should hold a GreedyScratch and use GreedyInto instead.
func Greedy(edges []Edge, numSCNs, numTasks, capacity int) []int {
	var s GreedyScratch
	return GreedyInto(nil, &s, edges, numSCNs, numTasks, capacity)
}

// GreedyCaps is Greedy with an optional per-SCN capacity vector caps
// (nil = uniform capacity): SCN m accepts at most caps[m] tasks.
func GreedyCaps(edges []Edge, numSCNs, numTasks, capacity int, caps []int) []int {
	var s GreedyScratch
	return greedyInto(nil, &s, edges, numSCNs, numTasks, capacity, caps)
}

// capAt resolves SCN m's beam limit: caps[m] when a per-SCN capacity
// vector is attached (scenario capacity dynamics), capacity otherwise.
// The nil branch keeps the static path's comparisons untouched, so
// caps == nil is bit-identical to the pre-scenario code.
func capAt(capacity int, caps []int, m int) int {
	if caps != nil {
		return caps[m]
	}
	return capacity
}

// GreedyCapsInto is GreedyInto with an optional per-SCN capacity vector
// caps (nil = uniform capacity): SCN m accepts at most caps[m] tasks.
func GreedyCapsInto(assigned []int, s *GreedyScratch, edges []Edge, numSCNs, numTasks, capacity int, caps []int) []int {
	return greedyInto(assigned, s, edges, numSCNs, numTasks, capacity, caps)
}

// GreedyInto is Greedy with caller-owned memory: the assignment is written
// into assigned (grown as needed — pass the previous slot's slice back in)
// and all working memory comes from s. It allocates nothing once assigned
// and s have reached the steady-state sizes.
func GreedyInto(assigned []int, s *GreedyScratch, edges []Edge, numSCNs, numTasks, capacity int) []int {
	return greedyInto(assigned, s, edges, numSCNs, numTasks, capacity, nil)
}

func greedyInto(assigned []int, s *GreedyScratch, edges []Edge, numSCNs, numTasks, capacity int, caps []int) []int {
	if cap(assigned) < numTasks {
		assigned = make([]int, numTasks)
	}
	assigned = assigned[:numTasks]
	for i := range assigned {
		assigned[i] = -1
	}
	if capacity <= 0 || numSCNs <= 0 {
		return assigned
	}
	s.sorted = append(s.sorted[:0], edges...)
	slices.SortFunc(s.sorted, cmpEdge)
	if cap(s.counts) < numSCNs {
		s.counts = make([]int, numSCNs)
	}
	s.counts = s.counts[:numSCNs]
	clear(s.counts)
	for _, e := range s.sorted {
		if e.SCN < 0 || e.SCN >= numSCNs || e.Task < 0 || e.Task >= numTasks {
			panic(fmt.Sprintf("assign: edge (%d,%d) out of range", e.SCN, e.Task))
		}
		if assigned[e.Task] != -1 || s.counts[e.SCN] >= capAt(capacity, caps, e.SCN) {
			continue
		}
		assigned[e.Task] = e.SCN
		s.counts[e.SCN]++
	}
	return assigned
}

// SortEdges sorts an edge list in the greedy consumption order (descending
// weight, ties by SCN then task). The order is a strict total order over
// distinct (SCN, task) pairs, so the sorted sequence is unique — any correct
// comparison sort produces the same permutation, which lets this use a
// specialized in-place quicksort whose comparator inlines instead of going
// through slices.SortFunc's func-value indirection.
func SortEdges(edges []Edge) {
	sortEdges(edges)
}

// edgeLess is cmpEdge < 0 in a form the compiler inlines into the sort loops.
func edgeLess(a, b Edge) bool {
	if a.W != b.W {
		return a.W > b.W
	}
	if a.SCN != b.SCN {
		return a.SCN < b.SCN
	}
	return a.Task < b.Task
}

// sortEdges is a median-of-three Hoare quicksort with an insertion-sort
// cutoff, recursing on the smaller half so stack depth stays logarithmic.
func sortEdges(e []Edge) {
	for len(e) > 24 {
		mid, hi := len(e)/2, len(e)-1
		if edgeLess(e[mid], e[0]) {
			e[mid], e[0] = e[0], e[mid]
		}
		if edgeLess(e[hi], e[mid]) {
			e[hi], e[mid] = e[mid], e[hi]
			if edgeLess(e[mid], e[0]) {
				e[mid], e[0] = e[0], e[mid]
			}
		}
		pivot := e[mid]
		i, j := -1, len(e)
		for {
			for {
				i++
				if !edgeLess(e[i], pivot) {
					break
				}
			}
			for {
				j--
				if !edgeLess(pivot, e[j]) {
					break
				}
			}
			if i >= j {
				break
			}
			e[i], e[j] = e[j], e[i]
		}
		if j+1 < len(e)-j-1 {
			sortEdges(e[:j+1])
			e = e[j+1:]
		} else {
			sortEdges(e[j+1:])
			e = e[:j+1]
		}
	}
	for i := 1; i < len(e); i++ {
		v := e[i]
		j := i - 1
		for j >= 0 && edgeLess(v, e[j]) {
			e[j+1] = e[j]
			j--
		}
		e[j+1] = v
	}
}

// GreedyMergeInto is GreedyInto for edges delivered as per-source lists that
// are each already in SortEdges order (LFSC sorts each SCN's edges inside the
// parallel per-SCN stage). The lists are consumed through a k-way heap merge,
// which visits edges in exactly the unique globally sorted order — the result
// is bit-identical to concatenating and re-sorting, without the dominant
// O(E log E) comparison-function sort of the hot path. Lists found out of
// order panic rather than silently reordering the greedy.
func GreedyMergeInto(assigned []int, s *GreedyScratch, perSrc [][]Edge, numSCNs, numTasks, capacity int) []int {
	return greedyMergeInto(assigned, s, perSrc, numSCNs, numTasks, capacity, nil)
}

// GreedyMergeCapsInto is GreedyMergeInto with an optional per-SCN
// capacity vector caps (nil = uniform capacity).
func GreedyMergeCapsInto(assigned []int, s *GreedyScratch, perSrc [][]Edge, numSCNs, numTasks, capacity int, caps []int) []int {
	return greedyMergeInto(assigned, s, perSrc, numSCNs, numTasks, capacity, caps)
}

func greedyMergeInto(assigned []int, s *GreedyScratch, perSrc [][]Edge, numSCNs, numTasks, capacity int, caps []int) []int {
	if cap(assigned) < numTasks {
		assigned = make([]int, numTasks)
	}
	assigned = assigned[:numTasks]
	for i := range assigned {
		assigned[i] = -1
	}
	if capacity <= 0 || numSCNs <= 0 {
		return assigned
	}
	if cap(s.counts) < numSCNs {
		s.counts = make([]int, numSCNs)
	}
	s.counts = s.counts[:numSCNs]
	clear(s.counts)
	if cap(s.heads) < len(perSrc) {
		s.heads = make([]int32, len(perSrc))
	}
	if cap(s.cur) < len(perSrc) {
		s.cur = make([]Edge, len(perSrc))
	}
	heads := s.heads[:len(perSrc)]
	cur := s.cur[:len(perSrc)]
	heap := s.heap[:0]
	for li := range perSrc {
		heads[li] = 0
		if len(perSrc[li]) > 0 {
			cur[li] = perSrc[li][0]
			heap = append(heap, int32(li))
		}
	}
	s.heap = heap
	// less orders heap entries by their lists' head edges (cached in cur to
	// spare a double indirection per comparison); heads from distinct lists
	// never tie when each list has a distinct SCN, and equal outcomes would
	// only make the pop order of *equal* edges ambiguous — which cmpEdge
	// precludes for distinct (SCN, task) pairs.
	less := func(a, b int32) bool {
		ea, eb := &cur[a], &cur[b]
		if ea.W != eb.W {
			return ea.W > eb.W
		}
		if ea.SCN != eb.SCN {
			return ea.SCN < eb.SCN
		}
		return ea.Task < eb.Task
	}
	siftDown := func(i int) {
		for {
			c := 2*i + 1
			if c >= len(heap) {
				return
			}
			if c+1 < len(heap) && less(heap[c+1], heap[c]) {
				c++
			}
			if !less(heap[c], heap[i]) {
				return
			}
			heap[i], heap[c] = heap[c], heap[i]
			i = c
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	prev := Edge{W: math.Inf(1), SCN: -1}
	for len(heap) > 0 {
		li := heap[0]
		e := cur[li]
		heads[li]++
		if int(heads[li]) < len(perSrc[li]) {
			cur[li] = perSrc[li][heads[li]]
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		siftDown(0)
		if cmpEdge(prev, e) > 0 {
			panic("assign: GreedyMergeInto input list not in SortEdges order")
		}
		prev = e
		if e.SCN < 0 || e.SCN >= numSCNs || e.Task < 0 || e.Task >= numTasks {
			panic(fmt.Sprintf("assign: edge (%d,%d) out of range", e.SCN, e.Task))
		}
		if assigned[e.Task] != -1 || s.counts[e.SCN] >= capAt(capacity, caps, e.SCN) {
			continue
		}
		assigned[e.Task] = e.SCN
		s.counts[e.SCN]++
	}
	return assigned
}

// PerSCN converts assigned[task]=scn into per-SCN task lists (the paper's
// I_{m,t} sets).
func PerSCN(assigned []int, numSCNs int) [][]int {
	out := make([][]int, numSCNs)
	for task, m := range assigned {
		if m >= 0 {
			out[m] = append(out[m], task)
		}
	}
	return out
}

// TotalWeight sums the weight of the selected edges under an assignment,
// given a weight lookup.
func TotalWeight(assigned []int, weight func(scn, task int) float64) float64 {
	total := 0.0
	for task, m := range assigned {
		if m >= 0 {
			total += weight(m, task)
		}
	}
	return total
}

// Verify checks assignment feasibility: per-SCN counts ≤ capacity and SCN
// indices in range. It returns nil when feasible.
func Verify(assigned []int, numSCNs, capacity int) error {
	counts := make([]int, numSCNs)
	for task, m := range assigned {
		if m == -1 {
			continue
		}
		if m < 0 || m >= numSCNs {
			return fmt.Errorf("assign: task %d assigned to invalid SCN %d", task, m)
		}
		counts[m]++
		if counts[m] > capacity {
			return fmt.Errorf("assign: SCN %d exceeds capacity %d", m, capacity)
		}
	}
	return nil
}

// VerifyCaps is Verify with an optional per-SCN capacity vector caps
// (nil = uniform capacity).
func VerifyCaps(assigned []int, numSCNs, capacity int, caps []int) error {
	counts := make([]int, numSCNs)
	for task, m := range assigned {
		if m == -1 {
			continue
		}
		if m < 0 || m >= numSCNs {
			return fmt.Errorf("assign: task %d assigned to invalid SCN %d", task, m)
		}
		counts[m]++
		if lim := capAt(capacity, caps, m); counts[m] > lim {
			return fmt.Errorf("assign: SCN %d exceeds capacity %d", m, lim)
		}
	}
	return nil
}

// Random implements the paper's Random baseline: each SCN (visited in a
// random order) picks up to capacity unassigned tasks uniformly from its
// coverage set; no task is offloaded twice.
func Random(coverage [][]int, numTasks, capacity int, r *rng.Stream) []int {
	return RandomCaps(coverage, numTasks, capacity, nil, r)
}

// RandomCaps is Random with an optional per-SCN capacity vector caps
// (nil = uniform capacity). A masked SCN (empty coverage row) draws its
// visit-order slot from Perm but samples nothing, so attaching an
// all-up scenario consumes the stream exactly as the static baseline
// does.
func RandomCaps(coverage [][]int, numTasks, capacity int, caps []int, r *rng.Stream) []int {
	assigned := make([]int, numTasks)
	for i := range assigned {
		assigned[i] = -1
	}
	if capacity <= 0 {
		return assigned
	}
	order := r.Perm(len(coverage))
	for _, m := range order {
		avail := make([]int, 0, len(coverage[m]))
		for _, t := range coverage[m] {
			if t < 0 || t >= numTasks {
				panic(fmt.Sprintf("assign: coverage task %d out of range", t))
			}
			if assigned[t] == -1 {
				avail = append(avail, t)
			}
		}
		k := capAt(capacity, caps, m)
		if k > len(avail) {
			k = len(avail)
		}
		for _, pick := range r.Sample(len(avail), k) {
			assigned[avail[pick]] = m
		}
	}
	return assigned
}

// DepRoundScratch holds the reusable working memory of DepRoundInto: the
// mutable probability copy, the fractional-index stack, and the output
// buffer. A zero value is ready to use; buffers grow to the high-water mark
// and are never shrunk. A scratch value must not be shared between
// concurrent calls (LFSC keeps one per SCN).
type DepRoundScratch struct {
	w     []float64
	stack []int
	out   []int
}

// DepRound samples a subset S ⊆ [0,n) with |S| = round(Σp) such that
// P(i ∈ S) = p[i] exactly, via Gandhi et al.'s dependent rounding: while two
// fractional probabilities remain, shift mass between them so that at least
// one becomes integral, choosing the direction with the probability that
// preserves marginals. Inputs must lie in [0,1]; the sum should be within
// rounding distance of an integer (as Exp3.M guarantees with Σp = c).
//
// Returned indices are in increasing order. DepRound allocates per call;
// steady-state callers should hold a DepRoundScratch and use DepRoundInto.
func DepRound(p []float64, r *rng.Stream) []int {
	var s DepRoundScratch
	return DepRoundInto(&s, p, r)
}

// DepRoundInto is DepRound with caller-owned memory. The returned slice
// aliases s.out and is only valid until the next call with the same scratch.
// It consumes the random stream exactly as DepRound does, so swapping one
// for the other never changes what is sampled.
func DepRoundInto(s *DepRoundScratch, p []float64, r *rng.Stream) []int {
	w := s.Weights(len(p))
	copy(w, p)
	return DepRoundPrepared(s, r)
}

// Weights returns the scratch's marginal buffer resized to n, for callers
// that write the probabilities in place (e.g. by gathering per-cell values)
// and then run DepRoundPrepared — sparing the copy DepRoundInto would make.
// The buffer grows to the high-water mark and is never shrunk.
func (s *DepRoundScratch) Weights(n int) []float64 {
	if cap(s.w) < n {
		s.w = make([]float64, n, n+n/2)
	}
	s.w = s.w[:n]
	return s.w
}

// DepRoundPrepared runs dependent rounding over the marginals previously
// written into s.Weights(n). It is the body shared with DepRoundInto — the
// clamp pass, stack order, and random draws are identical, so the two forms
// sample exactly the same subsets from the same stream state.
func DepRoundPrepared(s *DepRoundScratch, r *rng.Stream) []int {
	const tol = 1e-9
	w := s.w
	// Clamp and collect the stack of fractional indices in one pass (a
	// clamped value is integral, so clamping never changes membership).
	// Each pairing below pops two entries and pushes back at most one
	// still-fractional index plus possibly its partner, so the stack never
	// outgrows its initial size and the loop is linear; a fixed-capacity
	// array with a manual pointer keeps the hot loop free of slice-header
	// updates.
	if cap(s.stack) < len(w) {
		s.stack = make([]int, len(w))
	}
	stack := s.stack[:cap(s.stack)]
	sp := 0
	for i, v := range w {
		if v < -tol || v > 1+tol {
			panic(fmt.Sprintf("assign: DepRound probability %v out of [0,1]", v))
		}
		if v < 0 {
			w[i] = 0
		} else if v > 1 {
			w[i] = 1
		} else if v > tol && v < 1-tol {
			stack[sp] = i
			sp++
		}
	}
	for sp >= 2 {
		i := stack[sp-1]
		j := stack[sp-2]
		sp -= 2
		alpha := min2(1-w[i], w[j])
		beta := min2(w[i], 1-w[j])
		// With prob beta/(alpha+beta): w[i]+=alpha, w[j]-=alpha.
		if r.Float64() < beta/(alpha+beta) {
			w[i] += alpha
			w[j] -= alpha
		} else {
			w[i] -= beta
			w[j] += beta
		}
		if wi := w[i]; wi > tol && wi < 1-tol {
			stack[sp] = i
			sp++
		}
		if wj := w[j]; wj > tol && wj < 1-tol {
			stack[sp] = j
			sp++
		}
	}
	// A single leftover fractional entry (sum not exactly integral):
	// round it by its own probability.
	if sp == 1 {
		k := stack[0]
		if r.Float64() < w[k] {
			w[k] = 1
		} else {
			w[k] = 0
		}
	}
	out := s.out[:0]
	for i, v := range w {
		if v >= 1-tol {
			out = append(out, i)
		}
	}
	s.out = out
	return out
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
