package assign

import (
	"testing"

	"lfsc/internal/rng"
)

// benchEdges builds a paper-scale edge set: 30 SCNs that each sampled
// c=20 candidates (the DepRound mode load) over a 2000-task slot.
func benchEdges(numSCNs, perSCN, numTasks int) []Edge {
	r := rng.New(11)
	edges := make([]Edge, 0, numSCNs*perSCN)
	for m := 0; m < numSCNs; m++ {
		for k := 0; k < perSCN; k++ {
			edges = append(edges, Edge{SCN: m, Task: r.Intn(numTasks), W: r.Float64()})
		}
	}
	return edges
}

// BenchmarkGreedyAssign measures the steady-state Alg. 4 greedy — the
// GreedyInto form LFSC uses, with caller-owned scratch — at paper scale
// (one op = one slot's assignment).
func BenchmarkGreedyAssign(b *testing.B) {
	const numSCNs, perSCN, numTasks, capacity = 30, 20, 2000, 20
	edges := benchEdges(numSCNs, perSCN, numTasks)
	var s GreedyScratch
	var assigned []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assigned = GreedyInto(assigned, &s, edges, numSCNs, numTasks, capacity)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/slot")
}

// BenchmarkGreedyAlloc measures the allocating convenience wrapper for
// comparison with BenchmarkGreedyAssign.
func BenchmarkGreedyAlloc(b *testing.B) {
	const numSCNs, perSCN, numTasks, capacity = 30, 20, 2000, 20
	edges := benchEdges(numSCNs, perSCN, numTasks)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Greedy(edges, numSCNs, numTasks, capacity)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/slot")
}

// BenchmarkDepRound measures one SCN's steady-state candidate sampling
// (DepRoundInto with caller-owned scratch): K=100 visible tasks with
// marginals summing to c=20 (one op = one SCN-slot).
func BenchmarkDepRound(b *testing.B) {
	const k, c = 100, 20
	p := make([]float64, k)
	for i := range p {
		p[i] = float64(c) / float64(k)
	}
	r := rng.New(13)
	var s DepRoundScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DepRoundInto(&s, p, r)
	}
}
