package assign

import (
	"math/rand"
	"testing"

	"lfsc/internal/rng"
)

// TestGreedyIntoMatchesGreedy checks that the scratch-buffer form produces
// exactly the assignment of the allocating wrapper, including when the
// scratch is reused across slots of varying size (the LFSC steady state).
func TestGreedyIntoMatchesGreedy(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var s GreedyScratch
	var assigned []int
	for trial := 0; trial < 200; trial++ {
		numSCNs := 1 + r.Intn(8)
		numTasks := 1 + r.Intn(50)
		capacity := 1 + r.Intn(5)
		edges := make([]Edge, r.Intn(60))
		for i := range edges {
			edges[i] = Edge{SCN: r.Intn(numSCNs), Task: r.Intn(numTasks), W: r.Float64()}
		}
		want := Greedy(edges, numSCNs, numTasks, capacity)
		assigned = GreedyInto(assigned, &s, edges, numSCNs, numTasks, capacity)
		if len(assigned) != len(want) {
			t.Fatalf("trial %d: length %d, want %d", trial, len(assigned), len(want))
		}
		for i := range want {
			if assigned[i] != want[i] {
				t.Fatalf("trial %d: task %d assigned to %d, want %d",
					trial, i, assigned[i], want[i])
			}
		}
	}
}

// TestDepRoundIntoMatchesDepRound checks that the scratch-buffer form
// consumes the RNG stream identically to the allocating wrapper and returns
// the same selection, with the scratch reused across varying problem sizes.
func TestDepRoundIntoMatchesDepRound(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var s DepRoundScratch
	for trial := 0; trial < 200; trial++ {
		k := 1 + r.Intn(40)
		c := 1 + r.Intn(k)
		p := make([]float64, k)
		for i := range p {
			p[i] = r.Float64()
		}
		// Scale marginals to sum to the integer c (DepRound's contract).
		sum := 0.0
		for _, v := range p {
			sum += v
		}
		for i := range p {
			p[i] *= float64(c) / sum
			if p[i] > 1 {
				p[i] = 1
			}
		}
		seed := uint64(1000 + trial)
		want := DepRound(append([]float64(nil), p...), rng.New(seed))
		got := DepRoundInto(&s, append([]float64(nil), p...), rng.New(seed))
		if len(got) != len(want) {
			t.Fatalf("trial %d: selected %d tasks, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: selection[%d] = %d, want %d", trial, i, got[i], want[i])
			}
		}
	}
}
