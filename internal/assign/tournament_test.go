package assign

import (
	"math"
	"testing"

	"lfsc/internal/rng"
)

// randomSortedLists builds k per-SCN edge lists with deliberate weight
// ties across lists (quantised weights) so the tournament's tie-breaks
// (SCN, then task) are actually exercised, each list sorted the way
// decideSCN emits them.
func randomSortedLists(r *rng.Stream, k, maxTasks int) [][]Edge {
	lists := make([][]Edge, k)
	for m := 0; m < k; m++ {
		n := int(r.Uint64() % uint64(maxTasks+1))
		for t := 0; t < n; t++ {
			// ~8 distinct weight values force cross-list ties.
			w := math.Floor(r.Float64()*8) / 8
			lists[m] = append(lists[m], Edge{SCN: m, Task: t, W: w})
		}
		SortEdges(lists[m])
	}
	return lists
}

// TestTournamentMergeMatchesKWayOrder pins the tentpole's determinism
// claim at the shard counts the serving plane uses (1/2/4/7 lists): the
// parallel tournament reduction emits exactly the stream the sequential
// k-way heap merge consumes, element for element, at any worker count.
func TestTournamentMergeMatchesKWayOrder(t *testing.T) {
	for _, k := range []int{1, 2, 4, 7} {
		for trial := 0; trial < 50; trial++ {
			r := rng.New(uint64(1000*k + trial))
			lists := randomSortedLists(r, k, 40)

			// Reference: concatenate and sort — the unique cmpEdge order.
			var want []Edge
			for _, l := range lists {
				want = append(want, l...)
			}
			SortEdges(want)

			for _, workers := range []int{1, 2, 4} {
				var s TournamentScratch
				got := TournamentMergeInto(&s, lists, workers)
				if len(got) != len(want) {
					t.Fatalf("k=%d trial=%d workers=%d: %d edges, want %d",
						k, trial, workers, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("k=%d trial=%d workers=%d: edge %d = %+v, want %+v",
							k, trial, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestTournamentMergeGreedyEquivalence drives the merged single stream
// through the same capacitated greedy the k-way path uses and requires
// an identical assignment — the exact consumption contract of
// resolver.mergeGreedy.
func TestTournamentMergeGreedyEquivalence(t *testing.T) {
	const numSCNs, numTasks, capacity = 7, 40, 3
	r := rng.New(99)
	for trial := 0; trial < 30; trial++ {
		lists := randomSortedLists(r, numSCNs, numTasks)
		var sA, sB GreedyScratch
		kway := GreedyMergeInto(nil, &sA, lists, numSCNs, numTasks, capacity)
		var ts TournamentScratch
		merged := TournamentMergeInto(&ts, lists, 4)
		single := GreedyMergeInto(nil, &sB, [][]Edge{merged}, numSCNs, numTasks, capacity)
		for i := range kway {
			if kway[i] != single[i] {
				t.Fatalf("trial %d task %d: k-way assigned %d, tournament %d",
					trial, i, kway[i], single[i])
			}
		}
	}
}

// TestTournamentMergeSteadyStateAllocs pins the scratch-reuse contract:
// after the first call sized the arena, repeat merges allocate nothing.
func TestTournamentMergeSteadyStateAllocs(t *testing.T) {
	r := rng.New(7)
	lists := randomSortedLists(r, 7, 40)
	var s TournamentScratch
	TournamentMergeInto(&s, lists, 1)
	allocs := testing.AllocsPerRun(100, func() {
		TournamentMergeInto(&s, lists, 1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state tournament merge allocates %.1f/op, want 0", allocs)
	}
}
