package assign

import (
	"math"
	"testing"

	"lfsc/internal/mcmf"
	"lfsc/internal/rng"
)

func TestGreedySimple(t *testing.T) {
	edges := []Edge{
		{SCN: 0, Task: 0, W: 0.9},
		{SCN: 0, Task: 1, W: 0.8},
		{SCN: 1, Task: 0, W: 0.85},
		{SCN: 1, Task: 2, W: 0.3},
	}
	// capacity 1: greedy takes (0,0)=0.9 first, then (1,0) blocked (task
	// taken), (0,1) blocked (SCN full), then (1,2)=0.3.
	assigned := Greedy(edges, 2, 3, 1)
	if assigned[0] != 0 || assigned[1] != -1 || assigned[2] != 1 {
		t.Fatalf("assigned = %v", assigned)
	}
}

func TestGreedyRespectsCapacityAndUniqueness(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 100; trial++ {
		numSCNs := 1 + r.Intn(5)
		numTasks := 1 + r.Intn(50)
		capacity := 1 + r.Intn(4)
		var edges []Edge
		for m := 0; m < numSCNs; m++ {
			for i := 0; i < numTasks; i++ {
				if r.Bernoulli(0.5) {
					edges = append(edges, Edge{SCN: m, Task: i, W: r.Float64()})
				}
			}
		}
		assigned := Greedy(edges, numSCNs, numTasks, capacity)
		if err := Verify(assigned, numSCNs, capacity); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestGreedyDeterministicTies(t *testing.T) {
	edges := []Edge{
		{SCN: 1, Task: 0, W: 0.5},
		{SCN: 0, Task: 0, W: 0.5},
	}
	for i := 0; i < 10; i++ {
		assigned := Greedy(edges, 2, 1, 1)
		if assigned[0] != 0 {
			t.Fatal("tie should break to smaller SCN index")
		}
	}
}

func TestGreedyApproximationRatio(t *testing.T) {
	// Lemma 2: greedy ≥ OPT/(c+1). Verify against the exact flow optimum on
	// random instances, and observe it is usually far better.
	r := rng.New(2)
	for trial := 0; trial < 60; trial++ {
		numSCNs := 2 + r.Intn(4)
		numTasks := 5 + r.Intn(30)
		capacity := 1 + r.Intn(4)
		weights := make([][]float64, numSCNs)
		var edges []Edge
		for m := range weights {
			weights[m] = make([]float64, numTasks)
			for i := range weights[m] {
				if r.Bernoulli(0.6) {
					w := r.Uniform(0.01, 1)
					weights[m][i] = w
					edges = append(edges, Edge{SCN: m, Task: i, W: w})
				} else {
					weights[m][i] = math.Inf(-1)
				}
			}
		}
		assigned := Greedy(edges, numSCNs, numTasks, capacity)
		got := TotalWeight(assigned, func(m, i int) float64 { return weights[m][i] })
		_, opt := mcmf.AssignMax(weights, numTasks, capacity)
		if got < opt/float64(capacity+1)-1e-9 {
			t.Fatalf("trial %d: greedy %v below Lemma-2 bound %v (opt %v, c %d)",
				trial, got, opt/float64(capacity+1), opt, capacity)
		}
		if got > opt+1e-9 {
			t.Fatalf("trial %d: greedy %v exceeds optimum %v", trial, got, opt)
		}
	}
}

func TestGreedyEmptyAndDegenerate(t *testing.T) {
	assigned := Greedy(nil, 3, 5, 2)
	for _, m := range assigned {
		if m != -1 {
			t.Fatal("no edges should assign nothing")
		}
	}
	assigned = Greedy([]Edge{{SCN: 0, Task: 0, W: 1}}, 1, 1, 0)
	if assigned[0] != -1 {
		t.Fatal("zero capacity should assign nothing")
	}
}

func TestGreedyPanicsOnBadEdge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	Greedy([]Edge{{SCN: 5, Task: 0, W: 1}}, 2, 1, 1)
}

func TestPerSCN(t *testing.T) {
	assigned := []int{1, -1, 0, 1}
	sets := PerSCN(assigned, 2)
	if len(sets[0]) != 1 || sets[0][0] != 2 {
		t.Fatalf("sets[0] = %v", sets[0])
	}
	if len(sets[1]) != 2 || sets[1][0] != 0 || sets[1][1] != 3 {
		t.Fatalf("sets[1] = %v", sets[1])
	}
}

func TestVerify(t *testing.T) {
	if err := Verify([]int{0, 1, -1}, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := Verify([]int{0, 0}, 2, 1); err == nil {
		t.Fatal("over-capacity accepted")
	}
	if err := Verify([]int{7}, 2, 1); err == nil {
		t.Fatal("invalid SCN accepted")
	}
}

func TestRandomAssignment(t *testing.T) {
	r := rng.New(3)
	coverage := [][]int{{0, 1, 2, 3}, {2, 3, 4, 5}}
	for trial := 0; trial < 50; trial++ {
		assigned := Random(coverage, 6, 2, r)
		if err := Verify(assigned, 2, 2); err != nil {
			t.Fatal(err)
		}
		// Tasks outside a SCN's coverage must not be assigned to it.
		for task, m := range assigned {
			if m == -1 {
				continue
			}
			found := false
			for _, c := range coverage[m] {
				if c == task {
					found = true
				}
			}
			if !found {
				t.Fatalf("task %d assigned to non-covering SCN %d", task, m)
			}
		}
	}
}

func TestRandomUsesCapacity(t *testing.T) {
	r := rng.New(4)
	coverage := [][]int{{0, 1, 2, 3, 4}}
	assigned := Random(coverage, 5, 3, r)
	count := 0
	for _, m := range assigned {
		if m == 0 {
			count++
		}
	}
	if count != 3 {
		t.Fatalf("random picked %d tasks, capacity 3 with 5 available", count)
	}
}

func TestRandomZeroCapacity(t *testing.T) {
	assigned := Random([][]int{{0}}, 1, 0, rng.New(5))
	if assigned[0] != -1 {
		t.Fatal("zero capacity assigned a task")
	}
}

func TestDepRoundCardinality(t *testing.T) {
	r := rng.New(6)
	// Σp = 3 exactly.
	p := []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	for trial := 0; trial < 200; trial++ {
		s := DepRound(p, r)
		if len(s) != 3 {
			t.Fatalf("|S| = %d, want 3", len(s))
		}
		for k := 1; k < len(s); k++ {
			if s[k] <= s[k-1] {
				t.Fatal("indices not increasing")
			}
		}
	}
}

func TestDepRoundMarginals(t *testing.T) {
	r := rng.New(7)
	p := []float64{0.9, 0.6, 0.3, 0.2} // Σ = 2
	counts := make([]int, len(p))
	const n = 60000
	for trial := 0; trial < n; trial++ {
		for _, i := range DepRound(p, r) {
			counts[i]++
		}
	}
	for i := range p {
		got := float64(counts[i]) / n
		if math.Abs(got-p[i]) > 0.01 {
			t.Fatalf("marginal %d = %v, want %v", i, got, p[i])
		}
	}
}

func TestDepRoundIntegralInputs(t *testing.T) {
	r := rng.New(8)
	s := DepRound([]float64{1, 0, 1, 0}, r)
	if len(s) != 2 || s[0] != 0 || s[1] != 2 {
		t.Fatalf("integral input selection %v", s)
	}
}

func TestDepRoundNonIntegralSum(t *testing.T) {
	r := rng.New(9)
	// Σp = 0.5: cardinality must be 0 or 1, marginal 0.5 overall.
	ones := 0
	const n = 20000
	for trial := 0; trial < n; trial++ {
		s := DepRound([]float64{0.25, 0.25}, r)
		if len(s) > 1 {
			t.Fatalf("cardinality %d for Σp=0.5", len(s))
		}
		ones += len(s)
	}
	if got := float64(ones) / n; math.Abs(got-0.5) > 0.02 {
		t.Fatalf("selection mass %v, want 0.5", got)
	}
}

func TestDepRoundPanicsOnBadProbability(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p>1 did not panic")
		}
	}()
	DepRound([]float64{1.5}, rng.New(10))
}
