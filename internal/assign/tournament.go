package assign

import "lfsc/internal/parallel"

// This file is the parallel counterpart of the k-way heap merge in
// greedyMergeInto: a tournament reduction that merges pairs of sorted
// edge lists level by level until one stream remains. Because cmpEdge
// is a strict total order over distinct (SCN, task) pairs — weight
// descending, then SCN, then task — a set of per-SCN lists contains no
// equal elements, so *every* correct merge produces the same unique
// permutation. Merging pairs in parallel is therefore bit-identical to
// the sequential heap merge, which is what lets the sharded serving
// plane parallelise its cross-shard resolution stage without touching
// the assignment semantics (DESIGN.md §11).

// MergeSortedInto merges two edge lists already in SortEdges order into
// dst (appended; pass dst[:0] to reuse a buffer) and returns the merged
// list. The inputs must not alias dst's backing array.
func MergeSortedInto(dst, a, b []Edge) []Edge {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if edgeLess(b[j], a[i]) {
			dst = append(dst, b[j])
			j++
		} else {
			dst = append(dst, a[i])
			i++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// TournamentScratch owns the level buffers of TournamentMergeInto so
// steady-state calls allocate nothing. Each merge output within a call
// gets a fresh buffer (never reused across levels of the same call —
// a carried-over odd list may survive several levels as an input), and
// the whole arena is recycled between calls.
type TournamentScratch struct {
	cur  [][]Edge
	next [][]Edge
	bufs [][]Edge
	used int
	// Per-level fan-out state read by mergePair: the output base index
	// of the level in bufs. The worker body is cached in fn so the
	// ForDynamic call sites don't allocate a fresh closure per level.
	base int
	fn   func(int)
}

// mergePair merges the level's i-th pair of lists into its output
// buffer. Distinct pairs touch distinct buffers, so any number may run
// concurrently.
func (s *TournamentScratch) mergePair(i int) {
	s.bufs[s.base+i] = MergeSortedInto(s.bufs[s.base+i][:0], s.cur[2*i], s.cur[2*i+1])
}

// TournamentMergeInto reduces the given sorted edge lists (nil/empty
// entries are skipped) to a single sorted stream: adjacent pairs are
// merged concurrently on up to workers goroutines (parallel.ForDynamic
// — workers ≤ 1 runs serially inline), an odd list is carried to the
// next level unchanged, and the reduction repeats until one list
// remains. The returned slice aliases scratch storage valid until the
// next call (or, when only one input list is non-empty, that list
// itself). The output order is exactly the cmpEdge total order — the
// same stream the sequential k-way heap merge emits.
func TournamentMergeInto(s *TournamentScratch, lists [][]Edge, workers int) []Edge {
	s.cur = s.cur[:0]
	for _, l := range lists {
		if len(l) > 0 {
			s.cur = append(s.cur, l)
		}
	}
	s.used = 0
	if len(s.cur) == 0 {
		return nil
	}
	if s.fn == nil {
		s.fn = s.mergePair
	}
	for len(s.cur) > 1 {
		pairs := len(s.cur) / 2
		s.base = s.used
		s.used += pairs
		for len(s.bufs) < s.used {
			s.bufs = append(s.bufs, nil)
		}
		parallel.ForDynamic(pairs, workers, s.fn)
		// Collect the next level through s.next, then copy the headers
		// back into s.cur — no backing-array swap, so both scratch slices
		// reach a stable capacity and steady-state calls stay alloc-free.
		s.next = s.next[:0]
		s.next = append(s.next, s.bufs[s.base:s.base+pairs]...)
		if len(s.cur)%2 == 1 {
			s.next = append(s.next, s.cur[len(s.cur)-1])
		}
		s.cur = append(s.cur[:0], s.next...)
	}
	return s.cur[0]
}
