package trace

import (
	"bytes"
	"strings"
	"testing"

	"lfsc/internal/geo"
	"lfsc/internal/rng"
	"lfsc/internal/task"
)

func TestSyntheticConfigValidate(t *testing.T) {
	if err := DefaultSyntheticConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []func(*SyntheticConfig){
		func(c *SyntheticConfig) { c.SCNs = 0 },
		func(c *SyntheticConfig) { c.MinTasks = 0 },
		func(c *SyntheticConfig) { c.MaxTasks = c.MinTasks - 1 },
		func(c *SyntheticConfig) { c.Overlap = 1.5 },
		func(c *SyntheticConfig) { c.LatencySensitiveFrac = -0.1 },
	}
	for i, mutate := range bad {
		c := DefaultSyntheticConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestSyntheticCountsInRange(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	g, err := NewSynthetic(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 20; slot++ {
		s := g.Next(slot)
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(s.Coverage) != cfg.SCNs {
			t.Fatalf("coverage arity %d", len(s.Coverage))
		}
		for m, cov := range s.Coverage {
			if len(cov) < cfg.MinTasks {
				t.Fatalf("slot %d SCN %d has %d tasks < min %d", slot, m, len(cov), cfg.MinTasks)
			}
			if len(cov) > g.MaxPerSCN() {
				t.Fatalf("slot %d SCN %d has %d tasks > bound %d", slot, m, len(cov), g.MaxPerSCN())
			}
		}
	}
}

func TestSyntheticOverlapCreatesSharing(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.Overlap = 0.5
	g, _ := NewSynthetic(cfg, rng.New(2))
	s := g.Next(0)
	deg := make(map[int]int)
	for _, cov := range s.Coverage {
		for _, i := range cov {
			deg[i]++
		}
	}
	shared := 0
	for _, d := range deg {
		if d > 1 {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("overlap=0.5 produced no shared tasks")
	}
	// Zero overlap must produce none.
	cfg.Overlap = 0
	g2, _ := NewSynthetic(cfg, rng.New(3))
	s2 := g2.Next(0)
	deg2 := make(map[int]int)
	for _, cov := range s2.Coverage {
		for _, i := range cov {
			deg2[i]++
		}
	}
	for i, d := range deg2 {
		if d > 1 {
			t.Fatalf("overlap=0 shared task %d across %d SCNs", i, d)
		}
	}
}

func TestSyntheticTaskAttributes(t *testing.T) {
	g, _ := NewSynthetic(DefaultSyntheticConfig(), rng.New(4))
	s := g.Next(0)
	ids := map[int64]bool{}
	for _, tk := range s.Tasks {
		if err := tk.Validate(); err != nil {
			t.Fatal(err)
		}
		if tk.InputMbit < task.MinInputMbit || tk.InputMbit > task.MaxInputMbit {
			t.Fatalf("input size %v outside paper range", tk.InputMbit)
		}
		if tk.OutputMbit < task.MinOutputMbit || tk.OutputMbit > task.MaxOutputMbit {
			t.Fatalf("output size %v outside paper range", tk.OutputMbit)
		}
		if ids[tk.ID] {
			t.Fatalf("duplicate task id %d", tk.ID)
		}
		ids[tk.ID] = true
	}
}

func TestSyntheticHeavyTail(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.Heavy = true
	g, _ := NewSynthetic(cfg, rng.New(5))
	s := g.Next(0)
	for _, tk := range s.Tasks {
		if tk.InputMbit < task.MinInputMbit || tk.InputMbit > task.MaxInputMbit {
			t.Fatalf("heavy input %v outside clamp range", tk.InputMbit)
		}
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	a, _ := NewSynthetic(DefaultSyntheticConfig(), rng.New(6))
	b, _ := NewSynthetic(DefaultSyntheticConfig(), rng.New(6))
	sa, sb := a.Next(0), b.Next(0)
	if len(sa.Tasks) != len(sb.Tasks) {
		t.Fatal("same-seed generators differ in task count")
	}
	for i := range sa.Tasks {
		if sa.Tasks[i].InputMbit != sb.Tasks[i].InputMbit {
			t.Fatal("same-seed generators differ in task attributes")
		}
	}
}

func TestGeoGenerator(t *testing.T) {
	area := geo.Area{W: 600, H: 600}
	cfg := GeoConfig{
		Area:         area,
		SCNPositions: geo.PlaceGrid(area, 9),
		RadiusM:      180,
		WDs:          300,
		TaskProb:     0.5,
		MinSpeed:     1,
		MaxSpeed:     10,
		MaxPause:     3,
	}
	g, err := NewGeo(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if g.SCNs() != 9 || g.MaxPerSCN() != 300 {
		t.Fatalf("SCNs=%d MaxPerSCN=%d", g.SCNs(), g.MaxPerSCN())
	}
	totalCovered := 0
	for slot := 0; slot < 10; slot++ {
		s := g.Next(slot)
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(g.LastPositions) != len(s.Tasks) || len(g.LastWDs) != len(s.Tasks) {
			t.Fatal("LastPositions/LastWDs out of sync with tasks")
		}
		for _, cov := range s.Coverage {
			totalCovered += len(cov)
		}
	}
	if totalCovered == 0 {
		t.Fatal("geo generator produced no covered tasks in 10 slots")
	}
}

func TestGeoConfigValidate(t *testing.T) {
	area := geo.Area{W: 100, H: 100}
	good := GeoConfig{Area: area, SCNPositions: geo.PlaceGrid(area, 4),
		RadiusM: 50, WDs: 10, TaskProb: 0.5, MaxSpeed: 5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*GeoConfig){
		func(c *GeoConfig) { c.Area = geo.Area{} },
		func(c *GeoConfig) { c.SCNPositions = nil },
		func(c *GeoConfig) { c.RadiusM = 0 },
		func(c *GeoConfig) { c.WDs = 0 },
		func(c *GeoConfig) { c.TaskProb = 2 },
		func(c *GeoConfig) { c.MinSpeed = 5; c.MaxSpeed = 1 },
	}
	for i, mutate := range bad {
		c := good
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("bad geo config %d accepted", i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	g, _ := NewSynthetic(SyntheticConfig{SCNs: 4, MinTasks: 3, MaxTasks: 6, Overlap: 0.4}, rng.New(8))
	var slots []*Slot
	for i := 0; i < 5; i++ {
		slots = append(slots, g.Next(i))
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, slots); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(slots) {
		t.Fatalf("round trip slots %d != %d", len(back), len(slots))
	}
	for i := range slots {
		if len(back[i].Tasks) != len(slots[i].Tasks) {
			t.Fatalf("slot %d task count %d != %d", i, len(back[i].Tasks), len(slots[i].Tasks))
		}
		for j, tk := range slots[i].Tasks {
			b := back[i].Tasks[j]
			if b.ID != tk.ID || b.WD != tk.WD || b.Resource != tk.Resource ||
				b.LatencySensitive != tk.LatencySensitive {
				t.Fatalf("slot %d task %d mismatch: %v vs %v", i, j, b, tk)
			}
		}
		for m := range slots[i].Coverage {
			if len(back[i].Coverage[m]) != len(slots[i].Coverage[m]) {
				t.Fatalf("slot %d SCN %d coverage mismatch", i, m)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",             // empty
		"wrong,header", // bad header
		csvHeader + "\n0,1,2,three,2,true,cpu,1,0",  // bad float
		csvHeader + "\n0,1,2,10,2,true,quantum,1,0", // bad resource
		csvHeader + "\n0,1,2,10,2,true,cpu,1,9",     // SCN out of range
		csvHeader + "\n-1,1,2,10,2,true,cpu,1,0",    // bad slot
		csvHeader + "\n0,1,2,10,2,maybe,cpu,1,0",    // bad bool
		csvHeader + "\n0,1,2,10,2,true,cpu,1",       // too few fields
		csvHeader + "\n0,x,2,10,2,true,cpu,1,0",     // bad id
		csvHeader + "\n0,1,y,10,2,true,cpu,1,0",     // bad wd
		csvHeader + "\n0,1,2,10,zz,true,cpu,1,0",    // bad output
		csvHeader + "\n0,1,2,-10,2,true,cpu,1,0",    // negative size fails Validate
		csvHeader + "\n0,1,2,10,2,true,cpu,0,0",     // bad duration
		csvHeader + "\n0,1,2,10,2,true,cpu,x,0",     // non-numeric duration
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), 4); err == nil {
			t.Fatalf("case %d accepted: %q", i, c)
		}
	}
	if _, err := ReadCSV(strings.NewReader(csvHeader), 0); err == nil {
		t.Fatal("numSCNs=0 accepted")
	}
}

func TestReadCSVSkipsBlankLinesAndUncoveredTasks(t *testing.T) {
	in := csvHeader + "\n\n0,1,2,10,2,true,cpu,1,\n"
	slots, err := ReadCSV(strings.NewReader(in), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 1 || len(slots[0].Tasks) != 1 {
		t.Fatalf("parsed %d slots", len(slots))
	}
	if len(slots[0].Coverage[0])+len(slots[0].Coverage[1]) != 0 {
		t.Fatal("uncovered task should have empty coverage")
	}
}

func TestReplay(t *testing.T) {
	g, _ := NewSynthetic(SyntheticConfig{SCNs: 3, MinTasks: 2, MaxTasks: 4}, rng.New(9))
	slots := []*Slot{g.Next(0), g.Next(1)}
	r, err := NewReplay(slots, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.SCNs() != 3 || r.Len() != 2 {
		t.Fatal("replay metadata wrong")
	}
	if r.Next(0) != slots[0] || r.Next(1) != slots[1] || r.Next(2) != slots[0] {
		t.Fatal("replay cycling wrong")
	}
	if r.MaxPerSCN() <= 0 {
		t.Fatal("replay MaxPerSCN")
	}
	if _, err := NewReplay(nil, 3); err == nil {
		t.Fatal("empty replay accepted")
	}
	if _, err := NewReplay(slots, 5); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestSlotValidate(t *testing.T) {
	s := &Slot{Tasks: []*task.Task{{ID: 1}}, Coverage: [][]int{{0, 0}}}
	if err := s.Validate(); err == nil {
		t.Fatal("duplicate coverage accepted")
	}
	s = &Slot{Tasks: []*task.Task{{ID: 1}}, Coverage: [][]int{{5}}}
	if err := s.Validate(); err == nil {
		t.Fatal("out-of-range coverage accepted")
	}
	if (&Slot{}).NumTasks() != 0 {
		t.Fatal("empty slot task count")
	}
}

func BenchmarkSyntheticNext(b *testing.B) {
	g, _ := NewSynthetic(DefaultSyntheticConfig(), rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Next(i)
	}
}

func TestMultiSlotGeneration(t *testing.T) {
	cfg := SyntheticConfig{SCNs: 3, MinTasks: 30, MaxTasks: 40,
		MultiSlotFrac: 0.5, MaxDuration: 4}
	g, err := NewSynthetic(cfg, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	multi, single := 0, 0
	for slot := 0; slot < 10; slot++ {
		for _, tk := range g.Next(slot).Tasks {
			d := tk.Duration()
			switch {
			case d == 1:
				single++
			case d >= 2 && d <= 4:
				multi++
			default:
				t.Fatalf("duration %d outside [1,4]", d)
			}
		}
	}
	total := multi + single
	frac := float64(multi) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("multi-slot fraction %.2f, want ~0.5", frac)
	}
	// Invalid fractions rejected.
	bad := cfg
	bad.MultiSlotFrac = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	bad = cfg
	bad.MaxDuration = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative duration accepted")
	}
}

func TestCSVDurationRoundTrip(t *testing.T) {
	slots := []*Slot{{
		Tasks: []*task.Task{
			{ID: 1, InputMbit: 10, OutputMbit: 2, DurationSlots: 3},
			{ID: 2, InputMbit: 12, OutputMbit: 3},
		},
		Coverage: [][]int{{0, 1}},
	}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, slots); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].Tasks[0].Duration() != 3 || back[0].Tasks[1].Duration() != 1 {
		t.Fatalf("durations lost: %d, %d",
			back[0].Tasks[0].Duration(), back[0].Tasks[1].Duration())
	}
}
