// Package trace produces the per-slot workload of the simulation: the tasks
// arriving in each time slot and the coverage relation D_{m,t} (which SCNs
// can hear which tasks).
//
// The paper evaluates on "real world data" whose generative description it
// gives explicitly (Sec. 5): 30 SCNs; per-SCN task counts uniform in
// [35,100]; input sizes uniform in [5,20] Mbit; output sizes uniform in
// [1,4] Mbit; resource kind in {CPU, GPU, both}. We cannot obtain the
// original trace, so this package implements that generative model directly
// (Synthetic), a heavy-tailed variant for robustness studies (the paper's
// uniform sizes are optimistic; real cluster traces are lognormal), a
// geometry-driven generator where coverage emerges from WD mobility (Geo),
// and CSV import/export so users can replay genuinely real traces. See
// DESIGN.md §4 for the substitution rationale.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"lfsc/internal/geo"
	"lfsc/internal/rng"
	"lfsc/internal/task"
)

// Slot is one time slot of workload.
type Slot struct {
	// Tasks are the offloading requests present in this slot.
	Tasks []*task.Task
	// Coverage[m] lists indices into Tasks visible to SCN m (D_{m,t}).
	Coverage [][]int
}

// NumTasks returns the number of distinct tasks in the slot.
func (s *Slot) NumTasks() int { return len(s.Tasks) }

// Validate checks structural invariants: indices in range, no duplicate
// task within one SCN's list.
func (s *Slot) Validate() error {
	for m, cov := range s.Coverage {
		seen := make(map[int]bool, len(cov))
		for _, i := range cov {
			if i < 0 || i >= len(s.Tasks) {
				return fmt.Errorf("trace: SCN %d covers out-of-range task %d", m, i)
			}
			if seen[i] {
				return fmt.Errorf("trace: SCN %d covers task %d twice", m, i)
			}
			seen[i] = true
		}
	}
	return nil
}

// Generator yields the workload slot by slot. Implementations must be
// deterministic given their construction-time RNG stream.
type Generator interface {
	// Next returns the workload of slot t (0-based). Callers invoke it with
	// strictly increasing t.
	Next(t int) *Slot
	// SCNs returns the number of SCNs the generator covers.
	SCNs() int
	// MaxPerSCN returns an upper bound on |D_{m,t}| (the paper's K_m),
	// which the learner needs for its parameter schedule.
	MaxPerSCN() int
}

// SyntheticConfig parameterises the paper's generative workload model.
type SyntheticConfig struct {
	// SCNs is the number of small cells M (paper: 30).
	SCNs int
	// MinTasks/MaxTasks bound the per-SCN task count (paper: 35–100).
	MinTasks, MaxTasks int
	// Overlap is the probability that a task is shared with the next SCN's
	// coverage ("a WD may be covered by multiple small cells").
	Overlap float64
	// Heavy switches input/output sizes to lognormal (cluster-trace-like)
	// instead of the paper's uniform distributions.
	Heavy bool
	// LatencySensitiveFrac is the fraction of latency-sensitive tasks.
	LatencySensitiveFrac float64
	// MultiSlotFrac is the fraction of tasks requiring multiple slots
	// (the future-work extension; 0 reproduces the paper's base model).
	MultiSlotFrac float64
	// MaxDuration bounds multi-slot task lengths (default 3 when zero).
	MaxDuration int
}

// DefaultSyntheticConfig is the paper's evaluation setting.
func DefaultSyntheticConfig() SyntheticConfig {
	return SyntheticConfig{
		SCNs:                 30,
		MinTasks:             35,
		MaxTasks:             100,
		Overlap:              0.3,
		LatencySensitiveFrac: 0.5,
	}
}

// Validate checks the configuration.
func (c SyntheticConfig) Validate() error {
	switch {
	case c.SCNs <= 0:
		return fmt.Errorf("trace: SCNs must be positive, got %d", c.SCNs)
	case c.MinTasks <= 0 || c.MaxTasks < c.MinTasks:
		return fmt.Errorf("trace: invalid task count range [%d,%d]", c.MinTasks, c.MaxTasks)
	case c.Overlap < 0 || c.Overlap > 1:
		return fmt.Errorf("trace: overlap %v outside [0,1]", c.Overlap)
	case c.LatencySensitiveFrac < 0 || c.LatencySensitiveFrac > 1:
		return fmt.Errorf("trace: latency fraction %v outside [0,1]", c.LatencySensitiveFrac)
	case c.MultiSlotFrac < 0 || c.MultiSlotFrac > 1:
		return fmt.Errorf("trace: multi-slot fraction %v outside [0,1]", c.MultiSlotFrac)
	case c.MaxDuration < 0:
		return fmt.Errorf("trace: negative max duration %d", c.MaxDuration)
	}
	return nil
}

// Synthetic implements Generator with the paper's workload model.
type Synthetic struct {
	cfg    SyntheticConfig
	r      *rng.Stream
	nextID int64
	arena  *slotArena
}

// NewSynthetic constructs the generator; draws come from stream r. The
// pooled-slot arena (see NextInto) is sized once here from the worst-case
// slot SCNs×MaxTasks.
func NewSynthetic(cfg SyntheticConfig, r *rng.Stream) (*Synthetic, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Synthetic{cfg: cfg, r: r, arena: newSlotArena(cfg.SCNs*cfg.MaxTasks, cfg.SCNs)}, nil
}

// SCNs implements Generator.
func (g *Synthetic) SCNs() int { return g.cfg.SCNs }

// MaxPerSCN implements Generator. With overlap, a cell can in the worst
// case receive every task of its ring predecessor on top of its own batch.
func (g *Synthetic) MaxPerSCN() int {
	if g.cfg.Overlap == 0 || g.cfg.SCNs == 1 {
		return g.cfg.MaxTasks
	}
	return 2 * g.cfg.MaxTasks
}

// Next implements Generator.
//
// Construction: each SCN m draws its own batch of fresh tasks with count in
// [MinTasks, MaxTasks]; then, with probability Overlap per task, the task is
// additionally made visible to the neighbouring SCN (m+1 mod M) — a ring of
// adjacent, overlapping cells. Counts stay within [MinTasks, MaxTasks(1+ov)].
func (g *Synthetic) Next(t int) *Slot {
	s := &Slot{Coverage: make([][]int, g.cfg.SCNs)}
	g.genInto(s, false)
	return s
}

// NextInto implements IntoGenerator: identical draws and slot content as
// Next, but every task and coverage row lives in the generator's arena. The
// slot is valid until the next NextInto call.
func (g *Synthetic) NextInto(t int, s *Slot) {
	g.arena.begin(s)
	g.genInto(s, true)
}

// genInto is the single generation path behind Next and NextInto; pooled
// selects arena-backed versus freshly allocated tasks. The RNG consumption
// is identical either way, which is what keeps pooled and allocating runs
// bit-identical.
func (g *Synthetic) genInto(s *Slot, pooled bool) {
	for m := 0; m < g.cfg.SCNs; m++ {
		n := g.r.IntRange(g.cfg.MinTasks, g.cfg.MaxTasks)
		for k := 0; k < n; k++ {
			idx := len(s.Tasks)
			tk := g.allocTask(pooled)
			g.fillTask(tk)
			s.Tasks = append(s.Tasks, tk)
			s.Coverage[m] = append(s.Coverage[m], idx)
			if g.cfg.SCNs > 1 && g.r.Bernoulli(g.cfg.Overlap) {
				peer := (m + 1) % g.cfg.SCNs
				s.Coverage[peer] = append(s.Coverage[peer], idx)
			}
		}
	}
}

func (g *Synthetic) allocTask(pooled bool) *task.Task {
	if pooled {
		return g.arena.nextTask()
	}
	return &task.Task{}
}

// fillTask populates a zeroed task, drawing its attributes in the model's
// canonical order (latency class, resource kind, duration, sizes).
func (g *Synthetic) fillTask(tk *task.Task) {
	g.nextID++
	tk.ID = g.nextID
	tk.WD = int(g.nextID) // synthetic mode: one WD per task
	tk.LatencySensitive = g.r.Bernoulli(g.cfg.LatencySensitiveFrac)
	tk.Resource = task.ResourceKind(g.r.Intn(task.NumResourceKinds))
	if g.cfg.MultiSlotFrac > 0 && g.r.Bernoulli(g.cfg.MultiSlotFrac) {
		maxD := g.cfg.MaxDuration
		if maxD < 2 {
			maxD = 3
		}
		tk.DurationSlots = g.r.IntRange(2, maxD)
	}
	if g.cfg.Heavy {
		tk.InputMbit = clampf(g.r.Lognormal(2.3, 0.5), task.MinInputMbit, task.MaxInputMbit)
		tk.OutputMbit = clampf(g.r.Lognormal(0.7, 0.5), task.MinOutputMbit, task.MaxOutputMbit)
	} else {
		tk.InputMbit = g.r.Uniform(task.MinInputMbit, task.MaxInputMbit)
		tk.OutputMbit = g.r.Uniform(task.MinOutputMbit, task.MaxOutputMbit)
	}
}

// syntheticState is the Snapshot payload of Synthetic.
type syntheticState struct {
	r      rng.Stream
	nextID int64
}

// SnapshotState implements Snapshottable.
func (g *Synthetic) SnapshotState() GenState {
	return syntheticState{r: *g.r, nextID: g.nextID}
}

// RestoreState implements Snapshottable.
func (g *Synthetic) RestoreState(st GenState) {
	s := st.(syntheticState)
	*g.r = s.r
	g.nextID = s.nextID
}

func clampf(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// GeoConfig parameterises the geometry-driven generator.
type GeoConfig struct {
	// Area is the service area.
	Area geo.Area
	// SCNPositions places the cells; use geo.PlaceGrid or PlacePoisson.
	SCNPositions []geo.Point
	// RadiusM is the coverage radius.
	RadiusM float64
	// WDs is the number of mobile devices.
	WDs int
	// TaskProb is the per-slot probability a WD submits a task.
	TaskProb float64
	// MinSpeed/MaxSpeed are waypoint speeds in meters per slot.
	MinSpeed, MaxSpeed float64
	// MaxPause is the maximum waypoint pause in slots.
	MaxPause int
	// LatencySensitiveFrac is the fraction of latency-sensitive tasks.
	LatencySensitiveFrac float64
}

// Validate checks the configuration.
func (c GeoConfig) Validate() error {
	switch {
	case c.Area.W <= 0 || c.Area.H <= 0:
		return fmt.Errorf("trace: invalid area %+v", c.Area)
	case len(c.SCNPositions) == 0:
		return fmt.Errorf("trace: no SCN positions")
	case c.RadiusM <= 0:
		return fmt.Errorf("trace: radius must be positive")
	case c.WDs <= 0:
		return fmt.Errorf("trace: WDs must be positive")
	case c.TaskProb < 0 || c.TaskProb > 1:
		return fmt.Errorf("trace: task probability %v outside [0,1]", c.TaskProb)
	case c.MinSpeed < 0 || c.MaxSpeed < c.MinSpeed:
		return fmt.Errorf("trace: invalid speed range [%v,%v]", c.MinSpeed, c.MaxSpeed)
	}
	return geo.Validate(c.Area, c.SCNPositions)
}

// Geo implements Generator with positions, mobility and circular coverage.
// Task→SCN visibility is geometric; a device in an overlap region is seen by
// several SCNs, exactly the paper's collaborative-offloading situation.
type Geo struct {
	cfg    GeoConfig
	r      *rng.Stream
	wds    []*geo.Waypoint
	nextID int64
	// LastPositions exposes WD positions of the most recent slot so callers
	// (e.g. a radio-model likelihood hook) can compute distances. After a
	// NextInto call they alias the generator's arena and are overwritten by
	// the following slot; after Next they are freshly allocated.
	LastPositions []geo.Point
	// LastWDs maps slot-task index to WD index (same aliasing rules).
	LastWDs []int
	// pooled-slot arena (see NextInto): tasks plus the per-slot position and
	// WD-index buffers, sized by the worst case of every WD submitting.
	arena  *slotArena
	posBuf []geo.Point
	wdBuf  []int
}

// NewGeo constructs the generator.
func NewGeo(cfg GeoConfig, r *rng.Stream) (*Geo, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Geo{
		cfg:    cfg,
		r:      r,
		arena:  newSlotArena(cfg.WDs, len(cfg.SCNPositions)),
		posBuf: make([]geo.Point, 0, cfg.WDs),
		wdBuf:  make([]int, 0, cfg.WDs),
	}
	mob := r.Derive(100)
	for i := 0; i < cfg.WDs; i++ {
		g.wds = append(g.wds, geo.NewWaypoint(cfg.Area, cfg.MinSpeed, cfg.MaxSpeed, cfg.MaxPause, mob.Derive(uint64(i))))
	}
	return g, nil
}

// SCNs implements Generator.
func (g *Geo) SCNs() int { return len(g.cfg.SCNPositions) }

// MaxPerSCN implements Generator: in the worst case every WD stands inside
// one cell and submits.
func (g *Geo) MaxPerSCN() int { return g.cfg.WDs }

// SCNPositions returns the cell sites.
func (g *Geo) SCNPositions() []geo.Point { return g.cfg.SCNPositions }

// Next implements Generator: move devices, draw submissions, compute
// geometric coverage.
func (g *Geo) Next(t int) *Slot {
	s := &Slot{Coverage: make([][]int, g.SCNs())}
	g.genInto(t, s, false)
	return s
}

// NextInto implements IntoGenerator: identical draws and slot content as
// Next, backed by the generator's arena (tasks, coverage rows, position and
// WD-index buffers). The slot — and LastPositions/LastWDs — stay valid until
// the next NextInto call.
func (g *Geo) NextInto(t int, s *Slot) {
	g.arena.begin(s)
	g.genInto(t, s, true)
}

// genInto is the single generation path behind Next and NextInto. The RNG
// consumption is identical either way: the per-slot mobility stream is
// derived by label (Derive does not advance g.r), then submissions and task
// attributes are drawn from g.r in the model's canonical order.
func (g *Geo) genInto(t int, s *Slot, pooled bool) {
	var mob rng.Stream
	g.r.DeriveInto(uint64(200+t), &mob)
	for _, w := range g.wds {
		w.Step(g.cfg.Area, &mob)
	}
	var positions []geo.Point
	var wdIdx []int
	if pooled {
		positions = g.posBuf[:0]
		wdIdx = g.wdBuf[:0]
	}
	for i, w := range g.wds {
		if !g.r.Bernoulli(g.cfg.TaskProb) {
			continue
		}
		g.nextID++
		var tk *task.Task
		if pooled {
			tk = g.arena.nextTask()
		} else {
			tk = &task.Task{}
		}
		tk.ID = g.nextID
		tk.WD = i
		tk.InputMbit = g.r.Uniform(task.MinInputMbit, task.MaxInputMbit)
		tk.OutputMbit = g.r.Uniform(task.MinOutputMbit, task.MaxOutputMbit)
		tk.LatencySensitive = g.r.Bernoulli(g.cfg.LatencySensitiveFrac)
		tk.Resource = task.ResourceKind(g.r.Intn(task.NumResourceKinds))
		s.Tasks = append(s.Tasks, tk)
		positions = append(positions, w.Pos)
		wdIdx = append(wdIdx, i)
	}
	if pooled {
		s.Coverage = geo.CoverageInto(s.Coverage, g.cfg.SCNPositions, positions, g.cfg.RadiusM)
	} else {
		s.Coverage = geo.Coverage(g.cfg.SCNPositions, positions, g.cfg.RadiusM)
	}
	g.LastPositions = positions
	g.LastWDs = wdIdx
}

// geoState is the Snapshot payload of Geo: the task stream plus every WD's
// mobility state (Waypoint is a pure value, so copying suffices).
type geoState struct {
	r      rng.Stream
	nextID int64
	wds    []geo.Waypoint
}

// SnapshotState implements Snapshottable.
func (g *Geo) SnapshotState() GenState {
	wds := make([]geo.Waypoint, len(g.wds))
	for i, w := range g.wds {
		wds[i] = *w
	}
	return geoState{r: *g.r, nextID: g.nextID, wds: wds}
}

// RestoreState implements Snapshottable.
func (g *Geo) RestoreState(st GenState) {
	v := st.(geoState)
	*g.r = v.r
	g.nextID = v.nextID
	for i := range v.wds {
		*g.wds[i] = v.wds[i]
	}
}

// --- CSV trace I/O -------------------------------------------------------

// csvHeader is the column layout of the on-disk trace format.
const csvHeader = "slot,task_id,wd,input_mbit,output_mbit,latency_sensitive,resource,duration,scns"

// WriteCSV serialises slots to w in the package trace format. The scns
// column is a ';'-separated list of covering SCN indices.
func WriteCSV(w io.Writer, slots []*Slot) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, csvHeader); err != nil {
		return err
	}
	for slot, s := range slots {
		// Invert coverage: task index → covering SCNs.
		byTask := make([][]int, len(s.Tasks))
		for m, cov := range s.Coverage {
			for _, i := range cov {
				byTask[i] = append(byTask[i], m)
			}
		}
		for i, tk := range s.Tasks {
			scns := make([]string, len(byTask[i]))
			for j, m := range byTask[i] {
				scns[j] = strconv.Itoa(m)
			}
			if _, err := fmt.Fprintf(bw, "%d,%d,%d,%.6g,%.6g,%t,%s,%d,%s\n",
				slot, tk.ID, tk.WD, tk.InputMbit, tk.OutputMbit,
				tk.LatencySensitive, tk.Resource, tk.Duration(),
				strings.Join(scns, ";")); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace. numSCNs fixes the coverage arity; rows referencing
// SCNs outside [0,numSCNs) are an error.
func ReadCSV(r io.Reader, numSCNs int) ([]*Slot, error) {
	if numSCNs <= 0 {
		return nil, fmt.Errorf("trace: numSCNs must be positive")
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty input")
	}
	if got := strings.TrimSpace(sc.Text()); got != csvHeader {
		return nil, fmt.Errorf("trace: bad header %q", got)
	}
	var slots []*Slot
	line := 1
	for sc.Scan() {
		line++
		row := strings.TrimSpace(sc.Text())
		if row == "" {
			continue
		}
		fields := strings.Split(row, ",")
		if len(fields) != 9 {
			return nil, fmt.Errorf("trace: line %d has %d fields, want 9", line, len(fields))
		}
		slot, err := strconv.Atoi(fields[0])
		if err != nil || slot < 0 {
			return nil, fmt.Errorf("trace: line %d bad slot %q", line, fields[0])
		}
		id, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d bad task id: %v", line, err)
		}
		wd, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d bad wd: %v", line, err)
		}
		in, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d bad input size: %v", line, err)
		}
		out, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d bad output size: %v", line, err)
		}
		lat, err := strconv.ParseBool(fields[5])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d bad latency flag: %v", line, err)
		}
		res, err := task.ParseResourceKind(fields[6])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		dur, err := strconv.Atoi(fields[7])
		if err != nil || dur < 1 {
			return nil, fmt.Errorf("trace: line %d bad duration %q", line, fields[7])
		}
		tk := &task.Task{ID: id, WD: wd, InputMbit: in, OutputMbit: out,
			LatencySensitive: lat, Resource: res, DurationSlots: dur}
		if err := tk.Validate(); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		for len(slots) <= slot {
			slots = append(slots, &Slot{Coverage: make([][]int, numSCNs)})
		}
		s := slots[slot]
		idx := len(s.Tasks)
		s.Tasks = append(s.Tasks, tk)
		if fields[8] != "" {
			for _, ms := range strings.Split(fields[8], ";") {
				m, err := strconv.Atoi(ms)
				if err != nil || m < 0 || m >= numSCNs {
					return nil, fmt.Errorf("trace: line %d bad SCN ref %q", line, ms)
				}
				s.Coverage[m] = append(s.Coverage[m], idx)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i, s := range slots {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("trace: slot %d: %v", i, err)
		}
	}
	return slots, nil
}

// Replay implements Generator over recorded slots, cycling when the
// simulation horizon exceeds the trace length.
type Replay struct {
	slots []*Slot
	scns  int
	max   int
}

// NewReplay wraps recorded slots as a Generator.
func NewReplay(slots []*Slot, numSCNs int) (*Replay, error) {
	if len(slots) == 0 {
		return nil, fmt.Errorf("trace: empty replay")
	}
	max := 0
	for _, s := range slots {
		if len(s.Coverage) != numSCNs {
			return nil, fmt.Errorf("trace: slot has %d SCNs, want %d", len(s.Coverage), numSCNs)
		}
		for _, cov := range s.Coverage {
			if len(cov) > max {
				max = len(cov)
			}
		}
	}
	return &Replay{slots: slots, scns: numSCNs, max: max}, nil
}

// Next implements Generator.
func (r *Replay) Next(t int) *Slot { return r.slots[t%len(r.slots)] }

// SCNs implements Generator.
func (r *Replay) SCNs() int { return r.scns }

// MaxPerSCN implements Generator.
func (r *Replay) MaxPerSCN() int { return r.max }

// Len returns the number of recorded slots.
func (r *Replay) Len() int { return len(r.slots) }
