package trace

import (
	"fmt"
	"math"

	"lfsc/internal/rng"
	"lfsc/internal/task"
)

// StressKind selects a stress pattern for the Stress generator.
type StressKind int

const (
	// Diurnal modulates per-SCN load sinusoidally over a configurable
	// period — the day/night cycle of a real deployment.
	Diurnal StressKind = iota
	// Hotspot concentrates load on a rotating subset of SCNs (stadium /
	// commute patterns): hot cells run at MaxTasks, cold cells at MinTasks.
	Hotspot
	// FlashCrowd injects sudden bursts: load is normal except during
	// randomly placed burst windows where every SCN jumps to MaxTasks and
	// contexts collapse into a narrow band (everyone streams the same
	// event).
	FlashCrowd
)

// String implements fmt.Stringer.
func (k StressKind) String() string {
	switch k {
	case Diurnal:
		return "diurnal"
	case Hotspot:
		return "hotspot"
	case FlashCrowd:
		return "flashcrowd"
	default:
		return fmt.Sprintf("stress(%d)", int(k))
	}
}

// StressConfig parameterises the stress generator.
type StressConfig struct {
	// Base is the underlying synthetic model (counts, sizes, overlap).
	Base SyntheticConfig
	// Kind selects the stress pattern.
	Kind StressKind
	// PeriodSlots is the diurnal period / hotspot rotation interval /
	// expected gap between flash crowds (default 500 when zero).
	PeriodSlots int
	// HotFraction is the fraction of SCNs that are hot under Hotspot
	// (default 0.2 when zero).
	HotFraction float64
	// BurstSlots is the flash-crowd burst length (default 50 when zero).
	BurstSlots int
}

func (c StressConfig) period() int {
	if c.PeriodSlots <= 0 {
		return 500
	}
	return c.PeriodSlots
}

func (c StressConfig) hotFraction() float64 {
	if c.HotFraction <= 0 {
		return 0.2
	}
	return c.HotFraction
}

func (c StressConfig) burst() int {
	if c.BurstSlots <= 0 {
		return 50
	}
	return c.BurstSlots
}

// Validate checks the configuration.
func (c StressConfig) Validate() error {
	if err := c.Base.Validate(); err != nil {
		return err
	}
	if c.HotFraction < 0 || c.HotFraction > 1 {
		return fmt.Errorf("trace: hot fraction %v outside [0,1]", c.HotFraction)
	}
	if c.PeriodSlots < 0 || c.BurstSlots < 0 {
		return fmt.Errorf("trace: negative stress interval")
	}
	return nil
}

// Stress is a Generator producing time-varying, adversarial load patterns
// on top of the paper's synthetic model. It exists to probe the robustness
// the paper's stationarity assumptions paper over: LFSC's per-cell workload
// share moves, so the weight/multiplier equilibria must track it.
type Stress struct {
	cfg       StressConfig
	r         *rng.Stream
	inner     *Synthetic
	burstFrom int   // next flash-crowd start
	counts    []int // per-SCN target counts, reused across slots
	arena     *slotArena
}

// NewStress builds the generator.
func NewStress(cfg StressConfig, r *rng.Stream) (*Stress, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inner, err := NewSynthetic(cfg.Base, r.Derive(1))
	if err != nil {
		return nil, err
	}
	s := &Stress{
		cfg: cfg, r: r.Derive(2), inner: inner,
		counts: make([]int, cfg.Base.SCNs),
		arena:  newSlotArena(cfg.Base.SCNs*cfg.Base.MaxTasks, cfg.Base.SCNs),
	}
	s.burstFrom = s.cfg.period() + s.r.Intn(s.cfg.period())
	return s, nil
}

// SCNs implements Generator.
func (s *Stress) SCNs() int { return s.cfg.Base.SCNs }

// MaxPerSCN implements Generator.
func (s *Stress) MaxPerSCN() int { return s.inner.MaxPerSCN() }

// Next implements Generator.
func (s *Stress) Next(t int) *Slot {
	if s.cfg.Kind == Diurnal || s.cfg.Kind == Hotspot || s.cfg.Kind == FlashCrowd {
		out := &Slot{Coverage: make([][]int, s.cfg.Base.SCNs)}
		s.genInto(t, out, false)
		return out
	}
	return s.inner.Next(t)
}

// NextInto implements IntoGenerator: identical draws and slot content as
// Next, backed by the generator's arena (valid until the next NextInto).
func (s *Stress) NextInto(t int, out *Slot) {
	if s.cfg.Kind == Diurnal || s.cfg.Kind == Hotspot || s.cfg.Kind == FlashCrowd {
		s.arena.begin(out)
		s.genInto(t, out, true)
		return
	}
	s.inner.NextInto(t, out)
}

// genInto computes the per-SCN target counts for slot t and generates the
// slot; pooled selects arena-backed versus freshly allocated tasks.
func (s *Stress) genInto(t int, out *Slot, pooled bool) {
	var narrow bool
	switch s.cfg.Kind {
	case Diurnal:
		s.diurnalCounts(t)
	case Hotspot:
		s.hotspotCounts(t)
	case FlashCrowd:
		narrow = s.flashCrowdCounts(t)
	}
	for m := 0; m < s.cfg.Base.SCNs; m++ {
		n := s.counts[m]
		for k := 0; k < n; k++ {
			idx := len(out.Tasks)
			var tk *task.Task
			if pooled {
				tk = s.arena.nextTask()
			} else {
				tk = &task.Task{}
			}
			s.inner.fillTask(tk)
			if narrow {
				// Flash crowd: everyone requests near-identical work.
				tk.InputMbit = task.MinInputMbit + 0.1*(task.MaxInputMbit-task.MinInputMbit)*s.r.Float64()
				tk.OutputMbit = task.MinOutputMbit + 0.1*(task.MaxOutputMbit-task.MinOutputMbit)*s.r.Float64()
				tk.Resource = task.GPU
			}
			out.Tasks = append(out.Tasks, tk)
			out.Coverage[m] = append(out.Coverage[m], idx)
			if s.cfg.Base.SCNs > 1 && s.r.Bernoulli(s.cfg.Base.Overlap) {
				peer := (m + 1) % s.cfg.Base.SCNs
				out.Coverage[peer] = append(out.Coverage[peer], idx)
			}
		}
	}
}

func (s *Stress) diurnalCounts(t int) {
	period := float64(s.cfg.period())
	for m := range s.counts {
		// Phase-shifted sinusoid per SCN: cells peak at different times.
		phase := 2 * math.Pi * (float64(t)/period + float64(m)/float64(len(s.counts)))
		level := 0.5 + 0.5*math.Sin(phase)
		lo, hi := s.cfg.Base.MinTasks, s.cfg.Base.MaxTasks
		s.counts[m] = lo + int(level*float64(hi-lo))
	}
}

func (s *Stress) hotspotCounts(t int) {
	rotation := (t / s.cfg.period()) % s.cfg.Base.SCNs
	hot := int(math.Ceil(s.cfg.hotFraction() * float64(s.cfg.Base.SCNs)))
	for m := range s.counts {
		// The hot window [rotation, rotation+hot) wraps around the ring.
		d := (m - rotation + s.cfg.Base.SCNs) % s.cfg.Base.SCNs
		if d < hot {
			s.counts[m] = s.cfg.Base.MaxTasks
		} else {
			s.counts[m] = s.cfg.Base.MinTasks
		}
	}
}

func (s *Stress) flashCrowdCounts(t int) (inBurst bool) {
	inBurst = t >= s.burstFrom && t < s.burstFrom+s.cfg.burst()
	if t >= s.burstFrom+s.cfg.burst() {
		s.burstFrom = t + s.cfg.period()/2 + s.r.Intn(s.cfg.period())
	}
	for m := range s.counts {
		if inBurst {
			s.counts[m] = s.cfg.Base.MaxTasks
		} else {
			s.counts[m] = s.cfg.Base.MinTasks +
				s.r.Intn(s.cfg.Base.MaxTasks-s.cfg.Base.MinTasks+1)
		}
	}
	return inBurst
}

// stressState is the Snapshot payload of Stress.
type stressState struct {
	r         rng.Stream
	burstFrom int
	inner     GenState
}

// SnapshotState implements Snapshottable.
func (s *Stress) SnapshotState() GenState {
	return stressState{r: *s.r, burstFrom: s.burstFrom, inner: s.inner.SnapshotState()}
}

// RestoreState implements Snapshottable.
func (s *Stress) RestoreState(st GenState) {
	v := st.(stressState)
	*s.r = v.r
	s.burstFrom = v.burstFrom
	s.inner.RestoreState(v.inner)
}
