package trace

import (
	"testing"

	"lfsc/internal/geo"
	"lfsc/internal/rng"
)

// The pooled NextInto path must be allocation-free in steady state: after
// the arena has grown to the workload's high-water mark, generating a slot
// touches only generator-owned memory. These tests pin that contract for
// every in-tree generator so a stray append or boxing conversion in the
// per-slot path shows up as a test failure rather than as a silent
// regression of BENCH_core.json's allocs/slot figure.

func assertAllocFree(t *testing.T, name string, warmup int, next func(t int)) {
	t.Helper()
	for i := 0; i < warmup; i++ {
		next(i)
	}
	slot := warmup
	avg := testing.AllocsPerRun(100, func() {
		next(slot)
		slot++
	})
	if avg != 0 {
		t.Errorf("%s: NextInto allocates %.1f objects/slot in steady state, want 0", name, avg)
	}
}

func TestSyntheticNextIntoAllocFree(t *testing.T) {
	g, err := NewSynthetic(DefaultSyntheticConfig(), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	var s Slot
	assertAllocFree(t, "synthetic", 8, func(tt int) { g.NextInto(tt, &s) })
}

func TestStressNextIntoAllocFree(t *testing.T) {
	for _, kind := range []StressKind{Diurnal, Hotspot, FlashCrowd} {
		g, err := NewStress(StressConfig{Base: DefaultSyntheticConfig(), Kind: kind, PeriodSlots: 40}, rng.New(13))
		if err != nil {
			t.Fatal(err)
		}
		var s Slot
		// Warm across a full stress period so burst/hotspot peaks have
		// already forced the arena to its high-water mark.
		assertAllocFree(t, "stress/"+kind.String(), 50, func(tt int) { g.NextInto(tt, &s) })
	}
}

func TestGeoNextIntoAllocFree(t *testing.T) {
	area := geo.Area{W: 600, H: 600}
	g, err := NewGeo(GeoConfig{
		Area:         area,
		SCNPositions: geo.PlaceGrid(area, 9),
		RadiusM:      180,
		WDs:          300,
		TaskProb:     0.5,
		MinSpeed:     1,
		MaxSpeed:     10,
		MaxPause:     3,
	}, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	var s Slot
	assertAllocFree(t, "geo", 20, func(tt int) { g.NextInto(tt, &s) })
}
