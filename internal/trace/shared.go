package trace

import (
	"fmt"
	"sync"

	"lfsc/internal/task"
)

// GenState is an opaque generator snapshot produced by SnapshotState and
// consumed by RestoreState of the same generator type.
type GenState interface{}

// Snapshottable is a Generator whose full state (RNG streams, counters,
// mobility state) can be captured and restored, so that any suffix of its
// slot sequence can be regenerated bit-identically from a snapshot taken at
// the right position. All in-tree generators implement it; a SharedTrace
// over a Snapshottable generator can evict materialized chunks and rebuild
// them on demand, keeping memory bounded at large horizons.
type Snapshottable interface {
	Generator
	// SnapshotState captures the current generator state (i.e. the state
	// from which the next un-generated slot would be drawn).
	SnapshotState() GenState
	// RestoreState rewinds the generator to a previously captured state.
	RestoreState(st GenState)
}

// SharedTraceConfig parameterises a SharedTrace.
type SharedTraceConfig struct {
	// ChunkSlots is the materialization granularity (default 64 when zero).
	ChunkSlots int
	// Readers is the number of replay passes that will be taken over the
	// trace (e.g. the number of policies in a RunAll). Chunks are freed
	// permanently once every declared reader has moved past them.
	Readers int
	// MaxCachedChunks bounds the number of chunks held in memory at once
	// (default 8 when zero; use a negative value for an unbounded cache).
	// The bound is enforced only when the generator is Snapshottable —
	// evicted chunks are regenerated bit-identically from snapshots taken
	// at chunk boundaries. With concurrent readers advancing together, or a
	// cache covering the horizon, generation happens exactly once per slot.
	MaxCachedChunks int
}

func (c SharedTraceConfig) chunk() int {
	if c.ChunkSlots <= 0 {
		return 64
	}
	return c.ChunkSlots
}

func (c SharedTraceConfig) maxCached() int {
	if c.MaxCachedChunks == 0 {
		return 8
	}
	return c.MaxCachedChunks
}

// SharedTrace materializes a generator's slot sequence once per (scenario,
// seed) so that several runs — one per policy, under common random numbers —
// replay identical workload without regenerating it per run. Slots are
// materialized in chunks on first demand; a chunk is freed once all declared
// readers have passed it, and may be evicted earlier (and later rebuilt from
// a snapshot) to keep at most MaxCachedChunks in memory. All generator
// access is serialized under an internal mutex, so readers are safe to drive
// from concurrent goroutines (the parallel.For fan-out in sim.RunAll).
type SharedTrace struct {
	mu      sync.Mutex
	gen     Generator
	into    IntoGenerator // non-nil when gen supports pooled generation
	snap    Snapshottable // non-nil when gen supports snapshots
	horizon int
	chunkSz int
	maxCach int
	readers int

	scns   int
	maxPer int

	chunks map[int]*traceChunk
	snaps  []GenState // snaps[k] = generator state before chunk k; len built+1
	passes []int      // outstanding reader passes per chunk
	built  int        // frontier: chunks generated at least once
	made   int        // readers handed out so far

	genBuf Slot // scratch slot for pooled materialization
}

// traceChunk is one materialized run of consecutive slots. Slots are
// immutable after materialization; active counts readers currently inside —
// only inactive chunks are ever evicted, so a slot pointer handed to a
// reader stays valid until that reader moves on.
type traceChunk struct {
	slots  []Slot
	active int
}

// NewSharedTrace materializes gen's first `horizon` slots lazily. The
// generator must be exclusively owned by the SharedTrace from here on.
func NewSharedTrace(gen Generator, horizon int, cfg SharedTraceConfig) (*SharedTrace, error) {
	if gen == nil {
		return nil, fmt.Errorf("trace: nil generator")
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("trace: non-positive horizon %d", horizon)
	}
	if cfg.Readers <= 0 {
		return nil, fmt.Errorf("trace: shared trace needs a positive reader count, got %d", cfg.Readers)
	}
	st := &SharedTrace{
		gen:     gen,
		horizon: horizon,
		chunkSz: cfg.chunk(),
		maxCach: cfg.maxCached(),
		readers: cfg.Readers,
		scns:    gen.SCNs(),
		maxPer:  gen.MaxPerSCN(),
		chunks:  make(map[int]*traceChunk),
	}
	st.into, _ = gen.(IntoGenerator)
	st.snap, _ = gen.(Snapshottable)
	n := (horizon + st.chunkSz - 1) / st.chunkSz
	st.passes = make([]int, n)
	for k := range st.passes {
		st.passes[k] = cfg.Readers
	}
	if st.snap != nil {
		st.snaps = append(st.snaps, st.snap.SnapshotState())
	}
	return st, nil
}

// Horizon returns the number of slots the trace covers.
func (st *SharedTrace) Horizon() int { return st.horizon }

// SCNs mirrors the underlying generator.
func (st *SharedTrace) SCNs() int { return st.scns }

// MaxPerSCN mirrors the underlying generator. It delegates to the
// generator's declared bound rather than measuring materialized slots: the
// bound feeds the learner's parameter schedule (core.Config.KMax) and must
// not depend on which slots happen to have been generated.
func (st *SharedTrace) MaxPerSCN() int { return st.maxPer }

// NewReader hands out the next replay pass over slots [0, Horizon). It fails
// once the declared reader budget is exhausted — the pass accounting that
// frees chunks relies on the exact count.
func (st *SharedTrace) NewReader() (*TraceReader, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.made >= st.readers {
		return nil, fmt.Errorf("trace: shared trace reader budget exhausted (%d declared)", st.readers)
	}
	st.made++
	return &TraceReader{st: st, cur: -1}, nil
}

// acquire returns chunk k, materializing it if needed, and marks the caller
// as inside it. Called with st.mu held.
func (st *SharedTrace) acquire(k int) (*traceChunk, error) {
	if k < 0 || k >= len(st.passes) {
		return nil, fmt.Errorf("trace: chunk %d outside horizon %d", k, st.horizon)
	}
	ch := st.chunks[k]
	if ch == nil {
		var err error
		if ch, err = st.materialize(k); err != nil {
			return nil, err
		}
		st.chunks[k] = ch
	}
	ch.active++
	st.evict(k)
	return ch, nil
}

// materialize generates chunk k's slots. For k == built the generator is
// already positioned (or is restored to the frontier snapshot); for an
// evicted chunk k < built the generator is rewound to the snapshot taken at
// that chunk boundary, which reproduces the slots bit-identically. Called
// with st.mu held.
func (st *SharedTrace) materialize(k int) (*traceChunk, error) {
	if k > st.built {
		// Readers advance strictly forward from slot 0, so demand reaches
		// the frontier before passing it; build intermediate chunks too.
		for j := st.built; j < k; j++ {
			ch, err := st.materialize(j)
			if err != nil {
				return nil, err
			}
			// Cache it (uncached intermediate chunks would be regenerated
			// on demand anyway when snapshottable); evict keeps the bound.
			st.chunks[j] = ch
			st.evict(-1)
		}
	}
	if k < st.built {
		if st.snap == nil {
			return nil, fmt.Errorf("trace: chunk %d evicted and generator is not snapshottable", k)
		}
		st.snap.RestoreState(st.snaps[k])
	} else if st.snap != nil {
		// Frontier build: position explicitly so interleaved regeneration
		// of earlier chunks cannot leave the generator mid-stream.
		st.snap.RestoreState(st.snaps[k])
	}
	lo := k * st.chunkSz
	hi := lo + st.chunkSz
	if hi > st.horizon {
		hi = st.horizon
	}
	ch := &traceChunk{slots: make([]Slot, hi-lo)}
	for t := lo; t < hi; t++ {
		var src *Slot
		if st.into != nil {
			st.into.NextInto(t, &st.genBuf)
			src = &st.genBuf
		} else {
			src = st.gen.Next(t)
		}
		compactSlot(&ch.slots[t-lo], src)
	}
	if k == st.built {
		st.built++
		if st.snap != nil {
			st.snaps = append(st.snaps, st.snap.SnapshotState())
		}
	}
	return ch, nil
}

// release marks the caller as done with chunk k for this pass. Called with
// st.mu held.
func (st *SharedTrace) release(k int, ch *traceChunk) {
	if ch != nil {
		ch.active--
	}
	st.passes[k]--
	if st.passes[k] <= 0 {
		if c := st.chunks[k]; c != nil && c.active == 0 {
			delete(st.chunks, k) // every declared pass done: free permanently
		}
		if k < len(st.snaps) {
			st.snaps[k] = nil // never regenerated again
		}
	}
}

// evict drops inactive cached chunks until the cache bound holds, preferring
// high indices (the next pass restarts from slot 0, so low chunks stay
// warm). keep is exempted. Only snapshottable traces evict — others could
// not rebuild. Called with st.mu held.
func (st *SharedTrace) evict(keep int) {
	if st.snap == nil || st.maxCach < 0 {
		return
	}
	for len(st.chunks) > st.maxCach {
		victim := -1
		for k, ch := range st.chunks {
			if k != keep && ch.active == 0 && k > victim {
				victim = k
			}
		}
		if victim < 0 {
			return // everything active: over-budget but can't evict
		}
		delete(st.chunks, victim)
	}
}

// compactSlot deep-copies src into dst using flat backing arrays (one task
// array, one coverage backing) so a materialized slot costs O(1) allocations
// instead of one per task.
func compactSlot(dst, src *Slot) {
	tasks := make([]task.Task, len(src.Tasks))
	ptrs := make([]*task.Task, len(src.Tasks))
	for i, tk := range src.Tasks {
		tasks[i] = *tk
		ptrs[i] = &tasks[i]
	}
	total := 0
	for _, row := range src.Coverage {
		total += len(row)
	}
	backing := make([]int, 0, total)
	cov := make([][]int, len(src.Coverage))
	for m, row := range src.Coverage {
		start := len(backing)
		backing = append(backing, row...)
		cov[m] = backing[start:len(backing):len(backing)]
	}
	dst.Tasks = ptrs
	dst.Coverage = cov
}

// TraceReader is one replay pass over a SharedTrace. It implements
// Generator, so sim.Run can consume it in place of a live generator; slots
// it returns are read-only and shared across readers. Call Close when the
// pass ends (Run does this) so chunk accounting can free memory; a reader
// that consumed its full horizon is closed implicitly by its last Next.
type TraceReader struct {
	st     *SharedTrace
	cur    int // current chunk index; -1 before the first Next
	chunk  *traceChunk
	closed bool
}

// Next implements Generator. t must be non-decreasing across calls (the
// simulation loop drives it strictly forward).
func (r *TraceReader) Next(t int) *Slot {
	st := r.st
	k := t / st.chunkSz
	if r.closed {
		panic("trace: Next on closed TraceReader")
	}
	if k != r.cur {
		if k < r.cur {
			panic(fmt.Sprintf("trace: TraceReader moved backwards (chunk %d after %d)", k, r.cur))
		}
		st.mu.Lock()
		if r.cur >= 0 {
			st.release(r.cur, r.chunk)
		}
		// Chunks skipped over (possible only if a caller jumps t) still
		// consume this reader's pass.
		for j := r.cur + 1; j < k; j++ {
			st.release(j, nil)
		}
		ch, err := st.acquire(k)
		st.mu.Unlock()
		if err != nil {
			panic(err) // Generator.Next has no error path; misuse only
		}
		r.cur, r.chunk = k, ch
	}
	s := &r.chunk.slots[t-k*st.chunkSz]
	if t == st.horizon-1 {
		r.Close()
	}
	return s
}

// SCNs implements Generator.
func (r *TraceReader) SCNs() int { return r.st.scns }

// MaxPerSCN implements Generator.
func (r *TraceReader) MaxPerSCN() int { return r.st.maxPer }

// Close releases the reader's pass over every chunk it has not yet passed.
// Idempotent; safe on partially consumed readers.
func (r *TraceReader) Close() {
	if r.closed {
		return
	}
	r.closed = true
	st := r.st
	st.mu.Lock()
	if r.cur >= 0 {
		st.release(r.cur, r.chunk)
	}
	for j := r.cur + 1; j < len(st.passes); j++ {
		st.release(j, nil)
	}
	st.mu.Unlock()
	r.chunk = nil
}
