package trace

import "lfsc/internal/task"

// IntoGenerator is the pooled extension of Generator: NextInto fills a
// caller-provided Slot from backing arrays owned by the generator instead of
// allocating a fresh slot. The filled slot aliases the generator's arena and
// is valid only until the next NextInto call on the same generator — the
// same arena-ownership rule as the policy scratch buffers (DESIGN.md §8).
// Callers that must retain a slot (checkpointing, shared traces) either deep
// copy it or use the allocating Next.
type IntoGenerator interface {
	Generator
	// NextInto fills s with the workload of slot t (0-based, strictly
	// increasing across calls, interleaved with any Next calls).
	NextInto(t int, s *Slot)
}

// slotArena is the reusable backing storage of a pooled generator: one task
// array sized once at construction from the generator's worst-case slot
// (SCNs×MaxTasks for the synthetic models, WDs for the geometric one), the
// parallel pointer slice handed out through Slot.Tasks, and per-SCN coverage
// rows recycled by re-slicing. In steady state NextInto touches the heap
// zero times.
type slotArena struct {
	tasks []task.Task  // fixed backing array
	ptrs  []*task.Task // ptrs[i] == &tasks[i], set up once
	cov   [][]int      // per-SCN coverage rows, grown to their high-water mark
	n     int          // tasks handed out in the current slot
}

func newSlotArena(maxTasks, scns int) *slotArena {
	a := &slotArena{
		tasks: make([]task.Task, maxTasks),
		ptrs:  make([]*task.Task, maxTasks),
		cov:   make([][]int, scns),
	}
	for i := range a.tasks {
		a.ptrs[i] = &a.tasks[i]
	}
	return a
}

// begin resets the arena for a new slot and points s at it. After begin,
// s.Tasks and s.Coverage alias the arena.
func (a *slotArena) begin(s *Slot) {
	a.n = 0
	for m := range a.cov {
		a.cov[m] = a.cov[m][:0]
	}
	s.Tasks = a.ptrs[:0]
	s.Coverage = a.cov
}

// nextTask hands out the next pooled task, zeroed. If the generator's
// declared worst case is exceeded (cannot happen for the in-tree
// generators), it falls back to the heap rather than corrupt earlier tasks.
func (a *slotArena) nextTask() *task.Task {
	var tk *task.Task
	if a.n < len(a.tasks) {
		tk = a.ptrs[a.n]
		*tk = task.Task{}
	} else {
		tk = &task.Task{}
	}
	a.n++
	return tk
}
