package trace

import (
	"testing"

	"lfsc/internal/rng"
	"lfsc/internal/task"
)

func stressBase() SyntheticConfig {
	return SyntheticConfig{SCNs: 10, MinTasks: 5, MaxTasks: 20, Overlap: 0.2}
}

func TestStressValidate(t *testing.T) {
	good := StressConfig{Base: stressBase(), Kind: Diurnal}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []StressConfig{
		{Base: SyntheticConfig{}},
		{Base: stressBase(), HotFraction: 2},
		{Base: stressBase(), PeriodSlots: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad stress config %d accepted", i)
		}
	}
	if _, err := NewStress(bad[0], rng.New(1)); err == nil {
		t.Fatal("NewStress accepted bad config")
	}
}

func TestStressKindString(t *testing.T) {
	for _, k := range []StressKind{Diurnal, Hotspot, FlashCrowd, StressKind(9)} {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
}

func TestDiurnalModulatesLoad(t *testing.T) {
	cfg := StressConfig{Base: stressBase(), Kind: Diurnal, PeriodSlots: 100}
	g, err := NewStress(cfg, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Track SCN 0's load over a full period: it must span most of the
	// configured range.
	lo, hi := 1<<30, 0
	for t0 := 0; t0 < 100; t0++ {
		s := g.Next(t0)
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		n := len(s.Coverage[0])
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if hi-lo < 10 {
		t.Fatalf("diurnal swing too small: [%d,%d]", lo, hi)
	}
}

func TestHotspotConcentratesAndRotates(t *testing.T) {
	cfg := StressConfig{Base: stressBase(), Kind: Hotspot, PeriodSlots: 10, HotFraction: 0.2}
	g, _ := NewStress(cfg, rng.New(3))
	s := g.Next(0)
	hot, cold := 0, 0
	for m := range s.Coverage {
		// Own tasks only — strip overlap inflow by bounding from config.
		if len(s.Coverage[m]) >= cfg.Base.MaxTasks {
			hot++
		} else if len(s.Coverage[m]) <= cfg.Base.MinTasks+cfg.Base.MaxTasks/3 {
			cold++
		}
	}
	if hot == 0 || cold == 0 {
		t.Fatalf("hotspot pattern missing: %d hot, %d cold", hot, cold)
	}
	// Rotation: hot set at t=0 differs from t=50.
	hotAt := func(t0 int) map[int]bool {
		s := g.Next(t0)
		out := map[int]bool{}
		for m := range s.Coverage {
			if len(s.Coverage[m]) >= cfg.Base.MaxTasks {
				out[m] = true
			}
		}
		return out
	}
	a, b := hotAt(0), hotAt(50)
	same := true
	for m := range a {
		if !b[m] {
			same = false
		}
	}
	if same && len(a) == len(b) {
		t.Fatal("hotspot never rotated")
	}
}

func TestFlashCrowdBursts(t *testing.T) {
	cfg := StressConfig{Base: stressBase(), Kind: FlashCrowd, PeriodSlots: 60, BurstSlots: 10}
	g, _ := NewStress(cfg, rng.New(4))
	sawBurst := false
	for t0 := 0; t0 < 400; t0++ {
		s := g.Next(t0)
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		total := 0
		gpu := 0
		for _, tk := range s.Tasks {
			total++
			if tk.Resource == task.GPU {
				gpu++
			}
		}
		// Burst slots: every SCN at MaxTasks and all-GPU narrow contexts.
		if total >= cfg.Base.MaxTasks*cfg.Base.SCNs && gpu == total {
			sawBurst = true
		}
	}
	if !sawBurst {
		t.Fatal("no flash crowd observed in 400 slots")
	}
}

func TestStressDeterminism(t *testing.T) {
	cfg := StressConfig{Base: stressBase(), Kind: FlashCrowd}
	a, _ := NewStress(cfg, rng.New(5))
	b, _ := NewStress(cfg, rng.New(5))
	for t0 := 0; t0 < 20; t0++ {
		sa, sb := a.Next(t0), b.Next(t0)
		if len(sa.Tasks) != len(sb.Tasks) {
			t.Fatalf("slot %d: task counts differ", t0)
		}
	}
}

func TestStressImplementsGenerator(t *testing.T) {
	var _ Generator = &Stress{}
	g, _ := NewStress(StressConfig{Base: stressBase(), Kind: Diurnal}, rng.New(6))
	if g.SCNs() != 10 || g.MaxPerSCN() <= 0 {
		t.Fatal("generator metadata wrong")
	}
}
