// Package ilp solves small 0/1 integer linear programs exactly by LP-based
// branch & bound, using the dense simplex in internal/lpsolve for node
// relaxations.
//
// Its role in the reproduction is verification: the paper's per-slot
// offloading problem (ILP (1)) is solved exactly on small instances to (i)
// certify the Oracle heuristic used at paper scale and (ii) measure the real
// approximation ratio of the greedy Alg. 4 against the true optimum, not
// just against the matching bound of Lemma 2.
package ilp

import (
	"fmt"
	"math"

	"lfsc/internal/lpsolve"
)

// Status reports the outcome of Solve.
type Status int

const (
	// Optimal means the incumbent is proven optimal.
	Optimal Status = iota
	// Infeasible means no 0/1 point satisfies the constraints.
	Infeasible
	// NodeLimit means search stopped early; the incumbent (if any) is a
	// feasible lower bound but not proven optimal.
	NodeLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case NodeLimit:
		return "node-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

type constraint struct {
	coefs []float64
	sense lpsolve.Sense
	rhs   float64
}

// Problem is a 0/1 ILP: maximise obj·x, subject to linear constraints,
// x ∈ {0,1}^n.
type Problem struct {
	n    int
	obj  []float64
	cons []constraint
}

// New creates a problem with n binary variables.
func New(n int) *Problem {
	if n <= 0 {
		panic("ilp: need at least one variable")
	}
	return &Problem{n: n, obj: make([]float64, n)}
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.n }

// SetObjective sets maximisation coefficients.
func (p *Problem) SetObjective(coefs []float64) {
	if len(coefs) != p.n {
		panic("ilp: objective length mismatch")
	}
	copy(p.obj, coefs)
}

// AddConstraint appends coefs·x (sense) rhs.
func (p *Problem) AddConstraint(coefs []float64, sense lpsolve.Sense, rhs float64) {
	if len(coefs) != p.n {
		panic("ilp: constraint length mismatch")
	}
	p.cons = append(p.cons, constraint{
		coefs: append([]float64(nil), coefs...),
		sense: sense,
		rhs:   rhs,
	})
}

// Solution is the result of Solve.
type Solution struct {
	// Status reports the search outcome.
	Status Status
	// X is the best 0/1 point found (nil when none).
	X []int
	// Objective is obj·X.
	Objective float64
	// Nodes is the number of branch & bound nodes explored.
	Nodes int
}

const intTol = 1e-6

// Solve runs best-incumbent depth-first branch & bound exploring at most
// maxNodes nodes (<= 0 means a generous default).
func (p *Problem) Solve(maxNodes int) Solution {
	if maxNodes <= 0 {
		maxNodes = 100000
	}
	s := &solver{p: p, maxNodes: maxNodes, bestObj: math.Inf(-1)}
	fixed := make([]int8, p.n) // -1 unfixed is represented as 2 below
	for i := range fixed {
		fixed[i] = unfixed
	}
	s.branch(fixed)
	switch {
	case s.bestX == nil && s.nodes >= s.maxNodes:
		return Solution{Status: NodeLimit, Nodes: s.nodes}
	case s.bestX == nil:
		return Solution{Status: Infeasible, Nodes: s.nodes}
	case s.nodes >= s.maxNodes:
		return Solution{Status: NodeLimit, X: s.bestX, Objective: s.bestObj, Nodes: s.nodes}
	default:
		return Solution{Status: Optimal, X: s.bestX, Objective: s.bestObj, Nodes: s.nodes}
	}
}

const unfixed = int8(2)

type solver struct {
	p        *Problem
	maxNodes int
	nodes    int
	bestObj  float64
	bestX    []int
}

// branch explores the subproblem with the given variable fixings.
func (s *solver) branch(fixed []int8) {
	if s.nodes >= s.maxNodes {
		return
	}
	s.nodes++

	sol := s.solveRelaxation(fixed)
	if sol.Status != lpsolve.Optimal {
		return // infeasible node (unbounded impossible: x ∈ [0,1]^n)
	}
	if sol.Objective <= s.bestObj+1e-9 {
		return // bound prune
	}
	// Most fractional variable.
	branchVar := -1
	worst := intTol
	for i, v := range sol.X {
		if fixed[i] != unfixed {
			continue
		}
		frac := math.Abs(v - math.Round(v))
		if frac > worst {
			worst = frac
			branchVar = i
		}
	}
	if branchVar == -1 {
		// Integral solution.
		x := make([]int, s.p.n)
		for i, v := range sol.X {
			x[i] = int(math.Round(v))
		}
		s.bestObj = sol.Objective
		s.bestX = x
		return
	}
	// Try the rounding the LP leans toward first (better incumbents sooner).
	first, second := int8(1), int8(0)
	if sol.X[branchVar] < 0.5 {
		first, second = 0, 1
	}
	for _, val := range []int8{first, second} {
		fixed[branchVar] = val
		s.branch(fixed)
		fixed[branchVar] = unfixed
	}
}

// solveRelaxation solves the LP relaxation with [0,1] bounds and fixings.
func (s *solver) solveRelaxation(fixed []int8) lpsolve.Solution {
	lp := lpsolve.NewProblem(s.p.n)
	lp.SetObjective(s.p.obj)
	for _, c := range s.p.cons {
		lp.AddConstraint(c.coefs, c.sense, c.rhs)
	}
	row := make([]float64, s.p.n)
	for i, f := range fixed {
		for j := range row {
			row[j] = 0
		}
		row[i] = 1
		switch f {
		case unfixed:
			lp.AddConstraint(row, lpsolve.LE, 1)
		case 0:
			lp.AddConstraint(row, lpsolve.EQ, 0)
		case 1:
			lp.AddConstraint(row, lpsolve.EQ, 1)
		}
	}
	return lp.Solve()
}

// OffloadInstance is the paper's per-slot ILP (1) for one time slot:
// binary x[m][i] (SCN m executes task i), maximising Σ g·x subject to
// (1a) Σ_i x[m][i] ≤ C per SCN, (1b) Σ_m x[m][i] ≤ 1 per task,
// (1c) Σ_i v[m][i]·x[m][i] ≥ Alpha per SCN, (1d) Σ_i q[m][i]·x[m][i] ≤ Beta.
// Covered[m][i] marks visibility (D_{m,t}); uncovered pairs are forced 0.
type OffloadInstance struct {
	G       [][]float64 // expected compound reward per (SCN, task)
	V       [][]float64 // expected completion likelihood
	Q       [][]float64 // expected consumption
	Covered [][]bool
	C       int
	Alpha   float64
	Beta    float64
	// SoftQoS relaxes (1c) from a hard constraint to "ignored" (the
	// violation is measured, not enforced) — matching how the online
	// algorithms are allowed to violate it per-slot.
	SoftQoS bool
}

// Solve builds and solves the instance exactly. Variables are indexed
// m*numTasks+i.
func (inst *OffloadInstance) Solve(maxNodes int) Solution {
	m := len(inst.G)
	if m == 0 {
		return Solution{Status: Optimal, X: nil}
	}
	n := len(inst.G[0])
	p := New(m * n)
	obj := make([]float64, m*n)
	for j := 0; j < m; j++ {
		for i := 0; i < n; i++ {
			obj[j*n+i] = inst.G[j][i]
		}
	}
	p.SetObjective(obj)
	row := make([]float64, m*n)
	clear := func() {
		for k := range row {
			row[k] = 0
		}
	}
	for j := 0; j < m; j++ {
		// (1a) cardinality.
		clear()
		for i := 0; i < n; i++ {
			row[j*n+i] = 1
		}
		p.AddConstraint(row, lpsolve.LE, float64(inst.C))
		// (1c) QoS floor.
		if !inst.SoftQoS {
			clear()
			for i := 0; i < n; i++ {
				row[j*n+i] = inst.V[j][i]
			}
			p.AddConstraint(row, lpsolve.GE, inst.Alpha)
		}
		// (1d) capacity ceiling.
		clear()
		for i := 0; i < n; i++ {
			row[j*n+i] = inst.Q[j][i]
		}
		p.AddConstraint(row, lpsolve.LE, inst.Beta)
	}
	// (1b) uniqueness.
	for i := 0; i < n; i++ {
		clear()
		for j := 0; j < m; j++ {
			row[j*n+i] = 1
		}
		p.AddConstraint(row, lpsolve.LE, 1)
	}
	// Coverage: x = 0 outside D_{m,t}.
	for j := 0; j < m; j++ {
		for i := 0; i < n; i++ {
			if !inst.Covered[j][i] {
				clear()
				row[j*n+i] = 1
				p.AddConstraint(row, lpsolve.EQ, 0)
			}
		}
	}
	return p.Solve(maxNodes)
}

// Assignment converts a solution of inst into assigned[i] = m (or -1).
func (inst *OffloadInstance) Assignment(sol Solution) []int {
	m := len(inst.G)
	if m == 0 || sol.X == nil {
		return nil
	}
	n := len(inst.G[0])
	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	for j := 0; j < m; j++ {
		for i := 0; i < n; i++ {
			if sol.X[j*n+i] == 1 {
				out[i] = j
			}
		}
	}
	return out
}
