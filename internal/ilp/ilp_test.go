package ilp

import (
	"math"
	"testing"

	"lfsc/internal/lpsolve"
	"lfsc/internal/rng"
)

func TestKnapsack(t *testing.T) {
	// max 6a + 10b + 12c s.t. a + 2b + 3c ≤ 5 (weights), binary.
	// Optimal: b + c = 22, weight 5.
	p := New(3)
	p.SetObjective([]float64{6, 10, 12})
	p.AddConstraint([]float64{1, 2, 3}, lpsolve.LE, 5)
	s := p.Solve(0)
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	if math.Abs(s.Objective-22) > 1e-6 {
		t.Fatalf("objective %v, want 22", s.Objective)
	}
	if s.X[0] != 0 || s.X[1] != 1 || s.X[2] != 1 {
		t.Fatalf("x = %v", s.X)
	}
}

func TestInfeasibleILP(t *testing.T) {
	p := New(2)
	p.SetObjective([]float64{1, 1})
	p.AddConstraint([]float64{1, 1}, lpsolve.GE, 3) // max is 2 with binaries
	s := p.Solve(0)
	if s.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", s.Status)
	}
}

func TestEqualityILP(t *testing.T) {
	// Exactly two of three chosen, maximise value.
	p := New(3)
	p.SetObjective([]float64{5, 1, 3})
	p.AddConstraint([]float64{1, 1, 1}, lpsolve.EQ, 2)
	s := p.Solve(0)
	if s.Status != Optimal || math.Abs(s.Objective-8) > 1e-6 {
		t.Fatalf("got %v %v, want optimal 8", s.Status, s.Objective)
	}
}

func TestNodeLimit(t *testing.T) {
	// A problem needing branching, with a 1-node budget.
	p := New(6)
	p.SetObjective([]float64{3, 5, 6, 9, 10, 10})
	p.AddConstraint([]float64{2, 3, 4, 5, 6, 7}, lpsolve.LE, 11)
	s := p.Solve(1)
	if s.Status != NodeLimit {
		t.Fatalf("status %v, want node-limit", s.Status)
	}
}

// bruteForce enumerates all 2^n points.
func bruteForce(p *Problem, cons []constraint, obj []float64) (float64, bool) {
	n := p.NumVars()
	best := math.Inf(-1)
	found := false
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for _, c := range cons {
			lhs := 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					lhs += c.coefs[i]
				}
			}
			switch c.sense {
			case lpsolve.LE:
				ok = ok && lhs <= c.rhs+1e-9
			case lpsolve.GE:
				ok = ok && lhs >= c.rhs-1e-9
			case lpsolve.EQ:
				ok = ok && math.Abs(lhs-c.rhs) <= 1e-9
			}
		}
		if !ok {
			continue
		}
		found = true
		v := 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v += obj[i]
			}
		}
		if v > best {
			best = v
		}
	}
	return best, found
}

func TestRandomILPsAgainstBruteForce(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 150; trial++ {
		n := 2 + r.Intn(8)
		p := New(n)
		obj := make([]float64, n)
		for i := range obj {
			obj[i] = r.Uniform(-1, 2)
		}
		p.SetObjective(obj)
		nc := 1 + r.Intn(3)
		for k := 0; k < nc; k++ {
			coefs := make([]float64, n)
			for i := range coefs {
				coefs[i] = r.Uniform(0, 2)
			}
			sense := lpsolve.LE
			rhs := r.Uniform(1, float64(n))
			if r.Bernoulli(0.3) {
				sense = lpsolve.GE
				rhs = r.Uniform(0, 2)
			}
			p.AddConstraint(coefs, sense, rhs)
		}
		want, feasible := bruteForce(p, p.cons, obj)
		s := p.Solve(0)
		if !feasible {
			if s.Status != Infeasible {
				t.Fatalf("trial %d: brute force infeasible, solver says %v", trial, s.Status)
			}
			continue
		}
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, s.Status)
		}
		if math.Abs(s.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: bnb %v != brute force %v", trial, s.Objective, want)
		}
	}
}

func buildRandomOffload(r *rng.Stream, m, n int) *OffloadInstance {
	inst := &OffloadInstance{
		G: make([][]float64, m), V: make([][]float64, m),
		Q: make([][]float64, m), Covered: make([][]bool, m),
		C: 2, Alpha: 0.5, Beta: 3.0,
	}
	for j := 0; j < m; j++ {
		inst.G[j] = make([]float64, n)
		inst.V[j] = make([]float64, n)
		inst.Q[j] = make([]float64, n)
		inst.Covered[j] = make([]bool, n)
		for i := 0; i < n; i++ {
			inst.Covered[j][i] = r.Bernoulli(0.8)
			inst.V[j][i] = r.Float64()
			inst.Q[j][i] = r.Uniform(1, 2)
			inst.G[j][i] = r.Float64() * inst.V[j][i] / inst.Q[j][i]
		}
	}
	return inst
}

func TestOffloadInstanceFeasibilityOfSolution(t *testing.T) {
	r := rng.New(6)
	for trial := 0; trial < 30; trial++ {
		inst := buildRandomOffload(r, 2, 5)
		sol := inst.Solve(0)
		if sol.Status == Infeasible {
			continue // Alpha can make instances infeasible; fine.
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d status %v", trial, sol.Status)
		}
		// Check every constraint on the integral solution.
		n := 5
		for j := 0; j < 2; j++ {
			count, vsum, qsum := 0, 0.0, 0.0
			for i := 0; i < n; i++ {
				if sol.X[j*n+i] == 1 {
					if !inst.Covered[j][i] {
						t.Fatalf("assigned uncovered pair (%d,%d)", j, i)
					}
					count++
					vsum += inst.V[j][i]
					qsum += inst.Q[j][i]
				}
			}
			if count > inst.C {
				t.Fatalf("SCN %d over capacity", j)
			}
			if vsum < inst.Alpha-1e-6 {
				t.Fatalf("SCN %d below QoS floor: %v", j, vsum)
			}
			if qsum > inst.Beta+1e-6 {
				t.Fatalf("SCN %d over consumption: %v", j, qsum)
			}
		}
		for i := 0; i < n; i++ {
			if sol.X[i]+sol.X[n+i] > 1 {
				t.Fatalf("task %d assigned twice", i)
			}
		}
	}
}

func TestOffloadSoftQoS(t *testing.T) {
	r := rng.New(7)
	inst := buildRandomOffload(r, 2, 4)
	inst.Alpha = 100 // impossible hard floor
	if s := inst.Solve(0); s.Status != Infeasible {
		t.Fatalf("hard impossible QoS should be infeasible, got %v", s.Status)
	}
	inst.SoftQoS = true
	s := inst.Solve(0)
	if s.Status != Optimal {
		t.Fatalf("soft QoS should solve, got %v", s.Status)
	}
}

func TestOffloadAssignment(t *testing.T) {
	inst := &OffloadInstance{
		G:       [][]float64{{0.9, 0.1}},
		V:       [][]float64{{1, 1}},
		Q:       [][]float64{{1, 1}},
		Covered: [][]bool{{true, true}},
		C:       1, Alpha: 0, Beta: 10,
	}
	sol := inst.Solve(0)
	asn := inst.Assignment(sol)
	if asn[0] != 0 || asn[1] != -1 {
		t.Fatalf("assignment %v", asn)
	}
	empty := &OffloadInstance{}
	if empty.Assignment(empty.Solve(0)) != nil {
		t.Fatal("empty instance assignment should be nil")
	}
}

func TestValidationPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("New(0)", func() { New(0) })
	assertPanics("objective mismatch", func() { New(2).SetObjective([]float64{1}) })
	assertPanics("constraint mismatch", func() { New(2).AddConstraint([]float64{1}, lpsolve.LE, 1) })
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{Optimal, Infeasible, NodeLimit, Status(9)} {
		if s.String() == "" {
			t.Fatal("empty status string")
		}
	}
}

func BenchmarkOffloadSmall(b *testing.B) {
	r := rng.New(8)
	inst := buildRandomOffload(r, 3, 6)
	inst.SoftQoS = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = inst.Solve(0)
	}
}
