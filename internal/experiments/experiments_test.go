package experiments

import (
	"strings"
	"testing"
)

// testOptions keeps experiment tests fast: the shape checks in Notes are
// asserted at full scale by the benchmark harness, not here.
func testOptions() Options {
	return Options{T: 300, Seed: 7, ChartWidth: 40, ChartHeight: 8}
}

func TestRunBaseAndFigures(t *testing.T) {
	b, err := RunBase(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Series) != 5 {
		t.Fatalf("base has %d series", len(b.Series))
	}
	for _, name := range []string{"Oracle", "LFSC", "vUCB", "FML", "Random"} {
		if b.ByName[name] == nil {
			t.Fatalf("missing %s", name)
		}
	}
	for _, f := range []func(*Base) *Result{Fig2a, Fig2b, Fig2c, Ratio} {
		r := f(b)
		if r.ID == "" || r.Title == "" || r.Table == nil {
			t.Fatalf("experiment %q incomplete", r.ID)
		}
		if len(r.Notes) == 0 {
			t.Fatalf("experiment %q has no shape checks", r.ID)
		}
		if r.Table.String() == "" {
			t.Fatalf("experiment %q renders empty table", r.ID)
		}
		if len(r.CSVHeaders) != len(r.CSVSeries) {
			t.Fatalf("experiment %q CSV mismatch", r.ID)
		}
	}
}

func TestFig2aHasChartsAndCSV(t *testing.T) {
	b, err := RunBase(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := Fig2a(b)
	if len(r.Charts) != 1 {
		t.Fatal("fig2a should have one chart")
	}
	if len(r.CSVSeries) != 5 || len(r.CSVSeries[0]) != 300 {
		t.Fatalf("fig2a CSV shape wrong: %d x %d", len(r.CSVSeries), len(r.CSVSeries[0]))
	}
	// Cumulative series must be non-decreasing.
	for _, s := range r.CSVSeries {
		for i := 1; i < len(s); i++ {
			if s[i] < s[i-1]-1e-9 {
				t.Fatal("cumulative reward decreased")
			}
		}
	}
}

func TestFig3SweepShape(t *testing.T) {
	opts := testOptions()
	opts.T = 120
	r, err := Fig3(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "fig3" {
		t.Fatal("id")
	}
	// 5 policies × 2 series each.
	if len(r.CSVSeries) != 10 {
		t.Fatalf("fig3 series count %d", len(r.CSVSeries))
	}
	for _, s := range r.CSVSeries {
		if len(s) != 5 { // five α values
			t.Fatalf("fig3 sweep length %d", len(s))
		}
	}
	if len(r.Charts) != 2 {
		t.Fatal("fig3 charts")
	}
}

func TestFig4SweepShape(t *testing.T) {
	opts := testOptions()
	opts.T = 120
	r, err := Fig4(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CSVSeries) != 10 {
		t.Fatalf("fig4 series count %d", len(r.CSVSeries))
	}
	for _, s := range r.CSVSeries {
		if len(s) != 4 { // four likelihood ranges
			t.Fatalf("fig4 sweep length %d", len(s))
		}
	}
}

func TestAblations(t *testing.T) {
	opts := testOptions()
	opts.T = 150
	for _, id := range []string{"abl-lagrangian", "abl-capping", "abl-selection"} {
		runner := Registry()[id]
		r, err := runner(opts)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if r.Table == nil || len(r.Notes) == 0 {
			t.Fatalf("%s incomplete", id)
		}
	}
}

func TestAblationGranularity(t *testing.T) {
	opts := testOptions()
	opts.T = 120
	r, err := AblationGranularity(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CSVSeries) != 3 || len(r.CSVSeries[0]) != 4 {
		t.Fatalf("granularity CSV shape wrong")
	}
}

func TestAblationNonstationary(t *testing.T) {
	opts := testOptions()
	opts.T = 200
	r, err := AblationNonstationary(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Table.String(), "piecewise") {
		t.Fatal("missing piecewise row")
	}
}

func TestAblationGreedyVsExact(t *testing.T) {
	r, err := AblationGreedyVsExact(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Mean ratios must respect the Lemma-2 bound by a wide margin.
	for i, ratio := range r.CSVSeries[1] {
		if ratio < 0.5 {
			t.Fatalf("capacity index %d: greedy ratio %v suspiciously low", i, ratio)
		}
		if ratio > 1+1e-9 {
			t.Fatalf("greedy ratio %v exceeds optimal", ratio)
		}
	}
	if len(r.Notes) == 0 {
		t.Fatal("no notes")
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	for _, id := range Order() {
		if reg[id] == nil {
			t.Fatalf("experiment %q not in registry", id)
		}
	}
	if len(reg) != len(Order()) {
		t.Fatalf("registry has %d entries, order lists %d", len(reg), len(Order()))
	}
}

func TestNotesFormat(t *testing.T) {
	r := &Result{}
	r.note(true, "x = %d", 5)
	r.note(false, "y")
	if r.Notes[0] != "PASS: x = 5" || r.Notes[1] != "WARN: y" {
		t.Fatalf("notes = %v", r.Notes)
	}
}

func TestOptionsFill(t *testing.T) {
	o := Options{}
	o.fill()
	if o.T != 10000 || o.ChartWidth <= 0 || o.ChartHeight <= 0 {
		t.Fatalf("fill defaults wrong: %+v", o)
	}
}

func TestTheorem1(t *testing.T) {
	opts := testOptions()
	opts.T = 400
	r, err := Theorem1(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "thm1" || len(r.Notes) == 0 {
		t.Fatal("thm1 incomplete")
	}
	if len(r.CSVSeries) != 2 || len(r.CSVSeries[0]) != 3 {
		t.Fatalf("thm1 CSV shape wrong: %d x %d", len(r.CSVSeries), len(r.CSVSeries[0]))
	}
}

func TestStressSweep(t *testing.T) {
	opts := testOptions()
	opts.T = 150
	r, err := StressSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "abl-stress" {
		t.Fatal("id")
	}
	if len(r.CSVSeries[0]) != 3 {
		t.Fatal("stress sweep should cover three patterns")
	}
	if !strings.Contains(r.Table.String(), "flashcrowd") {
		t.Fatal("missing flash crowd row")
	}
}
