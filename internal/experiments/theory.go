package experiments

import (
	"fmt"
	"math"

	"lfsc/internal/report"
	"lfsc/internal/rng"
	"lfsc/internal/sim"
	"lfsc/internal/trace"
)

// Theorem1 empirically probes the paper's analytical claim (Theorem 1):
// both the regret R(T) and the violations V1(T), V2(T) of LFSC grow
// sub-linearly in T. It runs LFSC and the Oracle at increasing horizons,
// fits the growth exponent of the cumulative regret and violation
// trajectories on log-log axes, and checks the fitted exponents stay
// below 1 and the per-slot averages R(T)/T shrink with T.
func Theorem1(opts Options) (*Result, error) {
	opts.fill()
	r := &Result{ID: "thm1", Title: "Theorem 1 — sub-linear regret and violations"}
	// Horizon ladder up to the requested T.
	horizons := []int{opts.T / 4, opts.T / 2, opts.T}
	tbl := report.NewTable("Regret and violations vs. horizon",
		"T", "regret R(T)", "R(T)/T", "violations V(T)", "V(T)/T", "regret exp", "viol exp")
	var regPerSlot, violPerSlot []float64
	var lastRegExp, lastViolExp float64
	for _, T := range horizons {
		if T < 10 {
			T = 10
		}
		sc := sim.PaperScenario()
		sc.Cfg.T = T
		series, err := sim.RunAll(sc, []sim.Factory{
			sim.LFSCFactory(nil), sim.OracleFactory(false),
		}, opts.Seed, opts.Workers)
		if err != nil {
			return nil, err
		}
		lfsc, oracle := series[0], series[1]
		regret := lfsc.RegretVs(oracle)
		finalRegret := regret[len(regret)-1]
		viol := lfsc.TotalViolations()
		regExp := lfsc.RegretExponent(oracle)
		violExp := lfsc.ViolationExponent()
		tbl.AddRowf(T, finalRegret, finalRegret/float64(T), viol, viol/float64(T),
			regExp, violExp)
		regPerSlot = append(regPerSlot, finalRegret/float64(T))
		violPerSlot = append(violPerSlot, viol/float64(T))
		lastRegExp, lastViolExp = regExp, violExp
	}
	r.Table = tbl
	r.CSVHeaders = []string{"regret_per_slot", "violations_per_slot"}
	r.CSVSeries = [][]float64{regPerSlot, violPerSlot}
	n := len(violPerSlot)
	r.note(violPerSlot[n-1] < violPerSlot[0],
		"per-slot violations shrink with the horizon (%.2f → %.2f): sub-linear V(T)",
		violPerSlot[0], violPerSlot[n-1])
	r.note(!math.IsNaN(lastViolExp) && lastViolExp < 1,
		"fitted violation growth exponent %.2f < 1", lastViolExp)
	if math.IsNaN(lastRegExp) {
		r.note(true, "regret never turned positive (trivially sub-linear)")
	} else {
		r.note(lastRegExp < 1, "fitted regret growth exponent %.2f (< 1 means sub-linear)", lastRegExp)
	}
	r.note(regPerSlot[n-1] <= regPerSlot[0]+1e-9,
		"per-slot regret non-increasing with horizon (%.2f → %.2f)",
		regPerSlot[0], regPerSlot[n-1])
	return r, nil
}

// StressSweep runs LFSC and the strongest baseline (vUCB) under the three
// adversarial load patterns of internal/trace: diurnal cycles, rotating
// hotspots, and flash crowds. The paper's workload is i.i.d. per slot;
// this probes whether LFSC's equilibria track structured load shifts.
func StressSweep(opts Options) (*Result, error) {
	opts.fill()
	r := &Result{ID: "abl-stress", Title: "Ablation — adversarial load patterns (diurnal / hotspot / flash crowd)"}
	kinds := []trace.StressKind{trace.Diurnal, trace.Hotspot, trace.FlashCrowd}
	tbl := report.NewTable("Stress workloads (total reward | violations)",
		"pattern", "LFSC", "vUCB", "Random", "LFSC ratio", "vUCB ratio")
	var lfscRatios, vucbRatios []float64
	for _, kind := range kinds {
		k := kind
		sc := sim.PaperScenario()
		sc.Cfg.T = opts.T
		sc.NewGenerator = func(rs *rng.Stream) (trace.Generator, error) {
			return trace.NewStress(trace.StressConfig{
				Base: trace.DefaultSyntheticConfig(),
				Kind: k,
			}, rs)
		}
		series, err := sim.RunAll(sc, []sim.Factory{
			sim.LFSCFactory(nil), sim.VUCBFactory(), sim.RandomFactory(),
		}, opts.Seed, opts.Workers)
		if err != nil {
			return nil, err
		}
		lf, ucb, rnd := series[0], series[1], series[2]
		tbl.AddRow(kind.String(),
			fmt.Sprintf("%.3g | %.3g", lf.TotalReward(), lf.TotalViolations()),
			fmt.Sprintf("%.3g | %.3g", ucb.TotalReward(), ucb.TotalViolations()),
			fmt.Sprintf("%.3g | %.3g", rnd.TotalReward(), rnd.TotalViolations()),
			fmt.Sprintf("%.3f", lf.PerformanceRatio()),
			fmt.Sprintf("%.3f", ucb.PerformanceRatio()))
		lfscRatios = append(lfscRatios, lf.PerformanceRatio())
		vucbRatios = append(vucbRatios, ucb.PerformanceRatio())
	}
	r.Table = tbl
	r.CSVHeaders = []string{"lfsc_ratio", "vucb_ratio"}
	r.CSVSeries = [][]float64{lfscRatios, vucbRatios}
	wins := 0
	for i := range lfscRatios {
		if lfscRatios[i] > vucbRatios[i] {
			wins++
		}
	}
	r.note(wins == len(kinds),
		"LFSC keeps the best performance ratio under %d/%d stress patterns", wins, len(kinds))
	return r, nil
}
