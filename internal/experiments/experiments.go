// Package experiments defines and runs the reproduction of every figure in
// the paper's evaluation (Sec. 5), plus the ablation studies listed in
// DESIGN.md §5. Each experiment returns a Result carrying the headline
// table, ASCII charts (the textual stand-in for the paper's figures), raw
// CSV series for external plotting, and shape-check notes that compare the
// measured behaviour against the paper's qualitative claims.
//
// Experiment ↔ paper mapping:
//
//	fig2a  — Fig. 2(a): cumulative compound reward vs. t, five policies
//	fig2b  — Fig. 2(b): per-slot compound reward vs. t (smoothed)
//	fig2c  — Fig. 2(c)/(d): cumulative violations of (1c) and (1d)
//	fig3   — Fig. 3: total reward and QoS violation vs. α ∈ {13..17}
//	fig4   — Fig. 4: different environments (likelihood ranges)
//	ratio  — Sec. 5 performance-ratio metric
//	abl-*  — ablations (granularity, lagrangian, capping, selection,
//	         nonstationary, greedy-vs-exact)
package experiments

import (
	"fmt"
	"math"

	"lfsc/internal/assign"
	"lfsc/internal/core"
	"lfsc/internal/env"
	"lfsc/internal/mcmf"
	"lfsc/internal/metrics"
	"lfsc/internal/obs"
	"lfsc/internal/report"
	"lfsc/internal/rng"
	"lfsc/internal/sim"
	"lfsc/internal/stats"
)

// Options configures an experiment run.
type Options struct {
	// T is the horizon; the paper uses 10000.
	T int
	// Seed drives workload, environment and policy randomness.
	Seed uint64
	// Workers bounds parallelism (0 = all cores).
	Workers int
	// ChartWidth/ChartHeight size the ASCII figures.
	ChartWidth, ChartHeight int
	// Obs optionally wires the observability layer (phase probe, live run
	// registry, snapshot sinks) into every simulation an experiment runs.
	Obs *obs.Options
}

// DefaultOptions returns the paper's horizon with a fixed seed.
func DefaultOptions() Options {
	return Options{T: 10000, Seed: 42, ChartWidth: 72, ChartHeight: 14}
}

func (o *Options) fill() {
	if o.T <= 0 {
		o.T = 10000
	}
	if o.ChartWidth <= 0 {
		o.ChartWidth = 72
	}
	if o.ChartHeight <= 0 {
		o.ChartHeight = 14
	}
}

// Result is the output of one experiment.
type Result struct {
	// ID is the experiment identifier (e.g. "fig2a").
	ID string
	// Title describes the paper artifact being reproduced.
	Title string
	// Table is the headline data table.
	Table *report.Table
	// Charts are ASCII renderings of the figure.
	Charts []*report.LineChart
	// CSVHeaders/CSVSeries hold the raw series for CSV export.
	CSVHeaders []string
	CSVSeries  [][]float64
	// Notes records shape checks against the paper's claims
	// ("PASS: ..."/"WARN: ...").
	Notes []string
}

func (r *Result) note(ok bool, format string, args ...interface{}) {
	prefix := "PASS"
	if !ok {
		prefix = "WARN"
	}
	r.Notes = append(r.Notes, fmt.Sprintf("%s: %s", prefix, fmt.Sprintf(format, args...)))
}

// Base is one full five-policy run of the paper scenario; Fig. 2 and the
// performance ratio all derive from it.
type Base struct {
	Opts   Options
	Series []*metrics.Series
	ByName map[string]*metrics.Series
}

// RunBase simulates the five policies of Sec. 5 on the paper scenario.
func RunBase(opts Options) (*Base, error) {
	opts.fill()
	sc := sim.PaperScenario()
	sc.Cfg.T = opts.T
	sc.Cfg.Obs = opts.Obs
	series, err := sim.RunAll(sc, sim.StandardFactories(), opts.Seed, opts.Workers)
	if err != nil {
		return nil, err
	}
	b := &Base{Opts: opts, Series: series, ByName: map[string]*metrics.Series{}}
	for _, s := range series {
		b.ByName[s.Policy] = s
	}
	return b, nil
}

// Fig2a reproduces Fig. 2(a): cumulative compound reward over time.
func Fig2a(b *Base) *Result {
	r := &Result{ID: "fig2a", Title: "Fig. 2(a) — cumulative compound reward vs. time"}
	chart := report.NewLineChart(r.Title, b.Opts.ChartWidth, b.Opts.ChartHeight)
	tbl := report.NewTable("Final cumulative compound reward",
		"policy", "total reward", "vs Oracle")
	oracle := b.ByName["Oracle"]
	for _, s := range b.Series {
		cum := s.CumReward()
		chart.Add(s.Policy, cum)
		r.CSVHeaders = append(r.CSVHeaders, s.Policy)
		r.CSVSeries = append(r.CSVSeries, cum)
		tbl.AddRowf(s.Policy, s.TotalReward(),
			fmt.Sprintf("%.1f%%", 100*s.TotalReward()/oracle.TotalReward()))
	}
	r.Table = tbl
	r.Charts = []*report.LineChart{chart}
	lfsc := b.ByName["LFSC"]
	r.note(lfsc.TotalReward() >= 0.80*oracle.TotalReward(),
		"LFSC cumulative reward tracks Oracle closely (%.1f%%; paper: almost identical)",
		100*lfsc.TotalReward()/oracle.TotalReward())
	r.note(b.ByName["vUCB"].TotalReward() > oracle.TotalReward() &&
		b.ByName["FML"].TotalReward() > oracle.TotalReward(),
		"vUCB and FML raw reward above Oracle (they ignore constraints (1c)/(1d))")
	r.note(lfsc.TotalReward() > 1.5*b.ByName["Random"].TotalReward(),
		"LFSC well above Random (%.2fx)", lfsc.TotalReward()/b.ByName["Random"].TotalReward())
	return r
}

// Fig2b reproduces Fig. 2(b): per-slot compound reward (window-smoothed).
func Fig2b(b *Base) *Result {
	r := &Result{ID: "fig2b", Title: "Fig. 2(b) — per-time-slot compound reward (smoothed)"}
	window := b.Opts.T / 100
	if window < 1 {
		window = 1
	}
	chart := report.NewLineChart(r.Title, b.Opts.ChartWidth, b.Opts.ChartHeight)
	tbl := report.NewTable(fmt.Sprintf("Per-slot reward by phase (window=%d)", window),
		"policy", "first 10%", "mid 50%", "last 10%")
	for _, s := range b.Series {
		smooth := s.WindowReward(window)
		chart.Add(s.Policy, smooth)
		r.CSVHeaders = append(r.CSVHeaders, s.Policy)
		r.CSVSeries = append(r.CSVSeries, smooth)
		T := s.T()
		tbl.AddRowf(s.Policy,
			stats.Mean(s.Reward[:T/10]),
			stats.Mean(s.Reward[2*T/5:3*T/5]),
			stats.Mean(s.Reward[T-T/10:]))
	}
	r.Table = tbl
	r.Charts = []*report.LineChart{chart}
	lfsc, oracle := b.ByName["LFSC"], b.ByName["Oracle"]
	T := lfsc.T()
	early := stats.Mean(lfsc.Reward[:T/10]) / stats.Mean(oracle.Reward[:T/10])
	late := stats.Mean(lfsc.Reward[T-T/10:]) / stats.Mean(oracle.Reward[T-T/10:])
	r.note(late > early, "LFSC per-slot reward approaches Oracle over time (%.1f%% → %.1f%%)",
		100*early, 100*late)
	r.note(late >= 0.80, "late-phase LFSC within 20%% of Oracle (%.1f%%)", 100*late)
	return r
}

// Fig2c reproduces the violation figures: cumulative violations of (1c)
// and (1d) over time, and the early-stage violation ratios the paper
// quotes (LFSC ≈ 30%/32%/20% of vUCB/FML/Random).
func Fig2c(b *Base) *Result {
	r := &Result{ID: "fig2c", Title: "Fig. 2(c,d) — cumulative constraint violations vs. time"}
	chartV1 := report.NewLineChart("Cumulative QoS violations V1 (constraint 1c)",
		b.Opts.ChartWidth, b.Opts.ChartHeight)
	chartV2 := report.NewLineChart("Cumulative resource violations V2 (constraint 1d)",
		b.Opts.ChartWidth, b.Opts.ChartHeight)
	tbl := report.NewTable("Total violations", "policy", "V1 (QoS)", "V2 (resource)", "V1+V2")
	for _, s := range b.Series {
		chartV1.Add(s.Policy, s.CumV1())
		chartV2.Add(s.Policy, s.CumV2())
		r.CSVHeaders = append(r.CSVHeaders, s.Policy+"_V1", s.Policy+"_V2")
		r.CSVSeries = append(r.CSVSeries, s.CumV1(), s.CumV2())
		tbl.AddRowf(s.Policy, s.TotalV1(), s.TotalV2(), s.TotalViolations())
	}
	r.Table = tbl
	r.Charts = []*report.LineChart{chartV1, chartV2}
	// Early-stage ratio: cumulative violations over the first fifth.
	T := b.Opts.T
	early := func(s *metrics.Series) float64 {
		return stats.Sum(s.V1[:T/5]) + stats.Sum(s.V2[:T/5])
	}
	lf := early(b.ByName["LFSC"])
	for _, other := range []string{"vUCB", "FML", "Random"} {
		ratio := lf / early(b.ByName[other])
		r.note(ratio < 0.75,
			"early-stage LFSC violations are %.0f%% of %s's (paper: 30%%/32%%/20%%)",
			100*ratio, other)
	}
	lfsc := b.ByName["LFSC"]
	firstHalf := stats.Sum(lfsc.V1[:T/2]) + stats.Sum(lfsc.V2[:T/2])
	secondHalf := stats.Sum(lfsc.V1[T/2:]) + stats.Sum(lfsc.V2[T/2:])
	r.note(secondHalf < firstHalf,
		"LFSC per-slot violations decrease over time (%.0f first half vs %.0f second half)",
		firstHalf, secondHalf)
	return r
}

// Ratio reproduces the Sec. 5 performance-ratio comparison.
func Ratio(b *Base) *Result {
	r := &Result{ID: "ratio", Title: "Sec. 5 — performance ratio (reward / (1 + violations))"}
	tbl := report.NewTable("Performance ratio", "policy", "reward", "violations", "ratio")
	best := ""
	bestRatio := math.Inf(-1)
	var lfscRatio float64
	for _, s := range b.Series {
		ratio := s.PerformanceRatio()
		tbl.AddRowf(s.Policy, s.TotalReward(), s.TotalViolations(), ratio)
		if s.Policy != "Oracle" && ratio > bestRatio {
			best, bestRatio = s.Policy, ratio
		}
		if s.Policy == "LFSC" {
			lfscRatio = ratio
		}
		r.CSVHeaders = append(r.CSVHeaders, s.Policy)
		r.CSVSeries = append(r.CSVSeries, []float64{ratio})
	}
	r.Table = tbl
	r.note(best == "LFSC", "LFSC has the best performance ratio among learners (%s: %.3f)", best, bestRatio)
	r.note(lfscRatio > b.ByName["Random"].PerformanceRatio(),
		"LFSC ratio above Random")
	return r
}

// Fig3 reproduces Fig. 3: impact of the QoS floor α ∈ {13,…,17} on total
// reward and QoS violation.
func Fig3(opts Options) (*Result, error) {
	opts.fill()
	r := &Result{ID: "fig3", Title: "Fig. 3 — total reward and QoS violation vs. α"}
	alphas := []float64{13, 14, 15, 16, 17}
	factories := sim.StandardFactories()
	names := []string{"Oracle", "LFSC", "vUCB", "FML", "Random"}
	rewards := make(map[string][]float64)
	violations := make(map[string][]float64)
	for _, alpha := range alphas {
		sc := sim.PaperScenario()
		sc.Cfg.T = opts.T
		sc.Cfg.Obs = opts.Obs
		sc.Cfg.Alpha = alpha
		series, err := sim.RunAll(sc, factories, opts.Seed, opts.Workers)
		if err != nil {
			return nil, err
		}
		for _, s := range series {
			rewards[s.Policy] = append(rewards[s.Policy], s.TotalReward())
			violations[s.Policy] = append(violations[s.Policy], s.TotalV1())
		}
	}
	tbl := report.NewTable("Total reward | V1 violation by α",
		"policy", "α=13", "α=14", "α=15", "α=16", "α=17")
	for _, name := range names {
		cells := []interface{}{name}
		for i := range alphas {
			cells = append(cells, fmt.Sprintf("%.0f | %.0f", rewards[name][i], violations[name][i]))
		}
		tbl.AddRowf(cells...)
	}
	r.Table = tbl
	chR := report.NewLineChart("Total reward vs α (x-axis: α=13..17)", opts.ChartWidth, opts.ChartHeight)
	chV := report.NewLineChart("Total V1 violation vs α", opts.ChartWidth, opts.ChartHeight)
	for _, name := range names {
		chR.Add(name, rewards[name])
		chV.Add(name, violations[name])
		r.CSVHeaders = append(r.CSVHeaders, name+"_reward", name+"_V1")
		r.CSVSeries = append(r.CSVSeries, rewards[name], violations[name])
	}
	r.Charts = []*report.LineChart{chR, chV}
	// Shape checks per the paper's discussion of Fig. 3.
	or := rewards["Oracle"]
	r.note(or[len(or)-1] <= or[0],
		"Oracle total reward decreases as α tightens (%.0f → %.0f)", or[0], or[len(or)-1])
	lf := rewards["LFSC"]
	r.note(lf[len(lf)-1] <= lf[0],
		"LFSC total reward decreases as α grows (%.0f → %.0f; paper decreases — our learner "+
			"benefits slightly from constraint pressure because high-likelihood cells also carry "+
			"high compound reward)", lf[0], lf[len(lf)-1])
	vSpreadV, vSpreadF := spread(rewards["vUCB"]), spread(rewards["FML"])
	r.note(vSpreadV < 0.02 && vSpreadF < 0.02,
		"vUCB/FML rewards flat in α (they ignore it): spreads %.2f%%, %.2f%%",
		100*vSpreadV, 100*vSpreadF)
	incAll := true
	for _, name := range names {
		v := violations[name]
		if v[len(v)-1] < v[0] {
			incAll = false
		}
	}
	r.note(incAll, "violations increase with α for all policies")
	lfGrowth := violations["LFSC"][len(alphas)-1] - violations["LFSC"][0]
	ucbGrowth := violations["vUCB"][len(alphas)-1] - violations["vUCB"][0]
	r.note(lfGrowth < ucbGrowth,
		"LFSC violation grows more slowly with α than vUCB (+%.0f vs +%.0f)", lfGrowth, ucbGrowth)
	return r, nil
}

func spread(xs []float64) float64 {
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == 0 {
		return 0
	}
	return (hi - lo) / hi
}

// Fig4 reproduces the "different environments" study: the support of the
// completion likelihood V is varied, changing how hostile the mmWave
// channel is.
func Fig4(opts Options) (*Result, error) {
	opts.fill()
	r := &Result{ID: "fig4", Title: "Fig. 4 — impact of the likelihood range on reward and violations"}
	ranges := [][2]float64{{0, 1}, {0.1, 0.9}, {0.3, 1.0}, {0.5, 1.0}}
	labels := []string{"[0,1]", "[.1,.9]", "[.3,1]", "[.5,1]"}
	names := []string{"Oracle", "LFSC", "vUCB", "FML", "Random"}
	rewards := make(map[string][]float64)
	violations := make(map[string][]float64)
	for _, vr := range ranges {
		sc := sim.PaperScenario()
		sc.Cfg.T = opts.T
		sc.Cfg.Obs = opts.Obs
		sc.EnvCfg.VRange = vr
		series, err := sim.RunAll(sc, sim.StandardFactories(), opts.Seed, opts.Workers)
		if err != nil {
			return nil, err
		}
		for _, s := range series {
			rewards[s.Policy] = append(rewards[s.Policy], s.TotalReward())
			violations[s.Policy] = append(violations[s.Policy], s.TotalViolations())
		}
	}
	tbl := report.NewTable("Total reward | total violations by V support",
		append([]string{"policy"}, labels...)...)
	for _, name := range names {
		cells := []interface{}{name}
		for i := range ranges {
			cells = append(cells, fmt.Sprintf("%.0f | %.0f", rewards[name][i], violations[name][i]))
		}
		tbl.AddRowf(cells...)
	}
	r.Table = tbl
	chR := report.NewLineChart("Total reward vs V support (x: [0,1],[.1,.9],[.3,1],[.5,1])",
		opts.ChartWidth, opts.ChartHeight)
	for _, name := range names {
		chR.Add(name, rewards[name])
		r.CSVHeaders = append(r.CSVHeaders, name+"_reward", name+"_viol")
		r.CSVSeries = append(r.CSVSeries, rewards[name], violations[name])
	}
	r.Charts = []*report.LineChart{chR}
	// Friendlier channels (higher V floor) mean more completions:
	// violations fall and rewards rise for every policy.
	for _, name := range names {
		v := violations[name]
		r.note(v[len(v)-1] < v[0],
			"%s violations fall as the likelihood floor rises (%.0f → %.0f)",
			name, v[0], v[len(v)-1])
	}
	lf, or := rewards["LFSC"], rewards["Oracle"]
	worst := 1.0
	for i := range lf {
		if ratio := lf[i] / or[i]; ratio < worst {
			worst = ratio
		}
	}
	r.note(worst > 0.7, "LFSC stays within 30%% of Oracle across environments (worst %.1f%%)",
		100*worst)
	return r, nil
}

// AblationLagrangian isolates the effect of the Lagrangian multipliers
// (design §4.1): LFSC with λ frozen at zero is a pure Exp3.M that chases
// compound reward only.
func AblationLagrangian(opts Options) (*Result, error) {
	opts.fill()
	r := &Result{ID: "abl-lagrangian", Title: "Ablation — Lagrangian multipliers on/off"}
	sc := sim.PaperScenario()
	sc.Cfg.T = opts.T
	sc.Cfg.Obs = opts.Obs
	series, err := sim.RunAll(sc, []sim.Factory{
		sim.LFSCFactory(nil),
		sim.LFSCFactory(func(c *core.Config) { c.DisableLagrangian = true }),
	}, opts.Seed, opts.Workers)
	if err != nil {
		return nil, err
	}
	full, noLam := series[0], series[1]
	noLam.Policy = "LFSC-noλ"
	tbl := report.NewTable("Lagrangian ablation", "variant", "reward", "V1", "V2", "ratio")
	for _, s := range []*metrics.Series{full, noLam} {
		tbl.AddRowf(s.Policy, s.TotalReward(), s.TotalV1(), s.TotalV2(), s.PerformanceRatio())
	}
	r.Table = tbl
	r.CSVHeaders = []string{"LFSC_viol", "LFSC-nolambda_viol"}
	r.CSVSeries = [][]float64{full.CumViolations(), noLam.CumViolations()}
	r.note(full.TotalViolations() < noLam.TotalViolations(),
		"multipliers reduce violations (%.0f vs %.0f)",
		full.TotalViolations(), noLam.TotalViolations())
	r.note(full.PerformanceRatio() > noLam.PerformanceRatio(),
		"multipliers improve the performance ratio (%.3f vs %.3f)",
		full.PerformanceRatio(), noLam.PerformanceRatio())
	return r, nil
}

// AblationCapping isolates the Exp3.M weight capping (Alg. 2 lines 6-14):
// without it a dominant hypercube's selection probability saturates and the
// importance-weighted estimates of everything else blow up in variance.
func AblationCapping(opts Options) (*Result, error) {
	opts.fill()
	r := &Result{ID: "abl-capping", Title: "Ablation — Exp3.M weight capping on/off"}
	sc := sim.PaperScenario()
	sc.Cfg.T = opts.T
	sc.Cfg.Obs = opts.Obs
	series, err := sim.RunAll(sc, []sim.Factory{
		sim.LFSCFactory(nil),
		sim.LFSCFactory(func(c *core.Config) { c.DisableCapping = true }),
	}, opts.Seed, opts.Workers)
	if err != nil {
		return nil, err
	}
	on, off := series[0], series[1]
	off.Policy = "LFSC-nocap"
	tbl := report.NewTable("Capping ablation", "variant", "reward", "violations", "ratio")
	for _, s := range []*metrics.Series{on, off} {
		tbl.AddRowf(s.Policy, s.TotalReward(), s.TotalViolations(), s.PerformanceRatio())
	}
	r.Table = tbl
	r.CSVHeaders = []string{"capped_reward", "uncapped_reward"}
	r.CSVSeries = [][]float64{on.CumReward(), off.CumReward()}
	r.note(on.PerformanceRatio() >= 0.9*off.PerformanceRatio(),
		"capping does not hurt the ratio (%.3f vs %.3f)", on.PerformanceRatio(), off.PerformanceRatio())
	return r, nil
}

// AblationGranularity sweeps the hypercube granularity h (design §4.2):
// h=1 collapses all contexts into one cell (context-blind), larger h
// learns finer distinctions but each cell sees less data.
func AblationGranularity(opts Options) (*Result, error) {
	opts.fill()
	r := &Result{ID: "abl-granularity", Title: "Ablation — context partition granularity h"}
	hs := []int{1, 2, 3, 5}
	tbl := report.NewTable("Granularity sweep", "h", "cells", "reward", "violations", "ratio")
	var ratios []float64
	var rewards []float64
	for _, h := range hs {
		sc := sim.PaperScenario()
		sc.Cfg.T = opts.T
		sc.Cfg.Obs = opts.Obs
		sc.Cfg.H = h
		series, err := sim.RunAll(sc, []sim.Factory{sim.LFSCFactory(nil)}, opts.Seed, opts.Workers)
		if err != nil {
			return nil, err
		}
		s := series[0]
		cells := h * h * h
		tbl.AddRowf(h, cells, s.TotalReward(), s.TotalViolations(), s.PerformanceRatio())
		ratios = append(ratios, s.PerformanceRatio())
		rewards = append(rewards, s.TotalReward())
	}
	r.Table = tbl
	r.CSVHeaders = []string{"h", "reward", "ratio"}
	hsF := make([]float64, len(hs))
	for i, h := range hs {
		hsF[i] = float64(h)
	}
	r.CSVSeries = [][]float64{hsF, rewards, ratios}
	r.note(ratios[2] > ratios[0],
		"contextual learning (h=3) beats context-blind (h=1): ratio %.3f vs %.3f",
		ratios[2], ratios[0])
	return r, nil
}

// AblationSelection compares the three selection modes (see core.SelectionMode).
func AblationSelection(opts Options) (*Result, error) {
	opts.fill()
	r := &Result{ID: "abl-selection", Title: "Ablation — selection mode (DepRound / race / deterministic)"}
	modes := []core.SelectionMode{core.DepRoundMode, core.Race, core.Deterministic}
	labels := []string{"DepRound", "Race", "Deterministic"}
	sc := sim.PaperScenario()
	sc.Cfg.T = opts.T
	sc.Cfg.Obs = opts.Obs
	var factories []sim.Factory
	for _, mode := range modes {
		m := mode
		factories = append(factories, sim.LFSCFactory(func(c *core.Config) { c.Mode = m }))
	}
	series, err := sim.RunAll(sc, factories, opts.Seed, opts.Workers)
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("Selection mode", "mode", "reward", "violations", "ratio")
	var ratios []float64
	for i, s := range series {
		s.Policy = labels[i]
		tbl.AddRowf(labels[i], s.TotalReward(), s.TotalViolations(), s.PerformanceRatio())
		ratios = append(ratios, s.PerformanceRatio())
		r.CSVHeaders = append(r.CSVHeaders, labels[i])
		r.CSVSeries = append(r.CSVSeries, s.CumReward())
	}
	r.Table = tbl
	r.note(ratios[0] > ratios[1],
		"DepRound beats the exponential race (ratio %.3f vs %.3f)", ratios[0], ratios[1])
	return r, nil
}

// AblationNonstationary stresses LFSC under drifting and piecewise reward
// processes (the paper's model allows non-stationary U).
func AblationNonstationary(opts Options) (*Result, error) {
	opts.fill()
	r := &Result{ID: "abl-nonstationary", Title: "Ablation — non-stationary reward processes"}
	modes := []env.Mode{env.Stationary, env.Drifting, env.Piecewise}
	tbl := report.NewTable("Non-stationarity", "mode", "LFSC reward", "Oracle reward", "LFSC/Oracle")
	var fracs []float64
	for _, mode := range modes {
		sc := sim.PaperScenario()
		sc.Cfg.T = opts.T
		sc.Cfg.Obs = opts.Obs
		sc.EnvCfg.Mode = mode
		sc.EnvCfg.SwitchEvery = opts.T / 4
		if sc.EnvCfg.SwitchEvery < 1 {
			sc.EnvCfg.SwitchEvery = 1
		}
		series, err := sim.RunAll(sc, []sim.Factory{
			sim.LFSCFactory(nil), sim.OracleFactory(false),
		}, opts.Seed, opts.Workers)
		if err != nil {
			return nil, err
		}
		lf, or := series[0], series[1]
		frac := lf.TotalReward() / or.TotalReward()
		fracs = append(fracs, frac)
		tbl.AddRowf(mode.String(), lf.TotalReward(), or.TotalReward(),
			fmt.Sprintf("%.1f%%", 100*frac))
	}
	r.Table = tbl
	r.CSVHeaders = []string{"stationary", "drifting", "piecewise"}
	r.CSVSeries = [][]float64{{fracs[0]}, {fracs[1]}, {fracs[2]}}
	r.note(fracs[1] > 0.5*fracs[0],
		"LFSC retains most of its edge under drift (%.1f%% vs %.1f%% of Oracle)",
		100*fracs[1], 100*fracs[0])
	return r, nil
}

// AblationGreedyVsExact measures the real approximation quality of the
// paper's greedy assignment (Alg. 4, Lemma 2 bound 1/(c+1)) against the
// exact min-cost-flow optimum on random bipartite instances.
func AblationGreedyVsExact(opts Options) (*Result, error) {
	opts.fill()
	r := &Result{ID: "abl-greedy", Title: "Ablation — greedy assignment vs. exact matching (Lemma 2)"}
	rs := rng.New(opts.Seed)
	capacities := []int{1, 2, 5, 10, 20}
	tbl := report.NewTable("Observed greedy/optimal ratio over 50 random instances",
		"capacity c", "mean ratio", "min ratio", "Lemma-2 bound 1/(c+1)")
	var means []float64
	for _, c := range capacities {
		var sum stats.Summary
		for trial := 0; trial < 50; trial++ {
			m := 3 + rs.Intn(6)
			n := 20 + rs.Intn(60)
			weights := make([][]float64, m)
			var edges []assign.Edge
			for j := range weights {
				weights[j] = make([]float64, n)
				for i := range weights[j] {
					if rs.Bernoulli(0.5) {
						w := rs.Uniform(0.01, 1)
						weights[j][i] = w
						edges = append(edges, assign.Edge{SCN: j, Task: i, W: w})
					} else {
						weights[j][i] = math.Inf(-1)
					}
				}
			}
			assigned := assign.Greedy(edges, m, n, c)
			greedyVal := assign.TotalWeight(assigned, func(j, i int) float64 { return weights[j][i] })
			_, optVal := mcmf.AssignMax(weights, n, c)
			if optVal > 0 {
				sum.Add(greedyVal / optVal)
			}
		}
		tbl.AddRowf(c, sum.Mean(), sum.Min(), 1/float64(c+1))
		means = append(means, sum.Mean())
	}
	r.Table = tbl
	capsF := make([]float64, len(capacities))
	for i, c := range capacities {
		capsF[i] = float64(c)
	}
	r.CSVHeaders = []string{"capacity", "mean_ratio"}
	r.CSVSeries = [][]float64{capsF, means}
	worst := means[0]
	for _, v := range means {
		if v < worst {
			worst = v
		}
	}
	r.note(worst > 0.9,
		"greedy is near-optimal in practice (worst mean ratio %.3f ≫ Lemma-2 bound)", worst)
	return r, nil
}

// Runner executes an experiment by id.
type Runner func(opts Options) (*Result, error)

// Registry maps experiment ids to runners. Figure experiments derived from
// the base run re-run it internally; cmd/lfscbench shares one base run
// across fig2a/fig2b/fig2c/ratio instead.
func Registry() map[string]Runner {
	fromBase := func(f func(*Base) *Result) Runner {
		return func(opts Options) (*Result, error) {
			b, err := RunBase(opts)
			if err != nil {
				return nil, err
			}
			return f(b), nil
		}
	}
	return map[string]Runner{
		"fig2a":             fromBase(Fig2a),
		"fig2b":             fromBase(Fig2b),
		"fig2c":             fromBase(Fig2c),
		"ratio":             fromBase(Ratio),
		"fig3":              Fig3,
		"fig4":              Fig4,
		"abl-lagrangian":    AblationLagrangian,
		"abl-capping":       AblationCapping,
		"abl-granularity":   AblationGranularity,
		"abl-selection":     AblationSelection,
		"abl-nonstationary": AblationNonstationary,
		"abl-greedy":        AblationGreedyVsExact,
		"abl-stress":        StressSweep,
		"thm1":              Theorem1,
	}
}

// Order lists experiment ids in presentation order.
func Order() []string {
	return []string{
		"fig2a", "fig2b", "fig2c", "fig3", "fig4", "ratio", "thm1",
		"abl-greedy", "abl-granularity", "abl-lagrangian",
		"abl-capping", "abl-selection", "abl-nonstationary", "abl-stress",
	}
}
