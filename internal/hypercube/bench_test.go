package hypercube

import (
	"testing"

	"lfsc/internal/rng"
	"lfsc/internal/task"
)

// BenchmarkHypercubeIndex measures context→cell mapping at slot granularity:
// one op indexes a full paper-scale slot (2000 contexts) through IndexAll,
// the hot path of Alg. 2 lines 1-5.
func BenchmarkHypercubeIndex(b *testing.B) {
	const numCtx = 2000
	p := MustNew(3, 3)
	r := rng.New(17)
	ctxs := make([]task.Context, numCtx)
	for i := range ctxs {
		ctxs[i] = task.Context{r.Float64(), r.Float64(), r.Float64()}
	}
	into := make([]int, numCtx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		into = p.IndexAll(ctxs, into)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*numCtx), "ns/index")
}
