package hypercube

import (
	"math"
	"testing"
	"testing/quick"

	"lfsc/internal/rng"
	"lfsc/internal/task"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3); err == nil {
		t.Fatal("dims=0 accepted")
	}
	if _, err := New(3, 0); err == nil {
		t.Fatal("h=0 accepted")
	}
	if _, err := New(30, 10); err == nil {
		t.Fatal("overflowing partition accepted")
	}
	p, err := New(3, 3)
	if err != nil || p.Cells() != 27 {
		t.Fatalf("3^3 partition: %v %v", p, err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(-1, 3)
}

func TestIndexBounds(t *testing.T) {
	p := MustNew(3, 3)
	r := rng.New(1)
	for i := 0; i < 10000; i++ {
		ctx := task.Context{r.Float64(), r.Float64(), r.Float64()}
		idx := p.Index(ctx)
		if idx < 0 || idx >= p.Cells() {
			t.Fatalf("index %d out of range for %v", idx, ctx)
		}
	}
}

func TestIndexEdgeCases(t *testing.T) {
	p := MustNew(2, 4)
	// 1.0 maps to the last cell, not out of range.
	if idx := p.Index(task.Context{1, 1}); idx != p.Cells()-1 {
		t.Fatalf("corner (1,1) → %d, want %d", idx, p.Cells()-1)
	}
	if idx := p.Index(task.Context{0, 0}); idx != 0 {
		t.Fatalf("corner (0,0) → %d, want 0", idx)
	}
}

func TestIndexCenterRoundTrip(t *testing.T) {
	for _, cfg := range []struct{ dims, h int }{{1, 1}, {1, 5}, {2, 3}, {3, 3}, {4, 2}} {
		p := MustNew(cfg.dims, cfg.h)
		for idx := 0; idx < p.Cells(); idx++ {
			if got := p.Index(p.Center(idx)); got != idx {
				t.Fatalf("partition %v: center of %d maps to %d", p, idx, got)
			}
		}
	}
}

func TestCoordsRoundTrip(t *testing.T) {
	p := MustNew(3, 4)
	for idx := 0; idx < p.Cells(); idx++ {
		coords := p.Coords(idx)
		back := 0
		for _, c := range coords {
			back = back*p.H() + c
		}
		if back != idx {
			t.Fatalf("coords round trip %d → %v → %d", idx, coords, back)
		}
	}
}

func TestSameCellContextsAreClose(t *testing.T) {
	// Property: any two contexts in the same cell are within sqrt(D)/h of
	// each other — the geometric fact the Hölder argument relies on.
	p := MustNew(3, 3)
	r := rng.New(2)
	maxDist := math.Sqrt(3) / 3
	for trial := 0; trial < 5000; trial++ {
		a := task.Context{r.Float64(), r.Float64(), r.Float64()}
		b := task.Context{r.Float64(), r.Float64(), r.Float64()}
		if p.Index(a) == p.Index(b) && a.Distance(b) > maxDist+1e-12 {
			t.Fatalf("same-cell contexts %v and %v at distance %v > %v",
				a, b, a.Distance(b), maxDist)
		}
	}
}

func TestIndexQuick(t *testing.T) {
	p := MustNew(2, 7)
	err := quick.Check(func(x, y float64) bool {
		fx := math.Abs(math.Mod(x, 1))
		fy := math.Abs(math.Mod(y, 1))
		idx := p.Index(task.Context{fx, fy})
		return idx >= 0 && idx < p.Cells() && p.Contains(idx, task.Context{fx, fy})
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIndexPanicsOnDimMismatch(t *testing.T) {
	p := MustNew(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch did not panic")
		}
	}()
	p.Index(task.Context{0.5})
}

func TestCoordsPanicsOutOfRange(t *testing.T) {
	p := MustNew(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index did not panic")
		}
	}()
	p.Coords(4)
}

func TestIndexAll(t *testing.T) {
	p := MustNew(2, 3)
	ctxs := []task.Context{{0, 0}, {0.5, 0.5}, {1, 1}}
	idx := p.IndexAll(ctxs, nil)
	if len(idx) != 3 {
		t.Fatalf("IndexAll length %d", len(idx))
	}
	for i, c := range ctxs {
		if idx[i] != p.Index(c) {
			t.Fatalf("IndexAll[%d] = %d, want %d", i, idx[i], p.Index(c))
		}
	}
	// Reuses capacity.
	buf := make([]int, 0, 8)
	idx2 := p.IndexAll(ctxs, buf)
	if cap(idx2) != 8 {
		t.Fatal("IndexAll did not reuse provided buffer")
	}
}

func TestSideLength(t *testing.T) {
	if MustNew(3, 4).SideLength() != 0.25 {
		t.Fatal("SideLength")
	}
}

func TestPaperConfiguration(t *testing.T) {
	// The paper's evaluation: 3 context dims (input, output, resource kind),
	// each split in 3 → 27 hypercubes; resource kinds land in distinct cells.
	p := MustNew(task.ContextDims, 3)
	if p.Cells() != 27 {
		t.Fatalf("paper partition cells = %d", p.Cells())
	}
	seen := map[int]bool{}
	for r := 0; r < task.NumResourceKinds; r++ {
		tk := &task.Task{InputMbit: 10, OutputMbit: 2, Resource: task.ResourceKind(r)}
		seen[p.Index(tk.Context())] = true
	}
	if len(seen) != 3 {
		t.Fatalf("resource kinds occupy %d cells, want 3", len(seen))
	}
}

func BenchmarkIndex(b *testing.B) {
	p := MustNew(3, 3)
	ctx := task.Context{0.3, 0.7, 0.5}
	for i := 0; i < b.N; i++ {
		_ = p.Index(ctx)
	}
}
