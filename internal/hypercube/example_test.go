package hypercube_test

import (
	"fmt"

	"lfsc/internal/hypercube"
	"lfsc/internal/task"
)

// ExamplePartition shows the paper's context partition: 3 dimensions split
// in 3 gives 27 hypercubes, and a task's context maps to one cell index.
func ExamplePartition() {
	p := hypercube.MustNew(task.ContextDims, 3)
	tk := &task.Task{InputMbit: 12, OutputMbit: 2, Resource: task.GPU}
	fmt.Println(p.Cells(), p.Index(tk.Context()))
	// Output: 27 13
}
