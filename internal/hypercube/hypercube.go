// Package hypercube implements the uniform partition of the context space
// used by LFSC (paper Sec. 4.2): Φ = [0,1]^{D_b} is divided into (h_T)^{D_b}
// identical hypercubes, and the learner maintains one weight and one set of
// parameter estimates per hypercube instead of per raw context. The partition
// is the device that tames the "massive contexts" problem: under the paper's
// Hölder continuity assumption, contexts in the same cell have similar
// expected feedback.
package hypercube

import (
	"fmt"

	"lfsc/internal/task"
)

// Partition is a uniform grid over [0,1]^dims with h cells per dimension.
// It is immutable after construction and safe for concurrent use.
type Partition struct {
	dims  int
	h     int
	cells int
}

// New creates a partition of the dims-dimensional unit cube with h parts per
// dimension. It returns an error for non-positive dims or h, and for
// partitions whose cell count overflows a practical table size.
func New(dims, h int) (*Partition, error) {
	if dims <= 0 {
		return nil, fmt.Errorf("hypercube: dims must be positive, got %d", dims)
	}
	if h <= 0 {
		return nil, fmt.Errorf("hypercube: h must be positive, got %d", h)
	}
	cells := 1
	for d := 0; d < dims; d++ {
		next := cells * h
		if next/h != cells || next > 1<<24 {
			return nil, fmt.Errorf("hypercube: partition %d^%d too large", h, dims)
		}
		cells = next
	}
	return &Partition{dims: dims, h: h, cells: cells}, nil
}

// MustNew is New but panics on error; for static configurations.
func MustNew(dims, h int) *Partition {
	p, err := New(dims, h)
	if err != nil {
		panic(err)
	}
	return p
}

// Dims returns the number of context dimensions D_b.
func (p *Partition) Dims() int { return p.dims }

// H returns the number of parts per dimension h_T.
func (p *Partition) H() int { return p.h }

// Cells returns the total number of hypercubes (h_T)^{D_b}.
func (p *Partition) Cells() int { return p.cells }

// Index maps a context to its hypercube index in [0, Cells()). Coordinates
// equal to 1.0 map into the last cell (cells are half-open except the last).
// It panics if the context dimension does not match the partition.
func (p *Partition) Index(ctx task.Context) int {
	if len(ctx) != p.dims {
		panic(fmt.Sprintf("hypercube: context dims %d != partition dims %d", len(ctx), p.dims))
	}
	idx := 0
	for d := 0; d < p.dims; d++ {
		c := int(ctx[d] * float64(p.h))
		if c < 0 {
			c = 0
		}
		if c >= p.h {
			c = p.h - 1
		}
		idx = idx*p.h + c
	}
	return idx
}

// IndexTask maps a task directly to its hypercube index without
// materializing the context vector on the heap: the coordinates are packed
// into a stack buffer via Task.AppendContext (the exact same normalisation
// expressions), so IndexTask(t, lat) == Index(ctx) bit-for-bit where ctx is
// the task's (possibly latency-extended) context. withLatency must match the
// partition's dimensionality (4 dims ⇔ true).
func (p *Partition) IndexTask(t *task.Task, withLatency bool) int {
	var buf [4]float64
	ctx := t.AppendContext(buf[:0], withLatency)
	return p.Index(ctx)
}

// Coords returns the per-dimension cell coordinates of hypercube idx,
// the inverse of the mixed-radix packing in Index.
func (p *Partition) Coords(idx int) []int {
	if idx < 0 || idx >= p.cells {
		panic(fmt.Sprintf("hypercube: index %d out of range [0,%d)", idx, p.cells))
	}
	coords := make([]int, p.dims)
	for d := p.dims - 1; d >= 0; d-- {
		coords[d] = idx % p.h
		idx /= p.h
	}
	return coords
}

// Center returns the geometric center of hypercube idx, useful as the
// representative context of a cell in reports and in the Oracle.
func (p *Partition) Center(idx int) task.Context {
	coords := p.Coords(idx)
	ctx := make(task.Context, p.dims)
	for d, c := range coords {
		ctx[d] = (float64(c) + 0.5) / float64(p.h)
	}
	return ctx
}

// SideLength returns the edge length 1/h_T of each hypercube.
func (p *Partition) SideLength() float64 { return 1 / float64(p.h) }

// Contains reports whether ctx falls inside hypercube idx.
func (p *Partition) Contains(idx int, ctx task.Context) bool {
	return p.Index(ctx) == idx
}

// IndexAll maps a batch of contexts, reusing the provided slice when it has
// sufficient capacity. Hot path of Alg. 2 lines 1-5.
func (p *Partition) IndexAll(ctxs []task.Context, into []int) []int {
	if cap(into) < len(ctxs) {
		into = make([]int, len(ctxs))
	}
	into = into[:len(ctxs)]
	for i, c := range ctxs {
		into[i] = p.Index(c)
	}
	return into
}

// String describes the partition.
func (p *Partition) String() string {
	return fmt.Sprintf("partition{dims=%d h=%d cells=%d}", p.dims, p.h, p.cells)
}
