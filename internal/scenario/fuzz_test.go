package scenario

import (
	"strings"
	"testing"
)

// FuzzScenarioParse hammers the config parser with arbitrary bytes:
// truncated files, duplicate keys, out-of-range slots and SCN ids must
// come back as errors, never as panics or unbounded allocations. Inputs
// that Parse+Validate accept must re-validate and build deterministically
// (two Builds from the same accepted config are digest-identical), and
// acceptance itself must be stable across the golden table that seeds
// the corpus.
func FuzzScenarioParse(f *testing.F) {
	for _, g := range goldenConfigs {
		f.Add(g.src)
	}
	f.Add("[sleep]\nperiod = 99999999999999999999\nduration = 1\n")
	f.Add("[churn]\nmean-up = 1e400\nmean-down = -0\n")
	f.Add("[blockage]\nrate = 0.5\nwidth = 2147483647\nduration = 1\n")
	f.Add("scns = 30\n[budget]\nperiod = 1\nalpha-min = 0.0000001\n")
	f.Add(strings.Repeat("[sleep]\nperiod=2\nduration=1\n", 300))
	f.Fuzz(func(t *testing.T, src string) {
		cfg, err := Parse([]byte(src))
		if err != nil {
			return
		}
		if err := cfg.Validate(30); err != nil {
			return
		}
		// Accepted configs must build, and build deterministically.
		a, errA := Build(cfg, 30, 64, 5, 17)
		b, errB := Build(cfg, 30, 64, 5, 17)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("Build nondeterministic: %v vs %v", errA, errB)
		}
		if errA != nil {
			// Only the capacity gate may fire after Validate passed.
			if !strings.Contains(errA.Error(), "capacity") {
				t.Fatalf("validated config failed Build: %v", errA)
			}
			return
		}
		if a.Digest() != b.Digest() {
			t.Fatalf("digest nondeterministic: %s vs %s", a.Digest(), b.Digest())
		}
		var v View
		for _, slot := range []int{0, 31, 63, 64, 1000} {
			a.ViewInto(slot, &v)
			if len(v.Up) != 30 {
				t.Fatalf("view has %d SCNs, want 30", len(v.Up))
			}
		}
	})
}
