package scenario

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Config file format (stdlib-only, line-based):
//
//	# comment lines start with '#'
//	scns = 30            # optional: pin the topology size
//
//	[sleep]              # a section header opens one event
//	scns   = 0-9         # SCN set: "*", "3", "0-9", or "1,4-6,9"
//	period = 200
//	offset = 50
//	duration = 60
//
//	[churn]
//	mean-up   = 80
//	mean-down = 20
//
// Sections may repeat; events compose. Duplicate keys within a scope,
// unknown keys/kinds, malformed numbers, and out-of-range SCN ranges
// are hard errors — the parser never silently drops input.

// maxSetSpan bounds how many SCN ids a single set expression may
// expand to, so a hostile "0-2000000000" cannot make Parse allocate
// unboundedly. Real topologies are orders of magnitude smaller.
const maxSetSpan = 4096

// maxEvents bounds the number of sections a config may declare.
const maxEvents = 256

// Parse decodes a scenario config. It performs syntactic and
// field-level checks only; call Config.Validate (or Build, which does)
// for topology-dependent semantic validation.
func Parse(data []byte) (Config, error) {
	var cfg Config
	var cur *Event
	seen := map[string]bool{} // duplicate-key guard, reset per section
	lines := strings.Split(string(data), "\n")
	for ln, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return Config{}, fmt.Errorf("scenario: line %d: unterminated section header %q", ln+1, line)
			}
			kind := strings.TrimSpace(line[1 : len(line)-1])
			switch kind {
			case KindSleep, KindChurn, KindBlockage, KindDiurnal, KindBudget:
			default:
				return Config{}, fmt.Errorf("scenario: line %d: unknown event kind %q", ln+1, kind)
			}
			if len(cfg.Events) >= maxEvents {
				return Config{}, fmt.Errorf("scenario: line %d: more than %d events", ln+1, maxEvents)
			}
			ev := Event{Kind: kind, SCNs: Set{All: true}}
			if kind == KindBudget {
				// Default both troughs to 1 (no effect) so a config can
				// cycle just one of the two budgets.
				ev.AlphaMin, ev.BetaMin = 1, 1
			}
			cfg.Events = append(cfg.Events, ev)
			cur = &cfg.Events[len(cfg.Events)-1]
			seen = map[string]bool{}
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return Config{}, fmt.Errorf("scenario: line %d: expected 'key = value' or '[section]', got %q", ln+1, line)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if key == "" || val == "" {
			return Config{}, fmt.Errorf("scenario: line %d: empty key or value", ln+1)
		}
		if seen[key] {
			return Config{}, fmt.Errorf("scenario: line %d: duplicate key %q", ln+1, key)
		}
		seen[key] = true
		if cur == nil {
			// Top-level scope: only the topology pin lives here.
			if key != "scns" {
				return Config{}, fmt.Errorf("scenario: line %d: key %q before any [section] (only 'scns' is top-level)", ln+1, key)
			}
			n, err := parseInt(val)
			if err != nil || n <= 0 {
				return Config{}, fmt.Errorf("scenario: line %d: scns = %q is not a positive integer", ln+1, val)
			}
			cfg.SCNs = n
			continue
		}
		if err := setField(cur, key, val); err != nil {
			return Config{}, fmt.Errorf("scenario: line %d: %w", ln+1, err)
		}
	}
	return cfg, nil
}

// ParseFile reads and parses a scenario config file.
func ParseFile(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	cfg, err := Parse(data)
	if err != nil {
		return Config{}, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}

func setField(ev *Event, key, val string) error {
	switch key {
	case "scns":
		set, err := parseSet(val)
		if err != nil {
			return fmt.Errorf("scns = %q: %w", val, err)
		}
		ev.SCNs = set
		return nil
	case "period":
		return setInt(&ev.Period, key, val)
	case "offset":
		return setInt(&ev.Offset, key, val)
	case "duration":
		return setInt(&ev.Duration, key, val)
	case "width":
		return setInt(&ev.Width, key, val)
	case "mean-up":
		return setFloat(&ev.MeanUp, key, val)
	case "mean-down":
		return setFloat(&ev.MeanDown, key, val)
	case "rate":
		return setFloat(&ev.Rate, key, val)
	case "min-cap":
		return setFloat(&ev.MinCap, key, val)
	case "alpha-min":
		return setFloat(&ev.AlphaMin, key, val)
	case "beta-min":
		return setFloat(&ev.BetaMin, key, val)
	default:
		return fmt.Errorf("unknown key %q in [%s]", key, ev.Kind)
	}
}

func setInt(dst *int, key, val string) error {
	n, err := parseInt(val)
	if err != nil {
		return fmt.Errorf("%s = %q is not an integer", key, val)
	}
	*dst = n
	return nil
}

func setFloat(dst *float64, key, val string) error {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("%s = %q is not a number", key, val)
	}
	*dst = f
	return nil
}

func parseInt(val string) (int, error) {
	n, err := strconv.ParseInt(val, 10, 32)
	return int(n), err
}

// parseSet parses an SCN set expression: "*" (all), or a comma list of
// ids and inclusive ranges ("1,4-6,9"). The result is sorted and
// duplicate-free; overlapping ranges are an error.
func parseSet(val string) (Set, error) {
	if val == "*" {
		return Set{All: true}, nil
	}
	var ids []int
	for _, part := range strings.Split(val, ",") {
		part = strings.TrimSpace(part)
		lo, hi, isRange := strings.Cut(part, "-")
		a, err := parseInt(strings.TrimSpace(lo))
		if err != nil || a < 0 {
			return Set{}, fmt.Errorf("bad SCN id %q", part)
		}
		b := a
		if isRange {
			b, err = parseInt(strings.TrimSpace(hi))
			if err != nil || b < a {
				return Set{}, fmt.Errorf("bad SCN range %q", part)
			}
		}
		if b-a+1 > maxSetSpan || len(ids)+(b-a+1) > maxSetSpan {
			return Set{}, fmt.Errorf("SCN set wider than %d ids", maxSetSpan)
		}
		for m := a; m <= b; m++ {
			ids = append(ids, m)
		}
	}
	if len(ids) == 0 {
		return Set{}, fmt.Errorf("empty SCN set")
	}
	sort.Ints(ids)
	for i := 1; i < len(ids); i++ {
		if ids[i] == ids[i-1] {
			return Set{}, fmt.Errorf("duplicate SCN id %d", ids[i])
		}
	}
	return Set{IDs: ids}, nil
}
