package scenario

import (
	"fmt"
	"math"

	"lfsc/internal/rng"
)

// streamLabel is the rng label the scenario engine derives its root
// stream from. The simulator and serving tier consume labels 1..4 of
// the master stream (workload / environment / policy / realization);
// label 5 is reserved here. Derive is pure, so building a timeline
// never advances any of those streams.
const streamLabel = 5

// View is one slot's cross-section of a timeline, handed to view
// builders each slot. All slices alias the timeline's immutable
// backing arrays — filling a View allocates nothing and concurrent
// readers need no synchronization. Caps/AlphaMul/BetaMul are nil when
// the scenario has no capacity/budget dynamics, which keeps the static
// fast paths bit-identical.
type View struct {
	Slot     int
	Up       []bool    // per-SCN availability
	Caps     []int     // per-SCN effective capacity; nil = nominal
	AlphaMul []float64 // per-SCN α multiplier; nil = 1
	BetaMul  []float64 // per-SCN β multiplier; nil = 1
	UpCount  int       // number of true entries in Up
}

// Timeline is a fully materialized scenario: per-(slot, SCN) state
// precomputed at Build time into flat immutable arrays. Materializing
// buys random access (ViewInto at any slot, which is what checkpoint
// resume and Workers=N replay need), trivial race-freedom, and an
// alloc-free per-slot view, at a memory cost of ~17 bytes per
// (slot, SCN) — about 5 MB at the paper scale (10k slots × 30 SCNs).
// Slots beyond the horizon wrap (t mod slots), so a daemon outliving
// the configured horizon sees the cycle repeat rather than a cliff.
type Timeline struct {
	scns     int
	slots    int
	capacity int
	digest   string

	up      []bool    // [t*scns+m]
	caps    []int     // nil when no diurnal events
	aMul    []float64 // nil when no budget events
	bMul    []float64
	upCount []int32 // per-slot

	// Cumulative event counts through the end of slot t, for the
	// serving tier's counters: sleeps = entries into a sleep window,
	// fails = churn failures + blockage hits, rejoins = recoveries
	// from churn/blockage (sleep wake-ups are scheduled, not rejoins).
	sleeps, fails, rejoins []uint64
}

// Build materializes cfg over a topology of scns SCNs and a horizon of
// slots slots. capacity is the nominal per-SCN capacity (required > 0
// when the config has diurnal events; otherwise may be 0). seed is the
// run's master seed — the same one handed to the simulator or daemon.
func Build(cfg Config, scns, slots, capacity int, seed uint64) (*Timeline, error) {
	if err := cfg.Validate(scns); err != nil {
		return nil, err
	}
	if slots <= 0 {
		return nil, fmt.Errorf("scenario: horizon %d <= 0", slots)
	}
	if capacity < 0 {
		return nil, fmt.Errorf("scenario: capacity %d < 0", capacity)
	}
	tl := &Timeline{
		scns:     scns,
		slots:    slots,
		capacity: capacity,
		digest:   digest(&cfg, scns, slots, capacity, seed),
		up:       make([]bool, slots*scns),
		upCount:  make([]int32, slots),
		sleeps:   make([]uint64, slots),
		fails:    make([]uint64, slots),
		rejoins:  make([]uint64, slots),
	}
	root := rng.New(seed).Derive(streamLabel)

	// Availability: each source fills a scratch mask; a transition pass
	// counts its events and ORs it into the composed down mask.
	down := make([]bool, slots*scns)
	scratch := make([]bool, slots*scns)
	var capMul, aMul, bMul []float64
	for i := range cfg.Events {
		ev := &cfg.Events[i]
		st := root.Derive(uint64(i))
		switch ev.Kind {
		case KindSleep, KindChurn, KindBlockage:
			for j := range scratch {
				scratch[j] = false
			}
			switch ev.Kind {
			case KindSleep:
				fillSleep(scratch, ev, scns, slots)
			case KindChurn:
				fillChurn(scratch, ev, st, scns, slots)
			case KindBlockage:
				fillBlockage(scratch, ev, st, scns, slots)
			}
			tl.countAndMerge(down, scratch, ev.Kind)
		case KindDiurnal:
			if capacity <= 0 {
				return nil, fmt.Errorf("scenario: diurnal event %d needs a positive nominal capacity", i)
			}
			if capMul == nil {
				capMul = onesSlice(slots * scns)
			}
			applyCycle(capMul, ev, ev.MinCap, scns, slots)
		case KindBudget:
			if aMul == nil {
				aMul = onesSlice(slots * scns)
				bMul = onesSlice(slots * scns)
			}
			if ev.AlphaMin < 1 {
				applyCycle(aMul, ev, ev.AlphaMin, scns, slots)
			}
			if ev.BetaMin < 1 {
				applyCycle(bMul, ev, ev.BetaMin, scns, slots)
			}
		}
	}

	for j, d := range down {
		tl.up[j] = !d
	}
	for t := 0; t < slots; t++ {
		var n int32
		for m := 0; m < scns; m++ {
			if tl.up[t*scns+m] {
				n++
			}
		}
		tl.upCount[t] = n
		if t > 0 {
			tl.sleeps[t] += tl.sleeps[t-1]
			tl.fails[t] += tl.fails[t-1]
			tl.rejoins[t] += tl.rejoins[t-1]
		}
	}
	if capMul != nil {
		tl.caps = make([]int, slots*scns)
		for j, mul := range capMul {
			c := int(math.Round(mul * float64(capacity)))
			if c < 1 {
				c = 1
			}
			if c > capacity {
				c = capacity
			}
			tl.caps[j] = c
		}
	}
	tl.aMul, tl.bMul = aMul, bMul
	return tl, nil
}

// countAndMerge counts this source's down/up transitions into the
// per-slot event counters and ORs its mask into the composed one.
// Counters are per-source, so overlapping sources each report their
// own events (the composed mask is what masking consumes; the counters
// are operator telemetry).
func (tl *Timeline) countAndMerge(down, src []bool, kind string) {
	n := tl.scns
	for m := 0; m < n; m++ {
		prev := false
		for t := 0; t < tl.slots; t++ {
			cur := src[t*n+m]
			if cur != prev {
				if cur {
					if kind == KindSleep {
						tl.sleeps[t]++
					} else {
						tl.fails[t]++
					}
				} else if kind != KindSleep {
					tl.rejoins[t]++
				}
				prev = cur
			}
			if cur {
				down[t*n+m] = true
			}
		}
	}
}

func fillSleep(mask []bool, ev *Event, scns, slots int) {
	for _, m := range ev.SCNs.members(scns) {
		for t := ev.Offset; t < slots; t++ {
			if (t-ev.Offset)%ev.Period < ev.Duration {
				mask[t*scns+m] = true
			}
		}
	}
}

// fillChurn walks each affected SCN's alternating up/down renewal
// process from its own derived stream, so the result is independent of
// SCN iteration order and of every other event source.
func fillChurn(mask []bool, ev *Event, st *rng.Stream, scns, slots int) {
	for _, m := range ev.SCNs.members(scns) {
		r := st.Derive(uint64(m))
		t, up := 0, true
		for t < slots {
			mean := ev.MeanUp
			if !up {
				mean = ev.MeanDown
			}
			draw := r.Exponential(1 / mean)
			if draw > float64(slots) {
				draw = float64(slots) // a phase outliving the horizon is just "rest of horizon"
			}
			d := 1 + int(draw)
			if !up {
				for k := t; k < t+d && k < slots; k++ {
					mask[k*scns+m] = true
				}
			}
			t += d
			up = !up
		}
	}
}

// fillBlockage draws burst starts from a single sequential stream (one
// Bernoulli per slot, plus one placement draw per burst), taking out a
// contiguous run of Width SCNs within the event's set for Duration
// slots. Overlapping bursts simply extend the outage.
func fillBlockage(mask []bool, ev *Event, st *rng.Stream, scns, slots int) {
	members := ev.SCNs.members(scns)
	starts := len(members) - ev.Width + 1
	if starts < 1 {
		starts = 1 // narrower set than the burst width: whole set goes down
	}
	for t := 0; t < slots; t++ {
		if !st.Bernoulli(ev.Rate) {
			continue
		}
		lo := st.Intn(starts)
		for k := lo; k < lo+ev.Width && k < len(members); k++ {
			m := members[k]
			for u := t; u < t+ev.Duration && u < slots; u++ {
				mask[u*scns+m] = true
			}
		}
	}
}

// applyCycle multiplies a sinusoidal cycle — 1 at the crest (t =
// Offset mod Period), min at the trough — into the affected SCNs' rows.
func applyCycle(dst []float64, ev *Event, min float64, scns, slots int) {
	for t := 0; t < slots; t++ {
		phase := 2 * math.Pi * float64(t-ev.Offset) / float64(ev.Period)
		mul := min + (1-min)*0.5*(1+math.Cos(phase))
		for _, m := range ev.SCNs.members(scns) {
			dst[t*scns+m] *= mul
		}
	}
}

func onesSlice(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

// wrap maps an arbitrary slot index onto the materialized horizon.
func (tl *Timeline) wrap(t int) int {
	if t >= tl.slots {
		t %= tl.slots
	}
	if t < 0 {
		t = 0
	}
	return t
}

// ViewInto fills v with slot t's cross-section. The slices alias the
// timeline (read-only); no allocation ever.
func (tl *Timeline) ViewInto(t int, v *View) {
	t = tl.wrap(t)
	row := t * tl.scns
	v.Slot = t
	v.Up = tl.up[row : row+tl.scns]
	v.UpCount = int(tl.upCount[t])
	if tl.caps != nil {
		v.Caps = tl.caps[row : row+tl.scns]
	} else {
		v.Caps = nil
	}
	if tl.aMul != nil {
		v.AlphaMul = tl.aMul[row : row+tl.scns]
		v.BetaMul = tl.bMul[row : row+tl.scns]
	} else {
		v.AlphaMul, v.BetaMul = nil, nil
	}
}

// SCNs returns the topology size the timeline was built for.
func (tl *Timeline) SCNs() int { return tl.scns }

// Slots returns the materialized horizon.
func (tl *Timeline) Slots() int { return tl.slots }

// Digest fingerprints (config, scns, slots, capacity, seed). Two
// timelines with equal digests are bit-identical; the serving tier
// stores it in checkpoints so a resumed daemon provably replays the
// same scenario, and lfscload compares it against the daemon's.
func (tl *Timeline) Digest() string { return tl.digest }

// UpCount returns the number of up SCNs at slot t.
func (tl *Timeline) UpCount(t int) int { return int(tl.upCount[tl.wrap(t)]) }

// EventTotals returns the cumulative sleep/fail/rejoin event counts
// through the end of slot t. Totals are monotone in t up to the
// horizon and restart from the full-cycle totals when t wraps.
func (tl *Timeline) EventTotals(t int) (sleeps, fails, rejoins uint64) {
	t = tl.wrap(t)
	return tl.sleeps[t], tl.fails[t], tl.rejoins[t]
}

// CumEventTotals returns the cumulative sleep/fail/rejoin totals through
// the end of absolute slot t, accounting for wrap-around: every complete
// cycle before t contributes its full-cycle totals, so the counts are
// monotone in t (the serving tier exports them as Prometheus counters).
func (tl *Timeline) CumEventTotals(t int) (sleeps, fails, rejoins uint64) {
	if t < 0 {
		t = 0
	}
	w := t % tl.slots
	sleeps, fails, rejoins = tl.sleeps[w], tl.fails[w], tl.rejoins[w]
	if cycles := uint64(t / tl.slots); cycles > 0 {
		sleeps += cycles * tl.sleeps[tl.slots-1]
		fails += cycles * tl.fails[tl.slots-1]
		rejoins += cycles * tl.rejoins[tl.slots-1]
	}
	return sleeps, fails, rejoins
}

// AllUp reports whether the timeline never masks an SCN and carries no
// capacity or budget dynamics — i.e. it is semantically the static
// topology.
func (tl *Timeline) AllUp() bool {
	for _, u := range tl.up {
		if !u {
			return false
		}
	}
	return tl.caps == nil && tl.aMul == nil
}

func (tl *Timeline) String() string {
	s, f, r := tl.EventTotals(tl.slots - 1)
	return fmt.Sprintf("scenario %s: %d SCNs × %d slots, %d sleeps, %d fails, %d rejoins",
		tl.digest, tl.scns, tl.slots, s, f, r)
}
