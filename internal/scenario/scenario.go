// Package scenario builds deterministic, seed-driven timelines of SCN
// state over slots: availability (up / sleeping / failed), per-SCN
// capacity c_n(t), and per-SCN budget scalars (α/β multipliers). A
// timeline is generated once from a declarative config (see Parse) plus
// the run's topology parameters and master seed, then consumed
// read-only by the offline simulator, the trace generator, and the
// serving daemon — all of which therefore see the exact same dynamics.
//
// Determinism contract: Build derives its randomness from the master
// seed via rng.Stream labels that are disjoint from every stream the
// simulator or the serving tier consumes (Derive is pure — it never
// advances the parent), so attaching a scenario perturbs no workload,
// environment, or policy draw. Same config + same (scns, slots,
// capacity, seed) ⇒ bit-identical timeline, on any machine, at any
// worker count.
package scenario

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
)

// Event kinds. Each kind is one composable source on the timeline;
// sources stack (availability masks OR together, capacity and budget
// multipliers multiply together).
const (
	// KindSleep is a periodic sleep schedule: the affected SCNs are
	// down for Duration slots out of every Period, starting at Offset.
	KindSleep = "sleep"
	// KindChurn is random fail/rejoin churn: each affected SCN
	// alternates up/down phases with exponential holding times of mean
	// MeanUp / MeanDown slots (plus one, so phases are never empty).
	KindChurn = "churn"
	// KindBlockage is correlated bursts: with probability Rate per
	// slot, a contiguous run of Width SCNs (within the event's set)
	// goes down together for Duration slots.
	KindBlockage = "blockage"
	// KindDiurnal is a capacity cycle: c_n(t) swings sinusoidally
	// between the nominal capacity and MinCap×nominal with the given
	// Period/Offset (rounded, clamped to [1, nominal]).
	KindDiurnal = "diurnal"
	// KindBudget cycles the α/β budget scalars between 1 and
	// AlphaMin/BetaMin with the given Period/Offset.
	KindBudget = "budget"
)

// Set selects the SCNs an event applies to. The zero value (and "*" in
// config files) means all SCNs.
type Set struct {
	All bool
	IDs []int // sorted, unique; ignored when All
}

// Contains reports whether SCN m is in the set.
func (s Set) Contains(m int) bool {
	if s.All {
		return true
	}
	i := sort.SearchInts(s.IDs, m)
	return i < len(s.IDs) && s.IDs[i] == m
}

// members appends the set's members for a topology of n SCNs.
func (s Set) members(n int) []int {
	if s.All {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return s.IDs
}

func (s Set) String() string {
	if s.All {
		return "*"
	}
	parts := make([]string, 0, len(s.IDs))
	for i := 0; i < len(s.IDs); {
		j := i
		for j+1 < len(s.IDs) && s.IDs[j+1] == s.IDs[j]+1 {
			j++
		}
		if j > i {
			parts = append(parts, fmt.Sprintf("%d-%d", s.IDs[i], s.IDs[j]))
		} else {
			parts = append(parts, fmt.Sprintf("%d", s.IDs[i]))
		}
		i = j + 1
	}
	return strings.Join(parts, ",")
}

// Event is one timeline source. Which fields are meaningful depends on
// Kind; Validate enforces the per-kind parameter ranges.
type Event struct {
	Kind string
	SCNs Set // affected SCNs; zero value = all

	Period   int     // sleep/diurnal/budget: cycle length in slots
	Offset   int     // sleep/diurnal/budget: phase offset in slots
	Duration int     // sleep: down window per period; blockage: burst length
	MeanUp   float64 // churn: mean up-phase length in slots
	MeanDown float64 // churn: mean down-phase length in slots
	Rate     float64 // blockage: per-slot burst-start probability
	Width    int     // blockage: SCNs per burst (contiguous within the set)
	MinCap   float64 // diurnal: capacity multiplier at the trough, (0,1]
	AlphaMin float64 // budget: α multiplier at the trough, (0,1]
	BetaMin  float64 // budget: β multiplier at the trough, (0,1]
}

// Config is a parsed scenario: an optional pinned topology size plus an
// ordered list of event sources. The order matters only for stream
// derivation (event i draws from a stream labelled i), not for the
// composed result — masks OR and multipliers multiply commutatively.
type Config struct {
	// SCNs optionally pins the topology size the config was written
	// for; Build rejects a mismatch. 0 = inherit the caller's.
	SCNs   int
	Events []Event
}

// Validate checks the config against a topology of scns SCNs. It is
// called by Build; exposed so parsers and fuzz targets can check
// configs without building a timeline.
func (c *Config) Validate(scns int) error {
	if scns <= 0 {
		return fmt.Errorf("scenario: topology has %d SCNs", scns)
	}
	if c.SCNs != 0 && c.SCNs != scns {
		return fmt.Errorf("scenario: config pins scns=%d but topology has %d", c.SCNs, scns)
	}
	for i := range c.Events {
		ev := &c.Events[i]
		if err := ev.validate(scns); err != nil {
			return fmt.Errorf("scenario: event %d [%s]: %w", i, ev.Kind, err)
		}
	}
	return nil
}

func (ev *Event) validate(scns int) error {
	if !ev.SCNs.All {
		if len(ev.SCNs.IDs) == 0 {
			return fmt.Errorf("empty SCN set")
		}
		for k, m := range ev.SCNs.IDs {
			if m < 0 || m >= scns {
				return fmt.Errorf("SCN %d out of range [0,%d)", m, scns)
			}
			if k > 0 && ev.SCNs.IDs[k] <= ev.SCNs.IDs[k-1] {
				return fmt.Errorf("SCN set not sorted/unique at %d", m)
			}
		}
	}
	if ev.Offset < 0 {
		return fmt.Errorf("offset %d < 0", ev.Offset)
	}
	switch ev.Kind {
	case KindSleep:
		if ev.Period <= 0 {
			return fmt.Errorf("period %d <= 0", ev.Period)
		}
		if ev.Duration < 1 || ev.Duration > ev.Period {
			return fmt.Errorf("duration %d outside [1, period=%d]", ev.Duration, ev.Period)
		}
	case KindChurn:
		// The upper bound keeps 1/mean a normal positive rate and the
		// drawn phase lengths far from integer overflow.
		const maxMean = 1e9
		if !(ev.MeanUp > 0) || !(ev.MeanDown > 0) || ev.MeanUp > maxMean || ev.MeanDown > maxMean {
			return fmt.Errorf("mean-up/mean-down must be in (0, %g] (got %g/%g)", maxMean, ev.MeanUp, ev.MeanDown)
		}
	case KindBlockage:
		if ev.Rate < 0 || ev.Rate > 1 || math.IsNaN(ev.Rate) {
			return fmt.Errorf("rate %g outside [0,1]", ev.Rate)
		}
		if ev.Width < 1 {
			return fmt.Errorf("width %d < 1", ev.Width)
		}
		if ev.Duration < 1 {
			return fmt.Errorf("duration %d < 1", ev.Duration)
		}
	case KindDiurnal:
		if ev.Period <= 0 {
			return fmt.Errorf("period %d <= 0", ev.Period)
		}
		if !(ev.MinCap > 0) || ev.MinCap > 1 {
			return fmt.Errorf("min-cap %g outside (0,1]", ev.MinCap)
		}
	case KindBudget:
		if ev.Period <= 0 {
			return fmt.Errorf("period %d <= 0", ev.Period)
		}
		if !(ev.AlphaMin > 0) || ev.AlphaMin > 1 {
			return fmt.Errorf("alpha-min %g outside (0,1]", ev.AlphaMin)
		}
		if !(ev.BetaMin > 0) || ev.BetaMin > 1 {
			return fmt.Errorf("beta-min %g outside (0,1]", ev.BetaMin)
		}
	default:
		return fmt.Errorf("unknown kind")
	}
	return nil
}

// canonical renders the config in a fixed, field-complete form so that
// the digest depends only on semantic content (not on formatting,
// comments, or key order in the source file).
func (c *Config) canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scns=%d\n", c.SCNs)
	for i := range c.Events {
		ev := &c.Events[i]
		fmt.Fprintf(&b, "[%s] scns=%s period=%d offset=%d duration=%d mean-up=%x mean-down=%x rate=%x width=%d min-cap=%x alpha-min=%x beta-min=%x\n",
			ev.Kind, ev.SCNs.String(), ev.Period, ev.Offset, ev.Duration,
			ev.MeanUp, ev.MeanDown, ev.Rate, ev.Width, ev.MinCap, ev.AlphaMin, ev.BetaMin)
	}
	return b.String()
}

// digest fingerprints (config, topology, seed) — see Timeline.Digest.
func digest(c *Config, scns, slots, capacity int, seed uint64) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "v1 scns=%d slots=%d capacity=%d seed=%d\n%s",
		scns, slots, capacity, seed, c.canonical())
	return fmt.Sprintf("%016x", h.Sum64())
}
