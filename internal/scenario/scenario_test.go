package scenario

import (
	"reflect"
	"testing"
)

// goldenConfigs is the accept/reject table shared by the parser unit
// test and FuzzScenarioParse's seed corpus: every syntactically valid
// config must parse AND validate (against 30 SCNs) exactly as recorded.
var goldenConfigs = []struct {
	name   string
	src    string
	accept bool
}{
	{"empty", "", true},
	{"comment-only", "# nothing here\n\n# still nothing\n", true},
	{"top-scns", "scns = 30\n", true},
	{"sleep-basic", "[sleep]\nperiod = 100\nduration = 25\n", true},
	{"sleep-subset", "[sleep]\nscns = 0-9\nperiod = 200\noffset = 50\nduration = 60\n", true},
	{"churn", "[churn]\nmean-up = 80\nmean-down = 20\n", true},
	{"churn-subset", "[churn]\nscns = 1,4-6,9\nmean-up = 40.5\nmean-down = 10\n", true},
	{"blockage", "[blockage]\nrate = 0.01\nwidth = 4\nduration = 12\n", true},
	{"diurnal", "[diurnal]\nperiod = 500\nmin-cap = 0.4\n", true},
	{"budget-alpha-only", "[budget]\nperiod = 300\nalpha-min = 0.5\n", true},
	{"stacked", "scns = 30\n[sleep]\nscns = 0-4\nperiod = 120\nduration = 40\n[churn]\nmean-up = 60\nmean-down = 15\n[diurnal]\nperiod = 400\nmin-cap = 0.5\n", true},
	{"whitespace-and-comments", "  # header\n\n  scns =  30 \n [sleep] \n period=10\n duration=3\n", true},

	{"unknown-kind", "[siesta]\nperiod = 10\n", false},
	{"unknown-key", "[sleep]\nperiod = 10\nduration = 2\ncolor = red\n", false},
	{"duplicate-key", "[sleep]\nperiod = 10\nperiod = 20\nduration = 2\n", false},
	{"duplicate-top-key", "scns = 30\nscns = 30\n", false},
	{"key-before-section", "period = 10\n", false},
	{"bad-number", "[sleep]\nperiod = ten\nduration = 2\n", false},
	{"empty-value", "[sleep]\nperiod =\nduration = 2\n", false},
	{"unterminated-section", "[sleep\nperiod = 10\n", false},
	{"no-equals", "[sleep]\nperiod 10\n", false},
	{"scn-out-of-range", "[sleep]\nscns = 25-35\nperiod = 10\nduration = 2\n", false},
	{"scn-negative-range", "[churn]\nscns = 5-2\nmean-up = 10\nmean-down = 5\n", false},
	{"scn-duplicate", "[churn]\nscns = 3,3\nmean-up = 10\nmean-down = 5\n", false},
	{"scn-huge-span", "[sleep]\nscns = 0-2000000000\nperiod = 10\nduration = 2\n", false},
	{"sleep-duration-over-period", "[sleep]\nperiod = 10\nduration = 11\n", false},
	{"sleep-zero-period", "[sleep]\nperiod = 0\nduration = 0\n", false},
	{"sleep-negative-offset", "[sleep]\nperiod = 10\noffset = -1\nduration = 2\n", false},
	{"churn-zero-mean", "[churn]\nmean-up = 0\nmean-down = 5\n", false},
	{"churn-nan-mean", "[churn]\nmean-up = NaN\nmean-down = 5\n", false},
	{"blockage-rate-over-1", "[blockage]\nrate = 1.5\nwidth = 2\nduration = 3\n", false},
	{"blockage-zero-width", "[blockage]\nrate = 0.1\nwidth = 0\nduration = 3\n", false},
	{"diurnal-zero-min-cap", "[diurnal]\nperiod = 100\nmin-cap = 0\n", false},
	{"budget-bad-alpha", "[budget]\nperiod = 100\nalpha-min = 1.5\n", false},
	{"scns-mismatch", "scns = 12\n[sleep]\nperiod = 10\nduration = 2\n", false},
	{"truncated-mid-line", "[sleep]\nperiod = 1", false}, // parses but fails validation (duration 0)
}

func TestParseGoldens(t *testing.T) {
	for _, g := range goldenConfigs {
		cfg, err := Parse([]byte(g.src))
		if err == nil {
			err = cfg.Validate(30)
		}
		if got := err == nil; got != g.accept {
			t.Errorf("%s: accept=%v, want %v (err=%v)", g.name, got, g.accept, err)
		}
	}
}

func mustBuild(t *testing.T, src string, scns, slots, capacity int, seed uint64) *Timeline {
	t.Helper()
	cfg, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Build(cfg, scns, slots, capacity, seed)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

const testCfg = `
[sleep]
scns = 0-3
period = 50
offset = 10
duration = 15
[churn]
scns = 4-11
mean-up = 40
mean-down = 12
[blockage]
rate = 0.02
width = 3
duration = 8
[diurnal]
period = 200
min-cap = 0.5
[budget]
period = 150
alpha-min = 0.6
beta-min = 0.8
`

// TestBuildDeterministic: same config + seed ⇒ bit-identical timeline;
// a different seed must actually change the stochastic sources.
func TestBuildDeterministic(t *testing.T) {
	a := mustBuild(t, testCfg, 12, 400, 3, 42)
	b := mustBuild(t, testCfg, 12, 400, 3, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config+seed produced different timelines")
	}
	if a.Digest() != b.Digest() {
		t.Fatal("digest not deterministic")
	}
	c := mustBuild(t, testCfg, 12, 400, 3, 43)
	if reflect.DeepEqual(a.up, c.up) {
		t.Fatal("different seed left the churn/blockage mask unchanged")
	}
	if a.Digest() == c.Digest() {
		t.Fatal("digest ignores the seed")
	}
}

// TestDigestCanonical: formatting, comments, and key order do not move
// the digest; any semantic change does.
func TestDigestCanonical(t *testing.T) {
	a := mustBuild(t, "[sleep]\nperiod = 100\nduration = 20\n", 8, 300, 2, 7)
	b := mustBuild(t, "# padded\n  [sleep]  \n  duration=20\n  period = 100\n", 8, 300, 2, 7)
	if a.Digest() != b.Digest() {
		t.Fatalf("formatting moved the digest: %s vs %s", a.Digest(), b.Digest())
	}
	c := mustBuild(t, "[sleep]\nperiod = 100\nduration = 21\n", 8, 300, 2, 7)
	if a.Digest() == c.Digest() {
		t.Fatal("semantic change kept the digest")
	}
	d := mustBuild(t, "[sleep]\nperiod = 100\nduration = 20\n", 8, 300, 2, 8)
	if a.Digest() == d.Digest() {
		t.Fatal("seed change kept the digest")
	}
}

// TestSleepWindows pins the sleep schedule semantics exactly: down iff
// t ≥ offset and (t-offset) mod period < duration, for set members only.
func TestSleepWindows(t *testing.T) {
	tl := mustBuild(t, "[sleep]\nscns = 1-2\nperiod = 10\noffset = 5\nduration = 3\n", 4, 60, 0, 1)
	var v View
	for tt := 0; tt < 60; tt++ {
		tl.ViewInto(tt, &v)
		wantDown := tt >= 5 && (tt-5)%10 < 3
		for m := 0; m < 4; m++ {
			affected := m == 1 || m == 2
			if up := v.Up[m]; up != !(wantDown && affected) {
				t.Fatalf("t=%d m=%d: up=%v", tt, m, up)
			}
		}
		if v.Caps != nil || v.AlphaMul != nil {
			t.Fatal("sleep-only scenario materialized capacity/budget arrays")
		}
	}
	s, f, r := tl.EventTotals(59)
	// Windows start at t=5,15,...,55 → 6 entries × 2 SCNs.
	if s != 12 || f != 0 || r != 0 {
		t.Fatalf("event totals = %d/%d/%d, want 12/0/0", s, f, r)
	}
}

// TestChurnMaskConsistent: counters, up counts, and the mask agree.
func TestChurnMaskConsistent(t *testing.T) {
	tl := mustBuild(t, "[churn]\nmean-up = 20\nmean-down = 8\n", 10, 500, 0, 99)
	var v View
	prevUp := make([]bool, 10)
	for i := range prevUp {
		prevUp[i] = true
	}
	fails, rejoins := uint64(0), uint64(0)
	for tt := 0; tt < 500; tt++ {
		tl.ViewInto(tt, &v)
		n := 0
		for m, up := range v.Up {
			if up {
				n++
			}
			if up != prevUp[m] {
				if up {
					rejoins++
				} else {
					fails++
				}
				prevUp[m] = up
			}
		}
		if n != v.UpCount {
			t.Fatalf("t=%d: UpCount=%d, mask says %d", tt, v.UpCount, n)
		}
	}
	_, f, r := tl.EventTotals(499)
	if f != fails || r != rejoins {
		t.Fatalf("cumulative totals %d/%d, mask transitions %d/%d", f, r, fails, rejoins)
	}
	if fails == 0 {
		t.Fatal("500 slots of mean-up=20 churn produced zero failures")
	}
}

// TestDiurnalCaps: caps stay within [1, nominal], hit the nominal at
// the crest, and dip to round(min·nominal) at the trough.
func TestDiurnalCaps(t *testing.T) {
	tl := mustBuild(t, "[diurnal]\nperiod = 100\nmin-cap = 0.5\n", 6, 200, 4, 3)
	var v View
	lo, hi := 99, 0
	for tt := 0; tt < 200; tt++ {
		tl.ViewInto(tt, &v)
		for _, c := range v.Caps {
			if c < 1 || c > 4 {
				t.Fatalf("t=%d: cap %d outside [1,4]", tt, c)
			}
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
	}
	if hi != 4 || lo != 2 {
		t.Fatalf("cap range [%d,%d], want [2,4]", lo, hi)
	}
	tl.ViewInto(0, &v)
	if v.Caps[0] != 4 {
		t.Fatalf("crest (t=0) cap = %d, want nominal 4", v.Caps[0])
	}
}

// TestBudgetMultipliers: trough/crest values and the all-up mask.
func TestBudgetMultipliers(t *testing.T) {
	tl := mustBuild(t, "[budget]\nperiod = 100\nalpha-min = 0.6\n", 5, 100, 0, 3)
	var v View
	tl.ViewInto(0, &v)
	if v.AlphaMul[0] != 1 || v.BetaMul[0] != 1 {
		t.Fatalf("crest multipliers %g/%g, want 1/1", v.AlphaMul[0], v.BetaMul[0])
	}
	tl.ViewInto(50, &v)
	if got := v.AlphaMul[2]; got < 0.599 || got > 0.601 {
		t.Fatalf("trough alpha multiplier %g, want ≈0.6", got)
	}
	if v.BetaMul[2] != 1 {
		t.Fatalf("beta multiplier moved (%g) though only alpha-min was set", v.BetaMul[2])
	}
	if !v.Up[0] || v.UpCount != 5 {
		t.Fatal("budget-only scenario masked an SCN")
	}
}

// TestAllUpAndWrap: an empty config is semantically static, and slots
// beyond the horizon wrap onto the cycle.
func TestAllUpAndWrap(t *testing.T) {
	tl := mustBuild(t, "", 7, 50, 3, 1)
	if !tl.AllUp() {
		t.Fatal("empty config is not AllUp")
	}
	churny := mustBuild(t, "[churn]\nmean-up = 10\nmean-down = 5\n", 7, 50, 3, 1)
	if churny.AllUp() {
		t.Fatal("churn scenario reported AllUp")
	}
	var a, b View
	churny.ViewInto(13, &a)
	churny.ViewInto(13+50, &b)
	if a.Slot != b.Slot || &a.Up[0] != &b.Up[0] {
		t.Fatal("wrapped slot did not alias the same row")
	}
}

// TestBuildRejects: topology-dependent errors surface at Build.
func TestBuildRejects(t *testing.T) {
	cfg, err := Parse([]byte("[diurnal]\nperiod = 10\nmin-cap = 0.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(cfg, 4, 100, 0, 1); err == nil {
		t.Fatal("diurnal with capacity=0 accepted")
	}
	if _, err := Build(cfg, 0, 100, 3, 1); err == nil {
		t.Fatal("scns=0 accepted")
	}
	if _, err := Build(cfg, 4, 0, 3, 1); err == nil {
		t.Fatal("slots=0 accepted")
	}
	pinned, err := Parse([]byte("scns = 8\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(pinned, 9, 100, 3, 1); err == nil {
		t.Fatal("scns pin mismatch accepted")
	}
}

// TestViewIntoZeroAlloc: the per-slot view fill is alloc-free.
func TestViewIntoZeroAlloc(t *testing.T) {
	tl := mustBuild(t, testCfg, 12, 400, 3, 42)
	var v View
	allocs := testing.AllocsPerRun(200, func() {
		tl.ViewInto(17, &v)
		tl.ViewInto(391, &v)
	})
	if allocs != 0 {
		t.Fatalf("ViewInto allocates %.1f per call pair", allocs)
	}
}
