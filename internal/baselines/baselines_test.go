package baselines

import (
	"math"
	"testing"

	"lfsc/internal/env"
	"lfsc/internal/ilp"
	"lfsc/internal/policy"
	"lfsc/internal/rng"
)

// makeView builds a slot view. cellsPerSCN[m] lists the hypercube cell of
// each task visible to SCN m; tasks are globally unique unless shared is
// set, in which case SCN 1 additionally sees SCN 0's tasks.
func makeView(t int, cellsPerSCN [][]int) *policy.SlotView {
	v := &policy.SlotView{T: t}
	idx := 0
	for _, cells := range cellsPerSCN {
		var scn policy.SCNView
		for _, c := range cells {
			scn.Cover = append(scn.Cover, idx)
			v.Cells = append(v.Cells, c)
			idx++
		}
		v.SCNs = append(v.SCNs, scn)
	}
	v.NumTasks = idx
	return v
}

func feedbackFor(view *policy.SlotView, assigned []int, g func(m, cell int) (u, v, q float64)) *policy.Feedback {
	fb := &policy.Feedback{}
	for taskIdx, m := range assigned {
		if m < 0 {
			continue
		}
		cell := view.Cells[taskIdx]
		u, v, q := g(m, cell)
		fb.Execs = append(fb.Execs, policy.Exec{SCN: m, Task: taskIdx, Cell: cell, U: u, V: v, Q: q})
	}
	return fb
}

func TestRandomFeasibility(t *testing.T) {
	p := NewRandom(2, 3, rng.New(1))
	if p.Name() != "Random" {
		t.Fatal("name")
	}
	for trial := 0; trial < 50; trial++ {
		view := makeView(trial, [][]int{{0, 1, 2, 0, 1}, {2, 0, 1, 2}})
		assigned := p.Decide(view)
		if err := policy.ValidateAssignment(view, assigned, 3); err != nil {
			t.Fatal(err)
		}
		p.Observe(view, assigned, &policy.Feedback{})
	}
}

func TestVUCBExploresAllCells(t *testing.T) {
	p := NewVUCB(1, 2, 4)
	seen := map[int]bool{}
	for slot := 0; slot < 20; slot++ {
		view := makeView(slot, [][]int{{0, 1, 2, 3}})
		assigned := p.Decide(view)
		if err := policy.ValidateAssignment(view, assigned, 2); err != nil {
			t.Fatal(err)
		}
		fb := feedbackFor(view, assigned, func(m, cell int) (float64, float64, float64) {
			seen[cell] = true
			return 0.5, 1, 1
		})
		p.Observe(view, assigned, fb)
	}
	if len(seen) != 4 {
		t.Fatalf("vUCB explored %d/4 cells", len(seen))
	}
}

func TestVUCBConvergesToBestCell(t *testing.T) {
	p := NewVUCB(1, 1, 2)
	best, other := 0, 0
	for slot := 0; slot < 500; slot++ {
		view := makeView(slot, [][]int{{0, 1}})
		assigned := p.Decide(view)
		fb := feedbackFor(view, assigned, func(m, cell int) (float64, float64, float64) {
			if cell == 0 {
				return 0.9, 1, 1
			}
			return 0.1, 1, 1
		})
		p.Observe(view, assigned, fb)
		if slot > 250 { // after burn-in
			if assigned[0] == 0 {
				best++
			} else if assigned[1] == 0 {
				other++
			}
		}
	}
	if best <= 3*other {
		t.Fatalf("vUCB picks best cell %d vs other %d", best, other)
	}
}

func TestFMLExploresThenExploits(t *testing.T) {
	p := NewFML(1, 1, 2, 0)
	if p.Name() != "FML" {
		t.Fatal("name")
	}
	best, other := 0, 0
	for slot := 0; slot < 800; slot++ {
		view := makeView(slot, [][]int{{0, 1}})
		assigned := p.Decide(view)
		if err := policy.ValidateAssignment(view, assigned, 1); err != nil {
			t.Fatal(err)
		}
		fb := feedbackFor(view, assigned, func(m, cell int) (float64, float64, float64) {
			if cell == 1 {
				return 0.95, 1, 1
			}
			return 0.05, 1, 1
		})
		p.Observe(view, assigned, fb)
		if slot > 400 {
			if assigned[1] == 0 {
				best++
			} else if assigned[0] == 0 {
				other++
			}
		}
	}
	if best <= 3*other {
		t.Fatalf("FML picks best cell %d vs other %d", best, other)
	}
}

func newTestEnv(t *testing.T, scns, cells int, seed uint64) *env.Env {
	t.Helper()
	cfg := env.DefaultConfig(scns, cells)
	e, err := env.New(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestOracleValidation(t *testing.T) {
	e := newTestEnv(t, 1, 2, 1)
	if _, err := NewOracle(OracleConfig{Capacity: 0}, e); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewOracle(OracleConfig{Capacity: 1, Alpha: -1}, e); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if _, err := NewOracle(OracleConfig{Capacity: 1}, nil); err == nil {
		t.Fatal("nil env accepted")
	}
	o, err := NewOracle(OracleConfig{Capacity: 1}, e)
	if err != nil || o.Name() != "Oracle" {
		t.Fatal("valid oracle rejected")
	}
}

func TestOracleFeasibleAndRespectsBeta(t *testing.T) {
	e := newTestEnv(t, 2, 4, 2)
	for _, exact := range []bool{false, true} {
		o, _ := NewOracle(OracleConfig{Capacity: 3, Alpha: 0.5, Beta: 4, ExactAssign: exact}, e)
		for trial := 0; trial < 20; trial++ {
			view := makeView(trial, [][]int{{0, 1, 2, 3, 0, 1}, {2, 3, 0, 1, 2}})
			assigned := o.Decide(view)
			if err := policy.ValidateAssignment(view, assigned, 3); err != nil {
				t.Fatalf("exact=%v: %v", exact, err)
			}
			// Expected consumption must respect β after repair.
			for m := range view.SCNs {
				qSum := 0.0
				for _, idx := range view.SCNs[m].Cover {
					if assigned[idx] == m {
						qSum += e.MeanConsumption(m, view.Cells[idx])
					}
				}
				if qSum > 4+1e-9 {
					t.Fatalf("exact=%v: SCN %d expected consumption %v > β", exact, m, qSum)
				}
			}
			o.Observe(view, assigned, &policy.Feedback{})
		}
	}
}

func TestOracleAlphaRepairImproves(t *testing.T) {
	e := newTestEnv(t, 1, 8, 3)
	view := makeView(0, [][]int{{0, 1, 2, 3, 4, 5, 6, 7}})
	// Unconstrained oracle (α=0) vs constrained (α high): the repaired
	// solution must have at least the unconstrained solution's likelihood sum.
	vSumOf := func(alpha float64) float64 {
		o, _ := NewOracle(OracleConfig{Capacity: 3, Alpha: alpha, Beta: 100}, e)
		assigned := o.Decide(view)
		sum := 0.0
		for _, idx := range view.SCNs[0].Cover {
			if assigned[idx] == 0 {
				sum += e.MeanLikelihood(0, view.Cells[idx])
			}
		}
		return sum
	}
	free := vSumOf(0)
	constrained := vSumOf(2.5)
	if constrained < free-1e-9 {
		t.Fatalf("α repair reduced likelihood sum: %v → %v", free, constrained)
	}
	// With an unreachable α, the swaps must converge to the top-capacity
	// likelihood tasks — the best feasible likelihood sum.
	var vs []float64
	for _, idx := range view.SCNs[0].Cover {
		vs = append(vs, e.MeanLikelihood(0, view.Cells[idx]))
	}
	top3 := 0.0
	for k := 0; k < 3; k++ {
		best := -1
		for i, v := range vs {
			if best == -1 || v > vs[best] {
				best = i
			}
		}
		top3 += vs[best]
		vs[best] = -1
	}
	want := math.Min(2.5, top3)
	if constrained < want-1e-9 {
		t.Fatalf("α repair too weak: likelihood sum %v, best feasible %v", constrained, want)
	}
}

func TestOracleNearExactILP(t *testing.T) {
	// Small instances: oracle's expected reward with α=0 should be within a
	// few percent of the exact ILP optimum (β hard, QoS soft).
	r := rng.New(4)
	for trial := 0; trial < 10; trial++ {
		e := newTestEnv(t, 2, 4, uint64(100+trial))
		view := makeView(trial, [][]int{{0, 1, 2, 3}, {1, 2, 3, 0}})
		o, _ := NewOracle(OracleConfig{Capacity: 2, Alpha: 0, Beta: 3}, e)
		assigned := o.Decide(view)
		got := 0.0
		for m := range view.SCNs {
			for _, idx := range view.SCNs[m].Cover {
				if assigned[idx] == m {
					got += e.ExpectedCompound(m, view.Cells[idx])
				}
			}
		}
		// Exact via ILP.
		inst := &ilp.OffloadInstance{
			G: make([][]float64, 2), V: make([][]float64, 2),
			Q: make([][]float64, 2), Covered: make([][]bool, 2),
			C: 2, Alpha: 0, Beta: 3, SoftQoS: true,
		}
		for m := 0; m < 2; m++ {
			inst.G[m] = make([]float64, view.NumTasks)
			inst.V[m] = make([]float64, view.NumTasks)
			inst.Q[m] = make([]float64, view.NumTasks)
			inst.Covered[m] = make([]bool, view.NumTasks)
			for _, idx := range view.SCNs[m].Cover {
				f := view.Cells[idx]
				inst.G[m][idx] = e.ExpectedCompound(m, f)
				inst.V[m][idx] = e.MeanLikelihood(m, f)
				inst.Q[m][idx] = e.MeanConsumption(m, f)
				inst.Covered[m][idx] = true
			}
		}
		sol := inst.Solve(0)
		if sol.Status != ilp.Optimal {
			t.Fatalf("trial %d: ILP status %v", trial, sol.Status)
		}
		if got < 0.85*sol.Objective-1e-9 {
			t.Fatalf("trial %d: oracle %v below 85%% of exact %v", trial, got, sol.Objective)
		}
		if got > sol.Objective+1e-6 {
			t.Fatalf("trial %d: oracle %v exceeds exact optimum %v", trial, got, sol.Objective)
		}
	}
	_ = r
}

func TestVUCBIgnoresConstraints(t *testing.T) {
	// vUCB should keep picking the max-index tasks regardless of
	// alpha/beta — it has no notion of them. Its Decide must fill capacity.
	p := NewVUCB(1, 3, 2)
	view := makeView(0, [][]int{{0, 0, 1, 1, 0}})
	assigned := p.Decide(view)
	count := 0
	for _, m := range assigned {
		if m == 0 {
			count++
		}
	}
	if count != 3 {
		t.Fatalf("vUCB assigned %d, want full capacity 3", count)
	}
}

func TestOracleSharedTaskNotDuplicated(t *testing.T) {
	e := newTestEnv(t, 2, 4, 5)
	// Both SCNs see the same global task indices 0..3.
	v := &policy.SlotView{T: 0, NumTasks: 4, Cells: []int{0, 1, 2, 3}}
	for m := 0; m < 2; m++ {
		var scn policy.SCNView
		for i := 0; i < 4; i++ {
			scn.Cover = append(scn.Cover, i)
		}
		v.SCNs = append(v.SCNs, scn)
	}
	o, _ := NewOracle(OracleConfig{Capacity: 4, Alpha: 0, Beta: 100}, e)
	assigned := o.Decide(v)
	if err := policy.ValidateAssignment(v, assigned, 4); err != nil {
		t.Fatal(err)
	}
	// Every task must appear at most once (ValidateAssignment covers the
	// per-SCN side; here we confirm global uniqueness by construction).
	for i, m := range assigned {
		if m < 0 || m > 1 {
			if m != -1 {
				t.Fatalf("task %d assigned to %d", i, m)
			}
		}
	}
}

func TestOracleMath(t *testing.T) {
	// The oracle should achieve a strictly higher expected reward than a
	// random assignment on the same view.
	e := newTestEnv(t, 2, 9, 6)
	view := makeView(0, [][]int{{0, 1, 2, 3, 4, 5, 6, 7, 8}, {8, 7, 6, 5, 4, 3, 2, 1, 0}})
	o, _ := NewOracle(OracleConfig{Capacity: 3, Alpha: 0, Beta: 100}, e)
	rnd := NewRandom(2, 3, rng.New(7))
	expReward := func(assigned []int) float64 {
		sum := 0.0
		for m := range view.SCNs {
			for _, idx := range view.SCNs[m].Cover {
				if assigned[idx] == m {
					sum += e.ExpectedCompound(m, view.Cells[idx])
				}
			}
		}
		return sum
	}
	oracleVal := expReward(o.Decide(view))
	randomVal := 0.0
	const trials = 50
	for i := 0; i < trials; i++ {
		randomVal += expReward(rnd.Decide(view))
	}
	randomVal /= trials
	if oracleVal <= randomVal {
		t.Fatalf("oracle %v not above random %v", oracleVal, randomVal)
	}
}

func BenchmarkOracleDecidePaperScale(b *testing.B) {
	e := env.MustNew(env.DefaultConfig(30, 27), rng.New(1))
	o, _ := NewOracle(OracleConfig{Capacity: 20, Alpha: 15, Beta: 27}, e)
	r := rng.New(2)
	cells := make([][]int, 30)
	for m := range cells {
		n := 35 + r.Intn(66)
		cells[m] = make([]int, n)
		for i := range cells[m] {
			cells[m][i] = r.Intn(27)
		}
	}
	view := makeView(0, cells)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = o.Decide(view)
	}
}

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }
