package baselines

import (
	"math"
	"testing"

	"lfsc/internal/policy"
	"lfsc/internal/rng"
	"lfsc/internal/task"
)

func TestThompsonFeasibleAndLearns(t *testing.T) {
	p := NewThompson(1, 1, 2, rng.New(1))
	if p.Name() != "Thompson" {
		t.Fatal("name")
	}
	best, other := 0, 0
	for slot := 0; slot < 600; slot++ {
		view := makeView(slot, [][]int{{0, 1}})
		assigned := p.Decide(view)
		if err := policy.ValidateAssignment(view, assigned, 1); err != nil {
			t.Fatal(err)
		}
		fb := feedbackFor(view, assigned, func(m, cell int) (float64, float64, float64) {
			if cell == 0 {
				return 0.9, 1, 1
			}
			return 0.1, 1, 1
		})
		p.Observe(view, assigned, fb)
		if slot > 300 {
			if assigned[0] == 0 {
				best++
			} else if assigned[1] == 0 {
				other++
			}
		}
	}
	if best <= 3*other {
		t.Fatalf("Thompson picks best cell %d vs other %d", best, other)
	}
}

func TestThompsonExploresAllCells(t *testing.T) {
	p := NewThompson(1, 2, 5, rng.New(2))
	pulled := map[int]bool{}
	for slot := 0; slot < 30; slot++ {
		view := makeView(slot, [][]int{{0, 1, 2, 3, 4}})
		assigned := p.Decide(view)
		fb := feedbackFor(view, assigned, func(m, cell int) (float64, float64, float64) {
			pulled[cell] = true
			return 0.5, 1, 1
		})
		p.Observe(view, assigned, fb)
	}
	if len(pulled) != 5 {
		t.Fatalf("Thompson explored %d/5 cells", len(pulled))
	}
}

// ctxView builds a view whose tasks carry real-valued contexts; cell
// indices are synthetic.
func ctxView(t int, ctxs [][]float64) *policy.SlotView {
	v := &policy.SlotView{T: t, NumTasks: len(ctxs)}
	var scn policy.SCNView
	tcs := make([]task.Context, len(ctxs))
	for i, c := range ctxs {
		scn.Cover = append(scn.Cover, i)
		v.Cells = append(v.Cells, 0)
		tcs[i] = task.Context(c)
	}
	v.SCNs = []policy.SCNView{scn}
	v.SetCtxs(tcs)
	return v
}

func TestLinUCBLearnsLinearReward(t *testing.T) {
	// Ground truth reward = 0.8*x0 (plus nothing else): LinUCB must learn
	// to prefer high-x0 tasks.
	p := NewLinUCB(1, 1, 2, 0)
	if p.Name() != "LinUCB" {
		t.Fatal("name")
	}
	r := rng.New(3)
	good, bad := 0, 0
	for slot := 0; slot < 500; slot++ {
		ctxs := [][]float64{
			{0.9, r.Float64()},
			{0.1, r.Float64()},
		}
		view := ctxView(slot, ctxs)
		assigned := p.Decide(view)
		if err := policy.ValidateAssignment(view, assigned, 1); err != nil {
			t.Fatal(err)
		}
		fb := &policy.Feedback{}
		for i, m := range assigned {
			if m != 0 {
				continue
			}
			u := 0.8 * ctxs[i][0]
			fb.Execs = append(fb.Execs, policy.Exec{SCN: 0, Task: i, Cell: 0, U: u, V: 1, Q: 1})
		}
		p.Observe(view, assigned, fb)
		if slot > 250 {
			if assigned[0] == 0 {
				good++
			} else if assigned[1] == 0 {
				bad++
			}
		}
	}
	if good <= 4*bad {
		t.Fatalf("LinUCB prefers good context %d vs bad %d", good, bad)
	}
}

func TestLinUCBFeasibility(t *testing.T) {
	p := NewLinUCB(2, 2, 3, 1.5)
	r := rng.New(4)
	for slot := 0; slot < 50; slot++ {
		view := &policy.SlotView{T: slot, NumTasks: 6, Cells: make([]int, 6)}
		tcs := make([]task.Context, 6)
		for m := 0; m < 2; m++ {
			var scn policy.SCNView
			for k := 0; k < 3; k++ {
				idx := m*3 + k
				scn.Cover = append(scn.Cover, idx)
				tcs[idx] = task.Context{r.Float64(), r.Float64(), r.Float64()}
			}
			view.SCNs = append(view.SCNs, scn)
		}
		view.SetCtxs(tcs)
		assigned := p.Decide(view)
		if err := policy.ValidateAssignment(view, assigned, 2); err != nil {
			t.Fatal(err)
		}
		p.Observe(view, assigned, &policy.Feedback{})
	}
}

func TestInvert(t *testing.T) {
	// Random SPD matrices: A·A⁻¹ = I.
	r := rng.New(5)
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(4)
		// SPD via I + BBᵀ.
		b := make([]float64, n*n)
		for i := range b {
			b[i] = r.Normal(0, 1)
		}
		a := identity(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					a[i*n+j] += b[i*n+k] * b[j*n+k]
				}
			}
		}
		inv := invert(append([]float64(nil), a...), n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				got := 0.0
				for k := 0; k < n; k++ {
					got += a[i*n+k] * inv[k*n+j]
				}
				if math.Abs(got-want) > 1e-8 {
					t.Fatalf("trial %d: (A·A⁻¹)[%d][%d] = %v", trial, i, j, got)
				}
			}
		}
	}
}

func TestMatVecAndDot(t *testing.T) {
	a := []float64{1, 2, 3, 4} // [[1,2],[3,4]]
	x := []float64{5, 6}
	out := matVec(a, x, 2)
	if out[0] != 17 || out[1] != 39 {
		t.Fatalf("matVec = %v", out)
	}
	if dot(x, x) != 61 {
		t.Fatal("dot")
	}
}
