package baselines

import (
	"math"

	"lfsc/internal/assign"
	"lfsc/internal/policy"
	"lfsc/internal/rng"
)

// --- Thompson sampling ------------------------------------------------------

// Thompson is a Gaussian Thompson-sampling learner over the same context
// hypercubes as vUCB: per (SCN, cell) it keeps the empirical mean and count
// of the observed compound reward and scores tasks with a posterior sample
// mean + N(0,1)/√n. It is a stochastic-bandit-style comparator that the
// paper does not evaluate but that is standard in the MEC offloading
// literature; like vUCB it is constraint-blind.
type Thompson struct {
	numSCNs, capacity, cells int
	sum                      [][]float64
	count                    [][]int
	r                        *rng.Stream
	edges                    []assign.Edge
}

// NewThompson constructs the policy.
func NewThompson(numSCNs, capacity, cells int, r *rng.Stream) *Thompson {
	p := &Thompson{numSCNs: numSCNs, capacity: capacity, cells: cells, r: r}
	p.sum = make([][]float64, numSCNs)
	p.count = make([][]int, numSCNs)
	for m := 0; m < numSCNs; m++ {
		p.sum[m] = make([]float64, cells)
		p.count[m] = make([]int, cells)
	}
	return p
}

// Name implements policy.Policy.
func (p *Thompson) Name() string { return "Thompson" }

// Decide implements policy.Policy.
func (p *Thompson) Decide(view *policy.SlotView) []int {
	p.edges = p.edges[:0]
	for m := range view.SCNs {
		for _, idx := range view.SCNs[m].Cover {
			f := view.Cells[idx]
			n := p.count[m][f]
			var score float64
			if n == 0 {
				score = 1 + p.r.Float64() // optimistic prior forces a first pull
			} else {
				mean := p.sum[m][f] / float64(n)
				score = mean + p.r.Normal(0, 1)/math.Sqrt(float64(n))
			}
			p.edges = append(p.edges, assign.Edge{SCN: m, Task: idx, W: score})
		}
	}
	return assign.GreedyCaps(p.edges, p.numSCNs, view.NumTasks, p.capacity, view.Caps)
}

// Observe implements policy.Policy.
func (p *Thompson) Observe(view *policy.SlotView, assigned []int, fb *policy.Feedback) {
	for _, e := range fb.Execs {
		p.sum[e.SCN][e.Cell] += e.Compound()
		p.count[e.SCN][e.Cell]++
	}
}

// --- LinUCB -----------------------------------------------------------------

// LinUCB is a contextual linear bandit working on the raw context vector
// instead of the hypercube partition: per SCN it maintains a ridge
// regression of the compound reward on [1, φ] and scores tasks with the
// optimism bonus α·sqrt(xᵀA⁻¹x) (Li et al., WWW 2010). It probes whether
// the partition of LFSC loses anything against a parametric context model;
// like the other learner baselines it ignores constraints (1c)/(1d).
type LinUCB struct {
	numSCNs, capacity int
	dim               int
	alpha             float64
	// Per SCN: A (dim×dim, row-major) and b (dim).
	a     [][]float64
	b     [][]float64
	edges []assign.Edge
}

// NewLinUCB constructs the policy for contexts of the given dimension
// (a bias term is added internally). alpha <= 0 selects the canonical 1.0.
func NewLinUCB(numSCNs, capacity, ctxDim int, alpha float64) *LinUCB {
	if alpha <= 0 {
		alpha = 1.0
	}
	dim := ctxDim + 1
	p := &LinUCB{numSCNs: numSCNs, capacity: capacity, dim: dim, alpha: alpha}
	p.a = make([][]float64, numSCNs)
	p.b = make([][]float64, numSCNs)
	for m := 0; m < numSCNs; m++ {
		p.a[m] = identity(dim)
		p.b[m] = make([]float64, dim)
	}
	return p
}

// Name implements policy.Policy.
func (p *LinUCB) Name() string { return "LinUCB" }

func identity(n int) []float64 {
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i*n+i] = 1
	}
	return a
}

// feature lifts a context into the regression feature vector [1, φ...].
func (p *LinUCB) feature(ctx []float64) []float64 {
	x := make([]float64, p.dim)
	x[0] = 1
	for i := 0; i < p.dim-1 && i < len(ctx); i++ {
		x[i+1] = ctx[i]
	}
	return x
}

// Decide implements policy.Policy.
func (p *LinUCB) Decide(view *policy.SlotView) []int {
	p.edges = p.edges[:0]
	ctxs := view.Ctxs() // materializes the context vectors on demand
	for m := range view.SCNs {
		if len(view.SCNs[m].Cover) == 0 {
			continue
		}
		inv := invert(p.a[m], p.dim)
		theta := matVec(inv, p.b[m], p.dim)
		for _, idx := range view.SCNs[m].Cover {
			x := p.feature(ctxs[idx])
			mean := dot(theta, x)
			ainvx := matVec(inv, x, p.dim)
			bonus := p.alpha * math.Sqrt(math.Max(0, dot(x, ainvx)))
			p.edges = append(p.edges, assign.Edge{SCN: m, Task: idx, W: mean + bonus})
		}
	}
	return assign.GreedyCaps(p.edges, p.numSCNs, view.NumTasks, p.capacity, view.Caps)
}

// Observe implements policy.Policy.
func (p *LinUCB) Observe(view *policy.SlotView, assigned []int, fb *policy.Feedback) {
	ctxs := view.Ctxs()
	if ctxs == nil {
		return // cell-only view: nothing to regress on
	}
	for _, e := range fb.Execs {
		x := p.feature(ctxs[e.Task])
		// A += x xᵀ; b += r x.
		a := p.a[e.SCN]
		for i := 0; i < p.dim; i++ {
			for j := 0; j < p.dim; j++ {
				a[i*p.dim+j] += x[i] * x[j]
			}
		}
		r := e.Compound()
		for i := 0; i < p.dim; i++ {
			p.b[e.SCN][i] += r * x[i]
		}
	}
}

// dot returns the inner product of equal-length vectors.
func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// matVec multiplies a row-major n×n matrix by a vector.
func matVec(a, x []float64, n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		row := a[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			s += row[j] * x[j]
		}
		out[i] = s
	}
	return out
}

// invert returns the inverse of a row-major n×n matrix via Gauss-Jordan
// with partial pivoting. LinUCB's A = I + Σxxᵀ is symmetric positive
// definite, so the pivot never vanishes.
func invert(a []float64, n int) []float64 {
	aug := make([]float64, n*2*n)
	for i := 0; i < n; i++ {
		copy(aug[i*2*n:i*2*n+n], a[i*n:(i+1)*n])
		aug[i*2*n+n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(aug[col*2*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aug[r*2*n+col]); v > best {
				best = v
				pivot = r
			}
		}
		if pivot != col {
			for j := 0; j < 2*n; j++ {
				aug[col*2*n+j], aug[pivot*2*n+j] = aug[pivot*2*n+j], aug[col*2*n+j]
			}
		}
		pv := aug[col*2*n+col]
		inv := 1 / pv
		for j := 0; j < 2*n; j++ {
			aug[col*2*n+j] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug[r*2*n+col]
			if f == 0 {
				continue
			}
			for j := 0; j < 2*n; j++ {
				aug[r*2*n+j] -= f * aug[col*2*n+j]
			}
		}
	}
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		copy(out[i*n:(i+1)*n], aug[i*2*n+n:i*2*n+2*n])
	}
	return out
}
