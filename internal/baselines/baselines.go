// Package baselines implements the four benchmark policies of the paper's
// evaluation (Sec. 5):
//
//   - Oracle: knows the true means of U, V, Q and makes the best offloading
//     decision under the system constraints; the performance upper bound.
//   - vUCB: a variant of UCB1 over the same context hypercubes, combined
//     with the greedy assignment; ignores constraints (1c)/(1d).
//   - FML: a context-aware online learner with a deterministic
//     under-exploration trigger, also constraint-blind, combined with the
//     greedy assignment.
//   - Random: each SCN picks c random tasks without duplicates.
package baselines

import (
	"fmt"
	"math"
	"sort"

	"lfsc/internal/assign"
	"lfsc/internal/env"
	"lfsc/internal/mcmf"
	"lfsc/internal/policy"
	"lfsc/internal/rng"
)

// --- Random ---------------------------------------------------------------

// Random implements the paper's random baseline.
type Random struct {
	numSCNs, capacity int
	r                 *rng.Stream
	cov               [][]int // reusable per-slot coverage table aliasing the view
}

// NewRandom constructs the random policy.
func NewRandom(numSCNs, capacity int, r *rng.Stream) *Random {
	return &Random{numSCNs: numSCNs, capacity: capacity, r: r}
}

// Name implements policy.Policy.
func (p *Random) Name() string { return "Random" }

// Decide implements policy.Policy.
func (p *Random) Decide(view *policy.SlotView) []int {
	if cap(p.cov) < len(view.SCNs) {
		p.cov = make([][]int, len(view.SCNs))
	}
	p.cov = p.cov[:len(view.SCNs)]
	for m := range view.SCNs {
		p.cov[m] = view.SCNs[m].Cover
	}
	return assign.RandomCaps(p.cov, view.NumTasks, p.capacity, view.Caps, p.r)
}

// Observe implements policy.Policy (random learns nothing).
func (p *Random) Observe(*policy.SlotView, []int, *policy.Feedback) {}

// --- vUCB -----------------------------------------------------------------

// VUCB is the paper's "variant UCB" benchmark: per (SCN, hypercube) it
// maintains the empirical mean compound reward ḡ_f and pull count N_f, and
// scores tasks by the UCB index ḡ_f + sqrt(2·ln t / N_f); unexplored cells
// get an infinite index. Indices feed the greedy assignment. Constraints
// (1c)/(1d) play no role, exactly as the paper notes.
type VUCB struct {
	numSCNs, capacity, cells int
	sum                      [][]float64
	count                    [][]int
	slots                    int
	edges                    []assign.Edge
}

// NewVUCB constructs the vUCB policy.
func NewVUCB(numSCNs, capacity, cells int) *VUCB {
	v := &VUCB{numSCNs: numSCNs, capacity: capacity, cells: cells}
	v.sum = make([][]float64, numSCNs)
	v.count = make([][]int, numSCNs)
	for m := 0; m < numSCNs; m++ {
		v.sum[m] = make([]float64, cells)
		v.count[m] = make([]int, cells)
	}
	return v
}

// Name implements policy.Policy.
func (p *VUCB) Name() string { return "vUCB" }

// Decide implements policy.Policy.
func (p *VUCB) Decide(view *policy.SlotView) []int {
	p.slots++
	logT := math.Log(float64(p.slots) + 1)
	p.edges = p.edges[:0]
	for m := range view.SCNs {
		for _, idx := range view.SCNs[m].Cover {
			f := view.Cells[idx]
			n := p.count[m][f]
			var index float64
			if n == 0 {
				// Force exploration of unseen cells; huge but finite so
				// tie-breaking stays deterministic.
				index = 1e9
			} else {
				index = p.sum[m][f]/float64(n) + math.Sqrt(2*logT/float64(n))
			}
			p.edges = append(p.edges, assign.Edge{SCN: m, Task: idx, W: index})
		}
	}
	return assign.GreedyCaps(p.edges, p.numSCNs, view.NumTasks, p.capacity, view.Caps)
}

// Observe implements policy.Policy.
func (p *VUCB) Observe(view *policy.SlotView, assigned []int, fb *policy.Feedback) {
	for _, e := range fb.Execs {
		p.sum[e.SCN][e.Cell] += e.Compound()
		p.count[e.SCN][e.Cell]++
	}
}

// --- FML ------------------------------------------------------------------

// FML reproduces the paper's "Fast Machine Learning" benchmark: a
// context-partition learner with a deterministic control function — a cell
// is under-explored at slot t while N_f < t^z·ln(1+t), in which case it is
// explored with priority; otherwise the empirical mean is exploited.
// Like vUCB, it is constraint-blind and uses the greedy assignment stage
// for the multi-SCN coordination (the paper's "slight modification").
type FML struct {
	numSCNs, capacity, cells int
	z                        float64
	sum                      [][]float64
	count                    [][]int
	slots                    int
	edges                    []assign.Edge
}

// NewFML constructs the FML policy. z is the exploration exponent
// (default 1/3 when zero — the canonical choice for 3-dimensional contexts).
func NewFML(numSCNs, capacity, cells int, z float64) *FML {
	if z <= 0 {
		z = 1.0 / 3
	}
	f := &FML{numSCNs: numSCNs, capacity: capacity, cells: cells, z: z}
	f.sum = make([][]float64, numSCNs)
	f.count = make([][]int, numSCNs)
	for m := 0; m < numSCNs; m++ {
		f.sum[m] = make([]float64, cells)
		f.count[m] = make([]int, cells)
	}
	return f
}

// Name implements policy.Policy.
func (p *FML) Name() string { return "FML" }

// Decide implements policy.Policy.
func (p *FML) Decide(view *policy.SlotView) []int {
	p.slots++
	t := float64(p.slots)
	threshold := math.Pow(t, p.z) * math.Log(1+t)
	p.edges = p.edges[:0]
	for m := range view.SCNs {
		for _, idx := range view.SCNs[m].Cover {
			f := view.Cells[idx]
			n := p.count[m][f]
			var w float64
			if float64(n) < threshold {
				// Exploration phase: prioritise the least-pulled cells.
				w = 1e9 - float64(n)
			} else {
				w = p.sum[m][f] / float64(n)
			}
			p.edges = append(p.edges, assign.Edge{SCN: m, Task: idx, W: w})
		}
	}
	return assign.GreedyCaps(p.edges, p.numSCNs, view.NumTasks, p.capacity, view.Caps)
}

// Observe implements policy.Policy.
func (p *FML) Observe(view *policy.SlotView, assigned []int, fb *policy.Feedback) {
	for _, e := range fb.Execs {
		p.sum[e.SCN][e.Cell] += e.Compound()
		p.count[e.SCN][e.Cell]++
	}
}

// --- Oracle ---------------------------------------------------------------

// OracleConfig parameterises the oracle.
type OracleConfig struct {
	// Capacity, Alpha, Beta are the system constraints.
	Capacity int
	Alpha    float64
	Beta     float64
	// ExactAssign uses min-cost max-flow instead of the greedy for the
	// base assignment (slower, slightly better).
	ExactAssign bool
}

// Oracle knows the environment's true means and solves each slot's
// offloading problem under the constraints: a max-expected-compound-reward
// assignment (greedy or exact flow) followed by per-SCN repair steps that
// enforce the resource ceiling β and then improve the QoS floor α by
// swaps/additions. On small instances the repair solution is within a few
// percent of the exact ILP (verified in tests).
type Oracle struct {
	cfg OracleConfig
	env *env.Env
}

// NewOracle constructs the oracle around ground truth e.
func NewOracle(cfg OracleConfig, e *env.Env) (*Oracle, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("baselines: oracle capacity must be positive")
	}
	if cfg.Alpha < 0 || cfg.Beta < 0 {
		return nil, fmt.Errorf("baselines: oracle alpha/beta must be non-negative")
	}
	if e == nil {
		return nil, fmt.Errorf("baselines: oracle needs an environment")
	}
	return &Oracle{cfg: cfg, env: e}, nil
}

// Name implements policy.Policy.
func (p *Oracle) Name() string { return "Oracle" }

// Decide implements policy.Policy.
func (p *Oracle) Decide(view *policy.SlotView) []int {
	numSCNs := len(view.SCNs)
	var assigned []int
	if p.cfg.ExactAssign && view.Caps == nil {
		// The flow formulation models one uniform per-SCN capacity; under
		// scenario capacity dynamics the oracle falls back to the greedy
		// base assignment (the repair passes below enforce the same
		// per-SCN constraints either way).
		weights := make([][]float64, numSCNs)
		for m := range weights {
			weights[m] = make([]float64, view.NumTasks)
			for i := range weights[m] {
				weights[m][i] = math.Inf(-1)
			}
			for _, idx := range view.SCNs[m].Cover {
				weights[m][idx] = p.env.ExpectedCompound(m, view.Cells[idx])
			}
		}
		assigned, _ = mcmf.AssignMax(weights, view.NumTasks, p.cfg.Capacity)
	} else {
		var edges []assign.Edge
		for m := range view.SCNs {
			for _, idx := range view.SCNs[m].Cover {
				edges = append(edges, assign.Edge{
					SCN: m, Task: idx,
					W: p.env.ExpectedCompound(m, view.Cells[idx]),
				})
			}
		}
		assigned = assign.GreedyCaps(edges, numSCNs, view.NumTasks, p.cfg.Capacity, view.Caps)
	}
	p.repair(view, assigned)
	return assigned
}

// repair enforces β and improves α per SCN, in place. Cell lookups go
// straight through view.Cells — a task's hypercube does not depend on which
// SCN is asking.
func (p *Oracle) repair(view *policy.SlotView, assigned []int) {
	perSCN := assign.PerSCN(assigned, len(view.SCNs))
	cells := view.Cells
	for m := range view.SCNs {
		sel := perSCN[m]
		// Effective per-SCN constraints this slot: the scenario's c_n(t)
		// and α/β multipliers when attached, the nominal values otherwise
		// (identical floats — static runs stay bit-identical).
		capM := view.CapAt(m, p.cfg.Capacity)
		alpha, beta := p.cfg.Alpha, p.cfg.Beta
		if view.AlphaMul != nil {
			alpha *= view.AlphaMul[m]
		}
		if view.BetaMul != nil {
			beta *= view.BetaMul[m]
		}
		vOf := func(task int) float64 { return p.env.MeanLikelihood(m, cells[task]) }
		qOf := func(task int) float64 { return p.env.MeanConsumption(m, cells[task]) }
		gOf := func(task int) float64 { return p.env.ExpectedCompound(m, cells[task]) }
		qSum, vSum := 0.0, 0.0
		for _, task := range sel {
			qSum += qOf(task)
			vSum += vOf(task)
		}
		// β repair: drop the worst reward-per-resource task until feasible.
		for qSum > beta && len(sel) > 0 {
			worst, worstVal := -1, math.Inf(1)
			for k, task := range sel {
				if val := gOf(task) / qOf(task); val < worstVal {
					worstVal = val
					worst = k
				}
			}
			task := sel[worst]
			qSum -= qOf(task)
			vSum -= vOf(task)
			assigned[task] = -1
			sel = append(sel[:worst], sel[worst+1:]...)
		}
		// Refill: dropping a heavy task frees a beam that a lighter task
		// may use profitably — add globally unassigned candidates by
		// reward while β and the beam budget allow.
		if len(sel) < capM {
			var fill []int
			for _, idx := range view.SCNs[m].Cover {
				if assigned[idx] == -1 {
					fill = append(fill, idx)
				}
			}
			sort.Slice(fill, func(a, b int) bool { return gOf(fill[a]) > gOf(fill[b]) })
			for _, cand := range fill {
				if len(sel) >= capM {
					break
				}
				if qSum+qOf(cand) > beta {
					continue
				}
				assigned[cand] = m
				sel = append(sel, cand)
				qSum += qOf(cand)
				vSum += vOf(cand)
			}
		}
		// α repair: add or swap toward higher completion likelihood.
		if vSum >= alpha {
			perSCN[m] = sel
			continue
		}
		// Candidates: visible, globally unassigned tasks, best v̄ first.
		var cands []int
		for _, idx := range view.SCNs[m].Cover {
			if assigned[idx] == -1 {
				cands = append(cands, idx)
			}
		}
		sort.Slice(cands, func(a, b int) bool { return vOf(cands[a]) > vOf(cands[b]) })
		for _, cand := range cands {
			if vSum >= alpha {
				break
			}
			if assigned[cand] != -1 {
				continue // taken by an earlier swap? (defensive)
			}
			if len(sel) < capM && qSum+qOf(cand) <= beta {
				assigned[cand] = m
				sel = append(sel, cand)
				qSum += qOf(cand)
				vSum += vOf(cand)
				continue
			}
			// Swap with the lowest-v̄ selected task when it helps and fits.
			worst, worstV := -1, math.Inf(1)
			for k, task := range sel {
				if v := vOf(task); v < worstV {
					worstV = v
					worst = k
				}
			}
			if worst == -1 || vOf(cand) <= worstV {
				break // no improving move exists
			}
			out := sel[worst]
			if qSum-qOf(out)+qOf(cand) > beta {
				continue
			}
			assigned[out] = -1
			assigned[cand] = m
			qSum += qOf(cand) - qOf(out)
			vSum += vOf(cand) - vOf(out)
			sel[worst] = cand
		}
		perSCN[m] = sel
	}
}

// Observe implements policy.Policy (the oracle has nothing to learn).
func (p *Oracle) Observe(*policy.SlotView, []int, *policy.Feedback) {}
