package metrics

import (
	"math"
	"testing"
)

func fill(s *Series, reward, v1, v2 float64) {
	for t := 0; t < s.T(); t++ {
		s.Record(t, reward, v1, v2, 10, 5)
	}
}

func TestRecordAndTotals(t *testing.T) {
	s := NewSeries("lfsc", 100)
	fill(s, 2, 0.5, 0.25)
	if got := s.TotalReward(); math.Abs(got-200) > 1e-9 {
		t.Fatalf("total reward %v", got)
	}
	if got := s.TotalV1(); math.Abs(got-50) > 1e-9 {
		t.Fatalf("total v1 %v", got)
	}
	if got := s.TotalV2(); math.Abs(got-25) > 1e-9 {
		t.Fatalf("total v2 %v", got)
	}
	if got := s.TotalViolations(); math.Abs(got-75) > 1e-9 {
		t.Fatalf("total violations %v", got)
	}
}

func TestCumulativeSeries(t *testing.T) {
	s := NewSeries("x", 3)
	s.Record(0, 1, 1, 0, 1, 1)
	s.Record(1, 2, 0, 1, 1, 1)
	s.Record(2, 3, 1, 1, 1, 1)
	cum := s.CumReward()
	if cum[0] != 1 || cum[1] != 3 || cum[2] != 6 {
		t.Fatalf("cum reward %v", cum)
	}
	cv := s.CumViolations()
	if cv[0] != 1 || cv[1] != 2 || cv[2] != 4 {
		t.Fatalf("cum violations %v", cv)
	}
	if s.CumV1()[2] != 2 || s.CumV2()[2] != 2 {
		t.Fatal("cum v1/v2 wrong")
	}
}

func TestRecordValidation(t *testing.T) {
	s := NewSeries("x", 2)
	for _, fn := range []func(){
		func() { s.Record(5, 0, 0, 0, 0, 0) },
		func() { s.Record(0, 1, -1, 0, 0, 0) },
		func() { NewSeries("x", 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPerformanceRatio(t *testing.T) {
	s := NewSeries("x", 10)
	fill(s, 5, 0, 0)
	if got := s.PerformanceRatio(); math.Abs(got-50) > 1e-9 {
		t.Fatalf("violation-free ratio %v, want 50", got)
	}
	fill(s, 5, 2, 2.9)
	want := 50.0 / (1 + 49)
	if got := s.PerformanceRatio(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ratio %v, want %v", got, want)
	}
}

func TestRegretVs(t *testing.T) {
	oracle := NewSeries("oracle", 4)
	mine := NewSeries("lfsc", 4)
	fill(oracle, 3, 0, 0)
	fill(mine, 2, 0, 0)
	reg := mine.RegretVs(oracle)
	for i, want := range []float64{1, 2, 3, 4} {
		if math.Abs(reg[i]-want) > 1e-9 {
			t.Fatalf("regret %v", reg)
		}
	}
}

func TestRegretVsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("horizon mismatch accepted")
		}
	}()
	NewSeries("a", 3).RegretVs(NewSeries("b", 4))
}

func TestRegretExponentSublinear(t *testing.T) {
	// Reference gains 1/slot; mine gains 1 - 1/(2*sqrt(t)) ⇒ regret ~ sqrt(t).
	T := 5000
	oracle := NewSeries("oracle", T)
	mine := NewSeries("lfsc", T)
	for tt := 0; tt < T; tt++ {
		oracle.Record(tt, 1, 0, 0, 1, 1)
		mine.Record(tt, 1-1/(2*math.Sqrt(float64(tt+1))), 0, 0, 1, 1)
	}
	exp := mine.RegretExponent(oracle)
	if math.Abs(exp-0.5) > 0.05 {
		t.Fatalf("regret exponent %v, want ~0.5", exp)
	}
	if !mine.CheckSublinear(oracle, 0.8) {
		t.Fatal("sqrt regret flagged as not sub-linear")
	}
	// Linear regret should fail the check.
	lin := NewSeries("bad", T)
	for tt := 0; tt < T; tt++ {
		lin.Record(tt, 0.5, 0, 0, 1, 1)
	}
	if lin.CheckSublinear(oracle, 0.8) {
		t.Fatal("linear regret passed the sub-linear check")
	}
}

func TestCheckSublinearNegativeRegret(t *testing.T) {
	T := 100
	oracle := NewSeries("oracle", T)
	better := NewSeries("better", T)
	for tt := 0; tt < T; tt++ {
		oracle.Record(tt, 1, 0, 0, 1, 1)
		better.Record(tt, 2, 0, 0, 1, 1)
	}
	if !better.CheckSublinear(oracle, 0.8) {
		t.Fatal("negative regret should pass trivially")
	}
}

func TestViolationExponent(t *testing.T) {
	T := 4000
	s := NewSeries("x", T)
	for tt := 0; tt < T; tt++ {
		// per-slot violation decaying like 1/sqrt(t) ⇒ cumulative ~ sqrt(t).
		s.Record(tt, 1, 1/math.Sqrt(float64(tt+1)), 0, 1, 1)
	}
	exp := s.ViolationExponent()
	if math.Abs(exp-0.5) > 0.05 {
		t.Fatalf("violation exponent %v, want ~0.5", exp)
	}
}

func TestWindowReward(t *testing.T) {
	s := NewSeries("x", 4)
	for tt := 0; tt < 4; tt++ {
		s.Record(tt, float64(tt+1), 0, 0, 1, 1)
	}
	w := s.WindowReward(2)
	want := []float64{1, 1.5, 2.5, 3.5}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-9 {
			t.Fatalf("window reward %v", w)
		}
	}
}

func TestMeanAggregation(t *testing.T) {
	a := NewSeries("p", 2)
	b := NewSeries("p", 2)
	a.Record(0, 1, 2, 3, 4, 5)
	a.Record(1, 2, 0, 0, 1, 1)
	b.Record(0, 3, 0, 1, 2, 3)
	b.Record(1, 4, 2, 2, 3, 3)
	m := Mean([]*Series{a, b})
	if m.Reward[0] != 2 || m.Reward[1] != 3 {
		t.Fatalf("mean reward %v", m.Reward)
	}
	if m.V1[0] != 1 || m.V2[0] != 2 {
		t.Fatal("mean violations wrong")
	}
	if m.Assigned[0] != 3 || m.Completed[0] != 4 {
		t.Fatal("mean counters wrong")
	}
}

func TestMeanValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { Mean(nil) },
		func() { Mean([]*Series{NewSeries("a", 2), NewSeries("a", 3)}) },
		func() { Mean([]*Series{NewSeries("a", 2), NewSeries("b", 2)}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSummarize(t *testing.T) {
	a := NewSeries("p", 10)
	b := NewSeries("p", 10)
	fill(a, 1, 0.1, 0.2)
	fill(b, 3, 0.3, 0.4)
	sum := Summarize([]*Series{a, b})
	if sum.Policy != "p" {
		t.Fatal("policy name lost")
	}
	if math.Abs(sum.Reward-20) > 1e-9 { // (10+30)/2
		t.Fatalf("summary reward %v", sum.Reward)
	}
	if math.Abs(sum.V1-2) > 1e-9 || math.Abs(sum.V2-3) > 1e-9 {
		t.Fatalf("summary violations %v %v", sum.V1, sum.V2)
	}
	if sum.RewardCI <= 0 {
		t.Fatal("CI should be positive with differing replicas")
	}
}

func TestRecordMBS(t *testing.T) {
	s := NewSeries("x", 3)
	if s.TotalMBSReward() != 0 {
		t.Fatal("MBS reward should default to 0")
	}
	s.RecordMBS(1, 4.5)
	if s.MBSReward == nil || s.TotalMBSReward() != 4.5 {
		t.Fatalf("MBS total = %v", s.TotalMBSReward())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range RecordMBS did not panic")
		}
	}()
	s.RecordMBS(9, 1)
}

func TestMeanWithMBS(t *testing.T) {
	a := NewSeries("p", 2)
	b := NewSeries("p", 2)
	a.Record(0, 1, 0, 0, 1, 1)
	b.Record(0, 3, 0, 0, 1, 1)
	a.RecordMBS(0, 2)
	b.RecordMBS(0, 6)
	m := Mean([]*Series{a, b})
	if m.MBSReward[0] != 4 {
		t.Fatalf("mean MBS = %v", m.MBSReward[0])
	}
	// Mixing MBS and non-MBS replicas still aggregates.
	c := NewSeries("p", 2)
	c.Record(0, 5, 0, 0, 1, 1)
	m2 := Mean([]*Series{a, c})
	if m2.MBSReward == nil {
		t.Fatal("partial MBS aggregation lost the series")
	}
}

// TestMeanMixedMBSValues pins the semantics of aggregating replicas where
// only some carry an MBS series: a replica without one contributes 0 to
// every slot, and the mean divides by the full replica count — regardless
// of whether the MBS-carrying replica comes first or last.
func TestMeanMixedMBSValues(t *testing.T) {
	withMBS := NewSeries("p", 2)
	withMBS.Record(0, 1, 0, 0, 1, 1)
	withMBS.RecordMBS(0, 6)
	withMBS.RecordMBS(1, 3)
	bare1 := NewSeries("p", 2)
	bare1.Record(0, 2, 0, 0, 1, 1)
	bare2 := NewSeries("p", 2)
	bare2.Record(0, 3, 0, 0, 1, 1)

	for name, order := range map[string][]*Series{
		"mbs-first": {withMBS, bare1, bare2},
		"mbs-last":  {bare1, bare2, withMBS},
	} {
		m := Mean(order)
		if m.MBSReward == nil {
			t.Fatalf("%s: mixed aggregation dropped the MBS series", name)
		}
		if got := m.MBSReward[0]; got != 2 {
			t.Fatalf("%s: mean MBS slot 0 = %v, want 6/3 = 2", name, got)
		}
		if got := m.MBSReward[1]; got != 1 {
			t.Fatalf("%s: mean MBS slot 1 = %v, want 3/3 = 1", name, got)
		}
		if got := m.Reward[0]; got != 2 {
			t.Fatalf("%s: mean reward slot 0 = %v, want 2", name, got)
		}
	}
	// All-bare aggregation keeps MBSReward nil.
	if m := Mean([]*Series{bare1, bare2}); m.MBSReward != nil {
		t.Fatal("bare replicas must not grow an MBS series")
	}
}

// TestSummarizeMixedMBS: Summarize works over mixed MBS replicas — the
// scalar summary is MBS-agnostic (reward/violations/ratio only) and must
// not be perturbed or panic when MBSReward is nil on some replicas.
func TestSummarizeMixedMBS(t *testing.T) {
	withMBS := NewSeries("p", 4)
	bare := NewSeries("p", 4)
	fill(withMBS, 2, 1, 0)
	fill(bare, 4, 3, 0)
	withMBS.RecordMBS(0, 100) // must not leak into the summary
	sum := Summarize([]*Series{withMBS, bare})
	if sum.Policy != "p" {
		t.Fatalf("policy %q", sum.Policy)
	}
	if got, want := sum.Reward, (2.0*4+4.0*4)/2; got != want {
		t.Fatalf("summary reward %v, want %v", got, want)
	}
	if got, want := sum.V1, (1.0*4+3.0*4)/2; got != want {
		t.Fatalf("summary V1 %v, want %v", got, want)
	}
	wantRatio := (withMBS.PerformanceRatio() + bare.PerformanceRatio()) / 2
	if math.Abs(sum.Ratio-wantRatio) > 1e-12 {
		t.Fatalf("summary ratio %v, want %v", sum.Ratio, wantRatio)
	}
}

// TestRegretExponentAllNegative pins the NaN path: when the policy beats
// the reference everywhere, cumulative regret never becomes positive, the
// log-log fit has no usable points, RegretExponent returns NaN, and
// CheckSublinear treats that as trivially sub-linear.
func TestRegretExponentAllNegative(t *testing.T) {
	T := 200
	ref := NewSeries("oracle", T)
	better := NewSeries("lfsc", T)
	for tt := 0; tt < T; tt++ {
		ref.Record(tt, 1, 0, 0, 1, 1)
		better.Record(tt, 1.5, 0, 0, 1, 1)
	}
	exp := better.RegretExponent(ref)
	if !math.IsNaN(exp) {
		t.Fatalf("all-negative regret exponent = %v, want NaN", exp)
	}
	if !better.CheckSublinear(ref, 0.0) {
		t.Fatal("NaN exponent must pass CheckSublinear even with a zero threshold")
	}
}
