// Package metrics implements the paper's evaluation metrics (Sec. 3.2 and
// Sec. 5): per-slot and cumulative compound reward, the two violation
// processes V1 (QoS shortfall against the per-SCN floor α, constraint (1c))
// and V2 (resource excess against the per-SCN ceiling β, constraint (1d)),
// regret against an oracle trajectory, and the performance ratio
// reward/(1+violations). It also aggregates series across independent
// simulation replicas.
package metrics

import (
	"fmt"
	"math"

	"lfsc/internal/stats"
)

// Series is the full per-slot record of one policy in one run.
type Series struct {
	// Policy is the display name of the policy that produced the series.
	Policy string
	// Reward[t] is the total realised compound reward of slot t across SCNs.
	Reward []float64
	// V1[t] is Σ_m max(0, α − completed_m(t)): the QoS shortfall.
	V1 []float64
	// V2[t] is Σ_m max(0, consumed_m(t) − β): the resource excess.
	V2 []float64
	// Assigned[t] counts tasks offloaded in slot t.
	Assigned []float64
	// Completed[t] counts tasks that finished successfully in slot t.
	Completed []float64
	// MBSReward[t] is the compound reward earned by the macrocell base
	// station fallback (the Sec. 6 future-work extension); nil unless the
	// scenario enables it. It is tracked separately from Reward so the
	// paper's SCN-level comparisons are unaffected.
	MBSReward []float64
}

// NewSeries allocates a series for a horizon of T slots.
func NewSeries(policy string, T int) *Series {
	if T <= 0 {
		panic("metrics: non-positive horizon")
	}
	return &Series{
		Policy:    policy,
		Reward:    make([]float64, T),
		V1:        make([]float64, T),
		V2:        make([]float64, T),
		Assigned:  make([]float64, T),
		Completed: make([]float64, T),
	}
}

// T returns the horizon length.
func (s *Series) T() int { return len(s.Reward) }

// Record stores the outcome of slot t.
func (s *Series) Record(t int, reward, v1, v2 float64, assigned, completed int) {
	if t < 0 || t >= len(s.Reward) {
		panic(fmt.Sprintf("metrics: slot %d out of horizon %d", t, len(s.Reward)))
	}
	if v1 < 0 || v2 < 0 {
		panic("metrics: violations must be non-negative")
	}
	s.Reward[t] = reward
	s.V1[t] = v1
	s.V2[t] = v2
	s.Assigned[t] = float64(assigned)
	s.Completed[t] = float64(completed)
}

// EnableMBS preallocates the macrocell fallback series so the recording loop
// stays allocation-free. Idempotent; RecordMBS still allocates lazily for
// callers that skip it.
func (s *Series) EnableMBS() {
	if s.MBSReward == nil {
		s.MBSReward = make([]float64, len(s.Reward))
	}
}

// RecordMBS stores the macrocell fallback reward of slot t, allocating the
// series on first use.
func (s *Series) RecordMBS(t int, reward float64) {
	if t < 0 || t >= len(s.Reward) {
		panic(fmt.Sprintf("metrics: slot %d out of horizon %d", t, len(s.Reward)))
	}
	if s.MBSReward == nil {
		s.MBSReward = make([]float64, len(s.Reward))
	}
	s.MBSReward[t] = reward
}

// TotalMBSReward is the final cumulative macrocell fallback reward
// (0 when the extension is disabled).
func (s *Series) TotalMBSReward() float64 { return stats.Sum(s.MBSReward) }

// CumReward returns the cumulative compound reward series (paper Fig. 2a).
func (s *Series) CumReward() []float64 { return stats.Cumulative(s.Reward) }

// CumV1 returns the cumulative QoS violation series.
func (s *Series) CumV1() []float64 { return stats.Cumulative(s.V1) }

// CumV2 returns the cumulative resource violation series.
func (s *Series) CumV2() []float64 { return stats.Cumulative(s.V2) }

// CumViolations returns the cumulative total violation series V1+V2.
func (s *Series) CumViolations() []float64 {
	out := make([]float64, s.T())
	acc := 0.0
	for t := range out {
		acc += s.V1[t] + s.V2[t]
		out[t] = acc
	}
	return out
}

// TotalReward is the final cumulative compound reward.
func (s *Series) TotalReward() float64 { return stats.Sum(s.Reward) }

// TotalV1 is the final cumulative QoS violation.
func (s *Series) TotalV1() float64 { return stats.Sum(s.V1) }

// TotalV2 is the final cumulative resource violation.
func (s *Series) TotalV2() float64 { return stats.Sum(s.V2) }

// TotalViolations is TotalV1 + TotalV2.
func (s *Series) TotalViolations() float64 { return s.TotalV1() + s.TotalV2() }

// PerformanceRatio is the paper's Sec. 5 metric relating achieved reward to
// accumulated violations: total reward / (1 + total violations). The +1
// keeps the ratio finite for violation-free runs.
func (s *Series) PerformanceRatio() float64 {
	return s.TotalReward() / (1 + s.TotalViolations())
}

// RegretVs returns the cumulative regret trajectory of s against a
// reference (oracle) series on the same workload:
// R(t) = Σ_{τ≤t} (reward_ref(τ) − reward_s(τ)).
func (s *Series) RegretVs(ref *Series) []float64 {
	if ref.T() != s.T() {
		panic("metrics: horizon mismatch in RegretVs")
	}
	out := make([]float64, s.T())
	acc := 0.0
	for t := range out {
		acc += ref.Reward[t] - s.Reward[t]
		out[t] = acc
	}
	return out
}

// RegretExponent estimates the growth exponent θ of the cumulative regret
// (sub-linear means θ < 1; Theorem 1 predicts θ ≈ 1/2 up to logs). Negative
// or zero regret segments are skipped by the underlying fit.
func (s *Series) RegretExponent(ref *Series) float64 {
	return stats.GrowthExponent(s.RegretVs(ref))
}

// ViolationExponent estimates the growth exponent of cumulative V1+V2.
func (s *Series) ViolationExponent() float64 {
	return stats.GrowthExponent(s.CumViolations())
}

// WindowReward returns the trailing-window smoothed per-slot reward
// (paper Fig. 2b is far more readable smoothed; window=1 is raw).
func (s *Series) WindowReward(window int) []float64 {
	return stats.WindowMean(s.Reward, window)
}

// Mean aggregates replicas point-wise into a mean series. All replicas must
// share the policy name and horizon.
func Mean(replicas []*Series) *Series {
	if len(replicas) == 0 {
		panic("metrics: no replicas to aggregate")
	}
	T := replicas[0].T()
	name := replicas[0].Policy
	out := NewSeries(name, T)
	for _, r := range replicas {
		if r.T() != T {
			panic("metrics: replica horizon mismatch")
		}
		if r.Policy != name {
			panic("metrics: aggregating different policies")
		}
		for t := 0; t < T; t++ {
			out.Reward[t] += r.Reward[t]
			out.V1[t] += r.V1[t]
			out.V2[t] += r.V2[t]
			out.Assigned[t] += r.Assigned[t]
			out.Completed[t] += r.Completed[t]
		}
		if r.MBSReward != nil {
			if out.MBSReward == nil {
				out.MBSReward = make([]float64, T)
			}
			for t := 0; t < T; t++ {
				out.MBSReward[t] += r.MBSReward[t]
			}
		}
	}
	inv := 1 / float64(len(replicas))
	for t := 0; t < T; t++ {
		out.Reward[t] *= inv
		out.V1[t] *= inv
		out.V2[t] *= inv
		out.Assigned[t] *= inv
		out.Completed[t] *= inv
		if out.MBSReward != nil {
			out.MBSReward[t] *= inv
		}
	}
	return out
}

// FinalSummary condenses a set of replicas into scalar means with 95% CIs
// for report tables.
type FinalSummary struct {
	Policy           string
	Reward, RewardCI float64
	V1, V1CI         float64
	V2, V2CI         float64
	Ratio            float64
}

// Summarize computes a FinalSummary over replicas.
func Summarize(replicas []*Series) FinalSummary {
	if len(replicas) == 0 {
		panic("metrics: no replicas to summarize")
	}
	var rw, v1, v2, ratio stats.Summary
	for _, r := range replicas {
		rw.Add(r.TotalReward())
		v1.Add(r.TotalV1())
		v2.Add(r.TotalV2())
		ratio.Add(r.PerformanceRatio())
	}
	return FinalSummary{
		Policy: replicas[0].Policy,
		Reward: rw.Mean(), RewardCI: rw.CI95(),
		V1: v1.Mean(), V1CI: v1.CI95(),
		V2: v2.Mean(), V2CI: v2.CI95(),
		Ratio: ratio.Mean(),
	}
}

// CheckSublinear reports whether the regret of s against ref grows
// sub-linearly, allowing a small tolerance on the fitted exponent.
func (s *Series) CheckSublinear(ref *Series, maxExponent float64) bool {
	exp := s.RegretExponent(ref)
	if math.IsNaN(exp) {
		// Regret never became positive — trivially sub-linear.
		return true
	}
	return exp <= maxExponent
}
