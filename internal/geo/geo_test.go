package geo

import (
	"math"
	"testing"

	"lfsc/internal/rng"
)

func TestPointDistance(t *testing.T) {
	if d := (Point{0, 0}).Distance(Point{3, 4}); d != 5 {
		t.Fatalf("distance = %v", d)
	}
}

func TestAreaContainsClamp(t *testing.T) {
	a := Area{W: 10, H: 5}
	if !a.Contains(Point{5, 2}) || a.Contains(Point{-1, 2}) || a.Contains(Point{5, 6}) {
		t.Fatal("Contains wrong")
	}
	p := a.Clamp(Point{-3, 100})
	if p.X != 0 || p.Y != 5 {
		t.Fatalf("Clamp = %v", p)
	}
}

func TestRandomPointInside(t *testing.T) {
	a := Area{W: 100, H: 50}
	r := rng.New(1)
	for i := 0; i < 1000; i++ {
		if !a.Contains(a.RandomPoint(r)) {
			t.Fatal("RandomPoint outside area")
		}
	}
}

func TestPlaceGrid(t *testing.T) {
	a := Area{W: 1000, H: 1000}
	for _, n := range []int{1, 4, 9, 30, 100} {
		pts := PlaceGrid(a, n)
		if len(pts) != n {
			t.Fatalf("PlaceGrid(%d) returned %d points", n, len(pts))
		}
		for _, p := range pts {
			if !a.Contains(p) {
				t.Fatalf("grid point %v outside area", p)
			}
		}
	}
	if PlaceGrid(a, 0) != nil {
		t.Fatal("PlaceGrid(0) should be nil")
	}
}

func TestPlaceGridSpread(t *testing.T) {
	// Grid points must be pairwise distinct and reasonably spread.
	a := Area{W: 900, H: 900}
	pts := PlaceGrid(a, 9)
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Distance(pts[j]) < 100 {
				t.Fatalf("grid points %v and %v too close", pts[i], pts[j])
			}
		}
	}
}

func TestPlacePoisson(t *testing.T) {
	a := Area{W: 500, H: 500}
	pts := PlacePoisson(a, 30, rng.New(2))
	if len(pts) != 30 {
		t.Fatalf("PlacePoisson count %d", len(pts))
	}
	for _, p := range pts {
		if !a.Contains(p) {
			t.Fatal("poisson point outside area")
		}
	}
}

func TestWaypointStaysInsideAndMoves(t *testing.T) {
	a := Area{W: 200, H: 200}
	r := rng.New(3)
	w := NewWaypoint(a, 1, 5, 3, r)
	start := w.Pos
	moved := false
	for i := 0; i < 500; i++ {
		w.Step(a, r)
		if !a.Contains(w.Pos) {
			t.Fatalf("WD left area at step %d: %v", i, w.Pos)
		}
		if w.Pos.Distance(start) > 1e-9 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("WD never moved")
	}
}

func TestWaypointSpeedBound(t *testing.T) {
	a := Area{W: 1000, H: 1000}
	r := rng.New(4)
	w := NewWaypoint(a, 2, 2, 0, r)
	prev := w.Pos
	for i := 0; i < 1000; i++ {
		w.Step(a, r)
		if d := w.Pos.Distance(prev); d > 2+1e-9 {
			t.Fatalf("WD moved %v > speed 2 in one slot", d)
		}
		prev = w.Pos
	}
}

func TestCoverage(t *testing.T) {
	scns := []Point{{0, 0}, {10, 0}}
	wds := []Point{{1, 0}, {5, 0}, {9, 0}, {100, 100}}
	cov := Coverage(scns, wds, 5)
	// SCN0 covers WD0 (d=1) and WD1 (d=5, inclusive). SCN1 covers WD1, WD2.
	if len(cov[0]) != 2 || cov[0][0] != 0 || cov[0][1] != 1 {
		t.Fatalf("cov[0] = %v", cov[0])
	}
	if len(cov[1]) != 2 || cov[1][0] != 1 || cov[1][1] != 2 {
		t.Fatalf("cov[1] = %v", cov[1])
	}
	counts := CoverageCounts(cov)
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestCoverageMatchesBruteForce(t *testing.T) {
	r := rng.New(5)
	a := Area{W: 300, H: 300}
	scns := PlacePoisson(a, 10, r)
	wds := PlacePoisson(a, 200, r)
	const radius = 60.0
	cov := Coverage(scns, wds, radius)
	for m, s := range scns {
		want := map[int]bool{}
		for i, w := range wds {
			if s.Distance(w) <= radius {
				want[i] = true
			}
		}
		if len(want) != len(cov[m]) {
			t.Fatalf("SCN %d coverage size %d, brute force %d", m, len(cov[m]), len(want))
		}
		for _, i := range cov[m] {
			if !want[i] {
				t.Fatalf("SCN %d wrongly covers WD %d", m, i)
			}
		}
	}
}

func TestOverlapFraction(t *testing.T) {
	// WD0 covered by both SCNs, WD1 by one, WD2 by none.
	cov := [][]int{{0, 1}, {0}}
	f := OverlapFraction(cov, 3)
	if math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("overlap = %v, want 0.5", f)
	}
	if OverlapFraction([][]int{{}, {}}, 5) != 0 {
		t.Fatal("no-coverage overlap should be 0")
	}
}

func TestOverlapIncreasesWithRadius(t *testing.T) {
	r := rng.New(6)
	a := Area{W: 400, H: 400}
	scns := PlaceGrid(a, 16)
	wds := PlacePoisson(a, 500, r)
	small := OverlapFraction(Coverage(scns, wds, 60), len(wds))
	large := OverlapFraction(Coverage(scns, wds, 150), len(wds))
	if large <= small {
		t.Fatalf("overlap should grow with radius: %v vs %v", small, large)
	}
}

func TestValidate(t *testing.T) {
	a := Area{W: 10, H: 10}
	if err := Validate(a, []Point{{5, 5}}); err != nil {
		t.Fatal(err)
	}
	if err := Validate(a, []Point{{50, 5}}); err == nil {
		t.Fatal("outside SCN accepted")
	}
	if err := Validate(Area{W: 0, H: 10}, nil); err == nil {
		t.Fatal("empty area accepted")
	}
}

func BenchmarkCoverage(b *testing.B) {
	r := rng.New(7)
	a := Area{W: 2000, H: 2000}
	scns := PlaceGrid(a, 30)
	wds := PlacePoisson(a, 2000, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Coverage(scns, wds, 400)
	}
}
