// Package geo models the spatial layer of the small cell network (paper
// Fig. 1): SCN placement on a 2-D service area, wireless-device positions
// and mobility, and the per-slot coverage relation D_{m,t} (which SCNs can
// hear which WDs). The paper notes that "a WD may be covered by multiple
// small cells, and WDs are free to move from one cell to another in
// different time slots" — overlapping circular coverage plus random-waypoint
// mobility reproduces exactly that.
package geo

import (
	"fmt"
	"math"

	"lfsc/internal/rng"
)

// Point is a position in meters on the service area.
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance between two points.
func (p Point) Distance(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Area is a rectangular service area [0,W]×[0,H] in meters.
type Area struct {
	W, H float64
}

// Contains reports whether p lies inside the area.
func (a Area) Contains(p Point) bool {
	return p.X >= 0 && p.X <= a.W && p.Y >= 0 && p.Y <= a.H
}

// RandomPoint draws a uniform point inside the area.
func (a Area) RandomPoint(r *rng.Stream) Point {
	return Point{X: r.Uniform(0, a.W), Y: r.Uniform(0, a.H)}
}

// Clamp projects p onto the area.
func (a Area) Clamp(p Point) Point {
	if p.X < 0 {
		p.X = 0
	}
	if p.X > a.W {
		p.X = a.W
	}
	if p.Y < 0 {
		p.Y = 0
	}
	if p.Y > a.H {
		p.Y = a.H
	}
	return p
}

// PlaceGrid places n SCNs on a near-square grid covering the area, the
// typical planned street-light deployment. Cells sit at cell centers.
func PlaceGrid(a Area, n int) []Point {
	if n <= 0 {
		return nil
	}
	cols := int(math.Ceil(math.Sqrt(float64(n) * a.W / math.Max(a.H, 1e-9))))
	if cols < 1 {
		cols = 1
	}
	rows := (n + cols - 1) / cols
	pts := make([]Point, 0, n)
	for r := 0; r < rows && len(pts) < n; r++ {
		for c := 0; c < cols && len(pts) < n; c++ {
			pts = append(pts, Point{
				X: (float64(c) + 0.5) * a.W / float64(cols),
				Y: (float64(r) + 0.5) * a.H / float64(rows),
			})
		}
	}
	return pts
}

// PlacePoisson scatters n SCNs uniformly at random (a binomial point
// process, the fixed-count variant of a Poisson deployment model).
func PlacePoisson(a Area, n int, r *rng.Stream) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = a.RandomPoint(r)
	}
	return pts
}

// Waypoint is the state of one WD under the random-waypoint mobility model:
// the device picks a destination uniformly in the area, walks toward it at
// its speed, pauses, then repeats.
type Waypoint struct {
	Pos    Point
	dest   Point
	speed  float64 // meters per slot
	pause  int     // remaining pause slots
	maxP   int
	paused bool
}

// NewWaypoint creates a WD at a random position with speed drawn from
// [minSpeed,maxSpeed] (meters per slot) and pauses up to maxPause slots.
func NewWaypoint(a Area, minSpeed, maxSpeed float64, maxPause int, r *rng.Stream) *Waypoint {
	w := &Waypoint{
		Pos:   a.RandomPoint(r),
		speed: r.Uniform(minSpeed, maxSpeed),
		maxP:  maxPause,
	}
	w.dest = a.RandomPoint(r)
	return w
}

// Step advances the WD by one time slot.
func (w *Waypoint) Step(a Area, r *rng.Stream) {
	if w.paused {
		w.pause--
		if w.pause <= 0 {
			w.paused = false
			w.dest = a.RandomPoint(r)
		}
		return
	}
	d := w.Pos.Distance(w.dest)
	if d <= w.speed {
		w.Pos = w.dest
		w.paused = true
		if w.maxP > 0 {
			w.pause = r.Intn(w.maxP + 1)
		}
		return
	}
	frac := w.speed / d
	w.Pos = a.Clamp(Point{
		X: w.Pos.X + (w.dest.X-w.Pos.X)*frac,
		Y: w.Pos.Y + (w.dest.Y-w.Pos.Y)*frac,
	})
}

// Coverage computes, for each SCN, the indices of WDs within radius —
// the geometric realisation of D_{m,t}. Complexity is O(M·N) with early
// bounding-box rejection; at paper scale (30 SCNs, a few thousand WDs) this
// is far from the simulation bottleneck.
func Coverage(scns []Point, wds []Point, radius float64) [][]int {
	out := make([][]int, len(scns))
	r2 := radius * radius
	for m, s := range scns {
		var covered []int
		for i, w := range wds {
			dx := s.X - w.X
			if dx < -radius || dx > radius {
				continue
			}
			dy := s.Y - w.Y
			if dy < -radius || dy > radius {
				continue
			}
			if dx*dx+dy*dy <= r2 {
				covered = append(covered, i)
			}
		}
		out[m] = covered
	}
	return out
}

// CoverageInto is the pooled form of Coverage: it fills dst (one row per
// SCN, rows re-sliced to length zero and grown to their high-water mark) and
// returns it. dst must have len(scns) rows; rows may be nil on first use.
func CoverageInto(dst [][]int, scns []Point, wds []Point, radius float64) [][]int {
	r2 := radius * radius
	for m, s := range scns {
		covered := dst[m][:0]
		for i, w := range wds {
			dx := s.X - w.X
			if dx < -radius || dx > radius {
				continue
			}
			dy := s.Y - w.Y
			if dy < -radius || dy > radius {
				continue
			}
			if dx*dx+dy*dy <= r2 {
				covered = append(covered, i)
			}
		}
		dst[m] = covered
	}
	return dst
}

// CoverageCounts returns |D_{m,t}| per SCN for a coverage relation.
func CoverageCounts(cov [][]int) []int {
	counts := make([]int, len(cov))
	for m, c := range cov {
		counts[m] = len(c)
	}
	return counts
}

// OverlapFraction returns the fraction of WDs covered by 2+ SCNs among WDs
// covered at all; it quantifies how much cross-SCN collaboration matters.
func OverlapFraction(cov [][]int, numWDs int) float64 {
	deg := make([]int, numWDs)
	for _, c := range cov {
		for _, i := range c {
			deg[i]++
		}
	}
	covered, multi := 0, 0
	for _, d := range deg {
		if d > 0 {
			covered++
			if d > 1 {
				multi++
			}
		}
	}
	if covered == 0 {
		return 0
	}
	return float64(multi) / float64(covered)
}

// Validate sanity-checks a deployment.
func Validate(a Area, scns []Point) error {
	if a.W <= 0 || a.H <= 0 {
		return fmt.Errorf("geo: non-positive area %vx%v", a.W, a.H)
	}
	for i, p := range scns {
		if !a.Contains(p) {
			return fmt.Errorf("geo: SCN %d at %v outside area", i, p)
		}
	}
	return nil
}
