package serve

import (
	"sync"
	"testing"
	"time"

	"lfsc/internal/obs"
	"lfsc/internal/task"
)

// TestStagingRouterBoundary pins the shard-local ingest contract at the
// Router boundary: a submission whose tasks span SCNs owned by different
// shards lands whole — every visible SCN's coverage row gets the task —
// and arrival-ordered in each shard's staging block, with the context
// buffer packed and the hypercube cells riding along exactly as
// validateTasks computed them.
func TestStagingRouterBoundary(t *testing.T) {
	cfg := Config{
		SCNs: 8, Capacity: 3, Alpha: 1, Beta: 5,
		H: 3, KMax: 50, Horizon: 100, Seed: 42,
		Shards: 2,
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Find one SCN per shard so every task can straddle the boundary.
	scnOf := [2]int{-1, -1}
	for m, k := range eng.owner {
		if scnOf[k] == -1 {
			scnOf[k] = m
		}
	}
	if scnOf[0] == -1 || scnOf[1] == -1 {
		t.Fatalf("ring left a shard empty at 8 SCNs: owner=%v", eng.owner)
	}

	// Two submissions, admitted in order; every task covers both shards,
	// plus a shard-local SCN to vary the rows.
	subs := [][]TaskSpec{
		{
			{Ctx: []float64{0.1, 0.2, 0.3}, SCNs: []int{scnOf[0], scnOf[1]}},
			{Ctx: []float64{0.4, 0.5, 0.6}, SCNs: []int{scnOf[1], scnOf[0]}},
		},
		{
			{Ctx: []float64{0.7, 0.8, 0.9}, SCNs: []int{scnOf[0], scnOf[1]}},
		},
	}
	total := 0
	for _, tasks := range subs {
		q := eng.getReq()
		q.tasks = append(q.tasks[:0], tasks...)
		if err := eng.validateTasks(q); err != nil {
			t.Fatal(err)
		}
		eng.mu.Lock()
		eng.admit(q)
		eng.mu.Unlock()
		total += len(tasks)
	}

	eng.mu.Lock()
	defer eng.mu.Unlock()
	st := &eng.stages[eng.cur]
	if st.n != total {
		t.Fatalf("staged %d tasks, want %d", st.n, total)
	}

	// The packed context buffer and the cells must reproduce the
	// submissions in arrival order.
	dims := eng.cfg.Dims
	idx := 0
	for _, tasks := range subs {
		for i := range tasks {
			got := st.ctxBuf[idx*dims : (idx+1)*dims]
			for d, v := range tasks[i].Ctx {
				if got[d] != v {
					t.Fatalf("task %d ctx[%d] staged as %v, want %v", idx, d, got[d], v)
				}
			}
			if want := eng.part.Index(task.Context(tasks[i].Ctx)); st.cells[idx] != want {
				t.Fatalf("task %d cell staged as %d, want %d", idx, st.cells[idx], want)
			}
			idx++
		}
	}

	// Each straddling task must appear in BOTH shards' blocks (whole, not
	// split), in its covered SCNs' rows only, and every row must be in
	// arrival (= slot) order.
	covCount := make([]int, total)
	for m := 0; m < cfg.SCNs; m++ {
		row := st.shards[eng.scnShard[m]].cov[eng.scnLocal[m]]
		prev := -1
		for _, taskIdx := range row {
			if taskIdx <= prev {
				t.Fatalf("SCN %d (shard %d) row out of arrival order: %v", m, eng.scnShard[m], row)
			}
			prev = taskIdx
			covCount[taskIdx]++
		}
		switch m {
		case scnOf[0], scnOf[1]:
			if len(row) != total {
				t.Fatalf("SCN %d (shard %d) row has %d tasks, want %d: %v",
					m, eng.scnShard[m], len(row), total, row)
			}
		default:
			if len(row) != 0 {
				t.Fatalf("uncovered SCN %d has a non-empty row: %v", m, row)
			}
		}
	}
	for i, c := range covCount {
		if c != 2 {
			t.Fatalf("task %d staged into %d rows, want 2 (one per covered SCN)", i, c)
		}
	}

	// The sequencer must agree with the arena — it owns boundaries, not
	// tasks.
	if eng.batch.n != total {
		t.Fatalf("sequencer counts %d tasks, arena holds %d", eng.batch.n, total)
	}
	if len(eng.batch.subs) != len(subs) {
		t.Fatalf("sequencer tracks %d submissions, want %d", len(eng.batch.subs), len(subs))
	}
}

// TestShardPlaneLockstepIdentity pins Config.ShardPlane: forcing the
// sharded serving plane (router, partial learner, merger) at Shards=1 —
// the shard-bench baseline — must be bit-identical to the flat engine on
// the same lockstep workload, daemon side and client side.
func TestShardPlaneLockstepIdentity(t *testing.T) {
	const T, seed = 200, 42
	sc := testScenario(T, seed)

	flatDaemon, flatClient := runLockstep(t, sc, 1)

	eng, srv, client := bootDaemon(t, sc, func(c *Config) { c.ShardPlane = true })
	defer srv.Close()
	if eng.router == nil {
		t.Fatal("ShardPlane did not force the sharded plane")
	}
	rep, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Run(client, 0, T, nil); err != nil {
		t.Fatal(err)
	}
	eng.Stop()

	if got := eng.CumReward(); got != flatDaemon {
		t.Errorf("shard-plane daemon cum reward %x != flat %x (%.10f vs %.10f)",
			got, flatDaemon, got, flatDaemon)
	}
	if got := rep.CumReward(); got != flatClient {
		t.Errorf("shard-plane client cum reward %x != flat %x", got, flatClient)
	}
}

// TestConcurrentIngestStaging hammers the staged-ingest path from many
// connections while slots close underneath it: a fast slot clock, a tiny
// batch bound, and a short report wait keep the engine in a rolling
// decide/observe cycle — including the pipelined-close window, where
// Observe runs with the engine mutex released and handlers stage the next
// slot's traffic concurrently. Run under -race (the serve package is in
// RACE_PKGS), this is the data-race pin for the ping-pong arenas; the
// traced engine variant also drives the stage-timing words.
func TestConcurrentIngestStaging(t *testing.T) {
	sc := testScenario(1_000_000, 13)
	ring := obs.NewSlotRing(64, 2)
	eng, srv, client := bootDaemon(t, sc, func(c *Config) {
		c.Shards = 2
		c.SlotEvery = time.Millisecond
		c.MaxBatch = 6
		c.QueueCap = 48
		c.ReportWait = time.Millisecond
		c.SlotRing = ring
	})
	defer srv.Close()

	const workers, perWorker = 8, 40
	var wg sync.WaitGroup
	var okCount, shedCount, otherErr atomic64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				req := &SubmitRequest{
					Tasks: []TaskSpec{
						{Ctx: []float64{0.1, 0.5, 0.3}, SCNs: []int{w % 4, (w + 1) % 4}},
						{Ctx: []float64{0.9, 0.2, 0.7}, SCNs: []int{(w + 2) % 4}},
					},
					// A third of the traffic demands an immediate close, so
					// decide/observe cycles interleave densely with staging.
					Close: i%3 == 0,
				}
				_, err := client.Submit(req)
				switch {
				case err == nil:
					okCount.add(1)
				default:
					if _, shed := err.(*ErrShed); shed {
						shedCount.add(1)
					} else {
						otherErr.add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	eng.Stop()

	if otherErr.load() != 0 {
		t.Fatalf("concurrent staging produced %d non-shed errors", otherErr.load())
	}
	if okCount.load() == 0 {
		t.Fatal("no submission survived — nothing was staged")
	}
	if eng.Slot() == 0 {
		t.Fatal("no slot closed under concurrent ingest")
	}
	if ring.Published() == 0 {
		t.Fatal("traced engine closed slots but published no spans")
	}
	// Every decided task was staged exactly once: the pipeline counters
	// must balance despite the arena ping-pong.
	st := eng.Stats()
	if st.DecidedTasks != 2*okCount.load() {
		t.Fatalf("decided %d tasks, want %d (2 per accepted submission)",
			st.DecidedTasks, 2*okCount.load())
	}
}
