package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lfsc/internal/obs"
	"lfsc/internal/rng"
	"lfsc/internal/sim"
	"lfsc/internal/trace"
)

// TestRouterDeterministicAcrossRestarts pins the consistent-hash mapping:
// it is a pure function of (scn, shard count) — two independently built
// rings agree everywhere, OwnerMap agrees with Shard, and a handful of
// golden values freeze the concrete mapping the sharded checkpoint layout
// depends on (a silent ring change would strand every shard file).
func TestRouterDeterministicAcrossRestarts(t *testing.T) {
	a, b := NewRouter(4), NewRouter(4)
	for scn := 0; scn < 2000; scn++ {
		if a.Shard(scn) != b.Shard(scn) {
			t.Fatalf("scn %d: ring A says %d, ring B says %d", scn, a.Shard(scn), b.Shard(scn))
		}
	}
	owner, ownedOf := a.OwnerMap(2000)
	for m, k := range owner {
		if k != a.Shard(m) {
			t.Fatalf("OwnerMap[%d] = %d, Shard = %d", m, k, a.Shard(m))
		}
	}
	seen := 0
	for k, list := range ownedOf {
		prev := -1
		for _, m := range list {
			if m <= prev {
				t.Fatalf("shard %d owned list not ascending: %v", k, list)
			}
			if owner[m] != k {
				t.Fatalf("scn %d in shard %d's list but owned by %d", m, k, owner[m])
			}
			prev = m
			seen++
		}
	}
	if seen != 2000 {
		t.Fatalf("owned lists cover %d SCNs, want 2000", seen)
	}

	golden := map[int]int{0: 0, 1: 1, 2: 1, 3: 0, 7: 0, 29: 0, 99: 1, 500: 2, 999: 3}
	for scn, want := range golden {
		if got := a.Shard(scn); got != want {
			t.Errorf("golden mapping moved: Shard(%d) = %d, want %d", scn, got, want)
		}
	}
}

// TestRouterBalance checks the ring spreads ownership acceptably at the
// SCN counts the repo targets: with 4 shards every count stays within
// [fair/3, 2*fair] of the fair share. (Consistent hashing trades perfect
// balance for relocation stability; 128 vnodes keep the skew modest.)
func TestRouterBalance(t *testing.T) {
	for _, scns := range []int{30, 100, 1000} {
		const shards = 4
		_, ownedOf := NewRouter(shards).OwnerMap(scns)
		fair := float64(scns) / shards
		for k, list := range ownedOf {
			n := float64(len(list))
			if n < fair/3 || n > 2*fair {
				t.Errorf("scns=%d: shard %d owns %d SCNs, outside [%.1f, %.1f]",
					scns, k, len(list), fair/3, 2*fair)
			}
		}
	}
}

// shardPoolFor returns the lockstep transport matching the daemon's shard
// count: the plain client at 1, the shard-routing pool otherwise.
func shardPoolFor(srv *Server, shards int) Conn {
	if shards <= 1 {
		return NewClient(srv.Addr())
	}
	return NewShardPool(srv.Addr(), shards)
}

// runLockstep boots a daemon with the given shard count, replays slots
// [0, T) over real HTTP through the matching transport, stops the engine,
// and returns (daemon cum reward, client cum reward).
func runLockstep(t *testing.T, sc ReplayScenario, shards int) (daemon, client float64) {
	t.Helper()
	eng, srv, _ := bootDaemon(t, sc, func(c *Config) { c.Shards = shards })
	defer srv.Close()
	rep, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	st, err := rep.Run(shardPoolFor(srv, shards), 0, sc.T, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Stop()
	if st.ShedSlots != 0 {
		t.Fatalf("shards=%d: lockstep replay shed %d slots", shards, st.ShedSlots)
	}
	if eng.Slot() != sc.T {
		t.Fatalf("shards=%d: daemon served %d slots, want %d", shards, eng.Slot(), sc.T)
	}
	return eng.CumReward(), rep.CumReward()
}

// TestShardedLockstepThreeWayIdentity is the sharded extension of the
// Workers=1-vs-N determinism contract from the core layer: a Shards=4
// daemon (two of whose shards own no SCN at this scale), a Shards=1
// daemon, and an offline sim.Run of the same scenario all earn the
// hex-float-identical cumulative reward, on the daemon side and the
// client side.
func TestShardedLockstepThreeWayIdentity(t *testing.T) {
	const T, seed = 250, 42
	sc := testScenario(T, seed)

	simSc := &sim.Scenario{
		Cfg: sim.Config{T: T, Capacity: sc.Capacity, Alpha: sc.Alpha, Beta: sc.Beta, H: sc.H},
		NewGenerator: func(r *rng.Stream) (trace.Generator, error) {
			return trace.NewSynthetic(sc.Synthetic, r)
		},
		EnvCfg: sc.EnvCfg,
	}
	series, err := sim.Run(simSc, sim.LFSCFactory(nil), seed)
	if err != nil {
		t.Fatal(err)
	}
	offline := 0.0
	for _, r := range series.Reward {
		offline += r
	}

	for _, shards := range []int{1, 4} {
		daemon, client := runLockstep(t, sc, shards)
		if daemon != offline {
			t.Errorf("shards=%d: daemon cum reward %x != offline sim %x (%.10f vs %.10f)",
				shards, daemon, offline, daemon, offline)
		}
		if client != offline {
			t.Errorf("shards=%d: client cum reward %x != offline sim %x", shards, client, offline)
		}
	}
}

// TestServeSmokeShards is the sharded kill-and-resume check behind `make
// serve-smoke-shards`: a Shards=4 daemon serves 200 slots with periodic
// sharded checkpoints, dies hard at slot 120, a fresh Shards=4 daemon
// restores the slot-100 generation from the per-shard files + manifest,
// replays the rest, and must land bit-identically on an uninterrupted
// sharded run. Also pins the on-disk layout: a manifest at the checkpoint
// path, per-shard generation files beside it, and the superseded
// generation garbage-collected.
func TestServeSmokeShards(t *testing.T) {
	const T, seed, every, shards = 200, 7, 100, 4
	sc := testScenario(T, seed)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "lfscd.ckpt")
	mutate := func(c *Config) {
		c.Shards = shards
		c.CheckpointPath = ckpt
		c.CheckpointEvery = every
	}

	// Run A: serve 120 slots, then die without checkpointing.
	engA, srvA, _ := bootDaemon(t, sc, mutate)
	repA, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repA.Run(shardPoolFor(srvA, shards), 0, 120, nil); err != nil {
		t.Fatal(err)
	}
	engA.Abort() // kill: slots 100..119 die with the process
	srvA.Close()

	// The slot-100 generation must be fully on disk: manifest + one file
	// per non-empty shard (the 4-SCN scenario leaves two shards empty).
	var man checkpointManifest
	buf, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("no manifest after kill: %v", err)
	}
	if err := json.Unmarshal(buf, &man); err != nil {
		t.Fatal(err)
	}
	if man.Shards != shards || man.Slot != every {
		t.Fatalf("manifest = %+v, want shards %d at slot %d", man, shards, every)
	}
	for k, owned := range func() [][]int { _, o := NewRouter(shards).OwnerMap(4); return o }() {
		_, statErr := os.Stat(shardFilePath(ckpt, man.Generation, k))
		if len(owned) > 0 && statErr != nil {
			t.Fatalf("shard %d file missing: %v", k, statErr)
		}
		if len(owned) == 0 && statErr == nil {
			t.Fatalf("empty shard %d wrote a file", k)
		}
	}

	// Run B: boot fresh, restore the sharded checkpoint, replay the rest.
	engB, srvB, _, restored := resumeDaemon(t, sc, ckpt, mutate)
	defer srvB.Close()
	if !restored {
		t.Fatal("no checkpoint found after kill")
	}
	if engB.Slot() != every {
		t.Fatalf("restored at slot %d, want %d", engB.Slot(), every)
	}
	repB, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repB.Run(shardPoolFor(srvB, shards), engB.Slot(), T, nil); err != nil {
		t.Fatal(err)
	}
	engB.Stop()

	// Run B's graceful stop wrote the next generation; the restored one
	// must be garbage-collected.
	if _, err := os.Stat(shardFilePath(ckpt, man.Generation, 0)); err == nil {
		t.Errorf("superseded generation %d not garbage-collected", man.Generation)
	}

	// Run C: the uninterrupted sharded control.
	engC, srvC, _ := bootDaemon(t, sc, func(c *Config) { c.Shards = shards })
	defer srvC.Close()
	repC, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repC.Run(shardPoolFor(srvC, shards), 0, T, nil); err != nil {
		t.Fatal(err)
	}
	engC.Stop()

	got, want := engB.CumReward(), engC.CumReward()
	if got != want {
		t.Fatalf("sharded kill-and-resume diverged: resumed %x (%.12f) vs uninterrupted %x (%.12f)",
			got, got, want, want)
	}
	if engB.Slot() != engC.Slot() {
		t.Fatalf("slot counters diverged: %d vs %d", engB.Slot(), engC.Slot())
	}
}

// TestShardedCheckpointCompatAndMismatch covers the cross-layout restore
// matrix: a pre-sharding single-file checkpoint restores into a sharded
// daemon and continues bit-identically (the upgrade path), while a
// sharded manifest is rejected by an unsharded engine and by a different
// shard count.
func TestShardedCheckpointCompatAndMismatch(t *testing.T) {
	const T, seed = 160, 13
	sc := testScenario(T, seed)
	dir := t.TempDir()
	legacy := filepath.Join(dir, "legacy.ckpt")
	sharded := filepath.Join(dir, "sharded.ckpt")

	// Produce a legacy single-file checkpoint at slot 80 (unsharded
	// daemon, graceful stop) and a sharded manifest at the same slot.
	for _, cfg := range []struct {
		path   string
		shards int
	}{{legacy, 1}, {sharded, 4}} {
		eng, srv, _ := bootDaemon(t, sc, func(c *Config) {
			c.Shards = cfg.shards
			c.CheckpointPath = cfg.path
		})
		rep, err := NewReplayer(sc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rep.Run(shardPoolFor(srv, cfg.shards), 0, 80, nil); err != nil {
			t.Fatal(err)
		}
		eng.Stop()
		srv.Close()
	}

	// Upgrade path: the legacy document restores into a Shards=4 daemon,
	// which then finishes the run bit-identically to an uninterrupted
	// sharded daemon.
	engB, srvB, _, restored := resumeDaemon(t, sc, legacy, func(c *Config) { c.Shards = 4 })
	defer srvB.Close()
	if !restored {
		t.Fatal("legacy checkpoint not found")
	}
	if engB.Slot() != 80 {
		t.Fatalf("legacy restore at slot %d, want 80", engB.Slot())
	}
	repB, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repB.Run(shardPoolFor(srvB, 4), 80, T, nil); err != nil {
		t.Fatal(err)
	}
	engB.Stop()

	engC, srvC, _ := bootDaemon(t, sc, func(c *Config) { c.Shards = 4 })
	defer srvC.Close()
	repC, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repC.Run(shardPoolFor(srvC, 4), 0, T, nil); err != nil {
		t.Fatal(err)
	}
	engC.Stop()
	if engB.CumReward() != engC.CumReward() {
		t.Fatalf("legacy-into-sharded resume diverged: %x vs %x", engB.CumReward(), engC.CumReward())
	}

	// Mismatch paths: sharded manifest into an unsharded engine, and into
	// the wrong shard count.
	for _, bad := range []int{1, 2} {
		eng := buildDaemon(t, sc, func(c *Config) { c.Shards = bad })
		if err := eng.Restore(sharded); err == nil {
			t.Errorf("sharded (4) checkpoint restored into shards=%d engine", bad)
		}
	}

	// A truncated generation (missing shard file) must fail, not
	// half-restore.
	var man checkpointManifest
	buf, err := os.ReadFile(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &man); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(shardFilePath(sharded, man.Generation, 0)); err != nil {
		t.Fatal(err)
	}
	eng := buildDaemon(t, sc, func(c *Config) { c.Shards = 4 })
	if err := eng.Restore(sharded); err == nil {
		t.Error("manifest with a missing shard file restored")
	}
}

// TestShardedStatusAndSnapshots drives a few sharded slots and checks the
// observability surfaces: /lfsc/status carries a routing line per shard,
// and sampled policy snapshots stamp the consistent-hash owner map.
func TestShardedStatusAndSnapshots(t *testing.T) {
	const T, seed, shards = 30, 21, 4
	sc := testScenario(T, seed)
	ring := obs.NewSnapshotRing(4)
	eng, srv, _ := bootDaemon(t, sc, func(c *Config) {
		c.Shards = shards
		c.SnapshotEvery = 10
		c.SnapshotSink = ring
	})
	defer srv.Close()
	rep, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Run(shardPoolFor(srv, shards), 0, T, nil); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + srv.Addr() + "/lfsc/status")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	status := string(body)
	for k := 0; k < shards; k++ {
		if !strings.Contains(status, fmt.Sprintf("shard %d:", k)) {
			t.Fatalf("/lfsc/status missing shard %d line:\n%s", k, status)
		}
	}
	eng.Stop()

	snaps := ring.Snapshots()
	if len(snaps) == 0 {
		t.Fatal("no snapshots sampled")
	}
	last := snaps[len(snaps)-1]
	if len(last.Owner) != 4 {
		t.Fatalf("sharded snapshot owner map has %d entries, want 4", len(last.Owner))
	}
	router := NewRouter(shards)
	for m, k := range last.Owner {
		if k != router.Shard(m) {
			t.Fatalf("snapshot owner[%d] = %d, router says %d", m, k, router.Shard(m))
		}
	}
}

// BenchmarkShardedEngineSlot mirrors BenchmarkEngineSlot at Shards=4 so
// the sharded slot path shows up in `go test -bench` sweeps.
func BenchmarkShardedEngineSlot(b *testing.B) {
	sc := testScenario(1<<30, 9)
	cfg, err := sc.EngineConfig()
	if err != nil {
		b.Fatal(err)
	}
	cfg.ReportWait = 5 * time.Second
	cfg.Shards = 4
	eng, err := NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	eng.Start()
	defer eng.Stop()
	rep, err := NewReplayer(sc)
	if err != nil {
		b.Fatal(err)
	}
	var reports []TaskReport
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep.env.Advance(i)
		rep.gen.NextInto(i, &rep.slotBuf)
		rep.buildSpecs()
		resp, err := eng.Submit(&SubmitRequest{Tasks: rep.specs, Close: true})
		if err != nil {
			b.Fatal(err)
		}
		reports = reports[:0]
		for idx, m := range resp.Assigned {
			if m >= 0 {
				reports = append(reports, TaskReport{Task: idx, U: 0.5, V: 1, Q: 1.5})
			}
		}
		if len(reports) > 0 {
			if _, err := eng.Report(&ReportRequest{Slot: resp.Slot, Reports: reports}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if eng.Slot() != b.N {
		b.Fatalf("served %d slots, want %d", eng.Slot(), b.N)
	}
}
