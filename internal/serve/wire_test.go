package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// gnarlyFloats are values whose textual round trip is easy to get wrong:
// the encoder must emit them so ParseFloat returns the identical bits
// (the three-way reward identity depends on exact wire round trips).
var gnarlyFloats = []float64{
	0, 1, 0.1, 1.0 / 3.0, math.Pi, 1e-308, 5e-324, 0.9999999999999999,
	2.2250738585072014e-308, 0.30000000000000004,
}

func wireTasks() []TaskSpec {
	return []TaskSpec{
		{Ctx: []float64{0.1, 1.0 / 3.0, 0.9999999999999999}, SCNs: []int{0, 2}},
		{Ctx: []float64{0, 1, 5e-324}, SCNs: []int{1}},
		{Ctx: []float64{math.Pi / 4, 0.5, 0.30000000000000004}, SCNs: []int{3, 0, 1}},
	}
}

func wireReports() []TaskReport {
	return []TaskReport{
		{Task: 0, U: 0.7071067811865476, V: 1, Q: 0.1},
		{Task: 2, U: 1.0 / 3.0, V: 0, Q: 2.2250738585072014e-308},
	}
}

// decodeWire parses body through the pooled decoder and returns the
// request object (caller inspects fields).
func decodeWire(t *testing.T, body string) *wireReq {
	t.Helper()
	q := newWireReq()
	q.body = append(q.body, body...)
	if err := q.decode(); err != nil {
		t.Fatalf("decode %q: %v", body, err)
	}
	return q
}

// TestWireEncodersRoundTrip pins the hand-rolled encoders against
// encoding/json: everything the client encodes, the stdlib must decode
// back to identical values (so third-party clients speaking ordinary
// JSON interoperate bit-exactly), and everything the stdlib encodes, the
// pooled decoder must accept.
func TestWireEncodersRoundTrip(t *testing.T) {
	tasks := wireTasks()
	reports := wireReports()

	t.Run("submit-request", func(t *testing.T) {
		b := appendSubmitRequest(nil, tasks, true)
		var got SubmitRequest
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("stdlib rejects %s: %v", b, err)
		}
		if !reflect.DeepEqual(got.Tasks, tasks) || !got.Close {
			t.Fatalf("round trip mismatch: %+v", got)
		}
	})
	t.Run("report-request", func(t *testing.T) {
		b := appendReportRequest(nil, 42, reports)
		var got ReportRequest
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("stdlib rejects %s: %v", b, err)
		}
		if got.Slot != 42 || !reflect.DeepEqual(got.Reports, reports) {
			t.Fatalf("round trip mismatch: %+v", got)
		}
	})
	t.Run("step-request", func(t *testing.T) {
		b := appendStepRequest(nil, 7, reports, tasks, true)
		var got StepRequest
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("stdlib rejects %s: %v", b, err)
		}
		if got.Slot != 7 || !got.Close ||
			!reflect.DeepEqual(got.Reports, reports) || !reflect.DeepEqual(got.Tasks, tasks) {
			t.Fatalf("round trip mismatch: %+v", got)
		}
		// Empty report part is omitted entirely.
		b = appendStepRequest(nil, 0, nil, tasks, false)
		if bytes.Contains(b, []byte("reports")) || bytes.Contains(b, []byte("slot")) {
			t.Fatalf("empty report part encoded: %s", b)
		}
	})
	t.Run("responses", func(t *testing.T) {
		b := appendSubmitResponse(nil, 3, 5, []int{0, -1, 2})
		var sr SubmitResponse
		if err := json.Unmarshal(b, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Slot != 3 || sr.Base != 5 || !reflect.DeepEqual(sr.Assigned, []int{0, -1, 2}) {
			t.Fatalf("submit response: %+v", sr)
		}
		b = appendStepResponse(nil, 4, `bad "report"`+"\n", 9, 0, []int{1})
		var st StepResponse
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatalf("stdlib rejects %s: %v", b, err)
		}
		if st.Accepted != 4 || st.ReportError != "bad \"report\"\n" || st.Slot != 9 {
			t.Fatalf("step response: %+v", st)
		}
		b = appendErrorBody(nil, "serve: shed: task queue full", 2)
		var eb errorBody
		if err := json.Unmarshal(b, &eb); err != nil {
			t.Fatal(err)
		}
		if eb.Error != "serve: shed: task queue full" || eb.Accepted != 2 {
			t.Fatalf("error body: %+v", eb)
		}
	})
	t.Run("float-bits", func(t *testing.T) {
		for _, v := range gnarlyFloats {
			b := appendFloat(nil, v)
			var got float64
			if err := json.Unmarshal(b, &got); err != nil {
				t.Fatalf("%v -> %s: %v", v, b, err)
			}
			if math.Float64bits(got) != math.Float64bits(v) {
				t.Fatalf("%v: bits drift through %s", v, b)
			}
		}
	})
}

// TestWireDecodeRequests pins the pooled decoder against stdlib-encoded
// request bodies — the interop direction a foreign client exercises.
func TestWireDecodeRequests(t *testing.T) {
	tasks := wireTasks()
	reports := wireReports()
	body, err := json.Marshal(&StepRequest{Slot: 11, Reports: reports, Tasks: tasks, Close: true})
	if err != nil {
		t.Fatal(err)
	}
	q := decodeWire(t, string(body))
	if q.slot != 11 || !q.hasSlot || !q.close || !q.hasTasks || !q.hasReps {
		t.Fatalf("flags: %+v", q)
	}
	if !reflect.DeepEqual(q.tasks, tasks) {
		t.Fatalf("tasks: got %+v want %+v", q.tasks, tasks)
	}
	if !reflect.DeepEqual(q.reports, reports) {
		t.Fatalf("reports: got %+v want %+v", q.reports, reports)
	}

	// Our own encoder's output decodes identically.
	q2 := newWireReq()
	q2.body = appendStepRequest(q2.body, 11, reports, tasks, true)
	if err := q2.decode(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q2.tasks, q.tasks) || !reflect.DeepEqual(q2.reports, q.reports) ||
		q2.slot != q.slot || q2.close != q.close {
		t.Fatal("own-encoder decode differs from stdlib-encoder decode")
	}
}

// TestWireDecodeTolerance pins the versioning rule: unknown fields of any
// shape are skipped, whitespace is free, field order is irrelevant, and a
// JSON null array means empty.
func TestWireDecodeTolerance(t *testing.T) {
	q := decodeWire(t, ` { "future" : {"a":[1,{"b":"x\"y"}],"c":null} ,
		"close" : true ,
		"tasks" : [ {"ctx":[0.5],"scns":[0],"note":"ignored"} ] ,
		"v2" : [[[]]] } `)
	if !q.close || len(q.tasks) != 1 || q.tasks[0].Ctx[0] != 0.5 || q.tasks[0].SCNs[0] != 0 {
		t.Fatalf("decoded: %+v", q.tasks)
	}
	if q.hasSlot || q.hasReps {
		t.Fatal("phantom fields set")
	}

	q = decodeWire(t, `{"tasks":null,"reports":null,"slot":3}`)
	if len(q.tasks) != 0 || len(q.reports) != 0 || !q.hasTasks || !q.hasReps || q.slot != 3 {
		t.Fatalf("null arrays: %+v", q)
	}

	// An escaped spelling of a known key is treated as unknown, not as the
	// field (the API's keys are plain ASCII).
	q = decodeWire(t, `{"t\\u0061sks":[{"ctx":[9],"scns":[9]}],"slot":1}`)
	if q.hasTasks || len(q.tasks) != 0 || q.slot != 1 {
		t.Fatalf("escaped key not skipped: %+v", q)
	}
}

// TestWireDecodeErrors enumerates malformed bodies: every one must error
// (never panic), and after reset the same pooled object must decode a
// valid body cleanly — no partial state survives.
func TestWireDecodeErrors(t *testing.T) {
	bad := []string{
		``, `   `, `[1,2]`, `"s"`, `42`, `null`,
		`{`, `{"tasks"`, `{"tasks":}`, `{"tasks":[}`,
		`{"tasks":[{"ctx":[0.5,],"scns":[0]}]}`,
		`{"tasks":[{"ctx":[0.5],"scns":[0]}]`,
		`{"tasks":[{"ctx":[0.5],"scns":[0]}]} trailing`,
		`{"tasks":[{"ctx":[0.5],"scns":[0]}]}{}`,
		`{"close":maybe}`, `{"slot":"7"}`, `{"slot":1e}`,
		`{"slot":1,"slot":2}`,
		`{"tasks":[],"tasks":[]}`,
		`{"reports":[{"task":0,"u":1,"v":1,"q":1}],"reports":[]}`,
		`{"reports":[{"task":0,"task":1,"u":1,"v":1,"q":1}]}`,
		`{"tasks":[{"ctx":[1],"ctx":[2],"scns":[0]}]}`,
		`{"x":` + strings.Repeat(`[`, 40) + strings.Repeat(`]`, 40) + `}`,
		`{"tasks":[{"ctx":[0.5],"scns":[0]}],,}`,
		`{"tasks" "x"}`,
	}
	good := `{"slot":5,"reports":[{"task":1,"u":0.5,"v":1,"q":0.25}],"tasks":[{"ctx":[0.125],"scns":[2]}],"close":true}`
	q := newWireReq()
	for _, body := range bad {
		q.reset()
		q.body = append(q.body, body...)
		if err := q.decode(); err == nil {
			t.Errorf("accepted %q", body)
		}
		// Reset-clean: the same object decodes a valid body exactly.
		q.reset()
		q.body = append(q.body, good...)
		if err := q.decode(); err != nil {
			t.Fatalf("after %q: good body rejected: %v", body, err)
		}
		if q.slot != 5 || !q.close || len(q.tasks) != 1 || len(q.reports) != 1 ||
			q.tasks[0].Ctx[0] != 0.125 || q.reports[0].Task != 1 {
			t.Fatalf("after %q: residue in decode: %+v", body, q)
		}
	}
}

// TestWireResponseParsers covers the client-side parsers, including
// Assigned reuse shrinking from a larger previous response.
func TestWireResponseParsers(t *testing.T) {
	var sr SubmitResponse
	if err := parseSubmitResponse([]byte(`{"slot":2,"base":4,"assigned":[3,-1,0,5]}`), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Slot != 2 || sr.Base != 4 || !reflect.DeepEqual(sr.Assigned, []int{3, -1, 0, 5}) {
		t.Fatalf("%+v", sr)
	}
	if err := parseSubmitResponse([]byte(`{"slot":3,"base":0,"assigned":[1]}`), &sr); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sr.Assigned, []int{1}) {
		t.Fatalf("reused Assigned not truncated: %v", sr.Assigned)
	}

	var rr ReportResponse
	if err := parseReportResponse([]byte(` {"accepted": 7, "future": true} `), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Accepted != 7 {
		t.Fatalf("%+v", rr)
	}

	st := StepResponse{ReportError: "stale"}
	if err := parseStepResponse([]byte(`{"accepted":2,"slot":9,"base":0,"assigned":[-1,4]}`), &st); err != nil {
		t.Fatal(err)
	}
	if st.Accepted != 2 || st.ReportError != "" || !reflect.DeepEqual(st.Assigned, []int{-1, 4}) {
		t.Fatalf("%+v", st)
	}
	if err := parseStepResponse([]byte(`{"accepted":0,"report_error":"late \"slot\"","slot":1,"base":0,"assigned":[]}`), &st); err != nil {
		t.Fatal(err)
	}
	if st.ReportError != `late "slot"` {
		t.Fatalf("report_error: %q", st.ReportError)
	}

	msg, acc, ok := parseErrorBody([]byte(`{"error":"serve: shed: task queue full","accepted":3}`))
	if !ok || msg != "serve: shed: task queue full" || acc != 3 {
		t.Fatalf("%q %d %v", msg, acc, ok)
	}
	if _, _, ok := parseErrorBody([]byte(`not json`)); ok {
		t.Fatal("garbage accepted as error envelope")
	}
	if _, _, ok := parseErrorBody([]byte(`{"accepted":1}`)); ok {
		t.Fatal("envelope without error accepted")
	}
}

// FuzzWireDecode hammers the pooled decoder with malformed, truncated,
// and duplicated-field inputs. Properties: never panics; on success the
// decode is idempotent (same bytes, same result); on error a reset
// object decodes a known-good body exactly (no partial mutation leaks
// into the pool).
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte(`{"tasks":[{"ctx":[0.5,0.25],"scns":[0,1]}],"close":true}`))
	f.Add([]byte(`{"slot":3,"reports":[{"task":0,"u":0.5,"v":1,"q":0.1}]}`))
	f.Add(appendStepRequest(nil, 7, wireReports(), wireTasks(), true))
	f.Add([]byte(`{"slot":1,"slot":2}`))
	f.Add([]byte(`{"tasks":[{"ctx":[1e309],"scns":[0]}]}`))
	f.Add([]byte(`{"unknown":{"deep":[[[{"x":"\Z"}]]]},"tasks":null}`))
	f.Add([]byte(`{"tasks":[{"ctx":[0.5],"scns":[0]}]`))
	f.Add([]byte{})
	good := []byte(`{"slot":5,"reports":[{"task":1,"u":0.5,"v":1,"q":0.25}],"tasks":[{"ctx":[0.125],"scns":[2]}]}`)

	f.Fuzz(func(t *testing.T, data []byte) {
		q := newWireReq()
		q.body = append(q.body, data...)
		err := q.decode()
		if err == nil {
			// Idempotence: decoding the same bytes on a reset object gives
			// the same request.
			q2 := newWireReq()
			q2.body = append(q2.body, data...)
			if err2 := q2.decode(); err2 != nil {
				t.Fatalf("second decode failed: %v", err2)
			}
			if !reflect.DeepEqual(q.tasks, q2.tasks) || !reflect.DeepEqual(q.reports, q2.reports) ||
				q.slot != q2.slot || q.close != q2.close ||
				q.hasSlot != q2.hasSlot || q.hasTasks != q2.hasTasks || q.hasReps != q2.hasReps {
				t.Fatal("decode not deterministic")
			}
		}
		// Error or not: after reset, the pooled object must decode a valid
		// body with no residue.
		q.reset()
		q.body = append(q.body, good...)
		if err := q.decode(); err != nil {
			t.Fatalf("reset object rejected good body: %v", err)
		}
		if q.slot != 5 || q.close || len(q.tasks) != 1 || len(q.reports) != 1 ||
			q.tasks[0].Ctx[0] != 0.125 || q.tasks[0].SCNs[0] != 2 || q.reports[0].U != 0.5 {
			t.Fatalf("residue after reset: %+v", q)
		}
	})
}

// TestServeWireZeroAlloc is the tentpole pin: steady-state request
// handling on the batched step path allocates nothing — not in the
// handler (decode, validate, dispatch, encode), not in the engine's
// Decide/Observe slot work it blocks on, and not in the client-side
// encode/parse/realise around it. AllocsPerRun counts mallocs across all
// goroutines, so the engine goroutine is inside the measurement.
func TestServeWireZeroAlloc(t *testing.T) {
	h, err := newStepHarness(1<<20, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h.eng.Stop()
	// Warm every pooled buffer across the workload's size range.
	for i := 0; i < 400; i++ {
		if err := h.step(); err != nil {
			t.Fatal(err)
		}
	}
	var stepErr error
	allocs := testing.AllocsPerRun(200, func() {
		if err := h.step(); err != nil && stepErr == nil {
			stepErr = err
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if allocs != 0 {
		t.Fatalf("steady-state step = %v allocs/request, want 0", allocs)
	}
}

// TestLockstepUnbatchedMatchesStep replays the same scenario through the
// batched /v1/step path and the classic submit+report pair against two
// identically seeded daemons: cumulative rewards (client and daemon
// side) must be bit-identical — the batched pipeline changes when work
// overlaps, never what is computed.
func TestLockstepUnbatchedMatchesStep(t *testing.T) {
	const T = 150
	sc := testScenario(T, 21)
	run := func(useStep bool) (float64, float64) {
		eng, srv, client := bootDaemon(t, sc, nil)
		defer srv.Close()
		rep, err := NewReplayer(sc)
		if err != nil {
			t.Fatal(err)
		}
		rep.SetUseStep(useStep)
		if _, err := rep.Run(client, 0, T, nil); err != nil {
			t.Fatal(err)
		}
		eng.Stop()
		if eng.Slot() != T {
			t.Fatalf("useStep=%v: daemon at slot %d, want %d", useStep, eng.Slot(), T)
		}
		return rep.CumReward(), eng.CumReward()
	}
	stepCli, stepDae := run(true)
	plainCli, plainDae := run(false)
	if math.Float64bits(stepCli) != math.Float64bits(plainCli) {
		t.Fatalf("client cum reward: step %x != plain %x", stepCli, plainCli)
	}
	if math.Float64bits(stepDae) != math.Float64bits(plainDae) {
		t.Fatalf("daemon cum reward: step %x != plain %x", stepDae, plainDae)
	}
	if math.Float64bits(stepCli) != math.Float64bits(stepDae) {
		t.Fatalf("client %x != daemon %x", stepCli, stepDae)
	}
}
