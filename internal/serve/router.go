package serve

import (
	"fmt"
	"sort"
)

// routerVNodes is the number of virtual ring points per shard. 128 keeps
// the maximum/minimum ownership ratio close to 1 for the SCN counts the
// repo targets (tens to thousands) while the ring stays small enough that
// building and searching it is negligible.
const routerVNodes = 128

// Router maps SCN indices to shards by consistent hashing: each shard
// contributes routerVNodes points on a 64-bit ring, and an SCN belongs to
// the first point at or clockwise of its own hash. The mapping depends
// only on (scn, shard count) — never on boot order, time, or map
// iteration — so a restarted daemon reproduces it exactly, which the
// sharded checkpoint layout relies on. Consistency is the seam for the
// ROADMAP's multi-process router mode: moving from N to N+1 shards
// relocates only ~1/(N+1) of the SCNs.
type Router struct {
	shards int
	hashes []uint64 // ring point hashes, ascending
	owners []int32  // ring point owners, parallel to hashes
}

// NewRouter builds the ring for the given shard count (≥ 1).
func NewRouter(shards int) *Router {
	if shards < 1 {
		panic(fmt.Sprintf("serve: router needs ≥ 1 shard, got %d", shards))
	}
	type point struct {
		hash  uint64
		shard int32
	}
	pts := make([]point, 0, shards*routerVNodes)
	for k := 0; k < shards; k++ {
		base := splitmix64(uint64(k) + 1)
		for v := 0; v < routerVNodes; v++ {
			pts = append(pts, point{hash: splitmix64(base + uint64(v)), shard: int32(k)})
		}
	}
	// Ties (astronomically unlikely) break to the lower shard index so the
	// ring order is a pure function of the shard count.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].shard < pts[j].shard
	})
	r := &Router{
		shards: shards,
		hashes: make([]uint64, len(pts)),
		owners: make([]int32, len(pts)),
	}
	for i, p := range pts {
		r.hashes[i] = p.hash
		r.owners[i] = p.shard
	}
	return r
}

// Shards returns the shard count the ring was built for.
func (r *Router) Shards() int { return r.shards }

// Shard returns the shard owning SCN scn: binary search for the first
// ring point at or after the SCN's hash, wrapping to the first point.
func (r *Router) Shard(scn int) int {
	// A distinct avalanche domain from the vnode points (extra splitmix
	// round) so SCN keys never collide with ring points systematically.
	h := splitmix64(splitmix64(uint64(scn)) ^ 0xd1b54a32d192ed03)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return int(r.owners[i])
}

// OwnerMap returns owner[m] = Shard(m) for every SCN in [0, scns), plus
// the inverse grouping ownedOf[k] (ascending SCN lists, possibly empty for
// a shard no SCN hashes to).
func (r *Router) OwnerMap(scns int) (owner []int, ownedOf [][]int) {
	owner = make([]int, scns)
	ownedOf = make([][]int, r.shards)
	for m := 0; m < scns; m++ {
		k := r.Shard(m)
		owner[m] = k
		ownedOf[k] = append(ownedOf[k], m)
	}
	return owner, ownedOf
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-avalanched
// 64-bit mixing function (public-domain constants from Steele et al.).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Conn is the client surface the replayer drives — satisfied by *Client
// (one connection) and *ShardPool (shard-aware connection fan-out).
type Conn interface {
	SubmitInto(req *SubmitRequest, resp *SubmitResponse) error
	Report(req *ReportRequest) (*ReportResponse, error)
	StepInto(repSlot int, reports []TaskReport, tasks []TaskSpec, close bool, resp *StepResponse) error
}

// ShardPool fans a load generator's requests over per-shard connections:
// each submission rides the connection of the shard owning its first
// task's home SCN, so a shard's traffic keeps connection affinity (and,
// once the multi-process router mode lands, would land on that shard's
// process directly). Reports chase the connection that carried the slot's
// submission. Not safe for concurrent use by multiple goroutines driving
// interleaved slots — like the Replayer it serves, it is a per-worker
// object.
type ShardPool struct {
	router *Router
	conns  []*Client
	last   *Client
}

// NewShardPool builds one client per shard, all targeting addr.
func NewShardPool(addr string, shards int) *ShardPool {
	p := &ShardPool{router: NewRouter(shards), conns: make([]*Client, shards)}
	for k := range p.conns {
		p.conns[k] = NewClient(addr)
	}
	p.last = p.conns[0]
	return p
}

// pick selects (and remembers) the connection for a submission.
func (p *ShardPool) pick(tasks []TaskSpec) *Client {
	c := p.conns[0]
	if len(tasks) > 0 && len(tasks[0].SCNs) > 0 {
		c = p.conns[p.router.Shard(tasks[0].SCNs[0])]
	}
	p.last = c
	return c
}

// SubmitInto implements Conn.
func (p *ShardPool) SubmitInto(req *SubmitRequest, resp *SubmitResponse) error {
	return p.pick(req.Tasks).SubmitInto(req, resp)
}

// Report implements Conn: outcome reports follow the connection that
// submitted the open slot.
func (p *ShardPool) Report(req *ReportRequest) (*ReportResponse, error) {
	return p.last.Report(req)
}

// StepInto implements Conn.
func (p *ShardPool) StepInto(repSlot int, reports []TaskReport, tasks []TaskSpec, close bool, resp *StepResponse) error {
	return p.pick(tasks).StepInto(repSlot, reports, tasks, close, resp)
}

// Stats fetches the daemon's counters over any pool connection.
func (p *ShardPool) Stats() (*Stats, error) { return p.conns[0].Stats() }

// ConnStats sums connection churn over the pool.
func (p *ShardPool) ConnStats() (created, reused uint64) {
	for _, c := range p.conns {
		cr, re := c.ConnStats()
		created += cr
		reused += re
	}
	return created, reused
}
