package serve

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"time"

	"lfsc/internal/env"
	"lfsc/internal/obs"
	"lfsc/internal/rng"
	"lfsc/internal/trace"
)

// This file is the serve-layer perf harness behind `make bench-serve`
// (cmd/lfscbench -benchserve) and the zero-allocation pin in wire_test.go.
// It drives the daemon's actual HTTP handlers — handleStep/handleReport —
// without a network in between: requests are encoded with the client-side
// wire encoders, handed to the handler through a reusable fake
// ResponseWriter, and the response is parsed back with the client-side
// parsers. What it measures is therefore the full serving data plane
// (decode → validate → dispatch → Decide/Observe → encode) at
// function-call cost, with the HTTP stack's own socket handling factored
// out; a separate real-HTTP phase measures end-to-end round trips per
// second.

// BenchResult carries the serve-layer figures BENCH_core.json pins
// (serve_ns_per_slot, serve_allocs_per_slot, serve_allocs_per_req,
// serve_http_rps).
type BenchResult struct {
	// NsPerSlot is wall time per full slot on the in-process public API
	// loop: workload generation + one batched Engine.StepInto round trip
	// (previous slot's reports + this slot's tasks, Decide and Observe on
	// the engine goroutine). This is the successor of the pre-batching
	// BenchmarkEngineSlot figure (Submit + Report, two dispatches per
	// slot) and is directly comparable to it.
	NsPerSlot float64
	// AllocsPerSlot is the heap-allocation count of the same loop per
	// slot, client side included.
	AllocsPerSlot float64
	// AllocsPerReq is the heap-allocation count attributed to the handler
	// invocation alone (decode through encode, engine work included) —
	// 0 in steady state, pinned by TestServeWireZeroAlloc.
	AllocsPerReq float64
	// NsPerSlotProbe is NsPerSlot with the slot-phase probe enabled — the
	// shipped lfscd default (the daemon constructs its probe
	// unconditionally; it predates the fleet-observability layer). This
	// is the metrics-off baseline the obs-overhead gate compares against.
	NsPerSlotProbe float64
	// NsPerSlotObs is NsPerSlot with the full observability stack enabled
	// (Metrics registry, slot-trace ring, SLO tracker, probe) — measured
	// best-of-N against same-process best-of-N bare and probe-only runs
	// so the triple is comparable on a noisy box. benchdiff gates it at
	// ≤5% over NsPerSlotProbe: the marginal price of everything
	// -metrics/-slot-trace/-slo-window can turn off, pinning the design
	// claim that metric series are scrape-time reads and the tracer/SLO
	// piggyback on the probe's clock reads rather than taking their own.
	NsPerSlotObs float64
	// HTTPRps is end-to-end batched /v1/step round trips per second over
	// a real loopback HTTP connection (one round trip per slot).
	HTTPRps float64
	// CumReward is the client-side cumulative reward of the in-process
	// run — a sanity anchor that the measured path is the real protocol.
	CumReward float64
	Slots     int
	// Shards is the shard count the headline HTTPRps run actually used,
	// recorded so the artifact's workers key reflects the measured
	// configuration rather than an assumption.
	Shards int
}

// benchScenario mirrors the serve tests' small-but-non-trivial scenario
// (TestServeSmoke scale): 4 SCNs, overlapping coverage, 27 context cells.
func benchScenario(T int, seed uint64) ReplayScenario {
	return ReplayScenario{
		Synthetic: trace.SyntheticConfig{
			SCNs:                 4,
			MinTasks:             2,
			MaxTasks:             5,
			Overlap:              0.3,
			LatencySensitiveFrac: 0.5,
		},
		EnvCfg:   env.DefaultConfig(4, 27),
		Capacity: 3,
		Alpha:    1,
		Beta:     5,
		H:        3,
		T:        T,
		Seed:     seed,
	}
}

// fakeRW is the reusable http.ResponseWriter of the in-process loop: a
// persistent header map (so the hot handlers' Content-Type install
// happens once) and an append-reused body buffer.
type fakeRW struct {
	hdr  http.Header
	buf  []byte
	code int
}

func (w *fakeRW) Header() http.Header {
	if w.hdr == nil {
		w.hdr = make(http.Header)
	}
	return w.hdr
}

func (w *fakeRW) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *fakeRW) WriteHeader(code int) { w.code = code }

func (w *fakeRW) reset() {
	w.buf = w.buf[:0]
	w.code = 0
}

// fakeBody adapts bytes.Reader to the ReadCloser the handlers take.
type fakeBody struct{ bytes.Reader }

func (b *fakeBody) Close() error { return nil }

// stepHarness drives one engine through the step protocol handler-first:
// the same lockstep the Replayer runs over HTTP, minus the network.
type stepHarness struct {
	eng *Engine
	rep *Replayer

	w    fakeRW
	body fakeBody
	req  *http.Request

	enc      []byte
	resp     StepResponse
	pend     []TaskReport
	pendSlot int
	cum      float64

	// countAllocs isolates the handler invocation between two MemStats
	// reads, attributing its global malloc delta to the request.
	countAllocs    bool
	handlerMallocs uint64
	handlerReqs    uint64
	ms0, ms1       runtime.MemStats
}

// newStepHarness builds an engine + replayer pair on the bench scenario
// and starts the engine. ReportWait is effectively infinite: the harness
// is strictly lockstep, and a timer firing mid-measurement would both
// skew the protocol and allocate on the late-report path. mutate, when
// non-nil, adjusts the engine config before construction (the obs
// zero-alloc test enables the full instrumentation stack through it).
func newStepHarness(T int, seed uint64, mutate func(*Config)) (*stepHarness, error) {
	sc := benchScenario(T, seed)
	cfg, err := sc.EngineConfig()
	if err != nil {
		return nil, err
	}
	cfg.ReportWait = time.Hour
	if mutate != nil {
		mutate(&cfg)
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	rep, err := NewReplayer(sc)
	if err != nil {
		return nil, err
	}
	h := &stepHarness{eng: eng, rep: rep}
	h.req = &http.Request{Method: http.MethodPost, Body: &h.body}
	eng.Start()
	return h, nil
}

// step replays one slot through handleStep: generate, encode the batched
// request (previous slot's reports + this slot's tasks), invoke the
// handler, parse the decision, realise outcomes for the next step.
func (h *stepHarness) step() error {
	r := h.rep
	t := r.next
	r.next++
	r.env.Advance(t)
	r.gen.NextInto(t, &r.slotBuf)
	n := len(r.slotBuf.Tasks)
	if n == 0 {
		return nil
	}
	r.buildSpecs()

	h.enc = appendStepRequest(h.enc[:0], h.pendSlot, h.pend, r.specs, true)
	h.body.Reset(h.enc)
	h.w.reset()
	if h.countAllocs {
		runtime.ReadMemStats(&h.ms0)
		h.eng.handleStep(&h.w, h.req)
		runtime.ReadMemStats(&h.ms1)
		h.handlerMallocs += h.ms1.Mallocs - h.ms0.Mallocs
		h.handlerReqs++
	} else {
		h.eng.handleStep(&h.w, h.req)
	}
	if h.w.code != http.StatusOK {
		return fmt.Errorf("serve: bench slot %d: status %d: %s", t, h.w.code, h.w.buf)
	}
	if err := parseStepResponse(h.w.buf, &h.resp); err != nil {
		return fmt.Errorf("serve: bench slot %d: %w", t, err)
	}
	if len(h.pend) > 0 && h.resp.ReportError != "" {
		return fmt.Errorf("serve: bench slot %d: report part rejected: %s", t, h.resp.ReportError)
	}
	if len(h.resp.Assigned) != n || h.resp.Base != 0 {
		return fmt.Errorf("serve: bench slot %d: %d assignments at base %d for %d tasks",
			t, len(h.resp.Assigned), h.resp.Base, n)
	}

	var slotReal, taskReal rng.Stream
	r.realRoot.DeriveInto(uint64(t), &slotReal)
	h.pend = h.pend[:0]
	h.pendSlot = h.resp.Slot
	for idx, m := range h.resp.Assigned {
		if m < 0 {
			continue
		}
		slotReal.DeriveInto(uint64(m)<<32|uint64(idx), &taskReal)
		out := r.env.Draw(m, r.cells[idx], &taskReal)
		h.cum += out.Compound()
		h.pend = append(h.pend, TaskReport{Task: idx, U: out.U, V: out.V(), Q: out.Q})
	}
	return nil
}

// flush delivers the final slot's reports through handleReport so the
// engine's last Observe runs before Stop.
func (h *stepHarness) flush() error {
	if len(h.pend) == 0 {
		return nil
	}
	h.enc = appendReportRequest(h.enc[:0], h.pendSlot, h.pend)
	h.body.Reset(h.enc)
	h.w.reset()
	h.eng.handleReport(&h.w, h.req)
	if h.w.code != http.StatusOK {
		return fmt.Errorf("serve: bench flush: status %d: %s", h.w.code, h.w.buf)
	}
	h.pend = h.pend[:0]
	return nil
}

// close flushes and stops the engine.
func (h *stepHarness) close() error {
	err := h.flush()
	h.eng.Stop()
	return err
}

// genBuf is one slot's worth of pre-materialized workload, deep-copied
// out of the replayer's arena (which only holds one slot at a time).
// Flat backing arrays keep the copy a pair of memmoves.
type genBuf struct {
	ctx   []float64
	scn   []int
	specs []TaskSpec
}

// copyFrom snapshots the replayer's current specs into the buffer.
func (b *genBuf) copyFrom(specs []TaskSpec) {
	b.ctx = b.ctx[:0]
	b.scn = b.scn[:0]
	b.specs = make([]TaskSpec, len(specs))
	for i := range specs {
		b.ctx = append(b.ctx, specs[i].Ctx...)
		b.scn = append(b.scn, specs[i].SCNs...)
	}
	ctxAt, scnAt := 0, 0
	for i := range specs {
		nc, ns := len(specs[i].Ctx), len(specs[i].SCNs)
		b.specs[i] = TaskSpec{
			Ctx:  b.ctx[ctxAt : ctxAt+nc : ctxAt+nc],
			SCNs: b.scn[scnAt : scnAt+ns : scnAt+ns],
		}
		ctxAt += nc
		scnAt += ns
	}
}

// benchAPILoop measures the in-process public API at the bench scenario:
// one batched StepInto per slot carrying the previous slot's reports and
// this slot's tasks. The workload is pre-materialized from the trace
// generator before the clock starts (the shared-trace replay discipline:
// the figure prices the serving data plane, not the load generator), and
// the report values are fixed (U 0.5, V 1, Q 1.5 — no environment
// draws). Its lineage is the pre-batching BenchmarkEngineSlot figure,
// which drove the same decide + observe work through a Submit/Report
// dispatch pair with generation inline.
//
// instrumented enables the full observability stack (metrics registry,
// slot-trace ring, SLO tracker, probe) on the engine, pricing the
// metrics-on overhead against the bare loop.
// obsBenchConfig enables the full observability stack on a bench
// engine: the configuration whose cost the serve_ns_per_slot_obs gate
// prices against the bare loop.
func obsBenchConfig(cfg *Config) {
	cfg.Probe = obs.NewProbe()
	cfg.Metrics = obs.NewMetrics()
	cfg.SlotRing = obs.NewSlotRing(256, cfg.Shards)
	cfg.SLO = obs.NewSLO(60, 0.01)
}

func benchAPILoop(slots int, seed uint64, mutate func(*Config)) (nsPerSlot, allocsPerSlot float64, err error) {
	const warmup = 300
	total := warmup + slots
	sc := benchScenario(total+16, seed)
	cfg, err := sc.EngineConfig()
	if err != nil {
		return 0, 0, err
	}
	cfg.ReportWait = time.Hour
	if mutate != nil {
		mutate(&cfg)
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		return 0, 0, err
	}
	rep, err := NewReplayer(sc)
	if err != nil {
		return 0, 0, err
	}
	bufs := make([]genBuf, total)
	for t := 0; t < total; t++ {
		rep.env.Advance(t)
		rep.gen.NextInto(t, &rep.slotBuf)
		rep.buildSpecs()
		bufs[t].copyFrom(rep.specs)
	}
	eng.Start()
	defer eng.Stop()

	var req StepRequest
	var resp StepResponse
	reports := make([]TaskReport, 0, 16)
	pendSlot := 0
	doSlot := func(t int) error {
		req.Slot = pendSlot
		req.Reports = reports
		req.Tasks = bufs[t].specs
		req.Close = true
		if stepErr := eng.StepInto(&req, &resp); stepErr != nil {
			return fmt.Errorf("serve: bench api slot %d: %w", t, stepErr)
		}
		if len(reports) > 0 && resp.ReportError != "" {
			return fmt.Errorf("serve: bench api slot %d: report part rejected: %s", t, resp.ReportError)
		}
		reports = reports[:0]
		for idx, m := range resp.Assigned {
			if m < 0 {
				continue
			}
			reports = append(reports, TaskReport{Task: idx, U: 0.5, V: 1, Q: 1.5})
		}
		pendSlot = resp.Slot
		return nil
	}
	for t := 0; t < warmup; t++ {
		if err := doSlot(t); err != nil {
			return 0, 0, err
		}
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for t := warmup; t < total; t++ {
		if err := doSlot(t); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return float64(elapsed.Nanoseconds()) / float64(slots),
		float64(m1.Mallocs-m0.Mallocs) / float64(slots), nil
}

// RunBench measures the serve layer at the bench scenario: `slots` timed
// public-API slots (after warmup) for ns/slot and allocs/slot, an
// in-process handler loop with an alloc-attributed stretch for
// allocs/request, and `httpSlots` real HTTP round trips for end-to-end
// throughput.
func RunBench(slots, httpSlots int, seed uint64) (BenchResult, error) {
	const warmup = 300
	const allocReqs = 200
	var res BenchResult
	res.Slots = slots
	res.Shards = 1 // the headline serve figures are the single-shard plane

	// Bare/probe/full-stack triples, interleaved in the same process and
	// scored by the fastest pass of each, so the figures the obs-overhead
	// gate compares saw the same machine conditions. Twelve reps, not a
	// token two or three: single-core CI boxes throttle mid-run, the
	// per-rep ratio swings ±10%, and the gate fails whenever the probe
	// side hits its unthrottled floor in some rep while the obs side
	// never does — best-of-12 converges BOTH sides of the gate pair onto
	// their floors, where the real marginal cost of the obs stack (a few
	// tens of ns, now that the ring publish skips its usually-zero words)
	// is what gets priced. The pipelined close shrank the probe baseline
	// by ~15%, which shrank the gate's absolute headroom with it; the
	// extra reps buy back the margin that took. The gate pair is
	// probe vs full stack: lfscd constructs its slot-phase probe
	// unconditionally (it predates the fleet-observability layer and
	// feeds the /lfsc/status phase table), so the shipped metrics-off
	// baseline is probe-on, and the marginal cost being priced is exactly
	// the features -metrics/-slot-trace/-slo-window can turn off.
	const obsReps = 12
	bestBare, bestProbe, bestObs := math.Inf(1), math.Inf(1), math.Inf(1)
	var bareAllocs float64
	for rep := 0; rep < obsReps; rep++ {
		ns, allocs, err := benchAPILoop(slots, seed, nil)
		if err != nil {
			return res, err
		}
		if ns < bestBare {
			bestBare, bareAllocs = ns, allocs
		}
		nsProbe, _, err := benchAPILoop(slots, seed, func(cfg *Config) { cfg.Probe = obs.NewProbe() })
		if err != nil {
			return res, err
		}
		if nsProbe < bestProbe {
			bestProbe = nsProbe
		}
		nsObs, _, err := benchAPILoop(slots, seed, obsBenchConfig)
		if err != nil {
			return res, err
		}
		if nsObs < bestObs {
			bestObs = nsObs
		}
	}
	res.NsPerSlot = bestBare
	res.NsPerSlotProbe = bestProbe
	res.NsPerSlotObs = bestObs
	res.AllocsPerSlot = bareAllocs

	// Handler loop: exercises the full wire path (encode → handleStep →
	// parse → realise) and attributes the handler's own mallocs.
	h, err := newStepHarness(warmup+allocReqs+16, seed, nil)
	if err != nil {
		return res, err
	}
	for i := 0; i < warmup; i++ {
		if err := h.step(); err != nil {
			h.eng.Stop()
			return res, err
		}
	}
	h.countAllocs = true
	for i := 0; i < allocReqs; i++ {
		if err := h.step(); err != nil {
			h.eng.Stop()
			return res, err
		}
	}
	if h.handlerReqs > 0 {
		res.AllocsPerReq = float64(h.handlerMallocs) / float64(h.handlerReqs)
	}
	res.CumReward = h.cum
	if err := h.close(); err != nil {
		return res, err
	}

	rps, err := benchHTTP(httpSlots, seed)
	if err != nil {
		return res, err
	}
	res.HTTPRps = rps
	return res, nil
}

// benchHTTP measures end-to-end /v1/step round trips per second against
// a real loopback server, one round trip per slot (the replayer's
// batched lockstep).
func benchHTTP(slots int, seed uint64) (float64, error) {
	if slots <= 0 {
		return 0, nil
	}
	return benchHTTPScenario(benchScenario(50+slots+16, seed), slots, 1, false)
}

// benchHTTPScenario is the shared loopback-HTTP throughput loop: boot a
// daemon on the scenario with the given shard count (shardPlane forces
// the sharded serving plane even at one shard — the shard-tax baseline),
// drive it in batched lockstep through a shard-aware connection pool,
// and report timed round trips per second after warmup.
func benchHTTPScenario(sc ReplayScenario, slots, shards int, shardPlane bool) (float64, error) {
	const warmup = 50
	cfg, err := sc.EngineConfig()
	if err != nil {
		return 0, err
	}
	cfg.ReportWait = time.Hour
	cfg.Shards = shards
	cfg.ShardPlane = shardPlane
	eng, err := NewEngine(cfg)
	if err != nil {
		return 0, err
	}
	srv, err := StartServer("127.0.0.1:0", eng)
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	eng.Start()
	defer eng.Stop()

	rep, err := NewReplayer(sc)
	if err != nil {
		return 0, err
	}
	var conn Conn = NewClient(srv.Addr())
	if shards > 1 {
		conn = NewShardPool(srv.Addr(), shards)
	}
	for i := 0; i < warmup; i++ {
		if _, err := rep.Step(conn); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	for i := 0; i < slots; i++ {
		if _, err := rep.Step(conn); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start)
	if err := rep.Flush(conn); err != nil {
		return 0, err
	}
	return float64(slots) / elapsed.Seconds(), nil
}

// ShardBenchResult carries the shard-scaling figures BENCH_core.json pins
// (serve_shard_rps_1/2/4): end-to-end /v1/step throughput on the SAME
// scenario as the headline serve_http_rps figure, run through the sharded
// serving plane at Shards = 1, 2, 4 (the one-shard point forces
// Config.ShardPlane, so rps_1 / serve_http_rps is a pure plane-tax
// ratio). On a single-core runner the three are expected flat (the
// parallel phase has nowhere to go); benchdiff gates them num_cpu-aware.
type ShardBenchResult struct {
	Rps1 float64
	Rps2 float64
	Rps4 float64
}

// RunShardBench measures loopback /v1/step throughput through the sharded
// plane at shard counts 1, 2, and 4 on the headline serve scenario. Reps
// are interleaved ACROSS shard counts (1,2,4, 1,2,4, ...) rather than
// run as per-count blocks — the same discipline RunBench applies to its
// bare/probe/obs triples — so slow drift on the runner (thermal, noisy
// neighbours) biases every count equally instead of penalising whichever
// block ran last; each count is scored by its fastest pass.
func RunShardBench(slots int, seed uint64) (ShardBenchResult, error) {
	const shardBenchReps = 3
	var res ShardBenchResult
	if slots <= 0 {
		return res, nil
	}
	counts := []int{1, 2, 4}
	best := make([]float64, len(counts))
	for rep := 0; rep < shardBenchReps; rep++ {
		for i, s := range counts {
			sc := benchScenario(50+slots+16, seed)
			rps, err := benchHTTPScenario(sc, slots, s, s == 1)
			if err != nil {
				return res, fmt.Errorf("serve: shard bench (shards=%d): %w", s, err)
			}
			if rps > best[i] {
				best[i] = rps
			}
		}
	}
	res.Rps1, res.Rps2, res.Rps4 = best[0], best[1], best[2]
	return res, nil
}
