package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"lfsc/internal/obs"
	"lfsc/internal/rng"
	"lfsc/internal/sim"
	"lfsc/internal/trace"
)

// obsStack bundles one test's instrumentation so assertions can reach
// the ring/SLO behind the daemon.
type obsStack struct {
	metrics *obs.Metrics
	ring    *obs.SlotRing
	slo     *obs.SLO
}

// withObs enables the full observability stack on a daemon config.
func withObs(shards int) (*obsStack, func(*Config)) {
	st := &obsStack{
		metrics: obs.NewMetrics(),
		ring:    obs.NewSlotRing(64, shards),
		slo:     obs.NewSLO(60, 0.01),
	}
	return st, func(c *Config) {
		c.Shards = shards
		c.Probe = obs.NewProbe()
		c.Metrics = st.metrics
		c.SlotRing = st.ring
		c.SLO = st.slo
	}
}

// TestObsInstrumentedThreeWayIdentity is the observability layer's
// bit-identity contract: a fully instrumented daemon (metrics, slot
// tracing, SLO tracking, probe) earns the hex-float-identical cumulative
// reward of an offline sim.Run — at Shards=1 and Shards=4, daemon side
// and client side. Instrumentation reads clocks and counters; it must
// never touch the learner.
func TestObsInstrumentedThreeWayIdentity(t *testing.T) {
	const T, seed = 250, 42
	sc := testScenario(T, seed)

	simSc := &sim.Scenario{
		Cfg: sim.Config{T: T, Capacity: sc.Capacity, Alpha: sc.Alpha, Beta: sc.Beta, H: sc.H},
		NewGenerator: func(r *rng.Stream) (trace.Generator, error) {
			return trace.NewSynthetic(sc.Synthetic, r)
		},
		EnvCfg: sc.EnvCfg,
	}
	series, err := sim.Run(simSc, sim.LFSCFactory(nil), seed)
	if err != nil {
		t.Fatal(err)
	}
	offline := 0.0
	for _, r := range series.Reward {
		offline += r
	}

	for _, shards := range []int{1, 4} {
		st, mutate := withObs(shards)
		eng, srv, _ := bootDaemon(t, sc, mutate)
		rep, err := NewReplayer(sc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rep.Run(shardPoolFor(srv, shards), 0, T, nil); err != nil {
			t.Fatal(err)
		}
		eng.Stop()
		srv.Close()
		if daemon := eng.CumReward(); daemon != offline {
			t.Errorf("shards=%d: instrumented daemon cum reward %x != offline sim %x (%.10f vs %.10f)",
				shards, daemon, offline, daemon, offline)
		}
		if client := rep.CumReward(); client != offline {
			t.Errorf("shards=%d: client cum reward %x != offline sim %x", shards, client, offline)
		}
		if got := st.ring.Published(); got != T {
			t.Errorf("shards=%d: trace ring published %d records, want %d", shards, got, T)
		}
		if rep := st.slo.Report(); rep.Requests == 0 {
			t.Errorf("shards=%d: SLO tracker saw no requests", shards)
		}
	}
}

// TestServeWireZeroAllocObs extends the zero-allocation pin to the
// instrumented daemon: with metrics, slot tracing, SLO tracking, and the
// probe all enabled, steady-state step handling still allocates nothing.
// The instrumentation publishes via atomic stores into pre-allocated
// records; an allocation here means it leaked onto the wire path.
func TestServeWireZeroAllocObs(t *testing.T) {
	_, mutate := withObs(1)
	h, err := newStepHarness(1<<20, 9, mutate)
	if err != nil {
		t.Fatal(err)
	}
	defer h.eng.Stop()
	for i := 0; i < 400; i++ {
		if err := h.step(); err != nil {
			t.Fatal(err)
		}
	}
	var stepErr error
	allocs := testing.AllocsPerRun(200, func() {
		if err := h.step(); err != nil && stepErr == nil {
			stepErr = err
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if allocs != 0 {
		t.Fatalf("instrumented steady-state step = %v allocs/request, want 0", allocs)
	}
}

// promMetrics is the parsed form of one /metrics scrape: family types
// plus every sample keyed by its full series name (labels included).
type promMetrics struct {
	types  map[string]string
	values map[string]float64
}

// parseProm is a deliberately small Prometheus text-format (0.0.4)
// parser used to validate the exposition from the outside: HELP/TYPE
// ordering, one TYPE per family, every sample attributable to a declared
// family, histogram buckets cumulative with +Inf == _count.
func parseProm(t *testing.T, body string) *promMetrics {
	t.Helper()
	p := &promMetrics{types: map[string]string{}, values: map[string]float64{}}
	helped := map[string]bool{}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			helped[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, found := strings.Cut(rest, " ")
			if !found || (typ != "counter" && typ != "gauge" && typ != "histogram") {
				t.Fatalf("line %d: bad TYPE: %q", ln+1, line)
			}
			if !helped[name] {
				t.Fatalf("line %d: TYPE for %s before its HELP", ln+1, name)
			}
			if _, dup := p.types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			p.types[name] = typ
			continue
		}
		// Sample line: name{labels} value | name value.
		series, valStr, found := strings.Cut(line, " ")
		if !found {
			t.Fatalf("line %d: malformed sample: %q", ln+1, line)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated labels: %q", ln+1, line)
			}
		}
		fam := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok && p.types[base] == "histogram" {
				fam = base
				break
			}
		}
		if _, ok := p.types[fam]; !ok {
			t.Fatalf("line %d: sample %s has no declared family", ln+1, series)
		}
		if _, dup := p.values[series]; dup {
			t.Fatalf("line %d: duplicate series %s", ln+1, series)
		}
		p.values[series] = val
	}
	p.checkHistograms(t)
	return p
}

// checkHistograms verifies every histogram family's buckets are
// cumulative (non-decreasing in le order) and +Inf matches _count.
func (p *promMetrics) checkHistograms(t *testing.T) {
	t.Helper()
	type bkt struct {
		le  float64
		val float64
	}
	buckets := map[string][]bkt{} // series-without-le → buckets
	for series, val := range p.values {
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
		}
		base, ok := strings.CutSuffix(name, "_bucket")
		if !ok || p.types[base] != "histogram" {
			continue
		}
		i := strings.LastIndex(series, `le="`)
		if i < 0 {
			t.Fatalf("bucket series without le label: %s", series)
		}
		leStr := series[i+len(`le="`):]
		leStr = leStr[:strings.IndexByte(leStr, '"')]
		le := 0.0
		if leStr == "+Inf" {
			le = float64(1 << 62)
		} else {
			var err error
			if le, err = strconv.ParseFloat(leStr, 64); err != nil {
				t.Fatalf("bad le %q in %s", leStr, series)
			}
		}
		key := base + series[len(name):i] // family + labels up to the le pair
		buckets[key] = append(buckets[key], bkt{le, val})
	}
	for key, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		for i := 1; i < len(bs); i++ {
			if bs[i].val < bs[i-1].val {
				t.Fatalf("%s: buckets not cumulative: %v", key, bs)
			}
		}
	}
}

// get fetches a URL and returns its body.
func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// TestObsSmokeScrape is the scrape-twice smoke behind `make obs-smoke`:
// boot a sharded instrumented daemon, serve real traffic, scrape
// /metrics twice with traffic in between, and require (1) both scrapes
// parse as well-formed expositions with identical family sets, and
// (2) the serving counters to have advanced monotonically between them.
func TestObsSmokeScrape(t *testing.T) {
	const T, seed, shards = 80, 21, 4
	sc := testScenario(T, seed)
	_, mutate := withObs(shards)
	eng, srv, _ := bootDaemon(t, sc, mutate)
	defer srv.Close()
	rep, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	conn := shardPoolFor(srv, shards)
	if _, err := rep.Run(conn, 0, T/2, nil); err != nil {
		t.Fatal(err)
	}
	first := parseProm(t, get(t, "http://"+srv.Addr()+"/metrics"))
	if _, err := rep.Run(conn, T/2, T, nil); err != nil {
		t.Fatal(err)
	}
	second := parseProm(t, get(t, "http://"+srv.Addr()+"/metrics"))
	eng.Stop()

	// Exposition shape is stable across scrapes: same families, same types.
	if len(first.types) != len(second.types) {
		t.Fatalf("family set changed between scrapes: %d vs %d", len(first.types), len(second.types))
	}
	for name, typ := range first.types {
		if second.types[name] != typ {
			t.Fatalf("family %s changed: %q vs %q", name, typ, second.types[name])
		}
	}
	// Counters are monotone; the serving ones must have advanced.
	for series, v1 := range first.values {
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
		}
		if first.types[name] != "counter" {
			continue
		}
		if v2 := second.values[series]; v2 < v1 {
			t.Errorf("counter %s went backwards: %v -> %v", series, v1, v2)
		}
	}
	for _, series := range []string{
		"lfsc_slots_served_total",
		`lfsc_tasks_total{stage="submitted"}`,
		`lfsc_tasks_total{stage="reported"}`,
		"lfsc_slot_trace_published_total",
	} {
		if second.values[series] <= first.values[series] {
			t.Errorf("%s did not advance under traffic: %v -> %v",
				series, first.values[series], second.values[series])
		}
	}
	// The per-shard families cover every shard.
	for k := 0; k < shards; k++ {
		if _, ok := second.values[fmt.Sprintf(`lfsc_shard_owned_scns{shard="%d"}`, k)]; !ok {
			t.Errorf("no owned-scns series for shard %d", k)
		}
	}
	if second.values["lfsc_slot"] != T {
		t.Errorf("lfsc_slot = %v, want %d", second.values["lfsc_slot"], T)
	}
}

// TestSlotsEndpointAndStatus covers the /lfsc/slots trace surface and
// the extended /lfsc/status: SLO line, p999 latency column, and
// per-shard shed + timing columns.
func TestSlotsEndpointAndStatus(t *testing.T) {
	const T, seed, shards = 40, 7, 4
	sc := testScenario(T, seed)
	_, mutate := withObs(shards)
	eng, srv, _ := bootDaemon(t, sc, mutate)
	defer srv.Close()
	rep, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Run(shardPoolFor(srv, shards), 0, T, nil); err != nil {
		t.Fatal(err)
	}

	var body struct {
		Published uint64         `json:"published"`
		Spans     []obs.SlotSpan `json:"spans"`
	}
	if err := json.Unmarshal([]byte(get(t, "http://"+srv.Addr()+"/lfsc/slots")), &body); err != nil {
		t.Fatal(err)
	}
	if body.Published != T {
		t.Fatalf("published %d slot records, want %d", body.Published, T)
	}
	if len(body.Spans) != T {
		t.Fatalf("snapshot holds %d spans, want %d (ring size 64 ≥ T)", len(body.Spans), T)
	}
	last := body.Spans[len(body.Spans)-1]
	if last.Slot != T-1 || last.Seq != T-1 {
		t.Fatalf("last span = slot %d seq %d, want %d", last.Slot, last.Seq, T-1)
	}
	for _, s := range body.Spans {
		if s.Tasks <= 0 || s.Assigned <= 0 || s.Reported <= 0 {
			t.Fatalf("span %d has empty slot accounting: %+v", s.Seq, s)
		}
		if s.DecideNS == 0 || s.ObserveNS == 0 {
			t.Fatalf("span %d missing stage durations: %+v", s.Seq, s)
		}
		if len(s.ShardDecideNS) != shards || len(s.ShardObserveNS) != shards {
			t.Fatalf("span %d shard breakdown %d/%d, want %d", s.Seq, len(s.ShardDecideNS), len(s.ShardObserveNS), shards)
		}
	}

	status := get(t, "http://"+srv.Addr()+"/lfsc/status")
	eng.Stop()
	if !strings.Contains(status, "slo[60s]: n=") || !strings.Contains(status, "budget 1.00%") {
		t.Fatalf("/lfsc/status missing SLO line:\n%s", status)
	}
	if !strings.Contains(status, "p999=") {
		t.Fatalf("/lfsc/status missing p999 column:\n%s", status)
	}
	for k := 0; k < shards; k++ {
		want := fmt.Sprintf("shard %d:", k)
		if !strings.Contains(status, want) {
			t.Fatalf("/lfsc/status missing %q:\n%s", want, status)
		}
	}
	if !strings.Contains(status, "shed 0  last decide") {
		t.Fatalf("/lfsc/status shard lines missing shed/timing columns:\n%s", status)
	}
}

// TestConcurrentScrapeUnderLoad hammers every observability surface
// while the sharded engine serves batched lockstep traffic — the
// torn-read test for the whole scrape plane. Under `make test-race` this
// is also the data-race proof for the metrics registry, the slot ring,
// and the SLO tracker against live serving.
func TestConcurrentScrapeUnderLoad(t *testing.T) {
	const T, seed, shards = 120, 13, 4
	sc := testScenario(T, seed)
	_, mutate := withObs(shards)
	eng, srv, _ := bootDaemon(t, sc, mutate)
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/lfsc/slots", "/lfsc/status", "/v1/stats"} {
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					resp, err := http.Get(url)
					if err != nil {
						continue // daemon shutting down
					}
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}("http://" + srv.Addr() + path)
		}
	}

	rep, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Run(shardPoolFor(srv, shards), 0, T, nil); err != nil {
		t.Fatal(err)
	}
	// Final scrapes after the load must still parse and be consistent.
	final := parseProm(t, get(t, "http://"+srv.Addr()+"/metrics"))
	if final.values["lfsc_slot"] != T {
		t.Errorf("lfsc_slot = %v after load, want %d", final.values["lfsc_slot"], T)
	}
	var slots struct {
		Published uint64 `json:"published"`
	}
	if err := json.Unmarshal([]byte(get(t, "http://"+srv.Addr()+"/lfsc/slots")), &slots); err != nil {
		t.Fatal(err)
	}
	if slots.Published != T {
		t.Errorf("trace ring published %d, want %d", slots.Published, T)
	}
	close(stop)
	wg.Wait()
	eng.Stop()

	// The scrape load must not have perturbed the computation: same
	// cumulative reward as an unscraped daemon.
	eng2, srv2, _ := bootDaemon(t, sc, func(c *Config) { c.Shards = shards })
	defer srv2.Close()
	rep2, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep2.Run(shardPoolFor(srv2, shards), 0, T, nil); err != nil {
		t.Fatal(err)
	}
	eng2.Stop()
	if eng.CumReward() != eng2.CumReward() {
		t.Fatalf("scraped run diverged from bare run: %x vs %x", eng.CumReward(), eng2.CumReward())
	}
}
