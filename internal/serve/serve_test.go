package serve

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"lfsc/internal/env"
	"lfsc/internal/rng"
	"lfsc/internal/sim"
	"lfsc/internal/trace"
)

// testScenario is a small but non-trivial serving scenario: 4 SCNs,
// overlapping coverage, 27 context cells.
func testScenario(T int, seed uint64) ReplayScenario {
	return ReplayScenario{
		Synthetic: trace.SyntheticConfig{
			SCNs:                 4,
			MinTasks:             2,
			MaxTasks:             5,
			Overlap:              0.3,
			LatencySensitiveFrac: 0.5,
		},
		EnvCfg:   env.DefaultConfig(4, 27),
		Capacity: 3,
		Alpha:    1,
		Beta:     5,
		H:        3,
		T:        T,
		Seed:     seed,
	}
}

// buildDaemon constructs an engine for the scenario without starting it.
// Serving knobs suit lockstep tests: generous report wait, no slot clock.
func buildDaemon(t *testing.T, sc ReplayScenario, mutate func(*Config)) *Engine {
	t.Helper()
	cfg, err := sc.EngineConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.ReportWait = 5 * time.Second
	if mutate != nil {
		mutate(&cfg)
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func startDaemon(t *testing.T, eng *Engine) (*Server, *Client) {
	t.Helper()
	srv, err := StartServer("127.0.0.1:0", eng)
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	return srv, NewClient(srv.Addr())
}

// bootDaemon is buildDaemon + startDaemon for the fresh-boot case.
func bootDaemon(t *testing.T, sc ReplayScenario, mutate func(*Config)) (*Engine, *Server, *Client) {
	t.Helper()
	eng := buildDaemon(t, sc, mutate)
	srv, client := startDaemon(t, eng)
	return eng, srv, client
}

// resumeDaemon builds an engine, restores the checkpoint at path before
// Start (the lfscd boot order), then serves. Reports whether a
// checkpoint was found.
func resumeDaemon(t *testing.T, sc ReplayScenario, path string, mutate func(*Config)) (*Engine, *Server, *Client, bool) {
	t.Helper()
	eng := buildDaemon(t, sc, mutate)
	restored, err := eng.RestoreIfPresent(path)
	if err != nil {
		t.Fatal(err)
	}
	srv, client := startDaemon(t, eng)
	return eng, srv, client, restored
}

// TestLockstepEquivalentToOfflineSim is the end-to-end equivalence
// guarantee: a load generator replaying a seeded trace against the
// daemon over real HTTP yields the exact same cumulative reward —
// hex-float identical — as an offline sim.Run of LFSC on the same
// scenario, on the daemon side AND the client side.
func TestLockstepEquivalentToOfflineSim(t *testing.T) {
	const T, seed = 250, 42
	sc := testScenario(T, seed)

	eng, srv, client := bootDaemon(t, sc, nil)
	defer srv.Close()
	rep, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	st, err := rep.Run(client, 0, T, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Stop()
	if st.ShedSlots != 0 {
		t.Fatalf("lockstep replay shed %d slots", st.ShedSlots)
	}

	simSc := &sim.Scenario{
		Cfg: sim.Config{T: T, Capacity: sc.Capacity, Alpha: sc.Alpha, Beta: sc.Beta, H: sc.H},
		NewGenerator: func(r *rng.Stream) (trace.Generator, error) {
			return trace.NewSynthetic(sc.Synthetic, r)
		},
		EnvCfg: sc.EnvCfg,
	}
	series, err := sim.Run(simSc, sim.LFSCFactory(nil), seed)
	if err != nil {
		t.Fatal(err)
	}
	offline := 0.0
	for _, r := range series.Reward {
		offline += r
	}

	if got := eng.CumReward(); got != offline {
		t.Fatalf("daemon cum reward %x != offline sim %x (%.10f vs %.10f)",
			got, offline, got, offline)
	}
	if got := rep.CumReward(); got != offline {
		t.Fatalf("client cum reward %x != offline sim %x", got, offline)
	}
	if eng.Slot() != T {
		t.Fatalf("daemon served %d slots, want %d", eng.Slot(), T)
	}
}

// TestServeSmoke is the kill-and-resume determinism check behind `make
// serve-smoke`: boot a daemon on an ephemeral port, drive 200 slots of a
// shared trace with periodic checkpointing, kill it hard at slot 120
// (no graceful checkpoint), resume a fresh daemon from the slot-100
// checkpoint, replay the remainder, and require the final cumulative
// reward to be bit-identical to an uninterrupted run.
func TestServeSmoke(t *testing.T) {
	const T, seed, every = 200, 7, 100
	sc := testScenario(T, seed)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "lfscd.ckpt")

	// Run A: serve 120 slots, then die without checkpointing.
	engA, srvA, clientA := bootDaemon(t, sc, func(c *Config) {
		c.CheckpointPath = ckpt
		c.CheckpointEvery = every
	})
	repA, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repA.Run(clientA, 0, 120, nil); err != nil {
		t.Fatal(err)
	}
	engA.Abort() // kill: slots 100..119 die with the process
	srvA.Close()

	// Run B: boot fresh, restore the periodic checkpoint, replay the rest.
	engB, srvB, clientB, restored := resumeDaemon(t, sc, ckpt, func(c *Config) {
		c.CheckpointPath = ckpt
		c.CheckpointEvery = every
	})
	defer srvB.Close()
	if !restored {
		t.Fatal("no checkpoint found after kill")
	}
	if engB.Slot() != every {
		t.Fatalf("restored at slot %d, want %d", engB.Slot(), every)
	}
	repB, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repB.Run(clientB, engB.Slot(), T, nil); err != nil {
		t.Fatal(err)
	}
	engB.Stop()

	// Run C: the uninterrupted control.
	engC, srvC, clientC := bootDaemon(t, sc, nil)
	defer srvC.Close()
	repC, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repC.Run(clientC, 0, T, nil); err != nil {
		t.Fatal(err)
	}
	engC.Stop()

	got, want := engB.CumReward(), engC.CumReward()
	if got != want {
		t.Fatalf("kill-and-resume diverged: resumed %x (%.12f) vs uninterrupted %x (%.12f)",
			got, got, want, want)
	}
	if engB.Slot() != engC.Slot() {
		t.Fatalf("slot counters diverged: %d vs %d", engB.Slot(), engC.Slot())
	}
}

// TestRestoreAfterGracefulStopResumesExactly checks the SIGTERM path:
// Stop writes a final checkpoint at the exact slot served, and a resumed
// daemon continues bit-identically from there.
func TestRestoreAfterGracefulStopResumesExactly(t *testing.T) {
	const T, seed = 150, 11
	sc := testScenario(T, seed)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "lfscd.ckpt")

	engA, srvA, clientA := bootDaemon(t, sc, func(c *Config) { c.CheckpointPath = ckpt })
	repA, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repA.Run(clientA, 0, 70, nil); err != nil {
		t.Fatal(err)
	}
	engA.Stop() // graceful: checkpoint at slot 70
	srvA.Close()

	engB, srvB, clientB, restored := resumeDaemon(t, sc, ckpt, nil)
	defer srvB.Close()
	if !restored {
		t.Fatal("no checkpoint found after graceful stop")
	}
	if engB.Slot() != 70 {
		t.Fatalf("graceful checkpoint at slot %d, want 70", engB.Slot())
	}
	repB, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repB.Run(clientB, 70, T, nil); err != nil {
		t.Fatal(err)
	}
	engB.Stop()

	engC, srvC, clientC := bootDaemon(t, sc, nil)
	defer srvC.Close()
	repC, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repC.Run(clientC, 0, T, nil); err != nil {
		t.Fatal(err)
	}
	engC.Stop()

	if engB.CumReward() != engC.CumReward() {
		t.Fatalf("graceful resume diverged: %x vs %x", engB.CumReward(), engC.CumReward())
	}
}

// TestOverloadShedsAndStaysAlive floods the daemon far past its bounded
// queues and requires: 429s with shed counters, no deadlock, and a
// daemon that still answers every endpoint afterwards.
func TestOverloadShedsAndStaysAlive(t *testing.T) {
	sc := testScenario(1000, 3)
	eng, srv, client := bootDaemon(t, sc, func(c *Config) {
		c.SlotEvery = 2 * time.Millisecond
		c.MaxBatch = 4
		c.QueueCap = 6
		c.SubQueue = 2
		c.ReportWait = time.Millisecond
	})
	defer srv.Close()

	const workers, perWorker = 16, 25
	var wg sync.WaitGroup
	var okCount, shedCount, otherErr atomic64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				req := &SubmitRequest{Tasks: []TaskSpec{
					{Ctx: []float64{0.1, 0.5, 0.3}, SCNs: []int{w % 4}},
					{Ctx: []float64{0.9, 0.2, 0.7}, SCNs: []int{(w + 1) % 4}},
				}}
				_, err := client.Submit(req)
				switch {
				case err == nil:
					okCount.add(1)
				default:
					if _, shed := err.(*ErrShed); shed {
						shedCount.add(1)
					} else {
						otherErr.add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if shedCount.load() == 0 {
		t.Fatal("overload produced no 429s — queues unbounded?")
	}
	if otherErr.load() != 0 {
		t.Fatalf("overload produced %d non-shed errors", otherErr.load())
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatalf("daemon dead after overload: %v", err)
	}
	if st.ShedRequests != shedCount.load() {
		t.Fatalf("daemon counted %d shed requests, clients saw %d", st.ShedRequests, shedCount.load())
	}
	if st.ShedTasks != 2*shedCount.load() {
		t.Fatalf("daemon counted %d shed tasks, want %d", st.ShedTasks, 2*shedCount.load())
	}

	// Shed counts must be visible on every surface.
	for _, path := range []string{"/lfsc/status", "/debug/vars"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		want := "shed"
		if path == "/debug/vars" {
			want = `"shed_requests"`
		}
		if !strings.Contains(string(body), want) {
			t.Fatalf("%s does not surface shed counters:\n%s", path, body)
		}
	}
	eng.Stop()
}

// atomic64 avoids importing sync/atomic types into test signatures.
type atomic64 struct {
	mu sync.Mutex
	v  uint64
}

func (a *atomic64) add(d uint64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() uint64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

// TestSubmitValidation exercises the request-rejection paths: malformed
// submissions must 400 without perturbing the learner.
func TestSubmitValidation(t *testing.T) {
	sc := testScenario(100, 5)
	eng, srv, client := bootDaemon(t, sc, nil)
	defer srv.Close()
	defer eng.Stop()

	bad := []SubmitRequest{
		{}, // empty
		{Tasks: []TaskSpec{{Ctx: []float64{0.5}, SCNs: []int{0}}}},              // wrong dims
		{Tasks: []TaskSpec{{Ctx: []float64{0.5, 2.0, 0.1}, SCNs: []int{0}}}},    // ctx out of range
		{Tasks: []TaskSpec{{Ctx: []float64{0.5, 0.5, 0.5}, SCNs: nil}}},         // no SCNs
		{Tasks: []TaskSpec{{Ctx: []float64{0.5, 0.5, 0.5}, SCNs: []int{99}}}},   // SCN out of range
		{Tasks: []TaskSpec{{Ctx: []float64{0.5, 0.5, 0.5}, SCNs: []int{1, 1}}}}, // duplicate SCN
	}
	for i, req := range bad {
		if _, err := client.Submit(&req); err == nil {
			t.Fatalf("bad submission %d accepted", i)
		} else if _, shed := err.(*ErrShed); shed {
			t.Fatalf("bad submission %d shed instead of rejected", i)
		}
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SlotsServed != 0 || st.SubmittedTasks != 0 {
		t.Fatalf("rejected submissions reached the learner: %+v", st)
	}
}

// TestReportValidation exercises report rejection: wrong slot, unknown
// task, unassigned task, duplicate, and malformed values — absorbed
// atomically or not at all.
func TestReportValidation(t *testing.T) {
	sc := testScenario(100, 6)
	eng, srv, client := bootDaemon(t, sc, nil)
	defer srv.Close()
	defer eng.Stop()

	// Reports with no open slot are late.
	_, err := client.Report(&ReportRequest{Slot: 0, Reports: []TaskReport{{Task: 0, U: 0.5, V: 1, Q: 1.5}}})
	if _, late := err.(*ErrLate); !late {
		t.Fatalf("report with no open slot: got %v, want late rejection", err)
	}

	// Open a slot with assigned tasks.
	rep, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	rep.env.Advance(0)
	rep.gen.NextInto(0, &rep.slotBuf)
	rep.buildSpecs()
	resp, err := client.Submit(&SubmitRequest{Tasks: rep.specs, Close: true})
	if err != nil {
		t.Fatal(err)
	}
	assignedIdx := -1
	for i, m := range resp.Assigned {
		if m >= 0 {
			assignedIdx = i
			break
		}
	}
	if assignedIdx == -1 {
		t.Skip("no task assigned in slot 0 for this seed")
	}
	badReports := []TaskReport{
		{Task: 10_000, U: 0.5, V: 1, Q: 1.5},      // out of range
		{Task: assignedIdx, U: 1.5, V: 1, Q: 1.5}, // reward out of range
		{Task: assignedIdx, U: 0.5, V: 0.5, Q: 1}, // non-binary completion
		{Task: assignedIdx, U: 0.5, V: 1, Q: 0},   // non-positive consumption
	}
	for i, r := range badReports {
		if _, err := client.Report(&ReportRequest{Slot: resp.Slot, Reports: []TaskReport{r}}); err == nil {
			t.Fatalf("bad report %d accepted", i)
		}
	}
	// A valid report still lands after all the rejected ones.
	if _, err := client.Report(&ReportRequest{
		Slot:    resp.Slot,
		Reports: []TaskReport{{Task: assignedIdx, U: 0.5, V: 1, Q: 1.5}},
	}); err != nil {
		t.Fatalf("valid report rejected after bad ones: %v", err)
	}
	// Duplicate of an absorbed report must be rejected.
	if _, err := client.Report(&ReportRequest{
		Slot:    resp.Slot,
		Reports: []TaskReport{{Task: assignedIdx, U: 0.5, V: 1, Q: 1.5}},
	}); err == nil {
		t.Fatal("duplicate report accepted")
	}
}

// TestRestoreRejectsCorruptCheckpoint covers the daemon-level restore
// error paths; the learner-level ones are fuzzed in internal/core.
func TestRestoreRejectsCorruptCheckpoint(t *testing.T) {
	sc := testScenario(100, 8)
	cfg, err := sc.EngineConfig()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cases := map[string]string{
		"garbage":     "not json",
		"bad-version": `{"version":9,"slot":1,"cum_reward":0,"policy":{}}`,
		"neg-slot":    `{"version":1,"slot":-1,"cum_reward":0,"policy":{}}`,
		"bad-policy":  `{"version":1,"slot":1,"cum_reward":0,"policy":{"version":99}}`,
	}
	for name, data := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := eng.Restore(p); err == nil {
			t.Fatalf("corrupt checkpoint %q restored", name)
		}
	}
	if _, err := eng.RestoreIfPresent(filepath.Join(dir, "missing")); err != nil {
		t.Fatalf("missing checkpoint treated as error: %v", err)
	}
}

// BenchmarkEngineSlot measures the in-process serving slot loop (no
// HTTP): submit one full slot, decide, report, observe. The entry
// serve_ns_per_slot may be added to BENCH_core.json; cmd/benchdiff
// reports unknown keys informationally without failing.
func BenchmarkEngineSlot(b *testing.B) {
	sc := testScenario(1<<30, 9)
	cfg, err := sc.EngineConfig()
	if err != nil {
		b.Fatal(err)
	}
	cfg.ReportWait = 5 * time.Second
	eng, err := NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	eng.Start()
	defer eng.Stop()
	rep, err := NewReplayer(sc)
	if err != nil {
		b.Fatal(err)
	}
	var reports []TaskReport
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep.env.Advance(i)
		rep.gen.NextInto(i, &rep.slotBuf)
		rep.buildSpecs()
		resp, err := eng.Submit(&SubmitRequest{Tasks: rep.specs, Close: true})
		if err != nil {
			b.Fatal(err)
		}
		reports = reports[:0]
		for idx, m := range resp.Assigned {
			if m >= 0 {
				reports = append(reports, TaskReport{Task: idx, U: 0.5, V: 1, Q: 1.5})
			}
		}
		if len(reports) > 0 {
			if _, err := eng.Report(&ReportRequest{Slot: resp.Slot, Reports: reports}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if eng.Slot() != b.N {
		b.Fatalf("served %d slots, want %d", eng.Slot(), b.N)
	}
}
