package serve

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"lfsc/internal/obs"
)

// Server is the daemon's HTTP front: the decision API plus the standard
// observability surface.
//
//	POST /v1/submit   submit task arrivals, blocks for the slot decision
//	POST /v1/report   deliver realised outcomes for the open slot
//	POST /v1/step     batched: previous slot's reports + next slot's tasks
//	GET  /v1/stats    serving counters as JSON
//	GET  /metrics     Prometheus text exposition (when Config.Metrics set)
//	GET  /lfsc/slots  slot-lifecycle trace ring as JSON (when Config.SlotRing set)
//	GET  /lfsc/status plain-text status (serving counters + phase table)
//	GET  /debug/vars  expvar (process defaults + "lfsc_serve")
//	     /debug/pprof the standard pprof handlers
//
// The three POST endpoints are the zero-allocation data plane: bodies
// decode in place into pooled request objects and replies encode into
// pooled scratch (see wire.go); steady-state handling allocates nothing.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// serveExpvar mirrors the obs expvar pattern: Publish is forever, so the
// "lfsc_serve" var registers once and re-points at the latest engine.
var serveExpvar struct {
	once sync.Once
	mu   sync.Mutex
	eng  *Engine
}

// StartServer binds addr (e.g. ":9090" or "127.0.0.1:0" for tests) and
// serves the engine's API. Close the returned server when done; stopping
// the engine and closing the server are independent.
func StartServer(addr string, eng *Engine) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	serveExpvar.mu.Lock()
	serveExpvar.eng = eng
	serveExpvar.mu.Unlock()
	serveExpvar.once.Do(func() {
		expvar.Publish("lfsc_serve", expvar.Func(func() any {
			serveExpvar.mu.Lock()
			e := serveExpvar.eng
			serveExpvar.mu.Unlock()
			if e == nil {
				return nil
			}
			return e.Stats()
		}))
	})

	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/submit", eng.handleSubmit)
	mux.HandleFunc("/v1/report", eng.handleReport)
	mux.HandleFunc("/v1/step", eng.handleStep)
	mux.HandleFunc("/v1/stats", eng.handleStats)
	if eng.cfg.Metrics != nil {
		mux.Handle("/metrics", eng.cfg.Metrics.Handler())
	}
	if eng.cfg.SlotRing != nil {
		mux.HandleFunc("/lfsc/slots", eng.handleSlots)
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/lfsc/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		eng.writeStatus(w, time.Since(start))
	})

	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the HTTP server down (the engine keeps running).
func (s *Server) Close() error { return s.srv.Close() }

// ctJSON is the shared Content-Type value the hot handlers install by
// direct map assignment — http.Header.Set allocates a fresh []string per
// call, which would break the 0 allocs/request pin.
var ctJSON = []string{"application/json"}

func setJSONHeader(w http.ResponseWriter) {
	h := w.Header()
	if len(h["Content-Type"]) == 0 {
		h["Content-Type"] = ctJSON
	}
}

// writeBody sends the encoded response in q.out and recycles q.
func (e *Engine) writeBody(w http.ResponseWriter, q *wireReq, status int) {
	setJSONHeader(w)
	w.WriteHeader(status)
	w.Write(q.out) //nolint:errcheck // client gone is fine
	e.putReq(q)
}

// writeErrReq encodes the error envelope into q's scratch (q is owned by
// the handler again) and recycles it.
func (e *Engine) writeErrReq(w http.ResponseWriter, q *wireReq, status int, msg string, accepted int) {
	q.out = appendErrorBody(q.out[:0], msg, accepted)
	e.writeBody(w, q, status)
}

// writeErrAlloc is the cold-path error writer for when no pooled request
// is available (or the request can no longer be recycled).
func writeErrAlloc(w http.ResponseWriter, status int, msg string) {
	setJSONHeader(w)
	w.WriteHeader(status)
	w.Write(appendErrorBody(nil, msg, 0)) //nolint:errcheck
}

func (e *Engine) handleSubmit(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	out := sloSkip
	defer func() { e.reqDone(&e.submitLat, start, out) }()
	if r.Method != http.MethodPost {
		writeErrAlloc(w, http.StatusMethodNotAllowed, "serve: POST only")
		return
	}
	q := e.getReq()
	if err := q.readBody(r.Body); err != nil {
		e.writeErrReq(w, q, http.StatusBadRequest, err.Error(), 0)
		return
	}
	if err := q.decode(); err != nil {
		msg := "serve: decode: " + err.Error()
		q.reset()
		e.writeErrReq(w, q, http.StatusBadRequest, msg, 0)
		return
	}
	if err := e.validateTasks(q); err != nil {
		e.writeErrReq(w, q, http.StatusBadRequest, err.Error(), 0)
		return
	}
	rep, err := e.dispatchSubmit(q)
	switch {
	case err == nil:
		out = sloOK
		q.out = appendSubmitResponse(q.out[:0], rep.slot, rep.base, rep.assigned)
		e.writeBody(w, q, http.StatusOK)
	case IsShed(err):
		out = sloShed
		e.shedLat.Observe(start)
		e.writeErrReq(w, q, http.StatusTooManyRequests, err.Error(), 0)
	case errors.Is(err, errStopped):
		// The engine may still hold (or race a reply into) q — do not
		// recycle it.
		writeErrAlloc(w, http.StatusBadRequest, err.Error())
	default:
		e.writeErrReq(w, q, http.StatusBadRequest, err.Error(), 0)
	}
}

func (e *Engine) handleReport(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	out := sloSkip
	defer func() { e.reqDone(&e.reportLat, start, out) }()
	if r.Method != http.MethodPost {
		writeErrAlloc(w, http.StatusMethodNotAllowed, "serve: POST only")
		return
	}
	q := e.getReq()
	if err := q.readBody(r.Body); err != nil {
		e.writeErrReq(w, q, http.StatusBadRequest, err.Error(), 0)
		return
	}
	if err := q.decode(); err != nil {
		msg := "serve: decode: " + err.Error()
		q.reset()
		e.writeErrReq(w, q, http.StatusBadRequest, msg, 0)
		return
	}
	if len(q.reports) == 0 {
		e.writeErrReq(w, q, http.StatusBadRequest, "serve: empty report", 0)
		return
	}
	rep, err := e.dispatchReport(q)
	switch {
	case err == nil:
		out = sloOK
		q.out = appendReportResponse(q.out[:0], rep.accepted)
		e.writeBody(w, q, http.StatusOK)
	case IsLateReport(err):
		out = sloOK
		e.writeErrReq(w, q, http.StatusGone, err.Error(), 0)
	case errors.Is(err, errStopped):
		writeErrAlloc(w, http.StatusBadRequest, err.Error())
	default:
		e.writeErrReq(w, q, http.StatusBadRequest, err.Error(), 0)
	}
}

// handleStep serves the batched round trip: absorb the previous slot's
// reports, enter the new tasks into the batcher, reply with the next
// decision. A shed step still delivers its report part (the open slot's
// Observe must not starve behind backpressure on the next slot) and
// reports the absorption count in the 429 envelope.
func (e *Engine) handleStep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	out := sloSkip
	defer func() { e.reqDone(&e.stepLat, start, out) }()
	if r.Method != http.MethodPost {
		writeErrAlloc(w, http.StatusMethodNotAllowed, "serve: POST only")
		return
	}
	q := e.getReq()
	if err := q.readBody(r.Body); err != nil {
		e.writeErrReq(w, q, http.StatusBadRequest, err.Error(), 0)
		return
	}
	if err := q.decode(); err != nil {
		msg := "serve: decode: " + err.Error()
		q.reset()
		e.writeErrReq(w, q, http.StatusBadRequest, msg, 0)
		return
	}
	if err := e.validateTasks(q); err != nil {
		e.writeErrReq(w, q, http.StatusBadRequest, err.Error(), 0)
		return
	}
	rep, err := e.dispatchSubmit(q)
	switch {
	case err == nil:
		out = sloOK
		repErr := ""
		if rep.repErr != nil {
			repErr = rep.repErr.Error()
		}
		q.out = appendStepResponse(q.out[:0], rep.accepted, repErr, rep.slot, rep.base, rep.assigned)
		e.writeBody(w, q, http.StatusOK)
	case IsShed(err):
		out = sloShed
		e.shedLat.Observe(start)
		accepted := 0
		if len(q.reports) > 0 {
			rrep, rerr := e.dispatchReport(q)
			if rerr == nil {
				accepted = rrep.accepted
			} else if errors.Is(rerr, errStopped) {
				writeErrAlloc(w, http.StatusTooManyRequests, err.Error())
				return
			}
		}
		e.writeErrReq(w, q, http.StatusTooManyRequests, err.Error(), accepted)
	case errors.Is(err, errStopped):
		writeErrAlloc(w, http.StatusBadRequest, err.Error())
	default:
		e.writeErrReq(w, q, http.StatusBadRequest, err.Error(), 0)
	}
}

func (e *Engine) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(e.Stats()) //nolint:errcheck // client gone is fine
}

// writeStatus renders the plain-text serving status: counters, request
// latencies, then the shared obs phase/run breakdown when wired.
func (e *Engine) writeStatus(w http.ResponseWriter, up time.Duration) {
	st := e.Stats()
	fmt.Fprintf(w, "lfscd — up %v\n", up.Round(time.Millisecond))
	fmt.Fprintf(w, "slot %d  cum reward %.4f\n", st.Slot, st.CumReward)
	fmt.Fprintf(w, "tasks: submitted %d  decided %d  assigned %d  reported %d\n",
		st.SubmittedTasks, st.DecidedTasks, st.AssignedTasks, st.ReportedTasks)
	fmt.Fprintf(w, "shed: requests %d  tasks %d\n", st.ShedRequests, st.ShedTasks)
	fmt.Fprintf(w, "late: slots %d  reports %d\n", st.LateSlots, st.LateReports)
	if sn := st.Scenario; sn != nil {
		fmt.Fprintf(w, "scenario %s: period %d  up %d  events: sleeps %d fails %d rejoins %d\n",
			sn.Digest, sn.Slots, sn.UpSCNs, sn.Sleeps, sn.Fails, sn.Rejoins)
	}
	if st.SLO != nil {
		s := st.SLO
		budget := "ok"
		if !s.ShedWithinBudget {
			budget = "OVER BUDGET"
		}
		fmt.Fprintf(w, "slo[%ds]: n=%d  p50=%v p99=%v p999=%v  shed %.2f%% (budget %.2f%%, %s)\n",
			s.WindowSec, s.Requests,
			time.Duration(s.P50NS).Round(time.Microsecond),
			time.Duration(s.P99NS).Round(time.Microsecond),
			time.Duration(s.P999NS).Round(time.Microsecond),
			100*s.ShedRate, 100*s.ShedBudget, budget)
	}
	// Per-shard lines read only the shard atomics — the learner state
	// itself belongs to the engine goroutine.
	for _, sh := range st.Shards {
		fmt.Fprintf(w, "shard %d: scns %d  routed subs %d  tasks %d  shed %d  last decide %v observe %v\n",
			sh.Shard, sh.SCNs, sh.RoutedSubs, sh.RoutedTasks, sh.ShedTasks,
			time.Duration(sh.LastDecideNS).Round(time.Microsecond),
			time.Duration(sh.LastObserveNS).Round(time.Microsecond))
	}
	for _, ls := range []obs.PhaseStat{st.SubmitLatency, st.ReportLatency, st.StepLatency, st.ShedLatency} {
		if ls.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "%s latency: n=%d mean=%v p50=%v p90=%v p99=%v p999=%v\n",
			ls.Phase, ls.Count,
			time.Duration(ls.MeanNS).Round(time.Microsecond),
			time.Duration(ls.P50NS).Round(time.Microsecond),
			time.Duration(ls.P90NS).Round(time.Microsecond),
			time.Duration(ls.P99NS).Round(time.Microsecond),
			time.Duration(ls.P999NS).Round(time.Microsecond))
	}
	if e.cfg.Probe != nil || e.cfg.Registry != nil {
		fmt.Fprintf(w, "\n")
		obs.WriteStatus(w, e.cfg.Probe, e.cfg.Registry, up)
	}
}
