package serve

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"lfsc/internal/obs"
)

// Server is the daemon's HTTP front: the decision API plus the standard
// observability surface.
//
//	POST /v1/submit   submit task arrivals, blocks for the slot decision
//	POST /v1/report   deliver realised outcomes for the open slot
//	GET  /v1/stats    serving counters as JSON
//	GET  /lfsc/status plain-text status (serving counters + phase table)
//	GET  /debug/vars  expvar (process defaults + "lfsc_serve")
//	     /debug/pprof the standard pprof handlers
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// serveExpvar mirrors the obs expvar pattern: Publish is forever, so the
// "lfsc_serve" var registers once and re-points at the latest engine.
var serveExpvar struct {
	once sync.Once
	mu   sync.Mutex
	eng  *Engine
}

// StartServer binds addr (e.g. ":9090" or "127.0.0.1:0" for tests) and
// serves the engine's API. Close the returned server when done; stopping
// the engine and closing the server are independent.
func StartServer(addr string, eng *Engine) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	serveExpvar.mu.Lock()
	serveExpvar.eng = eng
	serveExpvar.mu.Unlock()
	serveExpvar.once.Do(func() {
		expvar.Publish("lfsc_serve", expvar.Func(func() any {
			serveExpvar.mu.Lock()
			e := serveExpvar.eng
			serveExpvar.mu.Unlock()
			if e == nil {
				return nil
			}
			return e.Stats()
		}))
	})

	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/submit", eng.handleSubmit)
	mux.HandleFunc("/v1/report", eng.handleReport)
	mux.HandleFunc("/v1/stats", eng.handleStats)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/lfsc/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		eng.writeStatus(w, time.Since(start))
	})

	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the HTTP server down (the engine keeps running).
func (s *Server) Close() error { return s.srv.Close() }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone is fine
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (e *Engine) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: POST only"))
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decode: %w", err))
		return
	}
	resp, err := e.Submit(&req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resp)
	case IsShed(err):
		writeError(w, http.StatusTooManyRequests, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func (e *Engine) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: POST only"))
		return
	}
	var req ReportRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decode: %w", err))
		return
	}
	resp, err := e.Report(&req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resp)
	case IsLateReport(err):
		writeError(w, http.StatusGone, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func (e *Engine) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, e.Stats())
}

// writeStatus renders the plain-text serving status: counters, request
// latencies, then the shared obs phase/run breakdown when wired.
func (e *Engine) writeStatus(w http.ResponseWriter, up time.Duration) {
	st := e.Stats()
	fmt.Fprintf(w, "lfscd — up %v\n", up.Round(time.Millisecond))
	fmt.Fprintf(w, "slot %d  cum reward %.4f\n", st.Slot, st.CumReward)
	fmt.Fprintf(w, "tasks: submitted %d  decided %d  assigned %d  reported %d\n",
		st.SubmittedTasks, st.DecidedTasks, st.AssignedTasks, st.ReportedTasks)
	fmt.Fprintf(w, "shed: requests %d  tasks %d\n", st.ShedRequests, st.ShedTasks)
	fmt.Fprintf(w, "late: slots %d  reports %d\n", st.LateSlots, st.LateReports)
	for _, ls := range []obs.PhaseStat{st.SubmitLatency, st.ReportLatency} {
		if ls.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "%s latency: n=%d mean=%v p50=%v p90=%v p99=%v\n",
			ls.Phase, ls.Count,
			time.Duration(ls.MeanNS).Round(time.Microsecond),
			time.Duration(ls.P50NS).Round(time.Microsecond),
			time.Duration(ls.P90NS).Round(time.Microsecond),
			time.Duration(ls.P99NS).Round(time.Microsecond))
	}
	if e.cfg.Probe != nil || e.cfg.Registry != nil {
		fmt.Fprintf(w, "\n")
		obs.WriteStatus(w, e.cfg.Probe, e.cfg.Registry, up)
	}
}
