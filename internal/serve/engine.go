package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"lfsc/internal/core"
	"lfsc/internal/hypercube"
	"lfsc/internal/obs"
	"lfsc/internal/policy"
	"lfsc/internal/rng"
	"lfsc/internal/scenario"
	"lfsc/internal/task"
)

// Config parameterises the serving engine. The learner/topology block
// must match what the clients believe (a replaying load generator built
// from the same scenario and seed produces bit-identical decisions to an
// offline sim.Run — see ReplayScenario); the serving block tunes the
// batcher and backpressure.
type Config struct {
	// Learner / topology. Seed feeds the same master-stream derivation the
	// simulator uses: the policy's RNG is rng.New(Seed).Derive(3).
	SCNs     int
	Capacity int
	Alpha    float64
	Beta     float64
	Dims     int // context dimensionality (task.ContextDims, +1 with latency class)
	H        int // hypercube granularity h_T
	KMax     int // bound on per-SCN visible tasks per slot
	Horizon  int // schedule horizon T
	Seed     uint64

	// Scenario, when set, imposes a timeline of SCN dynamics on serving
	// (see internal/scenario): each decided slot consults the timeline at
	// its own slot index, masking down SCNs out of the view (their
	// learner state freezes) and attaching per-SCN capacity and budget
	// vectors. The timeline must cover exactly SCNs cells; it is
	// immutable and read from the engine goroutine only. Checkpoints
	// record the scenario digest and Restore refuses a mismatch, so a
	// resumed daemon replays the identical dynamics. Nil keeps the
	// static topology.
	Scenario *scenario.Timeline

	// Shards splits the learner across N partial learners (consistent-hash
	// SCN groups), run in parallel for the per-SCN stages of Decide and
	// Observe and joined by a k-way-merged resolution stage. 0 or 1 keeps
	// the single flat learner. Decisions are bit-identical at any shard
	// count; checkpoints become one file per shard plus a manifest at
	// CheckpointPath (see DESIGN.md §11).
	Shards int
	// ShardPlane forces the sharded serving plane (router, partial
	// learner, merger) even at Shards ≤ 1. A bench/diagnostic knob: the
	// shard-scaling baseline serve_shard_rps_1 runs the headline workload
	// through a one-shard plane, so its ratio against serve_http_rps
	// isolates the plane's fixed tax from any parallelism. Decisions stay
	// bit-identical to the flat engine.
	ShardPlane bool

	// Serving knobs.
	//
	// SlotEvery is the slot clock: a non-empty batch closes on each tick.
	// Zero disables the clock — slots then close only at KMax, MaxBatch,
	// or an explicit SubmitRequest.Close (lockstep replay).
	SlotEvery time.Duration
	// MaxBatch closes the slot once it holds at least this many tasks
	// (checked after each whole submission; submissions are never split
	// across slots). Zero defaults to SCNs*KMax, the structural bound.
	MaxBatch int
	// QueueCap bounds tasks accepted but not yet decided; submissions
	// that would exceed it are shed with 429. Zero defaults to 4*MaxBatch.
	QueueCap int
	// SubQueue is the submission channel depth (whole submissions).
	// Zero defaults to 64.
	SubQueue int
	// ReportWait bounds how long a decided slot stays open for outcome
	// reports before Observe runs with whatever arrived. Zero defaults
	// to 2s.
	ReportWait time.Duration

	// CheckpointPath enables checkpointing: the engine atomically writes
	// its state there every CheckpointEvery slots and on graceful Stop.
	CheckpointPath string
	// CheckpointEvery is the periodic checkpoint interval in slots
	// (0 = only on Stop).
	CheckpointEvery int

	// Observability (all optional, nil-safe). Probe records the engine's
	// slot phases (view/decide/realize/observe/snapshot); Registry makes
	// the serving run visible on /lfsc/status and expvar.
	Probe    *obs.Probe
	Registry *obs.Registry
	// SnapshotEvery > 0 emits a policy snapshot to SnapshotSink every
	// that many slots (JSONL events, mirroring the simulator's -snapshots).
	SnapshotEvery int
	SnapshotSink  obs.SnapshotSink
	// Metrics, when set, receives the engine's Prometheus metric
	// families at NewEngine (per-endpoint latency histograms, pipeline
	// counters, per-shard routing/shed/straggler series, SLO gauges) and
	// backs the HTTP server's /metrics endpoint. Scrapes read the same
	// atomics the engine already maintains — enabling metrics adds no
	// hot-path work, so instrumented serving stays bit-identical and at
	// 0 allocs/request.
	Metrics *obs.Metrics
	// SlotRing, when set, records one lifecycle span per served slot
	// (view/decide/merge/report-wait/observe/checkpoint durations plus
	// the per-shard breakdown of the parallel stages), exposed at
	// /lfsc/slots. Build it with obs.NewSlotRing(n, Shards).
	SlotRing *obs.SlotRing
	// SLO, when set, tracks rolling-window request-latency percentiles
	// and the shed rate (obs.NewSLO), surfaced in /metrics, /lfsc/status
	// and /v1/stats. Requests are recorded once they pass validation —
	// the served traffic the SLO is about.
	SLO *obs.SLO
}

func (c *Config) withDefaults() Config {
	cp := *c
	if cp.Dims == 0 {
		cp.Dims = task.ContextDims
	}
	if cp.MaxBatch <= 0 {
		cp.MaxBatch = cp.SCNs * cp.KMax
	}
	if cp.QueueCap <= 0 {
		cp.QueueCap = 4 * cp.MaxBatch
	}
	if cp.SubQueue <= 0 {
		cp.SubQueue = 64
	}
	if cp.ReportWait <= 0 {
		cp.ReportWait = 2 * time.Second
	}
	if cp.Shards <= 0 {
		cp.Shards = 1
	}
	return cp
}

// stepReply is the engine's answer to a queued wireReq: the slot decision
// for its submission part (slot/base/assigned, with assigned aliasing the
// request's own assignedBuf), the absorption result of its report part
// (accepted/repErr — step requests only), and err for terminal failures
// (engine stopped, late pure report).
type stepReply struct {
	slot     int
	base     int
	assigned []int
	accepted int
	repErr   error
	err      error
}

var errStopped = errors.New("serve: engine stopped")

// Engine is the serving core: one logical owner walks the strict slot
// protocol (batch → Decide → reply → collect reports → Observe → maybe
// checkpoint), so the policy never sees concurrent calls. Handlers
// communicate over bounded channels carrying pooled wireReq objects;
// when a queue is full the submission is shed, never blocked on.
//
// The slot protocol is an explicit state machine guarded by mu rather
// than code positions in a goroutine: ingest* feeds events in, advance
// drives decide/finish transitions until the machine parks. The engine
// goroutine runs that machine for channel traffic, ticks, and the
// report-wait timer — but a lockstep caller whose step request closes
// the open slot and the next batch runs the whole transition inline on
// its own stack (tryStepInline), with no channel handoff or context
// switch. Decide/Observe still run strictly in slot order under mu —
// inlining changes which stack does the work, never the order the
// learner sees it, which is why the bit-identity tests pass unchanged.
//
// The loop remains pipelined for channel traffic: while slot t sits
// open collecting outcome reports, the engine keeps draining the
// submission channel, so slot t+1's batch accumulates (and its wire
// decoding proceeds on handler goroutines) during slot t's report wait
// and Observe.
type Engine struct {
	cfg Config
	// pol is the flat learner (Shards ≤ 1); nil when sharded. The sharded
	// learner plane lives in shards/merger/owner/router, reached through
	// the slotsSeen/decide/observe/snapshotPolicy helpers (shard.go) so
	// the slot machine itself is layout-agnostic.
	pol    *core.LFSC
	shards []*engineShard
	merger *core.Merger
	owner  []int
	router *Router
	// ckptGen is the sharded-checkpoint generation counter (engine
	// goroutine only): shard files are written under the next generation
	// and committed by the manifest rename, then the previous generation
	// is deleted — a crash at any point leaves one complete generation.
	ckptGen uint64
	part    *hypercube.Partition

	subCh    chan *wireReq
	repCh    chan *wireReq
	stopCh   chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	abort    atomic.Bool

	// reqPool recycles wireReq objects across requests. A plain buffered
	// channel, not a sync.Pool: the GC never drains it, which is what
	// lets steady-state handling stay at 0 allocs/request.
	reqPool chan *wireReq

	// pending counts tasks accepted into the queue but not yet decided —
	// the backpressure gauge the submit handler sheds against.
	pending atomic.Int64

	// Counters (atomics: handlers and status readers are concurrent).
	submittedTasks atomic.Uint64
	decidedTasks   atomic.Uint64
	assignedTasks  atomic.Uint64
	reportedTasks  atomic.Uint64
	slotsServed    atomic.Uint64
	shedRequests   atomic.Uint64
	shedTasks      atomic.Uint64
	lateSlots      atomic.Uint64
	lateReports    atomic.Uint64
	cumRewardBits  atomic.Uint64
	slotAtomic     atomic.Int64

	// Request-latency histograms (the obs log₂-bucket machinery). Each
	// endpoint histogram times every request it serves — accepted, shed,
	// and rejected alike; shedLat additionally isolates the 429 paths so
	// overload latency is visible on its own.
	submitLat obs.Histogram
	reportLat obs.Histogram
	stepLat   obs.Histogram
	shedLat   obs.Histogram

	rs *obs.RunStatus

	// mu guards all slot-machine state below: the engine goroutine holds
	// it while processing events, and releases it only while parked in
	// select — which is the window the inline step fast path uses
	// (TryLock) to run transitions on a caller's stack.
	mu       sync.Mutex
	running  bool
	stopping bool
	// kickCh wakes the parked engine goroutine so it re-evaluates its
	// select gating after an inline caller changed machine state the
	// current park doesn't cover (e.g. opened a slot while the park has
	// no timer case armed).
	kickCh chan struct{}
	// parkedTimer records whether the engine's current (or imminent)
	// park includes the report-wait timer case.
	parkedTimer bool

	// Slot-loop state (guarded by mu). deferred holds a drained
	// submission that would overflow the accumulating batch past KMax;
	// it opens the next slot as soon as the current batch is served.
	batch    slotBatch
	deferred *wireReq
	// Ingest staging (guarded by mu): each admitted submission is routed
	// into per-shard, per-SCN coverage rows at admission time, so closing
	// a slot publishes already-partitioned buffers instead of re-scanning
	// and copying the batch. Two arenas ping-pong: the slot being
	// decided/observed keeps aliasing one while the next slot's traffic
	// stages into the other.
	stages [2]ingestStage
	cur    int
	// view is the single policy-facing SlotView, repointed at the closing
	// arena each slot. One struct suffices: decideSlot(t+1) cannot run
	// before slot t's Observe completes (the observing gate), and Observe
	// is the last reader of slot t's view.
	view policy.SlotView
	// scnShard/scnLocal map each SCN to its owning learner shard and its
	// row within that shard's staging block (flat engine: one
	// pseudo-shard, identity rows). Immutable after NewEngine.
	scnShard []int
	scnLocal []int
	// observing marks the pipelined-close window: finishSlot is running
	// Observe for slot t with mu RELEASED, so handlers can decode,
	// validate, and stage slot t+1's traffic concurrently. Every
	// transition that could race the learner (decideSlot, advance's
	// deferred/close branches, shutdown's flush) gates on it; obsCond
	// wakes shutdown when the window closes.
	observing bool
	obsCond   *sync.Cond
	// scen is the per-slot scenario view scratch (guarded by mu; only
	// meaningful while deciding when cfg.Scenario != nil).
	scen   scenario.View
	fb     policy.Feedback
	repU   []float64
	repV   []float64
	repQ   []float64
	repGot []bool
	snap   obs.PolicySnapshot

	// Open-slot state (guarded by mu): set when decideSlot opens a slot
	// for outcome reports, consumed by finishSlot. openView and
	// openAssigned alias policy/scratch storage that stays stable until
	// the next Decide, which cannot happen before finishSlot.
	openActive    bool
	openSlot      int
	openN         int
	openView      *policy.SlotView
	openAssigned  []int
	openRemaining int
	openExpected  int
	openDeadline  time.Time
	openSpan      time.Time
	openTimedOut  bool
	// openCells aliases the open slot's arena cells (per-task hypercube
	// indices, computed by validateTasks on handler goroutines), consumed
	// by finishSlot's feedback build.
	openCells []int

	// Slot-trace scratch (guarded by mu; meaningful only when tracing —
	// cfg.SlotRing != nil): explicit per-slot stage timestamps feeding
	// the SlotSpan record. The probe's histograms aggregate; the ring
	// wants the individual slot, hence the separate clock reads.
	trStart     time.Time // decide entry (slot record's wall anchor)
	trViewNS    uint64
	trDecideNS  uint64
	trDecideEnd time.Time
	// lastMergeNS is the most recent Merger.Resolve duration (sharded
	// engines only; written in decide under mu).
	lastMergeNS uint64
	// mergeLat is the merge-stage duration histogram (one Record per
	// sharded slot), exported as lfsc_serve_merge_ns.
	mergeLat obs.Histogram
	// Staged-ingest timing (traced sharded engines only — cfg.SlotRing !=
	// nil && router != nil, see admit; guarded by mu): trStageNS
	// accumulates staging time for the slot being batched
	// and is published as openStageNS at close; trOverlapNS accumulates
	// staging time landing inside the open slot's observe window — the
	// pipelined close's measured ingest overlap.
	trStageNS   uint64
	openStageNS uint64
	trOverlapNS uint64

	// Report-wait timer, reused across slots. Armed and drained only by
	// the engine goroutine (inline callers never touch it — they kick the
	// loop instead), so the classic Stop/drain/Reset dance stays
	// single-goroutine. timerFired tracks whether the last arm was
	// consumed from timer.C. The timer is armed lazily: an already-armed
	// timer whose deadline is not after the slot's is left alone and its
	// (early) fire handled as spurious, so the steady fast-slot path
	// never touches timer state at all.
	timer         *time.Timer
	timerFired    bool
	timerDeadline time.Time
}

// NewEngine builds the engine (learner, partition, queues) without
// starting it. Use Restore to load a checkpoint before Start.
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.Scenario != nil && cfg.Scenario.SCNs() != cfg.SCNs {
		return nil, fmt.Errorf("serve: scenario timeline covers %d SCNs, engine has %d",
			cfg.Scenario.SCNs(), cfg.SCNs)
	}
	part, err := hypercube.New(cfg.Dims, cfg.H)
	if err != nil {
		return nil, fmt.Errorf("serve: partition: %w", err)
	}
	coreCfg := core.Config{
		SCNs:     cfg.SCNs,
		Capacity: cfg.Capacity,
		Alpha:    cfg.Alpha,
		Beta:     cfg.Beta,
		Cells:    part.Cells(),
		KMax:     cfg.KMax,
		Horizon:  cfg.Horizon,
	}
	e := &Engine{
		cfg:     cfg,
		part:    part,
		subCh:   make(chan *wireReq, cfg.SubQueue),
		repCh:   make(chan *wireReq, cfg.SubQueue),
		stopCh:  make(chan struct{}),
		done:    make(chan struct{}),
		kickCh:  make(chan struct{}, 1),
		reqPool: make(chan *wireReq, 2*cfg.SubQueue+8),
	}
	if cfg.Shards > 1 || cfg.ShardPlane {
		shards, merger, owner, router, err := buildShards(coreCfg, cfg.Seed, cfg.Shards)
		if err != nil {
			return nil, err
		}
		e.shards, e.merger, e.owner, e.router = shards, merger, owner, router
	} else {
		pol, err := core.New(coreCfg, rng.New(cfg.Seed).Derive(3))
		if err != nil {
			return nil, fmt.Errorf("serve: learner: %w", err)
		}
		e.pol = pol
	}
	e.batch.init(cfg.SCNs)
	// SCN→(staging shard, local row) tables: the flat engine stages as one
	// pseudo-shard with identity rows, so the staging and publish code is
	// layout-agnostic.
	numStage := 1
	if e.router != nil {
		numStage = cfg.Shards
	}
	e.scnShard = make([]int, cfg.SCNs)
	e.scnLocal = make([]int, cfg.SCNs)
	rows := make([]int, numStage)
	for m := 0; m < cfg.SCNs; m++ {
		k := 0
		if e.router != nil {
			k = e.owner[m]
		}
		e.scnShard[m] = k
		e.scnLocal[m] = rows[k]
		rows[k]++
	}
	for i := range e.stages {
		e.stages[i].init(rows)
	}
	e.obsCond = sync.NewCond(&e.mu)
	if cfg.Metrics != nil {
		e.registerMetrics(cfg.Metrics)
	}
	return e, nil
}

// getReq takes a wireReq from the pool (or allocates the pool's first
// few). The caller owns it until putReq.
func (e *Engine) getReq() *wireReq {
	select {
	case q := <-e.reqPool:
		return q
	default:
		return newWireReq()
	}
}

// putReq resets and recycles a wireReq. Only call once the engine can no
// longer reference it: after its reply was received, or before it was
// ever enqueued.
func (e *Engine) putReq(q *wireReq) {
	q.reset()
	// Drain a reply that raced with an engine-stopped exit so the pooled
	// object never resurfaces with a stale message buffered.
	select {
	case <-q.resp:
	default:
	}
	select {
	case e.reqPool <- q:
	default:
	}
}

// Policy exposes the learner for introspection (status pages, tests).
// The engine goroutine owns all mutating calls; callers must only use
// read-only accessors, and only when the engine is stopped or between
// their own lockstep requests. Returns nil on a sharded engine (the
// learner plane is then split across partial learners).
func (e *Engine) Policy() *core.LFSC { return e.pol }

// Start launches the engine loop. The engine serves until Stop or Abort.
func (e *Engine) Start() {
	if e.cfg.Registry != nil {
		e.rs = e.cfg.Registry.NewRun("lfscd", e.cfg.Horizon)
		// A restored engine re-registers with its history visible.
		if cum := e.CumReward(); cum != 0 {
			e.rs.RecordSlot(cum)
		}
	}
	go e.loop()
}

// Stop closes the engine gracefully: the loop finishes the slot in
// flight, writes a final checkpoint (when configured), fails queued
// submissions, and exits. Stop and Abort are idempotent between them.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() { close(e.stopCh) })
	<-e.done
	e.rs.Finish()
}

// Abort is the unclean shutdown used by kill-and-resume tests: the loop
// exits without writing a final checkpoint, as if the process had been
// killed. Only checkpoints already on disk survive.
func (e *Engine) Abort() {
	e.abort.Store(true)
	e.stopOnce.Do(func() { close(e.stopCh) })
	<-e.done
	e.rs.Finish()
}

// Slot returns the next slot index to be decided.
func (e *Engine) Slot() int { return int(e.slotAtomic.Load()) }

// CumReward returns the cumulative compound reward across all served
// slots, including history restored from a checkpoint.
func (e *Engine) CumReward() float64 {
	return math.Float64frombits(e.cumRewardBits.Load())
}

// Stats snapshots the serving counters (status pages and /v1/stats —
// the cold path; it may allocate).
func (e *Engine) Stats() Stats {
	st := e.statsCore()
	if e.cfg.SLO != nil {
		rep := e.cfg.SLO.Report()
		st.SLO = &rep
	}
	if tl := e.cfg.Scenario; tl != nil {
		slot := e.Slot()
		sleeps, fails, rejoins := tl.CumEventTotals(slot)
		st.Scenario = &ScenarioStat{
			Digest:  tl.Digest(),
			Slots:   tl.Slots(),
			UpSCNs:  tl.UpCount(slot),
			Sleeps:  sleeps,
			Fails:   fails,
			Rejoins: rejoins,
		}
	}
	for _, sh := range e.shards {
		st.Shards = append(st.Shards, ShardStat{
			Shard:         sh.id,
			SCNs:          len(sh.owned),
			RoutedSubs:    sh.routedSubs.Load(),
			RoutedTasks:   sh.routedTasks.Load(),
			ShedTasks:     sh.shedTasks.Load(),
			LastDecideNS:  sh.lastDecideNS.Load(),
			LastObserveNS: sh.lastObserveNS.Load(),
			LastStageNS:   sh.lastStageNS.Load(),
		})
	}
	return st
}

func (e *Engine) statsCore() Stats {
	return Stats{
		Slot:           e.Slot(),
		CumReward:      e.CumReward(),
		SubmittedTasks: e.submittedTasks.Load(),
		DecidedTasks:   e.decidedTasks.Load(),
		AssignedTasks:  e.assignedTasks.Load(),
		ReportedTasks:  e.reportedTasks.Load(),
		SlotsServed:    e.slotsServed.Load(),
		ShedRequests:   e.shedRequests.Load(),
		ShedTasks:      e.shedTasks.Load(),
		LateSlots:      e.lateSlots.Load(),
		LateReports:    e.lateReports.Load(),
		SubmitLatency:  e.submitLat.Stat("submit"),
		ReportLatency:  e.reportLat.Stat("report"),
		StepLatency:    e.stepLat.Stat("step"),
		ShedLatency:    e.shedLat.Stat("shed"),
	}
}

// errShed marks a shed submission (mapped to 429 by the HTTP layer).
type shedError struct{ reason string }

func (s *shedError) Error() string { return "serve: shed: " + s.reason }

// IsShed reports whether err is a load-shedding rejection.
func IsShed(err error) bool {
	_, ok := err.(*shedError)
	return ok
}

var (
	shedTaskQueue = &shedError{reason: "task queue full"}
	shedSubQueue  = &shedError{reason: "submission queue full"}
)

// errLateReport marks a report for a slot that is no longer open.
type lateReportError struct{ slot, open int }

func (l *lateReportError) Error() string {
	return fmt.Sprintf("serve: report for slot %d, but slot %d is open", l.slot, l.open)
}

// IsLateReport reports whether err is a closed-slot report rejection.
func IsLateReport(err error) bool {
	_, ok := err.(*lateReportError)
	return ok
}

// validateTasks checks a decoded submission against the learner's shape,
// using the request's own counts scratch (validation runs on handler
// goroutines, which must not touch engine-owned scratch).
func (e *Engine) validateTasks(q *wireReq) error {
	tasks := q.tasks
	if len(tasks) == 0 {
		return fmt.Errorf("serve: empty submission")
	}
	if cap(q.counts) < e.cfg.SCNs {
		q.counts = make([]int, e.cfg.SCNs)
	}
	counts := q.counts[:e.cfg.SCNs]
	for m := range counts {
		counts[m] = 0
	}
	q.cells = q.cells[:0]
	dims, scns, kMax := e.cfg.Dims, e.cfg.SCNs, e.cfg.KMax
	for i := range tasks {
		sp := &tasks[i]
		if len(sp.Ctx) != dims {
			return fmt.Errorf("serve: task %d: context has %d dims, want %d", i, len(sp.Ctx), dims)
		}
		if !task.Context(sp.Ctx).Valid() {
			return fmt.Errorf("serve: task %d: context outside [0,1]", i)
		}
		// Hypercube indexing rides with the request: computed here on the
		// handler goroutine, consumed verbatim by the slot close — the
		// engine never re-indexes a context. The partition is immutable, so
		// concurrent handlers share it freely.
		q.cells = append(q.cells, e.part.Index(task.Context(sp.Ctx)))
		if len(sp.SCNs) == 0 {
			return fmt.Errorf("serve: task %d: no visible SCNs", i)
		}
		// Duplicate SCNs within one task would double-count coverage; for
		// topologies up to 64 SCNs a bitmask catches them in the same pass
		// as the range/KMax checks.
		var seen uint64
		for _, m := range sp.SCNs {
			if m < 0 || m >= scns {
				return fmt.Errorf("serve: task %d: SCN %d out of range", i, m)
			}
			if scns <= 64 {
				bit := uint64(1) << uint(m)
				if seen&bit != 0 {
					return fmt.Errorf("serve: task %d lists SCN %d twice", i, m)
				}
				seen |= bit
			}
			counts[m]++
			if counts[m] > kMax {
				return fmt.Errorf("serve: submission exceeds KMax=%d for SCN %d", kMax, m)
			}
		}
		if scns > 64 {
			list := sp.SCNs
			for a := 0; a < len(list); a++ {
				for b := a + 1; b < len(list); b++ {
					if list[a] == list[b] {
						return fmt.Errorf("serve: task %d lists SCN %d twice", i, list[a])
					}
				}
			}
		}
	}
	return nil
}

// dispatchSubmit pushes a validated wireReq through the two backpressure
// gates and waits for the slot decision. On shed the request never
// enters the queue and the caller still owns it.
func (e *Engine) dispatchSubmit(q *wireReq) (stepReply, error) {
	n := int64(len(q.tasks))
	// Gate 1: the pending-task budget. Reserve optimistically and roll
	// back on shed so concurrent submitters cannot stampede past the cap.
	if e.pending.Add(n) > int64(e.cfg.QueueCap) {
		e.pending.Add(-n)
		e.shedRequests.Add(1)
		e.shedTasks.Add(uint64(n))
		e.accountShed(q)
		return stepReply{}, shedTaskQueue
	}
	// Gate 2: the submission channel. Never block the handler — a full
	// channel means the batcher is behind; shed.
	select {
	case e.subCh <- q:
	default:
		e.pending.Add(-n)
		e.shedRequests.Add(1)
		e.shedTasks.Add(uint64(n))
		e.accountShed(q)
		return stepReply{}, shedSubQueue
	}
	e.submittedTasks.Add(uint64(n))
	select {
	case rep := <-q.resp:
		return rep, rep.err
	case <-e.done:
		return stepReply{}, errStopped
	}
}

// kick wakes the parked engine loop so it recomputes its select gating.
func (e *Engine) kick() {
	select {
	case e.kickCh <- struct{}{}:
	default:
	}
}

// kickIfStale wakes the loop when the machine parked in a state the
// engine's current select doesn't cover: a slot opened without a timer
// case armed, or a batch closed (or overflow deferred) while subCh is
// still being drained. Call under mu after inline transitions.
func (e *Engine) kickIfStale() {
	if (e.openActive && e.openRemaining > 0 && !e.parkedTimer) ||
		e.deferred != nil || e.batch.shouldClose(e.cfg.MaxBatch, e.cfg.KMax) {
		e.kick()
	}
}

// tryStepInline runs a validated submission through the slot machine on
// the caller's own stack when the engine is parked and the channels are
// idle: absorb the report part, admit the tasks, advance — which in
// lockstep operation decides the next slot before the call returns,
// with no channel handoff or context switch. Returns ok=false when the
// fast path's preconditions don't hold; the caller must then dispatch
// through the channels. When ok, the semantics (shed accounting, reply,
// error surface) are exactly those of dispatchSubmit.
func (e *Engine) tryStepInline(q *wireReq) (stepReply, error, bool) {
	if !e.mu.TryLock() {
		return stepReply{}, nil, false
	}
	if !e.running || e.stopping || e.deferred != nil || len(e.subCh) > 0 || len(e.repCh) > 0 {
		e.mu.Unlock()
		return stepReply{}, nil, false
	}
	// The pending-task gate, exactly as dispatchSubmit applies it. The
	// subCh gate has no inline analogue: the request never queues.
	n := int64(len(q.tasks))
	if e.pending.Add(n) > int64(e.cfg.QueueCap) {
		e.pending.Add(-n)
		e.mu.Unlock()
		e.shedRequests.Add(1)
		e.shedTasks.Add(uint64(n))
		e.accountShed(q)
		return stepReply{}, shedTaskQueue, true
	}
	e.submittedTasks.Add(uint64(n))
	e.ingestStep(q)
	e.advance()
	e.kickIfStale()
	e.mu.Unlock()
	// In lockstep the reply is already buffered and the select returns
	// without parking; otherwise wait like the channel path does (the
	// batch is still accumulating, or the open slot still needs other
	// clients' reports).
	select {
	case rep := <-q.resp:
		return rep, rep.err, true
	case <-e.done:
		return stepReply{}, errStopped, true
	}
}

// tryReportInline is the pure-report inline path: absorb into the open
// slot (or reject as late) on the caller's stack. The reply is always
// immediate. Returns ok=false when the preconditions don't hold.
func (e *Engine) tryReportInline(q *wireReq) (stepReply, bool) {
	if !e.mu.TryLock() {
		return stepReply{}, false
	}
	if !e.running || e.stopping || len(e.subCh) > 0 || len(e.repCh) > 0 {
		e.mu.Unlock()
		return stepReply{}, false
	}
	e.ingestReport(q)
	e.advance()
	e.kickIfStale()
	e.mu.Unlock()
	return <-q.resp, true
}

// dispatchReport delivers a pure report (no tasks) and waits for the
// absorb result.
func (e *Engine) dispatchReport(q *wireReq) (stepReply, error) {
	select {
	case e.repCh <- q:
	case <-e.done:
		return stepReply{}, errStopped
	}
	select {
	case rep := <-q.resp:
		return rep, rep.err
	case <-e.done:
		return stepReply{}, errStopped
	}
}

// sloOutcome tags how a request ended for reqDone: validation and
// shutdown errors are latency samples but not SLO samples (the window
// tracks requests the engine actually accepted responsibility for).
type sloOutcome int8

const (
	sloSkip sloOutcome = iota
	sloOK
	sloShed
)

// reqDone closes a request's latency measurement with a single clock
// read feeding both the per-endpoint histogram and (for validated
// requests) the rolling SLO window — Histogram.Observe plus SLO.Record
// would read the clock twice per request, and on the target machines a
// clock read costs as much as the whole recording path.
func (e *Engine) reqDone(h *obs.Histogram, start time.Time, out sloOutcome) {
	now := time.Now()
	d := now.Sub(start)
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
	if out != sloSkip {
		e.cfg.SLO.RecordAt(now.Unix(), uint64(d), out == sloShed)
	}
}

// Submit validates and enqueues a batch of task arrivals, blocking until
// the slot containing them is decided. Shed submissions return a
// *shedError immediately — the caller must retry later (429 semantics).
// This is the copying convenience API (tests, in-process callers); the
// HTTP handlers run the same dispatch on pooled requests directly.
func (e *Engine) Submit(req *SubmitRequest) (*SubmitResponse, error) {
	start := time.Now()
	out := sloSkip
	defer func() { e.reqDone(&e.submitLat, start, out) }()
	q := e.getReq()
	q.tasks = append(q.tasks[:0], req.Tasks...)
	q.close = req.Close
	if err := e.validateTasks(q); err != nil {
		e.putReq(q)
		return nil, err
	}
	rep, err, ok := e.tryStepInline(q)
	if !ok {
		rep, err = e.dispatchSubmit(q)
	}
	if err != nil {
		if IsShed(err) {
			out = sloShed
			e.shedLat.Observe(start)
			e.putReq(q)
		}
		// Engine stopped: the reply may still arrive; leak q to the GC
		// rather than recycle an object the engine could touch.
		return nil, err
	}
	out = sloOK
	resp := &SubmitResponse{Slot: rep.slot, Base: rep.base, Assigned: append([]int(nil), rep.assigned...)}
	e.putReq(q)
	return resp, nil
}

// Report delivers realised outcomes for the open slot, blocking until
// absorbed or rejected.
func (e *Engine) Report(req *ReportRequest) (*ReportResponse, error) {
	start := time.Now()
	out := sloSkip
	defer func() { e.reqDone(&e.reportLat, start, out) }()
	if len(req.Reports) == 0 {
		return nil, fmt.Errorf("serve: empty report")
	}
	q := e.getReq()
	q.slot = req.Slot
	q.hasSlot = true
	q.reports = append(q.reports[:0], req.Reports...)
	q.hasReps = true
	rep, ok := e.tryReportInline(q)
	var err error
	if ok {
		err = rep.err
	} else {
		rep, err = e.dispatchReport(q)
	}
	if err != nil {
		if !errors.Is(err, errStopped) {
			out = sloOK
			e.putReq(q)
		}
		return nil, err
	}
	out = sloOK
	resp := &ReportResponse{Accepted: rep.accepted}
	e.putReq(q)
	return resp, nil
}

// StepInto is the batched round-trip: deliver the previous slot's
// outcome reports and submit the next slot's tasks in one call, parsing
// the combined acknowledgement into resp (reusing resp.Assigned — the
// allocation-lean path for in-process lockstep loops). The report part
// is absorbed first (its rejection, if any, comes back in
// resp.ReportError — the submission proceeds regardless); on shed, the
// report part is still delivered so the open slot's Observe is never
// starved by backpressure on the next slot.
func (e *Engine) StepInto(req *StepRequest, resp *StepResponse) error {
	start := time.Now()
	out := sloSkip
	defer func() { e.reqDone(&e.stepLat, start, out) }()
	resp.Accepted = 0
	resp.ReportError = ""
	resp.Slot, resp.Base = 0, 0
	resp.Assigned = resp.Assigned[:0]
	q := e.getReq()
	q.tasks = append(q.tasks[:0], req.Tasks...)
	q.close = req.Close
	q.slot = req.Slot
	q.hasSlot = true
	q.reports = append(q.reports[:0], req.Reports...)
	q.hasReps = len(req.Reports) > 0
	if err := e.validateTasks(q); err != nil {
		e.putReq(q)
		return err
	}
	rep, err, ok := e.tryStepInline(q)
	if !ok {
		rep, err = e.dispatchSubmit(q)
	}
	if err != nil {
		if IsShed(err) {
			out = sloShed
			e.shedLat.Observe(start)
			if len(q.reports) > 0 {
				if rrep, rerr := e.dispatchReport(q); rerr == nil {
					resp.Accepted = rrep.accepted
				} else if errors.Is(rerr, errStopped) {
					// The engine may still touch q; leak it to the GC.
					return err
				}
			}
			e.putReq(q)
		}
		return err
	}
	out = sloOK
	resp.Accepted = rep.accepted
	if rep.repErr != nil {
		resp.ReportError = rep.repErr.Error()
	}
	resp.Slot = rep.slot
	resp.Base = rep.base
	resp.Assigned = append(resp.Assigned[:0], rep.assigned...)
	e.putReq(q)
	return nil
}

// Step is the allocating convenience wrapper over StepInto.
func (e *Engine) Step(req *StepRequest) (*StepResponse, error) {
	resp := &StepResponse{}
	err := e.StepInto(req, resp)
	if err != nil {
		if IsShed(err) {
			return resp, err
		}
		return nil, err
	}
	return resp, nil
}

// loop is the engine goroutine: it parks in select and feeds events into
// the slot state machine. All machine transitions run under mu, whether
// on this goroutine or inlined on a lockstep caller's stack.
func (e *Engine) loop() {
	defer close(e.done)
	var tickCh <-chan time.Time
	if e.cfg.SlotEvery > 0 {
		t := time.NewTicker(e.cfg.SlotEvery)
		defer t.Stop()
		tickCh = t.C
	}
	e.mu.Lock()
	e.running = true
	e.slotAtomic.Store(int64(e.slotsSeen()))
	e.mu.Unlock()
	for {
		// Compute the park's gating under mu, then wait unlocked — the
		// window inline callers use. Draining subCh pauses once the next
		// batch is closed or an overflow submission is deferred; the slot
		// clock only matters between slots (a tick landing during a report
		// wait stays buffered in the ticker, as before the flattening);
		// the timer case exists only while a slot is open.
		e.mu.Lock()
		subCh := e.subCh
		if e.deferred != nil || e.batch.shouldClose(e.cfg.MaxBatch, e.cfg.KMax) {
			subCh = nil
		}
		ticks := tickCh
		var timerC <-chan time.Time
		if e.openActive {
			ticks = nil
			e.armTimerBy(e.openDeadline)
			timerC = e.timer.C
			e.parkedTimer = true
		} else {
			if e.observing {
				// A pipelined Observe is in flight on another stack: a tick
				// consumed now would hit the observing-gated decideSlot and
				// be lost. Leave it buffered in the ticker, exactly as an
				// open slot does; finishSlot kicks this park when the
				// window closes.
				ticks = nil
			}
			e.parkedTimer = false
		}
		e.mu.Unlock()

		select {
		case q := <-subCh:
			e.mu.Lock()
			e.ingestStep(q)
			e.advance()
			e.mu.Unlock()
		case q := <-e.repCh:
			e.mu.Lock()
			e.ingestReport(q)
			e.advance()
			e.mu.Unlock()
		case <-ticks:
			// Slot clock: a non-empty batch closes on each tick (decideSlot
			// is a no-op on an empty one — no arrivals, no slot).
			e.mu.Lock()
			e.decideSlot()
			e.advance()
			e.mu.Unlock()
		case <-timerC:
			e.mu.Lock()
			e.timerFired = true
			if e.openActive && !time.Now().Before(e.openDeadline) {
				// Report wait expired: Observe with whatever arrived.
				e.lateSlots.Add(1)
				e.openTimedOut = true
				e.openRemaining = 0
				e.advance()
			}
			// Otherwise the fire was armed for an earlier slot's deadline
			// (or the slot closed inline before the fire landed): spurious;
			// the next park re-arms.
			e.mu.Unlock()
		case <-e.kickCh:
			// An inline caller changed machine state this park's gating
			// doesn't reflect; just re-park.
		case <-e.stopCh:
			e.mu.Lock()
			e.shutdown()
			e.mu.Unlock()
			return
		}
	}
}

// ingestStep feeds a drained step/submit request into the machine: its
// report part is absorbed into the open slot (or rejected as late when
// no slot is open), its tasks join the accumulating batch. Call under mu.
func (e *Engine) ingestStep(q *wireReq) {
	if len(q.reports) > 0 {
		if e.openActive {
			q.repAccepted, q.repErr = e.absorbReports(e.openSlot, e.openN, e.openAssigned, q.slot, q.reports)
			e.openRemaining -= q.repAccepted
		} else {
			// A step's report part arriving between slots: the slot it
			// reports on has already closed.
			e.lateReports.Add(1)
			q.repErr = &lateReportError{slot: q.slot, open: int(e.slotAtomic.Load())}
		}
	}
	e.accountRouting(q)
	e.admit(q)
}

// ingestReport feeds a pure report into the machine and replies with the
// absorb result immediately (its resp channel is buffered). Call under mu.
func (e *Engine) ingestReport(q *wireReq) {
	if e.openActive {
		acc, err := e.absorbReports(e.openSlot, e.openN, e.openAssigned, q.slot, q.reports)
		e.openRemaining -= acc
		q.resp <- stepReply{accepted: acc, err: err}
		return
	}
	e.lateReports.Add(1)
	q.resp <- stepReply{err: &lateReportError{slot: q.slot, open: int(e.slotAtomic.Load())}}
}

// advance drives the machine until it parks: finish the open slot once
// every expected report is in (or the engine is stopping), serve the
// batch a deferred overflow submission forced out and then re-admit it,
// and decide a batch that is bound to close (explicit close, MaxBatch,
// KMax). Call under mu.
func (e *Engine) advance() {
	for {
		if e.observing {
			// Slot t's Observe is running with mu released on the finishing
			// stack; no transition may touch the learner until it lands.
			// That stack's own advance loop re-runs these conditions after
			// finishSlot returns, so nothing accumulated here is stranded.
			return
		}
		if e.openActive {
			if e.openRemaining > 0 && !e.stopping {
				return
			}
			e.finishSlot()
			continue
		}
		if e.deferred != nil {
			e.decideSlot()
			q := e.deferred
			e.deferred = nil
			e.admit(q)
			continue
		}
		if e.batch.shouldClose(e.cfg.MaxBatch, e.cfg.KMax) {
			e.decideSlot()
			continue
		}
		return
	}
}

// admit adds a drained submission to the accumulating batch, or parks it
// in deferred when it would push a coverage list past KMax (the batch
// must be served first). The park gating stops draining subCh while
// deferred is set. Admitted tasks are staged into the current arena
// immediately — admission order is slot order — so the close has
// nothing left to partition. Call under mu.
func (e *Engine) admit(q *wireReq) {
	if e.batch.wouldOverflow(q.tasks, e.cfg.KMax) {
		e.deferred = q
		return
	}
	e.batch.add(q, e.stages[e.cur].n)
	// Stage timing is a sharded-plane feature: it exists to attribute
	// ingest cost across shards and to size the pipelined-close overlap,
	// and the two clock reads per admission are real money on the flat
	// fast path (the obs stack is pinned at ≤5% over the probe baseline,
	// and a pair of clock reads per request blows most of that budget).
	// Flat traced engines report stage_ns 0.
	if e.cfg.SlotRing == nil || e.router == nil {
		e.stageSub(q)
		return
	}
	t0 := time.Now()
	e.stageSub(q)
	d := uint64(time.Since(t0))
	e.trStageNS += d
	if e.observing {
		e.trOverlapNS += d
	}
	e.shards[e.router.Shard(q.tasks[0].SCNs[0])].stageAccNS += d
}

// stageSub routes a submission's tasks into the current staging arena:
// contexts packed into the arena's backing buffer, hypercube cells
// copied from the request (validateTasks computed them on the handler
// goroutine), and each task's slot index appended to the coverage row of
// every visible SCN, grouped by owning shard. The rows come out exactly
// as the old close-time re-scan built them — admission order is
// preserved — so decisions are bit-identical. Call under mu.
func (e *Engine) stageSub(q *wireReq) {
	st := &e.stages[e.cur]
	base := st.n
	for i := range q.tasks {
		sp := &q.tasks[i]
		st.ctxBuf = append(st.ctxBuf, sp.Ctx...)
		st.cells = append(st.cells, q.cells[i])
		idx := base + i
		for _, m := range sp.SCNs {
			ss := &st.shards[e.scnShard[m]]
			ss.cov[e.scnLocal[m]] = append(ss.cov[e.scnLocal[m]], idx)
		}
	}
	st.n += len(q.tasks)
}

// shutdown finishes the engine: flush the slot in flight (and any batch
// already bound to close) with whatever reports arrived, write a final
// checkpoint (unless aborted), then fail everything still queued so no
// handler blocks forever. Call under mu.
func (e *Engine) shutdown() {
	e.stopping = true
	// A pipelined Observe may be in flight on another stack with mu
	// released; wait for its window to close before flushing, so the
	// final advance sees a quiescent learner.
	for e.observing {
		e.obsCond.Wait()
	}
	e.advance()
	if !e.abort.Load() && e.cfg.CheckpointPath != "" {
		// Best effort — the periodic checkpoint remains if this fails.
		_ = e.checkpointNow()
	}
	e.failBatch(errStopped)
	if q := e.deferred; q != nil {
		e.deferred = nil
		e.pending.Add(-int64(len(q.tasks)))
		q.resp <- stepReply{err: errStopped}
	}
	e.running = false
	for {
		select {
		case q := <-e.subCh:
			e.pending.Add(-int64(len(q.tasks)))
			q.resp <- stepReply{err: errStopped}
		case q := <-e.repCh:
			q.resp <- stepReply{err: errStopped}
		default:
			return
		}
	}
}

func (e *Engine) failBatch(err error) {
	for _, q := range e.batch.subs {
		e.pending.Add(-int64(len(q.tasks)))
		q.resp <- stepReply{err: err}
	}
	e.batch.reset()
	// The failed submissions' tasks were already staged; drop them with
	// the batch so the arena cannot leak into a later slot.
	e.stages[e.cur].reset()
}

// decideSlot closes the accumulated batch and opens the slot: publish
// the staged arena as the slot view, Decide, reply to submitters, then
// leave the slot open for outcome reports (openRemaining counts the
// assigned tasks still unreported; finishSlot runs once it reaches
// zero). Call under mu. Mirrors the phase structure of sim.Run so the
// probe's breakdown is comparable across offline and serving runs (the
// view phase now only publishes — the build work happened at ingest).
func (e *Engine) decideSlot() {
	if e.observing {
		// Slot t's Observe is still running with mu released; deciding
		// t+1 now would break the learner's slot protocol. The finishing
		// stack re-runs the close conditions once the window ends.
		return
	}
	b := &e.batch
	st := &e.stages[e.cur]
	n := st.n
	if n == 0 {
		return
	}
	// One clock read per phase boundary, shared between the probe and
	// the slot tracer — duplicate time.Now() calls were the dominant
	// cost of the fully-instrumented slot path (a clock read costs as
	// much as several histogram records on the target machines).
	probe := e.cfg.Probe
	traced := e.cfg.SlotRing != nil
	instr := probe != nil || traced
	slot := e.slotsSeen()
	var span time.Time
	if instr {
		span = time.Now()
	}
	if traced {
		e.trStart = span
	}
	// Scenario masking is daemon-side: clients submit their full spec and
	// the view builder empties down SCNs' coverage rows, exactly as the
	// offline simulator masks at its view boundary — which is what keeps
	// client, daemon, and sim.Run bit-identical under churn.
	var dyn *scenario.View
	if e.cfg.Scenario != nil {
		e.cfg.Scenario.ViewInto(slot, &e.scen)
		dyn = &e.scen
	}
	view := e.publishView(slot, st, dyn)
	if instr {
		span = probe.LapAt(obs.PhaseView, span, time.Now())
		if traced {
			e.trViewNS = uint64(span.Sub(e.trStart))
		}
	}
	trMid := span
	assigned := e.decide(view)
	if instr {
		span = probe.LapAt(obs.PhaseDecide, span, time.Now())
		if traced {
			e.trDecideEnd = span
			e.trDecideNS = uint64(span.Sub(trMid))
		}
	}

	// Reply to every submitter with its contiguous range of decisions,
	// copied into the request's own reusable buffer. After the reply the
	// engine never touches the request (or the batch specs aliasing its
	// decoded buffers) again, which is what lets the handler recycle it.
	for i, q := range b.subs {
		base := b.subBase[i]
		q.assignedBuf = append(q.assignedBuf[:0], assigned[base:base+len(q.tasks)]...)
		e.pending.Add(-int64(len(q.tasks)))
		q.resp <- stepReply{
			slot: slot, base: base, assigned: q.assignedBuf,
			accepted: q.repAccepted, repErr: q.repErr,
		}
	}
	e.decidedTasks.Add(uint64(n))
	expected := 0
	for _, m := range assigned {
		if m >= 0 {
			expected++
		}
	}
	e.assignedTasks.Add(uint64(expected))

	// Flip the staging arenas and reset the sequencer: the NEXT slot
	// stages into the other arena while this one (aliased by the live
	// view) collects reports and observes — the pipeline overlap.
	b.reset()
	e.cur ^= 1
	e.stages[e.cur].reset()
	if traced {
		e.openStageNS = e.trStageNS
		e.trStageNS = 0
		for _, sh := range e.shards {
			sh.lastStageNS.Store(sh.stageAccNS)
			sh.stageAccNS = 0
		}
	}

	// Reset the per-task report scratch and open the slot.
	if cap(e.repGot) < n {
		e.repGot = make([]bool, n)
		e.repU = make([]float64, n)
		e.repV = make([]float64, n)
		e.repQ = make([]float64, n)
	}
	e.repGot = e.repGot[:n]
	e.repU, e.repV, e.repQ = e.repU[:n], e.repV[:n], e.repQ[:n]
	for i := range e.repGot {
		e.repGot[i] = false
	}
	e.openActive = true
	e.openSlot = slot
	e.openN = n
	e.openView = view
	e.openCells = st.cells
	e.openAssigned = assigned
	e.openRemaining = expected
	e.openExpected = expected
	if instr {
		// span is the after-decide timestamp — the moment the wait
		// actually starts, and one fewer clock read than time.Now().
		e.openDeadline = span.Add(e.cfg.ReportWait)
	} else {
		e.openDeadline = time.Now().Add(e.cfg.ReportWait)
	}
	e.openSpan = span
	e.openTimedOut = false
}

// finishSlot closes the open slot: build the feedback from whatever
// reports arrived, Observe, account, maybe checkpoint. Call under mu;
// the mutex is RELEASED for the Observe itself (the pipelined close) —
// handlers decode, validate, and stage the next slot's traffic on their
// own stacks while the learner updates, with the observing flag gating
// every transition that could touch the learner mid-flight. An inline
// lockstep step that closes the slot still runs the whole sequence —
// including the unlocked Observe — on the caller's stack.
func (e *Engine) finishSlot() {
	probe := e.cfg.Probe
	traced := e.cfg.SlotRing != nil
	instr := probe != nil || traced
	n, assigned := e.openN, e.openAssigned
	var span time.Time
	if instr {
		span = probe.LapAt(obs.PhaseRealize, e.openSpan, time.Now())
	}
	trObsStart := span
	var waitNS, observeNS, ckptNS uint64
	if traced {
		waitNS = uint64(trObsStart.Sub(e.trDecideEnd))
	}

	// Feedback and reward in ascending task order — the exact summation
	// order of the offline simulator, so cumulative rewards stay
	// bit-comparable.
	e.fb.Execs = e.fb.Execs[:0]
	slotReward := 0.0
	for idx := 0; idx < n; idx++ {
		if !e.repGot[idx] {
			continue
		}
		ex := policy.Exec{
			SCN: assigned[idx], Task: idx, Cell: e.openCells[idx],
			U: e.repU[idx], V: e.repV[idx], Q: e.repQ[idx],
		}
		e.fb.Execs = append(e.fb.Execs, ex)
		slotReward += ex.Compound()
	}
	// The pipelined window: everything Observe reads (view, assigned, fb,
	// the closed arena) is engine-owned and untouched by ingest; late
	// reports during the window see openActive == false, exactly as they
	// would after a non-pipelined close.
	view := e.openView
	e.openActive = false
	e.observing = true
	e.trOverlapNS = 0
	e.mu.Unlock()
	e.observe(view, assigned, &e.fb)
	var obsEnd time.Time
	if instr {
		obsEnd = time.Now()
	}
	e.mu.Lock()
	e.observing = false
	e.obsCond.Broadcast()
	if e.cfg.SlotEvery > 0 {
		// A tick may have landed while the loop's park had the ticker
		// gated for the window; wake it so the buffered tick is seen.
		e.kick()
	}
	if instr {
		span = probe.LapAt(obs.PhaseObserve, span, obsEnd)
		if traced {
			observeNS = uint64(span.Sub(trObsStart))
		}
	}
	probe.EndSlot()

	cum := e.CumReward() + slotReward
	e.cumRewardBits.Store(math.Float64bits(cum))
	e.slotAtomic.Store(int64(e.slotsSeen()))
	e.slotsServed.Add(1)
	e.rs.RecordSlot(slotReward)

	t := e.slotsSeen()
	if e.cfg.SnapshotEvery > 0 && e.cfg.SnapshotSink != nil && t%e.cfg.SnapshotEvery == 0 {
		e.snap.Slot = t - 1
		e.snap.CumReward = cum
		e.snapshotPolicy(&e.snap)
		e.cfg.SnapshotSink.OnSnapshot(&e.snap)
	}
	if e.cfg.CheckpointEvery > 0 && e.cfg.CheckpointPath != "" && t%e.cfg.CheckpointEvery == 0 {
		if instr {
			span = time.Now()
		}
		trCkpt := span
		_ = e.checkpointNow()
		if instr {
			span = probe.LapAt(obs.PhaseSnapshot, span, time.Now())
			if traced {
				ckptNS = uint64(span.Sub(trCkpt))
			}
		}
	}
	if traced {
		rec := e.cfg.SlotRing.Begin()
		rec.Slot = e.openSlot
		rec.StartUnixNS = e.trStart.UnixNano()
		rec.Tasks = n
		rec.Assigned = e.openExpected
		rec.Reported = len(e.fb.Execs)
		rec.TimedOut = e.openTimedOut
		rec.StageNS = e.openStageNS
		rec.ViewNS = e.trViewNS
		rec.DecideNS = e.trDecideNS
		rec.MergeNS = e.lastMergeNS
		rec.WaitNS = waitNS
		rec.ObserveNS = observeNS
		rec.ObserveOverlapNS = e.trOverlapNS
		rec.CheckpointNS = ckptNS
		for _, sh := range e.shards {
			rec.ShardDecideNS = append(rec.ShardDecideNS, sh.lastDecideNS.Load())
			rec.ShardObserveNS = append(rec.ShardObserveNS, sh.lastObserveNS.Load())
			rec.ShardStageNS = append(rec.ShardStageNS, sh.lastStageNS.Load())
		}
		e.cfg.SlotRing.Publish()
	}
}

// armTimerBy readies the reused report-wait timer to fire no later than
// deadline. If the timer is already armed for an earlier (or equal)
// deadline it is left untouched — the loop treats a fire before the
// open slot's true deadline as spurious and re-parks — which keeps the
// steady fast-slot path free of Stop/Reset timer traffic entirely.
// Otherwise: classic pre-1.23 semantics — Stop, drain the channel if an
// old fire is still buffered, then Reset. Called only from the engine
// goroutine (inline callers kick the loop rather than arm the timer),
// so the drain never races a concurrent receive.
func (e *Engine) armTimerBy(deadline time.Time) {
	if e.timer == nil {
		e.timer = time.NewTimer(time.Until(deadline))
		e.timerDeadline = deadline
		return
	}
	if !e.timerFired && !e.timerDeadline.After(deadline) {
		return
	}
	if !e.timer.Stop() && !e.timerFired {
		<-e.timer.C
	}
	e.timerFired = false
	e.timer.Reset(time.Until(deadline))
	e.timerDeadline = deadline
}

// absorbReports validates a whole report batch against the open slot and
// commits it atomically: any invalid entry rejects the batch with no
// partial state.
func (e *Engine) absorbReports(slot, n int, assigned []int, reqSlot int, reports []TaskReport) (int, error) {
	if reqSlot != slot {
		e.lateReports.Add(1)
		return 0, &lateReportError{slot: reqSlot, open: slot}
	}
	// Validation marks repGot as it goes — one pass catches both a task
	// already reported by an earlier request and a duplicate within this
	// one — and rolls the marks back on rejection so the batch stays
	// atomic.
	reject := func(i int, err error) (int, error) {
		for j := 0; j < i; j++ {
			e.repGot[reports[j].Task] = false
		}
		return 0, err
	}
	for i := range reports {
		r := &reports[i]
		switch {
		case r.Task < 0 || r.Task >= n:
			return reject(i, fmt.Errorf("serve: report %d: task %d out of range", i, r.Task))
		case assigned[r.Task] < 0:
			return reject(i, fmt.Errorf("serve: report %d: task %d was not assigned", i, r.Task))
		case e.repGot[r.Task]:
			return reject(i, fmt.Errorf("serve: report %d: task %d already reported", i, r.Task))
		case math.IsNaN(r.U) || r.U < 0 || r.U > 1:
			return reject(i, fmt.Errorf("serve: report %d: reward %v outside [0,1]", i, r.U))
		case r.V != 0 && r.V != 1:
			return reject(i, fmt.Errorf("serve: report %d: completion %v not in {0,1}", i, r.V))
		case math.IsNaN(r.Q) || math.IsInf(r.Q, 0) || r.Q <= 0:
			return reject(i, fmt.Errorf("serve: report %d: consumption %v not positive", i, r.Q))
		}
		e.repGot[r.Task] = true
	}
	for i := range reports {
		r := &reports[i]
		e.repU[r.Task], e.repV[r.Task], e.repQ[r.Task] = r.U, r.V, r.Q
	}
	e.reportedTasks.Add(uint64(len(reports)))
	return len(reports), nil
}

// slotBatch is the slot sequencer: it owns only the boundary decisions
// (explicit close, MaxBatch, per-SCN KMax) and the submitter reply
// bookkeeping. The tasks themselves live in the staging arenas — the
// sequencer never copies a spec.
type slotBatch struct {
	n        int
	subs     []*wireReq
	subBase  []int
	scnCount []int
	closeReq bool
}

func (b *slotBatch) init(scns int) {
	b.scnCount = make([]int, scns)
}

// wouldOverflow reports whether adding tasks would push any SCN's
// coverage past kMax — the "slot is full at KMax" close condition. An
// empty batch never overflows (a lone oversized submission was already
// rejected by validation).
func (b *slotBatch) wouldOverflow(tasks []TaskSpec, kMax int) bool {
	if b.n == 0 {
		return false
	}
	for i := range tasks {
		for _, m := range tasks[i].SCNs {
			b.scnCount[m]++
		}
	}
	over := false
	for i := range tasks {
		for _, m := range tasks[i].SCNs {
			if b.scnCount[m] > kMax {
				over = true
			}
			b.scnCount[m]--
		}
	}
	return over
}

// add sequences a submission: base is its first task's slot index (the
// staging arena's pre-admission fill).
func (b *slotBatch) add(q *wireReq, base int) {
	b.subs = append(b.subs, q)
	b.subBase = append(b.subBase, base)
	b.n += len(q.tasks)
	for i := range q.tasks {
		for _, m := range q.tasks[i].SCNs {
			b.scnCount[m]++
		}
	}
	if q.close {
		b.closeReq = true
	}
}

func (b *slotBatch) shouldClose(maxBatch, kMax int) bool {
	if b.n == 0 {
		return false
	}
	if b.closeReq || b.n >= maxBatch {
		return true
	}
	for _, c := range b.scnCount {
		if c >= kMax {
			return true
		}
	}
	return false
}

func (b *slotBatch) reset() {
	b.n = 0
	b.subs = b.subs[:0]
	b.subBase = b.subBase[:0]
	for m := range b.scnCount {
		b.scnCount[m] = 0
	}
	b.closeReq = false
}

// ingestStage is one of the engine's two ping-pong staging arenas: the
// packed context buffer, per-task hypercube cells, and the per-shard
// blocks of per-SCN coverage rows, all filled at admission time in
// arrival order. Publishing a slot is then just handing these buffers to
// the view — the same data the old close-time re-scan produced, built
// once instead of twice.
type ingestStage struct {
	ctxBuf []float64
	ctxs   []task.Context
	cells  []int
	n      int
	shards []shardStage
}

// shardStage is one learner shard's staged coverage block, indexed by
// the shard-local SCN row (Engine.scnLocal).
type shardStage struct {
	cov [][]int
}

func (s *ingestStage) init(rows []int) {
	s.shards = make([]shardStage, len(rows))
	for k := range s.shards {
		s.shards[k].cov = make([][]int, rows[k])
	}
}

func (s *ingestStage) reset() {
	s.ctxBuf = s.ctxBuf[:0]
	s.ctxs = s.ctxs[:0]
	s.cells = s.cells[:0]
	s.n = 0
	for k := range s.shards {
		cov := s.shards[k].cov
		for r := range cov {
			cov[r] = cov[r][:0]
		}
	}
}

// publishView turns the closed staging arena into the policy-facing
// SlotView: coverage rows are handed over by pointer (no re-scan, no
// copy), contexts materialise as subslices of the packed buffer, and
// scenario masking empties down SCNs' rows exactly as the offline
// simulator's view boundary does — which is what keeps client, daemon,
// and sim.Run bit-identical under churn. Call under mu; the view
// aliases the arena, which stays untouched until the slot's Observe
// completes (the other arena takes the ingest traffic meanwhile).
func (e *Engine) publishView(t int, st *ingestStage, dyn *scenario.View) *policy.SlotView {
	n := st.n
	dims := e.cfg.Dims
	st.ctxs = st.ctxs[:0]
	for i := 0; i < n; i++ {
		st.ctxs = append(st.ctxs, task.Context(st.ctxBuf[i*dims:(i+1)*dims:(i+1)*dims]))
	}
	v := &e.view
	scns := e.cfg.SCNs
	if cap(v.SCNs) < scns {
		v.SCNs = make([]policy.SCNView, scns)
	}
	v.SCNs = v.SCNs[:scns]
	for m := 0; m < scns; m++ {
		if dyn != nil && !dyn.Up[m] {
			v.SCNs[m].Cover = nil
			continue
		}
		v.SCNs[m].Cover = st.shards[e.scnShard[m]].cov[e.scnLocal[m]]
	}
	if dyn == nil {
		v.Caps, v.AlphaMul, v.BetaMul = nil, nil, nil
	} else {
		v.Caps, v.AlphaMul, v.BetaMul = dyn.Caps, dyn.AlphaMul, dyn.BetaMul
	}
	v.T = t
	v.NumTasks = n
	v.Cells = st.cells
	v.SetCtxs(st.ctxs)
	return v
}
