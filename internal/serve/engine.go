package serve

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"lfsc/internal/core"
	"lfsc/internal/hypercube"
	"lfsc/internal/obs"
	"lfsc/internal/policy"
	"lfsc/internal/rng"
	"lfsc/internal/task"
)

// Config parameterises the serving engine. The learner/topology block
// must match what the clients believe (a replaying load generator built
// from the same scenario and seed produces bit-identical decisions to an
// offline sim.Run — see ReplayScenario); the serving block tunes the
// batcher and backpressure.
type Config struct {
	// Learner / topology. Seed feeds the same master-stream derivation the
	// simulator uses: the policy's RNG is rng.New(Seed).Derive(3).
	SCNs     int
	Capacity int
	Alpha    float64
	Beta     float64
	Dims     int // context dimensionality (task.ContextDims, +1 with latency class)
	H        int // hypercube granularity h_T
	KMax     int // bound on per-SCN visible tasks per slot
	Horizon  int // schedule horizon T
	Seed     uint64

	// Serving knobs.
	//
	// SlotEvery is the slot clock: a non-empty batch closes on each tick.
	// Zero disables the clock — slots then close only at KMax, MaxBatch,
	// or an explicit SubmitRequest.Close (lockstep replay).
	SlotEvery time.Duration
	// MaxBatch closes the slot once it holds at least this many tasks
	// (checked after each whole submission; submissions are never split
	// across slots). Zero defaults to SCNs*KMax, the structural bound.
	MaxBatch int
	// QueueCap bounds tasks accepted but not yet decided; submissions
	// that would exceed it are shed with 429. Zero defaults to 4*MaxBatch.
	QueueCap int
	// SubQueue is the submission channel depth (whole submissions).
	// Zero defaults to 64.
	SubQueue int
	// ReportWait bounds how long a decided slot stays open for outcome
	// reports before Observe runs with whatever arrived. Zero defaults
	// to 2s.
	ReportWait time.Duration

	// CheckpointPath enables checkpointing: the engine atomically writes
	// its state there every CheckpointEvery slots and on graceful Stop.
	CheckpointPath string
	// CheckpointEvery is the periodic checkpoint interval in slots
	// (0 = only on Stop).
	CheckpointEvery int

	// Observability (all optional, nil-safe). Probe records the engine's
	// slot phases (view/decide/realize/observe/snapshot); Registry makes
	// the serving run visible on /lfsc/status and expvar.
	Probe    *obs.Probe
	Registry *obs.Registry
	// SnapshotEvery > 0 emits a policy snapshot to SnapshotSink every
	// that many slots (JSONL events, mirroring the simulator's -snapshots).
	SnapshotEvery int
	SnapshotSink  obs.SnapshotSink
}

func (c *Config) withDefaults() Config {
	cp := *c
	if cp.Dims == 0 {
		cp.Dims = task.ContextDims
	}
	if cp.MaxBatch <= 0 {
		cp.MaxBatch = cp.SCNs * cp.KMax
	}
	if cp.QueueCap <= 0 {
		cp.QueueCap = 4 * cp.MaxBatch
	}
	if cp.SubQueue <= 0 {
		cp.SubQueue = 64
	}
	if cp.ReportWait <= 0 {
		cp.ReportWait = 2 * time.Second
	}
	return cp
}

// submission is one SubmitRequest travelling through the batcher. The
// handler goroutine owns it until the engine replies on resp (cap 1).
type submission struct {
	tasks []TaskSpec
	close bool
	resp  chan submitReply
}

type submitReply struct {
	slot     int
	base     int
	assigned []int
	err      error
}

// reportDelivery is one ReportRequest awaiting absorption; the engine
// answers on resp (cap 1) with nil or a rejection error.
type reportDelivery struct {
	req  *ReportRequest
	resp chan error
}

// Engine is the serving core: a single goroutine owns the learner and
// walks the strict slot protocol (batch → Decide → reply → collect
// reports → Observe → maybe checkpoint), so the policy never sees
// concurrent calls. Handlers communicate over bounded channels; when a
// queue is full the submission is shed, never blocked on.
type Engine struct {
	cfg  Config
	pol  *core.LFSC
	part *hypercube.Partition

	subCh    chan *submission
	repCh    chan *reportDelivery
	stopCh   chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	abort    atomic.Bool

	// pending counts tasks accepted into the queue but not yet decided —
	// the backpressure gauge the submit handler sheds against.
	pending atomic.Int64

	// Counters (atomics: handlers and status readers are concurrent).
	submittedTasks atomic.Uint64
	decidedTasks   atomic.Uint64
	assignedTasks  atomic.Uint64
	reportedTasks  atomic.Uint64
	slotsServed    atomic.Uint64
	shedRequests   atomic.Uint64
	shedTasks      atomic.Uint64
	lateSlots      atomic.Uint64
	lateReports    atomic.Uint64
	cumRewardBits  atomic.Uint64
	slotAtomic     atomic.Int64

	// Request-latency histograms (the obs log₂-bucket machinery).
	submitLat obs.Histogram
	reportLat obs.Histogram

	rs *obs.RunStatus

	// Slot-loop scratch, reused across slots (engine-goroutine only).
	batch   slotBatch
	scratch viewScratch
	fb      policy.Feedback
	repU    []float64
	repV    []float64
	repQ    []float64
	repGot  []bool
	snap    obs.PolicySnapshot
}

// NewEngine builds the engine (learner, partition, queues) without
// starting it. Use Restore to load a checkpoint before Start.
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	part, err := hypercube.New(cfg.Dims, cfg.H)
	if err != nil {
		return nil, fmt.Errorf("serve: partition: %w", err)
	}
	coreCfg := core.Config{
		SCNs:     cfg.SCNs,
		Capacity: cfg.Capacity,
		Alpha:    cfg.Alpha,
		Beta:     cfg.Beta,
		Cells:    part.Cells(),
		KMax:     cfg.KMax,
		Horizon:  cfg.Horizon,
	}
	pol, err := core.New(coreCfg, rng.New(cfg.Seed).Derive(3))
	if err != nil {
		return nil, fmt.Errorf("serve: learner: %w", err)
	}
	e := &Engine{
		cfg:    cfg,
		pol:    pol,
		part:   part,
		subCh:  make(chan *submission, cfg.SubQueue),
		repCh:  make(chan *reportDelivery, cfg.SubQueue),
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
	e.batch.init(cfg.SCNs)
	return e, nil
}

// Policy exposes the learner for introspection (status pages, tests).
// The engine goroutine owns all mutating calls; callers must only use
// read-only accessors, and only when the engine is stopped or between
// their own lockstep requests.
func (e *Engine) Policy() *core.LFSC { return e.pol }

// Start launches the engine loop. The engine serves until Stop or Abort.
func (e *Engine) Start() {
	if e.cfg.Registry != nil {
		e.rs = e.cfg.Registry.NewRun("lfscd", e.cfg.Horizon)
		// A restored engine re-registers with its history visible.
		if cum := e.CumReward(); cum != 0 {
			e.rs.RecordSlot(cum)
		}
	}
	go e.loop()
}

// Stop closes the engine gracefully: the loop finishes the slot in
// flight, writes a final checkpoint (when configured), fails queued
// submissions, and exits. Stop and Abort are idempotent between them.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() { close(e.stopCh) })
	<-e.done
	e.rs.Finish()
}

// Abort is the unclean shutdown used by kill-and-resume tests: the loop
// exits without writing a final checkpoint, as if the process had been
// killed. Only checkpoints already on disk survive.
func (e *Engine) Abort() {
	e.abort.Store(true)
	e.stopOnce.Do(func() { close(e.stopCh) })
	<-e.done
	e.rs.Finish()
}

// Slot returns the next slot index to be decided.
func (e *Engine) Slot() int { return int(e.slotAtomic.Load()) }

// CumReward returns the cumulative compound reward across all served
// slots, including history restored from a checkpoint.
func (e *Engine) CumReward() float64 {
	return math.Float64frombits(e.cumRewardBits.Load())
}

// Stats snapshots the serving counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Slot:           e.Slot(),
		CumReward:      e.CumReward(),
		SubmittedTasks: e.submittedTasks.Load(),
		DecidedTasks:   e.decidedTasks.Load(),
		AssignedTasks:  e.assignedTasks.Load(),
		ReportedTasks:  e.reportedTasks.Load(),
		SlotsServed:    e.slotsServed.Load(),
		ShedRequests:   e.shedRequests.Load(),
		ShedTasks:      e.shedTasks.Load(),
		LateSlots:      e.lateSlots.Load(),
		LateReports:    e.lateReports.Load(),
		SubmitLatency:  e.submitLat.Stat("submit"),
		ReportLatency:  e.reportLat.Stat("report"),
	}
}

// errShed marks a shed submission (mapped to 429 by the HTTP layer).
type shedError struct{ reason string }

func (s *shedError) Error() string { return "serve: shed: " + s.reason }

// IsShed reports whether err is a load-shedding rejection.
func IsShed(err error) bool {
	_, ok := err.(*shedError)
	return ok
}

// Submit validates and enqueues a batch of task arrivals, blocking until
// the slot containing them is decided. Shed submissions return a
// *shedError immediately — the caller must retry later (429 semantics).
func (e *Engine) Submit(req *SubmitRequest) (*SubmitResponse, error) {
	start := time.Now()
	defer e.submitLat.Observe(start)
	if err := e.validateSubmit(req); err != nil {
		return nil, err
	}
	n := int64(len(req.Tasks))
	// Backpressure gate 1: the pending-task budget. Reserve optimistically
	// and roll back on shed so concurrent submitters cannot stampede past
	// the cap.
	if e.pending.Add(n) > int64(e.cfg.QueueCap) {
		e.pending.Add(-n)
		e.shed(req)
		return nil, &shedError{reason: "task queue full"}
	}
	s := &submission{tasks: req.Tasks, close: req.Close, resp: make(chan submitReply, 1)}
	// Backpressure gate 2: the submission channel. Never block the
	// handler — a full channel means the batcher is behind; shed.
	select {
	case e.subCh <- s:
	default:
		e.pending.Add(-n)
		e.shed(req)
		return nil, &shedError{reason: "submission queue full"}
	}
	e.submittedTasks.Add(uint64(n))
	select {
	case rep := <-s.resp:
		if rep.err != nil {
			return nil, rep.err
		}
		return &SubmitResponse{Slot: rep.slot, Base: rep.base, Assigned: rep.assigned}, nil
	case <-e.done:
		return nil, fmt.Errorf("serve: engine stopped")
	}
}

func (e *Engine) shed(req *SubmitRequest) {
	e.shedRequests.Add(1)
	e.shedTasks.Add(uint64(len(req.Tasks)))
}

func (e *Engine) validateSubmit(req *SubmitRequest) error {
	if len(req.Tasks) == 0 {
		return fmt.Errorf("serve: empty submission")
	}
	// Local counts: validation runs on handler goroutines, which must not
	// touch the engine-owned scratch.
	counts := make([]int, e.cfg.SCNs)
	for i := range req.Tasks {
		sp := &req.Tasks[i]
		if len(sp.Ctx) != e.cfg.Dims {
			return fmt.Errorf("serve: task %d: context has %d dims, want %d", i, len(sp.Ctx), e.cfg.Dims)
		}
		if !task.Context(sp.Ctx).Valid() {
			return fmt.Errorf("serve: task %d: context outside [0,1]", i)
		}
		if len(sp.SCNs) == 0 {
			return fmt.Errorf("serve: task %d: no visible SCNs", i)
		}
		for _, m := range sp.SCNs {
			if m < 0 || m >= e.cfg.SCNs {
				return fmt.Errorf("serve: task %d: SCN %d out of range", i, m)
			}
			counts[m]++
			if counts[m] > e.cfg.KMax {
				return fmt.Errorf("serve: submission exceeds KMax=%d for SCN %d", e.cfg.KMax, m)
			}
		}
	}
	// Duplicate SCNs within one task would double-count coverage.
	for i := range req.Tasks {
		scns := req.Tasks[i].SCNs
		for a := 0; a < len(scns); a++ {
			for b := a + 1; b < len(scns); b++ {
				if scns[a] == scns[b] {
					return fmt.Errorf("serve: task %d lists SCN %d twice", i, scns[a])
				}
			}
		}
	}
	return nil
}

// Report delivers realised outcomes for the open slot, blocking until
// absorbed or rejected.
func (e *Engine) Report(req *ReportRequest) (*ReportResponse, error) {
	start := time.Now()
	defer e.reportLat.Observe(start)
	if len(req.Reports) == 0 {
		return nil, fmt.Errorf("serve: empty report")
	}
	rd := &reportDelivery{req: req, resp: make(chan error, 1)}
	select {
	case e.repCh <- rd:
	case <-e.done:
		return nil, fmt.Errorf("serve: engine stopped")
	}
	select {
	case err := <-rd.resp:
		if err != nil {
			return nil, err
		}
		return &ReportResponse{Accepted: len(req.Reports)}, nil
	case <-e.done:
		return nil, fmt.Errorf("serve: engine stopped")
	}
}

// errLateReport marks a report for a slot that is no longer open.
type lateReportError struct{ slot, open int }

func (l *lateReportError) Error() string {
	return fmt.Sprintf("serve: report for slot %d, but slot %d is open", l.slot, l.open)
}

// IsLateReport reports whether err is a closed-slot report rejection.
func IsLateReport(err error) bool {
	_, ok := err.(*lateReportError)
	return ok
}

// loop is the engine goroutine: the only caller of Decide/Observe.
func (e *Engine) loop() {
	defer close(e.done)
	var tickCh <-chan time.Time
	if e.cfg.SlotEvery > 0 {
		t := time.NewTicker(e.cfg.SlotEvery)
		defer t.Stop()
		tickCh = t.C
	}
	e.slotAtomic.Store(int64(e.pol.SlotsSeen()))
	for {
		select {
		case s := <-e.subCh:
			// Closing at KMax: if adding this submission would push a
			// coverage list past KMax, the current batch is a full slot —
			// serve it first, then open the next slot with the submission.
			if e.batch.wouldOverflow(s, e.cfg.KMax) {
				e.serveSlot()
			}
			e.batch.add(s)
		case <-tickCh:
			// Slot clock: a non-empty batch closes on each tick (serveSlot
			// is a no-op on an empty one — no arrivals, no slot).
			e.serveSlot()
		case rd := <-e.repCh:
			e.lateReports.Add(1)
			rd.resp <- &lateReportError{slot: rd.req.Slot, open: int(e.slotAtomic.Load())}
			continue
		case <-e.stopCh:
			e.shutdown()
			return
		}
		if e.batch.shouldClose(e.cfg.MaxBatch, e.cfg.KMax) {
			e.serveSlot()
		}
	}
}

// shutdown finishes the engine: final checkpoint (unless aborted), then
// fail everything still queued so no handler blocks forever.
func (e *Engine) shutdown() {
	if !e.abort.Load() && e.cfg.CheckpointPath != "" {
		// Best effort — the periodic checkpoint remains if this fails.
		_ = e.checkpointNow()
	}
	e.failBatch(fmt.Errorf("serve: engine stopped"))
	for {
		select {
		case s := <-e.subCh:
			e.pending.Add(-int64(len(s.tasks)))
			s.resp <- submitReply{err: fmt.Errorf("serve: engine stopped")}
		case rd := <-e.repCh:
			rd.resp <- fmt.Errorf("serve: engine stopped")
		default:
			return
		}
	}
}

func (e *Engine) failBatch(err error) {
	for _, s := range e.batch.subs {
		e.pending.Add(-int64(len(s.tasks)))
		s.resp <- submitReply{err: err}
	}
	e.batch.reset()
}

// serveSlot runs one full slot against the batched submissions: build
// the view, Decide, reply to submitters, collect outcome reports,
// Observe, account, maybe checkpoint. Mirrors the phase structure of
// sim.Run so the probe's breakdown is comparable across offline and
// serving runs.
func (e *Engine) serveSlot() {
	b := &e.batch
	n := len(b.specs)
	if n == 0 {
		return
	}
	probe := e.cfg.Probe
	slot := e.pol.SlotsSeen()
	span := probe.Start()
	view := e.scratch.build(slot, b.specs, e.part, e.cfg.SCNs)
	span = probe.Lap(obs.PhaseView, span)
	assigned := e.pol.Decide(view)
	span = probe.Lap(obs.PhaseDecide, span)

	// Reply to every submitter with its contiguous range of decisions.
	for i, s := range b.subs {
		base := b.subBase[i]
		out := make([]int, len(s.tasks))
		copy(out, assigned[base:base+len(s.tasks)])
		e.pending.Add(-int64(len(s.tasks)))
		s.resp <- submitReply{slot: slot, base: base, assigned: out}
	}
	e.decidedTasks.Add(uint64(n))
	expected := 0
	for _, m := range assigned {
		if m >= 0 {
			expected++
		}
	}
	e.assignedTasks.Add(uint64(expected))

	e.collectReports(slot, n, assigned, expected)
	span = probe.Lap(obs.PhaseRealize, span)

	// Feedback and reward in ascending task order — the exact summation
	// order of the offline simulator, so cumulative rewards stay
	// bit-comparable.
	e.fb.Execs = e.fb.Execs[:0]
	slotReward := 0.0
	for idx := 0; idx < n; idx++ {
		if !e.repGot[idx] {
			continue
		}
		ex := policy.Exec{
			SCN: assigned[idx], Task: idx, Cell: e.scratch.cells[idx],
			U: e.repU[idx], V: e.repV[idx], Q: e.repQ[idx],
		}
		e.fb.Execs = append(e.fb.Execs, ex)
		slotReward += ex.Compound()
	}
	e.pol.Observe(view, assigned, &e.fb)
	span = probe.Lap(obs.PhaseObserve, span)
	probe.EndSlot()

	cum := e.CumReward() + slotReward
	e.cumRewardBits.Store(math.Float64bits(cum))
	e.slotAtomic.Store(int64(e.pol.SlotsSeen()))
	e.slotsServed.Add(1)
	e.rs.RecordSlot(slotReward)

	t := e.pol.SlotsSeen()
	if e.cfg.SnapshotEvery > 0 && e.cfg.SnapshotSink != nil && t%e.cfg.SnapshotEvery == 0 {
		e.snap.Slot = t - 1
		e.snap.CumReward = cum
		e.pol.Snapshot(&e.snap)
		e.cfg.SnapshotSink.OnSnapshot(&e.snap)
	}
	if e.cfg.CheckpointEvery > 0 && e.cfg.CheckpointPath != "" && t%e.cfg.CheckpointEvery == 0 {
		span = probe.Start()
		_ = e.checkpointNow()
		probe.Lap(obs.PhaseSnapshot, span)
	}
	b.reset()
}

// collectReports keeps the slot open until every assigned task has a
// report, the report wait expires, or the engine stops. Reports are
// absorbed atomically per request.
func (e *Engine) collectReports(slot, n int, assigned []int, expected int) {
	if cap(e.repGot) < n {
		e.repGot = make([]bool, n)
		e.repU = make([]float64, n)
		e.repV = make([]float64, n)
		e.repQ = make([]float64, n)
	}
	e.repGot = e.repGot[:n]
	e.repU, e.repV, e.repQ = e.repU[:n], e.repV[:n], e.repQ[:n]
	for i := range e.repGot {
		e.repGot[i] = false
	}
	if expected == 0 {
		return
	}
	timer := time.NewTimer(e.cfg.ReportWait)
	defer timer.Stop()
	remaining := expected
	for remaining > 0 {
		select {
		case rd := <-e.repCh:
			acc, err := e.absorbReport(slot, n, assigned, rd.req)
			rd.resp <- err
			remaining -= acc
		case <-timer.C:
			e.lateSlots.Add(1)
			return
		case <-e.stopCh:
			// Shutting down mid-slot: Observe with what arrived, then the
			// loop sees stopCh and finalises.
			return
		}
	}
}

// absorbReport validates a whole report request against the open slot
// and commits it atomically: any invalid entry rejects the request with
// no partial state.
func (e *Engine) absorbReport(slot, n int, assigned []int, req *ReportRequest) (int, error) {
	if req.Slot != slot {
		e.lateReports.Add(1)
		return 0, &lateReportError{slot: req.Slot, open: slot}
	}
	for i := range req.Reports {
		r := &req.Reports[i]
		switch {
		case r.Task < 0 || r.Task >= n:
			return 0, fmt.Errorf("serve: report %d: task %d out of range", i, r.Task)
		case assigned[r.Task] < 0:
			return 0, fmt.Errorf("serve: report %d: task %d was not assigned", i, r.Task)
		case e.repGot[r.Task]:
			return 0, fmt.Errorf("serve: report %d: task %d already reported", i, r.Task)
		case math.IsNaN(r.U) || r.U < 0 || r.U > 1:
			return 0, fmt.Errorf("serve: report %d: reward %v outside [0,1]", i, r.U)
		case r.V != 0 && r.V != 1:
			return 0, fmt.Errorf("serve: report %d: completion %v not in {0,1}", i, r.V)
		case math.IsNaN(r.Q) || math.IsInf(r.Q, 0) || r.Q <= 0:
			return 0, fmt.Errorf("serve: report %d: consumption %v not positive", i, r.Q)
		}
		// Duplicates within the request.
		for j := 0; j < i; j++ {
			if req.Reports[j].Task == r.Task {
				return 0, fmt.Errorf("serve: report %d: task %d duplicated in request", i, r.Task)
			}
		}
	}
	for i := range req.Reports {
		r := &req.Reports[i]
		e.repGot[r.Task] = true
		e.repU[r.Task], e.repV[r.Task], e.repQ[r.Task] = r.U, r.V, r.Q
	}
	e.reportedTasks.Add(uint64(len(req.Reports)))
	return len(req.Reports), nil
}

// slotBatch accumulates submissions into the next slot.
type slotBatch struct {
	specs    []TaskSpec
	subs     []*submission
	subBase  []int
	scnCount []int
	closeReq bool
}

func (b *slotBatch) init(scns int) {
	b.scnCount = make([]int, scns)
}

// wouldOverflow reports whether adding s would push any SCN's coverage
// past kMax — the "slot is full at KMax" close condition.
func (b *slotBatch) wouldOverflow(s *submission, kMax int) bool {
	if len(b.specs) == 0 {
		return false
	}
	for i := range s.tasks {
		for _, m := range s.tasks[i].SCNs {
			b.scnCount[m]++
		}
	}
	over := false
	for i := range s.tasks {
		for _, m := range s.tasks[i].SCNs {
			if b.scnCount[m] > kMax {
				over = true
			}
			b.scnCount[m]--
		}
	}
	return over
}

func (b *slotBatch) add(s *submission) {
	b.subs = append(b.subs, s)
	b.subBase = append(b.subBase, len(b.specs))
	b.specs = append(b.specs, s.tasks...)
	for i := range s.tasks {
		for _, m := range s.tasks[i].SCNs {
			b.scnCount[m]++
		}
	}
	if s.close {
		b.closeReq = true
	}
}

func (b *slotBatch) shouldClose(maxBatch, kMax int) bool {
	if len(b.specs) == 0 {
		return false
	}
	if b.closeReq || len(b.specs) >= maxBatch {
		return true
	}
	for _, c := range b.scnCount {
		if c >= kMax {
			return true
		}
	}
	return false
}

func (b *slotBatch) reset() {
	b.specs = b.specs[:0]
	b.subs = b.subs[:0]
	b.subBase = b.subBase[:0]
	for m := range b.scnCount {
		b.scnCount[m] = 0
	}
	b.closeReq = false
}

// viewScratch builds the policy-facing SlotView from batched task specs,
// mirroring the simulator's slot builder: contexts packed into one
// backing array, each indexed exactly once, per-SCN task lists in task
// order (the same coverage-row order a trace generator produces, which
// is what keeps serving and offline runs bit-identical on the same
// workload).
type viewScratch struct {
	cells    []int
	ctxBuf   []float64
	ctxs     []task.Context
	view     policy.SlotView
	taskBufs [][]policy.TaskView
}

func (s *viewScratch) build(t int, specs []TaskSpec, part *hypercube.Partition, scns int) *policy.SlotView {
	n := len(specs)
	if cap(s.cells) < n {
		s.cells = make([]int, n)
		s.ctxs = make([]task.Context, n)
	}
	s.cells = s.cells[:n]
	s.ctxs = s.ctxs[:n]
	s.ctxBuf = s.ctxBuf[:0]
	for i := range specs {
		s.ctxBuf = append(s.ctxBuf, specs[i].Ctx...)
	}
	dims := 0
	if n > 0 {
		dims = len(specs[0].Ctx)
	}
	for i := 0; i < n; i++ {
		ctx := task.Context(s.ctxBuf[i*dims : (i+1)*dims : (i+1)*dims])
		s.ctxs[i] = ctx
		s.cells[i] = part.Index(ctx)
	}
	if cap(s.view.SCNs) < scns {
		s.view.SCNs = make([]policy.SCNView, scns)
	}
	s.view.SCNs = s.view.SCNs[:scns]
	for len(s.taskBufs) < scns {
		s.taskBufs = append(s.taskBufs, nil)
	}
	for m := 0; m < scns; m++ {
		s.taskBufs[m] = s.taskBufs[m][:0]
	}
	for idx := range specs {
		tv := policy.TaskView{Index: idx, Cell: s.cells[idx], Ctx: s.ctxs[idx]}
		for _, m := range specs[idx].SCNs {
			s.taskBufs[m] = append(s.taskBufs[m], tv)
		}
	}
	for m := 0; m < scns; m++ {
		s.view.SCNs[m].Tasks = s.taskBufs[m]
	}
	s.view.T = t
	s.view.NumTasks = n
	return &s.view
}
