package serve

import (
	"fmt"
	"time"

	"lfsc/internal/env"
	"lfsc/internal/hypercube"
	"lfsc/internal/obs"
	"lfsc/internal/rng"
	"lfsc/internal/scenario"
	"lfsc/internal/task"
	"lfsc/internal/trace"
)

// ReplayScenario pins the (workload, environment, partition, seed) tuple
// a load generator replays against a daemon. It deliberately mirrors the
// offline simulator's stream derivation — generator from Derive(1),
// environment from Derive(2), policy from Derive(3), realisation root
// from Derive(4) of the same master seed — so a daemon configured with
// EngineConfig and driven by a Replayer produces decisions and rewards
// bit-identical to sim.Run on the same scenario (see the serve tests).
type ReplayScenario struct {
	// Synthetic is the workload model (the paper's generative trace).
	Synthetic trace.SyntheticConfig
	// EnvCfg is the environment recipe; Cells and SCNs are overwritten
	// from the partition and generator, as the simulator does.
	EnvCfg env.Config
	// Capacity, Alpha, Beta, H, T mirror sim.Config.
	Capacity int
	Alpha    float64
	Beta     float64
	H        int
	T        int
	// UseLatencyContext selects the 4-D context.
	UseLatencyContext bool
	// Seed is the master seed shared by daemon and replayer.
	Seed uint64
	// Scenario, when set, is the timeline of SCN dynamics the daemon
	// serves under (EngineConfig forwards it). The replayer itself never
	// masks: clients submit full specs and the daemon masks at its view
	// boundary, exactly as sim.Run does — so the client-side reward
	// (drawn per returned assignment) still matches daemon and sim.
	Scenario *scenario.Timeline
}

func (sc *ReplayScenario) dims() int {
	if sc.UseLatencyContext {
		return task.ContextDims + 1
	}
	return task.ContextDims
}

// EngineConfig derives the daemon configuration that matches this
// scenario: same learner shape, same schedule inputs, same seed. The
// serving knobs (queues, slot clock, checkpointing) are left zero for
// the caller to fill.
func (sc *ReplayScenario) EngineConfig() (Config, error) {
	if err := sc.Synthetic.Validate(); err != nil {
		return Config{}, fmt.Errorf("serve: scenario: %w", err)
	}
	gen, err := trace.NewSynthetic(sc.Synthetic, rng.New(sc.Seed).Derive(1))
	if err != nil {
		return Config{}, fmt.Errorf("serve: scenario: %w", err)
	}
	return Config{
		SCNs:     gen.SCNs(),
		Capacity: sc.Capacity,
		Alpha:    sc.Alpha,
		Beta:     sc.Beta,
		Dims:     sc.dims(),
		H:        sc.H,
		KMax:     gen.MaxPerSCN(),
		Horizon:  sc.T,
		Seed:     sc.Seed,
		Scenario: sc.Scenario,
	}, nil
}

// Replayer drives a daemon through a seeded trace in lockstep: it
// regenerates the workload slot by slot, submits each slot as one
// closing request, computes the realised outcomes for the returned
// assignment with the simulator's exact common-random-number scheme, and
// reports them back. It also accumulates the client-side cumulative
// reward, which must match both the daemon's accumulator and an offline
// sim.Run — the three-way equivalence the serve tests pin.
//
// By default the replayer rides the batched /v1/step endpoint: slot t's
// outcome reports travel with slot t+1's submission, one HTTP round trip
// per slot, with the final slot's reports delivered by Flush (Run calls
// it). SetUseStep(false) selects the classic two-request protocol
// (/v1/submit + /v1/report); both paths are bit-identical.
type Replayer struct {
	sc       ReplayScenario
	gen      *trace.Synthetic
	env      *env.Env
	part     *hypercube.Partition
	realRoot *rng.Stream

	next      int
	cumReward float64
	noStep    bool

	slotBuf  trace.Slot
	ctxBuf   []float64
	specs    []TaskSpec
	scnLists [][]int
	cells    []int

	// pendReports holds the realised outcomes of the last decided slot
	// (pendSlot), awaiting delivery on the next step or Flush.
	pendReports []TaskReport
	pendSlot    int

	stepResp StepResponse
	subResp  SubmitResponse

	// Latency is the client-observed request latency histogram (submit,
	// step, and report round-trips), reusing the obs log₂ buckets.
	Latency obs.Histogram
}

// NewReplayer builds the replayer's generator, environment, and
// partition from the scenario, mirroring sim.Run's construction.
func NewReplayer(sc ReplayScenario) (*Replayer, error) {
	master := rng.New(sc.Seed)
	gen, err := trace.NewSynthetic(sc.Synthetic, master.Derive(1))
	if err != nil {
		return nil, fmt.Errorf("serve: replay generator: %w", err)
	}
	part, err := hypercube.New(sc.dims(), sc.H)
	if err != nil {
		return nil, fmt.Errorf("serve: replay partition: %w", err)
	}
	envCfg := sc.EnvCfg
	envCfg.Cells = part.Cells()
	envCfg.SCNs = gen.SCNs()
	e, err := env.New(envCfg, master.Derive(2))
	if err != nil {
		return nil, fmt.Errorf("serve: replay environment: %w", err)
	}
	return &Replayer{
		sc:       sc,
		gen:      gen,
		env:      e,
		part:     part,
		realRoot: master.Derive(4),
	}, nil
}

// SetUseStep selects between the batched /v1/step protocol (true, the
// default) and the classic submit-then-report pair per slot.
func (r *Replayer) SetUseStep(use bool) { r.noStep = !use }

// Slot returns the next slot index the replayer will submit.
func (r *Replayer) Slot() int { return r.next }

// CumReward returns the client-side cumulative compound reward over the
// slots this replayer submitted (skipped slots contribute nothing).
func (r *Replayer) CumReward() float64 { return r.cumReward }

// SkipTo advances the workload and environment through slots
// [next, t) without submitting them — the resume path: a daemon
// restored at slot t needs the replayer's streams positioned exactly
// where an uninterrupted replay would have them.
func (r *Replayer) SkipTo(t int) {
	for ; r.next < t; r.next++ {
		r.env.Advance(r.next)
		r.gen.NextInto(r.next, &r.slotBuf)
	}
}

// SlotResult summarises one replayed slot.
type SlotResult struct {
	Slot     int
	Tasks    int
	Assigned int
	Reward   float64
	Shed     bool
}

// Step replays one slot against the daemon: generate, submit (closing
// the slot, carrying the previous slot's reports on the batched path),
// realise outcomes for the returned assignment, and queue them for the
// next step. A shed submission consumes the slot's draws but teaches the
// daemon nothing (the arrivals were refused — though a piggy-backed
// report part is still absorbed); it is returned with Shed set.
func (r *Replayer) Step(c Conn) (SlotResult, error) {
	t := r.next
	r.next++
	r.env.Advance(t)
	r.gen.NextInto(t, &r.slotBuf)
	n := len(r.slotBuf.Tasks)
	res := SlotResult{Slot: t, Tasks: n}
	if n == 0 {
		return res, nil
	}
	r.buildSpecs()

	var slot, base int
	var assigned []int
	if r.noStep {
		if err := r.Flush(c); err != nil {
			return res, fmt.Errorf("serve: replay slot %d: %w", t, err)
		}
		start := time.Now()
		err := c.SubmitInto(&SubmitRequest{Tasks: r.specs, Close: true}, &r.subResp)
		r.Latency.Observe(start)
		if err != nil {
			if _, shed := err.(*ErrShed); shed {
				res.Shed = true
				return res, nil
			}
			return res, err
		}
		slot, base, assigned = r.subResp.Slot, r.subResp.Base, r.subResp.Assigned
	} else {
		start := time.Now()
		err := c.StepInto(r.pendSlot, r.pendReports, r.specs, true, &r.stepResp)
		r.Latency.Observe(start)
		if err != nil {
			if serr, shed := err.(*ErrShed); shed {
				// The daemon still absorbed the report part (serr.Accepted
				// says how much); either way those reports are spent.
				_ = serr
				r.pendReports = r.pendReports[:0]
				res.Shed = true
				return res, nil
			}
			return res, err
		}
		if len(r.pendReports) > 0 && r.stepResp.ReportError != "" {
			return res, fmt.Errorf("serve: replay slot %d: report part rejected: %s", t, r.stepResp.ReportError)
		}
		r.pendReports = r.pendReports[:0]
		slot, base, assigned = r.stepResp.Slot, r.stepResp.Base, r.stepResp.Assigned
	}
	if len(assigned) != n || base != 0 {
		return res, fmt.Errorf("serve: replay slot %d: daemon returned %d assignments at base %d for %d tasks",
			t, len(assigned), base, n)
	}

	// Realise outcomes with the simulator's derivation: per-slot stream
	// from the realisation root, per-(SCN,task) streams labelled m<<32|i,
	// rewards summed in ascending task order. The reports queue for the
	// next step (or Flush) on the batched path.
	var slotReal, taskReal rng.Stream
	r.realRoot.DeriveInto(uint64(t), &slotReal)
	r.pendReports = r.pendReports[:0]
	r.pendSlot = slot
	slotReward := 0.0
	for idx, m := range assigned {
		if m < 0 {
			continue
		}
		res.Assigned++
		slotReal.DeriveInto(uint64(m)<<32|uint64(idx), &taskReal)
		out := r.env.Draw(m, r.cells[idx], &taskReal)
		slotReward += out.Compound()
		r.pendReports = append(r.pendReports, TaskReport{
			Task: idx, U: out.U, V: out.V(), Q: out.Q,
		})
	}
	r.cumReward += slotReward
	res.Reward = slotReward
	return res, nil
}

// Flush delivers any outcome reports still queued from the last decided
// slot via /v1/report. Run calls it after the final step; long-lived
// callers driving Step directly should Flush before pausing, or the
// daemon's last slot times out waiting.
func (r *Replayer) Flush(c Conn) error {
	if len(r.pendReports) == 0 {
		return nil
	}
	start := time.Now()
	_, err := c.Report(&ReportRequest{Slot: r.pendSlot, Reports: r.pendReports})
	r.Latency.Observe(start)
	if err != nil {
		return err
	}
	r.pendReports = r.pendReports[:0]
	return nil
}

// buildSpecs converts the generated slot into wire specs: packed
// contexts (the same AppendContext packing the simulator uses), per-task
// visible-SCN lists inverted from the coverage rows, and client-side
// cells for outcome draws.
func (r *Replayer) buildSpecs() {
	n := len(r.slotBuf.Tasks)
	dims := r.sc.dims()
	if cap(r.specs) < n {
		r.specs = make([]TaskSpec, n)
		r.cells = make([]int, n)
	}
	r.specs = r.specs[:n]
	r.cells = r.cells[:n]
	r.ctxBuf = r.ctxBuf[:0]
	for i := range r.slotBuf.Tasks {
		r.ctxBuf = r.slotBuf.Tasks[i].AppendContext(r.ctxBuf, r.sc.UseLatencyContext)
	}
	for len(r.scnLists) < n {
		r.scnLists = append(r.scnLists, nil)
	}
	for i := 0; i < n; i++ {
		r.scnLists[i] = r.scnLists[i][:0]
	}
	for m, cov := range r.slotBuf.Coverage {
		for _, idx := range cov {
			r.scnLists[idx] = append(r.scnLists[idx], m)
		}
	}
	for i := 0; i < n; i++ {
		ctx := r.ctxBuf[i*dims : (i+1)*dims : (i+1)*dims]
		r.specs[i] = TaskSpec{Ctx: ctx, SCNs: r.scnLists[i]}
		r.cells[i] = r.part.Index(task.Context(ctx))
	}
}

// ReplayStats aggregates a replay run.
type ReplayStats struct {
	Slots     int
	Tasks     int
	Assigned  int
	ShedSlots int
	CumReward float64
}

// Run replays slots [from, to) in lockstep, skipping up to from first
// and flushing the final slot's reports at the end. onSlot (optional)
// observes each slot's result.
func (r *Replayer) Run(c Conn, from, to int, onSlot func(SlotResult)) (ReplayStats, error) {
	var st ReplayStats
	if from > r.next {
		r.SkipTo(from)
	}
	for t := r.next; t < to; t++ {
		res, err := r.Step(c)
		if err != nil {
			return st, err
		}
		st.Slots++
		st.Tasks += res.Tasks
		st.Assigned += res.Assigned
		if res.Shed {
			st.ShedSlots++
		}
		st.CumReward += res.Reward
		if onSlot != nil {
			onSlot(res)
		}
	}
	if err := r.Flush(c); err != nil {
		return st, fmt.Errorf("serve: replay flush: %w", err)
	}
	return st, nil
}
