// Package serve turns the LFSC learner into an online decision service:
// the paper's MBS as a daemon. Clients submit task arrivals (context
// vector + visible SCNs) over HTTP/JSON; a slot-clocked batcher
// aggregates them into a slot (closing on a tick, at KMax, or on an
// explicit close), runs Decide on the arena runtime, returns per-task SCN
// assignments, and feeds completion reports back through Observe — the
// same strict Decide→Observe slot protocol the simulator follows, under
// live traffic with bounded queues and explicit load shedding.
//
// Lifecycle rides on internal/core checkpoints: the engine periodically
// writes an atomic checkpoint (write-temp-then-rename) carrying the slot
// counter, the cumulative reward, and the full learner state (weights,
// multipliers, per-SCN RNG streams), checkpoints again on graceful stop,
// and restores on boot — a killed-and-resumed daemon replays the rest of
// a trace bit-identically to one that never stopped (see serve tests).
package serve

import "lfsc/internal/obs"

// TaskSpec is one task arrival as the daemon sees it: the normalised
// context vector φ ∈ [0,1]^dims and the SCNs whose coverage area the
// originating device is in. The daemon never sees the raw payload,
// matching the paper's information model.
type TaskSpec struct {
	Ctx  []float64 `json:"ctx"`
	SCNs []int     `json:"scns"`
}

// SubmitRequest submits a batch of task arrivals. Close asks the batcher
// to close the slot as soon as these tasks are in it (lockstep replay
// submits one full slot per request with Close set); without it the slot
// closes on the next tick or when a coverage list reaches KMax.
type SubmitRequest struct {
	Tasks []TaskSpec `json:"tasks"`
	Close bool       `json:"close,omitempty"`
}

// SubmitResponse returns the decision for each submitted task, parallel
// to SubmitRequest.Tasks: the assigned SCN index, or -1 when the learner
// left the task unassigned. Base is the slot-global index of the first
// task (a submission's tasks are contiguous in the slot), which reports
// must use to address tasks.
type SubmitResponse struct {
	Slot     int   `json:"slot"`
	Base     int   `json:"base"`
	Assigned []int `json:"assigned"`
}

// TaskReport is the realised outcome of one executed task: the reward u,
// the completion indicator v ∈ {0,1}, and the resource consumption q —
// exactly the bandit feedback of the paper's model.
type TaskReport struct {
	Task int     `json:"task"` // slot-global index (SubmitResponse.Base + offset)
	U    float64 `json:"u"`
	V    float64 `json:"v"`
	Q    float64 `json:"q"`
}

// ReportRequest delivers outcomes for tasks assigned in the given slot.
// Only the currently open slot accepts reports; a request is absorbed
// atomically (all reports validated, then all committed) or rejected.
type ReportRequest struct {
	Slot    int          `json:"slot"`
	Reports []TaskReport `json:"reports"`
}

// ReportResponse acknowledges an absorbed report request.
type ReportResponse struct {
	Accepted int `json:"accepted"`
}

// Stats is the daemon's live counter snapshot (GET /v1/stats, and the
// "lfsc_serve" expvar). Latency stats reuse the obs log₂-bucket
// histogram fidelity.
type Stats struct {
	// Slot is the next slot index to be decided (= completed slots,
	// including any carried in from a restored checkpoint).
	Slot int `json:"slot"`
	// CumReward is the cumulative compound reward over all served slots,
	// including checkpoint-restored history.
	CumReward float64 `json:"cum_reward"`

	SubmittedTasks uint64 `json:"submitted_tasks"`
	DecidedTasks   uint64 `json:"decided_tasks"`
	AssignedTasks  uint64 `json:"assigned_tasks"`
	ReportedTasks  uint64 `json:"reported_tasks"`
	SlotsServed    uint64 `json:"slots_served"`

	// ShedRequests / ShedTasks count submissions refused with 429 because
	// a bounded queue was full, and the tasks they carried.
	ShedRequests uint64 `json:"shed_requests"`
	ShedTasks    uint64 `json:"shed_tasks"`
	// LateSlots counts slots whose report wait timed out with outcomes
	// still missing; LateReports counts report requests that arrived
	// after their slot had already closed.
	LateSlots   uint64 `json:"late_slots"`
	LateReports uint64 `json:"late_reports"`

	SubmitLatency obs.PhaseStat `json:"submit_latency"`
	ReportLatency obs.PhaseStat `json:"report_latency"`
}

// errorBody is the JSON error envelope of non-2xx responses.
type errorBody struct {
	Error string `json:"error"`
}
