// Package serve turns the LFSC learner into an online decision service:
// the paper's MBS as a daemon. Clients submit task arrivals (context
// vector + visible SCNs) over HTTP; a slot-clocked batcher aggregates
// them into a slot (closing on a tick, at KMax, or on an explicit
// close), runs Decide on the arena runtime, returns per-task SCN
// assignments, and feeds completion reports back through Observe — the
// same strict Decide→Observe slot protocol the simulator follows, under
// live traffic with bounded queues and explicit load shedding.
//
// The wire format is JSON, but the hot endpoints (/v1/submit,
// /v1/report, and the batched /v1/step) never touch encoding/json:
// requests run through a hand-rolled single-pass decoder that parses the
// body in place into pooled, engine-owned buffers, and replies are built
// with append-based encoders into pooled scratch — steady-state request
// handling is allocation-free (pinned by TestServeWireZeroAlloc). The
// format is specified field-by-field in DESIGN.md §10.1.
//
// Lifecycle rides on internal/core checkpoints: the engine periodically
// writes an atomic checkpoint (write-temp-then-rename) carrying the slot
// counter, the cumulative reward, and the full learner state (weights,
// multipliers, per-SCN RNG streams), checkpoints again on graceful stop,
// and restores on boot — a killed-and-resumed daemon replays the rest of
// a trace bit-identically to one that never stopped (see serve tests).
package serve

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"unsafe"

	"lfsc/internal/obs"
)

// TaskSpec is one task arrival as the daemon sees it: the normalised
// context vector φ ∈ [0,1]^dims and the SCNs whose coverage area the
// originating device is in. The daemon never sees the raw payload,
// matching the paper's information model.
type TaskSpec struct {
	Ctx  []float64 `json:"ctx"`
	SCNs []int     `json:"scns"`
}

// SubmitRequest submits a batch of task arrivals. Close asks the batcher
// to close the slot as soon as these tasks are in it (lockstep replay
// submits one full slot per request with Close set); without it the slot
// closes on the next tick or when a coverage list reaches KMax.
type SubmitRequest struct {
	Tasks []TaskSpec `json:"tasks"`
	Close bool       `json:"close,omitempty"`
}

// SubmitResponse returns the decision for each submitted task, parallel
// to SubmitRequest.Tasks: the assigned SCN index, or -1 when the learner
// left the task unassigned. Base is the slot-global index of the first
// task (a submission's tasks are contiguous in the slot), which reports
// must use to address tasks.
type SubmitResponse struct {
	Slot     int   `json:"slot"`
	Base     int   `json:"base"`
	Assigned []int `json:"assigned"`
}

// TaskReport is the realised outcome of one executed task: the reward u,
// the completion indicator v ∈ {0,1}, and the resource consumption q —
// exactly the bandit feedback of the paper's model.
type TaskReport struct {
	Task int     `json:"task"` // slot-global index (SubmitResponse.Base + offset)
	U    float64 `json:"u"`
	V    float64 `json:"v"`
	Q    float64 `json:"q"`
}

// ReportRequest delivers outcomes for tasks assigned in the given slot.
// Only the currently open slot accepts reports; a request is absorbed
// atomically (all reports validated, then all committed) or rejected.
type ReportRequest struct {
	Slot    int          `json:"slot"`
	Reports []TaskReport `json:"reports"`
}

// ReportResponse acknowledges an absorbed report request.
type ReportResponse struct {
	Accepted int `json:"accepted"`
}

// StepRequest is the batched round-trip of the serving data plane: one
// request carries the realised outcomes of the previously decided slot
// AND the next slot's task arrivals, so a lockstep client pays one HTTP
// round-trip per slot instead of two. Reports (addressed by Slot) are
// absorbed first, then the tasks enter the batcher — exactly the order
// the two-request protocol produces, which is what keeps the batched
// path bit-identical to the unbatched one.
type StepRequest struct {
	Slot    int          `json:"slot,omitempty"`
	Reports []TaskReport `json:"reports,omitempty"`
	Tasks   []TaskSpec   `json:"tasks"`
	Close   bool         `json:"close,omitempty"`
}

// StepResponse is the combined acknowledgement: the report part's
// absorption count (and its rejection, if any, carried in ReportError —
// the submission part proceeds regardless), then the decision for the
// submitted tasks, exactly as SubmitResponse returns it.
type StepResponse struct {
	Accepted    int    `json:"accepted"`
	ReportError string `json:"report_error,omitempty"`
	Slot        int    `json:"slot"`
	Base        int    `json:"base"`
	Assigned    []int  `json:"assigned"`
}

// Stats is the daemon's live counter snapshot (GET /v1/stats, and the
// "lfsc_serve" expvar). Latency stats reuse the obs log₂-bucket
// histogram fidelity.
type Stats struct {
	// Slot is the next slot index to be decided (= completed slots,
	// including any carried in from a restored checkpoint).
	Slot int `json:"slot"`
	// CumReward is the cumulative compound reward over all served slots,
	// including checkpoint-restored history.
	CumReward float64 `json:"cum_reward"`

	SubmittedTasks uint64 `json:"submitted_tasks"`
	DecidedTasks   uint64 `json:"decided_tasks"`
	AssignedTasks  uint64 `json:"assigned_tasks"`
	ReportedTasks  uint64 `json:"reported_tasks"`
	SlotsServed    uint64 `json:"slots_served"`

	// ShedRequests / ShedTasks count submissions refused with 429 because
	// a bounded queue was full, and the tasks they carried.
	ShedRequests uint64 `json:"shed_requests"`
	ShedTasks    uint64 `json:"shed_tasks"`
	// LateSlots counts slots whose report wait timed out with outcomes
	// still missing; LateReports counts report requests that arrived
	// after their slot had already closed.
	LateSlots   uint64 `json:"late_slots"`
	LateReports uint64 `json:"late_reports"`

	SubmitLatency obs.PhaseStat `json:"submit_latency"`
	ReportLatency obs.PhaseStat `json:"report_latency"`
	StepLatency   obs.PhaseStat `json:"step_latency"`
	// ShedLatency times the requests that were refused with 429, so
	// overload latency is visible, not just overload counts.
	ShedLatency obs.PhaseStat `json:"shed_latency"`

	// SLO is the rolling-window latency/shed-rate summary (present only
	// when the engine was configured with an obs.SLO tracker).
	SLO *obs.SLOReport `json:"slo,omitempty"`
	// Shards is the per-shard breakdown of a sharded engine (empty when
	// unsharded): routing and shed attribution by home shard, plus each
	// shard's last-slot leg durations of the two-phase barrier.
	Shards []ShardStat `json:"shards,omitempty"`
	// Scenario describes the active scenario timeline at the current
	// slot (present only when the engine was configured with one).
	Scenario *ScenarioStat `json:"scenario,omitempty"`
}

// ScenarioStat is the live view of an attached scenario timeline: its
// identity, the availability state at the next slot to be decided, and
// the cumulative event totals up to that slot. All values are pure
// lookups into the immutable timeline at the engine's atomic slot
// counter — no engine state is touched.
type ScenarioStat struct {
	// Digest identifies the timeline (config + shape + seed); Restore
	// refuses a checkpoint carrying a different digest.
	Digest string `json:"digest"`
	// Slots is the timeline period (slot indices wrap around it).
	Slots int `json:"slots"`
	// UpSCNs is the number of available SCNs at the current slot.
	UpSCNs int `json:"up_scns"`
	// Sleeps/Fails/Rejoins are cumulative event totals through the
	// current slot: scheduled sleep-window entries, churn/blockage
	// failures, and churn/blockage recoveries.
	Sleeps  uint64 `json:"sleeps"`
	Fails   uint64 `json:"fails"`
	Rejoins uint64 `json:"rejoins"`
}

// ShardStat is one learner shard's live counters.
type ShardStat struct {
	Shard int `json:"shard"`
	// SCNs is the number of SCNs the consistent-hash ring assigned here.
	SCNs        int    `json:"scns"`
	RoutedSubs  uint64 `json:"routed_subs"`
	RoutedTasks uint64 `json:"routed_tasks"`
	// ShedTasks counts tasks shed by the backpressure gates whose home
	// shard (first task's first SCN) was this one.
	ShedTasks uint64 `json:"shed_tasks"`
	// LastDecideNS / LastObserveNS are the durations of this shard's
	// legs of the most recent slot's parallel Decide and Observe stages.
	LastDecideNS  uint64 `json:"last_decide_ns"`
	LastObserveNS uint64 `json:"last_observe_ns"`
	// LastStageNS is the ingest-staging time attributed to this shard
	// (home-shard key) over the most recently closed slot's batch window.
	// Populated only when slot tracing (SlotRing) is on — staging is on
	// the ingest path, so the engine only pays for the clock reads when
	// someone asked for the trace.
	LastStageNS uint64 `json:"last_stage_ns"`
}

// errorBody is the JSON error envelope of non-2xx responses. Shed step
// requests additionally carry the report part's absorption count.
type errorBody struct {
	Error    string `json:"error"`
	Accepted int    `json:"accepted,omitempty"`
}

// ---------------------------------------------------------------------------
// Pooled request object
// ---------------------------------------------------------------------------

// maxWireBody bounds a request body; anything larger is rejected before
// it can balloon the pooled buffers.
const maxWireBody = 8 << 20

var errBodyTooLarge = errors.New("serve: request body exceeds 8 MiB")

// wireReq is one request travelling the zero-allocation data plane: the
// pooled body buffer, the decoded fields (task specs aliasing the packed
// ctx/scn arrays below — nothing per-task is allocated), the handler↔
// engine reply channel, and the engine-filled reply storage. A wireReq
// is owned by exactly one goroutine at a time: the handler decodes and
// validates, the engine reads tasks/reports and writes assignedBuf up to
// the moment it replies on resp, and the handler encodes the response
// and recycles the object. Recycling is safe immediately after the
// reply because the engine copies everything it needs (the view build
// packs contexts and coverage into engine-owned scratch) before
// replying.
type wireReq struct {
	// Decoded request.
	tasks    []TaskSpec
	close    bool
	slot     int
	hasSlot  bool
	reports  []TaskReport
	hasTasks bool
	hasReps  bool

	// Decode scratch: the body bytes and the packed per-task arrays the
	// TaskSpec slices alias ([ctxOff, ctxEnd, scnOff, scnEnd] per task).
	body   []byte
	ctxBuf []float64
	scnBuf []int
	offs   [][4]int32

	// Validation scratch (per-SCN coverage counts, handler goroutine).
	counts []int

	// cells holds each task's hypercube cell index, computed by
	// validateTasks on the handler goroutine — the indexing work the slot
	// close used to redo for the whole batch now rides in with the
	// request, already done by the time the engine stages the tasks.
	cells []int

	// Handler↔engine protocol. resp has capacity 1 so the engine never
	// blocks replying to a handler that already gave up.
	resp chan stepReply

	// Engine-filled reply storage: the submission's slice of the slot
	// assignment, copied here so the reply survives the engine's scratch
	// reuse.
	assignedBuf []int

	// Report-part result for step deliveries, filled when the engine
	// absorbs (or rejects) the reports; replied together with the
	// decision.
	repAccepted int
	repErr      error

	// Response encode scratch.
	out []byte
}

func newWireReq() *wireReq {
	return &wireReq{resp: make(chan stepReply, 1)}
}

// reset clears the decoded state while keeping every buffer's capacity,
// so a pooled wireReq decodes the next request allocation-free.
func (q *wireReq) reset() {
	q.tasks = q.tasks[:0]
	q.close = false
	q.slot = 0
	q.hasSlot = false
	q.reports = q.reports[:0]
	q.hasTasks = false
	q.hasReps = false
	q.body = q.body[:0]
	q.ctxBuf = q.ctxBuf[:0]
	q.scnBuf = q.scnBuf[:0]
	q.offs = q.offs[:0]
	q.cells = q.cells[:0]
	q.assignedBuf = q.assignedBuf[:0]
	q.repAccepted = 0
	q.repErr = nil
	q.out = q.out[:0]
}

// readBody slurps r into the pooled body buffer, growing it at most up
// to maxWireBody. Steady state (a client resubmitting similar-sized
// bodies) reads into existing capacity and allocates nothing.
func (q *wireReq) readBody(r io.Reader) error {
	q.body = q.body[:0]
	if cap(q.body) == 0 {
		q.body = make([]byte, 0, 4096)
	}
	for {
		if len(q.body) == cap(q.body) {
			if cap(q.body) >= maxWireBody {
				return errBodyTooLarge
			}
			q.body = append(q.body, 0)[:len(q.body)]
		}
		n, err := r.Read(q.body[len(q.body):cap(q.body)])
		q.body = q.body[:len(q.body)+n]
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("serve: read body: %w", err)
		}
	}
}

// ---------------------------------------------------------------------------
// Streaming decoder
// ---------------------------------------------------------------------------

// bstr views b as a string without copying. The decoder uses it to feed
// byte spans of the (stable, caller-owned) body buffer to strconv; the
// string never escapes the parsing call, so the aliasing is safe.
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// wireParser is a single-pass JSON parser over a request body. It
// understands exactly the structure the decision API needs — objects
// with known fields, arrays of numbers, arrays of flat objects, bools —
// and skips anything it does not recognise (unknown fields are the
// wire-format versioning rule; see DESIGN.md §10.1). It allocates
// nothing: numbers parse via strconv over in-place spans, and every
// container appends into the pooled wireReq buffers.
type wireParser struct {
	b []byte
	i int
}

var (
	errTruncated = errors.New("unexpected end of input")
	errSyntax    = errors.New("invalid JSON syntax")
	errTooDeep   = errors.New("value nested too deeply")
)

func (p *wireParser) fail(err error) error {
	return fmt.Errorf("serve: decode at offset %d: %w", p.i, err)
}

func (p *wireParser) ws() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

// peek returns the next non-space byte without consuming it.
func (p *wireParser) peek() (byte, error) {
	p.ws()
	if p.i >= len(p.b) {
		return 0, errTruncated
	}
	return p.b[p.i], nil
}

func (p *wireParser) expect(c byte) error {
	got, err := p.peek()
	if err != nil {
		return err
	}
	if got != c {
		return errSyntax
	}
	p.i++
	return nil
}

// lit consumes the literal s (already positioned at its first byte).
func (p *wireParser) lit(s string) error {
	if len(p.b)-p.i < len(s) || string(p.b[p.i:p.i+len(s)]) != s {
		return errSyntax
	}
	p.i += len(s)
	return nil
}

// numberSpan scans a JSON number starting at the current position and
// returns its byte span.
func (p *wireParser) numberSpan() ([]byte, error) {
	start := p.i
	if p.i < len(p.b) && (p.b[p.i] == '-' || p.b[p.i] == '+') {
		p.i++
	}
	digits := false
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+' {
			if c >= '0' && c <= '9' {
				digits = true
			}
			p.i++
			continue
		}
		break
	}
	if !digits {
		return nil, errSyntax
	}
	return p.b[start:p.i], nil
}

func (p *wireParser) float() (float64, error) {
	if _, err := p.peek(); err != nil {
		return 0, err
	}
	span, err := p.numberSpan()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(bstr(span), 64)
	if err != nil {
		return 0, errSyntax
	}
	return v, nil
}

func (p *wireParser) int() (int, error) {
	if _, err := p.peek(); err != nil {
		return 0, err
	}
	span, err := p.numberSpan()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(bstr(span), 10, 64)
	if err != nil {
		return 0, errSyntax
	}
	return int(v), nil
}

func (p *wireParser) bool() (bool, error) {
	c, err := p.peek()
	if err != nil {
		return false, err
	}
	switch c {
	case 't':
		return true, p.lit("true")
	case 'f':
		return false, p.lit("false")
	}
	return false, errSyntax
}

// fieldName parses an object key. Keys containing escape sequences are
// consumed correctly but returned as empty (treated as unknown — the
// API's field names are plain ASCII, so an escaped spelling is simply
// skipped like any foreign field).
func (p *wireParser) fieldName() ([]byte, error) {
	if err := p.expect('"'); err != nil {
		return nil, err
	}
	start := p.i
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case '"':
			name := p.b[start:p.i]
			p.i++
			return name, nil
		case '\\':
			// Escaped key: finish the string, report it as unknown.
			p.i = start
			if err := p.skipString(); err != nil {
				return nil, err
			}
			return nil, nil
		default:
			p.i++
		}
	}
	return nil, errTruncated
}

// skipString consumes a string body (opening quote already consumed is
// NOT assumed: position is at the first content byte after start). It is
// called with p.i at the first byte after the opening quote.
func (p *wireParser) skipString() error {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case '"':
			p.i++
			return nil
		case '\\':
			p.i += 2 // skip the escape introducer and its payload byte
		default:
			p.i++
		}
	}
	return errTruncated
}

// skipValue consumes any JSON value (for unknown fields), bounding the
// nesting depth so hostile input cannot exhaust the stack.
func (p *wireParser) skipValue(depth int) error {
	if depth > 32 {
		return errTooDeep
	}
	c, err := p.peek()
	if err != nil {
		return err
	}
	switch {
	case c == '"':
		p.i++
		return p.skipString()
	case c == '{':
		p.i++
		for {
			c, err := p.peek()
			if err != nil {
				return err
			}
			if c == '}' {
				p.i++
				return nil
			}
			if err := p.expect('"'); err != nil {
				return err
			}
			if err := p.skipString(); err != nil {
				return err
			}
			if err := p.expect(':'); err != nil {
				return err
			}
			if err := p.skipValue(depth + 1); err != nil {
				return err
			}
			c, err = p.peek()
			if err != nil {
				return err
			}
			if c == ',' {
				p.i++
				continue
			}
			if c != '}' {
				return errSyntax
			}
		}
	case c == '[':
		p.i++
		for {
			c, err := p.peek()
			if err != nil {
				return err
			}
			if c == ']' {
				p.i++
				return nil
			}
			if err := p.skipValue(depth + 1); err != nil {
				return err
			}
			c, err = p.peek()
			if err != nil {
				return err
			}
			if c == ',' {
				p.i++
				continue
			}
			if c != ']' {
				return errSyntax
			}
		}
	case c == 't':
		return p.lit("true")
	case c == 'f':
		return p.lit("false")
	case c == 'n':
		return p.lit("null")
	default:
		_, err := p.numberSpan()
		return err
	}
}

// array iterates a JSON array, calling elem for each element. A literal
// null is accepted as an empty array (matching encoding/json's nil-slice
// round trip).
func (p *wireParser) array(elem func() error) error {
	c, err := p.peek()
	if err != nil {
		return err
	}
	if c == 'n' {
		return p.lit("null")
	}
	if err := p.expect('['); err != nil {
		return err
	}
	c, err = p.peek()
	if err != nil {
		return err
	}
	if c == ']' {
		p.i++
		return nil
	}
	for {
		if err := elem(); err != nil {
			return err
		}
		c, err := p.peek()
		if err != nil {
			return err
		}
		if c == ',' {
			p.i++
			continue
		}
		if c == ']' {
			p.i++
			return nil
		}
		return errSyntax
	}
}

// object iterates a JSON object, calling field(name) for each member;
// field must consume the value. A nil/empty name means "unknown" and the
// value has already been skipped by the caller contract below.
func (p *wireParser) object(field func(name []byte) error) error {
	if err := p.expect('{'); err != nil {
		return err
	}
	c, err := p.peek()
	if err != nil {
		return err
	}
	if c == '}' {
		p.i++
		return nil
	}
	for {
		name, err := p.fieldName()
		if err != nil {
			return err
		}
		if err := p.expect(':'); err != nil {
			return err
		}
		if err := field(name); err != nil {
			return err
		}
		c, err := p.peek()
		if err != nil {
			return err
		}
		if c == ',' {
			p.i++
			continue
		}
		if c == '}' {
			p.i++
			return nil
		}
		return errSyntax
	}
}

var (
	errDupField  = errors.New("duplicate field")
	errBadField  = errors.New("malformed field")
	errTrailing  = errors.New("trailing data after value")
	errNotObject = errors.New("request is not a JSON object")
)

// decode parses the pooled body into the request fields. It accepts the
// superset shape {slot, reports, tasks, close}; the per-endpoint
// handlers enforce which fields must (not) be present. Task contexts and
// coverage lists pack into ctxBuf/scnBuf; q.tasks is materialised after
// the parse so buffer growth cannot invalidate the aliases. On error the
// caller must reset the wireReq — the decoded state is undefined but
// never escapes the pooled object.
func (q *wireReq) decode() error {
	p := wireParser{b: q.body}
	if c, err := p.peek(); err != nil {
		return p.fail(err)
	} else if c != '{' {
		return p.fail(errNotObject)
	}
	err := p.object(func(name []byte) error {
		switch string(name) { // no alloc: compiler optimises []byte switch
		case "tasks":
			if q.hasTasks {
				return errDupField
			}
			q.hasTasks = true
			return q.parseTasks(&p)
		case "close":
			v, err := p.bool()
			if err != nil {
				return err
			}
			q.close = v
			return nil
		case "slot":
			if q.hasSlot {
				return errDupField
			}
			q.hasSlot = true
			v, err := p.int()
			if err != nil {
				return err
			}
			q.slot = v
			return nil
		case "reports":
			if q.hasReps {
				return errDupField
			}
			q.hasReps = true
			return q.parseReports(&p)
		default:
			return p.skipValue(0)
		}
	})
	if err != nil {
		if _, ok := err.(interface{ Unwrap() error }); ok {
			return err // already positioned by fail
		}
		return p.fail(err)
	}
	p.ws()
	if p.i != len(p.b) {
		return p.fail(errTrailing)
	}
	// Materialise the task specs over the (now final) packed arrays.
	q.tasks = q.tasks[:0]
	for _, o := range q.offs {
		q.tasks = append(q.tasks, TaskSpec{
			Ctx:  q.ctxBuf[o[0]:o[1]:o[1]],
			SCNs: q.scnBuf[o[2]:o[3]:o[3]],
		})
	}
	return nil
}

func (q *wireReq) parseTasks(p *wireParser) error {
	return p.array(func() error {
		var o [4]int32
		o[0] = int32(len(q.ctxBuf))
		o[2] = int32(len(q.scnBuf))
		seenCtx, seenSCNs := false, false
		err := p.object(func(name []byte) error {
			switch string(name) {
			case "ctx":
				if seenCtx {
					return errDupField
				}
				seenCtx = true
				return p.array(func() error {
					v, err := p.float()
					if err != nil {
						return err
					}
					q.ctxBuf = append(q.ctxBuf, v)
					return nil
				})
			case "scns":
				if seenSCNs {
					return errDupField
				}
				seenSCNs = true
				return p.array(func() error {
					v, err := p.int()
					if err != nil {
						return err
					}
					q.scnBuf = append(q.scnBuf, v)
					return nil
				})
			default:
				return p.skipValue(0)
			}
		})
		if err != nil {
			return err
		}
		o[1] = int32(len(q.ctxBuf))
		o[3] = int32(len(q.scnBuf))
		q.offs = append(q.offs, o)
		return nil
	})
}

func (q *wireReq) parseReports(p *wireParser) error {
	return p.array(func() error {
		var r TaskReport
		seen := [4]bool{}
		err := p.object(func(name []byte) error {
			var idx int
			switch string(name) {
			case "task":
				idx = 0
			case "u":
				idx = 1
			case "v":
				idx = 2
			case "q":
				idx = 3
			default:
				return p.skipValue(0)
			}
			if seen[idx] {
				return errDupField
			}
			seen[idx] = true
			if idx == 0 {
				v, err := p.int()
				if err != nil {
					return err
				}
				r.Task = v
				return nil
			}
			v, err := p.float()
			if err != nil {
				return err
			}
			switch idx {
			case 1:
				r.U = v
			case 2:
				r.V = v
			case 3:
				r.Q = v
			}
			return nil
		})
		if err != nil {
			return err
		}
		q.reports = append(q.reports, r)
		return nil
	})
}

// ---------------------------------------------------------------------------
// Append-based encoders
// ---------------------------------------------------------------------------

func appendInt(b []byte, v int) []byte {
	return strconv.AppendInt(b, int64(v), 10)
}

func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendJSONString appends s as a quoted JSON string, escaping quotes,
// backslashes, and control characters.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

func appendIntArray(b []byte, vs []int) []byte {
	b = append(b, '[')
	for i, v := range vs {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendInt(b, v)
	}
	return append(b, ']')
}

func appendTasks(b []byte, tasks []TaskSpec) []byte {
	b = append(b, `"tasks":[`...)
	for i := range tasks {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"ctx":[`...)
		for j, v := range tasks[i].Ctx {
			if j > 0 {
				b = append(b, ',')
			}
			b = appendFloat(b, v)
		}
		b = append(b, `],"scns":`...)
		b = appendIntArray(b, tasks[i].SCNs)
		b = append(b, '}')
	}
	return append(b, ']')
}

func appendReports(b []byte, slot int, reports []TaskReport) []byte {
	b = append(b, `"slot":`...)
	b = appendInt(b, slot)
	b = append(b, `,"reports":[`...)
	for i := range reports {
		r := &reports[i]
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"task":`...)
		b = appendInt(b, r.Task)
		b = append(b, `,"u":`...)
		b = appendFloat(b, r.U)
		b = append(b, `,"v":`...)
		b = appendFloat(b, r.V)
		b = append(b, `,"q":`...)
		b = appendFloat(b, r.Q)
		b = append(b, '}')
	}
	return append(b, ']')
}

// appendSubmitRequest encodes {"tasks":[...],"close":bool}.
func appendSubmitRequest(b []byte, tasks []TaskSpec, close bool) []byte {
	b = append(b, '{')
	b = appendTasks(b, tasks)
	if close {
		b = append(b, `,"close":true`...)
	}
	return append(b, '}')
}

// appendReportRequest encodes {"slot":N,"reports":[...]}.
func appendReportRequest(b []byte, slot int, reports []TaskReport) []byte {
	b = append(b, '{')
	b = appendReports(b, slot, reports)
	return append(b, '}')
}

// appendStepRequest encodes the batched step: the report part (omitted
// when empty) followed by the submit part.
func appendStepRequest(b []byte, slot int, reports []TaskReport, tasks []TaskSpec, close bool) []byte {
	b = append(b, '{')
	if len(reports) > 0 {
		b = appendReports(b, slot, reports)
		b = append(b, ',')
	}
	b = appendTasks(b, tasks)
	if close {
		b = append(b, `,"close":true`...)
	}
	return append(b, '}')
}

// appendSubmitResponse encodes {"slot":s,"base":b,"assigned":[...]}.
func appendSubmitResponse(b []byte, slot, base int, assigned []int) []byte {
	b = append(b, `{"slot":`...)
	b = appendInt(b, slot)
	b = append(b, `,"base":`...)
	b = appendInt(b, base)
	b = append(b, `,"assigned":`...)
	b = appendIntArray(b, assigned)
	return append(b, '}')
}

// appendReportResponse encodes {"accepted":n}.
func appendReportResponse(b []byte, accepted int) []byte {
	b = append(b, `{"accepted":`...)
	b = appendInt(b, accepted)
	return append(b, '}')
}

// appendStepResponse encodes the combined acknowledgement.
func appendStepResponse(b []byte, accepted int, repErr string, slot, base int, assigned []int) []byte {
	b = append(b, `{"accepted":`...)
	b = appendInt(b, accepted)
	if repErr != "" {
		b = append(b, `,"report_error":`...)
		b = appendJSONString(b, repErr)
	}
	b = append(b, `,"slot":`...)
	b = appendInt(b, slot)
	b = append(b, `,"base":`...)
	b = appendInt(b, base)
	b = append(b, `,"assigned":`...)
	b = appendIntArray(b, assigned)
	return append(b, '}')
}

// appendErrorBody encodes the error envelope; accepted > 0 (a shed step
// whose report part was still absorbed) rides along.
func appendErrorBody(b []byte, msg string, accepted int) []byte {
	b = append(b, `{"error":`...)
	b = appendJSONString(b, msg)
	if accepted > 0 {
		b = append(b, `,"accepted":`...)
		b = appendInt(b, accepted)
	}
	return append(b, '}')
}

// ---------------------------------------------------------------------------
// Client-side response parsers (same machinery, reusable targets)
// ---------------------------------------------------------------------------

// parseSubmitResponse decodes a SubmitResponse, reusing into.Assigned.
func parseSubmitResponse(b []byte, into *SubmitResponse) error {
	p := wireParser{b: b}
	into.Assigned = into.Assigned[:0]
	err := p.object(func(name []byte) error {
		switch string(name) {
		case "slot":
			v, err := p.int()
			into.Slot = v
			return err
		case "base":
			v, err := p.int()
			into.Base = v
			return err
		case "assigned":
			return p.array(func() error {
				v, err := p.int()
				if err != nil {
					return err
				}
				into.Assigned = append(into.Assigned, v)
				return nil
			})
		default:
			return p.skipValue(0)
		}
	})
	if err != nil {
		return p.fail(err)
	}
	return nil
}

// parseReportResponse decodes a ReportResponse.
func parseReportResponse(b []byte, into *ReportResponse) error {
	p := wireParser{b: b}
	err := p.object(func(name []byte) error {
		if string(name) == "accepted" {
			v, err := p.int()
			into.Accepted = v
			return err
		}
		return p.skipValue(0)
	})
	if err != nil {
		return p.fail(err)
	}
	return nil
}

// parseStepResponse decodes a StepResponse, reusing into.Assigned.
func parseStepResponse(b []byte, into *StepResponse) error {
	p := wireParser{b: b}
	into.Assigned = into.Assigned[:0]
	into.ReportError = ""
	err := p.object(func(name []byte) error {
		switch string(name) {
		case "accepted":
			v, err := p.int()
			into.Accepted = v
			return err
		case "report_error":
			s, err := p.string()
			into.ReportError = s
			return err
		case "slot":
			v, err := p.int()
			into.Slot = v
			return err
		case "base":
			v, err := p.int()
			into.Base = v
			return err
		case "assigned":
			return p.array(func() error {
				v, err := p.int()
				if err != nil {
					return err
				}
				into.Assigned = append(into.Assigned, v)
				return nil
			})
		default:
			return p.skipValue(0)
		}
	})
	if err != nil {
		return p.fail(err)
	}
	return nil
}

// parseErrorBody extracts the error envelope; returns ok=false when b is
// not the envelope shape.
func parseErrorBody(b []byte) (msg string, accepted int, ok bool) {
	p := wireParser{b: b}
	err := p.object(func(name []byte) error {
		switch string(name) {
		case "error":
			s, err := p.string()
			msg = s
			return err
		case "accepted":
			v, err := p.int()
			accepted = v
			return err
		default:
			return p.skipValue(0)
		}
	})
	return msg, accepted, err == nil && msg != ""
}

// string parses a JSON string value, allocating only for the returned
// value (used on cold paths: error envelopes, report_error).
func (p *wireParser) string() (string, error) {
	if err := p.expect('"'); err != nil {
		return "", err
	}
	start := p.i
	simple := true
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case '"':
			s := string(p.b[start:p.i])
			p.i++
			if !simple {
				return unescapeJSON(s), nil
			}
			return s, nil
		case '\\':
			simple = false
			p.i += 2
		default:
			p.i++
		}
	}
	return "", errTruncated
}

// unescapeJSON handles the escapes our own encoder emits (\" \\ \u00XX);
// anything else passes through literally. Cold path only.
func unescapeJSON(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 >= len(s) {
			out = append(out, s[i])
			continue
		}
		i++
		switch s[i] {
		case '"', '\\', '/':
			out = append(out, s[i])
		case 'n':
			out = append(out, '\n')
		case 't':
			out = append(out, '\t')
		case 'r':
			out = append(out, '\r')
		case 'u':
			if i+4 < len(s) {
				if v, err := strconv.ParseUint(s[i+1:i+5], 16, 32); err == nil && v < 0x80 {
					out = append(out, byte(v))
					i += 4
					continue
				}
			}
			out = append(out, '\\', 'u')
		default:
			out = append(out, '\\', s[i])
		}
	}
	return string(out)
}
