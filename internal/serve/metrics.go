package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync/atomic"

	"lfsc/internal/obs"
)

// registerMetrics wires the engine's telemetry into the Prometheus
// registry. Every series is func-backed over counters the engine
// already maintains (or an existing obs.Histogram), so registration —
// which runs once, in NewEngine — is the only cost: the wire path
// performs not a single extra store when metrics are enabled, which is
// what keeps instrumented serving bit-identical and at 0 allocs/request
// (pinned by TestServeWireZeroAllocObs and the obs identity tests).
//
// Naming scheme (DESIGN.md §12): everything under the lfsc_ prefix;
// monotone counts end in _total with label-split families
// (lfsc_tasks_total{stage=...}, lfsc_shed_total{kind=...}); durations
// are histograms in seconds (lfsc_request_duration_seconds{endpoint});
// per-shard series carry shard="K"; window summaries live under
// lfsc_slo_*.
func (e *Engine) registerMetrics(m *obs.Metrics) {
	m.Gauge("lfsc_slot", "Next slot index to be decided.",
		nil, func() float64 { return float64(e.Slot()) })
	m.Gauge("lfsc_cum_reward", "Cumulative compound reward over all served slots.",
		nil, e.CumReward)
	m.Gauge("lfsc_pending_tasks", "Tasks accepted into the queue but not yet decided (backpressure gauge).",
		nil, func() float64 { return float64(e.pending.Load()) })
	m.Counter("lfsc_slots_served_total", "Slots decided and observed by this process (excludes checkpoint-restored history).",
		nil, counterFn(&e.slotsServed))

	m.Counter("lfsc_tasks_total", "Tasks by pipeline stage.",
		[]obs.Label{{Name: "stage", Value: "submitted"}}, counterFn(&e.submittedTasks))
	m.Counter("lfsc_tasks_total", "Tasks by pipeline stage.",
		[]obs.Label{{Name: "stage", Value: "decided"}}, counterFn(&e.decidedTasks))
	m.Counter("lfsc_tasks_total", "Tasks by pipeline stage.",
		[]obs.Label{{Name: "stage", Value: "assigned"}}, counterFn(&e.assignedTasks))
	m.Counter("lfsc_tasks_total", "Tasks by pipeline stage.",
		[]obs.Label{{Name: "stage", Value: "reported"}}, counterFn(&e.reportedTasks))

	m.Counter("lfsc_shed_total", "Load shedding by the two backpressure gates (429s).",
		[]obs.Label{{Name: "kind", Value: "requests"}}, counterFn(&e.shedRequests))
	m.Counter("lfsc_shed_total", "Load shedding by the two backpressure gates (429s).",
		[]obs.Label{{Name: "kind", Value: "tasks"}}, counterFn(&e.shedTasks))
	m.Counter("lfsc_late_total", "Report-wait timeouts (slots) and reports arriving after their slot closed (reports).",
		[]obs.Label{{Name: "kind", Value: "slots"}}, counterFn(&e.lateSlots))
	m.Counter("lfsc_late_total", "Report-wait timeouts (slots) and reports arriving after their slot closed (reports).",
		[]obs.Label{{Name: "kind", Value: "reports"}}, counterFn(&e.lateReports))

	const reqHelp = "Request latency by endpoint (shed = the 429 paths, also counted in their endpoint)."
	m.Histogram("lfsc_request_duration_seconds", reqHelp,
		[]obs.Label{{Name: "endpoint", Value: "submit"}}, &e.submitLat)
	m.Histogram("lfsc_request_duration_seconds", reqHelp,
		[]obs.Label{{Name: "endpoint", Value: "report"}}, &e.reportLat)
	m.Histogram("lfsc_request_duration_seconds", reqHelp,
		[]obs.Label{{Name: "endpoint", Value: "step"}}, &e.stepLat)
	m.Histogram("lfsc_request_duration_seconds", reqHelp,
		[]obs.Label{{Name: "endpoint", Value: "shed"}}, &e.shedLat)

	if e.router != nil {
		// Sharded plane only: one Record per slot close (Merger.Resolve),
		// scraped like every other histogram here.
		m.Histogram("lfsc_serve_merge_ns", "Duration of the cross-shard edge-merge/resolution stage per slot.",
			nil, &e.mergeLat)
	}

	for _, sh := range e.shards {
		sh := sh
		lbl := []obs.Label{{Name: "shard", Value: strconv.Itoa(sh.id)}}
		m.Gauge("lfsc_shard_owned_scns", "SCNs assigned to the shard by the consistent-hash ring.",
			lbl, func() float64 { return float64(len(sh.owned)) })
		m.Counter("lfsc_shard_routed_subs_total", "Accepted submissions attributed to their home shard.",
			lbl, counterFn(&sh.routedSubs))
		m.Counter("lfsc_shard_routed_tasks_total", "Accepted tasks attributed to their home shard.",
			lbl, counterFn(&sh.routedTasks))
		m.Counter("lfsc_shard_shed_tasks_total", "Shed tasks attributed to their home shard.",
			lbl, counterFn(&sh.shedTasks))
		m.Gauge("lfsc_shard_last_decide_seconds", "Duration of the shard's DecideLocal leg in the most recent slot.",
			lbl, secondsFn(&sh.lastDecideNS))
		m.Gauge("lfsc_shard_last_observe_seconds", "Duration of the shard's Observe leg in the most recent slot.",
			lbl, secondsFn(&sh.lastObserveNS))
		m.Gauge("lfsc_shard_last_stage_seconds", "Ingest-staging time attributed to the shard over the last slot's batch window (traced engines only).",
			lbl, secondsFn(&sh.lastStageNS))
	}

	if slo := e.cfg.SLO; slo != nil {
		m.Gauge("lfsc_slo_window_seconds", "Length of the rolling SLO window.",
			nil, func() float64 { return float64(slo.Window()) })
		m.Gauge("lfsc_slo_requests", "Requests observed in the current SLO window.",
			nil, func() float64 { return float64(slo.Report().Requests) })
		m.Gauge("lfsc_slo_shed_rate", "Shed fraction over the current SLO window.",
			nil, func() float64 { return slo.Report().ShedRate })
		m.Gauge("lfsc_slo_shed_budget", "Configured shed-rate budget.",
			nil, slo.Budget)
		m.Gauge("lfsc_slo_shed_within_budget", "1 when the window's shed rate honours the budget, else 0.",
			nil, func() float64 {
				if slo.Report().ShedWithinBudget {
					return 1
				}
				return 0
			})
		for _, q := range []struct {
			label string
			pick  func(obs.SLOReport) float64
		}{
			{"0.5", func(r obs.SLOReport) float64 { return r.P50NS }},
			{"0.99", func(r obs.SLOReport) float64 { return r.P99NS }},
			{"0.999", func(r obs.SLOReport) float64 { return r.P999NS }},
		} {
			q := q
			m.Gauge("lfsc_slo_latency_seconds", "Rolling-window request-latency quantiles.",
				[]obs.Label{{Name: "quantile", Value: q.label}},
				func() float64 { return q.pick(slo.Report()) / 1e9 })
		}
	}

	if tl := e.cfg.Scenario; tl != nil {
		// Scenario series are pure lookups into the immutable timeline at
		// the engine's atomic slot counter — scrape-time reads only, zero
		// hot-path work, same discipline as every other family here.
		m.Gauge("lfsc_scenario_up_scns", "Available SCNs at the current slot of the scenario timeline.",
			nil, func() float64 { return float64(tl.UpCount(e.Slot())) })
		m.Gauge("lfsc_scenario_period_slots", "Period of the scenario timeline in slots.",
			nil, func() float64 { return float64(tl.Slots()) })
		scenCounter := func(pick func(s, f, r uint64) uint64) func() float64 {
			return func() float64 {
				s, f, r := tl.CumEventTotals(e.Slot())
				return float64(pick(s, f, r))
			}
		}
		const evHelp = "Cumulative scenario events through the current slot (sleep-window entries, failures, recoveries)."
		m.Counter("lfsc_scenario_events_total", evHelp,
			[]obs.Label{{Name: "kind", Value: "sleep"}}, scenCounter(func(s, f, r uint64) uint64 { return s }))
		m.Counter("lfsc_scenario_events_total", evHelp,
			[]obs.Label{{Name: "kind", Value: "fail"}}, scenCounter(func(s, f, r uint64) uint64 { return f }))
		m.Counter("lfsc_scenario_events_total", evHelp,
			[]obs.Label{{Name: "kind", Value: "rejoin"}}, scenCounter(func(s, f, r uint64) uint64 { return r }))
	}

	if ring := e.cfg.SlotRing; ring != nil {
		m.Counter("lfsc_slot_trace_published_total", "Slot-lifecycle records published into the trace ring.",
			nil, func() float64 { return float64(ring.Published()) })
	}

	m.RegisterProbe(e.cfg.Probe)
}

// counterFn / secondsFn adapt an atomic to a scrape-time read function.
func counterFn(c *atomic.Uint64) func() float64 {
	return func() float64 { return float64(c.Load()) }
}

func secondsFn(c *atomic.Uint64) func() float64 {
	return func() float64 { return float64(c.Load()) / 1e9 }
}

// handleSlots serves the slot-trace ring as JSON (GET /lfsc/slots).
func (e *Engine) handleSlots(w http.ResponseWriter, r *http.Request) {
	type slotsBody struct {
		Published uint64         `json:"published"`
		Spans     []obs.SlotSpan `json:"spans"`
	}
	ring := e.cfg.SlotRing
	body := slotsBody{Published: ring.Published(), Spans: ring.Snapshot(nil)}
	if body.Spans == nil {
		body.Spans = []obs.SlotSpan{}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(body) //nolint:errcheck // client gone is fine
}
