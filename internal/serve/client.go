package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client is a thin typed wrapper over the daemon's HTTP/JSON API, used
// by the lfscload replayer and the serve tests.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient targets the daemon at addr (host:port, no scheme).
func NewClient(addr string) *Client {
	return &Client{
		base: "http://" + addr,
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
}

// ErrShed is returned when the daemon refused a submission with 429.
type ErrShed struct{ Msg string }

func (e *ErrShed) Error() string { return "serve client: shed: " + e.Msg }

// ErrLate is returned when the daemon rejected a report with 410 (the
// slot had already closed).
type ErrLate struct{ Msg string }

func (e *ErrLate) Error() string { return "serve client: late report: " + e.Msg }

func (c *Client) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("serve client: encode: %w", err)
	}
	hr, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("serve client: %s: %w", path, err)
	}
	defer hr.Body.Close()
	data, err := io.ReadAll(hr.Body)
	if err != nil {
		return fmt.Errorf("serve client: %s: read: %w", path, err)
	}
	if hr.StatusCode != http.StatusOK {
		var eb errorBody
		msg := string(data)
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		switch hr.StatusCode {
		case http.StatusTooManyRequests:
			return &ErrShed{Msg: msg}
		case http.StatusGone:
			return &ErrLate{Msg: msg}
		}
		return fmt.Errorf("serve client: %s: %d: %s", path, hr.StatusCode, msg)
	}
	if err := json.Unmarshal(data, resp); err != nil {
		return fmt.Errorf("serve client: %s: decode: %w", path, err)
	}
	return nil
}

// Submit posts task arrivals and returns the slot decision.
func (c *Client) Submit(req *SubmitRequest) (*SubmitResponse, error) {
	var resp SubmitResponse
	if err := c.post("/v1/submit", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Report posts realised outcomes for an open slot.
func (c *Client) Report(req *ReportRequest) (*ReportResponse, error) {
	var resp ReportResponse
	if err := c.post("/v1/report", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the daemon's serving counters.
func (c *Client) Stats() (*Stats, error) {
	hr, err := c.hc.Get(c.base + "/v1/stats")
	if err != nil {
		return nil, fmt.Errorf("serve client: stats: %w", err)
	}
	defer hr.Body.Close()
	var st Stats
	if err := json.NewDecoder(hr.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("serve client: stats: decode: %w", err)
	}
	return &st, nil
}
