package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptrace"
	"sync/atomic"
	"time"
)

// Client is a typed wrapper over the daemon's HTTP API, used by the
// lfscload replayer and the serve tests. It speaks the same hand-rolled
// wire codec as the daemon (append-based encoders, in-place response
// parsing into reusable buffers) and keeps a tuned transport with
// generous per-host idle connections, counting connection reuse so a
// load generator can prove it is not bottlenecking the daemon it
// measures.
type Client struct {
	base string
	hc   *http.Client
	// ctx carries the httptrace hooks that feed the reuse counters; built
	// once so the per-request cost is a single context value lookup.
	ctx context.Context

	connNew    atomic.Uint64
	connReused atomic.Uint64

	// bufs recycles per-request scratch (encode buffer, response buffer,
	// body reader). A channel, not sync.Pool: survives GC, and the client
	// is shared by many goroutines in the overload tests.
	bufs chan *cliBuf
}

// cliBuf is one in-flight request's reusable scratch.
type cliBuf struct {
	out []byte
	in  []byte
	rd  bytes.Reader
}

// NewClient targets the daemon at addr (host:port, no scheme).
func NewClient(addr string) *Client {
	tr := &http.Transport{
		// The defaults cap idle connections per host at 2, which forces a
		// concurrent load generator to re-dial constantly and measure its
		// own connection churn instead of the daemon. Raise both caps so
		// every worker keeps its connection alive.
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 128,
		IdleConnTimeout:     90 * time.Second,
	}
	c := &Client{
		base: "http://" + addr,
		hc:   &http.Client{Timeout: 30 * time.Second, Transport: tr},
		bufs: make(chan *cliBuf, 64),
	}
	c.ctx = httptrace.WithClientTrace(context.Background(), &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) {
			if info.Reused {
				c.connReused.Add(1)
			} else {
				c.connNew.Add(1)
			}
		},
	})
	return c
}

// ConnStats returns how many connections the client opened and how many
// requests rode an existing one.
func (c *Client) ConnStats() (created, reused uint64) {
	return c.connNew.Load(), c.connReused.Load()
}

func (c *Client) getBuf() *cliBuf {
	select {
	case b := <-c.bufs:
		return b
	default:
		return &cliBuf{}
	}
}

func (c *Client) putBuf(b *cliBuf) {
	b.out = b.out[:0]
	b.in = b.in[:0]
	select {
	case c.bufs <- b:
	default:
	}
}

// ErrShed is returned when the daemon refused a submission with 429. For
// step requests, Accepted carries how many reports of the piggy-backed
// report part the daemon still absorbed.
type ErrShed struct {
	Msg      string
	Accepted int
}

func (e *ErrShed) Error() string { return "serve client: shed: " + e.Msg }

// ErrLate is returned when the daemon rejected a report with 410 (the
// slot had already closed).
type ErrLate struct{ Msg string }

func (e *ErrLate) Error() string { return "serve client: late report: " + e.Msg }

// post sends b.out to path and reads the response into b.in, mapping
// non-200 statuses to the typed errors. The caller parses b.in on nil
// error.
func (c *Client) post(path string, b *cliBuf) error {
	b.rd.Reset(b.out)
	req, err := http.NewRequestWithContext(c.ctx, http.MethodPost, c.base+path, &b.rd)
	if err != nil {
		return fmt.Errorf("serve client: %s: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.ContentLength = int64(len(b.out))
	hr, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("serve client: %s: %w", path, err)
	}
	b.in, err = readInto(b.in[:0], hr.Body)
	hr.Body.Close()
	if err != nil {
		return fmt.Errorf("serve client: %s: read: %w", path, err)
	}
	if hr.StatusCode != http.StatusOK {
		msg, accepted, ok := parseErrorBody(b.in)
		if !ok {
			msg = string(b.in)
		}
		switch hr.StatusCode {
		case http.StatusTooManyRequests:
			return &ErrShed{Msg: msg, Accepted: accepted}
		case http.StatusGone:
			return &ErrLate{Msg: msg}
		}
		return fmt.Errorf("serve client: %s: %d: %s", path, hr.StatusCode, msg)
	}
	return nil
}

// readInto appends r's contents to dst, reusing its capacity.
func readInto(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// SubmitInto posts task arrivals and parses the decision into resp,
// reusing resp.Assigned. The allocation-lean path for replay loops.
func (c *Client) SubmitInto(req *SubmitRequest, resp *SubmitResponse) error {
	b := c.getBuf()
	b.out = appendSubmitRequest(b.out[:0], req.Tasks, req.Close)
	if err := c.post("/v1/submit", b); err != nil {
		c.putBuf(b)
		return err
	}
	err := parseSubmitResponse(b.in, resp)
	c.putBuf(b)
	if err != nil {
		return fmt.Errorf("serve client: /v1/submit: decode: %w", err)
	}
	return nil
}

// Submit posts task arrivals and returns the slot decision.
func (c *Client) Submit(req *SubmitRequest) (*SubmitResponse, error) {
	var resp SubmitResponse
	if err := c.SubmitInto(req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Report posts realised outcomes for an open slot.
func (c *Client) Report(req *ReportRequest) (*ReportResponse, error) {
	b := c.getBuf()
	b.out = appendReportRequest(b.out[:0], req.Slot, req.Reports)
	if err := c.post("/v1/report", b); err != nil {
		c.putBuf(b)
		return nil, err
	}
	var resp ReportResponse
	err := parseReportResponse(b.in, &resp)
	c.putBuf(b)
	if err != nil {
		return nil, fmt.Errorf("serve client: /v1/report: decode: %w", err)
	}
	return &resp, nil
}

// StepInto posts the batched round trip — outcome reports for slot
// repSlot plus the next cohort of tasks — and parses the combined
// acknowledgement into resp, reusing resp.Assigned. Pass an empty
// reports slice on the first step.
func (c *Client) StepInto(repSlot int, reports []TaskReport, tasks []TaskSpec, close bool, resp *StepResponse) error {
	b := c.getBuf()
	b.out = appendStepRequest(b.out[:0], repSlot, reports, tasks, close)
	if err := c.post("/v1/step", b); err != nil {
		c.putBuf(b)
		return err
	}
	err := parseStepResponse(b.in, resp)
	c.putBuf(b)
	if err != nil {
		return fmt.Errorf("serve client: /v1/step: decode: %w", err)
	}
	return nil
}

// Step posts the batched round trip and returns the combined response.
func (c *Client) Step(req *StepRequest) (*StepResponse, error) {
	var resp StepResponse
	if err := c.StepInto(req.Slot, req.Reports, req.Tasks, req.Close, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the daemon's serving counters.
func (c *Client) Stats() (*Stats, error) {
	hr, err := c.hc.Get(c.base + "/v1/stats")
	if err != nil {
		return nil, fmt.Errorf("serve client: stats: %w", err)
	}
	defer hr.Body.Close()
	var st Stats
	if err := json.NewDecoder(hr.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("serve client: stats: decode: %w", err)
	}
	return &st, nil
}
