package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// engineCheckpoint is the daemon's on-disk state: the serving slot
// counter, the cumulative reward accumulator (so a resumed daemon
// continues the exact same float addition sequence — hex-float identity
// with an uninterrupted run), and the learner's own v2 checkpoint as an
// embedded document.
type engineCheckpoint struct {
	Version   int             `json:"version"`
	Slot      int             `json:"slot"`
	CumReward float64         `json:"cum_reward"`
	Policy    json.RawMessage `json:"policy"`
}

const engineCheckpointVersion = 1

// checkpointNow atomically writes the engine's current state to
// cfg.CheckpointPath: serialise to a temp file in the same directory,
// fsync, rename. A crash mid-write leaves the previous checkpoint
// intact; a crash after rename leaves the new one — never a torn file.
// Engine-goroutine only.
func (e *Engine) checkpointNow() error {
	var pol bytes.Buffer
	if err := e.pol.Save(&pol); err != nil {
		return fmt.Errorf("serve: checkpoint: %w", err)
	}
	cp := engineCheckpoint{
		Version:   engineCheckpointVersion,
		Slot:      e.pol.SlotsSeen(),
		CumReward: e.CumReward(),
		Policy:    json.RawMessage(bytes.TrimSpace(pol.Bytes())),
	}
	data, err := json.Marshal(&cp)
	if err != nil {
		return fmt.Errorf("serve: checkpoint: %w", err)
	}
	return atomicWrite(e.cfg.CheckpointPath, data)
}

// atomicWrite writes data via a temp file in path's directory plus a
// rename, syncing the file before the swap.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("serve: checkpoint temp: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: checkpoint rename: %w", err)
	}
	return nil
}

// Restore loads a daemon checkpoint into the engine. Call before Start.
// The learner's Load performs full validation and commits atomically; on
// any error the engine keeps its fresh state.
func (e *Engine) Restore(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("serve: restore: %w", err)
	}
	var cp engineCheckpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return fmt.Errorf("serve: restore: %w", err)
	}
	if cp.Version != engineCheckpointVersion {
		return fmt.Errorf("serve: restore: checkpoint version %d, want %d", cp.Version, engineCheckpointVersion)
	}
	if cp.Slot < 0 {
		return fmt.Errorf("serve: restore: negative slot %d", cp.Slot)
	}
	if err := e.pol.Load(bytes.NewReader(cp.Policy)); err != nil {
		return fmt.Errorf("serve: restore: %w", err)
	}
	if got := e.pol.SlotsSeen(); got != cp.Slot {
		return fmt.Errorf("serve: restore: slot counter mismatch (engine %d, policy %d)", cp.Slot, got)
	}
	e.cumRewardBits.Store(math.Float64bits(cp.CumReward))
	e.slotAtomic.Store(int64(cp.Slot))
	return nil
}

// RestoreIfPresent restores from path when the file exists, and reports
// whether it did. A missing file is a fresh boot, not an error.
func (e *Engine) RestoreIfPresent(path string) (bool, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return false, nil
	}
	if err := e.Restore(path); err != nil {
		return false, err
	}
	return true, nil
}
