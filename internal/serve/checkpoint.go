package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// engineCheckpoint is the daemon's on-disk state: the serving slot
// counter, the cumulative reward accumulator (so a resumed daemon
// continues the exact same float addition sequence — hex-float identity
// with an uninterrupted run), and the learner's own v2 checkpoint as an
// embedded document.
type engineCheckpoint struct {
	Version   int     `json:"version"`
	Slot      int     `json:"slot"`
	CumReward float64 `json:"cum_reward"`
	// Scenario is the digest of the active scenario timeline, when one
	// is attached: a resumed daemon must replay the identical dynamics
	// for bit-identical continuation, so Restore refuses a mismatch.
	// Empty for static-topology checkpoints (and pre-scenario files).
	Scenario string          `json:"scenario,omitempty"`
	Policy   json.RawMessage `json:"policy"`
}

const engineCheckpointVersion = 1

// shardCheckpoint is one shard's on-disk state in a sharded checkpoint
// generation: the shard's identity within the layout plus its partial
// learner document (which itself carries the owned SCN list).
type shardCheckpoint struct {
	Version int             `json:"version"`
	Shard   int             `json:"shard"`
	Shards  int             `json:"shards"`
	Slot    int             `json:"slot"`
	Policy  json.RawMessage `json:"policy"`
}

// checkpointManifest sits at CheckpointPath for a sharded engine and
// commits one generation of shard files: the shard files are written
// first under the new generation number, then the manifest is renamed
// into place — the atomic commit point — and only then is the previous
// generation deleted. A crash anywhere leaves the manifest pointing at a
// complete generation. Distinguished from a legacy single-file
// engineCheckpoint by the presence of the shards field.
type checkpointManifest struct {
	Version    int     `json:"version"`
	Shards     int     `json:"shards"`
	Generation uint64  `json:"generation"`
	Slot       int     `json:"slot"`
	CumReward  float64 `json:"cum_reward"`
	// Scenario mirrors engineCheckpoint.Scenario (the manifest is the
	// commit point, so the digest lives here, not in the shard files).
	Scenario string `json:"scenario,omitempty"`
}

// scenarioDigest is the engine's scenario identity for checkpoints
// (empty when serving the static topology).
func (e *Engine) scenarioDigest() string {
	if e.cfg.Scenario == nil {
		return ""
	}
	return e.cfg.Scenario.Digest()
}

// checkScenario validates a checkpoint's scenario digest against the
// engine's. An empty checkpoint digest is accepted into any engine (the
// upgrade path for static and pre-scenario checkpoints); anything else
// must match exactly — resuming under different dynamics would silently
// diverge from the uninterrupted run.
func (e *Engine) checkScenario(digest string) error {
	if digest == "" {
		return nil
	}
	if have := e.scenarioDigest(); have != digest {
		if have == "" {
			return fmt.Errorf("serve: restore: checkpoint was taken under scenario %s, engine has none — pass the same -scenario file", digest)
		}
		return fmt.Errorf("serve: restore: checkpoint scenario %s != engine scenario %s", digest, have)
	}
	return nil
}

// shardFilePath names shard k's file of generation gen for the manifest
// at path.
func shardFilePath(path string, gen uint64, k int) string {
	return fmt.Sprintf("%s.g%d.s%d", path, gen, k)
}

// checkpointNow atomically writes the engine's current state to
// cfg.CheckpointPath: serialise to a temp file in the same directory,
// fsync, rename. A crash mid-write leaves the previous checkpoint
// intact; a crash after rename leaves the new one — never a torn file.
// A sharded engine writes one file per non-empty shard plus the manifest
// (see checkpointManifest for the commit order). Engine-goroutine only.
func (e *Engine) checkpointNow() error {
	if e.pol == nil {
		return e.checkpointShardedNow()
	}
	var pol bytes.Buffer
	if err := e.pol.Save(&pol); err != nil {
		return fmt.Errorf("serve: checkpoint: %w", err)
	}
	cp := engineCheckpoint{
		Version:   engineCheckpointVersion,
		Slot:      e.pol.SlotsSeen(),
		CumReward: e.CumReward(),
		Scenario:  e.scenarioDigest(),
		Policy:    json.RawMessage(bytes.TrimSpace(pol.Bytes())),
	}
	data, err := json.Marshal(&cp)
	if err != nil {
		return fmt.Errorf("serve: checkpoint: %w", err)
	}
	return atomicWrite(e.cfg.CheckpointPath, data)
}

// checkpointShardedNow writes the next sharded generation. Shard files
// land before the manifest rename (the commit), the previous generation
// is removed after it; a failure part-way leaves orphan files of the
// uncommitted generation, overwritten on the next attempt.
func (e *Engine) checkpointShardedNow() error {
	path := e.cfg.CheckpointPath
	gen := e.ckptGen + 1
	slot := e.slotsSeen()
	for k, sh := range e.shards {
		if sh.pol == nil {
			continue
		}
		var pol bytes.Buffer
		if err := sh.pol.Save(&pol); err != nil {
			return fmt.Errorf("serve: checkpoint shard %d: %w", k, err)
		}
		doc, err := json.Marshal(&shardCheckpoint{
			Version: engineCheckpointVersion,
			Shard:   k,
			Shards:  len(e.shards),
			Slot:    slot,
			Policy:  json.RawMessage(bytes.TrimSpace(pol.Bytes())),
		})
		if err != nil {
			return fmt.Errorf("serve: checkpoint shard %d: %w", k, err)
		}
		if err := atomicWrite(shardFilePath(path, gen, k), doc); err != nil {
			return err
		}
	}
	data, err := json.Marshal(&checkpointManifest{
		Version:    engineCheckpointVersion,
		Shards:     len(e.shards),
		Generation: gen,
		Slot:       slot,
		CumReward:  e.CumReward(),
		Scenario:   e.scenarioDigest(),
	})
	if err != nil {
		return fmt.Errorf("serve: checkpoint manifest: %w", err)
	}
	if err := atomicWrite(path, data); err != nil {
		return err
	}
	if e.ckptGen > 0 {
		for k := range e.shards {
			os.Remove(shardFilePath(path, e.ckptGen, k)) //nolint:errcheck // best-effort GC of the superseded generation
		}
	}
	e.ckptGen = gen
	return nil
}

// atomicWrite writes data via a temp file in path's directory plus a
// rename, syncing the file before the swap.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("serve: checkpoint temp: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: checkpoint rename: %w", err)
	}
	return nil
}

// Restore loads a daemon checkpoint into the engine. Call before Start.
// Both layouts are understood, with the engine's own layout deciding how
// they apply:
//
//   - A legacy single-file checkpoint loads into an unsharded engine as
//     always, and also into a sharded one (each shard's partial learner
//     takes its owned rows from the full document) — the upgrade path
//     from a pre-sharding deployment.
//   - A sharded manifest requires a sharded engine with the identical
//     shard count (the consistent-hash mapping then reproduces the owned
//     sets the shard files carry); restoring it into an unsharded engine
//     or a different shard count is an error, not a reshard.
//
// Unsharded restore validates fully before committing; sharded restore
// validates every shard file's metadata up front, but a learner-level
// rejection in a later shard can leave earlier shards loaded — callers
// treat any Restore error as fatal for the engine (lfscd exits), so no
// half-restored engine ever serves.
func (e *Engine) Restore(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("serve: restore: %w", err)
	}
	// Sniff the layout: only manifests carry a shards field.
	var sniff struct {
		Shards int `json:"shards"`
	}
	if err := json.Unmarshal(data, &sniff); err != nil {
		return fmt.Errorf("serve: restore: %w", err)
	}
	if sniff.Shards > 0 {
		return e.restoreSharded(path, data)
	}
	var cp engineCheckpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return fmt.Errorf("serve: restore: %w", err)
	}
	if cp.Version != engineCheckpointVersion {
		return fmt.Errorf("serve: restore: checkpoint version %d, want %d", cp.Version, engineCheckpointVersion)
	}
	if cp.Slot < 0 {
		return fmt.Errorf("serve: restore: negative slot %d", cp.Slot)
	}
	if err := e.checkScenario(cp.Scenario); err != nil {
		return err
	}
	if e.pol == nil {
		// Legacy full document into a sharded engine: every shard loads
		// its owned rows from the same document.
		for k, sh := range e.shards {
			if sh.pol == nil {
				continue
			}
			if err := sh.pol.Load(bytes.NewReader(cp.Policy)); err != nil {
				return fmt.Errorf("serve: restore shard %d: %w", k, err)
			}
			if got := sh.pol.SlotsSeen(); got != cp.Slot {
				return fmt.Errorf("serve: restore: shard %d slot counter mismatch (engine %d, policy %d)", k, cp.Slot, got)
			}
		}
	} else {
		if err := e.pol.Load(bytes.NewReader(cp.Policy)); err != nil {
			return fmt.Errorf("serve: restore: %w", err)
		}
		if got := e.pol.SlotsSeen(); got != cp.Slot {
			return fmt.Errorf("serve: restore: slot counter mismatch (engine %d, policy %d)", cp.Slot, got)
		}
	}
	e.cumRewardBits.Store(math.Float64bits(cp.CumReward))
	e.slotAtomic.Store(int64(cp.Slot))
	return nil
}

// restoreSharded loads a manifest-committed generation of shard files.
func (e *Engine) restoreSharded(path string, data []byte) error {
	var man checkpointManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return fmt.Errorf("serve: restore: manifest: %w", err)
	}
	if man.Version != engineCheckpointVersion {
		return fmt.Errorf("serve: restore: manifest version %d, want %d", man.Version, engineCheckpointVersion)
	}
	if man.Slot < 0 {
		return fmt.Errorf("serve: restore: negative slot %d", man.Slot)
	}
	if err := e.checkScenario(man.Scenario); err != nil {
		return err
	}
	if e.pol != nil {
		return fmt.Errorf("serve: restore: sharded checkpoint (%d shards) into an unsharded engine — boot with -shards=%d",
			man.Shards, man.Shards)
	}
	if man.Shards != len(e.shards) {
		return fmt.Errorf("serve: restore: checkpoint has %d shards, engine has %d — resharding is not supported",
			man.Shards, len(e.shards))
	}
	// Read and structurally validate every shard file before any learner
	// state moves.
	docs := make([]*shardCheckpoint, len(e.shards))
	for k, sh := range e.shards {
		if sh.pol == nil {
			continue
		}
		buf, err := os.ReadFile(shardFilePath(path, man.Generation, k))
		if err != nil {
			return fmt.Errorf("serve: restore shard %d: %w", k, err)
		}
		var sc shardCheckpoint
		if err := json.Unmarshal(buf, &sc); err != nil {
			return fmt.Errorf("serve: restore shard %d: %w", k, err)
		}
		if sc.Version != engineCheckpointVersion || sc.Shard != k || sc.Shards != man.Shards {
			return fmt.Errorf("serve: restore shard %d: file identity mismatch (version %d, shard %d/%d)",
				k, sc.Version, sc.Shard, sc.Shards)
		}
		if sc.Slot != man.Slot {
			return fmt.Errorf("serve: restore shard %d: slot %d disagrees with manifest %d", k, sc.Slot, man.Slot)
		}
		docs[k] = &sc
	}
	for k, sh := range e.shards {
		if sh.pol == nil {
			continue
		}
		if err := sh.pol.Load(bytes.NewReader(docs[k].Policy)); err != nil {
			return fmt.Errorf("serve: restore shard %d: %w", k, err)
		}
		if got := sh.pol.SlotsSeen(); got != man.Slot {
			return fmt.Errorf("serve: restore: shard %d slot counter mismatch (manifest %d, policy %d)", k, man.Slot, got)
		}
	}
	e.cumRewardBits.Store(math.Float64bits(man.CumReward))
	e.slotAtomic.Store(int64(man.Slot))
	e.ckptGen = man.Generation
	return nil
}

// RestoreIfPresent restores from path when the file exists, and reports
// whether it did. A missing file is a fresh boot, not an error.
func (e *Engine) RestoreIfPresent(path string) (bool, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return false, nil
	}
	if err := e.Restore(path); err != nil {
		return false, err
	}
	return true, nil
}
