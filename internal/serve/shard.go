package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"lfsc/internal/core"
	"lfsc/internal/obs"
	"lfsc/internal/parallel"
	"lfsc/internal/policy"
	"lfsc/internal/rng"
)

// engineShard is one learner shard of a sharded engine: a partial LFSC
// learner owning a consistent-hash-assigned SCN group, plus routing
// counters. The shard's learner holds its own weights, multipliers, RNG
// streams, and per-SCN scratch; pol is nil when no SCN hashed to this
// shard (possible when Shards approaches the SCN count).
type engineShard struct {
	id    int
	pol   *core.LFSC
	owned []int

	// Routing accounting (atomics: written under the engine's mu, read by
	// the status handler's goroutine). shedTasks counts tasks shed by the
	// backpressure gates, attributed to the submission's home shard
	// (written on handler goroutines — the shed paths never hold mu).
	routedSubs  atomic.Uint64
	routedTasks atomic.Uint64
	shedTasks   atomic.Uint64

	// Last-slot durations of this shard's DecideLocal and Observe legs
	// (written by the fan-out workers, read by status/metrics/trace): the
	// per-shard view of the two-phase barrier, where a straggling shard
	// shows up as the one entry dominating the slot.
	lastDecideNS  atomic.Uint64
	lastObserveNS atomic.Uint64

	// Staged-ingest timing, traced engines only (cfg.SlotRing != nil):
	// stageAccNS accumulates the staging time of submissions whose home
	// shard (first task's first SCN) is this one, under the engine's mu;
	// decideSlot publishes it into lastStageNS at each close for
	// status/trace readers.
	stageAccNS  uint64
	lastStageNS atomic.Uint64
}

// buildShards constructs the sharded learner plane: a consistent-hash
// router over cfg.Shards shards, one partial learner per non-empty shard
// (every shard's learner derives its per-SCN streams from the same root —
// rng Derive is pure, so the streams are bit-identical to an unsharded
// learner's), and the merger stitched over all of them. The per-shard
// learners run with Workers=1: the engine parallelises across shards, and
// nesting the core's own fan-out inside that would oversubscribe.
func buildShards(coreCfg core.Config, seed uint64, shards int) ([]*engineShard, *core.Merger, []int, *Router, error) {
	router := NewRouter(shards)
	owner, ownedOf := router.OwnerMap(coreCfg.SCNs)
	shardCfg := coreCfg
	shardCfg.Workers = 1
	es := make([]*engineShard, shards)
	learners := make([]*core.LFSC, shards)
	for k := 0; k < shards; k++ {
		es[k] = &engineShard{id: k, owned: ownedOf[k]}
		if len(ownedOf[k]) == 0 {
			continue
		}
		pol, err := core.NewPartial(shardCfg, rng.New(seed).Derive(3), ownedOf[k])
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("serve: shard %d learner: %w", k, err)
		}
		es[k].pol = pol
		learners[k] = pol
	}
	merger, err := core.NewMerger(coreCfg, learners, owner)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("serve: merger: %w", err)
	}
	// The resolution stage's edge merge parallelises across the same
	// worker budget as the per-shard fan-out: heavy slots run the
	// deterministic tournament reduction instead of the single-threaded
	// k-way heap merge (bit-identical output — see assign.
	// TournamentMergeInto).
	merger.SetMergeWorkers(shards)
	return es, merger, owner, router, nil
}

// slotsSeen returns the learner plane's slot clock. All shards advance
// their clocks in lockstep (every shard Observes every slot), so the
// first non-empty shard speaks for all; restore verifies the invariant.
func (e *Engine) slotsSeen() int {
	if e.pol != nil {
		return e.pol.SlotsSeen()
	}
	for _, sh := range e.shards {
		if sh.pol != nil {
			return sh.pol.SlotsSeen()
		}
	}
	return 0
}

// decide runs the slot's decision across the learner plane. Unsharded:
// the learner's own Decide. Sharded: the two-phase barrier — every shard
// computes its SCNs' probabilities, candidate samples, and pre-sorted
// edge lists in parallel (phase one), then the merger's resolution
// produces the global greedy assignment (phase two, with the edge merge
// itself parallelised as a deterministic tournament on heavy slots).
// The resolver code is shared with the unsharded path, so the assignment
// is bit-identical at any shard count.
func (e *Engine) decide(view *policy.SlotView) []int {
	if e.pol != nil {
		return e.pol.Decide(view)
	}
	parallel.ForDynamic(len(e.shards), len(e.shards), func(k int) {
		if sh := e.shards[k]; sh.pol != nil {
			t0 := time.Now()
			sh.pol.DecideLocal(view)
			sh.lastDecideNS.Store(uint64(time.Since(t0)))
		}
	})
	t0 := time.Now()
	assigned := e.merger.Resolve(view)
	e.lastMergeNS = uint64(time.Since(t0))
	e.mergeLat.Record(e.lastMergeNS)
	return assigned
}

// observe feeds the slot's realised feedback to the learner plane. Each
// shard updates only its own SCNs' weights and multipliers (fb is
// read-only; every learner buckets it with private scratch), so shards
// run in parallel with no synchronisation beyond the barrier.
func (e *Engine) observe(view *policy.SlotView, assigned []int, fb *policy.Feedback) {
	if e.pol != nil {
		e.pol.Observe(view, assigned, fb)
		return
	}
	parallel.ForDynamic(len(e.shards), len(e.shards), func(k int) {
		if sh := e.shards[k]; sh.pol != nil {
			t0 := time.Now()
			sh.pol.Observe(view, assigned, fb)
			sh.lastObserveNS.Store(uint64(time.Since(t0)))
		}
	})
}

// snapshotPolicy aggregates the learner plane into one policy snapshot.
// Each partial learner fills only its owned SCNs' entries of the shared
// per-SCN buffers, so calling every shard in sequence composes the full
// per-SCN view; the owner map is stamped alongside so /lfsc/status and
// snapshot sinks can attribute rows to shards.
func (e *Engine) snapshotPolicy(into *obs.PolicySnapshot) {
	if e.pol != nil {
		e.pol.Snapshot(into)
		into.Owner = into.Owner[:0]
		return
	}
	for _, sh := range e.shards {
		if sh.pol != nil {
			sh.pol.Snapshot(into)
		}
	}
	owner := obs.GrowInts(&into.Owner, len(e.owner))
	copy(owner, e.owner)
}

// accountRouting attributes an accepted submission to its home shard (the
// shard owning the first task's first visible SCN — the same key the
// client-side ShardPool routes by). Called once per ingested submission,
// under mu.
func (e *Engine) accountRouting(q *wireReq) {
	if e.router == nil || len(q.tasks) == 0 || len(q.tasks[0].SCNs) == 0 {
		return
	}
	sh := e.shards[e.router.Shard(q.tasks[0].SCNs[0])]
	sh.routedSubs.Add(1)
	sh.routedTasks.Add(uint64(len(q.tasks)))
}

// accountShed attributes a shed submission's tasks to its home shard
// (the same first-task first-SCN key accountRouting and the client-side
// ShardPool route by). Called from the shed paths on handler
// goroutines; the router mapping is immutable and the counter atomic,
// so no lock is needed.
func (e *Engine) accountShed(q *wireReq) {
	if e.router == nil || len(q.tasks) == 0 || len(q.tasks[0].SCNs) == 0 {
		return
	}
	e.shards[e.router.Shard(q.tasks[0].SCNs[0])].shedTasks.Add(uint64(len(q.tasks)))
}
