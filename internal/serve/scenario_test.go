package serve

import (
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"lfsc/internal/obs"
	"lfsc/internal/rng"
	"lfsc/internal/scenario"
	"lfsc/internal/sim"
	"lfsc/internal/trace"
)

// serveChurnText exercises every event kind on the 4-SCN test topology:
// a scheduled sleep on SCN 0, random churn on SCNs 2-3, a diurnal
// capacity cycle, and a budget cycle on SCN 1.
const serveChurnText = `
scns = 4

[sleep]
scns = 0
period = 16
duration = 5

[churn]
scns = 2-3
mean-up = 20
mean-down = 6

[diurnal]
scns = *
period = 30
min-cap = 0.5

[budget]
scns = 1
period = 24
alpha-min = 0.6
beta-min = 0.7
`

// churnTimeline builds the serve test timeline for the 4-SCN scenario.
func churnTimeline(t *testing.T, slots, capacity int, seed uint64) *scenario.Timeline {
	t.Helper()
	cfg, err := scenario.Parse([]byte(serveChurnText))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	tl, err := scenario.Build(cfg, 4, slots, capacity, seed)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return tl
}

// scenarioTestScenario is testScenario with the churn timeline attached.
func scenarioTestScenario(t *testing.T, T int, seed uint64) ReplayScenario {
	sc := testScenario(T, seed)
	sc.Scenario = churnTimeline(t, T, sc.Capacity, 9)
	return sc
}

// TestScenarioLockstepThreeWayIdentity extends the end-to-end
// equivalence guarantee to a churning topology: with the same scenario
// timeline attached to the daemon and to an offline sim.Run, the
// client-side, daemon-side, and offline cumulative rewards must be
// hex-float identical — at one shard and at four.
func TestScenarioLockstepThreeWayIdentity(t *testing.T) {
	const T, seed = 250, 42
	for _, shards := range []int{1, 4} {
		sc := scenarioTestScenario(t, T, seed)

		eng, srv, client := bootDaemon(t, sc, func(c *Config) { c.Shards = shards })
		rep, err := NewReplayer(sc)
		if err != nil {
			t.Fatal(err)
		}
		st, err := rep.Run(client, 0, T, nil)
		if err != nil {
			t.Fatal(err)
		}
		eng.Stop()
		srv.Close()
		if st.ShedSlots != 0 {
			t.Fatalf("shards=%d: lockstep replay shed %d slots", shards, st.ShedSlots)
		}

		simSc := &sim.Scenario{
			Cfg: sim.Config{T: T, Capacity: sc.Capacity, Alpha: sc.Alpha, Beta: sc.Beta, H: sc.H},
			NewGenerator: func(r *rng.Stream) (trace.Generator, error) {
				return trace.NewSynthetic(sc.Synthetic, r)
			},
			EnvCfg: sc.EnvCfg,
			Dyn:    sc.Scenario,
		}
		series, err := sim.Run(simSc, sim.LFSCFactory(nil), seed)
		if err != nil {
			t.Fatal(err)
		}
		offline := 0.0
		for _, r := range series.Reward {
			offline += r
		}

		if got := eng.CumReward(); got != offline {
			t.Fatalf("shards=%d: daemon cum reward %x != offline sim %x", shards, got, offline)
		}
		if got := rep.CumReward(); got != offline {
			t.Fatalf("shards=%d: client cum reward %x != offline sim %x", shards, got, offline)
		}
	}
}

// TestScenarioServeSmokeResume is the churn variant of the
// kill-and-resume check (driven by `make scenario-smoke`): a daemon
// serving under an active scenario is killed mid-churn and resumed from
// its periodic checkpoint; the resumed run must land bit-identical to an
// uninterrupted one, and the checkpoint must round-trip the scenario
// digest — restoring under no scenario or under a different timeline is
// refused.
func TestScenarioServeSmokeResume(t *testing.T) {
	const T, seed, every = 200, 7, 100
	sc := scenarioTestScenario(t, T, seed)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "lfscd.ckpt")

	// Run A: serve 120 slots under churn, then die without checkpointing.
	engA, srvA, clientA := bootDaemon(t, sc, func(c *Config) {
		c.CheckpointPath = ckpt
		c.CheckpointEvery = every
	})
	repA, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repA.Run(clientA, 0, 120, nil); err != nil {
		t.Fatal(err)
	}
	engA.Abort()
	srvA.Close()

	// A fresh engine with no scenario must refuse the checkpoint.
	noScen := testScenario(T, seed)
	engBad := buildDaemon(t, noScen, nil)
	if _, err := engBad.RestoreIfPresent(ckpt); err == nil {
		t.Fatal("restore without the scenario should fail (checkpoint carries a digest)")
	} else if !strings.Contains(err.Error(), "scenario") {
		t.Fatalf("want scenario mismatch error, got: %v", err)
	}

	// A different timeline (same shape, different seed) must be refused too.
	wrong := testScenario(T, seed)
	wrong.Scenario = churnTimeline(t, T, wrong.Capacity, 10)
	engWrong := buildDaemon(t, wrong, nil)
	if _, err := engWrong.RestoreIfPresent(ckpt); err == nil {
		t.Fatal("restore under a different timeline should fail")
	}

	// Run B: the correct scenario resumes from slot 100 and finishes.
	engB, srvB, clientB, restored := resumeDaemon(t, sc, ckpt, func(c *Config) {
		c.CheckpointPath = ckpt
		c.CheckpointEvery = every
	})
	defer srvB.Close()
	if !restored {
		t.Fatal("no checkpoint found after kill")
	}
	if engB.Slot() != every {
		t.Fatalf("restored at slot %d, want %d", engB.Slot(), every)
	}
	repB, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repB.Run(clientB, engB.Slot(), T, nil); err != nil {
		t.Fatal(err)
	}
	engB.Stop()

	// Run C: the uninterrupted control.
	engC, srvC, clientC := bootDaemon(t, sc, nil)
	defer srvC.Close()
	repC, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repC.Run(clientC, 0, T, nil); err != nil {
		t.Fatal(err)
	}
	engC.Stop()

	if got, want := engB.CumReward(), engC.CumReward(); got != want {
		t.Fatalf("kill-and-resume under churn diverged: resumed %x vs uninterrupted %x", got, want)
	}
}

// TestScenarioObservability pins the telemetry satellite: an engine
// serving under a scenario reports it on /v1/stats (digest, up count,
// event totals), /lfsc/status (the scenario line), and /metrics (the
// lfsc_scenario_* families).
func TestScenarioObservability(t *testing.T) {
	const T, seed = 64, 5
	sc := scenarioTestScenario(t, T, seed)
	m := obs.NewMetrics()
	eng, srv, client := bootDaemon(t, sc, func(c *Config) { c.Metrics = m })
	defer srv.Close()
	rep, err := NewReplayer(sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Run(client, 0, T, nil); err != nil {
		t.Fatal(err)
	}

	st := eng.Stats()
	if st.Scenario == nil {
		t.Fatal("Stats().Scenario missing with a timeline attached")
	}
	if st.Scenario.Digest != sc.Scenario.Digest() {
		t.Fatalf("stats digest %q != timeline %q", st.Scenario.Digest, sc.Scenario.Digest())
	}
	if st.Scenario.UpSCNs < 1 || st.Scenario.UpSCNs > 4 {
		t.Fatalf("up count %d out of range", st.Scenario.UpSCNs)
	}
	if st.Scenario.Sleeps == 0 || st.Scenario.Fails == 0 {
		t.Fatalf("event totals should be non-zero after %d slots of churn: %+v", T, *st.Scenario)
	}

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	status := get("/lfsc/status")
	if !strings.Contains(status, "scenario "+sc.Scenario.Digest()) {
		t.Fatalf("/lfsc/status missing scenario line:\n%s", status)
	}
	prom := get("/metrics")
	for _, want := range []string{
		"lfsc_scenario_up_scns",
		"lfsc_scenario_period_slots",
		`lfsc_scenario_events_total{kind="sleep"}`,
		`lfsc_scenario_events_total{kind="fail"}`,
		`lfsc_scenario_events_total{kind="rejoin"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, prom)
		}
	}
	eng.Stop()
}
