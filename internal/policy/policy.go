// Package policy defines the contract between the time-slotted simulator
// and the decision algorithms (LFSC, Oracle, vUCB, FML, Random): what a
// policy sees at the start of a slot (SlotView — tasks, contexts, coverage,
// never the environment's hidden means), what it must produce (an
// assignment), and what feedback it receives afterwards (realised u/v/q for
// executed tasks only, the paper's bandit feedback model).
package policy

import (
	"fmt"

	"lfsc/internal/task"
)

// TaskView is one task as visible to a SCN in a slot.
type TaskView struct {
	// Index is the slot-global task index (into the slot's task list).
	Index int
	// Cell is the hypercube index of the task's context, precomputed by
	// the simulator with the run's shared partition.
	Cell int
	// Ctx is the task's normalised context (for context-aware baselines
	// that do not use the shared partition).
	Ctx task.Context
}

// SCNView is the slot information local to one SCN: its coverage set
// D_{m,t} with contexts.
type SCNView struct {
	// Tasks are the tasks within this SCN's coverage this slot.
	Tasks []TaskView
}

// SlotView is everything observable at the start of a slot.
type SlotView struct {
	// T is the slot index (0-based).
	T int
	// NumTasks is the number of distinct tasks in the slot.
	NumTasks int
	// SCNs holds the per-SCN coverage views.
	SCNs []SCNView
}

// Exec is the realised feedback for one executed (SCN, task) pair.
type Exec struct {
	// SCN executed the task.
	SCN int
	// Task is the slot-global task index.
	Task int
	// Cell is the task's hypercube index.
	Cell int
	// U is the realised reward in [0,1].
	U float64
	// V is the realised completion indicator (1 completed, 0 blocked).
	V float64
	// Q is the realised resource consumption.
	Q float64
}

// Compound returns the realised compound reward u·v/q of the execution.
func (e Exec) Compound() float64 {
	if e.Q <= 0 {
		return 0
	}
	return e.U * e.V / e.Q
}

// Feedback delivers the slot's executions to the policy. Only executed
// tasks appear — unchosen tasks reveal nothing (bandit feedback).
type Feedback struct {
	Execs []Exec
}

// Policy is a task offloading decision algorithm.
//
// The simulator calls Decide then Observe exactly once per slot, in order.
// Implementations may keep per-slot scratch state between the two calls
// (e.g. LFSC stores its selection probabilities for the importance-weighted
// estimators).
type Policy interface {
	// Name returns the display name used in reports.
	Name() string
	// Decide returns assigned[task] = SCN index or -1 for each slot-global
	// task index. The returned assignment must respect the per-SCN
	// capacity and assign tasks only to covering SCNs.
	Decide(view *SlotView) []int
	// Observe delivers the feedback for the assignment Decide produced.
	Observe(view *SlotView, assigned []int, fb *Feedback)
}

// ValidateAssignment checks that an assignment is structurally legal for a
// view: SCN indices in range, every assigned task inside the SCN's
// coverage, and per-SCN counts at most capacity.
func ValidateAssignment(view *SlotView, assigned []int, capacity int) error {
	if len(assigned) != view.NumTasks {
		return fmt.Errorf("policy: assignment length %d != %d tasks", len(assigned), view.NumTasks)
	}
	counts := make([]int, len(view.SCNs))
	covered := make([]map[int]bool, len(view.SCNs))
	for m := range view.SCNs {
		covered[m] = make(map[int]bool, len(view.SCNs[m].Tasks))
		for _, tv := range view.SCNs[m].Tasks {
			covered[m][tv.Index] = true
		}
	}
	for taskIdx, m := range assigned {
		if m == -1 {
			continue
		}
		if m < 0 || m >= len(view.SCNs) {
			return fmt.Errorf("policy: task %d assigned to invalid SCN %d", taskIdx, m)
		}
		if !covered[m][taskIdx] {
			return fmt.Errorf("policy: task %d not covered by SCN %d", taskIdx, m)
		}
		counts[m]++
		if counts[m] > capacity {
			return fmt.Errorf("policy: SCN %d exceeds capacity %d", m, capacity)
		}
	}
	return nil
}
