// Package policy defines the contract between the time-slotted simulator
// and the decision algorithms (LFSC, Oracle, vUCB, FML, Random): what a
// policy sees at the start of a slot (SlotView — coverage, cells, contexts,
// never the environment's hidden means), what it must produce (an
// assignment), and what feedback it receives afterwards (realised u/v/q for
// executed tasks only, the paper's bandit feedback model).
//
// The view is columnar: per-task attributes (hypercube cell, context) are
// stored once, slot-globally, and each SCN's coverage set D_{m,t} is a list
// of task indices into those columns. This keeps the per-slot view build
// O(tasks + coverage entries) with zero fan-out copies, and lets the hot
// kernel (internal/core) index per-cell aggregates directly.
package policy

import (
	"fmt"

	"lfsc/internal/task"
)

// SCNView is the slot information local to one SCN: its coverage set
// D_{m,t}.
type SCNView struct {
	// Cover lists the slot-global indices of the tasks within this SCN's
	// coverage this slot, in ascending task order. Rows typically alias the
	// generator's coverage arena and are valid only for the current slot.
	Cover []int
}

// SlotView is everything observable at the start of a slot.
type SlotView struct {
	// T is the slot index (0-based).
	T int
	// NumTasks is the number of distinct tasks in the slot.
	NumTasks int
	// Cells[i] is the hypercube index of task i's context, precomputed by
	// the simulator with the run's shared partition. len(Cells) == NumTasks.
	Cells []int
	// SCNs holds the per-SCN coverage views.
	SCNs []SCNView

	// Scenario dynamics (internal/scenario), attached by the view builder
	// when a timeline is active and nil otherwise — nil preserves the
	// static fast paths bit-for-bit. Masked (down) SCNs are expressed as
	// empty Cover rows, so policies need no availability flag here; the
	// three fields below carry the remaining per-SCN state. All slices are
	// indexed by SCN and alias immutable timeline rows.
	//
	// Caps is the effective per-SCN capacity c_n(t), always in
	// [1, nominal]. AlphaMul/BetaMul scale the per-SCN QoS floor α and
	// resource budget β for this slot (each in (0,1]).
	Caps     []int
	AlphaMul []float64
	BetaMul  []float64

	// Contexts are materialized lazily: most policies (LFSC, Oracle, vUCB,
	// FML, Random) only need Cells, so the simulator defers packing the raw
	// context vectors until a policy asks.
	ctxs []task.Context
	src  CtxSource
}

// CtxSource supplies per-task context vectors on demand (implemented by the
// simulator's slot scratch). MaterializeCtxs is called at most once per slot.
type CtxSource interface {
	// MaterializeCtxs returns the per-task contexts of the current slot,
	// indexed by slot-global task index.
	MaterializeCtxs() []task.Context
}

// SetCtxs installs eagerly materialized contexts (and clears any source).
func (v *SlotView) SetCtxs(ctxs []task.Context) {
	v.ctxs = ctxs
	v.src = nil
}

// SetCtxSource installs a lazy context source for the current slot and
// drops any previously materialized contexts.
func (v *SlotView) SetCtxSource(src CtxSource) {
	v.ctxs = nil
	v.src = src
}

// CapAt returns SCN m's effective capacity this slot: the scenario's
// c_n(t) clamped to the nominal capacity when dynamics are attached,
// the nominal capacity otherwise.
func (v *SlotView) CapAt(m, capacity int) int {
	if v.Caps != nil {
		if c := v.Caps[m]; c < capacity {
			return c
		}
	}
	return capacity
}

// Ctxs returns the per-task context vectors, indexed by slot-global task
// index, materializing them from the source on first use. Returns nil when
// the view carries no contexts (cell-only views built by tests).
func (v *SlotView) Ctxs() []task.Context {
	if v.ctxs == nil && v.src != nil {
		v.ctxs = v.src.MaterializeCtxs()
	}
	return v.ctxs
}

// Exec is the realised feedback for one executed (SCN, task) pair.
type Exec struct {
	// SCN executed the task.
	SCN int
	// Task is the slot-global task index.
	Task int
	// Cell is the task's hypercube index.
	Cell int
	// U is the realised reward in [0,1].
	U float64
	// V is the realised completion indicator (1 completed, 0 blocked).
	V float64
	// Q is the realised resource consumption.
	Q float64
}

// Compound returns the realised compound reward u·v/q of the execution.
func (e Exec) Compound() float64 {
	if e.Q <= 0 {
		return 0
	}
	return e.U * e.V / e.Q
}

// Feedback delivers the slot's executions to the policy. Only executed
// tasks appear — unchosen tasks reveal nothing (bandit feedback). Execs are
// ordered by ascending slot-global task index (both the simulator and the
// serving engine produce them in that order); policies may rely on it.
type Feedback struct {
	Execs []Exec
}

// Policy is a task offloading decision algorithm.
//
// The simulator calls Decide then Observe exactly once per slot, in order.
// Implementations may keep per-slot scratch state between the two calls
// (e.g. LFSC stores its selection probabilities for the importance-weighted
// estimators).
type Policy interface {
	// Name returns the display name used in reports.
	Name() string
	// Decide returns assigned[task] = SCN index or -1 for each slot-global
	// task index. The returned assignment must respect the per-SCN
	// capacity and assign tasks only to covering SCNs.
	Decide(view *SlotView) []int
	// Observe delivers the feedback for the assignment Decide produced.
	Observe(view *SlotView, assigned []int, fb *Feedback)
}

// ValidateAssignment checks that an assignment is structurally legal for a
// view: SCN indices in range, every assigned task inside the SCN's
// coverage, and per-SCN counts at most the effective capacity (the
// scenario's c_n(t) when view.Caps is attached, capacity otherwise).
func ValidateAssignment(view *SlotView, assigned []int, capacity int) error {
	if len(assigned) != view.NumTasks {
		return fmt.Errorf("policy: assignment length %d != %d tasks", len(assigned), view.NumTasks)
	}
	counts := make([]int, len(view.SCNs))
	covered := make([]map[int]bool, len(view.SCNs))
	for m := range view.SCNs {
		covered[m] = make(map[int]bool, len(view.SCNs[m].Cover))
		for _, idx := range view.SCNs[m].Cover {
			covered[m][idx] = true
		}
	}
	for taskIdx, m := range assigned {
		if m == -1 {
			continue
		}
		if m < 0 || m >= len(view.SCNs) {
			return fmt.Errorf("policy: task %d assigned to invalid SCN %d", taskIdx, m)
		}
		if !covered[m][taskIdx] {
			return fmt.Errorf("policy: task %d not covered by SCN %d", taskIdx, m)
		}
		counts[m]++
		if lim := view.CapAt(m, capacity); counts[m] > lim {
			return fmt.Errorf("policy: SCN %d exceeds capacity %d", m, lim)
		}
	}
	return nil
}
