package policy

import (
	"math"
	"testing"

	"lfsc/internal/task"
)

func view2x3() *SlotView {
	// SCN0 sees tasks {0,1}, SCN1 sees tasks {1,2}.
	return &SlotView{
		T:        5,
		NumTasks: 3,
		SCNs: []SCNView{
			{Tasks: []TaskView{{Index: 0, Cell: 0}, {Index: 1, Cell: 1}}},
			{Tasks: []TaskView{{Index: 1, Cell: 1}, {Index: 2, Cell: 2}}},
		},
	}
}

func TestValidateAssignmentAccepts(t *testing.T) {
	v := view2x3()
	for _, asn := range [][]int{
		{-1, -1, -1},
		{0, -1, 1},
		{0, 1, 1},
		{-1, 0, 1},
	} {
		if err := ValidateAssignment(v, asn, 2); err != nil {
			t.Fatalf("valid assignment %v rejected: %v", asn, err)
		}
	}
}

func TestValidateAssignmentRejects(t *testing.T) {
	v := view2x3()
	cases := []struct {
		name string
		asn  []int
		cap  int
	}{
		{"wrong length", []int{0, 1}, 2},
		{"invalid SCN", []int{5, -1, -1}, 2},
		{"negative SCN", []int{-2, -1, -1}, 2},
		{"uncovered task", []int{1, -1, -1}, 2}, // task 0 not covered by SCN 1
		{"over capacity", []int{0, 0, -1}, 1},
	}
	for _, c := range cases {
		if err := ValidateAssignment(v, c.asn, c.cap); err == nil {
			t.Fatalf("%s: assignment %v accepted", c.name, c.asn)
		}
	}
}

func TestExecCompound(t *testing.T) {
	e := Exec{U: 0.6, V: 1, Q: 1.5}
	if got := e.Compound(); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("compound = %v", got)
	}
	e.V = 0
	if e.Compound() != 0 {
		t.Fatal("failed execution should have zero compound reward")
	}
	e = Exec{U: 1, V: 1, Q: 0}
	if e.Compound() != 0 {
		t.Fatal("zero consumption must not divide by zero")
	}
}

func TestTaskViewCarriesContext(t *testing.T) {
	tv := TaskView{Index: 3, Cell: 7, Ctx: task.Context{0.1, 0.2, 0.3}}
	if len(tv.Ctx) != 3 || tv.Cell != 7 {
		t.Fatal("TaskView fields wrong")
	}
}

func TestValidateAssignmentEmptyView(t *testing.T) {
	v := &SlotView{NumTasks: 0, SCNs: []SCNView{{}, {}}}
	if err := ValidateAssignment(v, []int{}, 1); err != nil {
		t.Fatalf("empty assignment rejected: %v", err)
	}
}
