package policy

import (
	"math"
	"testing"

	"lfsc/internal/task"
)

func view2x3() *SlotView {
	// SCN0 sees tasks {0,1}, SCN1 sees tasks {1,2}.
	return &SlotView{
		T:        5,
		NumTasks: 3,
		Cells:    []int{0, 1, 2},
		SCNs: []SCNView{
			{Cover: []int{0, 1}},
			{Cover: []int{1, 2}},
		},
	}
}

func TestValidateAssignmentAccepts(t *testing.T) {
	v := view2x3()
	for _, asn := range [][]int{
		{-1, -1, -1},
		{0, -1, 1},
		{0, 1, 1},
		{-1, 0, 1},
	} {
		if err := ValidateAssignment(v, asn, 2); err != nil {
			t.Fatalf("valid assignment %v rejected: %v", asn, err)
		}
	}
}

func TestValidateAssignmentRejects(t *testing.T) {
	v := view2x3()
	cases := []struct {
		name string
		asn  []int
		cap  int
	}{
		{"wrong length", []int{0, 1}, 2},
		{"invalid SCN", []int{5, -1, -1}, 2},
		{"negative SCN", []int{-2, -1, -1}, 2},
		{"uncovered task", []int{1, -1, -1}, 2}, // task 0 not covered by SCN 1
		{"over capacity", []int{0, 0, -1}, 1},
	}
	for _, c := range cases {
		if err := ValidateAssignment(v, c.asn, c.cap); err == nil {
			t.Fatalf("%s: assignment %v accepted", c.name, c.asn)
		}
	}
}

func TestExecCompound(t *testing.T) {
	e := Exec{U: 0.6, V: 1, Q: 1.5}
	if got := e.Compound(); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("compound = %v", got)
	}
	e.V = 0
	if e.Compound() != 0 {
		t.Fatal("failed execution should have zero compound reward")
	}
	e = Exec{U: 1, V: 1, Q: 0}
	if e.Compound() != 0 {
		t.Fatal("zero consumption must not divide by zero")
	}
}

// staticCtxSource counts materializations to pin the at-most-once contract.
type staticCtxSource struct {
	ctxs  []task.Context
	calls int
}

func (s *staticCtxSource) MaterializeCtxs() []task.Context {
	s.calls++
	return s.ctxs
}

func TestCtxsLazyMaterialization(t *testing.T) {
	v := view2x3()
	src := &staticCtxSource{ctxs: []task.Context{{0.1}, {0.2}, {0.3}}}
	v.SetCtxSource(src)
	if src.calls != 0 {
		t.Fatal("source materialized before Ctxs was called")
	}
	got := v.Ctxs()
	if len(got) != 3 || got[1][0] != 0.2 {
		t.Fatalf("Ctxs = %v", got)
	}
	v.Ctxs()
	if src.calls != 1 {
		t.Fatalf("source materialized %d times, want once", src.calls)
	}
	// Re-arming the source for a new slot resets the cache.
	v.SetCtxSource(src)
	v.Ctxs()
	if src.calls != 2 {
		t.Fatalf("source not re-materialized after SetCtxSource, calls=%d", src.calls)
	}
}

func TestCtxsEagerAndEmpty(t *testing.T) {
	v := view2x3()
	if v.Ctxs() != nil {
		t.Fatal("cell-only view should have nil contexts")
	}
	v.SetCtxs([]task.Context{{1}, {2}, {3}})
	if got := v.Ctxs(); len(got) != 3 || got[2][0] != 3 {
		t.Fatalf("Ctxs = %v", got)
	}
}

func TestValidateAssignmentEmptyView(t *testing.T) {
	v := &SlotView{NumTasks: 0, SCNs: []SCNView{{}, {}}}
	if err := ValidateAssignment(v, []int{}, 1); err != nil {
		t.Fatalf("empty assignment rejected: %v", err)
	}
}
