package obs

import (
	"testing"
	"time"
)

// TestSLOWindowAggregation drives the tracker with an injected clock:
// requests land in per-second buckets and a report at second S
// aggregates exactly the epochs in (S-window, S].
func TestSLOWindowAggregation(t *testing.T) {
	s := NewSLO(5, 0.25)
	const base = int64(1000)
	// Seconds base..base+4: 10 requests of 1ms each, 2 of them shed.
	for sec := base; sec < base+5; sec++ {
		for i := 0; i < 10; i++ {
			s.RecordAt(sec, uint64(time.Millisecond), i < 2)
		}
	}

	rep := s.ReportAt(base + 4)
	if rep.WindowSec != 5 || rep.Requests != 50 || rep.Shed != 10 {
		t.Fatalf("full window: %+v", rep)
	}
	if rep.ShedRate != 0.2 || !rep.ShedWithinBudget || rep.ShedBudget != 0.25 {
		t.Fatalf("shed accounting: %+v", rep)
	}
	if rep.MeanNS != float64(time.Millisecond) {
		t.Fatalf("mean = %v, want 1ms", rep.MeanNS)
	}
	// All samples are 1ms, so every percentile sits in the same log₂
	// bucket; the estimate is its midpoint, within the documented bound.
	for _, p := range []float64{rep.P50NS, rep.P99NS, rep.P999NS} {
		ratio := p / float64(time.Millisecond)
		if ratio <= 0.75 || ratio > 1.5 {
			t.Fatalf("percentile %v outside the log₂ error bound of 1ms", p)
		}
	}
	if rep.P50NS != rep.P999NS {
		t.Fatalf("uniform samples yielded different percentiles: %+v", rep)
	}

	// One window later only the still-covered seconds contribute; two
	// windows later everything has aged out.
	if rep := s.ReportAt(base + 8); rep.Requests != 10 {
		t.Fatalf("aged window kept %d requests, want 10 (only second base+4)", rep.Requests)
	}
	if rep := s.ReportAt(base + 20); rep.Requests != 0 || rep.ShedRate != 0 || !rep.ShedWithinBudget {
		t.Fatalf("idle window not empty: %+v", rep)
	}
}

// TestSLOBudgetBreach: a window shedding beyond the budget flags it.
func TestSLOBudgetBreach(t *testing.T) {
	s := NewSLO(10, 0.01)
	for i := 0; i < 100; i++ {
		s.RecordAt(50, 1000, i < 5) // 5% shed against a 1% budget
	}
	rep := s.ReportAt(50)
	if rep.ShedRate != 0.05 || rep.ShedWithinBudget {
		t.Fatalf("5%% shed against 1%% budget not flagged: %+v", rep)
	}
}

// TestSLOBucketReuse: when wall time laps the ring, a bucket's old
// second is zeroed before the new one records, and stale recorders
// (a second older than the bucket's current epoch) are dropped.
func TestSLOBucketReuse(t *testing.T) {
	s := NewSLO(3, 0)
	ringLen := int64(len(s.buckets))
	s.RecordAt(7, 100, false)
	s.RecordAt(7+ringLen, 200, false) // same bucket index, newer second
	rep := s.ReportAt(7 + ringLen)
	if rep.Requests != 1 || rep.MeanNS != 200 {
		t.Fatalf("reused bucket kept stale samples: %+v", rep)
	}
	// A record stamped with the lapped old second must not resurrect it.
	s.RecordAt(7, 300, false)
	if rep := s.ReportAt(7 + ringLen); rep.Requests != 1 {
		t.Fatalf("stale-second record leaked into a reused bucket: %+v", rep)
	}
}

// TestSLODefaultsAndNil: windowSec ≤ 0 defaults to 60; every method is
// nil-safe; Record with a wall clock works end-to-end.
func TestSLODefaultsAndNil(t *testing.T) {
	if w := NewSLO(0, 0.1).Window(); w != 60 {
		t.Fatalf("default window = %d, want 60", w)
	}
	var s *SLO
	s.Record(time.Now(), true)
	s.RecordAt(1, 1, false)
	if s.Report().Requests != 0 || s.Budget() != 0 || s.Window() != 0 {
		t.Fatal("nil SLO reported data")
	}

	live := NewSLO(60, 0.5)
	live.Record(time.Now().Add(-2*time.Millisecond), false)
	live.Record(time.Now(), true)
	rep := live.Report()
	if rep.Requests != 2 || rep.Shed != 1 {
		t.Fatalf("wall-clock recording lost samples: %+v", rep)
	}
	if rep.P50NS <= 0 {
		t.Fatalf("no latency recorded: %+v", rep)
	}
}
