package obs

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramRecordAndStat(t *testing.T) {
	var h Histogram
	// 10 samples at ~1µs, 1 sample at ~1ms: p50 must sit in the µs decade
	// and p99 in the ms decade.
	for i := 0; i < 10; i++ {
		h.Record(1000)
	}
	h.Record(1 << 20)
	st := h.Stat("req")
	if st.Phase != "req" || st.Count != 11 {
		t.Fatalf("stat = %+v", st)
	}
	if want := uint64(10*1000 + 1<<20); st.TotalNS != want {
		t.Fatalf("TotalNS = %d, want %d", st.TotalNS, want)
	}
	if st.P50NS < 512 || st.P50NS > 2048 {
		t.Fatalf("p50 = %v, want within the 1µs bucket", st.P50NS)
	}
	if st.P99NS < float64(1<<19) {
		t.Fatalf("p99 = %v, want in the outlier bucket", st.P99NS)
	}
	if h.Count() != 11 || h.TotalNS() != st.TotalNS {
		t.Fatal("accessors disagree with Stat")
	}
	h.Reset()
	if h.Count() != 0 || h.TotalNS() != 0 || h.Stat("req").Count != 0 {
		t.Fatal("Reset left residue")
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	h.Observe(time.Now().Add(-time.Millisecond))
	if h.Count() != 1 || h.TotalNS() < uint64(time.Millisecond) {
		t.Fatalf("Observe recorded count=%d total=%d", h.Count(), h.TotalNS())
	}
	// A start in the future (clock skew) must clamp to zero, not wrap.
	h.Observe(time.Now().Add(time.Hour))
	if h.Count() != 2 || h.TotalNS() > uint64(time.Second) {
		t.Fatalf("future start wrapped: total=%d", h.TotalNS())
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Record(5)
	h.Observe(time.Now())
	h.Reset()
	if h.Count() != 0 || h.TotalNS() != 0 {
		t.Fatal("nil histogram reported samples")
	}
	if st := h.Stat("x"); st.Phase != "x" || st.Count != 0 {
		t.Fatalf("nil Stat = %+v", st)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(uint64(i))
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("lost samples: %d", h.Count())
	}
}
