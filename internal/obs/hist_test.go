package obs

import (
	"math"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestHistogramRecordAndStat(t *testing.T) {
	var h Histogram
	// 10 samples at ~1µs, 1 sample at ~1ms: p50 must sit in the µs decade
	// and p99 in the ms decade.
	for i := 0; i < 10; i++ {
		h.Record(1000)
	}
	h.Record(1 << 20)
	st := h.Stat("req")
	if st.Phase != "req" || st.Count != 11 {
		t.Fatalf("stat = %+v", st)
	}
	if want := uint64(10*1000 + 1<<20); st.TotalNS != want {
		t.Fatalf("TotalNS = %d, want %d", st.TotalNS, want)
	}
	if st.P50NS < 512 || st.P50NS > 2048 {
		t.Fatalf("p50 = %v, want within the 1µs bucket", st.P50NS)
	}
	if st.P99NS < float64(1<<19) {
		t.Fatalf("p99 = %v, want in the outlier bucket", st.P99NS)
	}
	if h.Count() != 11 || h.TotalNS() != st.TotalNS {
		t.Fatal("accessors disagree with Stat")
	}
	h.Reset()
	if h.Count() != 0 || h.TotalNS() != 0 || h.Stat("req").Count != 0 {
		t.Fatal("Reset left residue")
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	h.Observe(time.Now().Add(-time.Millisecond))
	if h.Count() != 1 || h.TotalNS() < uint64(time.Millisecond) {
		t.Fatalf("Observe recorded count=%d total=%d", h.Count(), h.TotalNS())
	}
	// A start in the future (clock skew) must clamp to zero, not wrap.
	h.Observe(time.Now().Add(time.Hour))
	if h.Count() != 2 || h.TotalNS() > uint64(time.Second) {
		t.Fatalf("future start wrapped: total=%d", h.TotalNS())
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Record(5)
	h.Observe(time.Now())
	h.Reset()
	if h.Count() != 0 || h.TotalNS() != 0 {
		t.Fatal("nil histogram reported samples")
	}
	if st := h.Stat("x"); st.Phase != "x" || st.Count != 0 {
		t.Fatalf("nil Stat = %+v", st)
	}
}

// TestHistPercentileAccuracy pins the log₂-bucket percentile error bound
// against exact order statistics: for any sample set and any quantile,
// estimate/exact ∈ (0.75, 1.5] — the estimate is the midpoint 1.5·2^(b-1)
// of the bucket [2^(b-1), 2^b) that holds the exact rank-⌈q·n⌉ sample.
// Checked across distributions with very different shapes (heavy right
// tail, near-uniform, bimodal) so the bound isn't an artifact of one
// sample layout.
func TestHistPercentileAccuracy(t *testing.T) {
	distributions := map[string]func(x uint64) uint64{
		// Heavy tail: mostly µs-scale with a long right tail into seconds.
		"heavy-tail": func(x uint64) uint64 { return 1 + (x%1000)*(1+x%97)*(1+x%1009) },
		// Near-uniform over [1, 10^7).
		"uniform": func(x uint64) uint64 { return 1 + x%10_000_000 },
		// Bimodal: fast path at ~2µs, slow path at ~40ms.
		"bimodal": func(x uint64) uint64 {
			if x%10 < 8 {
				return 2000 + x%500
			}
			return 40_000_000 + x%1_000_000
		},
	}
	const n = 20000
	for name, draw := range distributions {
		t.Run(name, func(t *testing.T) {
			var h Histogram
			exact := make([]uint64, 0, n)
			x := uint64(88172645463325252)
			for i := 0; i < n; i++ {
				// xorshift64: deterministic, well-mixed sample driver.
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				v := draw(x)
				h.Record(v)
				exact = append(exact, v)
			}
			sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })

			var snap [histBuckets]uint64
			for b := range snap {
				snap[b] = h.hist[b].Load()
			}
			for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
				rank := int(math.Ceil(q * n))
				want := float64(exact[rank-1])
				got := histPercentile(&snap, q)
				ratio := got / want
				if ratio <= 0.75 || ratio > 1.5 {
					t.Errorf("q=%g: estimate %v / exact %v = %.4f, outside (0.75, 1.5]",
						q, got, want, ratio)
				}
			}
			// The Stat view exposes the same estimator at 50/90/99/99.9.
			st := h.Stat("x")
			for _, pair := range []struct {
				q   float64
				got float64
			}{{0.5, st.P50NS}, {0.9, st.P90NS}, {0.99, st.P99NS}, {0.999, st.P999NS}} {
				if got := histPercentile(&snap, pair.q); got != pair.got {
					t.Errorf("Stat p%g = %v, histPercentile = %v", pair.q*100, pair.got, got)
				}
			}
		})
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(uint64(i))
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("lost samples: %d", h.Count())
	}
}
