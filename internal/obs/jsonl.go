package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// JSONLWriter streams observability events as one JSON object per line —
// the machine-readable sibling of the status page. It is a SnapshotSink;
// the mutex makes it safe for the concurrent runs of RunAll (snapshots
// arrive every K slots per run, so contention is negligible).
//
// Event schema: every line carries a "type" field.
//
//	{"type":"snapshot","data":{PolicySnapshot}}
//	{"type":"phases","wall_ns":N,"data":[PhaseStat...]}
//	{"type":"run","policy":"LFSC","slots":N,"cum_reward":R,"elapsed_ns":E}
//	{"type":"slot","data":{SlotSpan}}
type JSONLWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLWriter wraps w (typically a file) as an event sink.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{enc: json.NewEncoder(w)}
}

// snapshotEvent and friends are the wire forms of the JSONL events.
type snapshotEvent struct {
	Type string          `json:"type"`
	Data *PolicySnapshot `json:"data"`
}

type phasesEvent struct {
	Type   string      `json:"type"`
	WallNS int64       `json:"wall_ns"`
	Data   []PhaseStat `json:"data"`
}

type runEvent struct {
	Type      string  `json:"type"`
	Policy    string  `json:"policy"`
	Slots     int64   `json:"slots"`
	CumReward float64 `json:"cum_reward"`
	ElapsedNS int64   `json:"elapsed_ns"`
}

// OnSnapshot implements SnapshotSink.
func (w *JSONLWriter) OnSnapshot(s *PolicySnapshot) {
	w.write(snapshotEvent{Type: "snapshot", Data: s})
}

// slotEvent is the wire form of a slot-trace record.
type slotEvent struct {
	Type string    `json:"type"`
	Data *SlotSpan `json:"data"`
}

// OnSlotSpan implements SlotSink: every published slot-trace record
// becomes one JSONL line. Note the encoding allocates and the write can
// block, and the ring publishes from the serving engine's slot path —
// the sink is a debugging/audit tool, not a steady-state default (the
// ring itself stays allocation-free; only this sink pays the encode).
func (w *JSONLWriter) OnSlotSpan(s *SlotSpan) {
	w.write(slotEvent{Type: "slot", Data: s})
}

// WritePhases emits the end-of-run phase breakdown.
func (w *JSONLWriter) WritePhases(stats []PhaseStat, wall time.Duration) {
	w.write(phasesEvent{Type: "phases", WallNS: wall.Nanoseconds(), Data: stats})
}

// WriteRuns emits one summary line per registered run.
func (w *JSONLWriter) WriteRuns(g *Registry) {
	for _, r := range g.Runs() {
		w.write(runEvent{
			Type: "run", Policy: r.Policy, Slots: r.Slots(),
			CumReward: r.CumReward(), ElapsedNS: r.Elapsed().Nanoseconds(),
		})
	}
}

// Err returns the first write error, if any.
func (w *JSONLWriter) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *JSONLWriter) write(ev any) {
	w.mu.Lock()
	if err := w.enc.Encode(ev); err != nil && w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}
