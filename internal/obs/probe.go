// Package obs is the observability layer of the runtime: per-phase timing
// probes, policy-state snapshots, live run telemetry, and the sinks that
// surface them (JSONL files, an HTTP status endpoint, report tables).
//
// Everything in the package obeys two contracts inherited from the perf
// work of PR 1–2:
//
//   - Zero overhead when disabled. Every hot-path hook is a method on a
//     possibly-nil *Probe (or *RunStatus); the disabled path is a single
//     nil check, no interface dispatch, no allocation. The concrete
//     pointer is deliberate — an interface value would cost an itab load
//     per call and could not be tested against nil as cheaply.
//   - No effect on results. Probes only read clocks and counters; they
//     never touch an RNG stream or any learner state, so a probed run is
//     bit-identical to an unprobed one (pinned by internal/sim tests).
//
// When enabled, the recording path is also allocation-free and lock-free:
// counts, nanosecond sums, and fixed log-scale histogram buckets are
// pre-allocated atomics, safe for concurrent runs sharing one Probe.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Phase identifies one stage of the per-slot simulation loop.
type Phase uint8

const (
	// PhaseGen is workload generation: environment advance + slot draw
	// (+ multi-slot injection when that extension is active).
	PhaseGen Phase = iota
	// PhaseView is slot-view construction: context packing and hypercube
	// indexing into the policy-facing SlotView.
	PhaseView
	// PhaseDecide is policy.Decide (plus strict validation when enabled).
	PhaseDecide
	// PhaseRealize is ground-truth execution: common-random-number draws,
	// reward/violation accounting, metrics recording, and the MBS fallback.
	PhaseRealize
	// PhaseObserve is policy.Observe: bandit feedback, weight and
	// multiplier updates.
	PhaseObserve
	// PhaseSnapshot is the observability layer's own sampling work
	// (policy introspection + runtime stats, every K slots) — tracked so
	// the probe's phase sums still account for the full wall clock.
	PhaseSnapshot
	// NumPhases is the number of probe phases.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"gen", "view", "decide", "realize", "observe", "snapshot",
}

// String returns the short phase name used in tables and JSONL.
func (ph Phase) String() string {
	if int(ph) < len(phaseNames) {
		return phaseNames[ph]
	}
	return "unknown"
}

// histBuckets is the number of log2 duration buckets per phase. Bucket b
// holds durations with bits.Len64(ns) == b, i.e. [2^(b-1), 2^b); 40
// buckets cover 1 ns to ~9 minutes, far beyond any per-slot phase.
const histBuckets = 40

// phaseCounter is the pre-allocated recording state of one phase.
// All fields are atomics: several concurrent runs (RunAll) may share one
// Probe, and the HTTP status handler reads while runs write.
type phaseCounter struct {
	count atomic.Uint64
	sumNS atomic.Uint64
	hist  [histBuckets]atomic.Uint64
}

// Probe records per-phase wall time of the simulation loop. The zero
// value is ready to use; a nil *Probe is valid and disables every method
// (the single-nil-check fast path).
type Probe struct {
	phases [NumPhases]phaseCounter
	slots  atomic.Uint64
}

// NewProbe returns an empty probe.
func NewProbe() *Probe { return &Probe{} }

// Start opens a timing span. On a nil probe it returns the zero time and
// costs one nil check.
func (p *Probe) Start() time.Time {
	if p == nil {
		return time.Time{}
	}
	return time.Now()
}

// Lap closes the current span against phase ph and opens the next one,
// returning the new span start. On a nil probe it is a no-op.
func (p *Probe) Lap(ph Phase, last time.Time) time.Time {
	if p == nil {
		return time.Time{}
	}
	now := time.Now()
	d := now.Sub(last)
	if d < 0 {
		d = 0
	}
	c := &p.phases[ph]
	c.count.Add(1)
	c.sumNS.Add(uint64(d))
	c.hist[bucketOf(uint64(d))].Add(1)
	return now
}

// EndSlot marks one completed slot (the denominator for slot rates).
func (p *Probe) EndSlot() {
	if p == nil {
		return
	}
	p.slots.Add(1)
}

// Slots returns the number of completed slots recorded so far.
func (p *Probe) Slots() uint64 {
	if p == nil {
		return 0
	}
	return p.slots.Load()
}

// TotalNS returns the summed duration of all recorded phase spans.
func (p *Probe) TotalNS() uint64 {
	if p == nil {
		return 0
	}
	var total uint64
	for ph := range p.phases {
		total += p.phases[ph].sumNS.Load()
	}
	return total
}

// Reset zeroes every counter (between runs sharing a probe).
func (p *Probe) Reset() {
	if p == nil {
		return
	}
	for ph := range p.phases {
		c := &p.phases[ph]
		c.count.Store(0)
		c.sumNS.Store(0)
		for b := range c.hist {
			c.hist[b].Store(0)
		}
	}
	p.slots.Store(0)
}

// bucketOf maps a nanosecond duration to its log2 histogram bucket.
func bucketOf(ns uint64) int {
	b := bits.Len64(ns)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketMidNS is the geometric representative of bucket b: 1.5·2^(b-1),
// the midpoint of [2^(b-1), 2^b).
func bucketMidNS(b int) float64 {
	if b == 0 {
		return 0
	}
	return 1.5 * math.Pow(2, float64(b-1))
}

// PhaseStat is the exported summary of one phase, suitable for tables and
// JSONL. Percentiles are approximate (log2-bucket resolution, ~±50%
// within a bucket — the right fidelity for an always-on histogram).
type PhaseStat struct {
	Phase   string  `json:"phase"`
	Count   uint64  `json:"count"`
	TotalNS uint64  `json:"total_ns"`
	MeanNS  float64 `json:"mean_ns"`
	P50NS   float64 `json:"p50_ns"`
	P90NS   float64 `json:"p90_ns"`
	P99NS   float64 `json:"p99_ns"`
}

// Stats snapshots every phase with at least one recorded span. Reads are
// atomic per counter but not mutually consistent across counters — fine
// for monitoring, which is the intended use.
func (p *Probe) Stats() []PhaseStat {
	if p == nil {
		return nil
	}
	out := make([]PhaseStat, 0, NumPhases)
	for ph := Phase(0); ph < NumPhases; ph++ {
		c := &p.phases[ph]
		n := c.count.Load()
		if n == 0 {
			continue
		}
		var hist [histBuckets]uint64
		for b := range hist {
			hist[b] = c.hist[b].Load()
		}
		sum := c.sumNS.Load()
		out = append(out, PhaseStat{
			Phase:   ph.String(),
			Count:   n,
			TotalNS: sum,
			MeanNS:  float64(sum) / float64(n),
			P50NS:   histPercentile(&hist, 0.50),
			P90NS:   histPercentile(&hist, 0.90),
			P99NS:   histPercentile(&hist, 0.99),
		})
	}
	return out
}

// histPercentile returns the approximate q-quantile of a bucketed sample.
func histPercentile(hist *[histBuckets]uint64, q float64) float64 {
	var total uint64
	for _, n := range hist {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for b, n := range hist {
		seen += n
		if seen >= rank {
			return bucketMidNS(b)
		}
	}
	return bucketMidNS(histBuckets - 1)
}
