// Package obs is the observability layer of the runtime: per-phase timing
// probes, policy-state snapshots, live run telemetry, and the sinks that
// surface them (JSONL files, an HTTP status endpoint, report tables).
//
// Everything in the package obeys two contracts inherited from the perf
// work of PR 1–2:
//
//   - Zero overhead when disabled. Every hot-path hook is a method on a
//     possibly-nil *Probe (or *RunStatus); the disabled path is a single
//     nil check, no interface dispatch, no allocation. The concrete
//     pointer is deliberate — an interface value would cost an itab load
//     per call and could not be tested against nil as cheaply.
//   - No effect on results. Probes only read clocks and counters; they
//     never touch an RNG stream or any learner state, so a probed run is
//     bit-identical to an unprobed one (pinned by internal/sim tests).
//
// When enabled, the recording path is also allocation-free and lock-free:
// counts, nanosecond sums, and fixed log-scale histogram buckets are
// pre-allocated atomics, safe for concurrent runs sharing one Probe.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Phase identifies one stage of the per-slot simulation loop.
type Phase uint8

const (
	// PhaseGen is workload generation: environment advance + slot draw
	// (+ multi-slot injection when that extension is active).
	PhaseGen Phase = iota
	// PhaseView is slot-view construction: context packing and hypercube
	// indexing into the policy-facing SlotView.
	PhaseView
	// PhaseDecide is policy.Decide (plus strict validation when enabled).
	PhaseDecide
	// PhaseRealize is ground-truth execution: common-random-number draws,
	// reward/violation accounting, metrics recording, and the MBS fallback.
	PhaseRealize
	// PhaseObserve is policy.Observe: bandit feedback, weight and
	// multiplier updates.
	PhaseObserve
	// PhaseSnapshot is the observability layer's own sampling work
	// (policy introspection + runtime stats, every K slots) — tracked so
	// the probe's phase sums still account for the full wall clock.
	PhaseSnapshot
	// NumPhases is the number of probe phases.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"gen", "view", "decide", "realize", "observe", "snapshot",
}

// String returns the short phase name used in tables and JSONL.
func (ph Phase) String() string {
	if int(ph) < len(phaseNames) {
		return phaseNames[ph]
	}
	return "unknown"
}

// histBuckets is the number of log2 duration buckets per phase. Bucket b
// holds durations with bits.Len64(ns) == b, i.e. [2^(b-1), 2^b); 40
// buckets cover 1 ns to ~9 minutes, far beyond any per-slot phase.
const histBuckets = 40

// Probe records per-phase wall time of the simulation loop. Each phase is
// an obs.Histogram (pre-allocated atomics: several concurrent runs may
// share one Probe, and the HTTP status handler reads while runs write).
// The zero value is ready to use; a nil *Probe is valid and disables
// every method (the single-nil-check fast path).
type Probe struct {
	phases [NumPhases]Histogram
	slots  atomic.Uint64
}

// NewProbe returns an empty probe.
func NewProbe() *Probe { return &Probe{} }

// Start opens a timing span. On a nil probe it returns the zero time and
// costs one nil check.
func (p *Probe) Start() time.Time {
	if p == nil {
		return time.Time{}
	}
	return time.Now()
}

// Lap closes the current span against phase ph and opens the next one,
// returning the new span start. On a nil probe it is a no-op.
func (p *Probe) Lap(ph Phase, last time.Time) time.Time {
	if p == nil {
		return time.Time{}
	}
	return p.LapAt(ph, last, time.Now())
}

// LapAt is Lap with a caller-supplied clock reading: it closes the span
// [last, now) against ph and returns now. Callers that need the same
// boundary timestamp for another sink (the serving engine feeds each
// phase boundary to both the probe and the slot-trace ring) pay for one
// clock read instead of two — on the machines this runs on a clock read
// costs as much as several histogram records, so the sharing is what
// keeps the fully-instrumented slot path within the obs perf budget.
func (p *Probe) LapAt(ph Phase, last, now time.Time) time.Time {
	if p == nil {
		return now
	}
	d := now.Sub(last)
	if d < 0 {
		d = 0
	}
	p.phases[ph].Record(uint64(d))
	return now
}

// Phase returns the histogram backing phase ph, so callers that already
// measure a span themselves (the serving engine wraps whole request
// handlers) can record into the same sink Lap feeds.
func (p *Probe) Phase(ph Phase) *Histogram {
	if p == nil {
		return nil
	}
	return &p.phases[ph]
}

// EndSlot marks one completed slot (the denominator for slot rates).
func (p *Probe) EndSlot() {
	if p == nil {
		return
	}
	p.slots.Add(1)
}

// Slots returns the number of completed slots recorded so far.
func (p *Probe) Slots() uint64 {
	if p == nil {
		return 0
	}
	return p.slots.Load()
}

// TotalNS returns the summed duration of all recorded phase spans.
func (p *Probe) TotalNS() uint64 {
	if p == nil {
		return 0
	}
	var total uint64
	for ph := range p.phases {
		total += p.phases[ph].TotalNS()
	}
	return total
}

// Reset zeroes every counter (between runs sharing a probe).
func (p *Probe) Reset() {
	if p == nil {
		return
	}
	for ph := range p.phases {
		p.phases[ph].Reset()
	}
	p.slots.Store(0)
}

// bucketOf maps a nanosecond duration to its log2 histogram bucket.
func bucketOf(ns uint64) int {
	b := bits.Len64(ns)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketMidNS is the geometric representative of bucket b: 1.5·2^(b-1),
// the midpoint of [2^(b-1), 2^b).
func bucketMidNS(b int) float64 {
	if b == 0 {
		return 0
	}
	return 1.5 * math.Pow(2, float64(b-1))
}

// PhaseStat is the exported summary of one phase, suitable for tables and
// JSONL. Percentiles are approximate (log2-bucket resolution, ~±50%
// within a bucket — the right fidelity for an always-on histogram).
type PhaseStat struct {
	Phase   string  `json:"phase"`
	Count   uint64  `json:"count"`
	TotalNS uint64  `json:"total_ns"`
	MeanNS  float64 `json:"mean_ns"`
	P50NS   float64 `json:"p50_ns"`
	P90NS   float64 `json:"p90_ns"`
	P99NS   float64 `json:"p99_ns"`
	P999NS  float64 `json:"p999_ns"`
}

// Stats snapshots every phase with at least one recorded span. Reads are
// atomic per counter but not mutually consistent across counters — fine
// for monitoring, which is the intended use.
func (p *Probe) Stats() []PhaseStat {
	if p == nil {
		return nil
	}
	out := make([]PhaseStat, 0, NumPhases)
	for ph := Phase(0); ph < NumPhases; ph++ {
		st := p.phases[ph].Stat(ph.String())
		if st.Count == 0 {
			continue
		}
		out = append(out, st)
	}
	return out
}
