package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilProbeIsSafe(t *testing.T) {
	var p *Probe
	span := p.Start()
	span = p.Lap(PhaseDecide, span)
	p.Lap(PhaseObserve, span)
	p.EndSlot()
	p.Reset()
	if p.Slots() != 0 || p.TotalNS() != 0 || p.Stats() != nil {
		t.Fatal("nil probe must report nothing")
	}
}

func TestProbeRecordsPhases(t *testing.T) {
	p := NewProbe()
	for i := 0; i < 10; i++ {
		span := p.Start()
		time.Sleep(time.Millisecond)
		span = p.Lap(PhaseDecide, span)
		p.Lap(PhaseObserve, span)
		p.EndSlot()
	}
	if got := p.Slots(); got != 10 {
		t.Fatalf("slots = %d, want 10", got)
	}
	stats := p.Stats()
	if len(stats) != 2 {
		t.Fatalf("got %d phases, want 2: %+v", len(stats), stats)
	}
	decide := stats[0]
	if decide.Phase != "decide" || decide.Count != 10 {
		t.Fatalf("unexpected first stat: %+v", decide)
	}
	// The decide spans slept ~1ms each; the log-bucket percentiles are
	// coarse (±50%) but must land in the right order of magnitude.
	if decide.MeanNS < 5e5 || decide.MeanNS > 1e8 {
		t.Fatalf("decide mean %.0f ns implausible for a 1ms sleep", decide.MeanNS)
	}
	if decide.P50NS <= 0 || decide.P90NS < decide.P50NS || decide.P99NS < decide.P90NS {
		t.Fatalf("percentiles not monotone: %+v", decide)
	}
	if p.TotalNS() != stats[0].TotalNS+stats[1].TotalNS {
		t.Fatal("TotalNS must sum the phase totals")
	}
	p.Reset()
	if p.Slots() != 0 || len(p.Stats()) != 0 {
		t.Fatal("Reset must clear all counters")
	}
}

func TestBucketRoundTrip(t *testing.T) {
	for _, ns := range []uint64{0, 1, 2, 3, 1023, 1024, 1 << 30} {
		b := bucketOf(ns)
		if b < 0 || b >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", ns, b)
		}
		if ns > 0 {
			mid := bucketMidNS(b)
			if mid < float64(ns)/2 || mid > float64(ns)*2 {
				t.Fatalf("bucket mid %.0f not within 2x of %d", mid, ns)
			}
		}
	}
	// Durations beyond the last bucket boundary clamp instead of panicking.
	if b := bucketOf(1 << 62); b != histBuckets-1 {
		t.Fatalf("huge duration bucket = %d, want %d", b, histBuckets-1)
	}
}

func TestHistPercentileEmpty(t *testing.T) {
	var hist [histBuckets]uint64
	if got := histPercentile(&hist, 0.5); got != 0 {
		t.Fatalf("empty histogram percentile = %v, want 0", got)
	}
}

func makeSnap(scns int, slot int) *PolicySnapshot {
	s := &PolicySnapshot{Policy: "LFSC", Slot: slot, CumReward: float64(slot) * 1.5,
		Gamma: 0.1, Eta: 0.01, Delta: 0.001}
	lam1 := GrowFloats(&s.Lambda1, scns)
	lam2 := GrowFloats(&s.Lambda2, scns)
	ent := GrowFloats(&s.Entropy, scns)
	exp := GrowFloats(&s.ExplorationMass, scns)
	capped := GrowInts(&s.CappedCells, scns)
	for m := 0; m < scns; m++ {
		lam1[m], lam2[m] = float64(m), float64(m)*2
		ent[m], exp[m] = 0.5, 0.25
		capped[m] = m % 3
	}
	return s
}

func TestSnapshotRing(t *testing.T) {
	ring := NewSnapshotRing(3)
	for i := 0; i < 5; i++ {
		ring.OnSnapshot(makeSnap(4, i*100))
	}
	got := ring.Snapshots()
	if len(got) != 3 {
		t.Fatalf("ring kept %d snapshots, want 3", len(got))
	}
	for i, s := range got {
		wantSlot := (i + 2) * 100
		if s.Slot != wantSlot {
			t.Fatalf("snapshot %d slot = %d, want %d (oldest-first order)", i, s.Slot, wantSlot)
		}
		if len(s.Lambda1) != 4 || s.Lambda1[2] != 2 {
			t.Fatalf("snapshot %d lost per-SCN state: %+v", i, s)
		}
	}
}

func TestSnapshotRingCopies(t *testing.T) {
	ring := NewSnapshotRing(2)
	src := makeSnap(2, 7)
	ring.OnSnapshot(src)
	src.Lambda1[0] = -99 // mutate the producer's reused buffer
	src.Slot = 1234
	got := ring.Snapshots()
	if got[0].Slot != 7 || got[0].Lambda1[0] != 0 {
		t.Fatal("ring must deep-copy snapshots, not alias the producer buffer")
	}
}

func TestGrowHelpersReuse(t *testing.T) {
	var f []float64
	a := GrowFloats(&f, 8)
	a[3] = 42
	b := GrowFloats(&f, 4)
	if &a[0] != &b[0] {
		t.Fatal("GrowFloats must reuse capacity on shrink")
	}
	if b[3] = 0; f[:8][3] != 0 { // b zeroed its window
		t.Fatal("GrowFloats must zero the returned window")
	}
	var n []int
	if got := GrowInts(&n, 3); len(got) != 3 {
		t.Fatalf("GrowInts length %d, want 3", len(got))
	}
}

func TestJSONLWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	w.OnSnapshot(makeSnap(3, 500))
	p := NewProbe()
	span := p.Start()
	p.Lap(PhaseGen, span)
	w.WritePhases(p.Stats(), 123*time.Millisecond)
	reg := NewRegistry()
	rs := reg.NewRun("LFSC", 1000)
	rs.RecordSlot(2.5)
	rs.Finish()
	w.WriteRuns(reg)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	var types []string
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line does not parse as JSON: %v\n%s", err, sc.Text())
		}
		types = append(types, ev["type"].(string))
		if ev["type"] == "snapshot" {
			data := ev["data"].(map[string]any)
			if data["policy"] != "LFSC" || data["slot"].(float64) != 500 {
				t.Fatalf("bad snapshot event: %v", data)
			}
			if len(data["lambda1"].([]any)) != 3 {
				t.Fatalf("snapshot lambda1 wrong length: %v", data["lambda1"])
			}
		}
	}
	if strings.Join(types, ",") != "snapshot,phases,run" {
		t.Fatalf("event types = %v", types)
	}
}

func TestRegistryAndRunStatus(t *testing.T) {
	var nilReg *Registry
	if rs := nilReg.NewRun("x", 1); rs != nil {
		t.Fatal("nil registry must return a nil run")
	}
	var nilRS *RunStatus
	nilRS.RecordSlot(1) // must not panic
	nilRS.Finish()
	if nilRS.Slots() != 0 || nilRS.CumReward() != 0 || nilRS.Done() || nilRS.Rate() != 0 {
		t.Fatal("nil RunStatus must report zeroes")
	}

	reg := NewRegistry()
	a := reg.NewRun("LFSC", 100)
	b := reg.NewRun("Oracle", 100)
	for i := 0; i < 10; i++ {
		a.RecordSlot(0.5)
	}
	b.RecordSlot(1)
	if got := reg.TotalSlots(); got != 11 {
		t.Fatalf("TotalSlots = %d, want 11", got)
	}
	if got := a.CumReward(); got != 5 {
		t.Fatalf("CumReward = %v, want 5", got)
	}
	if a.Done() {
		t.Fatal("run not finished yet")
	}
	a.Finish()
	if !a.Done() {
		t.Fatal("run should be done after Finish")
	}
	frozen := a.Elapsed()
	time.Sleep(2 * time.Millisecond)
	if a.Elapsed() != frozen {
		t.Fatal("Elapsed must freeze at Finish")
	}
	runs := reg.Runs()
	if len(runs) != 2 || runs[0].Policy != "LFSC" || runs[1].Policy != "Oracle" {
		t.Fatalf("registry order wrong: %+v", runs)
	}
}

func TestSampleRuntime(t *testing.T) {
	var rs RuntimeStats
	SampleRuntime(&rs)
	if rs.HeapBytes == 0 {
		t.Fatal("heap bytes should be non-zero in a running process")
	}
}
