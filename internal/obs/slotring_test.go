package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// publishSpan writes one deterministic record whose every duration field
// is a function of seq, so readers can verify a snapshot entry is
// internally consistent (no torn fields).
func publishSpan(r *SlotRing, slot int, shards int) {
	s := r.Begin()
	seq := r.Published() // the seq Publish will stamp
	s.Slot = slot
	s.StartUnixNS = int64(seq) * 100
	s.Tasks = int(seq%7) + 1
	s.Assigned = s.Tasks
	s.Reported = s.Tasks
	s.TimedOut = seq%5 == 0
	s.ViewNS = seq*10 + 1
	s.DecideNS = seq*10 + 2
	s.MergeNS = seq*10 + 3
	s.WaitNS = seq*10 + 4
	s.ObserveNS = seq*10 + 5
	s.CheckpointNS = seq*10 + 6
	for k := 0; k < shards; k++ {
		s.ShardDecideNS = append(s.ShardDecideNS, seq*100+uint64(k))
		s.ShardObserveNS = append(s.ShardObserveNS, seq*100+uint64(k)+50)
	}
	r.Publish()
}

// checkSpan verifies a snapshot entry against the publishSpan encoding.
// Reports via Errorf (goroutine-safe) and returns whether it passed.
func checkSpan(t *testing.T, s *SlotSpan, shards int) bool {
	t.Helper()
	seq := s.Seq
	if s.ViewNS != seq*10+1 || s.DecideNS != seq*10+2 || s.MergeNS != seq*10+3 ||
		s.WaitNS != seq*10+4 || s.ObserveNS != seq*10+5 || s.CheckpointNS != seq*10+6 {
		t.Errorf("torn record at seq %d: %+v", seq, s)
		return false
	}
	if s.StartUnixNS != int64(seq)*100 || s.TimedOut != (seq%5 == 0) {
		t.Errorf("torn record at seq %d: %+v", seq, s)
		return false
	}
	if len(s.ShardDecideNS) != shards || len(s.ShardObserveNS) != shards {
		t.Errorf("seq %d: shard arrays %d/%d, want %d", seq, len(s.ShardDecideNS), len(s.ShardObserveNS), shards)
		return false
	}
	for k := 0; k < shards; k++ {
		if s.ShardDecideNS[k] != seq*100+uint64(k) || s.ShardObserveNS[k] != seq*100+uint64(k)+50 {
			t.Errorf("seq %d: torn shard arrays: %+v", seq, s)
			return false
		}
	}
	return true
}

func TestSlotRingPublishAndSnapshot(t *testing.T) {
	const shards = 4
	r := NewSlotRing(8, shards)
	for i := 0; i < 3; i++ {
		publishSpan(r, 100+i, shards)
	}
	if r.Published() != 3 {
		t.Fatalf("Published = %d, want 3", r.Published())
	}
	spans := r.Snapshot(nil)
	if len(spans) != 3 {
		t.Fatalf("snapshot holds %d spans, want 3", len(spans))
	}
	for i, s := range spans {
		if s.Seq != uint64(i) || s.Slot != 100+i {
			t.Fatalf("span %d out of order: seq %d slot %d", i, s.Seq, s.Slot)
		}
		checkSpan(t, &s, shards)
	}
}

// TestSlotRingWraparound: the ring keeps exactly the last size records,
// oldest first, after many laps.
func TestSlotRingWraparound(t *testing.T) {
	r := NewSlotRing(8, 0)
	const total = 100
	for i := 0; i < total; i++ {
		publishSpan(r, i, 0)
	}
	spans := r.Snapshot(nil)
	if len(spans) != 8 {
		t.Fatalf("snapshot holds %d spans, want 8", len(spans))
	}
	for i, s := range spans {
		want := uint64(total - 8 + i)
		if s.Seq != want {
			t.Fatalf("span %d: seq %d, want %d", i, s.Seq, want)
		}
		checkSpan(t, &s, 0)
	}
	// Snapshot appends to the caller's buffer for reuse.
	buf := spans[:0]
	if again := r.Snapshot(buf); len(again) != 8 || &again[0] != &spans[0] {
		t.Fatal("snapshot did not reuse the caller's buffer")
	}
}

// TestSlotRingSizing pins the power-of-two rounding and the minimum.
func TestSlotRingSizing(t *testing.T) {
	for n, want := range map[int]int{0: 8, 1: 8, 8: 8, 9: 16, 100: 128, 256: 256} {
		if got := len(NewSlotRing(n, 0).recs); got != want {
			t.Errorf("NewSlotRing(%d) holds %d records, want %d", n, got, want)
		}
	}
}

func TestSlotRingNilSafe(t *testing.T) {
	var r *SlotRing
	if r.Begin() != nil {
		t.Fatal("nil ring returned a staging record")
	}
	r.Publish()
	r.SetSink(nil)
	if r.Published() != 0 || r.Snapshot(nil) != nil {
		t.Fatal("nil ring reported records")
	}
}

// TestSlotRingSink: every published record reaches the sink, and the
// JSONL writer serialises it under the "slot" event type.
func TestSlotRingSink(t *testing.T) {
	var buf bytes.Buffer
	r := NewSlotRing(8, 2)
	r.SetSink(NewJSONLWriter(&buf))
	for i := 0; i < 3; i++ {
		publishSpan(r, i, 2)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("sink wrote %d lines, want 3:\n%s", len(lines), buf.String())
	}
	for i, l := range lines {
		if !strings.Contains(l, `"type":"slot"`) || !strings.Contains(l, fmt.Sprintf(`"seq":%d`, i)) {
			t.Fatalf("line %d malformed: %s", i, l)
		}
	}
}

// TestSlotRingConcurrentScrape is the seqlock's tear-freedom test: one
// writer publishing self-consistent records flat out, several readers
// snapshotting concurrently. Every span a reader gets back must decode
// as internally consistent and in strictly increasing seq order. Run
// under -race via RACE_PKGS, this also proves the ring is data-race
// clean, not merely torn-value free.
func TestSlotRingConcurrentScrape(t *testing.T) {
	const shards, writes, readers = 2, 20000, 4
	r := NewSlotRing(16, shards)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []SlotSpan
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf = r.Snapshot(buf[:0])
				prev := int64(-1)
				for i := range buf {
					s := &buf[i]
					if int64(s.Seq) <= prev {
						t.Errorf("snapshot seqs not increasing: %d after %d", s.Seq, prev)
						return
					}
					prev = int64(s.Seq)
					if !checkSpan(t, s, shards) {
						return
					}
				}
			}
		}()
	}
	for i := 0; i < writes; i++ {
		publishSpan(r, i, shards)
	}
	close(stop)
	wg.Wait()
	if r.Published() != writes {
		t.Fatalf("Published = %d, want %d", r.Published(), writes)
	}
}
