package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestMetricsExposition pins the Prometheus text rendering: HELP/TYPE
// headers, sorted family order, label rendering with escapes, and
// func-backed values read at scrape time.
func TestMetricsExposition(t *testing.T) {
	m := NewMetrics()
	v := 0.0
	m.Counter("zz_last_total", "Sorts last.", nil, func() float64 { return 1 })
	m.Gauge("aa_first", "Sorts first.", nil, func() float64 { return v })
	m.Gauge("mid_gauge", "Labelled.",
		[]Label{{"kind", `quote"back\slash`}, {"shard", "3"}}, func() float64 { return 2.5 })

	render := func() string {
		var sb strings.Builder
		if err := m.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}

	v = 7
	out := render()
	wantLines := []string{
		"# HELP aa_first Sorts first.",
		"# TYPE aa_first gauge",
		"aa_first 7",
		"# TYPE mid_gauge gauge",
		`mid_gauge{kind="quote\"back\\slash",shard="3"} 2.5`,
		"# TYPE zz_last_total counter",
		"zz_last_total 1",
	}
	for _, l := range wantLines {
		if !strings.Contains(out, l+"\n") {
			t.Fatalf("exposition missing %q:\n%s", l, out)
		}
	}
	if strings.Index(out, "aa_first") > strings.Index(out, "mid_gauge") ||
		strings.Index(out, "mid_gauge") > strings.Index(out, "zz_last_total") {
		t.Fatalf("families not sorted by name:\n%s", out)
	}

	// Values are read at render time, not registration time.
	v = 9
	if !strings.Contains(render(), "aa_first 9\n") {
		t.Fatalf("gauge did not re-read its backing func:\n%s", render())
	}
}

// TestMetricsHistogramExposition pins the log₂-bucket translation: le
// upper bounds of 2^b ns in seconds, cumulative counts that are exact
// (bucket b holds [2^(b-1), 2^b) ns), the empty tail collapsed into
// +Inf, and _sum/_count in seconds/samples.
func TestMetricsHistogramExposition(t *testing.T) {
	var h Histogram
	h.Record(1000) // bits.Len64(1000) = 10 → le 2^10 ns
	h.Record(3000) // bits.Len64(3000) = 12 → le 2^12 ns
	m := NewMetrics()
	m.Histogram("req_seconds", "Latency.", []Label{{"endpoint", "step"}}, &h)

	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, l := range []string{
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{endpoint="step",le="1.024e-06"} 1`,
		`req_seconds_bucket{endpoint="step",le="2.048e-06"} 1`,
		`req_seconds_bucket{endpoint="step",le="4.096e-06"} 2`,
		`req_seconds_bucket{endpoint="step",le="+Inf"} 2`,
		`req_seconds_sum{endpoint="step"} 4e-06`,
		`req_seconds_count{endpoint="step"} 2`,
	} {
		if !strings.Contains(out, l+"\n") {
			t.Fatalf("histogram exposition missing %q:\n%s", l, out)
		}
	}
	// The empty tail above the last non-empty bucket must not be emitted.
	if strings.Contains(out, `le="8.192e-06"`) {
		t.Fatalf("histogram emitted buckets beyond the last non-empty one:\n%s", out)
	}
}

// TestMetricsFamilyMergeAndConflict: same-name registrations join one
// family (one HELP/TYPE block); re-registering a name as a different
// type is a programming error and panics.
func TestMetricsFamilyMergeAndConflict(t *testing.T) {
	m := NewMetrics()
	m.Counter("jobs_total", "Jobs.", []Label{{"kind", "a"}}, func() float64 { return 1 })
	m.Counter("jobs_total", "Jobs.", []Label{{"kind", "b"}}, func() float64 { return 2 })
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "# TYPE jobs_total") != 1 {
		t.Fatalf("merged family rendered multiple TYPE headers:\n%s", out)
	}
	if !strings.Contains(out, `jobs_total{kind="a"} 1`) || !strings.Contains(out, `jobs_total{kind="b"} 2`) {
		t.Fatalf("family lost a series:\n%s", out)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("type-conflicting registration did not panic")
		}
	}()
	m.Gauge("jobs_total", "Jobs.", nil, func() float64 { return 3 })
}

// TestMetricsNilSafe: a nil registry swallows registrations and renders
// nothing, matching the Probe/Histogram nil contract.
func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.Counter("c", "h", nil, func() float64 { return 1 })
	m.Gauge("g", "h", nil, func() float64 { return 1 })
	m.Histogram("h", "h", nil, &Histogram{})
	m.RegisterProbe(NewProbe())
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("nil registry rendered output: %q", sb.String())
	}
}

// TestMetricsHandler pins the scrape endpoint's content type and body.
func TestMetricsHandler(t *testing.T) {
	m := NewMetrics()
	m.Counter("ticks_total", "Ticks.", nil, func() float64 { return 3 })
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "ticks_total 3\n") {
		t.Fatalf("scrape body missing series:\n%s", body)
	}
}

// TestMetricsRegisterProbe: the probe's phase histograms land under the
// standard family names with phase labels.
func TestMetricsRegisterProbe(t *testing.T) {
	p := NewProbe()
	p.Lap(PhaseDecide, time.Now().Add(-time.Millisecond))
	p.EndSlot()
	m := NewMetrics()
	m.RegisterProbe(p)
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `lfsc_phase_duration_seconds_count{phase="decide"} 1`) {
		t.Fatalf("probe phase histogram not exposed:\n%s", out)
	}
	if !strings.Contains(out, "lfsc_probe_slots_total 1") {
		t.Fatalf("probe slot counter not exposed:\n%s", out)
	}
}
