package obs

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server surfaces live telemetry over HTTP for watching long runs:
//
//	/debug/vars    expvar JSON (process defaults + the "lfsc" var below)
//	/debug/pprof/  the standard pprof index (profile, heap, trace, ...)
//	/lfsc/status   plain-text status: uptime, per-run progress and slot
//	               rates, and the per-phase timing breakdown
//	/metrics       Prometheus text exposition (the Metrics registry; a
//	               default registry over the probe when none is given)
//
// The server runs on its own goroutine and its own mux, so it never
// interferes with the simulation loop beyond the atomic counter reads the
// handlers perform.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// expvarState is the process-global source behind the published "lfsc"
// expvar. expvar.Publish is forever (re-publishing panics), so the var is
// registered once and re-pointed at the latest server's probe/registry.
var expvarState struct {
	once sync.Once
	mu   sync.Mutex
	p    *Probe
	reg  *Registry
}

// StartServer listens on addr (e.g. ":8080" or "127.0.0.1:0") and serves
// telemetry for the given probe and registry (either may be nil — the
// corresponding sections are omitted). metrics backs /metrics; pass nil
// to get a fresh registry pre-wired with the probe's phase histograms
// and the registry's aggregate counters. Close the returned server when
// done.
func StartServer(addr string, probe *Probe, reg *Registry, metrics *Metrics) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	expvarState.mu.Lock()
	expvarState.p, expvarState.reg = probe, reg
	expvarState.mu.Unlock()
	expvarState.once.Do(func() {
		expvar.Publish("lfsc", expvar.Func(func() any {
			expvarState.mu.Lock()
			p, g := expvarState.p, expvarState.reg
			expvarState.mu.Unlock()
			return statusData(p, g)
		}))
	})

	if metrics == nil {
		metrics = NewMetrics()
		metrics.RegisterProbe(probe)
		if reg != nil {
			metrics.Counter("lfsc_run_slots_total", "Slots completed across all registered runs.",
				nil, func() float64 { return float64(reg.TotalSlots()) })
		}
	}

	start := time.Now()
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/lfsc/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteStatus(w, probe, reg, time.Since(start))
	})

	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

// statusVars is the expvar JSON shape of the "lfsc" variable.
type statusVars struct {
	Slots  int64       `json:"slots"`
	Runs   []runEvent  `json:"runs"`
	Phases []PhaseStat `json:"phases"`
}

func statusData(p *Probe, g *Registry) statusVars {
	v := statusVars{Slots: g.TotalSlots(), Phases: p.Stats()}
	for _, r := range g.Runs() {
		v.Runs = append(v.Runs, runEvent{
			Type: "run", Policy: r.Policy, Slots: r.Slots(),
			CumReward: r.CumReward(), ElapsedNS: r.Elapsed().Nanoseconds(),
		})
	}
	return v
}

// WriteStatus renders the plain-text status page: per-run progress with
// slot rates and cumulative reward, then phase timing percentiles.
func WriteStatus(w io.Writer, p *Probe, g *Registry, up time.Duration) {
	fmt.Fprintf(w, "lfsc status — up %v\n", up.Round(time.Millisecond))
	runs := g.Runs()
	if len(runs) > 0 {
		fmt.Fprintf(w, "\nruns (%d):\n", len(runs))
		for _, r := range runs {
			state := "running"
			if r.Done() {
				state = "done"
			}
			progress := ""
			if r.T > 0 {
				progress = fmt.Sprintf(" (%.1f%%)", 100*float64(r.Slots())/float64(r.T))
			}
			fmt.Fprintf(w, "  %-10s slot %d/%d%s  %.0f slots/s  cum reward %.4f  [%s]\n",
				r.Policy, r.Slots(), r.T, progress, r.Rate(), r.CumReward(), state)
		}
	}
	stats := p.Stats()
	if len(stats) > 0 {
		fmt.Fprintf(w, "\nphases:\n")
		fmt.Fprintf(w, "  %-10s %12s %12s %10s %10s %10s %10s %10s\n",
			"phase", "count", "total", "mean", "p50", "p90", "p99", "p999")
		for _, st := range stats {
			fmt.Fprintf(w, "  %-10s %12d %12v %10v %10v %10v %10v %10v\n",
				st.Phase, st.Count,
				time.Duration(st.TotalNS).Round(time.Millisecond),
				time.Duration(st.MeanNS).Round(time.Microsecond),
				time.Duration(st.P50NS).Round(time.Microsecond),
				time.Duration(st.P90NS).Round(time.Microsecond),
				time.Duration(st.P99NS).Round(time.Microsecond),
				time.Duration(st.P999NS).Round(time.Microsecond))
		}
	}
}

// StartProgressLogger prints aggregate slot-rate updates to w every
// interval until the returned stop function is called. Lines go through
// one Fprintf each, so the logger is safe to point at stderr while
// results stream to stdout.
func StartProgressLogger(w io.Writer, g *Registry, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		var lastSlots int64
		lastTime := time.Now()
		for {
			select {
			case <-done:
				return
			case now := <-tick.C:
				slots := g.TotalSlots()
				rate := float64(slots-lastSlots) / now.Sub(lastTime).Seconds()
				running := 0
				for _, r := range g.Runs() {
					if !r.Done() {
						running++
					}
				}
				fmt.Fprintf(w, "progress: %d slots done, %.0f slots/s, %d run(s) active\n",
					slots, rate, running)
				lastSlots, lastTime = slots, now
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
