package obs

import "testing"

// BenchmarkProbeDisabled measures the per-slot cost of the observability
// hooks with the probe off — the path every un-instrumented run takes.
// Each iteration performs the full set of per-slot probe calls (one Start,
// five Laps, one EndSlot); the whole thing must optimize down to a few
// nil checks, i.e. ~1 ns and 0 allocs.
func BenchmarkProbeDisabled(b *testing.B) {
	var p *Probe
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		span := p.Start()
		span = p.Lap(PhaseGen, span)
		span = p.Lap(PhaseView, span)
		span = p.Lap(PhaseDecide, span)
		span = p.Lap(PhaseRealize, span)
		p.Lap(PhaseObserve, span)
		p.EndSlot()
	}
}

// BenchmarkProbeEnabled is the same call sequence with recording on: five
// clock reads plus a handful of atomic adds, still allocation-free.
func BenchmarkProbeEnabled(b *testing.B) {
	p := NewProbe()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		span := p.Start()
		span = p.Lap(PhaseGen, span)
		span = p.Lap(PhaseView, span)
		span = p.Lap(PhaseDecide, span)
		span = p.Lap(PhaseRealize, span)
		p.Lap(PhaseObserve, span)
		p.EndSlot()
	}
}

// BenchmarkRunStatusRecordSlot measures the live-telemetry counter update.
func BenchmarkRunStatusRecordSlot(b *testing.B) {
	rs := NewRegistry().NewRun("LFSC", b.N)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs.RecordSlot(0.5)
	}
}
