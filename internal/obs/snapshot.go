package obs

import (
	"math"
	rtmetrics "runtime/metrics"
	"sync"
)

// PolicySnapshot is one sampled view of a learning policy's internal
// state, plus run-level context filled in by the simulator. All slice
// fields are indexed by SCN and owned by the snapshot — implementations
// of Snapshotter copy into them (growing with GrowFloats/GrowInts), never
// alias internal state, so a snapshot stays valid after the policy moves
// on.
type PolicySnapshot struct {
	// Policy is the display name of the sampled policy.
	Policy string `json:"policy"`
	// Slot is the 0-based slot index the sample was taken after.
	Slot int `json:"slot"`
	// CumReward is the run's cumulative compound reward through Slot.
	CumReward float64 `json:"cum_reward"`

	// Gamma, Eta, Delta are the effective schedule values (Theorem 1).
	Gamma float64 `json:"gamma"`
	Eta   float64 `json:"eta"`
	Delta float64 `json:"delta"`

	// Lambda1, Lambda2 are the per-SCN Lagrange multipliers for the QoS
	// floor (1c) and the resource ceiling (1d).
	Lambda1 []float64 `json:"lambda1"`
	Lambda2 []float64 `json:"lambda2"`
	// Entropy is the per-SCN normalized entropy of the hypercube weight
	// distribution: H(softmax(logW)) / ln(F) ∈ [0,1]. 1 means uniform
	// (no learning signal yet), 0 means fully collapsed onto one cell.
	Entropy []float64 `json:"entropy"`
	// CappedCells is the per-SCN size of the Exp3.M capped set S' in the
	// most recent Decide (cells pinned at the probability cap).
	CappedCells []int `json:"capped_cells"`
	// ExplorationMass is the per-SCN softmax weight mass held by cells
	// below the uniform share 1/F — mass that selection can effectively
	// reach only through the γ-mixing exploration term. It decays toward
	// 0 as the weight distribution concentrates.
	ExplorationMass []float64 `json:"exploration_mass"`
	// Owner is the per-SCN owning shard in a sharded serving deployment
	// (internal/serve with Shards > 1); empty for unsharded runs. Filled
	// by the aggregator, not the policy — each partial learner's Snapshot
	// covers only the SCNs it owns, and the serving engine layers the
	// shards' calls into one snapshot before stamping the owner map.
	Owner []int `json:"owner,omitempty"`

	// Runtime holds process-level stats (heap, GC) when sampling is
	// enabled via Options.SampleRuntime.
	Runtime RuntimeStats `json:"runtime"`
}

// Snapshotter is implemented by policies that can expose their internal
// state (core.LFSC). Snapshot must copy into the caller-owned snapshot
// buffers and must not retain the pointer.
type Snapshotter interface {
	Snapshot(into *PolicySnapshot)
}

// SnapshotSink consumes sampled snapshots. The snapshot is only valid for
// the duration of the call (the simulator reuses one buffer), so sinks
// must copy what they keep. Sinks must be safe for concurrent calls:
// RunAll runs policies in parallel against one shared sink.
type SnapshotSink interface {
	OnSnapshot(s *PolicySnapshot)
}

// GrowFloats re-slices *buf to length n, reallocating only on growth, and
// zeroes the content. Snapshot implementations use it so repeated
// sampling into the same snapshot is allocation-free after the first.
func GrowFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	for i := range *buf {
		(*buf)[i] = 0
	}
	return *buf
}

// GrowInts is GrowFloats for int slices.
func GrowInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	for i := range *buf {
		(*buf)[i] = 0
	}
	return *buf
}

// copyInto deep-copies s into dst, reusing dst's slice capacity.
func (s *PolicySnapshot) copyInto(dst *PolicySnapshot) {
	dst.Policy = s.Policy
	dst.Slot = s.Slot
	dst.CumReward = s.CumReward
	dst.Gamma, dst.Eta, dst.Delta = s.Gamma, s.Eta, s.Delta
	dst.Lambda1 = append(dst.Lambda1[:0], s.Lambda1...)
	dst.Lambda2 = append(dst.Lambda2[:0], s.Lambda2...)
	dst.Entropy = append(dst.Entropy[:0], s.Entropy...)
	dst.CappedCells = append(dst.CappedCells[:0], s.CappedCells...)
	dst.ExplorationMass = append(dst.ExplorationMass[:0], s.ExplorationMass...)
	dst.Owner = append(dst.Owner[:0], s.Owner...)
	dst.Runtime = s.Runtime
}

// SnapshotRing keeps the most recent n snapshots (deep copies). It is a
// SnapshotSink; safe for concurrent producers (sampling happens every K
// slots, so the lock is far off the hot path).
type SnapshotRing struct {
	mu   sync.Mutex
	buf  []PolicySnapshot
	next int
	len  int
}

// NewSnapshotRing creates a ring holding the last n snapshots.
func NewSnapshotRing(n int) *SnapshotRing {
	if n <= 0 {
		n = 1
	}
	return &SnapshotRing{buf: make([]PolicySnapshot, n)}
}

// OnSnapshot implements SnapshotSink.
func (r *SnapshotRing) OnSnapshot(s *PolicySnapshot) {
	r.mu.Lock()
	s.copyInto(&r.buf[r.next])
	r.next = (r.next + 1) % len(r.buf)
	if r.len < len(r.buf) {
		r.len++
	}
	r.mu.Unlock()
}

// Snapshots returns the retained snapshots, oldest first. The returned
// slice is freshly allocated; its entries still share slice backing with
// the ring, so treat them as read-only.
func (r *SnapshotRing) Snapshots() []PolicySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PolicySnapshot, 0, r.len)
	start := r.next - r.len
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.len; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// RuntimeStats is the process-level slice of a snapshot, sampled from
// runtime/metrics.
type RuntimeStats struct {
	// HeapBytes is the live heap object size (/memory/classes/heap/objects).
	HeapBytes uint64 `json:"heap_bytes"`
	// GCCycles is the completed GC cycle count.
	GCCycles uint64 `json:"gc_cycles"`
	// GCPauseTotalNS approximates the cumulative stop-the-world pause time
	// (bucket-midpoint sum over the /gc/pauses histogram).
	GCPauseTotalNS float64 `json:"gc_pause_total_ns"`
	// GCPauseP99NS is the approximate 99th-percentile individual pause.
	GCPauseP99NS float64 `json:"gc_pause_p99_ns"`
}

var runtimeSampleNames = []string{
	"/memory/classes/heap/objects:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
}

// SampleRuntime fills rs from runtime/metrics. Unsupported metrics (older
// runtimes) leave their fields zero. Called every K slots, not per slot,
// so the small per-call sample allocation is irrelevant.
func SampleRuntime(rs *RuntimeStats) {
	samples := make([]rtmetrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	rtmetrics.Read(samples)
	*rs = RuntimeStats{}
	for i := range samples {
		s := &samples[i]
		switch s.Name {
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == rtmetrics.KindUint64 {
				rs.HeapBytes = s.Value.Uint64()
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == rtmetrics.KindUint64 {
				rs.GCCycles = s.Value.Uint64()
			}
		case "/gc/pauses:seconds":
			if s.Value.Kind() == rtmetrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				rs.GCPauseTotalNS, rs.GCPauseP99NS = pauseHistStats(h)
			}
		}
	}
}

// pauseHistStats reduces the runtime pause histogram to a total and an
// approximate p99, both in nanoseconds, using bucket midpoints.
func pauseHistStats(h *rtmetrics.Float64Histogram) (totalNS, p99NS float64) {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0, 0
	}
	rank := uint64(math.Ceil(0.99 * float64(total)))
	var seen uint64
	for i, c := range h.Counts {
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if math.IsInf(lo, -1) {
			lo = 0
		}
		if math.IsInf(hi, 1) {
			hi = lo
		}
		mid := (lo + hi) / 2 * 1e9
		totalNS += float64(c) * mid
		if seen < rank && seen+c >= rank {
			p99NS = mid
		}
		seen += c
	}
	return totalNS, p99NS
}

// Options wires the observability layer into a run. A nil *Options (the
// default in sim.Config) disables everything; individual fields opt into
// each facility independently.
type Options struct {
	// Probe records per-phase wall time when non-nil.
	Probe *Probe
	// Registry tracks live per-run progress (slot counts, reward, rates)
	// when non-nil.
	Registry *Registry
	// SnapshotEvery samples the policy state every K slots (0 disables).
	// Only policies implementing Snapshotter are sampled.
	SnapshotEvery int
	// SnapshotSink receives the samples (required for sampling).
	SnapshotSink SnapshotSink
	// SampleRuntime additionally fills Runtime stats into each snapshot.
	SampleRuntime bool
}
