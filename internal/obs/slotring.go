package obs

import "sync/atomic"

// SlotSpan is the lifecycle record of one served slot: how long each
// stage of the batch→Decide→collect→Observe→checkpoint protocol took,
// including the per-shard breakdown of the two parallel stages — the
// record that makes shard stragglers and barrier stalls visible.
// Durations are nanoseconds; a zero MergeNS means the engine ran
// unsharded (Decide and Merge are one call).
type SlotSpan struct {
	// Seq is the ring's monotone publish counter (gaps in a snapshot
	// mean records were overwritten between reads).
	Seq uint64 `json:"seq"`
	// Slot is the slot index the record describes.
	Slot int `json:"slot"`
	// StartUnixNS is the wall-clock time the slot's batch closed
	// (decide started), unix nanoseconds.
	StartUnixNS int64 `json:"start_unix_ns"`

	Tasks    int `json:"tasks"`
	Assigned int `json:"assigned"`
	Reported int `json:"reported"`
	// TimedOut marks a slot whose report wait expired before every
	// assigned task reported (Observe ran with what arrived).
	TimedOut bool `json:"timed_out,omitempty"`

	// Stage durations, in protocol order. The compute stages (all but
	// WaitNS and ObserveOverlapNS) saturate at ~4.29s — they are stored
	// as packed 32-bit halves in the ring (see slotRec) and real values
	// sit orders of magnitude below the cap.
	//
	// StageNS is the total ingest-staging time of the slot's batch —
	// context packing and per-shard coverage routing done at admission,
	// spread across the batch window rather than the close. Present only
	// on traced SHARDED engines: the staging clock reads exist to
	// attribute ingest cost across shards, and cost too much (two reads
	// per admission) to spend on the flat fast path.
	StageNS   uint64 `json:"stage_ns,omitempty"`
	ViewNS    uint64 `json:"view_ns"`   // arena publish (the build work is in StageNS)
	DecideNS  uint64 `json:"decide_ns"` // whole decision (incl. merge when sharded)
	MergeNS   uint64 `json:"merge_ns,omitempty"`
	WaitNS    uint64 `json:"wait_ns"` // decide done → all reports in (batch open→close)
	ObserveNS uint64 `json:"observe_ns"`
	// ObserveOverlapNS is the staging time for slot t+1 that landed
	// inside this slot's Observe window — the measured ingest overlap of
	// the pipelined close.
	ObserveOverlapNS uint64 `json:"observe_overlap_ns,omitempty"`
	CheckpointNS     uint64 `json:"checkpoint_ns,omitempty"`

	// Per-shard durations of the parallel stages (index = shard id;
	// empty on an unsharded engine). A shard whose entry dominates the
	// others is the straggler serialising the barrier; ShardStageNS
	// attributes staging time to the submission's home shard.
	ShardDecideNS  []uint64 `json:"shard_decide_ns,omitempty"`
	ShardObserveNS []uint64 `json:"shard_observe_ns,omitempty"`
	ShardStageNS   []uint64 `json:"shard_stage_ns,omitempty"`
}

// slotRec is one ring entry: SlotSpan flattened into atomics so that
// concurrent scrape readers need no lock and see no torn field (the
// race detector requires every shared word to be atomic; the seq field
// is a seqlock that additionally makes the whole record consistent).
//
// The fields are packed, not one-atomic-per-SlotSpan-field: an
// uncontended atomic store costs ~10ns on the target machines, and the
// publish path runs once per served slot inside the engine's slot
// budget, so halving the store count is what keeps an enabled ring
// within the serve_ns_per_slot_obs gate.
type slotRec struct {
	// seq is the seqlock word and the publish counter in one: the writer
	// stores 2n+1 before and 2n+2 after filling the record for publish
	// index n. An odd value marks a mid-write entry, an even value says
	// exactly which publish the fields belong to (n = seq/2-1, 0 =
	// never written), and no separate per-record sequence field is
	// needed.
	seq atomic.Uint64

	slot    atomic.Int64
	startNS atomic.Int64
	// counts packs tasks<<43 | assigned<<22 | reported<<1 | timedOut:
	// 21 bits per count, far above the structural per-slot task bound
	// SCNs·KMax — one store instead of four.
	counts atomic.Uint64
	// Duration words, two clamped uint32 nanosecond halves each (~4.29s
	// cap — these are compute stages, orders of magnitude shorter):
	// viewDecide = view<<32 | decide, mergeObserve = merge<<32 |
	// observe, ckptStage = checkpoint<<32 | stage, overlap =
	// observeOverlap (full word). wait keeps a full uint64: it spans the
	// report wait, which is configured in wall-clock seconds.
	viewDecide   atomic.Uint64
	mergeObserve atomic.Uint64
	ckptStage    atomic.Uint64
	overlap      atomic.Uint64
	wait         atomic.Uint64
	// shardDO packs each shard's decide<<32 | observe pair; shardStage
	// holds each shard's staging attribution as a full word.
	shardDO    []atomic.Uint64
	shardStage []atomic.Uint64
}

// clamp32 saturates a nanosecond duration into a packed uint32 half.
func clamp32(ns uint64) uint64 {
	if ns > 0xffffffff {
		return 0xffffffff
	}
	return ns
}

// clamp21 saturates a per-slot count into its 21-bit counts-word field.
func clamp21(v int) uint64 {
	if v < 0 {
		return 0
	}
	if v > 0x1fffff {
		return 0x1fffff
	}
	return uint64(v)
}

// SlotSink receives each published slot record (the optional JSONL
// sink). Called synchronously from the publisher — on the engine's slot
// path, under its lock — so sinks must be cheap or buffered; the span
// is only valid for the duration of the call.
type SlotSink interface {
	OnSlotSpan(*SlotSpan)
}

// SlotRing is a fixed-size, lock-free ring of the last N SlotSpans.
// There is exactly one writer (the serving engine, which publishes one
// record per slot); readers (the /lfsc/slots handler, tests) snapshot
// concurrently without blocking the writer. Every field of every entry
// is an atomic and each entry carries a seqlock version, so a snapshot
// is both race-clean and tear-free: a reader that observes an entry
// mid-write retries, and a torn read can never be returned.
//
// The publish path performs only atomic stores into pre-allocated
// entries — no allocation, no lock — so an enabled ring cannot disturb
// the wire path's 0 allocs/request pin, and (reading only clocks and
// counters) cannot perturb the learner: traced runs stay bit-identical.
type SlotRing struct {
	mask    uint64
	recs    []slotRec
	next    atomic.Uint64 // total records published
	scratch SlotSpan      // writer-owned staging record
	sink    SlotSink
}

// NewSlotRing builds a ring holding the last n records (rounded up to a
// power of two, minimum 8), each with room for a per-shard breakdown
// over shards shards (0 for an unsharded engine).
func NewSlotRing(n, shards int) *SlotRing {
	size := 8
	for size < n {
		size <<= 1
	}
	r := &SlotRing{mask: uint64(size - 1), recs: make([]slotRec, size)}
	if shards > 1 {
		for i := range r.recs {
			r.recs[i].shardDO = make([]atomic.Uint64, shards)
			r.recs[i].shardStage = make([]atomic.Uint64, shards)
		}
		r.scratch.ShardDecideNS = make([]uint64, 0, shards)
		r.scratch.ShardObserveNS = make([]uint64, 0, shards)
		r.scratch.ShardStageNS = make([]uint64, 0, shards)
	}
	return r
}

// Begin hands the single writer the staging record for the next slot,
// cleared. Fill it, then Publish. Returns nil on a nil ring (callers
// gate on that).
func (r *SlotRing) Begin() *SlotSpan {
	if r == nil {
		return nil
	}
	s := &r.scratch
	sd, so, ss := s.ShardDecideNS[:0], s.ShardObserveNS[:0], s.ShardStageNS[:0]
	*s = SlotSpan{ShardDecideNS: sd, ShardObserveNS: so, ShardStageNS: ss}
	return s
}

// Publish commits the staging record into the ring (seqlocked atomic
// stores, no allocation) and forwards it to the sink, if any.
func (r *SlotRing) Publish() {
	if r == nil {
		return
	}
	s := &r.scratch
	n := r.next.Load()
	s.Seq = n
	rec := &r.recs[n&r.mask]
	rec.seq.Store(2*n + 1) // odd: readers retry
	rec.slot.Store(int64(s.Slot))
	rec.startNS.Store(s.StartUnixNS)
	counts := clamp21(s.Tasks)<<43 | clamp21(s.Assigned)<<22 | clamp21(s.Reported)<<1
	if s.TimedOut {
		counts |= 1
	}
	rec.counts.Store(counts)
	rec.viewDecide.Store(clamp32(s.ViewNS)<<32 | clamp32(s.DecideNS))
	rec.mergeObserve.Store(clamp32(s.MergeNS)<<32 | clamp32(s.ObserveNS))
	// ckptStage and overlap are zero on the dominant path (the staging
	// and overlap clocks run on the sharded plane only, and checkpoints
	// fire once per CheckpointEvery slots), so a load-and-skip — safe
	// with a single writer — replaces two always-on stores with two
	// near-free loads and keeps the flat full-obs loop inside the
	// serve_ns_per_slot_obs budget.
	if v := clamp32(s.CheckpointNS)<<32 | clamp32(s.StageNS); v != 0 || rec.ckptStage.Load() != 0 {
		rec.ckptStage.Store(v)
	}
	if v := s.ObserveOverlapNS; v != 0 || rec.overlap.Load() != 0 {
		rec.overlap.Store(v)
	}
	rec.wait.Store(s.WaitNS)
	for k := range rec.shardDO {
		var d, o, st uint64
		if k < len(s.ShardDecideNS) {
			d = s.ShardDecideNS[k]
		}
		if k < len(s.ShardObserveNS) {
			o = s.ShardObserveNS[k]
		}
		if k < len(s.ShardStageNS) {
			st = s.ShardStageNS[k]
		}
		rec.shardDO[k].Store(clamp32(d)<<32 | clamp32(o))
		rec.shardStage[k].Store(st)
	}
	rec.seq.Store(2*n + 2) // even: stable, and names the publish index
	r.next.Store(n + 1)
	if r.sink != nil {
		r.sink.OnSlotSpan(s)
	}
}

// SetSink installs the optional per-record sink (call before the writer
// starts publishing).
func (r *SlotRing) SetSink(s SlotSink) {
	if r != nil {
		r.sink = s
	}
}

// Published returns the total number of records published.
func (r *SlotRing) Published() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Snapshot copies the ring's current records, oldest first, appending
// to into (reuse a buffer to bound scrape allocations). Entries being
// overwritten concurrently are retried a few times and skipped if still
// unstable — a snapshot never contains a torn record.
func (r *SlotRing) Snapshot(into []SlotSpan) []SlotSpan {
	if r == nil {
		return into
	}
	end := r.next.Load()
	size := uint64(len(r.recs))
	start := uint64(0)
	if end > size {
		start = end - size
	}
	for n := start; n < end; n++ {
		rec := &r.recs[n&r.mask]
		var s SlotSpan
		ok := false
		for tries := 0; tries < 8; tries++ {
			v1 := rec.seq.Load()
			if v1&1 != 0 || v1 == 0 {
				continue // mid-write (or never written — can't happen below next)
			}
			s.Seq = v1/2 - 1 // the publish index lives in the seqlock word
			s.Slot = int(rec.slot.Load())
			s.StartUnixNS = rec.startNS.Load()
			counts := rec.counts.Load()
			s.Tasks = int(counts >> 43)
			s.Assigned = int(counts >> 22 & 0x1fffff)
			s.Reported = int(counts >> 1 & 0x1fffff)
			s.TimedOut = counts&1 != 0
			vd := rec.viewDecide.Load()
			s.ViewNS, s.DecideNS = vd>>32, vd&0xffffffff
			mo := rec.mergeObserve.Load()
			s.MergeNS, s.ObserveNS = mo>>32, mo&0xffffffff
			cs := rec.ckptStage.Load()
			s.CheckpointNS, s.StageNS = cs>>32, cs&0xffffffff
			s.ObserveOverlapNS = rec.overlap.Load()
			s.WaitNS = rec.wait.Load()
			if len(rec.shardDO) > 0 {
				s.ShardDecideNS = make([]uint64, len(rec.shardDO))
				s.ShardObserveNS = make([]uint64, len(rec.shardDO))
				s.ShardStageNS = make([]uint64, len(rec.shardDO))
				for k := range rec.shardDO {
					do := rec.shardDO[k].Load()
					s.ShardDecideNS[k] = do >> 32
					s.ShardObserveNS[k] = do & 0xffffffff
					s.ShardStageNS[k] = rec.shardStage[k].Load()
				}
			}
			if rec.seq.Load() == v1 {
				ok = true
				break
			}
		}
		// Keep only records still holding the slot we asked for: an entry
		// lapped by the writer mid-walk shows a newer Seq and is dropped
		// rather than surfaced out of order.
		if ok && s.Seq == n {
			into = append(into, s)
		}
	}
	return into
}
