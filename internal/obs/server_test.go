package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestServerEndpoints(t *testing.T) {
	probe := NewProbe()
	reg := NewRegistry()
	rs := reg.NewRun("LFSC", 1000)
	for i := 0; i < 42; i++ {
		span := probe.Start()
		span = probe.Lap(PhaseDecide, span)
		probe.Lap(PhaseObserve, span)
		probe.EndSlot()
		rs.RecordSlot(0.25)
	}

	srv, err := StartServer("127.0.0.1:0", probe, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	status := getBody(t, base+"/lfsc/status")
	for _, want := range []string{"lfsc status", "LFSC", "slot 42/1000", "decide", "observe", "p99"} {
		if !strings.Contains(status, want) {
			t.Fatalf("/lfsc/status missing %q:\n%s", want, status)
		}
	}

	vars := getBody(t, base+"/debug/vars")
	var parsed map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &parsed); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	var lfsc statusVars
	if err := json.Unmarshal(parsed["lfsc"], &lfsc); err != nil {
		t.Fatalf("lfsc expvar: %v", err)
	}
	if lfsc.Slots != 42 || len(lfsc.Runs) != 1 || lfsc.Runs[0].Policy != "LFSC" {
		t.Fatalf("lfsc expvar content: %+v", lfsc)
	}

	if body := getBody(t, base+"/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatal("/debug/pprof/ index missing profiles")
	}
}

// TestServerRestart pins the expvar re-publish guard: a second server (new
// probe/registry) must not panic and must serve the fresh state.
func TestServerRestart(t *testing.T) {
	p1, r1 := NewProbe(), NewRegistry()
	s1, err := StartServer("127.0.0.1:0", p1, r1, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	p2, r2 := NewProbe(), NewRegistry()
	r2.NewRun("Fresh", 10).RecordSlot(1)
	s2, err := StartServer("127.0.0.1:0", p2, r2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	body := getBody(t, "http://"+s2.Addr()+"/debug/vars")
	if !strings.Contains(body, "Fresh") {
		t.Fatal("expvar not re-pointed at the latest registry")
	}
}

func TestWriteStatusNilInputs(t *testing.T) {
	var sb strings.Builder
	WriteStatus(&sb, nil, nil, time.Second)
	if !strings.Contains(sb.String(), "lfsc status") {
		t.Fatalf("status header missing: %q", sb.String())
	}
}

func TestProgressLogger(t *testing.T) {
	reg := NewRegistry()
	rs := reg.NewRun("LFSC", 100)
	var sb syncBuilder
	stop := StartProgressLogger(&sb, reg, 5*time.Millisecond)
	for i := 0; i < 10; i++ {
		rs.RecordSlot(1)
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	stop() // idempotent
	if out := sb.String(); !strings.Contains(out, "slots/s") {
		t.Fatalf("no progress lines written: %q", out)
	}
}

// syncBuilder is a goroutine-safe string sink for logger tests.
type syncBuilder struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuilder) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuilder) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}
