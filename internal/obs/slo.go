package obs

import (
	"sync/atomic"
	"time"
)

// SLO tracks request latency percentiles and the shed rate over a
// rolling wall-clock window, for the serving tier's latency SLOs.
//
// The window is a ring of per-second epoch buckets, each a log₂
// latency histogram plus request/shed counters, all atomics. Recording
// is lock- and allocation-free: one epoch check (a CAS only on the
// first request of a new second) plus three or four atomic adds —
// cheap enough to sit on the serving wire path without disturbing its
// 0 allocs/request pin, and touching no learner state, so tracked runs
// stay bit-identical to bare ones.
//
// Window math: a report at wall-second S aggregates the buckets whose
// stamped epoch lies in (S-window, S] — i.e. the last `window` fully
// or partially elapsed seconds, including the in-progress one. The
// ring holds window+2 buckets so a bucket is only reused once it has
// aged out of every window that could still be reported against.
// Bucket reuse is racy by design: the first recorder of a new second
// CASes the epoch forward and zeroes the counters; a concurrent
// recorder that loses the race between the zeroing stores may slip a
// sample into (or out of) the reset — an error of at most a few
// samples per window rollover, which is noise at the rates the window
// summarises.
type SLO struct {
	window  int64
	budget  float64
	buckets []sloBucket
}

type sloBucket struct {
	epoch atomic.Int64
	count atomic.Uint64
	shed  atomic.Uint64
	sumNS atomic.Uint64
	hist  [histBuckets]atomic.Uint64
}

// SLOReport is the aggregated window summary.
type SLOReport struct {
	WindowSec int    `json:"window_sec"`
	Requests  uint64 `json:"requests"`
	Shed      uint64 `json:"shed"`
	// ShedRate is shed/requests over the window (0 when idle).
	ShedRate float64 `json:"shed_rate"`
	// ShedBudget is the configured shed-rate budget; ShedWithinBudget
	// reports whether the window honours it.
	ShedBudget       float64 `json:"shed_budget"`
	ShedWithinBudget bool    `json:"shed_within_budget"`
	MeanNS           float64 `json:"mean_ns"`
	P50NS            float64 `json:"p50_ns"`
	P99NS            float64 `json:"p99_ns"`
	P999NS           float64 `json:"p999_ns"`
}

// NewSLO builds a tracker over the last windowSec seconds with the
// given shed-rate budget (fraction of requests allowed to shed, e.g.
// 0.01). windowSec ≤ 0 defaults to 60.
func NewSLO(windowSec int, shedBudget float64) *SLO {
	if windowSec <= 0 {
		windowSec = 60
	}
	return &SLO{
		window:  int64(windowSec),
		budget:  shedBudget,
		buckets: make([]sloBucket, windowSec+2),
	}
}

// Record adds one request observed to start at start and finish now,
// flagged shed for 429 rejections. Nil-safe.
func (s *SLO) Record(start time.Time, shed bool) {
	if s == nil {
		return
	}
	now := time.Now()
	d := now.Sub(start)
	if d < 0 {
		d = 0
	}
	s.RecordAt(now.Unix(), uint64(d), shed)
}

// RecordAt is the injectable-clock recording primitive: one request of
// durNS nanoseconds at wall-second sec.
func (s *SLO) RecordAt(sec int64, durNS uint64, shed bool) {
	if s == nil {
		return
	}
	b := &s.buckets[sec%int64(len(s.buckets))]
	for {
		e := b.epoch.Load()
		if e == sec {
			break
		}
		if e > sec {
			return // bucket already reused for a newer second; drop
		}
		if b.epoch.CompareAndSwap(e, sec) {
			// Winner of the new second zeroes the bucket.
			b.count.Store(0)
			b.shed.Store(0)
			b.sumNS.Store(0)
			for i := range b.hist {
				b.hist[i].Store(0)
			}
			break
		}
	}
	b.count.Add(1)
	b.sumNS.Add(durNS)
	b.hist[bucketOf(durNS)].Add(1)
	if shed {
		b.shed.Add(1)
	}
}

// Report aggregates the window ending now. Nil-safe (zero report).
func (s *SLO) Report() SLOReport {
	if s == nil {
		return SLOReport{}
	}
	return s.ReportAt(time.Now().Unix())
}

// ReportAt aggregates the buckets with epochs in (sec-window, sec].
func (s *SLO) ReportAt(sec int64) SLOReport {
	rep := SLOReport{ShedBudget: s.budget, ShedWithinBudget: true}
	if s == nil {
		return rep
	}
	rep.WindowSec = int(s.window)
	var merged [histBuckets]uint64
	var sum uint64
	for i := range s.buckets {
		b := &s.buckets[i]
		e := b.epoch.Load()
		if e <= sec-s.window || e > sec {
			continue
		}
		rep.Requests += b.count.Load()
		rep.Shed += b.shed.Load()
		sum += b.sumNS.Load()
		for j := range merged {
			merged[j] += b.hist[j].Load()
		}
	}
	if rep.Requests > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Requests)
		rep.MeanNS = float64(sum) / float64(rep.Requests)
		rep.P50NS = histPercentile(&merged, 0.50)
		rep.P99NS = histPercentile(&merged, 0.99)
		rep.P999NS = histPercentile(&merged, 0.999)
	}
	rep.ShedWithinBudget = rep.ShedRate <= s.budget
	return rep
}

// Budget returns the configured shed-rate budget.
func (s *SLO) Budget() float64 {
	if s == nil {
		return 0
	}
	return s.budget
}

// Window returns the window length in seconds.
func (s *SLO) Window() int {
	if s == nil {
		return 0
	}
	return int(s.window)
}
