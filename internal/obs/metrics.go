package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Metrics is a minimal Prometheus-text-format metric registry, stdlib
// only. It deliberately has no write API of its own: every series is
// backed either by a read function over counters the instrumented code
// already maintains (atomics, engine state) or by an existing
// *Histogram — registration adds zero work to any hot path, and a
// scrape is nothing but atomic loads. That is what keeps the serving
// invariants intact: a metrics-enabled run performs the same stores a
// bare run does, so it is bit-identical and stays at 0 allocs/request.
//
// Registration (cold path, start-up only) groups series into families
// keyed by metric name: the first registration of a name fixes its HELP
// text and TYPE, later registrations append label-distinguished series
// to the same family. Exposition renders families in sorted name order,
// series in registration order, in the Prometheus text format
// (version 0.0.4).
type Metrics struct {
	mu       sync.Mutex
	families map[string]*metricFamily
}

// Label is one name="value" pair attached to a series.
type Label struct {
	Name  string
	Value string
}

type metricFamily struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	series []metricSeries
}

type metricSeries struct {
	labels string // pre-rendered `{k="v",...}`, or ""
	value  func() float64
	hist   *Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{families: make(map[string]*metricFamily)} }

// Counter registers a monotonically non-decreasing series backed by fn.
// The monotonicity contract is the caller's: back counters only by
// counters. Nil-safe: a nil registry ignores the registration.
func (m *Metrics) Counter(name, help string, labels []Label, fn func() float64) {
	m.register(name, help, "counter", labels, fn, nil)
}

// Gauge registers a point-in-time series backed by fn.
func (m *Metrics) Gauge(name, help string, labels []Label, fn func() float64) {
	m.register(name, help, "gauge", labels, fn, nil)
}

// Histogram registers h as a Prometheus histogram series. The log₂
// buckets are exposed cumulatively with le upper bounds of 2^b
// nanoseconds converted to seconds: bucket b of the source holds
// durations in [2^(b-1), 2^b) ns, so the cumulative count through
// bucket b is exactly the count of samples ≤ 2^b ns.
func (m *Metrics) Histogram(name, help string, labels []Label, h *Histogram) {
	m.register(name, help, "histogram", labels, nil, h)
}

func (m *Metrics) register(name, help, typ string, labels []Label, fn func() float64, h *Histogram) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	fam := m.families[name]
	if fam == nil {
		fam = &metricFamily{name: name, help: help, typ: typ}
		m.families[name] = fam
	} else if fam.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, fam.typ, typ))
	}
	fam.series = append(fam.series, metricSeries{labels: renderLabels(labels), value: fn, hist: h})
}

// renderLabels builds the series' `{k="v",...}` suffix once, at
// registration time, with the three text-format escapes applied.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format. Values are read at render time (atomic loads, not
// mutually consistent across series — the usual scrape semantics).
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	names := make([]string, 0, len(m.families))
	for name := range m.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*metricFamily, len(names))
	for i, name := range names {
		fams[i] = m.families[name]
	}
	m.mu.Unlock()

	var buf []byte
	for _, fam := range fams {
		buf = buf[:0]
		buf = append(buf, "# HELP "...)
		buf = append(buf, fam.name...)
		buf = append(buf, ' ')
		buf = append(buf, fam.help...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, fam.name...)
		buf = append(buf, ' ')
		buf = append(buf, fam.typ...)
		buf = append(buf, '\n')
		for i := range fam.series {
			s := &fam.series[i]
			if s.hist != nil {
				buf = appendHistSeries(buf, fam.name, s.labels, s.hist)
				continue
			}
			buf = append(buf, fam.name...)
			buf = append(buf, s.labels...)
			buf = append(buf, ' ')
			buf = strconv.AppendFloat(buf, s.value(), 'g', -1, 64)
			buf = append(buf, '\n')
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// appendHistSeries renders one histogram series: the cumulative
// _bucket{le=...} lines (empty trailing tail collapsed into +Inf), then
// _sum (seconds) and _count.
func appendHistSeries(buf []byte, name, labels string, h *Histogram) []byte {
	var snap [histBuckets]uint64
	var total uint64
	for b := range snap {
		snap[b] = h.hist[b].Load()
		total += snap[b]
	}
	// Find the last non-empty bucket so the exposition doesn't carry 40
	// flat lines per series; every bucket up to it is emitted so scrapes
	// of the same histogram always nest.
	last := 0
	for b := range snap {
		if snap[b] != 0 {
			last = b
		}
	}
	var cum uint64
	for b := 0; b <= last; b++ {
		cum += snap[b]
		buf = appendHistBucket(buf, name, labels, bucketLESeconds(b), cum)
	}
	buf = appendHistBucketInf(buf, name, labels, total)
	buf = append(buf, name...)
	buf = append(buf, "_sum"...)
	buf = append(buf, labels...)
	buf = append(buf, ' ')
	buf = strconv.AppendFloat(buf, float64(h.sumNS.Load())/1e9, 'g', -1, 64)
	buf = append(buf, '\n')
	buf = append(buf, name...)
	buf = append(buf, "_count"...)
	buf = append(buf, labels...)
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, total, 10)
	buf = append(buf, '\n')
	return buf
}

// bucketLESeconds is bucket b's upper bound in seconds: 2^b ns.
func bucketLESeconds(b int) float64 {
	return float64(uint64(1)<<uint(b)) / 1e9
}

func appendHistBucket(buf []byte, name, labels string, le float64, cum uint64) []byte {
	buf = append(buf, name...)
	buf = append(buf, "_bucket"...)
	buf = appendBucketLabels(buf, labels, strconv.FormatFloat(le, 'g', -1, 64))
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, cum, 10)
	return append(buf, '\n')
}

func appendHistBucketInf(buf []byte, name, labels string, total uint64) []byte {
	buf = append(buf, name...)
	buf = append(buf, "_bucket"...)
	buf = appendBucketLabels(buf, labels, "+Inf")
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, total, 10)
	return append(buf, '\n')
}

// appendBucketLabels splices le="..." into an existing label set (or
// opens a fresh one).
func appendBucketLabels(buf []byte, labels, le string) []byte {
	if labels == "" {
		buf = append(buf, `{le="`...)
		buf = append(buf, le...)
		return append(buf, `"}`...)
	}
	buf = append(buf, labels[:len(labels)-1]...) // drop the closing '}'
	buf = append(buf, `,le="`...)
	buf = append(buf, le...)
	return append(buf, `"}`...)
}

// Handler returns the /metrics scrape handler.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WritePrometheus(w) //nolint:errcheck // client gone is fine
	})
}

// RegisterProbe exposes a probe's per-phase histograms and slot counter
// under the standard family names. Nil-safe on both sides.
func (m *Metrics) RegisterProbe(p *Probe) {
	if m == nil || p == nil {
		return
	}
	for ph := Phase(0); ph < NumPhases; ph++ {
		m.Histogram("lfsc_phase_duration_seconds", "Per-phase wall time of the slot loop.",
			[]Label{{"phase", ph.String()}}, p.Phase(ph))
	}
	m.Counter("lfsc_probe_slots_total", "Completed slots recorded by the probe.",
		nil, func() float64 { return float64(p.Slots()) })
}
