package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// RunStatus is the live telemetry of one simulation run. The run loop is
// the only writer (RecordSlot); readers (the HTTP status page, the
// progress logger) see atomically consistent per-field values. A nil
// *RunStatus disables every method, mirroring the Probe contract.
type RunStatus struct {
	// Policy is the display name of the policy being run.
	Policy string
	// T is the run's horizon (0 when unknown).
	T int

	start      time.Time
	slots      atomic.Int64
	rewardBits atomic.Uint64 // float64 bits of the cumulative reward
	doneAtNS   atomic.Int64  // wall nanos at Finish, 0 while running
}

// RecordSlot accounts one completed slot and its realised reward.
// Single-writer: only the run loop calls it, so a plain load-add-store on
// the float bits is race-free while staying atomic for readers.
func (r *RunStatus) RecordSlot(reward float64) {
	if r == nil {
		return
	}
	cur := math.Float64frombits(r.rewardBits.Load())
	r.rewardBits.Store(math.Float64bits(cur + reward))
	r.slots.Add(1)
}

// Finish marks the run complete (freezing its elapsed time and rate).
func (r *RunStatus) Finish() {
	if r == nil {
		return
	}
	r.doneAtNS.CompareAndSwap(0, time.Since(r.start).Nanoseconds())
}

// Done reports whether the run has finished.
func (r *RunStatus) Done() bool { return r != nil && r.doneAtNS.Load() != 0 }

// Slots returns the number of completed slots.
func (r *RunStatus) Slots() int64 {
	if r == nil {
		return 0
	}
	return r.slots.Load()
}

// CumReward returns the cumulative reward recorded so far.
func (r *RunStatus) CumReward() float64 {
	if r == nil {
		return 0
	}
	return math.Float64frombits(r.rewardBits.Load())
}

// Elapsed returns the run's wall time (frozen once finished).
func (r *RunStatus) Elapsed() time.Duration {
	if r == nil {
		return 0
	}
	if d := r.doneAtNS.Load(); d != 0 {
		return time.Duration(d)
	}
	return time.Since(r.start)
}

// Rate returns the average slot rate in slots/second.
func (r *RunStatus) Rate() float64 {
	e := r.Elapsed().Seconds()
	if e <= 0 {
		return 0
	}
	return float64(r.Slots()) / e
}

// Registry tracks the runs of a process for live surfacing. Runs register
// at start (an allocation, but one per run, not per slot) and are never
// removed — a status page wants to show finished runs too.
type Registry struct {
	mu   sync.Mutex
	runs []*RunStatus
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// NewRun registers a run and returns its status handle. Safe to call on a
// nil registry (returns nil, which disables all RunStatus methods).
func (g *Registry) NewRun(policy string, T int) *RunStatus {
	if g == nil {
		return nil
	}
	rs := &RunStatus{Policy: policy, T: T, start: time.Now()}
	g.mu.Lock()
	g.runs = append(g.runs, rs)
	g.mu.Unlock()
	return rs
}

// Runs returns the registered runs in registration order.
func (g *Registry) Runs() []*RunStatus {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*RunStatus(nil), g.runs...)
}

// TotalSlots sums the completed slots across every registered run.
func (g *Registry) TotalSlots() int64 {
	var total int64
	for _, r := range g.Runs() {
		total += r.Slots()
	}
	return total
}
