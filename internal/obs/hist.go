package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free, allocation-free log₂-bucketed duration
// histogram: the recording state behind each probe phase, exported so
// other layers (the serving daemon's request-latency tracking) can reuse
// the same machinery and fidelity. All fields are atomics — concurrent
// writers and readers (HTTP status handlers) need no coordination — and
// the zero value is ready to use. A nil *Histogram disables every method
// behind a single nil check, matching the Probe contract.
type Histogram struct {
	count atomic.Uint64
	sumNS atomic.Uint64
	hist  [histBuckets]atomic.Uint64
}

// Record adds one sample of ns nanoseconds.
func (h *Histogram) Record(ns uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sumNS.Add(ns)
	h.hist[bucketOf(ns)].Add(1)
}

// Observe records the elapsed time since start (a time.Now() captured at
// the operation's entry). Negative clock skews record as zero.
func (h *Histogram) Observe(start time.Time) {
	if h == nil {
		return
	}
	d := time.Since(start)
	if d < 0 {
		d = 0
	}
	h.Record(uint64(d))
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// TotalNS returns the summed duration of all recorded samples.
func (h *Histogram) TotalNS() uint64 {
	if h == nil {
		return 0
	}
	return h.sumNS.Load()
}

// Reset zeroes every counter.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	h.count.Store(0)
	h.sumNS.Store(0)
	for b := range h.hist {
		h.hist[b].Store(0)
	}
}

// Stat snapshots the histogram into a PhaseStat labelled with the given
// name. Reads are atomic per counter but not mutually consistent across
// counters — fine for monitoring. A histogram with no samples yields a
// zero-count stat.
func (h *Histogram) Stat(label string) PhaseStat {
	if h == nil {
		return PhaseStat{Phase: label}
	}
	n := h.count.Load()
	if n == 0 {
		return PhaseStat{Phase: label}
	}
	var snap [histBuckets]uint64
	for b := range snap {
		snap[b] = h.hist[b].Load()
	}
	sum := h.sumNS.Load()
	return PhaseStat{
		Phase:   label,
		Count:   n,
		TotalNS: sum,
		MeanNS:  float64(sum) / float64(n),
		P50NS:   histPercentile(&snap, 0.50),
		P90NS:   histPercentile(&snap, 0.90),
		P99NS:   histPercentile(&snap, 0.99),
		P999NS:  histPercentile(&snap, 0.999),
	}
}

// histPercentile returns the approximate q-quantile of a bucketed
// sample: the geometric midpoint of the bucket holding the exact
// rank-⌈q·n⌉ order statistic. The error bound follows from the log₂
// bucketing — the true value v lies in [2^(b-1), 2^b) while the
// estimate is 1.5·2^(b-1), so estimate/v ∈ (0.75, 1.5] for every q and
// every sample (pinned by TestHistPercentileAccuracy).
func histPercentile(hist *[histBuckets]uint64, q float64) float64 {
	var total uint64
	for _, n := range hist {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for b, n := range hist {
		seen += n
		if seen >= rank {
			return bucketMidNS(b)
		}
	}
	return bucketMidNS(histBuckets - 1)
}
