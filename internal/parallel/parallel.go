// Package parallel provides the small parallel runtime used by the simulator:
// a bounded worker pool, a chunked parallel-for, and a map-reduce helper.
//
// The experiment harness runs many independent simulation replicas (one per
// random seed) and, inside a replica, the per-SCN probability computation of
// LFSC is embarrassingly parallel. Everything here is stdlib-only
// (sync + runtime) and deterministic in its results: parallelism never
// changes *what* is computed, only *when* — callers supply per-index RNG
// streams (rng.Stream.Derive) so output is independent of scheduling.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// panicBox captures the first panic raised inside a worker goroutine so
// the coordinating goroutine can re-raise it after Wait — a panic in a
// loop body then unwinds the caller instead of crashing the process from
// an unrelated goroutine.
type panicBox struct {
	val  atomic.Pointer[panicValue]
	once sync.Once
}

type panicValue struct{ v any }

// guard runs fn(i), recording a panic instead of letting it escape the
// worker goroutine.
func (p *panicBox) guard(fn func(int), i int) {
	defer func() {
		if r := recover(); r != nil {
			p.once.Do(func() { p.val.Store(&panicValue{v: r}) })
		}
	}()
	fn(i)
}

// rethrow re-raises the recorded panic, if any, on the caller.
func (p *panicBox) rethrow() {
	if pv := p.val.Load(); pv != nil {
		panic(pv.v)
	}
}

// DefaultWorkers returns the default worker count: GOMAXPROCS clamped to at
// least 1.
func DefaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// For runs fn(i) for each i in [0,n) on up to workers goroutines
// (workers <= 0 means DefaultWorkers). It blocks until all iterations
// complete. Iterations are distributed in contiguous chunks to keep
// per-iteration overhead low for the short loop bodies typical here.
// A panic in fn propagates to the caller (the first one, when several
// workers panic) after all workers have stopped.
func For(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var pb panicBox
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				pb.guard(fn, i)
			}
		}(lo, hi)
	}
	wg.Wait()
	pb.rethrow()
}

// ForDynamic runs fn(i) for each i in [0,n) with dynamic (work-stealing-ish)
// scheduling: workers pull the next index from a shared counter. Use it when
// iteration costs are highly uneven, e.g. simulation replicas with different
// horizons. Every index still runs exactly once even when some panic; the
// first panic propagates to the caller after all workers have stopped.
func ForDynamic(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var mu sync.Mutex
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(n) {
			return 0, false
		}
		i := int(next)
		next++
		return i, true
	}
	var pb panicBox
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := take()
				if !ok {
					return
				}
				pb.guard(fn, i)
			}
		}()
	}
	wg.Wait()
	pb.rethrow()
}

// Map applies fn to each index and collects the results in order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// MapReduce applies fn to each index and folds the results with reduce,
// which must be associative and commutative. zero is the reduction identity.
// Partial reductions happen per worker without locks; the final fold is
// sequential over at most `workers` partials.
func MapReduce[T any](n, workers int, zero T, fn func(i int) T, reduce func(a, b T) T) T {
	if n <= 0 {
		return zero
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	partials := make([]T, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := zero
			for i := lo; i < hi; i++ {
				acc = reduce(acc, fn(i))
			}
			partials[w] = acc
		}(w, lo, hi)
	}
	wg.Wait()
	acc := zero
	for _, p := range partials {
		acc = reduce(acc, p)
	}
	return acc
}

// Pool is a long-lived worker pool for submitting independent tasks.
// It exists for the CLI tools, which interleave simulation work with
// progress reporting and want a fixed concurrency ceiling across
// heterogeneous jobs.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup
	once  sync.Once
}

// NewPool starts a pool with the given number of workers
// (<= 0 means DefaultWorkers).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	p := &Pool{tasks: make(chan func(), 4*workers)}
	for i := 0; i < workers; i++ {
		go func() {
			for task := range p.tasks {
				task()
				p.wg.Done()
			}
		}()
	}
	return p
}

// Submit enqueues a task. It must not be called after Close.
func (p *Pool) Submit(task func()) {
	p.wg.Add(1)
	p.tasks <- task
}

// Wait blocks until all submitted tasks have finished.
func (p *Pool) Wait() { p.wg.Wait() }

// Close waits for outstanding tasks and shuts the workers down.
// The pool must not be used afterwards.
func (p *Pool) Close() {
	p.wg.Wait()
	p.once.Do(func() { close(p.tasks) })
}
