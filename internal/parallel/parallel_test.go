package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 1000
		var seen [n]int32
		For(n, workers, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEmptyAndSmall(t *testing.T) {
	For(0, 4, func(int) { t.Fatal("should not run") })
	ran := false
	For(1, 8, func(i int) { ran = true })
	if !ran {
		t.Fatal("single iteration did not run")
	}
}

func TestForDynamicCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		const n = 500
		var seen [n]int32
		ForDynamic(n, workers, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForDynamicFewerItemsThanWorkers(t *testing.T) {
	// n < workers must clamp, run every index exactly once, and not leak
	// idle goroutines that touch the counter after return.
	for _, n := range []int{1, 2, 3} {
		var seen [3]int32
		ForDynamic(n, 16, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i := 0; i < n; i++ {
			if seen[i] != 1 {
				t.Fatalf("n=%d index %d visited %d times", n, i, seen[i])
			}
		}
		for i := n; i < len(seen); i++ {
			if seen[i] != 0 {
				t.Fatalf("n=%d out-of-range index %d visited", n, i)
			}
		}
	}
}

func TestForDynamicZeroItems(t *testing.T) {
	ForDynamic(0, 8, func(int) { t.Fatal("should not run") })
	ForDynamic(-3, 8, func(int) { t.Fatal("should not run") })
}

// panics reports the recovered value of f, or nil if it returned.
func panics(f func()) (val any) {
	defer func() { val = recover() }()
	f()
	return nil
}

func TestForDynamicPanicPropagates(t *testing.T) {
	// Single worker (inline path) and multi-worker must both surface the
	// panic on the caller, and the remaining indices must still complete
	// so shared state is never left half-processed.
	for _, workers := range []int{1, 4} {
		const n = 100
		var ran int32
		got := panics(func() {
			ForDynamic(n, workers, func(i int) {
				if i == 13 {
					panic("boom 13")
				}
				atomic.AddInt32(&ran, 1)
			})
		})
		if got != "boom 13" {
			t.Fatalf("workers=%d: panic not propagated, recovered %v", workers, got)
		}
		if workers > 1 && atomic.LoadInt32(&ran) != n-1 {
			t.Fatalf("workers=%d: %d of %d non-panicking indices ran", workers, ran, n-1)
		}
	}
}

func TestForPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		got := panics(func() {
			For(50, workers, func(i int) {
				if i == 7 {
					panic("boom 7")
				}
			})
		})
		if got != "boom 7" {
			t.Fatalf("workers=%d: panic not propagated, recovered %v", workers, got)
		}
	}
}

func TestForDynamicFirstPanicWins(t *testing.T) {
	// Several workers panicking concurrently: exactly one value surfaces
	// and the call still returns (no deadlock, no goroutine crash).
	got := panics(func() {
		ForDynamic(64, 8, func(i int) { panic(i) })
	})
	if _, ok := got.(int); !ok {
		t.Fatalf("recovered %T %v, want an index", got, got)
	}
}

func TestMapOrder(t *testing.T) {
	out := Map(100, 8, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapReduceSum(t *testing.T) {
	got := MapReduce(1000, 8, 0,
		func(i int) int { return i },
		func(a, b int) int { return a + b })
	if got != 999*1000/2 {
		t.Fatalf("sum = %d", got)
	}
}

func TestMapReduceEmpty(t *testing.T) {
	got := MapReduce(0, 8, 42, func(int) int { return 0 }, func(a, b int) int { return a + b })
	if got != 42 {
		t.Fatalf("empty reduce should return zero value, got %d", got)
	}
}

func TestMapReduceMatchesSerial(t *testing.T) {
	fn := func(i int) float64 { return float64(i%7) * 0.5 }
	serial := 0.0
	for i := 0; i < 777; i++ {
		serial += fn(i)
	}
	par := MapReduce(777, 5, 0.0, fn, func(a, b float64) float64 { return a + b })
	if diff := par - serial; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("parallel %v != serial %v", par, serial)
	}
}

func TestPool(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var count int64
	for i := 0; i < 100; i++ {
		p.Submit(func() { atomic.AddInt64(&count, 1) })
	}
	p.Wait()
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
	// Pool remains usable after Wait.
	p.Submit(func() { atomic.AddInt64(&count, 1) })
	p.Wait()
	if count != 101 {
		t.Fatalf("count after reuse = %d", count)
	}
}

func TestPoolConcurrentSubmitters(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var count int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.Submit(func() { atomic.AddInt64(&count, 1) })
			}
		}()
	}
	wg.Wait()
	p.Wait()
	if count != 400 {
		t.Fatalf("count = %d", count)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		For(64, 4, func(int) {})
	}
}
