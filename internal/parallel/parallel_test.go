package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 1000
		var seen [n]int32
		For(n, workers, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEmptyAndSmall(t *testing.T) {
	For(0, 4, func(int) { t.Fatal("should not run") })
	ran := false
	For(1, 8, func(i int) { ran = true })
	if !ran {
		t.Fatal("single iteration did not run")
	}
}

func TestForDynamicCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		const n = 500
		var seen [n]int32
		ForDynamic(n, workers, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestMapOrder(t *testing.T) {
	out := Map(100, 8, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapReduceSum(t *testing.T) {
	got := MapReduce(1000, 8, 0,
		func(i int) int { return i },
		func(a, b int) int { return a + b })
	if got != 999*1000/2 {
		t.Fatalf("sum = %d", got)
	}
}

func TestMapReduceEmpty(t *testing.T) {
	got := MapReduce(0, 8, 42, func(int) int { return 0 }, func(a, b int) int { return a + b })
	if got != 42 {
		t.Fatalf("empty reduce should return zero value, got %d", got)
	}
}

func TestMapReduceMatchesSerial(t *testing.T) {
	fn := func(i int) float64 { return float64(i%7) * 0.5 }
	serial := 0.0
	for i := 0; i < 777; i++ {
		serial += fn(i)
	}
	par := MapReduce(777, 5, 0.0, fn, func(a, b float64) float64 { return a + b })
	if diff := par - serial; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("parallel %v != serial %v", par, serial)
	}
}

func TestPool(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var count int64
	for i := 0; i < 100; i++ {
		p.Submit(func() { atomic.AddInt64(&count, 1) })
	}
	p.Wait()
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
	// Pool remains usable after Wait.
	p.Submit(func() { atomic.AddInt64(&count, 1) })
	p.Wait()
	if count != 101 {
		t.Fatalf("count after reuse = %d", count)
	}
}

func TestPoolConcurrentSubmitters(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var count int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.Submit(func() { atomic.AddInt64(&count, 1) })
			}
		}()
	}
	wg.Wait()
	p.Wait()
	if count != 400 {
		t.Fatalf("count = %d", count)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}

func BenchmarkForOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		For(64, 4, func(int) {})
	}
}
