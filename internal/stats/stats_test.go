package stats

import (
	"math"
	"testing"
	"testing/quick"

	"lfsc/internal/rng"
)

func almostEq(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !almostEq(s.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", s.Mean())
	}
	// Population variance is 4; unbiased sample variance is 32/7.
	if !almostEq(s.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("var = %v", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if !almostEq(s.Sum(), 40, 1e-9) {
		t.Fatalf("sum = %v", s.Sum())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.CI95() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	r := rng.New(1)
	if err := quick.Check(func(na, nb uint8) bool {
		var a, b, all Summary
		for i := 0; i < int(na); i++ {
			x := r.Normal(1, 3)
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < int(nb); i++ {
			x := r.Normal(-2, 0.5)
			b.Add(x)
			all.Add(x)
		}
		a.Merge(&b)
		return a.N() == all.N() &&
			almostEq(a.Mean(), all.Mean(), 1e-9) &&
			almostEq(a.Var(), all.Var(), 1e-6) &&
			almostEq(a.Min(), all.Min(), 0) &&
			almostEq(a.Max(), all.Max(), 0)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Fatalf("q25 = %v", q)
	}
	// Input must be unmodified.
	if xs[0] != 3 {
		t.Fatal("Quantile mutated input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestMeanSum(t *testing.T) {
	if !almostEq(Mean([]float64{1, 2, 3}), 2, 1e-12) {
		t.Fatal("Mean")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
	if Sum([]float64{1.5, 2.5}) != 4 {
		t.Fatal("Sum")
	}
}

func TestEMA(t *testing.T) {
	e := NewEMA(0.5)
	if v := e.Add(10); v != 10 {
		t.Fatalf("first EMA value %v", v)
	}
	if v := e.Add(0); v != 5 {
		t.Fatalf("second EMA value %v", v)
	}
	if e.Value() != 5 {
		t.Fatal("Value mismatch")
	}
}

func TestEMAPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEMA(0) did not panic")
		}
	}()
	NewEMA(0)
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b, r2 := LinearFit(xs, ys)
	if !almostEq(a, 1, 1e-9) || !almostEq(b, 2, 1e-9) || !almostEq(r2, 1, 1e-9) {
		t.Fatalf("fit = %v %v %v", a, b, r2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	a, b, _ := LinearFit([]float64{1, 1}, []float64{2, 3})
	if !math.IsNaN(a) || !math.IsNaN(b) {
		t.Fatal("constant x should produce NaN fit")
	}
	if _, _, r2 := LinearFit([]float64{1, 2}, []float64{5, 5}); r2 != 1 {
		t.Fatal("constant y should report r2=1")
	}
}

func TestGrowthExponent(t *testing.T) {
	// y(t) = t^0.5 should give exponent ~0.5.
	series := make([]float64, 4000)
	for t0 := range series {
		series[t0] = math.Sqrt(float64(t0 + 1))
	}
	got := GrowthExponent(series)
	if !almostEq(got, 0.5, 0.02) {
		t.Fatalf("exponent %v, want ~0.5", got)
	}
	// Linear growth → exponent ~1.
	for t0 := range series {
		series[t0] = 3 * float64(t0+1)
	}
	if got := GrowthExponent(series); !almostEq(got, 1.0, 0.02) {
		t.Fatalf("exponent %v, want ~1", got)
	}
}

func TestCumulative(t *testing.T) {
	got := Cumulative([]float64{1, 2, 3})
	want := []float64{1, 3, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cumulative = %v", got)
		}
	}
}

func TestWindowMean(t *testing.T) {
	got := WindowMean([]float64{1, 2, 3, 4}, 2)
	want := []float64{1, 1.5, 2.5, 3.5}
	for i := range want {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Fatalf("window mean = %v", got)
		}
	}
	// Window wider than the series behaves as a running mean.
	got = WindowMean([]float64{2, 4}, 10)
	if !almostEq(got[1], 3, 1e-12) {
		t.Fatalf("wide window mean = %v", got)
	}
}

func TestDownsample(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	idx, vals := Downsample(xs, 10)
	if len(vals) != 10 || len(idx) != 10 {
		t.Fatalf("downsample lengths %d/%d", len(idx), len(vals))
	}
	// Bucket means of 0..99 in tens: 4.5, 14.5, ...
	for b := 0; b < 10; b++ {
		if !almostEq(vals[b], float64(b)*10+4.5, 1e-9) {
			t.Fatalf("bucket %d = %v", b, vals[b])
		}
	}
	// Short series passes through.
	idx, vals = Downsample([]float64{7, 8}, 10)
	if len(vals) != 2 || vals[0] != 7 || idx[1] != 1 {
		t.Fatal("short series should pass through")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0.05, 0.15, 0.95, -1, 2}, 0, 1, 10)
	if h[0] != 2 { // 0.05 and clamped -1
		t.Fatalf("bin0 = %d", h[0])
	}
	if h[1] != 1 || h[9] != 2 {
		t.Fatalf("hist = %v", h)
	}
	if Histogram(nil, 1, 0, 10) != nil {
		t.Fatal("invalid range should return nil")
	}
}

func TestQuantileAgainstUniform(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if !almostEq(Quantile(xs, q), q, 0.02) {
			t.Fatalf("uniform quantile %v = %v", q, Quantile(xs, q))
		}
	}
}
