// Package stats is a small statistics toolkit used by the metrics collector
// and the experiment harness: streaming summaries (Welford), quantiles,
// exponential moving averages, simple linear regression (for checking the
// sub-linear growth of regret/violation curves on log-log axes), and series
// utilities (cumulative sums, window means, downsampling for reports).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a streaming mean/variance/min/max via Welford's
// algorithm. The zero value is ready to use.
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddAll incorporates a slice of observations.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 points).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the minimum observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the maximum observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// Sum returns mean*n, the total of all observations.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// CI95 returns the half-width of a 95% normal-approximation confidence
// interval for the mean.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.Std() / math.Sqrt(float64(s.n))
}

// String renders the summary compactly for report footers.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.Std(), s.min, s.max)
}

// Merge combines another summary into s (parallel-reduce friendly;
// Chan et al. parallel variance update).
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	mean := s.mean + d*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	min, max := s.min, s.max
	if o.min < min {
		min = o.min
	}
	if o.max > max {
		max = o.max
	}
	*s = Summary{n: n, mean: mean, m2: m2, min: min, max: max}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the total of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// EMA holds an exponential moving average with smoothing factor alpha in
// (0,1]; larger alpha tracks faster. The zero value must be configured via
// NewEMA.
type EMA struct {
	alpha   float64
	value   float64
	started bool
}

// NewEMA returns an EMA with the given smoothing factor.
func NewEMA(alpha float64) *EMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EMA alpha must be in (0,1]")
	}
	return &EMA{alpha: alpha}
}

// Add incorporates an observation and returns the updated average.
func (e *EMA) Add(x float64) float64 {
	if !e.started {
		e.value = x
		e.started = true
	} else {
		e.value += e.alpha * (x - e.value)
	}
	return e.value
}

// Value returns the current average (0 before any observation).
func (e *EMA) Value() float64 { return e.value }

// LinearFit fits y = a + b*x by least squares and returns (a, b, r2).
// Used by the harness to estimate growth exponents of cumulative regret:
// fitting log(R(t)) against log(t) gives the empirical exponent b, which
// should be < 1 for sub-linear regret.
func LinearFit(xs, ys []float64) (a, b, r2 float64) {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		r2 = 1
	} else {
		r2 = sxy * sxy / (sxx * syy)
	}
	return a, b, r2
}

// GrowthExponent estimates the exponent theta for a cumulative series
// y(t) ≈ C * t^theta by a log-log linear fit over the second half of the
// series (skipping the noisy burn-in). Points with y <= 0 are ignored.
// Returns NaN when fewer than 2 usable points remain.
func GrowthExponent(series []float64) float64 {
	start := len(series) / 2
	var lx, ly []float64
	for t := start; t < len(series); t++ {
		if series[t] > 0 {
			lx = append(lx, math.Log(float64(t+1)))
			ly = append(ly, math.Log(series[t]))
		}
	}
	_, b, _ := LinearFit(lx, ly)
	return b
}

// Cumulative returns the running sum of xs as a new slice.
func Cumulative(xs []float64) []float64 {
	out := make([]float64, len(xs))
	acc := 0.0
	for i, x := range xs {
		acc += x
		out[i] = acc
	}
	return out
}

// WindowMean returns xs smoothed by a trailing window of width w (w >= 1).
// Entry i averages xs[max(0,i-w+1)..i].
func WindowMean(xs []float64, w int) []float64 {
	if w < 1 {
		panic("stats: WindowMean window must be >= 1")
	}
	out := make([]float64, len(xs))
	acc := 0.0
	for i, x := range xs {
		acc += x
		if i >= w {
			acc -= xs[i-w]
		}
		n := w
		if i+1 < w {
			n = i + 1
		}
		out[i] = acc / float64(n)
	}
	return out
}

// Downsample reduces xs to at most n points by averaging equal-width buckets,
// preserving the overall shape for compact report figures. It returns the
// bucket centers (as fractional original indices) alongside the values.
func Downsample(xs []float64, n int) (idx []float64, vals []float64) {
	if n <= 0 || len(xs) == 0 {
		return nil, nil
	}
	if len(xs) <= n {
		idx = make([]float64, len(xs))
		for i := range xs {
			idx[i] = float64(i)
		}
		return idx, append([]float64(nil), xs...)
	}
	idx = make([]float64, n)
	vals = make([]float64, n)
	for b := 0; b < n; b++ {
		lo := b * len(xs) / n
		hi := (b + 1) * len(xs) / n
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += xs[i]
		}
		vals[b] = sum / float64(hi-lo)
		idx[b] = float64(lo+hi-1) / 2
	}
	return idx, vals
}

// Clamp restricts x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Histogram counts xs into nbins equal-width bins over [lo,hi); values
// outside the range are clamped into the edge bins.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 || hi <= lo {
		return nil
	}
	counts := make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}
