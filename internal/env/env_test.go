package env

import (
	"math"
	"testing"

	"lfsc/internal/rng"
)

func newEnv(t *testing.T, cfg Config) *Env {
	t.Helper()
	e, err := New(cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(30, 27)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.SCNs = 0 },
		func(c *Config) { c.Cells = -1 },
		func(c *Config) { c.URange = [2]float64{0.5, 0.2} },
		func(c *Config) { c.URange = [2]float64{0, 1.5} },
		func(c *Config) { c.VRange = [2]float64{-0.1, 1} },
		func(c *Config) { c.QRange = [2]float64{0, 2} },
		func(c *Config) { c.UNoise = -1 },
		func(c *Config) { c.Mode = Piecewise; c.SwitchEvery = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig(30, 27)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestMeansInRange(t *testing.T) {
	cfg := DefaultConfig(10, 27)
	cfg.VRange = [2]float64{0.3, 0.9}
	e := newEnv(t, cfg)
	for m := 0; m < cfg.SCNs; m++ {
		for f := 0; f < cfg.Cells; f++ {
			if u := e.MeanReward(m, f); u < 0 || u > 1 {
				t.Fatalf("uMean[%d][%d] = %v", m, f, u)
			}
			if v := e.MeanLikelihood(m, f); v < 0.3 || v > 0.9 {
				t.Fatalf("vMean[%d][%d] = %v outside configured range", m, f, v)
			}
			if q := e.MeanConsumption(m, f); q < 1 || q > 2 {
				t.Fatalf("qMean[%d][%d] = %v", m, f, q)
			}
		}
	}
}

func TestDeterministicConstruction(t *testing.T) {
	cfg := DefaultConfig(5, 9)
	a, _ := New(cfg, rng.New(7))
	b, _ := New(cfg, rng.New(7))
	for m := 0; m < 5; m++ {
		for f := 0; f < 9; f++ {
			if a.MeanReward(m, f) != b.MeanReward(m, f) {
				t.Fatal("same seed produced different environments")
			}
		}
	}
}

func TestDrawStatistics(t *testing.T) {
	cfg := DefaultConfig(2, 4)
	e := newEnv(t, cfg)
	r := rng.New(9)
	const n = 30000
	var sumU, sumV, sumQ float64
	for i := 0; i < n; i++ {
		o := e.Draw(1, 2, r)
		if o.U < 0 || o.U > 1 {
			t.Fatalf("U realisation %v out of [0,1]", o.U)
		}
		if o.Q < 1 || o.Q > 2 {
			t.Fatalf("Q realisation %v out of [1,2]", o.Q)
		}
		sumU += o.U
		sumV += o.V()
		sumQ += o.Q
	}
	if got, want := sumU/n, e.MeanReward(1, 2); math.Abs(got-want) > 0.03 {
		t.Fatalf("empirical U mean %v vs %v", got, want)
	}
	if got, want := sumV/n, e.MeanLikelihood(1, 2); math.Abs(got-want) > 0.02 {
		t.Fatalf("empirical completion rate %v vs %v", got, want)
	}
	if got, want := sumQ/n, e.MeanConsumption(1, 2); math.Abs(got-want) > 0.03 {
		t.Fatalf("empirical Q mean %v vs %v", got, want)
	}
}

func TestOutcomeCompound(t *testing.T) {
	o := Outcome{U: 0.8, Completed: true, Q: 1.6}
	if g := o.Compound(); math.Abs(g-0.5) > 1e-12 {
		t.Fatalf("compound = %v", g)
	}
	o.Completed = false
	if o.Compound() != 0 {
		t.Fatal("failed task should yield zero compound reward")
	}
	if o.V() != 0 || (Outcome{Completed: true}).V() != 1 {
		t.Fatal("V indicator wrong")
	}
	if (Outcome{U: 1, Completed: true, Q: 0}).Compound() != 0 {
		t.Fatal("zero consumption should not divide by zero")
	}
}

func TestExpectedCompoundMatchesMonteCarlo(t *testing.T) {
	cfg := DefaultConfig(1, 2)
	e := newEnv(t, cfg)
	r := rng.New(11)
	const n = 400000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += e.Draw(0, 0, r).Compound()
	}
	mc := sum / n
	want := e.ExpectedCompound(0, 0)
	if math.Abs(mc-want) > 0.01 {
		t.Fatalf("Monte-Carlo compound %v vs analytic %v", mc, want)
	}
}

func TestDrawWithLikelihoodOverride(t *testing.T) {
	cfg := DefaultConfig(1, 1)
	e := newEnv(t, cfg)
	r := rng.New(12)
	done := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if e.DrawWithLikelihood(0, 0, 0.25, r).Completed {
			done++
		}
	}
	p := float64(done) / n
	if math.Abs(p-0.25) > 0.02 {
		t.Fatalf("override completion rate %v, want 0.25", p)
	}
	// Out-of-range override is clamped, not propagated.
	if e.DrawWithLikelihood(0, 0, 5, r); false {
		t.Fatal()
	}
	if !e.DrawWithLikelihood(0, 0, 5, r).Completed && !e.DrawWithLikelihood(0, 0, 5, r).Completed {
		t.Fatal("likelihood > 1 should clamp to certain completion")
	}
}

func TestStationaryAdvanceIsNoop(t *testing.T) {
	cfg := DefaultConfig(3, 9)
	e := newEnv(t, cfg)
	before := e.MeanReward(1, 4)
	for s := 1; s <= 100; s++ {
		e.Advance(s)
	}
	if e.MeanReward(1, 4) != before {
		t.Fatal("stationary environment drifted")
	}
}

func TestDriftingStaysBoundedAndMoves(t *testing.T) {
	cfg := DefaultConfig(2, 4)
	cfg.Mode = Drifting
	cfg.DriftStd = 0.05
	e := newEnv(t, cfg)
	before := e.MeanReward(0, 0)
	for s := 1; s <= 500; s++ {
		e.Advance(s)
		for m := 0; m < 2; m++ {
			for f := 0; f < 4; f++ {
				if u := e.MeanReward(m, f); u < 0 || u > 1 {
					t.Fatalf("drifting mean escaped [0,1]: %v", u)
				}
			}
		}
	}
	if e.MeanReward(0, 0) == before {
		t.Fatal("drifting environment never moved")
	}
}

func TestPiecewiseSwitches(t *testing.T) {
	cfg := DefaultConfig(1, 8)
	cfg.Mode = Piecewise
	cfg.SwitchEvery = 50
	e := newEnv(t, cfg)
	before := make([]float64, 8)
	for f := range before {
		before[f] = e.MeanReward(0, f)
	}
	for s := 1; s < 50; s++ {
		e.Advance(s)
		if e.MeanReward(0, 0) != before[0] {
			t.Fatalf("piecewise switched early at slot %d", s)
		}
	}
	e.Advance(50)
	changed := 0
	for f := range before {
		if e.MeanReward(0, f) != before[f] {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("piecewise never switched at the boundary")
	}
}

func TestBestExpectedCompound(t *testing.T) {
	cfg := DefaultConfig(2, 16)
	e := newEnv(t, cfg)
	best := e.BestExpectedCompound(0)
	for f := 0; f < 16; f++ {
		if e.ExpectedCompound(0, f) > best {
			t.Fatal("BestExpectedCompound not the max")
		}
	}
	if best <= 0 || best > 1 {
		t.Fatalf("best compound %v implausible", best)
	}
}

func TestZeroNoiseDrawsAreMeans(t *testing.T) {
	cfg := DefaultConfig(1, 1)
	cfg.UNoise = 0
	cfg.QNoise = 0
	e := newEnv(t, cfg)
	r := rng.New(13)
	o := e.Draw(0, 0, r)
	if o.U != e.MeanReward(0, 0) {
		t.Fatalf("zero-noise U %v != mean %v", o.U, e.MeanReward(0, 0))
	}
	if math.Abs(o.Q-e.MeanConsumption(0, 0)) > 1e-12 {
		t.Fatalf("zero-noise Q %v != mean %v", o.Q, e.MeanConsumption(0, 0))
	}
}

func TestModeString(t *testing.T) {
	for _, m := range []Mode{Stationary, Drifting, Piecewise, Mode(9)} {
		if m.String() == "" {
			t.Fatal("empty mode string")
		}
	}
}

func BenchmarkDraw(b *testing.B) {
	e := MustNew(DefaultConfig(30, 27), rng.New(1))
	r := rng.New(2)
	for i := 0; i < b.N; i++ {
		_ = e.Draw(i%30, i%27, r)
	}
}

func TestDrawMBS(t *testing.T) {
	cfg := DefaultConfig(2, 4)
	e := newEnv(t, cfg)
	r := rng.New(21)
	const n = 30000
	var sumU, done float64
	for i := 0; i < n; i++ {
		o := e.DrawMBS(1, 0.9, 1.0, r)
		if o.U < 0 || o.U > 1 || o.Q < 1 || o.Q > 2 {
			t.Fatalf("MBS outcome out of range: %+v", o)
		}
		sumU += o.U
		done += o.V()
	}
	if got, want := sumU/n, e.MeanRewardMBS(1); math.Abs(got-want) > 0.03 {
		t.Fatalf("MBS reward mean %v vs %v", got, want)
	}
	if got := done / n; math.Abs(got-0.9) > 0.02 {
		t.Fatalf("MBS completion rate %v, want 0.9", got)
	}
}

func TestDrawMBSPenalty(t *testing.T) {
	cfg := DefaultConfig(1, 2)
	cfg.UNoise = 0
	e := newEnv(t, cfg)
	r := rng.New(22)
	full := e.DrawMBS(0, 1, 1.0, r)
	half := e.DrawMBS(0, 1, 0.5, r)
	if math.Abs(half.U-full.U/2) > 1e-12 {
		t.Fatalf("penalty not applied: %v vs %v", half.U, full.U)
	}
	// Penalty outside [0,1] clamps.
	over := e.DrawMBS(0, 1, 5, r)
	if over.U > e.MeanRewardMBS(0)+1e-12 {
		t.Fatal("penalty > 1 must clamp")
	}
}

func TestMBSIndependentOfSCNMeans(t *testing.T) {
	// Two environments differing only in the derivation labels would be
	// hard to build; instead check the MBS profile is not simply a copy of
	// any SCN row.
	cfg := DefaultConfig(3, 16)
	e := newEnv(t, cfg)
	for m := 0; m < 3; m++ {
		same := 0
		for f := 0; f < 16; f++ {
			if e.MeanRewardMBS(f) == e.MeanReward(m, f) {
				same++
			}
		}
		if same == 16 {
			t.Fatalf("MBS reward profile identical to SCN %d", m)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on bad config")
		}
	}()
	MustNew(Config{}, rng.New(1))
}

func TestExpectedCompoundWithLikelihood(t *testing.T) {
	e := newEnv(t, DefaultConfig(1, 2))
	base := e.ExpectedCompoundWithLikelihood(0, 0, 1)
	half := e.ExpectedCompoundWithLikelihood(0, 0, 0.5)
	if math.Abs(half-base/2) > 1e-12 {
		t.Fatalf("likelihood scaling wrong: %v vs %v", half, base)
	}
	// Clamped outside [0,1].
	if e.ExpectedCompoundWithLikelihood(0, 0, 7) != base {
		t.Fatal("likelihood > 1 should clamp")
	}
}
