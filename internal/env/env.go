// Package env implements the unknown stochastic environment of the paper's
// Sec. 3.2: the three random processes governing what happens when SCN m
// processes a task with context φ at slot t —
//
//	U^m_φ(t) ∈ [0,1]  reward for completing the task (may be non-stationary),
//	V^m_φ(t) ∈ [0,1]  likelihood the task completes (mmWave blockage),
//	Q^m_φ(t) ∈ [1,2]  resource consumption (paper evaluation range).
//
// The processes are independent across contexts and of each other. The
// learner can only observe realisations of tasks it actually offloads; this
// package is the ground truth hidden from every policy except the Oracle.
//
// Means are attached to (SCN, hypercube-cell) pairs — the same granularity
// the paper's Hölder-continuity assumption justifies for the learner — and
// realisations are drawn per task around those means. Three stationarity
// modes for U reproduce the paper's "not necessarily stationary" remark:
// Stationary, Drifting (bounded random walk) and Piecewise (abrupt change).
package env

import (
	"fmt"
	"math"

	"lfsc/internal/rng"
	"lfsc/internal/stats"
)

// Mode selects the stationarity regime of the reward process U.
type Mode int

const (
	// Stationary keeps all means fixed for the whole horizon.
	Stationary Mode = iota
	// Drifting applies a bounded Gaussian random walk to reward means.
	Drifting
	// Piecewise redraws all reward means every SwitchEvery slots.
	Piecewise
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Stationary:
		return "stationary"
	case Drifting:
		return "drifting"
	case Piecewise:
		return "piecewise"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config parameterises an environment.
type Config struct {
	// SCNs is the number of small cell nodes M.
	SCNs int
	// Cells is the number of context hypercubes (h_T)^{D_b}.
	Cells int
	// URange bounds the per-(SCN,cell) mean reward (default [0,1]).
	URange [2]float64
	// VRange bounds the per-(SCN,cell) mean completion likelihood. The
	// paper's Fig. "different environments" varies exactly this range.
	VRange [2]float64
	// QRange bounds the per-(SCN,cell) mean resource consumption
	// (paper evaluation: [1,2]).
	QRange [2]float64
	// UNoise is the std of the truncated-normal reward realisation noise.
	UNoise float64
	// QNoise is the half-width of the uniform consumption realisation
	// noise around the cell mean.
	QNoise float64
	// Mode selects the stationarity regime of U.
	Mode Mode
	// DriftStd is the per-slot random-walk std for Drifting mode.
	DriftStd float64
	// SwitchEvery is the period of abrupt changes for Piecewise mode.
	SwitchEvery int
}

// DefaultConfig returns the paper's evaluation setting for M SCNs and the
// given number of context cells.
func DefaultConfig(scns, cells int) Config {
	return Config{
		SCNs:        scns,
		Cells:       cells,
		URange:      [2]float64{0, 1},
		VRange:      [2]float64{0, 1},
		QRange:      [2]float64{1, 2},
		UNoise:      0.1,
		QNoise:      0.1,
		Mode:        Stationary,
		DriftStd:    0.002,
		SwitchEvery: 2500,
	}
}

// Validate checks configuration consistency.
func (c Config) Validate() error {
	switch {
	case c.SCNs <= 0:
		return fmt.Errorf("env: SCNs must be positive, got %d", c.SCNs)
	case c.Cells <= 0:
		return fmt.Errorf("env: Cells must be positive, got %d", c.Cells)
	case c.URange[1] < c.URange[0] || c.URange[0] < 0 || c.URange[1] > 1:
		return fmt.Errorf("env: URange %v must be within [0,1]", c.URange)
	case c.VRange[1] < c.VRange[0] || c.VRange[0] < 0 || c.VRange[1] > 1:
		return fmt.Errorf("env: VRange %v must be within [0,1]", c.VRange)
	case c.QRange[1] < c.QRange[0] || c.QRange[0] <= 0:
		return fmt.Errorf("env: QRange %v must be positive", c.QRange)
	case c.UNoise < 0 || c.QNoise < 0:
		return fmt.Errorf("env: noise must be non-negative")
	case c.Mode == Piecewise && c.SwitchEvery <= 0:
		return fmt.Errorf("env: Piecewise mode needs SwitchEvery > 0")
	case c.Mode == Drifting && c.DriftStd < 0:
		return fmt.Errorf("env: DriftStd must be non-negative")
	}
	return nil
}

// Outcome is the realised feedback of processing one task: the triple the
// MBS observes after execution (paper Alg. 3 line 1).
type Outcome struct {
	// U is the realised reward in [0,1].
	U float64
	// Completed is the realisation of the Bernoulli(V) completion draw;
	// false models a mmWave blockage interrupting execution.
	Completed bool
	// Q is the realised resource consumption.
	Q float64
}

// V returns the completion indicator as a float (the v fed to estimators).
func (o Outcome) V() float64 {
	if o.Completed {
		return 1
	}
	return 0
}

// Compound returns the realised compound reward g = u·v/q.
func (o Outcome) Compound() float64 {
	if !o.Completed || o.Q <= 0 {
		return 0
	}
	return o.U / o.Q
}

// Env is a concrete environment instance. Advance mutates reward means in
// non-stationary modes; all other methods are read-only and safe for
// concurrent use between Advance calls.
type Env struct {
	cfg Config
	// uMean[m][f], vMean[m][f], qMean[m][f]
	uMean [][]float64
	vMean [][]float64
	qMean [][]float64
	// mbsU[f], mbsQ[f]: the macrocell base station's own reward and
	// consumption profile, used by the MBS-fallback extension (the paper's
	// Sec. 6 future work). Always generated; costs nothing when unused.
	mbsU  []float64
	mbsQ  []float64
	drift *rng.Stream
	// Precomputed per-(m,f) consumption tables. qMean is static (Advance
	// only mutates uMean), so the realisation support [qLo,qHi] and the
	// closed-form E[1/Q] are computed once at construction instead of per
	// draw — expectedInvQ in particular costs a log, and the Oracle queries
	// it for every (task, SCN) pair of every slot.
	qLo, qHi     [][]float64
	invQ         [][]float64
	mbsLo, mbsHi []float64
}

// New creates an environment whose means are drawn from stream r.
func New(cfg Config, r *rng.Stream) (*Env, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Env{cfg: cfg, drift: r.Derive(0xd41f7)}
	e.uMean = drawMeans(cfg.SCNs, cfg.Cells, cfg.URange, r.Derive(1))
	e.vMean = drawMeans(cfg.SCNs, cfg.Cells, cfg.VRange, r.Derive(2))
	e.qMean = drawMeans(cfg.SCNs, cfg.Cells, cfg.QRange, r.Derive(3))
	e.mbsU = drawMeans(1, cfg.Cells, cfg.URange, r.Derive(4))[0]
	e.mbsQ = drawMeans(1, cfg.Cells, cfg.QRange, r.Derive(5))[0]
	e.qLo = make([][]float64, cfg.SCNs)
	e.qHi = make([][]float64, cfg.SCNs)
	e.invQ = make([][]float64, cfg.SCNs)
	for m := 0; m < cfg.SCNs; m++ {
		e.qLo[m] = make([]float64, cfg.Cells)
		e.qHi[m] = make([]float64, cfg.Cells)
		e.invQ[m] = make([]float64, cfg.Cells)
		for f := 0; f < cfg.Cells; f++ {
			lo, hi := e.qBounds(e.qMean[m][f])
			e.qLo[m][f], e.qHi[m][f] = lo, hi
			if hi-lo < 1e-12 {
				e.invQ[m][f] = 1 / e.qMean[m][f]
			} else {
				e.invQ[m][f] = math.Log(hi/lo) / (hi - lo)
			}
		}
	}
	e.mbsLo = make([]float64, cfg.Cells)
	e.mbsHi = make([]float64, cfg.Cells)
	for f := 0; f < cfg.Cells; f++ {
		e.mbsLo[f], e.mbsHi[f] = e.qBounds(e.mbsQ[f])
	}
	return e, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config, r *rng.Stream) *Env {
	e, err := New(cfg, r)
	if err != nil {
		panic(err)
	}
	return e
}

func drawMeans(scns, cells int, rge [2]float64, r *rng.Stream) [][]float64 {
	out := make([][]float64, scns)
	for m := range out {
		row := make([]float64, cells)
		for f := range row {
			row[f] = r.Uniform(rge[0], rge[1])
		}
		out[m] = row
	}
	return out
}

// Config returns the environment configuration.
func (e *Env) Config() Config { return e.cfg }

// Advance applies the non-stationary dynamics for the transition into slot
// t (1-based). It is a no-op in Stationary mode.
func (e *Env) Advance(t int) {
	switch e.cfg.Mode {
	case Drifting:
		for m := range e.uMean {
			for f := range e.uMean[m] {
				v := e.uMean[m][f] + e.drift.Normal(0, e.cfg.DriftStd)
				e.uMean[m][f] = stats.Clamp(v, e.cfg.URange[0], e.cfg.URange[1])
			}
		}
	case Piecewise:
		if t > 0 && t%e.cfg.SwitchEvery == 0 {
			for m := range e.uMean {
				for f := range e.uMean[m] {
					e.uMean[m][f] = e.drift.Uniform(e.cfg.URange[0], e.cfg.URange[1])
				}
			}
		}
	}
}

// MeanReward returns E[U] for (SCN m, cell f) at the current slot.
func (e *Env) MeanReward(m, f int) float64 { return e.uMean[m][f] }

// MeanLikelihood returns E[V] = P(complete) for (m, f).
func (e *Env) MeanLikelihood(m, f int) float64 { return e.vMean[m][f] }

// MeanConsumption returns E[Q] for (m, f).
func (e *Env) MeanConsumption(m, f int) float64 { return e.qMean[m][f] }

// ExpectedCompound returns E[G] = E[U]·E[V]·E[1/Q] for (m, f), using the
// closed form of E[1/Q] for the uniform consumption realisation around the
// cell mean. This is the quantity the Oracle optimises.
func (e *Env) ExpectedCompound(m, f int) float64 {
	return e.uMean[m][f] * e.vMean[m][f] * e.expectedInvQ(m, f)
}

// ExpectedCompoundWithLikelihood is ExpectedCompound with an externally
// supplied completion likelihood (radio-model integration).
func (e *Env) ExpectedCompoundWithLikelihood(m, f int, v float64) float64 {
	return e.uMean[m][f] * stats.Clamp(v, 0, 1) * e.expectedInvQ(m, f)
}

func (e *Env) expectedInvQ(m, f int) float64 { return e.invQ[m][f] }

// qBounds returns the support of the consumption realisation around mean,
// clipped to the configured range and kept strictly positive.
func (e *Env) qBounds(mean float64) (lo, hi float64) {
	lo = math.Max(e.cfg.QRange[0], mean-e.cfg.QNoise)
	hi = math.Min(e.cfg.QRange[1], mean+e.cfg.QNoise)
	if hi < lo {
		hi = lo
	}
	if lo <= 0 {
		lo = 1e-9
	}
	return lo, hi
}

// Draw samples the feedback of SCN m processing a task in cell f, using
// stream r. The three draws are independent, matching the model.
func (e *Env) Draw(m, f int, r *rng.Stream) Outcome {
	return e.DrawWithLikelihood(m, f, e.vMean[m][f], r)
}

// DrawWithLikelihood samples feedback with an overridden completion
// likelihood (e.g. computed from the physical radio model for the actual
// SCN-WD distance instead of the cell mean).
func (e *Env) DrawWithLikelihood(m, f int, v float64, r *rng.Stream) Outcome {
	u := r.TruncNormal(e.uMean[m][f], e.cfg.UNoise, 0, 1)
	if e.cfg.UNoise == 0 {
		u = e.uMean[m][f]
	}
	lo, hi := e.qLo[m][f], e.qHi[m][f]
	q := lo
	if hi > lo {
		q = r.Uniform(lo, hi)
	}
	return Outcome{
		U:         u,
		Completed: r.Bernoulli(stats.Clamp(v, 0, 1)),
		Q:         q,
	}
}

// DrawMBS samples the feedback of the macrocell base station processing a
// task in cell f. The MBS is reached over fibre, so the completion
// likelihood is supplied by the caller (typically near 1) rather than drawn
// from the mmWave blockage model, and penalty discounts the realised reward
// (1 = none; latency-sensitive tasks suffer from the longer path).
func (e *Env) DrawMBS(f int, likelihood, penalty float64, r *rng.Stream) Outcome {
	u := r.TruncNormal(e.mbsU[f], e.cfg.UNoise, 0, 1)
	if e.cfg.UNoise == 0 {
		u = e.mbsU[f]
	}
	u *= stats.Clamp(penalty, 0, 1)
	lo, hi := e.mbsLo[f], e.mbsHi[f]
	q := lo
	if hi > lo {
		q = r.Uniform(lo, hi)
	}
	return Outcome{
		U:         u,
		Completed: r.Bernoulli(stats.Clamp(likelihood, 0, 1)),
		Q:         q,
	}
}

// MeanRewardMBS returns the MBS's E[U] for cell f (before any penalty).
func (e *Env) MeanRewardMBS(f int) float64 { return e.mbsU[f] }

// BestExpectedCompound returns, for SCN m, the maximum expected compound
// reward over all cells — a handy upper bound used in tests.
func (e *Env) BestExpectedCompound(m int) float64 {
	best := 0.0
	for f := 0; f < e.cfg.Cells; f++ {
		if g := e.ExpectedCompound(m, f); g > best {
			best = g
		}
	}
	return best
}
