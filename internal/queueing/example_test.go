package queueing_test

import (
	"fmt"

	"lfsc/internal/queueing"
)

// ExampleServer drains two jobs at one work unit per slot under FIFO.
func ExampleServer() {
	s := queueing.MustNewServer(1.0, queueing.FIFO)
	s.Submit(1, 0.6, 0)
	s.Submit(2, 0.8, 0)
	for now := 0; now < 3; now++ {
		for _, c := range s.Step(now) {
			fmt.Printf("job %d finished at slot %d (sojourn %d)\n", c.ID, c.Finished, c.Sojourn())
		}
	}
	// Output:
	// job 1 finished at slot 0 (sojourn 1)
	// job 2 finished at slot 1 (sojourn 2)
}
