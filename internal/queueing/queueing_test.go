package queueing

import (
	"math"
	"testing"

	"lfsc/internal/rng"
	"lfsc/internal/stats"
)

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(0, FIFO); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewServer(1, Discipline(7)); err == nil {
		t.Fatal("unknown discipline accepted")
	}
	if _, err := NewServer(2, PS); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewServer did not panic")
		}
	}()
	MustNewServer(-1, FIFO)
}

func TestFIFOOrderAndTiming(t *testing.T) {
	s := MustNewServer(1.0, FIFO)
	// Three unit jobs submitted at slot 0: finish at 0, 1, 2.
	for i := int64(0); i < 3; i++ {
		if err := s.Submit(i, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	var all []Completion
	for now := 0; now < 5; now++ {
		all = append(all, s.Step(now)...)
	}
	if len(all) != 3 {
		t.Fatalf("completed %d jobs", len(all))
	}
	for i, c := range all {
		if c.ID != int64(i) || c.Finished != i {
			t.Fatalf("job %d finished at %d (completion %+v)", c.ID, c.Finished, c)
		}
		if c.Sojourn() != i+1 {
			t.Fatalf("job %d sojourn %d", c.ID, c.Sojourn())
		}
	}
}

func TestFIFOPartialService(t *testing.T) {
	s := MustNewServer(0.5, FIFO)
	s.Submit(1, 1.2, 0)
	if len(s.Step(0)) != 0 || len(s.Step(1)) != 0 {
		t.Fatal("finished too early")
	}
	done := s.Step(2) // 3 × 0.5 = 1.5 ≥ 1.2
	if len(done) != 1 || done[0].Sojourn() != 3 {
		t.Fatalf("done = %+v", done)
	}
	if s.QueueLength() != 0 || s.Backlog() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestPSFairness(t *testing.T) {
	// Two equal jobs share the slot: both finish together, later than a
	// lone job would.
	s := MustNewServer(1.0, PS)
	s.Submit(1, 0.9, 0)
	s.Submit(2, 0.9, 0)
	if done := s.Step(0); len(done) != 0 {
		t.Fatal("PS finished 1.8 work in a 1.0 slot")
	}
	done := s.Step(1)
	if len(done) != 2 {
		t.Fatalf("PS pair: %d done", len(done))
	}
}

func TestPSShortJobNotBlocked(t *testing.T) {
	// Under FIFO a huge head-of-line job delays the short one; under PS the
	// short job slips through.
	mkDone := func(d Discipline) int {
		s := MustNewServer(1.0, d)
		s.Submit(1, 10, 0)  // elephant
		s.Submit(2, 0.4, 0) // mouse
		for now := 0; now < 3; now++ {
			for _, c := range s.Step(now) {
				if c.ID == 2 {
					return c.Finished
				}
			}
		}
		return -1
	}
	psFinish := mkDone(PS)
	fifoFinish := mkDone(FIFO)
	if psFinish == -1 {
		t.Fatal("PS mouse never finished in 3 slots")
	}
	if fifoFinish != -1 && fifoFinish <= psFinish {
		t.Fatalf("FIFO mouse (%d) not slower than PS (%d)", fifoFinish, psFinish)
	}
}

func TestWorkConservation(t *testing.T) {
	r := rng.New(1)
	for _, d := range []Discipline{FIFO, PS} {
		s := MustNewServer(2.0, d)
		submitted := 0.0
		completedJobs := 0
		totalJobs := 0
		for now := 0; now < 500; now++ {
			if r.Bernoulli(0.7) {
				w := r.Uniform(0.1, 3)
				s.Submit(int64(totalJobs), w, now)
				submitted += w
				totalJobs++
			}
			completedJobs += len(s.Step(now))
		}
		// Drain.
		for now := 500; now < 1000 && s.QueueLength() > 0; now++ {
			completedJobs += len(s.Step(now))
		}
		if completedJobs != totalJobs {
			t.Fatalf("%v: %d/%d jobs completed", d, completedJobs, totalJobs)
		}
		if s.Backlog() > 1e-9 {
			t.Fatalf("%v: backlog %v after drain", d, s.Backlog())
		}
	}
}

func TestZeroWorkJob(t *testing.T) {
	s := MustNewServer(1, FIFO)
	s.Submit(1, 0, 5)
	done := s.Step(5)
	if len(done) != 1 || done[0].Sojourn() != 1 {
		t.Fatalf("zero-work job: %+v", done)
	}
	if err := s.Submit(2, -1, 0); err == nil {
		t.Fatal("negative work accepted")
	}
}

func TestMM1AgainstSimulation(t *testing.T) {
	// Discrete-time approximation of M/M/1: Bernoulli arrivals at rate λ,
	// exponential job sizes with mean 1, service rate μ per slot. The mean
	// sojourn should track 1/(μ−λ) within discretisation error.
	const lambda, mu = 0.3, 1.0
	r := rng.New(2)
	s := MustNewServer(mu, FIFO)
	var sojourns stats.Summary
	id := int64(0)
	for now := 0; now < 200000; now++ {
		if r.Bernoulli(lambda) {
			s.Submit(id, r.Exponential(1), now)
			id++
		}
		for _, c := range s.Step(now) {
			sojourns.Add(float64(c.Sojourn()))
		}
	}
	want := MM1MeanSojourn(lambda, mu)
	got := sojourns.Mean()
	// Discrete slots quantise sojourns upward by up to one slot.
	if got < want-0.2 || got > want+1.2 {
		t.Fatalf("simulated sojourn %v vs M/M/1 %v", got, want)
	}
}

func TestLittlesLaw(t *testing.T) {
	// L = λW on a long stable run (PS this time).
	const lambda, mu = 0.4, 1.0
	r := rng.New(3)
	s := MustNewServer(mu, PS)
	var sojourns stats.Summary
	var lSum float64
	const T = 100000
	id := int64(0)
	for now := 0; now < T; now++ {
		if r.Bernoulli(lambda) {
			s.Submit(id, r.Exponential(1), now)
			id++
		}
		// Sample L after arrivals but before service, matching the sojourn
		// convention that counts the arrival slot (Sojourn ≥ 1).
		lSum += float64(s.QueueLength())
		for _, c := range s.Step(now) {
			sojourns.Add(float64(c.Sojourn()))
		}
	}
	L := lSum / T
	lamEff := float64(sojourns.N()) / T
	W := sojourns.Mean()
	if math.Abs(L-lamEff*W) > 0.15*(1+L) {
		t.Fatalf("Little's law violated: L=%v λW=%v", L, lamEff*W)
	}
}

func TestAnalyticalHelpers(t *testing.T) {
	if got := MM1MeanSojourn(0.5, 1); math.Abs(got-2) > 1e-12 {
		t.Fatalf("E[T] = %v", got)
	}
	if got := MM1MeanQueueLength(0.5, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("L = %v", got)
	}
	if !math.IsInf(MM1MeanSojourn(1, 1), 1) || !math.IsInf(MM1MeanQueueLength(2, 1), 1) {
		t.Fatal("unstable queue should report +Inf")
	}
	if Utilization(1, 2) != 0.5 || Utilization(1, 0) != 0 {
		t.Fatal("utilization")
	}
}

func TestDisciplineString(t *testing.T) {
	for _, d := range []Discipline{FIFO, PS, Discipline(9)} {
		if d.String() == "" {
			t.Fatal("empty discipline string")
		}
	}
}

func BenchmarkPSStep(b *testing.B) {
	s := MustNewServer(20, PS)
	r := rng.New(4)
	for i := 0; i < 100; i++ {
		s.Submit(int64(i), r.Uniform(0.5, 2), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(i)
		if s.QueueLength() < 50 {
			s.Submit(int64(1000+i), 1.5, i)
			s.Submit(int64(2000+i), 1.5, i)
		}
	}
}
