// Package queueing models the compute server inside each SCN ("each SCN is
// equipped with a computing server, which can process tasks from WDs" —
// paper Sec. 3.1). The paper abstracts execution as one slot per task; this
// package supplies the discrete-time queueing substrate needed to check
// that abstraction and to study latency: a work-conserving server drained
// at a fixed rate per slot under FIFO or processor-sharing disciplines,
// plus the M/M/1 closed forms used to validate the simulation.
//
// Work units are abstract (e.g. Mbit of input × cycles/bit); a task
// finishes when its remaining work reaches zero, and its sojourn time is
// the number of slots from arrival to completion.
package queueing

import (
	"fmt"
	"math"
	"sort"
)

// Discipline selects the service order.
type Discipline int

const (
	// FIFO serves jobs to completion in arrival order.
	FIFO Discipline = iota
	// PS (processor sharing) splits each slot's capacity equally among
	// all queued jobs — the idealisation of a time-slicing edge server.
	PS
)

// String implements fmt.Stringer.
func (d Discipline) String() string {
	switch d {
	case FIFO:
		return "fifo"
	case PS:
		return "ps"
	default:
		return fmt.Sprintf("discipline(%d)", int(d))
	}
}

// Completion reports one finished job.
type Completion struct {
	// ID identifies the job.
	ID int64
	// Arrived is the slot the job was submitted in.
	Arrived int
	// Finished is the slot the job completed in.
	Finished int
}

// Sojourn returns the job's time in system, in slots (≥ 1).
func (c Completion) Sojourn() int { return c.Finished - c.Arrived + 1 }

type job struct {
	id        int64
	remaining float64
	arrived   int
	seq       int // tie-break for deterministic order
}

// Server is a single work-conserving queueing server. The zero value is
// not usable; construct with NewServer.
type Server struct {
	rate    float64
	disc    Discipline
	jobs    []*job
	nextSeq int
}

// NewServer creates a server draining rate work units per slot.
func NewServer(rate float64, disc Discipline) (*Server, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("queueing: rate must be positive, got %v", rate)
	}
	if disc != FIFO && disc != PS {
		return nil, fmt.Errorf("queueing: unknown discipline %d", disc)
	}
	return &Server{rate: rate, disc: disc}, nil
}

// MustNewServer is NewServer but panics on error.
func MustNewServer(rate float64, disc Discipline) *Server {
	s, err := NewServer(rate, disc)
	if err != nil {
		panic(err)
	}
	return s
}

// Submit enqueues a job with the given amount of work at slot now.
// Zero-work jobs complete in the next Step.
func (s *Server) Submit(id int64, work float64, now int) error {
	if work < 0 {
		return fmt.Errorf("queueing: negative work %v for job %d", work, id)
	}
	s.jobs = append(s.jobs, &job{id: id, remaining: work, arrived: now, seq: s.nextSeq})
	s.nextSeq++
	return nil
}

// QueueLength returns the number of jobs in the system.
func (s *Server) QueueLength() int { return len(s.jobs) }

// Backlog returns the total remaining work in the system.
func (s *Server) Backlog() float64 {
	total := 0.0
	for _, j := range s.jobs {
		total += j.remaining
	}
	return total
}

// Step advances one slot ending at time now, returning jobs that completed
// during it, ordered by (finish priority, arrival) deterministically.
func (s *Server) Step(now int) []Completion {
	if len(s.jobs) == 0 {
		return nil
	}
	var done []Completion
	switch s.disc {
	case FIFO:
		budget := s.rate
		keep := s.jobs[:0]
		for _, j := range s.jobs {
			if budget > 0 && j.remaining <= budget {
				budget -= j.remaining
				done = append(done, Completion{ID: j.id, Arrived: j.arrived, Finished: now})
				continue
			}
			if budget > 0 {
				j.remaining -= budget
				budget = 0
			}
			keep = append(keep, j)
		}
		s.jobs = keep
	case PS:
		// Iteratively grant equal shares; jobs needing less than their
		// share finish and release capacity to the rest within the slot.
		budget := s.rate
		for budget > 1e-12 && len(s.jobs) > 0 {
			share := budget / float64(len(s.jobs))
			finishedAny := false
			keep := s.jobs[:0]
			for _, j := range s.jobs {
				if j.remaining <= share {
					budget -= j.remaining
					done = append(done, Completion{ID: j.id, Arrived: j.arrived, Finished: now})
					finishedAny = true
					continue
				}
				keep = append(keep, j)
			}
			s.jobs = keep
			if !finishedAny {
				for _, j := range s.jobs {
					j.remaining -= share
				}
				budget = 0
			}
		}
	}
	sort.Slice(done, func(a, b int) bool {
		if done[a].Arrived != done[b].Arrived {
			return done[a].Arrived < done[b].Arrived
		}
		return done[a].ID < done[b].ID
	})
	return done
}

// --- analytical M/M/1 helpers ------------------------------------------------

// Utilization returns ρ = λ/μ.
func Utilization(lambda, mu float64) float64 {
	if mu <= 0 {
		return 0
	}
	return lambda / mu
}

// MM1MeanSojourn returns the expected time in system E[T] = 1/(μ−λ) of an
// M/M/1 queue; +Inf when unstable (λ ≥ μ).
func MM1MeanSojourn(lambda, mu float64) float64 {
	if lambda >= mu {
		return math.Inf(1)
	}
	return 1 / (mu - lambda)
}

// MM1MeanQueueLength returns the expected number in system L = ρ/(1−ρ);
// +Inf when unstable.
func MM1MeanQueueLength(lambda, mu float64) float64 {
	rho := Utilization(lambda, mu)
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho / (1 - rho)
}
